package netalignmc_test

import (
	"fmt"

	netalignmc "netalignmc"
)

// Example aligns two tiny graphs end to end: the canonical quickstart.
func Example() {
	// A and B are both a single edge; L offers all four pairings.
	a := netalignmc.GraphFromEdges(2, []netalignmc.GraphEdge{{U: 0, V: 1}})
	b := netalignmc.GraphFromEdges(2, []netalignmc.GraphEdge{{U: 0, V: 1}})
	l, _ := netalignmc.NewCandidateGraph(2, 2, []netalignmc.CandidateEdge{
		{A: 0, B: 0, W: 2}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1}, {A: 1, B: 1, W: 2},
	})
	p, _ := netalignmc.NewProblem(a, b, l, 1, 2)
	res := p.BPAlign(netalignmc.BPOptions{Iterations: 20})
	fmt.Printf("objective=%.0f overlap=%.0f\n", res.Objective, res.Overlap)
	fmt.Printf("A0->B%d A1->B%d\n", res.Matching.MateA[0], res.Matching.MateA[1])
	// Output:
	// objective=6 overlap=1
	// A0->B0 A1->B1
}

// ExampleProblem_KlauAlign shows Klau's matching relaxation with its
// optimality detection: on this instance the Lagrangian bound closes
// immediately, proving the solution optimal.
func ExampleProblem_KlauAlign() {
	a := netalignmc.GraphFromEdges(2, []netalignmc.GraphEdge{{U: 0, V: 1}})
	b := netalignmc.GraphFromEdges(2, []netalignmc.GraphEdge{{U: 0, V: 1}})
	l, _ := netalignmc.NewCandidateGraph(2, 2, []netalignmc.CandidateEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1}, {A: 1, B: 1, W: 1},
	})
	p, _ := netalignmc.NewProblem(a, b, l, 1, 2)
	res := p.KlauAlign(netalignmc.MROptions{Iterations: 50, GapTolerance: 1e-9})
	fmt.Printf("objective=%.0f converged=%v at iteration %d\n",
		res.Objective, res.Converged, res.ConvergedIter)
	// Output:
	// objective=4 converged=true at iteration 1
}

// ExampleApproxMatcher demonstrates the parallel half-approximate
// matcher directly on a candidate graph.
func ExampleApproxMatcher() {
	l, _ := netalignmc.NewCandidateGraph(2, 2, []netalignmc.CandidateEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 2}, {A: 1, B: 0, W: 3},
	})
	m := netalignmc.ApproxMatcher(l, 0)
	fmt.Printf("weight=%.0f matched=%d\n", m.Weight, m.Card)
	// Output:
	// weight=5 matched=2
}

// ExampleProblem_BaselineAlign contrasts the round-the-input-weights
// baseline with IsoRank-style propagation.
func ExampleProblem_BaselineAlign() {
	a := netalignmc.GraphFromEdges(2, []netalignmc.GraphEdge{{U: 0, V: 1}})
	b := netalignmc.GraphFromEdges(2, []netalignmc.GraphEdge{{U: 0, V: 1}})
	l, _ := netalignmc.NewCandidateGraph(2, 2, []netalignmc.CandidateEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1}, {A: 1, B: 1, W: 1},
	})
	p, _ := netalignmc.NewProblem(a, b, l, 1, 2)
	res := p.BaselineAlign(netalignmc.BaselineOptions{Kind: netalignmc.BaselineIsoRank})
	fmt.Printf("objective=%.0f\n", res.Objective)
	// Output:
	// objective=4
}

// ExampleLocallyDominantGeneral matches a general (non-bipartite)
// weighted graph, the algorithm's native setting.
func ExampleLocallyDominantGeneral() {
	g := netalignmc.GraphFromEdges(3, []netalignmc.GraphEdge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
	})
	wg, _ := netalignmc.NewWeightedGraph(g, map[netalignmc.GraphEdge]float64{
		{U: 0, V: 1}: 5, {U: 1, V: 2}: 3, {U: 0, V: 2}: 1,
	})
	mate, w := netalignmc.LocallyDominantGeneral(wg, 0)
	fmt.Printf("weight=%.0f mate=%v\n", w, mate)
	// Output:
	// weight=5 mate=[1 0 -1]
}

package netalignmc_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark drives the corresponding experiment in
// internal/experiments at a laptop-quick scale and reports the
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's rows and series. EXPERIMENTS.md records a
// paper-vs-measured comparison produced by these harnesses; the
// cmd/experiments binary runs the same drivers at configurable scale
// for fuller output.
//
// Environment variables:
//
//	NETALIGN_BENCH_SCALE  stand-in scale (default 0.01)
//	NETALIGN_BENCH_ITERS  iterations per run (default 10)

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/experiments"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
)

func benchConfig() experiments.Config {
	c := experiments.Config{Scale: 0.01, Seed: 42, Iterations: 10}
	if v := os.Getenv("NETALIGN_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			c.Scale = f
		}
	}
	if v := os.Getenv("NETALIGN_BENCH_ITERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			c.Iterations = n
		}
	}
	return c
}

// BenchmarkTable2ProblemStats regenerates Table II: the problem
// statistics of the four stand-in instances. Reported metrics are the
// |E_L| and nnz(S) of the lcsh-wiki stand-in.
func BenchmarkTable2ProblemStats(b *testing.B) {
	c := benchConfig()
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(c)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, st := range last.Stats {
		if st.Name == "lcsh-wiki" {
			b.ReportMetric(float64(st.EL), "EL")
			b.ReportMetric(float64(st.NnzS), "nnzS")
		}
	}
}

// BenchmarkFigure2Quality regenerates Figure 2: solution quality of
// MR/BP with exact/approximate rounding on synthetic power-law
// problems. Metrics: the objective fraction of BP-exact and BP-approx
// at the easiest noise level (they should be nearly equal — the
// paper's headline quality claim) and of MR-approx (which degrades).
func BenchmarkFigure2Quality(b *testing.B) {
	c := benchConfig()
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(c, []float64{2, 10})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, pt := range last.Points {
		if pt.Degree != 2 {
			continue
		}
		switch pt.Method {
		case "BP-exact":
			b.ReportMetric(pt.ObjFraction, "BPexact_objfrac")
		case "BP-approx":
			b.ReportMetric(pt.ObjFraction, "BPapprox_objfrac")
		case "MR-approx":
			b.ReportMetric(pt.ObjFraction, "MRapprox_objfrac")
		}
	}
}

// BenchmarkFigure3Frontier regenerates Figure 3: the matching-weight /
// overlap frontier of both methods under a parameter sweep on the
// dmela-scere stand-in. Metric: the maximum overlap any BP-approx
// point reaches.
func BenchmarkFigure3Frontier(b *testing.B) {
	c := benchConfig()
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(c, "dmela-scere")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	maxOv := 0.0
	for _, pt := range last.Points {
		if pt.Method == "BP-approx" && pt.Overlap > maxOv {
			maxOv = pt.Overlap
		}
	}
	b.ReportMetric(maxOv, "BPapprox_max_overlap")
}

// BenchmarkFigure4Scaling regenerates Figure 4: strong scaling of MR
// and BP(batch=1,10,20) on the lcsh-wiki stand-in across thread counts
// and scheduling policies. Metric: BP-batch20 speedup at GOMAXPROCS.
func BenchmarkFigure4Scaling(b *testing.B) {
	c := benchConfig()
	c.Iterations = 4
	var last *experiments.ScalingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scaling(c, "lcsh-wiki", nil, []string{"dynamic"})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	maxT := runtime.GOMAXPROCS(0)
	for _, pt := range last.Points {
		if pt.Method == "BP-batch20" && pt.Threads == maxT {
			b.ReportMetric(pt.Speedup, "BPbatch20_speedup")
		}
		if pt.Method == "MR" && pt.Threads == maxT {
			b.ReportMetric(pt.Speedup, "MR_speedup")
		}
	}
}

// BenchmarkFigure5Scaling regenerates Figure 5: strong scaling of MR
// and BP(batch=20) on the larger lcsh-rameau stand-in.
func BenchmarkFigure5Scaling(b *testing.B) {
	c := benchConfig()
	c.Iterations = 3
	var last *experiments.ScalingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scaling(c, "lcsh-rameau", []string{"MR", "BP-batch20"}, []string{"dynamic"})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	maxT := runtime.GOMAXPROCS(0)
	for _, pt := range last.Points {
		if pt.Method == "BP-batch20" && pt.Threads == maxT {
			b.ReportMetric(pt.Speedup, "BPbatch20_speedup")
		}
	}
}

// BenchmarkFigure6MRSteps regenerates Figure 6: per-step strong
// scaling of Klau's method on lcsh-wiki. Metrics: the fraction of
// runtime in the row-match and matching steps at GOMAXPROCS (the paper
// reports 40% / 40% at 40 threads).
func BenchmarkFigure6MRSteps(b *testing.B) {
	c := benchConfig()
	c.Iterations = 4
	var last *experiments.StepScalingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.StepScaling(c, "lcsh-wiki", "MR")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	maxT := runtime.GOMAXPROCS(0)
	for _, pt := range last.Points {
		if pt.Threads != maxT {
			continue
		}
		switch pt.Step {
		case core.MRStepRowMatch:
			b.ReportMetric(pt.Fraction, "rowmatch_frac")
		case core.MRStepMatch:
			b.ReportMetric(pt.Fraction, "match_frac")
		}
	}
}

// BenchmarkFigure7BPSteps regenerates Figure 7: per-step strong
// scaling of BP(batch=20) on lcsh-wiki. Metrics: the othermax,
// matching and damping fractions at GOMAXPROCS (paper: 15% / 58% /
// 12% at 40 threads).
func BenchmarkFigure7BPSteps(b *testing.B) {
	c := benchConfig()
	c.Iterations = 4
	var last *experiments.StepScalingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.StepScaling(c, "lcsh-wiki", "BP-batch20")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	maxT := runtime.GOMAXPROCS(0)
	for _, pt := range last.Points {
		if pt.Threads != maxT {
			continue
		}
		switch pt.Step {
		case core.BPStepOthermax:
			b.ReportMetric(pt.Fraction, "othermax_frac")
		case core.BPStepMatch:
			b.ReportMetric(pt.Fraction, "match_frac")
		case core.BPStepDamping:
			b.ReportMetric(pt.Fraction, "damping_frac")
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

func ablationProblem(b *testing.B) *core.Problem {
	b.Helper()
	p, err := gen.LcshWiki(benchConfig().Scale, 42, 0)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAblationBatchSize sweeps the BP rounding batch size.
func BenchmarkAblationBatchSize(b *testing.B) {
	p := ablationProblem(b)
	for _, batch := range []int{1, 4, 10, 20} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.BPAlign(core.BPOptions{
					Iterations: 5, Batch: batch, Rounding: matching.Approx,
					SkipFinalExact: true,
				})
			}
		})
	}
}

// BenchmarkAblationSchedule compares scheduling policies for the
// S-indexed loops (the stand-in for the paper's memory-layout axis).
func BenchmarkAblationSchedule(b *testing.B) {
	p := ablationProblem(b)
	for _, sched := range []string{"dynamic", "static", "guided"} {
		sched := sched
		b.Run(sched, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.BPAlign(core.BPOptions{
					Iterations: 5, Rounding: matching.Approx,
					SkipFinalExact: true, Sched: experiments.ParseSchedule(sched),
				})
			}
		})
	}
}

// BenchmarkAblationMatcherInit compares the two-sided initialization
// of the locally-dominant matcher against the bipartite one-sided
// variant the paper found faster.
func BenchmarkAblationMatcherInit(b *testing.B) {
	p := ablationProblem(b)
	for _, oneSided := range []bool{false, true} {
		name := "two-sided"
		if oneSided {
			name = "one-sided"
		}
		m := matching.NewLocallyDominantMatcher(matching.LocallyDominantOptions{OneSidedInit: oneSided})
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m(p.L, 0)
			}
		})
	}
}

// BenchmarkAblationOthermaxTasks measures the future-work task-
// parallel othermax reorganization.
func BenchmarkAblationOthermaxTasks(b *testing.B) {
	p := ablationProblem(b)
	for _, tasks := range []bool{false, true} {
		name := "sequential"
		if tasks {
			name = "task-parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.BPAlign(core.BPOptions{
					Iterations: 5, Rounding: matching.Approx,
					SkipFinalExact: true, TaskParallelOthermax: tasks,
				})
			}
		})
	}
}

// BenchmarkAblationSortedAdjacency measures the §V sorted-neighbor-
// list acceleration of FINDMATE.
func BenchmarkAblationSortedAdjacency(b *testing.B) {
	p := ablationProblem(b)
	for _, sorted := range []bool{false, true} {
		name := "scan"
		if sorted {
			name = "sorted"
		}
		m := matching.NewLocallyDominantMatcher(matching.LocallyDominantOptions{SortedAdjacency: sorted})
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m(p.L, 0)
			}
		})
	}
}

// BenchmarkComplexityPerNonzero verifies the §III-D complexity claim
// empirically: one BP iteration with approximate rounding costs
// O(nnz(S) + |E_L|), so nanoseconds per (nnz+E_L) unit should stay
// roughly flat as the problem grows.
func BenchmarkComplexityPerNonzero(b *testing.B) {
	for _, scale := range []float64{0.005, 0.01, 0.02} {
		p, err := gen.LcshWiki(scale, 42, 0)
		if err != nil {
			b.Fatal(err)
		}
		units := float64(p.NNZS() + p.L.NumEdges())
		b.Run(fmt.Sprintf("scale%g", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.BPAlign(core.BPOptions{
					Iterations: 1, Rounding: matching.Approx, SkipFinalExact: true,
				})
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/units, "ns/unit")
		})
	}
}

// BenchmarkAblationRowMatch measures the paper's choice of exact
// per-row matchings in Klau's Step 1 against a greedy row matcher.
func BenchmarkAblationRowMatch(b *testing.B) {
	p := ablationProblem(b)
	for _, greedy := range []bool{false, true} {
		name := "exact-rows"
		if greedy {
			name = "greedy-rows"
		}
		b.Run(name, func(b *testing.B) {
			var obj float64
			for i := 0; i < b.N; i++ {
				r := p.KlauAlign(core.MROptions{
					Iterations: 5, GreedyRowMatch: greedy,
					Rounding: matching.Approx, SkipFinalExact: true,
				})
				obj = r.Objective
			}
			b.ReportMetric(obj, "objective")
		})
	}
}

// BenchmarkAblationChunkSize sweeps the dynamic-schedule chunk size
// around the paper's tuned 1000.
func BenchmarkAblationChunkSize(b *testing.B) {
	p := ablationProblem(b)
	for _, chunk := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.BPAlign(core.BPOptions{
					Iterations: 5, Chunk: chunk, Rounding: matching.Approx,
					SkipFinalExact: true,
				})
			}
		})
	}
}

// Maximum common edge subgraph example: Section II notes that network
// alignment generalizes the maximum common edge subgraph problem by
// taking L to be the complete bipartite graph with α=0, β=1. This
// example aligns a 6-cycle with a 6-vertex graph containing a 5-cycle
// plus extra edges, recovering the largest common set of edges.
package main

import (
	"fmt"
	"log"

	netalignmc "netalignmc"
)

func main() {
	// A: a 6-cycle.
	a := netalignmc.GraphFromEdges(6, []netalignmc.GraphEdge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0},
	})
	// B: a 5-cycle with a pendant vertex and a chord.
	b := netalignmc.GraphFromEdges(6, []netalignmc.GraphEdge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
		{U: 4, V: 5}, {U: 1, V: 3},
	})

	// L = complete bipartite graph, unit weights; α=0, β=1 turns the
	// alignment objective into pure edge overlap.
	var candidates []netalignmc.CandidateEdge
	for va := 0; va < 6; va++ {
		for vb := 0; vb < 6; vb++ {
			candidates = append(candidates, netalignmc.CandidateEdge{A: va, B: vb, W: 1})
		}
	}
	l, err := netalignmc.NewCandidateGraph(6, 6, candidates)
	if err != nil {
		log.Fatal(err)
	}
	p, err := netalignmc.NewProblem(a, b, l, 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	best := p.BPAlign(netalignmc.BPOptions{Iterations: 200, Gamma: 0.95})
	fmt.Printf("common edges found: %.0f\n", best.Overlap)
	fmt.Println("vertex map:")
	for va, vb := range best.Matching.MateA {
		if vb >= 0 {
			fmt.Printf("  A%d -> B%d\n", va, vb)
		}
	}
	// The 6-cycle shares at most 5 edges with B (its 5-cycle plus the
	// pendant edge can absorb the whole cycle minus one edge).
	fmt.Println("\n(A 6-cycle and this B share up to 5 edges; BP is a heuristic,")
	fmt.Println(" so slightly fewer is possible on unlucky damping schedules.)")
}

// PPI alignment example: reproduce the paper's bioinformatics
// workflow on a synthetic stand-in for the dmela-scere protein
// interaction problem, and demonstrate the paper's key observation —
// belief propagation loses essentially nothing when its exact
// rounding step is replaced by the parallel half-approximate matcher,
// while Klau's method is more sensitive.
package main

import (
	"fmt"
	"log"
	"time"

	netalignmc "netalignmc"
)

func main() {
	// A laptop-sized stand-in for the fly/yeast PPI alignment
	// (Table II problem "dmela-scere"); scale up toward 1.0 to
	// approach the published sizes.
	p, err := netalignmc.DmelaScere(0.05, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	st := netalignmc.StatsOf("dmela-scere (stand-in)", p)
	fmt.Printf("%s: |V_A|=%d |V_B|=%d |E_L|=%d nnz(S)=%d\n\n",
		st.Name, st.VA, st.VB, st.EL, st.NnzS)

	const iters = 30
	run := func(name string, f func() *netalignmc.AlignResult) {
		start := time.Now()
		res := f()
		fmt.Printf("%-12s objective=%9.2f  weight=%8.2f  overlap=%6.0f  (%v)\n",
			name, res.Objective, res.MatchWeight, res.Overlap,
			time.Since(start).Round(time.Millisecond))
	}

	run("BP exact", func() *netalignmc.AlignResult {
		return p.BPAlign(netalignmc.BPOptions{Iterations: iters})
	})
	run("BP approx", func() *netalignmc.AlignResult {
		return p.BPAlign(netalignmc.BPOptions{Iterations: iters, Rounding: netalignmc.ApproxMatcher})
	})
	run("MR exact", func() *netalignmc.AlignResult {
		return p.KlauAlign(netalignmc.MROptions{Iterations: iters})
	})
	run("MR approx", func() *netalignmc.AlignResult {
		return p.KlauAlign(netalignmc.MROptions{Iterations: iters, Rounding: netalignmc.ApproxMatcher})
	})

	fmt.Println("\nExpected shape (paper Figs 2-3): the two BP rows nearly identical;")
	fmt.Println("MR approx at or below MR exact.")
}

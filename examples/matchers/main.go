// Matcher library tour: run every bipartite matcher on one candidate
// graph and the general-graph matcher on an R-MAT-style graph,
// comparing weight and runtime — the §V design space the paper chooses
// the locally-dominant algorithm from.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	netalignmc "netalignmc"
)

func main() {
	// A random sparse candidate graph.
	rng := rand.New(rand.NewSource(7))
	var edges []netalignmc.CandidateEdge
	const n = 2000
	for a := 0; a < n; a++ {
		for k := 0; k < 6; k++ {
			edges = append(edges, netalignmc.CandidateEdge{
				A: a, B: rng.Intn(n), W: rng.Float64(),
			})
		}
	}
	l, err := netalignmc.NewCandidateGraph(n, n, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bipartite graph: %d + %d vertices, %d edges\n\n", l.NA, l.NB, l.NumEdges())

	matchers := []struct {
		name string
		m    netalignmc.Matcher
	}{
		{"exact (SSP)", netalignmc.ExactMatcher},
		{"greedy", netalignmc.GreedyMatcher},
		{"locally-dominant", netalignmc.ApproxMatcher},
		{"suitor", netalignmc.SuitorMatcher},
		{"path-growing", netalignmc.PathGrowingMatcher},
		{"auction eps=1e-4", netalignmc.NewAuctionMatcher(1e-4)},
	}
	var exactW float64
	for _, entry := range matchers {
		start := time.Now()
		r := entry.m(l, 0)
		el := time.Since(start)
		if exactW == 0 {
			exactW = r.Weight
		}
		fmt.Printf("%-18s weight=%9.2f (%.4f of exact)  card=%5d  %v\n",
			entry.name, r.Weight, r.Weight/exactW, r.Card, el.Round(time.Microsecond))
	}

	// Maximum cardinality, ignoring weights.
	hk := netalignmc.HopcroftKarp(l, nil)
	fmt.Printf("%-18s card=%d (weights ignored)\n\n", "hopcroft-karp", hk.Card)

	// General (non-bipartite) matching on a small skewed graph.
	gb := netalignmc.NewGraphBuilder(500)
	weights := map[netalignmc.GraphEdge]float64{}
	for i := 0; i < 1500; i++ {
		u, v := rng.Intn(500), rng.Intn(500)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		gb.AddEdge(u, v)
		weights[netalignmc.GraphEdge{U: u, V: v}] = rng.Float64()
	}
	g := gb.Build()
	// Fill weights for deduplicated edge set.
	wg, err := netalignmc.NewWeightedGraph(g, weights)
	if err != nil {
		log.Fatal(err)
	}
	mate, w := netalignmc.LocallyDominantGeneral(wg, 0)
	matched := 0
	for _, m := range mate {
		if m >= 0 {
			matched++
		}
	}
	fmt.Printf("general graph: %d vertices %d edges -> matched %d vertices, weight %.2f\n",
		g.NumVertices(), g.NumEdges(), matched, w)
}

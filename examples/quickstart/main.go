// Quickstart: build a tiny network alignment problem by hand, run
// belief propagation with approximate rounding, and inspect the
// resulting alignment through the public API.
package main

import (
	"fmt"
	"log"

	netalignmc "netalignmc"
)

func main() {
	// Graph A: a 4-cycle. Graph B: the same 4-cycle with one chord.
	a := netalignmc.GraphFromEdges(4, []netalignmc.GraphEdge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
	})
	b := netalignmc.GraphFromEdges(4, []netalignmc.GraphEdge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2},
	})

	// Candidate pairs: every vertex may map to itself or its cycle
	// neighbor; identity candidates score slightly higher.
	var candidates []netalignmc.CandidateEdge
	for v := 0; v < 4; v++ {
		candidates = append(candidates,
			netalignmc.CandidateEdge{A: v, B: v, W: 1.0},
			netalignmc.CandidateEdge{A: v, B: (v + 1) % 4, W: 0.8},
		)
	}
	l, err := netalignmc.NewCandidateGraph(4, 4, candidates)
	if err != nil {
		log.Fatal(err)
	}

	// α weighs the matched candidate scores, β the overlapped edges.
	p, err := netalignmc.NewProblem(a, b, l, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: |E_L|=%d, nnz(S)=%d\n", p.L.NumEdges(), p.NNZS())

	res := p.BPAlign(netalignmc.BPOptions{
		Iterations: 50,
		Rounding:   netalignmc.ApproxMatcher, // parallel half-approximate rounding
	})

	fmt.Printf("objective:    %.3f\n", res.Objective)
	fmt.Printf("match weight: %.3f\n", res.MatchWeight)
	fmt.Printf("overlap:      %.0f edge pairs\n", res.Overlap)
	for va, vb := range res.Matching.MateA {
		if vb >= 0 {
			fmt.Printf("  A%d -> B%d\n", va, vb)
		}
	}
}

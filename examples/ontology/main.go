// Ontology alignment example: run BP with batched rounding on a
// stand-in for the lcsh-wiki subject-heading alignment, showing the
// per-step time breakdown (paper Figure 7) and the effect of the
// rounding batch size (Section IV-C).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	netalignmc "netalignmc"
)

func main() {
	p, err := netalignmc.LcshWiki(0.01, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	st := netalignmc.StatsOf("lcsh-wiki (stand-in)", p)
	fmt.Printf("%s: |V_A|=%d |V_B|=%d |E_L|=%d nnz(S)=%d (threads=%d)\n\n",
		st.Name, st.VA, st.VB, st.EL, st.NnzS, runtime.GOMAXPROCS(0))

	const iters = 20
	for _, batch := range []int{1, 10, 20} {
		timer := netalignmc.NewStepTimer()
		start := time.Now()
		res := p.BPAlign(netalignmc.BPOptions{
			Iterations: iters,
			Batch:      batch,
			Gamma:      0.99,
			Rounding:   netalignmc.ApproxMatcher,
			Timer:      timer,
		})
		fmt.Printf("BP(batch=%-2d): objective=%.2f overlap=%.0f elapsed=%v\n",
			batch, res.Objective, res.Overlap, time.Since(start).Round(time.Millisecond))
		fmt.Printf("%s\n", timer)
	}
	fmt.Println("The matching step dominates (paper: 58% at 40 threads for batch=20);")
	fmt.Println("batching lets the roundings run as concurrent tasks.")
}

// Computational steering example (paper Section IX): run an
// alignment, inspect it with a report against the planted truth,
// "fix" a problematic match by removing the offending candidate from
// L, pin a known-good match, and recompute — the human-in-the-loop
// workflow the paper argues the 36-second solve time enables.
package main

import (
	"fmt"
	"log"

	netalignmc "netalignmc"
)

func main() {
	// A synthetic problem with a planted identity alignment and heavy
	// candidate noise, so the first solve gets some matches wrong.
	o := netalignmc.DefaultSynthetic(12, 99)
	o.N = 120
	p, err := netalignmc.NewSyntheticProblem(o)
	if err != nil {
		log.Fatal(err)
	}

	solve := func(p *netalignmc.Problem) *netalignmc.AlignResult {
		return p.BPAlign(netalignmc.BPOptions{
			Iterations: 60,
			Rounding:   netalignmc.ApproxMatcher,
		})
	}
	res := solve(p)
	fmt.Printf("initial solve: objective=%.2f, correct=%.1f%%\n",
		res.Objective, 100*netalignmc.CorrectMatchFraction(res.Matching))

	// The analyst spots wrong matches (here: any non-identity pair)
	// and removes those candidate links from L.
	var wrong []int
	for a, b := range res.Matching.MateA {
		if b >= 0 && b != a {
			if e, ok := p.L.Find(a, b); ok {
				wrong = append(wrong, e)
			}
		}
	}
	fmt.Printf("removing %d problematic candidate links and re-solving...\n", len(wrong))
	p2, err := p.RemoveCandidates(wrong, 0)
	if err != nil {
		log.Fatal(err)
	}
	res2 := solve(p2)
	fmt.Printf("after removal: objective=%.2f, correct=%.1f%%\n",
		res2.Objective, 100*netalignmc.CorrectMatchFraction(res2.Matching))

	// Pin a known-correct match: vertex 0 must map to vertex 0.
	if e, ok := p2.L.Find(0, 0); ok {
		p3, err := p2.PinCandidates([]int{e}, 0)
		if err != nil {
			log.Fatal(err)
		}
		res3 := solve(p3)
		fmt.Printf("after pinning A0->B0: A0 maps to B%d (correct=%.1f%%)\n",
			res3.Matching.MateA[0], 100*netalignmc.CorrectMatchFraction(res3.Matching))
	}
}

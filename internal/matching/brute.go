package matching

import "netalignmc/internal/bipartite"

// Brute computes a maximum-weight matching by exhaustive branch and
// bound over the edges. It is exponential and exists to validate the
// exact solver on small instances in tests; it returns only the
// optimal weight since distinct matchings can attain it.
func Brute(g *bipartite.Graph) float64 {
	usedA := make([]bool, g.NA)
	usedB := make([]bool, g.NB)
	best := 0.0
	var rec func(e int, acc float64)
	rec = func(e int, acc float64) {
		if acc > best {
			best = acc
		}
		if e >= g.NumEdges() {
			return
		}
		// Bound: remaining positive weight.
		rem := 0.0
		for k := e; k < g.NumEdges(); k++ {
			if g.W[k] > 0 {
				rem += g.W[k]
			}
		}
		if acc+rem <= best {
			return
		}
		// Take edge e if possible.
		a, b := g.EdgeA[e], g.EdgeB[e]
		if !usedA[a] && !usedB[b] && g.W[e] > 0 {
			usedA[a], usedB[b] = true, true
			rec(e+1, acc+g.W[e])
			usedA[a], usedB[b] = false, false
		}
		// Skip edge e.
		rec(e+1, acc)
	}
	rec(0, 0)
	return best
}

package matching

import (
	"math"

	"netalignmc/internal/bipartite"
)

// SubsetMatcher solves maximum-weight matching subproblems restricted
// to subsets of a bipartite graph's edges, reusing preallocated
// scratch across calls. It exists for the row-matching step of Klau's
// method, which solves one small matching per row of S every
// iteration: the paper preallocates "the maximum memory required for p
// threads to run matching problems on the rows of S... outside of the
// iteration", and this type is that per-thread scratch. A SubsetMatcher
// is NOT safe for concurrent use — create one per worker.
//
// Vertex compaction uses epoch-stamped arrays over the full vertex
// ranges (O(NA+NB) memory once per worker, O(row) time per call), so a
// call allocates nothing after warm-up.
type SubsetMatcher struct {
	epoch          int64
	aStamp, bStamp []int64
	aID, bID       []int

	// Compact subproblem in CSR-by-A form.
	subNA, subNB int
	rowPtr       []int
	colB         []int
	wgt          []float64
	origPos      []int // input position of each compact edge
	aOrig        []int // original A id per compact A vertex (diagnostics)

	// Successive-shortest-path scratch (sized to subNB + subNA right
	// vertices: real vertices then one dummy per left vertex).
	potL, potR   []float64
	mateL        []int
	mateR        []int
	dist         []float64
	prevL        []int
	done         []bool
	heap         []pairItem
	countScratch []int
}

// NewSubsetMatcher returns a matcher for subproblems of a graph with
// vertex sides of size na and nb.
func NewSubsetMatcher(na, nb int) *SubsetMatcher {
	return &SubsetMatcher{
		aStamp: make([]int64, na),
		bStamp: make([]int64, nb),
		aID:    make([]int, na),
		bID:    make([]int, nb),
	}
}

// grow ensures slice capacity without reallocating on every call.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Solve computes a maximum-weight matching over the sub-multiset of
// g's edges given by edges (indices into g's canonical edge order)
// with the caller's weights. It appends the selected input positions
// to selected (which may be nil) and returns the new slice plus the
// total weight. Non-positive weights are never selected. Semantics
// match ExactSubset; only the allocation behavior differs.
func (m *SubsetMatcher) Solve(g *bipartite.Graph, edges []int, weights []float64, selected []int) ([]int, float64) {
	if len(edges) == 0 {
		return selected, 0
	}
	m.epoch++

	// Compact the touched vertices and count positive edges.
	nEdges := 0
	maxW := 0.0
	m.subNA, m.subNB = 0, 0
	for i, e := range edges {
		w := weights[i]
		if w <= 0 {
			continue
		}
		nEdges++
		if w > maxW {
			maxW = w
		}
		a, b := g.EdgeA[e], g.EdgeB[e]
		if m.aStamp[a] != m.epoch {
			m.aStamp[a] = m.epoch
			m.aID[a] = m.subNA
			m.subNA++
		}
		if m.bStamp[b] != m.epoch {
			m.bStamp[b] = m.epoch
			m.bID[b] = m.subNB
			m.subNB++
		}
	}
	if nEdges == 0 {
		return selected, 0
	}

	// Build the compact CSR (counting sort by compact A id).
	na, nb := m.subNA, m.subNB
	m.rowPtr = growInts(m.rowPtr, na+1)
	m.countScratch = growInts(m.countScratch, na)
	for i := range m.countScratch {
		m.countScratch[i] = 0
	}
	for i, e := range edges {
		if weights[i] <= 0 {
			continue
		}
		m.countScratch[m.aID[g.EdgeA[e]]]++
	}
	m.rowPtr[0] = 0
	for a := 0; a < na; a++ {
		m.rowPtr[a+1] = m.rowPtr[a] + m.countScratch[a]
		m.countScratch[a] = m.rowPtr[a]
	}
	m.colB = growInts(m.colB, nEdges)
	m.wgt = growFloats(m.wgt, nEdges)
	m.origPos = growInts(m.origPos, nEdges)
	for i, e := range edges {
		w := weights[i]
		if w <= 0 {
			continue
		}
		ca := m.aID[g.EdgeA[e]]
		slot := m.countScratch[ca]
		m.countScratch[ca]++
		m.colB[slot] = m.bID[g.EdgeB[e]]
		m.wgt[slot] = w
		m.origPos[slot] = i
	}

	// Successive shortest paths with potentials; costs are maxW−w ≥ 0,
	// each left vertex has a private dummy right vertex of cost maxW.
	nr := nb + na
	m.potL = growFloats(m.potL, na)
	m.potR = growFloats(m.potR, nr)
	m.mateL = growInts(m.mateL, na)
	m.mateR = growInts(m.mateR, nr)
	m.dist = growFloats(m.dist, nr)
	m.prevL = growInts(m.prevL, nr)
	m.done = growBools(m.done, nr)
	for i := 0; i < na; i++ {
		m.potL[i] = 0
		m.mateL[i] = -1
	}
	for j := 0; j < nr; j++ {
		m.potR[j] = 0
		m.mateR[j] = -1
	}

	for s := 0; s < na; s++ {
		for j := 0; j < nr; j++ {
			m.dist[j] = math.Inf(1)
			m.prevL[j] = -1
			m.done[j] = false
		}
		m.heap = m.heap[:0]
		m.relax(s, 0, maxW, nb)
		end := -1
		for len(m.heap) > 0 {
			it := m.heapPop()
			j := it.key
			if m.done[j] || it.dist > m.dist[j] {
				continue
			}
			m.done[j] = true
			if m.mateR[j] == -1 {
				end = j
				break
			}
			m.relax(m.mateR[j], m.dist[j], maxW, nb)
		}
		if end == -1 {
			continue
		}
		delta := m.dist[end]
		m.potL[s] += delta
		for j := 0; j < nr; j++ {
			if !m.done[j] || j == end {
				continue
			}
			m.potR[j] += m.dist[j] - delta
			m.potL[m.mateR[j]] += delta - m.dist[j]
		}
		j := end
		for {
			i := m.prevL[j]
			m.mateR[j] = i
			j, m.mateL[i] = m.mateL[i], j
			if i == s {
				break
			}
		}
	}

	// Extract: for each matched compact pair, pick the heaviest input
	// position with that pair (first occurrence after CSR fill order).
	total := 0.0
	for a := 0; a < na; a++ {
		b := m.mateL[a]
		if b < 0 || b >= nb {
			continue
		}
		bestK := -1
		for k := m.rowPtr[a]; k < m.rowPtr[a+1]; k++ {
			if m.colB[k] == b && (bestK < 0 || m.wgt[k] > m.wgt[bestK]) {
				bestK = k
			}
		}
		if bestK >= 0 && m.wgt[bestK] > 0 {
			selected = append(selected, m.origPos[bestK])
			total += m.wgt[bestK]
		}
	}
	return selected, total
}

// GreedySubset is the half-approximate counterpart of
// SubsetMatcher.Solve: it selects edges from the subset in decreasing
// weight order, skipping conflicts. The paper deliberately uses exact
// matching for the tiny row problems of Klau's method ("we do not
// consider using the parallel approximation here"); this function
// exists to measure that design choice in the ablation benchmarks.
// It appends the selected positions to selected and returns the new
// slice plus the total weight. Ties break by input position for
// determinism.
func (m *SubsetMatcher) GreedySubset(g *bipartite.Graph, edges []int, weights []float64, selected []int) ([]int, float64) {
	if len(edges) == 0 {
		return selected, 0
	}
	m.epoch++
	// order holds input positions of positive edges, insertion-sorted
	// by decreasing weight (rows are tiny, so O(k^2) beats sort.Slice's
	// allocation).
	m.origPos = m.origPos[:0]
	for i := range edges {
		if weights[i] <= 0 {
			continue
		}
		m.origPos = append(m.origPos, i)
		for j := len(m.origPos) - 1; j > 0; j-- {
			a, b := m.origPos[j-1], m.origPos[j]
			if weights[a] > weights[b] || (weights[a] == weights[b] && a < b) {
				break
			}
			m.origPos[j-1], m.origPos[j] = m.origPos[j], m.origPos[j-1]
		}
	}
	total := 0.0
	for _, i := range m.origPos {
		e := edges[i]
		a, b := g.EdgeA[e], g.EdgeB[e]
		if m.aStamp[a] == m.epoch || m.bStamp[b] == m.epoch {
			continue // endpoint already used
		}
		m.aStamp[a] = m.epoch
		m.bStamp[b] = m.epoch
		selected = append(selected, i)
		total += weights[i]
	}
	return selected, total
}

// relax pushes the edges of compact left vertex i (plus its dummy)
// into the heap from path length base.
func (m *SubsetMatcher) relax(i int, base, maxW float64, nb int) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		j := m.colB[k]
		if m.done[j] {
			continue
		}
		nd := base + (maxW - m.wgt[k]) - m.potL[i] - m.potR[j]
		if nd < m.dist[j] {
			m.dist[j] = nd
			m.prevL[j] = i
			m.heapPush(pairItem{nd, j})
		}
	}
	dj := nb + i
	if !m.done[dj] {
		nd := base + maxW - m.potL[i] - m.potR[dj]
		if nd < m.dist[dj] {
			m.dist[dj] = nd
			m.prevL[dj] = i
			m.heapPush(pairItem{nd, dj})
		}
	}
}

func (m *SubsetMatcher) heapPush(it pairItem) {
	m.heap = append(m.heap, it)
	i := len(m.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if m.heap[parent].dist <= m.heap[i].dist {
			break
		}
		m.heap[parent], m.heap[i] = m.heap[i], m.heap[parent]
		i = parent
	}
}

func (m *SubsetMatcher) heapPop() pairItem {
	top := m.heap[0]
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.heap) && m.heap[l].dist < m.heap[smallest].dist {
			smallest = l
		}
		if r < len(m.heap) && m.heap[r].dist < m.heap[smallest].dist {
			smallest = r
		}
		if smallest == i {
			return top
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}

package matching

import (
	"math/rand"

	"netalignmc/internal/bipartite"
)

// HopcroftKarp computes a maximum-cardinality bipartite matching
// (ignoring weights) in O(E·√V) with the classic phase structure: a
// BFS layers the graph from free V_A vertices, then a DFS finds a
// maximal set of vertex-disjoint shortest augmenting paths. The paper
// cites the initialization literature for matching algorithms
// (Langguth/Manne/Sanders; Kaya et al.); HopcroftKarp provides the
// exact-cardinality reference those heuristics are measured against,
// and an optional warm start can seed it.
func HopcroftKarp(g *bipartite.Graph, warmStart *Result) *Result {
	const inf = int(^uint(0) >> 1)
	mateA := make([]int, g.NA)
	mateB := make([]int, g.NB)
	for i := range mateA {
		mateA[i] = -1
	}
	for i := range mateB {
		mateB[i] = -1
	}
	if warmStart != nil && len(warmStart.MateA) == g.NA {
		copy(mateA, warmStart.MateA)
		copy(mateB, warmStart.MateB)
	}

	dist := make([]int, g.NA)
	queue := make([]int, 0, g.NA)

	bfs := func() bool {
		queue = queue[:0]
		for a := 0; a < g.NA; a++ {
			if mateA[a] == -1 {
				dist[a] = 0
				queue = append(queue, a)
			} else {
				dist[a] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			a := queue[qi]
			lo, hi := g.RowRange(a)
			for e := lo; e < hi; e++ {
				b := g.EdgeB[e]
				next := mateB[b]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[a] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	var dfs func(a int) bool
	dfs = func(a int) bool {
		lo, hi := g.RowRange(a)
		for e := lo; e < hi; e++ {
			b := g.EdgeB[e]
			next := mateB[b]
			if next == -1 || (dist[next] == dist[a]+1 && dfs(next)) {
				mateA[a] = b
				mateB[b] = a
				return true
			}
		}
		dist[a] = inf
		return false
	}

	for bfs() {
		for a := 0; a < g.NA; a++ {
			if mateA[a] == -1 {
				dfs(a)
			}
		}
	}
	return NewResult(g, mateA, mateB)
}

// KarpSipser computes a maximal matching with the Karp–Sipser
// heuristic: repeatedly match a degree-1 vertex to its only neighbor
// (always safe — some maximum matching contains that edge), and when
// no degree-1 vertex exists, match a random edge. It typically finds
// near-maximum-cardinality matchings in linear time and is the warm
// start the initialization literature recommends for exact matchers.
func KarpSipser(g *bipartite.Graph, rng *rand.Rand) *Result {
	n := g.NA + g.NB
	deg := make([]int, n)
	matched := make([]bool, n)
	for a := 0; a < g.NA; a++ {
		deg[a] = g.DegreeA(a)
	}
	for b := 0; b < g.NB; b++ {
		deg[g.NA+b] = g.DegreeB(b)
	}

	mateA := make([]int, g.NA)
	mateB := make([]int, g.NB)
	for i := range mateA {
		mateA[i] = -1
	}
	for i := range mateB {
		mateB[i] = -1
	}

	// neighborsOf yields the unmatched neighbors of combined vertex v.
	unmatchedNeighbors := func(v int) []int {
		var out []int
		if v < g.NA {
			lo, hi := g.RowRange(v)
			for e := lo; e < hi; e++ {
				if t := g.NA + g.EdgeB[e]; !matched[t] {
					out = append(out, t)
				}
			}
		} else {
			for _, e := range g.ColEdgesOf(v - g.NA) {
				if t := g.EdgeA[e]; !matched[t] {
					out = append(out, t)
				}
			}
		}
		return out
	}

	match := func(u, v int) {
		matched[u], matched[v] = true, true
		a, b := u, v-g.NA
		if u >= g.NA {
			a, b = v, u-g.NA
		}
		mateA[a] = b
		mateB[b] = a
		for _, w := range unmatchedNeighbors(u) {
			deg[w]--
		}
		for _, w := range unmatchedNeighbors(v) {
			deg[w]--
		}
	}

	// Degree-1 queue seeded from the initial degrees; vertices whose
	// degree drops to 1 later are found by rescans of a simple stack.
	stack := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if deg[v] == 1 {
			stack = append(stack, v)
		}
	}
	order := rng.Perm(g.NumEdges())
	oi := 0
	for {
		progressed := false
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if matched[v] || deg[v] == 0 {
				continue
			}
			nbrs := unmatchedNeighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			u := nbrs[0]
			match(v, u)
			progressed = true
			for _, w := range append(unmatchedNeighbors(v), unmatchedNeighbors(u)...) {
				if deg[w] == 1 {
					stack = append(stack, w)
				}
			}
		}
		// No degree-1 vertices: take the next random edge with both
		// endpoints unmatched.
		for oi < len(order) {
			e := order[oi]
			oi++
			a, b := g.EdgeA[e], g.NA+g.EdgeB[e]
			if !matched[a] && !matched[b] {
				match(a, b)
				progressed = true
				for _, w := range append(unmatchedNeighbors(a), unmatchedNeighbors(b)...) {
					if deg[w] == 1 {
						stack = append(stack, w)
					}
				}
				break
			}
		}
		if !progressed {
			break
		}
	}
	return NewResult(g, mateA, mateB)
}

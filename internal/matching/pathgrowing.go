package matching

import "netalignmc/internal/bipartite"

// PathGrowing computes a half-approximate maximum-weight matching with
// the path-growing algorithm of Drake and Hougardy: starting from each
// unvisited vertex, greedily extend a path along the heaviest incident
// edge to an unvisited neighbor, alternately assigning edges to two
// candidate matchings M1 and M2; the heavier of the two is returned.
// Each edge of the optimal matching is adjacent to a path edge at
// least as heavy, giving the ½ guarantee. It is the classic serial
// alternative to the sorted-greedy baseline (no global sort, one pass)
// and is included for the matcher-comparison ablation.
//
// Note: unlike the greedy and locally-dominant matchers, PathGrowing
// does not return a maximal matching — the heavier of M1/M2 may leave
// an edge between two unmatched path vertices.
func PathGrowing(g *bipartite.Graph, threads int) *Result {
	_ = threads // inherently serial: the path order is a sequential dependence
	n := g.NA + g.NB
	visited := make([]bool, n)
	// Edge sets of the two alternating matchings, by edge index.
	inM := [2][]int{}
	weight := [2]float64{}

	heaviestEdge := func(v int) (edge int, to int) {
		edge, to = -1, -1
		bestW := 0.0
		if v < g.NA {
			lo, hi := g.RowRange(v)
			for e := lo; e < hi; e++ {
				t := g.NA + g.EdgeB[e]
				if visited[t] || g.W[e] <= 0 {
					continue
				}
				if g.W[e] > bestW || (g.W[e] == bestW && t > to) {
					bestW, edge, to = g.W[e], e, t
				}
			}
			return edge, to
		}
		for _, e := range g.ColEdgesOf(v - g.NA) {
			t := g.EdgeA[e]
			if visited[t] || g.W[e] <= 0 {
				continue
			}
			if g.W[e] > bestW || (g.W[e] == bestW && t > to) {
				bestW, edge, to = g.W[e], e, t
			}
		}
		return edge, to
	}

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		v := start
		side := 0
		for {
			visited[v] = true
			e, to := heaviestEdge(v)
			if e < 0 {
				break
			}
			inM[side] = append(inM[side], e)
			weight[side] += g.W[e]
			side = 1 - side
			v = to
		}
	}

	pick := 0
	if weight[1] > weight[0] {
		pick = 1
	}
	r := emptyResult(g)
	for _, e := range inM[pick] {
		a, b := g.EdgeA[e], g.EdgeB[e]
		// Within one path the alternate edges are vertex-disjoint, and
		// paths are vertex-disjoint by the visited marks, so no
		// conflicts are possible; guard anyway for safety.
		if r.MateA[a] >= 0 || r.MateB[b] >= 0 {
			continue
		}
		r.MateA[a] = b
		r.MateB[b] = a
		r.Weight += g.W[e]
		r.Card++
	}
	return r
}

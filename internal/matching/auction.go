package matching

import (
	"math"

	"netalignmc/internal/bipartite"
)

// Auction computes a near-optimal maximum-weight bipartite matching
// with Bertsekas's auction algorithm: unassigned V_A vertices
// repeatedly bid for their most valuable V_B vertex (value = weight −
// price), raising its price by the bid increment (best value − second
// value + ε). A vertex whose best value is negative stays unmatched —
// taking a negative-value object can never help a maximum-weight
// matching.
//
// The result is within n·ε of the optimal weight, where n is the
// number of matched vertices. Auction is the classic alternative to
// augmenting-path matching with far better parallelization potential;
// it is included as an additional rounding option and baseline (the
// paper's discussion of matching algorithms with "limited concurrency"
// is exactly about this design space).
func Auction(g *bipartite.Graph, threads int, eps float64) *Result {
	_ = threads // Gauss–Seidel auction; one bid is processed at a time.
	r := emptyResult(g)
	if g.NumEdges() == 0 {
		return r
	}
	if eps <= 0 {
		eps = 1e-6
	}
	price := make([]float64, g.NB)
	owner := make([]int, g.NB)
	for i := range owner {
		owner[i] = -1
	}
	// Queue of unassigned bidders that still want to bid.
	queue := make([]int, 0, g.NA)
	for a := 0; a < g.NA; a++ {
		if lo, hi := g.RowRange(a); lo < hi {
			queue = append(queue, a)
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		// Find the best and second-best values over a's edges.
		best, bestE := -1, -1
		bestV, secondV := math.Inf(-1), math.Inf(-1)
		lo, hi := g.RowRange(a)
		for e := lo; e < hi; e++ {
			b := g.EdgeB[e]
			v := g.W[e] - price[b]
			if v > bestV {
				secondV = bestV
				bestV = v
				best = b
				bestE = e
			} else if v > secondV {
				secondV = v
			}
		}
		if best < 0 || bestV < 0 || g.W[bestE] <= 0 {
			continue // bidder prefers staying unmatched
		}
		// Staying unmatched is an implicit second option of value 0:
		// never bid past the point where holding the object is worse
		// than being free, or ε-complementary slackness (and hence the
		// opt − n·ε guarantee) would break.
		if secondV < 0 || math.IsInf(secondV, -1) {
			secondV = 0
		}
		incr := bestV - secondV + eps
		price[best] += incr
		// Assign a to best, evicting the previous owner.
		if prev := owner[best]; prev >= 0 {
			queue = append(queue, prev)
		}
		owner[best] = a
	}

	for b, a := range owner {
		if a < 0 {
			continue
		}
		e, ok := g.Find(a, b)
		if !ok || g.W[e] <= 0 {
			continue
		}
		r.MateA[a] = b
		r.MateB[b] = a
		r.Weight += g.W[e]
		r.Card++
	}
	return r
}

// NewAuctionMatcher adapts Auction to the Matcher type with a fixed
// epsilon.
func NewAuctionMatcher(eps float64) Matcher {
	return func(g *bipartite.Graph, threads int) *Result {
		return Auction(g, threads, eps)
	}
}

package matching

// Parametric graph families with analytically known optimal matching
// weights: closed-form verification complementing the randomized
// property tests.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/graph"
)

// TestFamilyUniformCompleteBipartite: K_{n,n} with unit weights has
// optimum n.
func TestFamilyUniformCompleteBipartite(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		var edges []bipartite.WeightedEdge
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				edges = append(edges, bipartite.WeightedEdge{A: a, B: b, W: 1})
			}
		}
		g := mustGraph(t, n, n, edges)
		if r := Exact(g, 1); math.Abs(r.Weight-float64(n)) > 1e-9 {
			t.Fatalf("K_%d,%d exact = %g", n, n, r.Weight)
		}
		if r := Approx(g, 2); r.Card != n {
			t.Fatalf("K_%d,%d approx matched %d", n, n, r.Card)
		}
	}
}

// TestFamilyIncreasingPath: the alternating path a0-b0-a1-b1-... with
// weights 1,2,3,... has a closed-form optimum: with 2k edges, pick the
// even-position weights 2,4,...,2k; with 2k+1 edges, pick 1,3,...,2k+1
// — whichever alternation is heavier (the even alternation for even
// counts; for odd counts the odd alternation {1,3,..,2k+1} sums to
// (k+1)² versus the even {2,4,..,2k} = k(k+1), so odd wins).
func TestFamilyIncreasingPath(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 7, 10, 15} {
		// Path with m edges alternates sides: edge i joins
		// a_{ceil(i/2)} and b_{floor(i/2)}.
		var edges []bipartite.WeightedEdge
		for i := 0; i < m; i++ {
			edges = append(edges, bipartite.WeightedEdge{A: (i + 1) / 2, B: i / 2, W: float64(i + 1)})
		}
		na := (m+1)/2 + 1
		nb := m/2 + 1
		g := mustGraph(t, na, nb, edges)
		// Closed form: max over the two alternations.
		even, odd := 0.0, 0.0
		for i := 1; i <= m; i++ {
			if i%2 == 0 {
				even += float64(i)
			} else {
				odd += float64(i)
			}
		}
		want := math.Max(even, odd)
		if r := Exact(g, 1); math.Abs(r.Weight-want) > 1e-9 {
			t.Fatalf("path m=%d: exact %g, want %g", m, r.Weight, want)
		}
		// Half-approx guarantee on the same family.
		if r := Approx(g, 1); r.Weight < want/2-1e-9 {
			t.Fatalf("path m=%d: approx %g below half of %g", m, r.Weight, want)
		}
	}
}

// TestFamilyStarGadget: k stars sharing no vertices; optimum = sum of
// each star's heaviest ray.
func TestFamilyStarGadget(t *testing.T) {
	const k, rays = 5, 4
	var edges []bipartite.WeightedEdge
	want := 0.0
	for s := 0; s < k; s++ {
		bestRay := 0.0
		for r := 0; r < rays; r++ {
			w := float64(s*rays + r + 1)
			edges = append(edges, bipartite.WeightedEdge{A: s, B: s*rays + r, W: w})
			if w > bestRay {
				bestRay = w
			}
		}
		want += bestRay
	}
	g := mustGraph(t, k, k*rays, edges)
	for name, m := range map[string]Matcher{
		"exact": Exact, "greedy": Greedy, "ld": Approx, "suitor": Suitor,
	} {
		r := m(g, 2)
		// Stars are vertex-disjoint, so every matcher is optimal here.
		if math.Abs(r.Weight-want) > 1e-9 {
			t.Fatalf("%s: stars = %g, want %g", name, r.Weight, want)
		}
	}
}

// TestMaxWeightGeneralExactAgainstBrute validates the bitmask DP
// against the branch-and-bound reference.
func TestMaxWeightGeneralExactAgainstBrute(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%10 + 2
		rng := rand.New(rand.NewSource(seed))
		g := randomWeighted(rng, n, 0.4)
		mate, w, err := MaxWeightGeneralExact(g)
		if err != nil {
			return false
		}
		for v, m := range mate {
			if m >= 0 && mate[m] != v {
				return false
			}
		}
		sum := 0.0
		for v, m := range mate {
			if m > v {
				sum += edgeWeight(g, v, m)
			}
		}
		if math.Abs(sum-w) > 1e-9 {
			return false
		}
		return math.Abs(w-bruteGeneral(g)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The general half-approximate matchers respect the exact optimum.
func TestGeneralHalfApproxAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		g := randomWeighted(rng, rng.Intn(12)+2, 0.35)
		_, opt, err := MaxWeightGeneralExact(g)
		if err != nil {
			t.Fatal(err)
		}
		_, ldw := LocallyDominantGeneral(g, 2)
		_, sw := SuitorGeneral(g, 2)
		for name, w := range map[string]float64{"ld": ldw, "suitor": sw} {
			if w < opt/2-1e-9 || w > opt+1e-9 {
				t.Fatalf("trial %d %s: %g outside [opt/2, opt] of %g", trial, name, w, opt)
			}
		}
	}
}

func TestMaxWeightGeneralExactLimit(t *testing.T) {
	b := graph.NewBuilder(30)
	g, err := NewWeightedGraph(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MaxWeightGeneralExact(g); err == nil {
		t.Fatal("vertex limit not enforced")
	}
	empty, errG := NewWeightedGraph(graph.NewBuilder(0).Build(), nil)
	if errG != nil {
		t.Fatal(errG)
	}
	if mate, w, err := MaxWeightGeneralExact(empty); err != nil || len(mate) != 0 || w != 0 {
		t.Fatal("empty graph mishandled")
	}
}

package matching

import (
	"math"
	"runtime"
	"sync/atomic"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/parallel"
)

// Suitor computes a half-approximate maximum-weight matching with the
// Suitor algorithm (Manne and Halappanavar), the successor to the
// locally-dominant algorithm from the same research program as the
// paper. Specialized to bipartite graphs, only V_A vertices propose:
// each proposes to the heaviest neighbor whose standing offer it can
// beat; a dethroned suitor immediately re-proposes elsewhere. This is
// weighted deferred acceptance; with the strict (weight, proposer id)
// order it computes exactly the greedy matching, hence weight ≥
// ½·optimum and maximality over positive-weight edges.
//
// Concurrency: each V_B vertex's (suitor, offer) pair is guarded by a
// per-vertex spinlock; the racy pre-scan is re-verified under the
// lock. Offers strictly increase in the (weight, proposer) order, so
// the number of successful proposals is bounded and the algorithm
// terminates.
func Suitor(g *bipartite.Graph, threads int) *Result {
	return SuitorInto(g, threads, nil, nil)
}

// SuitorScratch holds the reusable state of Suitor runs, making
// successive SuitorInto calls on graphs of stable size allocation-free.
// A scratch serves one matcher call at a time.
type SuitorScratch struct {
	st suitorState
}

// SuitorInto is Suitor with buffer reuse: scratch provides the
// algorithm state (nil allocates fresh state) and the matching is
// written into out (nil allocates a fresh Result). At one thread the
// proposal loop runs serially with no goroutines or closures.
func SuitorInto(g *bipartite.Graph, threads int, scratch *SuitorScratch, out *Result) *Result {
	if scratch == nil {
		scratch = &SuitorScratch{}
	}
	st := &scratch.st
	st.g = g
	st.suitor = growInt32(st.suitor, g.NB)
	st.offerW = growUint64(st.offerW, g.NB)
	st.lock = growInt32(st.lock, g.NB)
	for i := range st.suitor {
		st.suitor[i] = -1
		st.offerW[i] = 0
		st.lock[i] = 0
	}
	p := parallel.Threads(threads)
	if p == 1 {
		for a := 0; a < g.NA; a++ {
			st.propose(int32(a))
		}
	} else {
		// Partition the proposers by incident-edge count rather than
		// vertex count: proposal cost is dominated by the neighborhood
		// scans, and L's degree distribution makes an equal vertex
		// split uneven. The offsets are derived from L's row pointer in
		// O(p log n) and cached in the scratch.
		if st.proposeBody == nil {
			st.proposeBody = func(lo, hi int) {
				for a := lo; a < hi; a++ {
					st.propose(int32(a))
				}
			}
		}
		st.parts = parallel.BalancedOffsetsFromPtr(g.RowPtr, p, st.parts)
		parallel.ForOffsets(st.parts, st.proposeBody)
	}

	if out == nil {
		out = &Result{}
	}
	out.Reset(g)
	for b := 0; b < g.NB; b++ {
		a := st.suitor[b]
		if a < 0 {
			continue
		}
		// Each V_A vertex stands as suitor of at most one V_B vertex,
		// so reading suitor[b] directly yields a matching.
		if e, ok := g.Find(int(a), b); ok {
			out.MateA[a] = b
			out.MateB[b] = int(a)
			out.Weight += g.W[e]
			out.Card++
		}
	}
	return out
}

type suitorState struct {
	g      *bipartite.Graph
	suitor []int32  // standing proposer of each V_B vertex, -1 none
	offerW []uint64 // float64 bits of that proposal's weight
	lock   []int32  // per-vertex spinlocks

	// parts caches the nnz-balanced proposer partition; proposeBody is
	// the hoisted parallel loop body (built once per state so repeat
	// calls allocate no closures).
	parts       []int
	proposeBody func(lo, hi int)
}

func (st *suitorState) lockVertex(b int32) {
	for !atomic.CompareAndSwapInt32(&st.lock[b], 0, 1) {
		runtime.Gosched()
	}
}

func (st *suitorState) unlockVertex(b int32) {
	atomic.StoreInt32(&st.lock[b], 0)
}

func (st *suitorState) offer(b int32) (float64, int32) {
	w := math.Float64frombits(atomic.LoadUint64(&st.offerW[b]))
	s := atomic.LoadInt32(&st.suitor[b])
	return w, s
}

// beats reports whether a proposal (w, proposer) beats the standing
// proposal (curW, curSuitor), with proposer id breaking weight ties so
// the order is strict and the algorithm terminates.
func beats(w float64, proposer int32, curW float64, curSuitor int32) bool {
	if w != curW {
		return w > curW
	}
	return proposer > curSuitor
}

// propose runs the suitor chain starting at V_A vertex a: a proposes
// to the best V_B neighbor it can beat; if that dethrones a previous
// suitor the chain continues from the dethroned vertex.
func (st *suitorState) propose(a int32) {
	g := st.g
	current := a
	for {
		var best int32 = -1
		bestW := 0.0
		lo, hi := g.RowRange(int(current))
		for e := lo; e < hi; e++ {
			w := g.W[e]
			if w <= 0 {
				continue
			}
			b := int32(g.EdgeB[e])
			curW, curS := st.offer(b)
			if !beats(w, current, curW, curS) {
				continue
			}
			if w > bestW || (w == bestW && b > best) {
				bestW = w
				best = b
			}
		}
		if best < 0 {
			return // nobody left to propose to
		}
		st.lockVertex(best)
		curW, curS := st.offer(best)
		if beats(bestW, current, curW, curS) {
			atomic.StoreInt32(&st.suitor[best], current)
			atomic.StoreUint64(&st.offerW[best], math.Float64bits(bestW))
			st.unlockVertex(best)
			if curS < 0 {
				return
			}
			current = curS // the dethroned suitor re-proposes
		} else {
			// Lost the race for this partner; rescan for another.
			st.unlockVertex(best)
		}
	}
}

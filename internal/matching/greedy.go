package matching

import (
	"sort"

	"netalignmc/internal/bipartite"
)

// Greedy computes the classic serial half-approximate matching: visit
// edges in order of decreasing weight (ties broken by edge index for
// determinism) and take every edge whose endpoints are both free. Like
// the locally-dominant algorithm it guarantees weight ≥ ½·optimum and
// a maximal matching, but the global sort makes it inherently serial —
// it serves as the sequential baseline for the parallel matcher.
func Greedy(g *bipartite.Graph, threads int) *Result {
	_ = threads
	r := emptyResult(g)
	m := g.NumEdges()
	order := make([]int, 0, m)
	for e := 0; e < m; e++ {
		if g.W[e] > 0 {
			order = append(order, e)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		ei, ej := order[i], order[j]
		if g.W[ei] != g.W[ej] {
			return g.W[ei] > g.W[ej]
		}
		return ei < ej
	})
	for _, e := range order {
		a, b := g.EdgeA[e], g.EdgeB[e]
		if r.MateA[a] < 0 && r.MateB[b] < 0 {
			r.MateA[a] = b
			r.MateB[b] = a
			r.Weight += g.W[e]
			r.Card++
		}
	}
	return r
}

package matching

import (
	"runtime"
	"sync/atomic"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/parallel"
)

// LocallyDominantOptions configures the parallel half-approximate
// matcher.
type LocallyDominantOptions struct {
	// OneSidedInit enables the bipartite-tailored initialization from
	// the end of Section V: Phase 1 spawns work only from the V_A
	// vertex set; a V_A vertex determines local dominance by scanning
	// the adjacency of its candidate V_B vertex directly. V_B
	// candidates are initialized lazily during Phase 2. The paper
	// found this "noticeably improved the speed of the algorithm".
	OneSidedInit bool
	// SortedAdjacency precomputes, per vertex, its incident edges in
	// decreasing (weight, neighbor id) order so FINDMATE returns the
	// first unmatched entry instead of scanning the whole list — the
	// paper: "If the neighbor list is maintained in a sorted order,
	// this step can be done in constant time." The sort costs
	// O(E log d) once per call; it pays off when Phase 2 re-runs
	// FINDMATE many times (dense or highly contended graphs).
	SortedAdjacency bool
	// Chunk is the dynamic-schedule chunk size for the parallel loops
	// (0 means parallel.DefaultChunk).
	Chunk int
	// Stats, when non-nil, receives the run's queue dynamics.
	Stats *LDStats
}

// LDStats records the Phase-2 queue dynamics of one LocallyDominant
// run. The paper: "The size of Q_C determines the amount of work that
// can be done in parallel... the size decreases roughly by half after
// each iteration... The parallel time complexity of our implementation
// is determined by the number of iterations of the while loop
// (expected to be O(log |V|) if the size decreases by a constant in
// each iteration)."
type LDStats struct {
	// QueueSizes[r] is |Q_C| entering round r of Phase 2 (the Phase-1
	// output queue is round 0's input).
	QueueSizes []int
	// Rounds is the number of Phase-2 iterations executed.
	Rounds int
}

// LocallyDominant computes a half-approximate maximum-weight matching
// with the parallel locally-dominant algorithm (Preis; Manne and
// Bisseling; multicore version of Halappanavar et al.) — Algorithms
// 1–3 of the paper. The bipartite graph is treated as a general graph
// over V = V_A ∪ V_B (the paper: "we provide a bipartite graph as a
// general graph to the algorithm by not making a distinction between
// the two sets of vertices").
//
// Phase 1 computes, for every vertex in parallel, a candidate: its
// heaviest unmatched neighbor (FINDMATE), then matches every locally
// dominant edge — one whose endpoints point at each other
// (MATCHVERTEX). Matched vertices enter a queue. Phase 2 repeatedly
// processes the queue: when u is matched, every neighbor v whose
// candidate was u recomputes its candidate and re-tests dominance;
// newly matched vertices enter the next round's queue. Each worker
// appends to its own local queue — no shared counter, no contention —
// and the locals are merged into the next round's work list by
// prefix-sum compaction at the round barrier. Candidate/mate words are
// accessed with sequentially consistent atomics and matches are
// claimed with compare-and-swap so concurrent discoveries of
// overlapping pairs resolve safely; the matching itself is the unique
// greedy matching under (weight, id) dominance, so the merge order of
// the local queues cannot change the result.
func LocallyDominant(g *bipartite.Graph, threads int, opts LocallyDominantOptions) *Result {
	return LocallyDominantInto(g, threads, opts, nil, nil)
}

// LocallyDominantScratch holds the reusable state of LocallyDominant
// runs. Handing the same scratch to successive LocallyDominantInto
// calls on graphs of stable size makes the matcher allocation-free
// after the first call. A scratch serves one matcher call at a time:
// it must not be shared between concurrent calls.
type LocallyDominantScratch struct {
	st ldState
}

// LocallyDominantInto is LocallyDominant with buffer reuse: scratch
// provides the algorithm state (nil allocates fresh state) and the
// matching is written into out (nil allocates a fresh Result). At one
// thread the phases run as plain serial loops — no goroutines, no
// closures — which is what makes the solvers' steady-state rounding
// step allocation-free.
func LocallyDominantInto(g *bipartite.Graph, threads int, opts LocallyDominantOptions, scratch *LocallyDominantScratch, out *Result) *Result {
	if scratch == nil {
		scratch = &LocallyDominantScratch{}
	}
	st := &scratch.st
	st.prepare(g)
	p := parallel.Threads(threads)
	st.ensureLocal(p)
	if opts.SortedAdjacency {
		st.buildSortedAdjacency(p)
	} else {
		st.sortedPtr = st.sortedPtr[:0]
	}
	n := g.NA + g.NB // combined vertex space: V_A then V_B
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = parallel.DefaultChunk
	}
	// Small graphs: chunking at 1000 would serialize everything; let
	// the scheduler split finer when there is little work per vertex.
	if chunk > 1 && n/chunk < p {
		chunk = n/(2*p) + 1
	}

	// Phase 1.
	switch {
	case opts.OneSidedInit && p == 1:
		for a := 0; a < g.NA; a++ {
			st.processVertex(0, int32(a))
		}
	case opts.OneSidedInit:
		// Spawn only from V_A: compute a's candidate and test
		// dominance by scanning the candidate's adjacency directly.
		// Worker-id dispatch routes enqueues to per-worker queues.
		parallel.ForDynamicWorker(g.NA, p, chunk, st.phase1OneSided)
	case p == 1:
		for v := 0; v < n; v++ {
			st.setCandidate(int32(v), st.findMate(int32(v)))
		}
		for v := 0; v < n; v++ {
			st.processVertex(0, int32(v))
		}
	default:
		parallel.ForDynamic(n, p, chunk, st.phase1Cand)
		parallel.ForDynamicWorker(n, p, chunk, st.phase1Proc)
	}

	// Phase 1 enqueued the newly matched vertices into the per-worker
	// queues; merge them into the current work list (the paper's
	// Q_C ← Q_N swap, here a compaction of the worker locals).
	st.promoteQueue()

	// Phase 2: drain rounds until no new matches occur. Workers append
	// follow-up vertices to their local queues; the barrier between
	// rounds merges them.
	for len(st.qCur) > 0 {
		if opts.Stats != nil {
			opts.Stats.QueueSizes = append(opts.Stats.QueueSizes, len(st.qCur))
			opts.Stats.Rounds++
		}
		if p == 1 {
			for _, u := range st.qCur {
				st.processNeighbors(0, u)
			}
		} else {
			parallel.ForDynamicWorker(len(st.qCur), p, chunk, st.phase2Body)
		}
		st.promoteQueue()
	}

	if out == nil {
		out = &Result{}
	}
	out.Reset(g)
	for a := 0; a < g.NA; a++ {
		m := st.mate[a]
		if m < 0 {
			continue
		}
		b := int(m) - g.NA
		e, ok := g.Find(a, b)
		if !ok {
			continue
		}
		out.MateA[a] = b
		out.MateB[b] = a
		out.Weight += g.W[e]
		out.Card++
	}
	return out
}

// processNeighbors re-examines u's neighbors after u was matched: any
// unmatched neighbor whose candidate was u (or is still unset) must
// recompute its candidate and re-test dominance. w is the calling
// worker's id, routing enqueues to its local queue.
func (st *ldState) processNeighbors(w int, u int32) {
	g := st.g
	if int(u) < g.NA {
		lo, hi := g.RowRange(int(u))
		for e := lo; e < hi; e++ {
			st.maybeReprocess(w, u, int32(g.NA+g.EdgeB[e]))
		}
		return
	}
	for _, e := range g.ColEdgesOf(int(u) - g.NA) {
		st.maybeReprocess(w, u, int32(g.EdgeA[e]))
	}
}

func (st *ldState) maybeReprocess(w int, u, v int32) {
	if atomic.LoadInt32(&st.mate[v]) != -1 {
		return
	}
	c := atomic.LoadInt32(&st.candidate[v])
	if c == u || c == ldUnset {
		st.processVertex(w, v)
	}
}

// NewLocallyDominantMatcher adapts LocallyDominant to the Matcher
// function type with fixed options.
func NewLocallyDominantMatcher(opts LocallyDominantOptions) Matcher {
	return func(g *bipartite.Graph, threads int) *Result {
		return LocallyDominant(g, threads, opts)
	}
}

// Approx is the default approximate Matcher: the locally-dominant
// algorithm with one-sided initialization, the configuration the paper
// settles on for its experiments.
func Approx(g *bipartite.Graph, threads int) *Result {
	return LocallyDominant(g, threads, LocallyDominantOptions{OneSidedInit: true})
}

// ldState is the shared state of one LocallyDominant run. Vertices are
// numbered over the combined space: a ∈ V_A is vertex a; b ∈ V_B is
// vertex NA+b.
type ldState struct {
	g         *bipartite.Graph
	mate      []int32 // -1 unmatched, else partner vertex id
	candidate []int32 // -2 unset, -1 no unmatched neighbor, else vertex id
	queued    []int32 // 0/1 dedup flags for queue membership
	lock      []int32 // per-vertex spinlocks guarding match commits
	qCur      []int32
	// local[w] is worker w's private next-round queue; promoteQueue
	// compacts the locals into qCur at each round barrier. The `queued`
	// CAS flags guarantee each vertex enters at most one local queue
	// per run, so the locals together never exceed n entries.
	local [][]int32

	// Hoisted loop bodies for the parallel phases: handing a fresh
	// closure to every For* call would heap-allocate per round; these
	// are built once per state and read st's current fields at call
	// time.
	phase1OneSided func(w, lo, hi int)
	phase1Cand     func(lo, hi int)
	phase1Proc     func(w, lo, hi int)
	phase2Body     func(w, lo, hi int)

	// Sorted-adjacency acceleration (optional): per combined vertex,
	// the incident (neighbor, weight) pairs in decreasing (weight, id)
	// order, laid out contiguously with a pointer array.
	sortedPtr []int
	sortedNbr []int32
	sortedW   []float64
}

// prepare points the state at g and (re)initializes every array,
// reusing capacity from previous runs.
func (st *ldState) prepare(g *bipartite.Graph) {
	n := g.NA + g.NB
	st.g = g
	st.mate = growInt32(st.mate, n)
	st.candidate = growInt32(st.candidate, n)
	st.queued = growInt32(st.queued, n)
	st.lock = growInt32(st.lock, n)
	if cap(st.qCur) < n {
		st.qCur = make([]int32, 0, n)
	} else {
		st.qCur = st.qCur[:0]
	}
	for i := 0; i < n; i++ {
		st.mate[i] = -1
		st.candidate[i] = ldUnset
		st.queued[i] = 0
		st.lock[i] = 0
	}
	if st.phase2Body == nil {
		st.phase1OneSided = func(w, lo, hi int) {
			for a := lo; a < hi; a++ {
				st.processVertex(w, int32(a))
			}
		}
		st.phase1Cand = func(lo, hi int) {
			for v := lo; v < hi; v++ {
				st.setCandidate(int32(v), st.findMate(int32(v)))
			}
		}
		st.phase1Proc = func(w, lo, hi int) {
			for v := lo; v < hi; v++ {
				st.processVertex(w, int32(v))
			}
		}
		st.phase2Body = func(w, lo, hi int) {
			cur := st.qCur
			for qi := lo; qi < hi; qi++ {
				st.processNeighbors(w, cur[qi])
			}
		}
	}
}

// ensureLocal sizes the per-worker queue headers for p workers (worker
// ids from ForDynamicWorker are always below the thread count) and
// resets their lengths, keeping capacity from previous runs.
func (st *ldState) ensureLocal(p int) {
	for len(st.local) < p {
		st.local = append(st.local, nil)
	}
	for w := range st.local {
		st.local[w] = st.local[w][:0]
	}
}

// buildSortedAdjacency materializes the per-vertex sorted incidence
// lists.
func (st *ldState) buildSortedAdjacency(threads int) {
	g := st.g
	n := g.NA + g.NB
	st.sortedPtr = growInts(st.sortedPtr, n+1)
	st.sortedPtr[0] = 0
	for a := 0; a < g.NA; a++ {
		st.sortedPtr[a+1] = st.sortedPtr[a] + g.DegreeA(a)
	}
	for b := 0; b < g.NB; b++ {
		st.sortedPtr[g.NA+b+1] = st.sortedPtr[g.NA+b] + g.DegreeB(b)
	}
	total := st.sortedPtr[n]
	st.sortedNbr = growInt32(st.sortedNbr, total)
	st.sortedW = growFloats(st.sortedW, total)
	parallel.ForDynamic(n, threads, 64, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := st.sortedPtr[v]
			k := base
			if v < g.NA {
				elo, ehi := g.RowRange(v)
				for e := elo; e < ehi; e++ {
					st.sortedNbr[k] = int32(g.NA + g.EdgeB[e])
					st.sortedW[k] = g.W[e]
					k++
				}
			} else {
				for _, e := range g.ColEdgesOf(v - g.NA) {
					st.sortedNbr[k] = int32(g.EdgeA[e])
					st.sortedW[k] = g.W[e]
					k++
				}
			}
			// Insertion sort by (weight desc, id desc): incidence
			// lists are short in the sparse L graphs this is for.
			for i := base + 1; i < k; i++ {
				nb, w := st.sortedNbr[i], st.sortedW[i]
				j := i - 1
				for j >= base && (st.sortedW[j] < w || (st.sortedW[j] == w && st.sortedNbr[j] < nb)) {
					st.sortedNbr[j+1], st.sortedW[j+1] = st.sortedNbr[j], st.sortedW[j]
					j--
				}
				st.sortedNbr[j+1], st.sortedW[j+1] = nb, w
			}
		}
	})
}

const ldUnset = int32(-2)

// findMate scans the neighborhood of s for its heaviest unmatched
// neighbor with positive weight (Algorithm 2). Ties are broken by the
// larger vertex id so all threads agree on dominance.
func (st *ldState) findMate(s int32) int32 {
	if len(st.sortedPtr) > 0 {
		// Sorted incidence: the first unmatched entry is the answer.
		for k := st.sortedPtr[s]; k < st.sortedPtr[s+1]; k++ {
			if st.sortedW[k] <= 0 {
				return -1 // remaining entries are no better
			}
			t := st.sortedNbr[k]
			if atomic.LoadInt32(&st.mate[t]) == -1 {
				return t
			}
		}
		return -1
	}
	g := st.g
	best := int32(-1)
	bestW := 0.0
	consider := func(t int32, w float64) {
		if w <= 0 {
			return
		}
		if atomic.LoadInt32(&st.mate[t]) != -1 {
			return
		}
		if w > bestW || (w == bestW && t > best) {
			bestW = w
			best = t
		}
	}
	if int(s) < g.NA {
		lo, hi := g.RowRange(int(s))
		for e := lo; e < hi; e++ {
			consider(int32(g.NA+g.EdgeB[e]), g.W[e])
		}
	} else {
		for _, e := range g.ColEdgesOf(int(s) - g.NA) {
			consider(int32(g.EdgeA[e]), g.W[e])
		}
	}
	return best
}

func (st *ldState) setCandidate(v, c int32) {
	atomic.StoreInt32(&st.candidate[v], c)
}

// candidateOf returns v's candidate, computing it lazily if it is
// still unset (one-sided initialization leaves V_B candidates unset
// until first needed).
func (st *ldState) candidateOf(v int32) int32 {
	c := atomic.LoadInt32(&st.candidate[v])
	if c == ldUnset {
		c = st.findMate(v)
		// Another thread may be doing the same; either result is a
		// valid heaviest-unmatched snapshot, last write wins.
		st.setCandidate(v, c)
	}
	return c
}

// processVertex recomputes v's candidate and matches the edge if it is
// locally dominant (Algorithm 3 with CAS claiming). The retry loop
// handles the race where v's chosen candidate is matched by another
// thread between the dominance check and the claim. w is the calling
// worker's id for queue routing.
func (st *ldState) processVertex(w int, v int32) {
	for {
		if atomic.LoadInt32(&st.mate[v]) != -1 {
			return
		}
		c := st.findMate(v)
		st.setCandidate(v, c)
		if c < 0 {
			return
		}
		if st.candidateOf(c) != v {
			return
		}
		if st.tryMatch(v, c) {
			st.enqueue(w, v)
			st.enqueue(w, c)
			return
		}
		// Claim failed: v or c was matched concurrently; re-examine.
	}
}

// tryMatch atomically claims the pair (v, c) under the two endpoint
// locks, taken in id order so overlapping claims cannot deadlock. Both
// mate words are checked before either is written, so the mate array
// is monotone: entries only ever go from -1 to the final partner.
// (A CAS-then-rollback scheme is not equivalent — during the rollback
// window other threads' FINDMATE scans see the vertex as matched, skip
// it, and can commit a non-dominant edge, silently breaking the greedy
// equivalence. The transient is rare under loose scheduling but shows
// up readily once regions dispatch on the hot worker pool.)
func (st *ldState) tryMatch(v, c int32) bool {
	lo, hi := v, c
	if lo > hi {
		lo, hi = hi, lo
	}
	st.lockVertex(lo)
	st.lockVertex(hi)
	ok := atomic.LoadInt32(&st.mate[lo]) == -1 && atomic.LoadInt32(&st.mate[hi]) == -1
	if ok {
		atomic.StoreInt32(&st.mate[lo], hi)
		atomic.StoreInt32(&st.mate[hi], lo)
	}
	st.unlockVertex(hi)
	st.unlockVertex(lo)
	return ok
}

func (st *ldState) lockVertex(v int32) {
	for !atomic.CompareAndSwapInt32(&st.lock[v], 0, 1) {
		runtime.Gosched()
	}
}

func (st *ldState) unlockVertex(v int32) {
	atomic.StoreInt32(&st.lock[v], 0)
}

// promoteQueue compacts the per-worker queues into the current round's
// work list: the write offsets are the prefix sums of the local
// lengths, so the merge needs no shared counter and runs once per
// round barrier instead of once per append.
func (st *ldState) promoteQueue() {
	total := 0
	for _, q := range st.local {
		total += len(q)
	}
	st.qCur = growInt32(st.qCur, total)
	k := 0
	for w := range st.local {
		k += copy(st.qCur[k:], st.local[w])
		st.local[w] = st.local[w][:0]
	}
}

// enqueue adds v to worker w's local queue once per run; the CAS dedup
// flag ensures both discovering threads of a pair cannot double-queue
// an endpoint. The local append replaces the shared fetch-and-add slot
// counter of the original formulation: no cross-worker cache-line
// traffic on the hot enqueue path.
func (st *ldState) enqueue(w int, v int32) {
	if !atomic.CompareAndSwapInt32(&st.queued[v], 0, 1) {
		return
	}
	st.local[w] = append(st.local[w], v)
}

package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netalignmc/internal/graph"
)

// bruteMaxCard computes the maximum matching cardinality of a small
// general graph by branch and bound.
func bruteMaxCard(g *graph.Graph) int {
	edges := g.Edges()
	used := make([]bool, g.NumVertices())
	best := 0
	var rec func(i, count int)
	rec = func(i, count int) {
		if count+len(edges)-i <= best {
			return
		}
		if count > best {
			best = count
		}
		if i >= len(edges) {
			return
		}
		e := edges[i]
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			rec(i+1, count+1)
			used[e.U], used[e.V] = false, false
		}
		rec(i+1, count)
	}
	rec(0, 0)
	return best
}

func validateGeneralMates(t *testing.T, g *graph.Graph, mate []int, card int) {
	t.Helper()
	matched := 0
	for v, m := range mate {
		if m < 0 {
			continue
		}
		if mate[m] != v {
			t.Fatalf("mate not mutual at %d", v)
		}
		if !g.HasEdge(v, m) {
			t.Fatalf("matched non-edge (%d,%d)", v, m)
		}
		matched++
	}
	if matched != 2*card {
		t.Fatalf("card %d but %d matched vertices", card, matched)
	}
}

func TestBlossomTriangle(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	mate, card := MaxCardinalityGeneral(g)
	validateGeneralMates(t, g, mate, card)
	if card != 1 {
		t.Fatalf("triangle card = %d", card)
	}
}

func TestBlossomOddCycleWithTail(t *testing.T) {
	// 5-cycle plus a pendant: maximum matching has 3 edges — finding
	// it requires augmenting through the blossom.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
		{U: 2, V: 5},
	})
	mate, card := MaxCardinalityGeneral(g)
	validateGeneralMates(t, g, mate, card)
	if card != 3 {
		t.Fatalf("card = %d, want 3", card)
	}
}

func TestBlossomPetersenLike(t *testing.T) {
	// Two triangles joined by a path: perfect matching exists.
	g := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, // triangle 1
		{U: 5, V: 6}, {U: 6, V: 7}, {U: 5, V: 7}, // triangle 2
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, // path
	})
	mate, card := MaxCardinalityGeneral(g)
	validateGeneralMates(t, g, mate, card)
	if card != 4 {
		t.Fatalf("card = %d, want 4", card)
	}
}

func TestBlossomEmptyAndSingleton(t *testing.T) {
	g := graph.FromEdges(3, nil)
	mate, card := MaxCardinalityGeneral(g)
	if card != 0 {
		t.Fatal("edgeless graph matched something")
	}
	for _, m := range mate {
		if m != -1 {
			t.Fatal("edgeless graph has mates")
		}
	}
}

func TestQuickBlossomMatchesBrute(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%11 + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyi(rng, n, 0.4)
		mate, card := MaxCardinalityGeneral(g)
		for v, m := range mate {
			if m >= 0 && (mate[m] != v || !g.HasEdge(v, m)) {
				return false
			}
		}
		return card == bruteMaxCard(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBlossomAgainstHopcroftKarpOnBipartite(t *testing.T) {
	// On bipartite inputs the blossom algorithm must agree with HK.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		na, nb := rng.Intn(10)+1, rng.Intn(10)+1
		bg := randomGraph(rng, na, nb, 0.3)
		b := graph.NewBuilder(na + nb)
		for e := 0; e < bg.NumEdges(); e++ {
			b.AddEdge(bg.EdgeA[e], na+bg.EdgeB[e])
		}
		g := b.Build()
		_, card := MaxCardinalityGeneral(g)
		hk := HopcroftKarp(bg, nil)
		if card != hk.Card {
			t.Fatalf("trial %d: blossom %d != HK %d", trial, card, hk.Card)
		}
	}
}

func BenchmarkBlossom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(rng, 300, 0.03)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxCardinalityGeneral(g)
	}
}

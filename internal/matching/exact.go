package matching

import (
	"container/heap"
	"math"

	"netalignmc/internal/bipartite"
)

// Exact computes a maximum-weight bipartite matching (not necessarily
// perfect or maximum-cardinality) by successive shortest augmenting
// paths with potentials.
//
// The reduction: every a ∈ V_A gets a private dummy partner reachable
// by a zero-weight edge, making a left-perfect matching always exist;
// edge costs are maxW − w ≥ 0 so Dijkstra applies with zero initial
// potentials. Because every left vertex is matched (possibly to its
// dummy) in every feasible solution, the constant shift maxW cancels
// and minimizing cost maximizes Σw over the real matched edges. Edges
// with w ≤ 0 are never preferred over the dummy, so the result uses
// only positive-weight edges, which is what a maximum-weight matching
// does.
//
// The threads argument is accepted for Matcher compatibility but
// ignored: exact augmenting-path matching is the inherently serial
// baseline whose lack of concurrency motivates the paper.
func Exact(g *bipartite.Graph, threads int) *Result {
	_ = threads
	r := emptyResult(g)
	na, nb := g.NA, g.NB
	if na == 0 || nb == 0 || g.NumEdges() == 0 {
		return r
	}

	maxW := 0.0
	for _, w := range g.W {
		if w > maxW {
			maxW = w
		}
	}
	// Right-side vertex space: real vertices [0, nb), dummies
	// [nb, nb+na) with dummy of a at nb+a.
	nr := nb + na
	cost := func(e int) float64 { return maxW - g.W[e] } // real edge cost
	dummyCost := maxW

	potL := make([]float64, na)
	potR := make([]float64, nr)
	mateL := make([]int, na) // right vertex matched to a, -1 if none yet
	mateR := make([]int, nr) // left vertex matched to right, -1 if none
	for i := range mateL {
		mateL[i] = -1
	}
	for j := range mateR {
		mateR[j] = -1
	}

	dist := make([]float64, nr)
	prevL := make([]int, nr)
	done := make([]bool, nr)

	pq := &pairHeap{}
	for s := 0; s < na; s++ {
		// Dijkstra over right vertices from the free left vertex s.
		for j := range dist {
			dist[j] = math.Inf(1)
			prevL[j] = -1
			done[j] = false
		}
		pq.items = pq.items[:0]
		relax := func(i int, base float64) {
			lo, hi := g.RowRange(i)
			for e := lo; e < hi; e++ {
				j := g.EdgeB[e]
				if done[j] {
					continue
				}
				nd := base + cost(e) - potL[i] - potR[j]
				if nd < dist[j] {
					dist[j] = nd
					prevL[j] = i
					heap.Push(pq, pairItem{nd, j})
				}
			}
			dj := nb + i
			if !done[dj] {
				nd := base + dummyCost - potL[i] - potR[dj]
				if nd < dist[dj] {
					dist[dj] = nd
					prevL[dj] = i
					heap.Push(pq, pairItem{nd, dj})
				}
			}
		}
		relax(s, 0)
		end := -1
		for pq.Len() > 0 {
			it := heap.Pop(pq).(pairItem)
			j := it.key
			if done[j] || it.dist > dist[j] {
				continue
			}
			done[j] = true
			if mateR[j] == -1 {
				end = j
				break
			}
			relax(mateR[j], dist[j])
		}
		if end == -1 {
			// Unreachable: the dummy partner guarantees a free right
			// vertex is always reachable.
			continue
		}
		// Potential update keeps reduced costs nonnegative and makes
		// the augmenting path tight.
		delta := dist[end]
		potL[s] += delta
		for j := 0; j < nr; j++ {
			if !done[j] || j == end {
				continue
			}
			potR[j] += dist[j] - delta
			potL[mateR[j]] += delta - dist[j]
		}
		// Augment along prevL back to s.
		j := end
		for {
			i := prevL[j]
			mateR[j] = i
			j, mateL[i] = mateL[i], j
			if i == s {
				break
			}
		}
	}

	for a := 0; a < na; a++ {
		b := mateL[a]
		if b < 0 || b >= nb {
			continue // unmatched or matched to its dummy
		}
		e, ok := g.Find(a, b)
		if !ok || g.W[e] <= 0 {
			continue // zero-weight tie with the dummy: leave unmatched
		}
		r.MateA[a] = b
		r.MateB[b] = a
		r.Weight += g.W[e]
		r.Card++
	}
	return r
}

// pairItem is a (distance, right-vertex) heap entry with lazy deletion.
type pairItem struct {
	dist float64
	key  int
}

type pairHeap struct{ items []pairItem }

func (h *pairHeap) Len() int           { return len(h.items) }
func (h *pairHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *pairHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *pairHeap) Push(x interface{}) { h.items = append(h.items, x.(pairItem)) }
func (h *pairHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// ExactSubset solves a maximum-weight matching restricted to a subset
// of L's edges with caller-provided weights: pick a sub-multiset of
// edges[i] (with weight weights[i]) that forms a matching in L and
// maximizes total weight. It returns the selected positions into the
// edges slice and the total weight. This is the per-row matching of
// Klau's method (Listing 1, Step 1), where each row of S induces a
// small matching problem over the nonzero columns.
//
// The subproblem is compacted to its touched vertices, so cost depends
// only on the row size, and solved exactly — the paper always uses
// exact matching for the row problems because they are tiny and the
// parallelism is across rows.
func ExactSubset(g *bipartite.Graph, edges []int, weights []float64) (selected []int, value float64) {
	if len(edges) == 0 {
		return nil, 0
	}
	// Compact vertex ids.
	aID := make(map[int]int)
	bID := make(map[int]int)
	type subEdge struct {
		a, b, pos int
		w         float64
	}
	subEdges := make([]subEdge, 0, len(edges))
	for i, e := range edges {
		w := weights[i]
		if w <= 0 {
			continue
		}
		a, b := g.EdgeA[e], g.EdgeB[e]
		ca, ok := aID[a]
		if !ok {
			ca = len(aID)
			aID[a] = ca
		}
		cb, ok := bID[b]
		if !ok {
			cb = len(bID)
			bID[b] = cb
		}
		subEdges = append(subEdges, subEdge{ca, cb, i, w})
	}
	if len(subEdges) == 0 {
		return nil, 0
	}
	we := make([]bipartite.WeightedEdge, len(subEdges))
	for i, se := range subEdges {
		we[i] = bipartite.WeightedEdge{A: se.a, B: se.b, W: se.w}
	}
	sub, err := bipartite.New(len(aID), len(bID), we)
	if err != nil {
		return nil, 0 // cannot happen: ids are dense by construction
	}
	res := Exact(sub, 1)
	// Map matched pairs back to input positions, resolving duplicate
	// (a,b) inputs to the heaviest position (bipartite.New keeps max).
	for _, se := range subEdges {
		if res.MateA[se.a] == se.b {
			e, _ := sub.Find(se.a, se.b)
			if sub.W[e] == se.w {
				selected = append(selected, se.pos)
				value += se.w
				res.MateA[se.a] = -1 - res.MateA[se.a] // consume so dups don't double count
			}
		}
	}
	return selected, value
}

// Package matching provides the bipartite matching algorithms at the
// heart of the netalignmc reproduction:
//
//   - Exact maximum-weight bipartite matching via successive shortest
//     augmenting paths with potentials (the rounding baseline and the
//     solver for the small per-row problems in Klau's method).
//   - A serial greedy half-approximation (sort edges by weight).
//   - The parallel locally-dominant half-approximation of Preis /
//     Manne–Bisseling as implemented for multicores by Halappanavar et
//     al., which the paper substitutes for exact matching (Section V,
//     Algorithms 1–3), including the bipartite one-sided
//     initialization variant.
//
// All algorithms consume the bipartite candidate graph L
// (internal/bipartite) and produce a Result in L's canonical edge
// order, so alignment code can swap matchers freely — exactly the
// substitution the paper studies.
package matching

import (
	"fmt"
	"math"

	"netalignmc/internal/bipartite"
)

// Result describes a matching in a bipartite graph. MateA[a] is the
// V_B vertex matched to a (or -1); MateB[b] is the V_A vertex matched
// to b (or -1). Weight is the total weight of the matched edges and
// Card their count.
type Result struct {
	MateA  []int
	MateB  []int
	Weight float64
	Card   int
}

// NewResult builds a Result from per-side mate arrays, computing
// weight and cardinality from the graph.
func NewResult(g *bipartite.Graph, mateA, mateB []int) *Result {
	r := &Result{MateA: mateA, MateB: mateB}
	for a, b := range mateA {
		if b < 0 {
			continue
		}
		e, ok := g.Find(a, b)
		if !ok {
			continue
		}
		r.Weight += g.W[e]
		r.Card++
	}
	return r
}

// Indicator returns the edge-indicator vector x over L's canonical
// edge order: x[e] = 1 if edge e is matched.
func (r *Result) Indicator(g *bipartite.Graph) []float64 {
	x := make([]float64, g.NumEdges())
	for a, b := range r.MateA {
		if b < 0 {
			continue
		}
		if e, ok := g.Find(a, b); ok {
			x[e] = 1
		}
	}
	return x
}

// Validate checks that the result is a consistent matching on g:
// mates are mutual, in range, and every matched pair is an edge of g.
func (r *Result) Validate(g *bipartite.Graph) error {
	if len(r.MateA) != g.NA || len(r.MateB) != g.NB {
		return fmt.Errorf("matching: mate array sizes %d,%d != %d,%d", len(r.MateA), len(r.MateB), g.NA, g.NB)
	}
	card := 0
	weight := 0.0
	for a, b := range r.MateA {
		if b < 0 {
			continue
		}
		if b >= g.NB {
			return fmt.Errorf("matching: MateA[%d] = %d out of range", a, b)
		}
		if r.MateB[b] != a {
			return fmt.Errorf("matching: MateA[%d]=%d but MateB[%d]=%d", a, b, b, r.MateB[b])
		}
		e, ok := g.Find(a, b)
		if !ok {
			return fmt.Errorf("matching: matched pair (%d,%d) is not an edge", a, b)
		}
		card++
		weight += g.W[e]
	}
	for b, a := range r.MateB {
		if a < 0 {
			continue
		}
		if a >= g.NA || r.MateA[a] != b {
			return fmt.Errorf("matching: MateB[%d]=%d not mutual", b, a)
		}
	}
	if card != r.Card {
		return fmt.Errorf("matching: cardinality %d recorded, %d actual", r.Card, card)
	}
	if math.Abs(weight-r.Weight) > 1e-9*(1+math.Abs(weight)) {
		return fmt.Errorf("matching: weight %g recorded, %g actual", r.Weight, weight)
	}
	return nil
}

// IsMaximal reports whether no edge with positive weight has both
// endpoints unmatched (the maximality guarantee of the
// locally-dominant algorithm, restricted to positive weights since
// non-positive edges are never candidates).
func (r *Result) IsMaximal(g *bipartite.Graph) bool {
	for e := 0; e < g.NumEdges(); e++ {
		if g.W[e] <= 0 {
			continue
		}
		if r.MateA[g.EdgeA[e]] < 0 && r.MateB[g.EdgeB[e]] < 0 {
			return false
		}
	}
	return true
}

// IsStable reports whether the matching is 2-stable: no unmatched
// edge outweighs both of its endpoints' matched edges. Stability is
// the defining property of locally-dominant matchings (greedy, the
// parallel locally-dominant algorithm and Suitor all produce stable
// matchings, which is where their ½-approximation comes from), while
// an optimal matching need not be stable — trading a locally heavy
// edge for two lighter ones can raise total weight.
func (r *Result) IsStable(g *bipartite.Graph) bool {
	// matchedWeight[v] = weight of the edge covering v, 0 if free.
	wA := make([]float64, g.NA)
	wB := make([]float64, g.NB)
	for a, b := range r.MateA {
		if b < 0 {
			continue
		}
		if e, ok := g.Find(a, b); ok {
			wA[a] = g.W[e]
			wB[b] = g.W[e]
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if g.W[e] <= 0 {
			continue
		}
		a, b := g.EdgeA[e], g.EdgeB[e]
		if r.MateA[a] == b {
			continue
		}
		if g.W[e] > wA[a]+1e-12 && g.W[e] > wB[b]+1e-12 {
			return false // blocking edge
		}
	}
	return true
}

// Matcher computes a matching of g using at most threads workers
// (threads <= 0 means GOMAXPROCS). The alignment methods accept any
// Matcher, which is how exact and approximate rounding are swapped.
type Matcher func(g *bipartite.Graph, threads int) *Result

// emptyResult returns the all-unmatched result for g.
func emptyResult(g *bipartite.Graph) *Result {
	r := &Result{MateA: make([]int, g.NA), MateB: make([]int, g.NB)}
	for i := range r.MateA {
		r.MateA[i] = -1
	}
	for i := range r.MateB {
		r.MateB[i] = -1
	}
	return r
}

package matching

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSubsetMatcherMatchesExactSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		na := rng.Intn(8) + 1
		nb := rng.Intn(8) + 1
		g := randomGraph(rng, na, nb, 0.6)
		sm := NewSubsetMatcher(na, nb)
		// Several Solve calls on the same matcher: scratch reuse must
		// not leak state between calls.
		for call := 0; call < 4; call++ {
			var edges []int
			var weights []float64
			for e := 0; e < g.NumEdges(); e++ {
				if rng.Float64() < 0.7 {
					edges = append(edges, e)
					weights = append(weights, rng.Float64()*4-0.8)
				}
			}
			wantSel, wantVal := ExactSubset(g, edges, weights)
			gotSel, gotVal := sm.Solve(g, edges, weights, nil)
			if math.Abs(wantVal-gotVal) > 1e-9 {
				t.Fatalf("trial %d call %d: value %g != %g", trial, call, gotVal, wantVal)
			}
			// Selections may differ on ties; verify the got selection
			// is a matching with the claimed value.
			usedA := map[int]bool{}
			usedB := map[int]bool{}
			sum := 0.0
			for _, i := range gotSel {
				e := edges[i]
				a, b := g.EdgeA[e], g.EdgeB[e]
				if usedA[a] || usedB[b] {
					t.Fatalf("trial %d: selection not a matching", trial)
				}
				usedA[a], usedB[b] = true, true
				sum += weights[i]
			}
			if math.Abs(sum-gotVal) > 1e-9 {
				t.Fatalf("trial %d: reported %g actual %g", trial, gotVal, sum)
			}
			sort.Ints(wantSel)
			sort.Ints(gotSel)
			_ = wantSel
		}
	}
}

func TestSubsetMatcherAppendsToSelected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 4, 4, 0.8)
	sm := NewSubsetMatcher(4, 4)
	edges := []int{0}
	weights := []float64{g.W[0]}
	base := []int{42}
	sel, _ := sm.Solve(g, edges, weights, base)
	if len(sel) < 1 || sel[0] != 42 {
		t.Fatalf("Solve must append to the given slice: %v", sel)
	}
}

func TestSubsetMatcherEmptyAndNonPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 3, 3, 0.9)
	sm := NewSubsetMatcher(3, 3)
	if sel, val := sm.Solve(g, nil, nil, nil); sel != nil || val != 0 {
		t.Fatal("empty input nonzero")
	}
	if sel, val := sm.Solve(g, []int{0, 1}, []float64{-1, 0}, nil); len(sel) != 0 || val != 0 {
		t.Fatal("non-positive weights selected")
	}
}

func TestSubsetMatcherNoAllocAfterWarmup(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 20, 20, 0.4)
	sm := NewSubsetMatcher(20, 20)
	var edges []int
	var weights []float64
	for e := 0; e < g.NumEdges() && e < 25; e++ {
		edges = append(edges, e)
		weights = append(weights, g.W[e])
	}
	sel := make([]int, 0, len(edges))
	sm.Solve(g, edges, weights, sel[:0]) // warm-up
	allocs := testing.AllocsPerRun(50, func() {
		sm.Solve(g, edges, weights, sel[:0])
	})
	if allocs > 1 {
		t.Fatalf("Solve allocates %.1f objects per call after warm-up", allocs)
	}
}

func TestGreedySubsetHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sm := NewSubsetMatcher(10, 10)
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, rng.Intn(8)+1, rng.Intn(8)+1, 0.6)
		if g.NA > 10 || g.NB > 10 {
			continue
		}
		var edges []int
		var weights []float64
		for e := 0; e < g.NumEdges(); e++ {
			if rng.Float64() < 0.8 {
				edges = append(edges, e)
				weights = append(weights, rng.Float64()*5-0.5)
			}
		}
		gSel, gVal := sm.GreedySubset(g, edges, weights, nil)
		_, exVal := sm.Solve(g, edges, weights, nil)
		// Validity: selection is a matching with the claimed value.
		usedA := map[int]bool{}
		usedB := map[int]bool{}
		sum := 0.0
		for _, i := range gSel {
			e := edges[i]
			a, b := g.EdgeA[e], g.EdgeB[e]
			if usedA[a] || usedB[b] {
				t.Fatal("greedy subset not a matching")
			}
			usedA[a], usedB[b] = true, true
			if weights[i] <= 0 {
				t.Fatal("greedy subset selected non-positive weight")
			}
			sum += weights[i]
		}
		if math.Abs(sum-gVal) > 1e-9 {
			t.Fatalf("greedy value %g actual %g", gVal, sum)
		}
		// Half-approximation against the exact subset value.
		if gVal < exVal/2-1e-9 || gVal > exVal+1e-9 {
			t.Fatalf("trial %d: greedy %g vs exact %g", trial, gVal, exVal)
		}
	}
}

func BenchmarkSubsetMatcher(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 200, 200, 0.05)
	sm := NewSubsetMatcher(200, 200)
	var edges []int
	var weights []float64
	for e := 0; e < g.NumEdges(); e += 3 {
		edges = append(edges, e)
		weights = append(weights, g.W[e])
	}
	sel := make([]int, 0, len(edges))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, _ = sm.Solve(g, edges, weights, sel[:0])
	}
}

func BenchmarkExactSubsetBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 200, 200, 0.05)
	var edges []int
	var weights []float64
	for e := 0; e < g.NumEdges(); e += 3 {
		edges = append(edges, e)
		weights = append(weights, g.W[e])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactSubset(g, edges, weights)
	}
}

package matching

// Robustness tests: adversarial graph structures and extreme weight
// magnitudes that stress tie-breaking, potentials and bid increments.

import (
	"math"
	"math/rand"
	"testing"

	"netalignmc/internal/bipartite"
)

// allMatchers returns the weighted matchers with their approximation
// floors (fraction of optimum they must reach).
func allMatchers() map[string]struct {
	m     Matcher
	floor float64
} {
	return map[string]struct {
		m     Matcher
		floor float64
	}{
		"exact":        {Exact, 1},
		"greedy":       {Greedy, 0.5},
		"ld":           {NewLocallyDominantMatcher(LocallyDominantOptions{}), 0.5},
		"ld-1side":     {NewLocallyDominantMatcher(LocallyDominantOptions{OneSidedInit: true}), 0.5},
		"suitor":       {Suitor, 0.5},
		"path-growing": {PathGrowing, 0.5},
		"auction":      {NewAuctionMatcher(1e-9), 0.999},
	}
}

func checkAll(t *testing.T, g *bipartite.Graph, opt float64, label string) {
	t.Helper()
	for name, entry := range allMatchers() {
		r := entry.m(g, 2)
		if err := r.Validate(g); err != nil {
			t.Fatalf("%s/%s: %v", label, name, err)
		}
		if r.Weight < opt*entry.floor-1e-6 {
			t.Fatalf("%s/%s: weight %g below %g·%g", label, name, r.Weight, entry.floor, opt)
		}
		if r.Weight > opt+1e-6 {
			t.Fatalf("%s/%s: weight %g exceeds optimum %g", label, name, r.Weight, opt)
		}
	}
}

// Property: every locally-dominant-family matcher produces a stable
// matching; stability plus validity implies the ½ guarantee.
func TestQuickStabilityOfHalfApproxFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	family := map[string]Matcher{
		"greedy":   Greedy,
		"ld":       NewLocallyDominantMatcher(LocallyDominantOptions{}),
		"ld-1side": NewLocallyDominantMatcher(LocallyDominantOptions{OneSidedInit: true}),
		"suitor":   Suitor,
	}
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, rng.Intn(10)+2, rng.Intn(10)+2, 0.4)
		for name, m := range family {
			r := m(g, 2)
			if !r.IsStable(g) {
				t.Fatalf("trial %d: %s produced an unstable matching", trial, name)
			}
		}
	}
}

// TestLDQueueDynamics reproduces the §V observation that the Phase-2
// work queue shrinks rapidly, bounding the round count near O(log V).
func TestLDQueueDynamics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 3000
	g := randomGraph(rng, n, n, 4.0/float64(n))
	stats := &LDStats{}
	r := LocallyDominant(g, 2, LocallyDominantOptions{Stats: stats})
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 || len(stats.QueueSizes) != stats.Rounds {
		t.Fatalf("stats not recorded: %+v", stats)
	}
	// Round count should be logarithmic-ish in |V|: allow a generous
	// constant (log2(6000) ≈ 12.6; 4x slack).
	if maxRounds := 4 * 13; stats.Rounds > maxRounds {
		t.Fatalf("Phase 2 took %d rounds on %d vertices", stats.Rounds, 2*n)
	}
	// Queue sizes should shrink substantially over the run: the last
	// round's queue must be far below the first's.
	first := stats.QueueSizes[0]
	last := stats.QueueSizes[len(stats.QueueSizes)-1]
	if first > 20 && last > first/2 {
		t.Fatalf("queue did not shrink: first %d, last %d (%v)", first, last, stats.QueueSizes)
	}
}

// The classic stability-vs-optimality separation: on the 3-edge gadget
// the optimal matching is unstable and the stable matching is ¾ of it.
func TestStabilityOptimalitySeparation(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 3}, {A: 0, B: 1, W: 2}, {A: 1, B: 0, W: 2},
	})
	ex := Exact(g, 1)
	if ex.Weight != 4 {
		t.Fatalf("exact weight %g, want 4", ex.Weight)
	}
	if ex.IsStable(g) {
		t.Fatal("the optimal matching here should be blocked by the weight-3 edge")
	}
	ld := Approx(g, 1)
	if ld.Weight != 3 || !ld.IsStable(g) {
		t.Fatalf("locally-dominant should pick the stable weight-3 edge, got %g (stable=%v)", ld.Weight, ld.IsStable(g))
	}
}

func TestMatchersOnStar(t *testing.T) {
	// One A vertex with many B options: optimum is the single best edge.
	var edges []bipartite.WeightedEdge
	for b := 0; b < 20; b++ {
		edges = append(edges, bipartite.WeightedEdge{A: 0, B: b, W: float64(b + 1)})
	}
	g := mustGraph(t, 1, 20, edges)
	checkAll(t, g, 20, "starA")

	// The mirror: many A vertices, one B vertex.
	edges = edges[:0]
	for a := 0; a < 20; a++ {
		edges = append(edges, bipartite.WeightedEdge{A: a, B: 0, W: float64(a + 1)})
	}
	g = mustGraph(t, 20, 1, edges)
	checkAll(t, g, 20, "starB")
}

func TestMatchersOnAllEqualWeights(t *testing.T) {
	// Complete 6x6 with all weights equal: optimum is 6 edges of
	// weight 1; every matcher must produce a perfect matching (ties
	// must not deadlock or drop vertices).
	var edges []bipartite.WeightedEdge
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			edges = append(edges, bipartite.WeightedEdge{A: a, B: b, W: 1})
		}
	}
	g := mustGraph(t, 6, 6, edges)
	for name, entry := range allMatchers() {
		r := entry.m(g, 3)
		if err := r.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Card != 6 {
			t.Fatalf("%s: matched %d of 6 under uniform ties", name, r.Card)
		}
	}
}

func TestMatchersOnLongPath(t *testing.T) {
	// Alternating path with increasing weights; exact optimum computed
	// by brute force.
	var edges []bipartite.WeightedEdge
	n := 9
	for i := 0; i < n; i++ {
		edges = append(edges, bipartite.WeightedEdge{A: i, B: i, W: float64(2*i + 1)})
		if i+1 < n {
			edges = append(edges, bipartite.WeightedEdge{A: i + 1, B: i, W: float64(2*i + 2)})
		}
	}
	g := mustGraph(t, n, n, edges)
	opt := Brute(g)
	checkAll(t, g, opt, "path")
}

func TestMatchersExtremeMagnitudes(t *testing.T) {
	// Weights spanning ~300 orders of magnitude: potentials and bid
	// arithmetic must not produce NaN or invalid matchings.
	g := mustGraph(t, 3, 3, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1e-300}, {A: 0, B: 1, W: 1},
		{A: 1, B: 1, W: 1e300}, {A: 1, B: 2, W: 1e-12},
		{A: 2, B: 2, W: 42},
	})
	for name, entry := range allMatchers() {
		if name == "auction" {
			continue // auction's additive eps is meaningless at 1e300 scale
		}
		r := entry.m(g, 1)
		if err := r.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(r.Weight) || math.IsInf(r.Weight, 0) {
			t.Fatalf("%s: non-finite weight", name)
		}
		// All must take the dominant 1e300 edge.
		if r.MateA[1] != 1 {
			t.Fatalf("%s: missed the dominant edge", name)
		}
	}
}

func TestMatchersDuplicateWeightsStress(t *testing.T) {
	// Random graphs with only 3 distinct weight values: heavy ties.
	rng := rand.New(rand.NewSource(3))
	vals := []float64{1, 2, 3}
	for trial := 0; trial < 25; trial++ {
		na, nb := rng.Intn(8)+2, rng.Intn(8)+2
		var edges []bipartite.WeightedEdge
		for a := 0; a < na; a++ {
			for b := 0; b < nb; b++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, bipartite.WeightedEdge{A: a, B: b, W: vals[rng.Intn(3)]})
				}
			}
		}
		g := mustGraph(t, na, nb, edges)
		opt := Brute(g)
		checkAll(t, g, opt, "ties")
	}
}

func TestMatchersAllNegative(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: -1}, {A: 0, B: 1, W: -5}, {A: 1, B: 0, W: -0.1},
	})
	for name, entry := range allMatchers() {
		r := entry.m(g, 1)
		if err := r.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Card != 0 || r.Weight != 0 {
			t.Fatalf("%s: matched negative edges: %+v", name, r)
		}
	}
}

func TestMatchersHugeDegreeImbalance(t *testing.T) {
	// A few hub A vertices with hundreds of edges, many degree-1 A
	// vertices: exercises the queue dynamics and suitor dethroning.
	rng := rand.New(rand.NewSource(9))
	var edges []bipartite.WeightedEdge
	nb := 300
	for b := 0; b < nb; b++ {
		edges = append(edges, bipartite.WeightedEdge{A: b % 3, B: b, W: rng.Float64() + 0.01})
	}
	for a := 3; a < 100; a++ {
		edges = append(edges, bipartite.WeightedEdge{A: a, B: rng.Intn(nb), W: rng.Float64() + 0.01})
	}
	g := mustGraph(t, 100, nb, edges)
	ex := Exact(g, 1)
	for name, entry := range allMatchers() {
		r := entry.m(g, 4)
		if err := r.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Weight < ex.Weight*entry.floor-1e-9 {
			t.Fatalf("%s: %g below floor of %g", name, r.Weight, ex.Weight)
		}
	}
}

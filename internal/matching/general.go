package matching

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"netalignmc/internal/graph"
	"netalignmc/internal/parallel"
)

// WeightedGraph pairs an undirected graph with edge weights aligned to
// its adjacency array: W[k] is the weight of the edge whose directed
// slot is Adj[k], and both slots of an undirected edge must carry the
// same weight (checked by Validate).
type WeightedGraph struct {
	*graph.Graph
	W []float64
}

// NewWeightedGraph builds a weighted graph from explicit edge weights.
func NewWeightedGraph(g *graph.Graph, weights map[graph.Edge]float64) (*WeightedGraph, error) {
	w := make([]float64, len(g.Adj))
	for u := 0; u < g.NumVertices(); u++ {
		lo := g.Ptr[u]
		for i, v := range g.Neighbors(u) {
			key := graph.Edge{U: u, V: v}
			if u > v {
				key = graph.Edge{U: v, V: u}
			}
			wt, ok := weights[key]
			if !ok {
				return nil, fmt.Errorf("matching: missing weight for edge %v", key)
			}
			w[lo+i] = wt
		}
	}
	return &WeightedGraph{Graph: g, W: w}, nil
}

// Validate checks that both directed slots of every edge agree.
func (g *WeightedGraph) Validate() error {
	if len(g.W) != len(g.Adj) {
		return fmt.Errorf("matching: weight array length %d != adjacency %d", len(g.W), len(g.Adj))
	}
	for u := 0; u < g.NumVertices(); u++ {
		lo := g.Ptr[u]
		for i, v := range g.Neighbors(u) {
			// Find u in v's list.
			vlo := g.Ptr[v]
			found := false
			for j, t := range g.Neighbors(v) {
				if t == u {
					if g.W[vlo+j] != g.W[lo+i] {
						return fmt.Errorf("matching: asymmetric weight on edge (%d,%d)", u, v)
					}
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("matching: adjacency asymmetric at (%d,%d)", u, v)
			}
		}
	}
	return nil
}

// LocallyDominantGeneral runs the parallel locally-dominant
// half-approximate matching (Algorithms 1–3) on a general weighted
// graph — the algorithm's native setting ("The locally-dominant
// algorithm can compute matchings in general graphs"). It returns the
// mate array (mate[v] = partner or -1) and the matched weight.
// The same guarantees hold: valid maximal matching, weight ≥ ½·opt.
func LocallyDominantGeneral(g *WeightedGraph, threads int) (mate []int, weight float64) {
	n := g.NumVertices()
	threads = parallel.Threads(threads)
	st := &gldState{
		g:         g,
		mate:      make([]int32, n),
		candidate: make([]int32, n),
		queued:    make([]int32, n),
		lock:      make([]int32, n),
		local:     make([][]int32, threads),
	}
	for i := range st.mate {
		st.mate[i] = -1
		st.candidate[i] = ldUnset
	}
	chunk := n/(4*threads) + 1

	parallel.ForDynamic(n, threads, chunk, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			st.setCandidate(int32(v), st.findMate(int32(v)))
		}
	})
	// Enqueuing sweeps dispatch with worker ids so each worker appends
	// matched vertices to its own queue; the merge happens at promote.
	parallel.ForDynamicWorker(n, threads, chunk, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			st.processVertex(w, int32(v))
		}
	})
	st.promote()
	for len(st.qCur) > 0 {
		cur := st.qCur
		parallel.ForDynamicWorker(len(cur), threads, chunk, func(w, lo, hi int) {
			for qi := lo; qi < hi; qi++ {
				u := cur[qi]
				ulo, uhi := st.g.Ptr[u], st.g.Ptr[u+1]
				for k := ulo; k < uhi; k++ {
					v := int32(st.g.Adj[k])
					if atomic.LoadInt32(&st.mate[v]) != -1 {
						continue
					}
					c := atomic.LoadInt32(&st.candidate[v])
					if c == u || c == ldUnset {
						st.processVertex(w, v)
					}
				}
			}
		})
		st.promote()
	}

	mate = make([]int, n)
	for v := 0; v < n; v++ {
		mate[v] = int(st.mate[v])
		if p := st.mate[v]; p >= 0 && int(p) > v {
			weight += st.weightOf(int32(v), p)
		}
	}
	return mate, weight
}

// GreedyGeneral computes the sorted-greedy half-approximate matching
// on a general weighted graph: the serial reference the parallel
// general matchers are validated against.
func GreedyGeneral(g *WeightedGraph) (mate []int, weight float64) {
	n := g.NumVertices()
	mate = make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	type wedge struct {
		u, v int
		w    float64
	}
	edges := make([]wedge, 0, g.NumEdges())
	for u := 0; u < n; u++ {
		lo := g.Ptr[u]
		for i, v := range g.Neighbors(u) {
			if u < v && g.W[lo+i] > 0 {
				edges = append(edges, wedge{u, v, g.W[lo+i]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		if mate[e.u] < 0 && mate[e.v] < 0 {
			mate[e.u] = e.v
			mate[e.v] = e.u
			weight += e.w
		}
	}
	return mate, weight
}

// SuitorGeneral computes the half-approximate matching on a general
// weighted graph with the Suitor algorithm: every vertex proposes to
// the heaviest neighbor whose standing offer it can beat; dethroned
// suitors immediately re-propose. At termination the standing-suitor
// relation is symmetric on matched pairs, and the matching equals the
// greedy matching under the strict (weight, proposer id) order.
func SuitorGeneral(g *WeightedGraph, threads int) (mate []int, weight float64) {
	n := g.NumVertices()
	st := &gSuitorState{
		g:      g,
		suitor: make([]int32, n),
		offerW: make([]uint64, n),
		lock:   make([]int32, n),
	}
	for i := range st.suitor {
		st.suitor[i] = -1
	}
	threads = parallel.Threads(threads)
	// Proposal cost tracks degree, so partition proposers by their
	// adjacency size (prefix sums of Ptr) instead of vertex count.
	parts := parallel.BalancedOffsetsFromPtr(g.Ptr, threads, nil)
	parallel.ForOffsets(parts, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			st.propose(int32(v))
		}
	})
	mate = make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	for v := 0; v < n; v++ {
		u := st.suitor[v]
		if u < 0 || int(u) > v {
			continue
		}
		// Mutual standing proposals form the matching.
		if st.suitor[u] == int32(v) {
			mate[v] = int(u)
			mate[u] = v
			weight += st.g.weightBetween(int(u), v)
		}
	}
	return mate, weight
}

// weightBetween returns the weight of edge (u, v), 0 if absent.
func (g *WeightedGraph) weightBetween(u, v int) float64 {
	lo := g.Ptr[u]
	adj := g.Neighbors(u)
	i := sort.SearchInts(adj, v)
	if i < len(adj) && adj[i] == v {
		return g.W[lo+i]
	}
	return 0
}

type gSuitorState struct {
	g      *WeightedGraph
	suitor []int32
	offerW []uint64
	lock   []int32
}

func (st *gSuitorState) lockVertex(v int32) {
	for !atomic.CompareAndSwapInt32(&st.lock[v], 0, 1) {
		runtime.Gosched()
	}
}

func (st *gSuitorState) unlockVertex(v int32) { atomic.StoreInt32(&st.lock[v], 0) }

func (st *gSuitorState) offer(v int32) (float64, int32) {
	w := math.Float64frombits(atomic.LoadUint64(&st.offerW[v]))
	s := atomic.LoadInt32(&st.suitor[v])
	return w, s
}

func (st *gSuitorState) propose(v int32) {
	g := st.g
	current := v
	for {
		var best int32 = -1
		bestW := 0.0
		lo, hi := g.Ptr[current], g.Ptr[current+1]
		for k := lo; k < hi; k++ {
			t := int32(g.Adj[k])
			w := g.W[k]
			if w <= 0 {
				continue
			}
			curW, curS := st.offer(t)
			if !beats(w, current, curW, curS) {
				continue
			}
			if w > bestW || (w == bestW && t > best) {
				bestW = w
				best = t
			}
		}
		if best < 0 {
			return
		}
		st.lockVertex(best)
		curW, curS := st.offer(best)
		if beats(bestW, current, curW, curS) {
			atomic.StoreInt32(&st.suitor[best], current)
			atomic.StoreUint64(&st.offerW[best], math.Float64bits(bestW))
			st.unlockVertex(best)
			if curS < 0 {
				return
			}
			current = curS
		} else {
			st.unlockVertex(best)
		}
	}
}

type gldState struct {
	g         *WeightedGraph
	mate      []int32
	candidate []int32
	queued    []int32
	lock      []int32
	qCur      []int32
	// local[w] is worker w's private next-round queue, merged into
	// qCur by promote (same contention-free scheme as ldState).
	local [][]int32
}

func (st *gldState) weightOf(u, v int32) float64 {
	lo, hi := st.g.Ptr[u], st.g.Ptr[u+1]
	for k := lo; k < hi; k++ {
		if int32(st.g.Adj[k]) == v {
			return st.g.W[k]
		}
	}
	return 0
}

func (st *gldState) findMate(s int32) int32 {
	best := int32(-1)
	bestW := 0.0
	lo, hi := st.g.Ptr[s], st.g.Ptr[s+1]
	for k := lo; k < hi; k++ {
		t := int32(st.g.Adj[k])
		w := st.g.W[k]
		if w <= 0 || atomic.LoadInt32(&st.mate[t]) != -1 {
			continue
		}
		if w > bestW || (w == bestW && t > best) {
			bestW = w
			best = t
		}
	}
	return best
}

func (st *gldState) setCandidate(v, c int32) { atomic.StoreInt32(&st.candidate[v], c) }

func (st *gldState) candidateOf(v int32) int32 {
	c := atomic.LoadInt32(&st.candidate[v])
	if c == ldUnset {
		c = st.findMate(v)
		st.setCandidate(v, c)
	}
	return c
}

func (st *gldState) processVertex(w int, v int32) {
	for {
		if atomic.LoadInt32(&st.mate[v]) != -1 {
			return
		}
		c := st.findMate(v)
		st.setCandidate(v, c)
		if c < 0 {
			return
		}
		if st.candidateOf(c) != v {
			return
		}
		if st.tryMatch(v, c) {
			st.enqueue(w, v)
			st.enqueue(w, c)
			return
		}
	}
}

// tryMatch claims the pair under both endpoint locks (id order) so
// mate entries are monotone: -1 → final partner, never rolled back.
// See ldState.tryMatch for why a CAS-then-rollback scheme is wrong.
func (st *gldState) tryMatch(v, c int32) bool {
	lo, hi := v, c
	if lo > hi {
		lo, hi = hi, lo
	}
	st.lockVertex(lo)
	st.lockVertex(hi)
	ok := atomic.LoadInt32(&st.mate[lo]) == -1 && atomic.LoadInt32(&st.mate[hi]) == -1
	if ok {
		atomic.StoreInt32(&st.mate[lo], hi)
		atomic.StoreInt32(&st.mate[hi], lo)
	}
	st.unlockVertex(hi)
	st.unlockVertex(lo)
	return ok
}

func (st *gldState) lockVertex(v int32) {
	for !atomic.CompareAndSwapInt32(&st.lock[v], 0, 1) {
		runtime.Gosched()
	}
}

func (st *gldState) unlockVertex(v int32) { atomic.StoreInt32(&st.lock[v], 0) }

func (st *gldState) enqueue(w int, v int32) {
	if !atomic.CompareAndSwapInt32(&st.queued[v], 0, 1) {
		return
	}
	st.local[w] = append(st.local[w], v)
}

func (st *gldState) promote() {
	total := 0
	for _, q := range st.local {
		total += len(q)
	}
	st.qCur = growInt32(st.qCur, total)
	k := 0
	for w := range st.local {
		k += copy(st.qCur[k:], st.local[w])
		st.local[w] = st.local[w][:0]
	}
}

package matching

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"netalignmc/internal/graph"
)

func randomWeighted(rng *rand.Rand, n int, density float64) *WeightedGraph {
	b := graph.NewBuilder(n)
	weights := map[graph.Edge]float64{}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				b.AddEdge(u, v)
				weights[graph.Edge{U: u, V: v}] = rng.Float64()*10 + 0.01
			}
		}
	}
	g, err := NewWeightedGraph(b.Build(), weights)
	if err != nil {
		panic(err)
	}
	return g
}

// bruteGeneral computes the optimal matching weight of a small general
// graph by branch and bound over its edges.
func bruteGeneral(g *WeightedGraph) float64 {
	edges := g.Edges()
	used := make([]bool, g.NumVertices())
	var best float64
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc > best {
			best = acc
		}
		if i >= len(edges) {
			return
		}
		e := edges[i]
		w := edgeWeight(g, e.U, e.V)
		if w > 0 && !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			rec(i+1, acc+w)
			used[e.U], used[e.V] = false, false
		}
		rec(i+1, acc)
	}
	rec(0, 0)
	return best
}

func edgeWeight(g *WeightedGraph, u, v int) float64 {
	lo := g.Ptr[u]
	adj := g.Neighbors(u)
	i := sort.SearchInts(adj, v)
	if i < len(adj) && adj[i] == v {
		return g.W[lo+i]
	}
	return 0
}

// greedyGeneral is the sorted-greedy reference on general graphs.
func greedyGeneral(g *WeightedGraph) float64 {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		wi := edgeWeight(g, edges[i].U, edges[i].V)
		wj := edgeWeight(g, edges[j].U, edges[j].V)
		return wi > wj
	})
	used := make([]bool, g.NumVertices())
	total := 0.0
	for _, e := range edges {
		w := edgeWeight(g, e.U, e.V)
		if w > 0 && !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			total += w
		}
	}
	return total
}

func validGeneralMatching(t *testing.T, g *WeightedGraph, mate []int) {
	t.Helper()
	for v, m := range mate {
		if m < 0 {
			continue
		}
		if mate[m] != v {
			t.Fatalf("mate not mutual: mate[%d]=%d, mate[%d]=%d", v, m, m, mate[m])
		}
		if edgeWeight(g, v, m) <= 0 && !g.HasEdge(v, m) {
			t.Fatalf("matched pair (%d,%d) is not an edge", v, m)
		}
	}
}

func TestWeightedGraphConstruction(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	wg, err := NewWeightedGraph(g, map[graph.Edge]float64{
		{U: 0, V: 1}: 2, {U: 1, V: 2}: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wg.Validate(); err != nil {
		t.Fatal(err)
	}
	if edgeWeight(wg, 1, 0) != 2 || edgeWeight(wg, 1, 2) != 3 {
		t.Fatal("weights misaligned")
	}
	if _, err := NewWeightedGraph(g, map[graph.Edge]float64{{U: 0, V: 1}: 2}); err == nil {
		t.Fatal("missing weight accepted")
	}
}

func TestWeightedGraphValidateCatchesAsymmetry(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.Build()
	wg, err := NewWeightedGraph(g, map[graph.Edge]float64{{U: 0, V: 1}: 5})
	if err != nil {
		t.Fatal(err)
	}
	wg.W[0] = 7 // corrupt one directed slot
	if err := wg.Validate(); err == nil {
		t.Fatal("asymmetric weights accepted")
	}
}

func TestGeneralLocallyDominantTriangle(t *testing.T) {
	// Triangle with weights 5, 3, 1: only the heaviest edge matches.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	wg, err := NewWeightedGraph(b.Build(), map[graph.Edge]float64{
		{U: 0, V: 1}: 5, {U: 1, V: 2}: 3, {U: 0, V: 2}: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mate, w := LocallyDominantGeneral(wg, 2)
	validGeneralMatching(t, wg, mate)
	if mate[0] != 1 || mate[1] != 0 || mate[2] != -1 || w != 5 {
		t.Fatalf("mate=%v w=%g", mate, w)
	}
}

func TestQuickGeneralGuarantees(t *testing.T) {
	f := func(seed int64, nRaw, thrRaw uint8) bool {
		n := int(nRaw)%12 + 2
		threads := int(thrRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		g := randomWeighted(rng, n, 0.4)
		mate, w := LocallyDominantGeneral(g, threads)
		// Valid and mutual.
		for v, m := range mate {
			if m >= 0 && mate[m] != v {
				return false
			}
		}
		// Weight consistency.
		sum := 0.0
		for v, m := range mate {
			if m > v {
				sum += edgeWeight(g, v, m)
			}
		}
		if math.Abs(sum-w) > 1e-9 {
			return false
		}
		// Half-approximation and greedy equivalence (distinct weights).
		opt := bruteGeneral(g)
		if w < opt/2-1e-9 {
			return false
		}
		return math.Abs(w-greedyGeneral(g)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralMatchesBipartiteVariant(t *testing.T) {
	// Feeding a bipartite graph to the general matcher (as the paper
	// does with L) must give the same weight as the bipartite-typed
	// implementation.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		na, nb := rng.Intn(10)+2, rng.Intn(10)+2
		bg := randomGraph(rng, na, nb, 0.4)
		b := graph.NewBuilder(na + nb)
		weights := map[graph.Edge]float64{}
		for e := 0; e < bg.NumEdges(); e++ {
			u, v := bg.EdgeA[e], na+bg.EdgeB[e]
			b.AddEdge(u, v)
			weights[graph.Edge{U: u, V: v}] = bg.W[e]
		}
		wg, err := NewWeightedGraph(b.Build(), weights)
		if err != nil {
			t.Fatal(err)
		}
		_, w := LocallyDominantGeneral(wg, 3)
		ld := LocallyDominant(bg, 3, LocallyDominantOptions{})
		if math.Abs(w-ld.Weight) > 1e-9 {
			t.Fatalf("trial %d: general %g != bipartite %g", trial, w, ld.Weight)
		}
	}
}

func TestGreedyGeneralMatchesTestReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		g := randomWeighted(rng, rng.Intn(15)+2, 0.3)
		mate, w := GreedyGeneral(g)
		if math.Abs(w-greedyGeneral(g)) > 1e-9 {
			t.Fatalf("trial %d: exported greedy %g != reference %g", trial, w, greedyGeneral(g))
		}
		validGeneralMatching(t, g, mate)
		sum := 0.0
		for v, m := range mate {
			if m > v {
				sum += edgeWeight(g, v, m)
			}
		}
		if math.Abs(sum-w) > 1e-9 {
			t.Fatalf("reported weight %g != actual %g", w, sum)
		}
	}
}

func TestQuickSuitorGeneralGuarantees(t *testing.T) {
	f := func(seed int64, nRaw, thrRaw uint8) bool {
		n := int(nRaw)%12 + 2
		threads := int(thrRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		g := randomWeighted(rng, n, 0.4)
		mate, w := SuitorGeneral(g, threads)
		for v, m := range mate {
			if m >= 0 && mate[m] != v {
				return false
			}
		}
		sum := 0.0
		for v, m := range mate {
			if m > v {
				sum += edgeWeight(g, v, m)
			}
		}
		if math.Abs(sum-w) > 1e-9 {
			return false
		}
		// Equals greedy for distinct random weights, so also ≥ ½·opt.
		return math.Abs(w-greedyGeneral(g)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSuitorGeneralDethroneChain(t *testing.T) {
	// Path u-v-w-z with weights forcing two dethronings.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := NewWeightedGraph(b.Build(), map[graph.Edge]float64{
		{U: 0, V: 1}: 5, {U: 1, V: 2}: 9, {U: 2, V: 3}: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mate, w := SuitorGeneral(g, 1)
	// Greedy takes 9 then nothing else adjacent-free except... 0-1 and
	// 2-3 conflict with 1-2; after 9, edges 0-1 and 2-3 both have an
	// endpoint free only on one side: 0 free, 1 taken; 3 free, 2 taken.
	// So matching = {1-2} plus nothing → weight 9? No: 0-1 needs 1,
	// taken; 2-3 needs 2, taken. Weight 9.
	if w != 9 || mate[1] != 2 || mate[2] != 1 || mate[0] != -1 || mate[3] != -1 {
		t.Fatalf("mate=%v w=%g", mate, w)
	}
}

func TestGeneralMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := randomWeighted(rng, 40, 0.15)
	mate, _ := LocallyDominantGeneral(g, 4)
	for _, e := range g.Edges() {
		if edgeWeight(g, e.U, e.V) > 0 && mate[e.U] < 0 && mate[e.V] < 0 {
			t.Fatalf("matching not maximal: edge %+v free", e)
		}
	}
}

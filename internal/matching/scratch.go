package matching

import "netalignmc/internal/bipartite"

// growInt32/growUint64 extend subset.go's grow helpers to the widths
// the reusable matcher scratches need; contents are unspecified after
// growth and callers reinitialize.

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// Reset resizes r for g, marks every vertex unmatched and zeroes the
// totals, reusing the mate arrays' capacity.
func (r *Result) Reset(g *bipartite.Graph) {
	r.MateA = growInts(r.MateA, g.NA)
	r.MateB = growInts(r.MateB, g.NB)
	for i := range r.MateA {
		r.MateA[i] = -1
	}
	for i := range r.MateB {
		r.MateB[i] = -1
	}
	r.Weight = 0
	r.Card = 0
}

// CopyFrom makes r a deep copy of src, reusing r's capacity. Trackers
// use it to retain a snapshot of a matching whose buffers the caller
// will recycle on the next iteration.
func (r *Result) CopyFrom(src *Result) {
	r.MateA = append(r.MateA[:0], src.MateA...)
	r.MateB = append(r.MateB[:0], src.MateB...)
	r.Weight = src.Weight
	r.Card = src.Card
}

// Rescore recomputes Weight and Card from g's weights, keeping the
// mate arrays. Rounding uses it to re-base a matching computed on
// heuristic weights onto the candidate graph's true weights.
func (r *Result) Rescore(g *bipartite.Graph) {
	r.Weight = 0
	r.Card = 0
	for a, b := range r.MateA {
		if b < 0 {
			continue
		}
		if e, ok := g.Find(a, b); ok {
			r.Weight += g.W[e]
			r.Card++
		}
	}
}

// IndicatorInto writes the edge-indicator vector of r over g's
// canonical edge order into x, growing it only if too small, and
// returns it.
func (r *Result) IndicatorInto(g *bipartite.Graph, x []float64) []float64 {
	x = growFloats(x, g.NumEdges())
	for i := range x {
		x[i] = 0
	}
	for a, b := range r.MateA {
		if b < 0 {
			continue
		}
		if e, ok := g.Find(a, b); ok {
			x[e] = 1
		}
	}
	return x
}

// MatchInto is the reusable counterpart of Matcher: it writes the
// matching into out (which may be nil, allocating a fresh Result) and
// returns it. Implementations own whatever scratch state the algorithm
// needs, so steady-state calls on graphs of stable size allocate
// nothing. A MatchInto value is NOT safe for concurrent use — callers
// running matchers in parallel (batched rounding) hold one per worker.
type MatchInto func(g *bipartite.Graph, threads int, out *Result) *Result

// Reusable returns a MatchInto for the spec. The locally-dominant
// family and Suitor get genuinely reusable scratch; the remaining
// algorithms (exact, greedy, path-growing, auction) fall back to the
// plain Matcher and copy into out, preserving the interface contract
// without pretending to be allocation-free.
func (s MatcherSpec) Reusable() (MatchInto, error) {
	if err := s.validateParams(); err != nil {
		return nil, err
	}
	switch s.Name {
	case "approx":
		sc := &LocallyDominantScratch{}
		opts := LocallyDominantOptions{OneSidedInit: true, SortedAdjacency: s.Sorted, Chunk: s.Chunk}
		return func(g *bipartite.Graph, threads int, out *Result) *Result {
			return LocallyDominantInto(g, threads, opts, sc, out)
		}, nil
	case "locally-dominant":
		sc := &LocallyDominantScratch{}
		opts := LocallyDominantOptions{OneSidedInit: s.OneSided, SortedAdjacency: s.Sorted, Chunk: s.Chunk}
		return func(g *bipartite.Graph, threads int, out *Result) *Result {
			return LocallyDominantInto(g, threads, opts, sc, out)
		}, nil
	case "suitor":
		sc := &SuitorScratch{}
		return func(g *bipartite.Graph, threads int, out *Result) *Result {
			return SuitorInto(g, threads, sc, out)
		}, nil
	default:
		m, err := s.Matcher()
		if err != nil {
			return nil, err
		}
		return func(g *bipartite.Graph, threads int, out *Result) *Result {
			r := m(g, threads)
			if out == nil {
				return r
			}
			out.CopyFrom(r)
			return out
		}, nil
	}
}

package matching

import (
	"fmt"
	"strconv"
	"strings"
)

// MatcherSpec is the declarative description of a rounding matcher:
// a name plus its parameters. It is the one way configuration surfaces
// (CLI flags, the netalignd job JSON, the bench harness) construct
// matchers — replacing the ad-hoc string switches each of them used to
// carry — and it round-trips through encoding.TextMarshaler /
// TextUnmarshaler so it embeds directly in flags and JSON.
//
// The text form is the name, optionally followed by parenthesized
// key=value parameters:
//
//	exact
//	approx
//	locally-dominant(onesided=true,sorted=true,chunk=256)
//	auction(eps=1e-4)
//
// Recognized names: exact, greedy, approx (the paper's configuration:
// locally-dominant with one-sided initialization), locally-dominant,
// suitor, path-growing, auction. The zero value selects exact
// matching, so an absent configuration field keeps the historical
// default.
type MatcherSpec struct {
	// Name selects the algorithm; empty means exact.
	Name string
	// Eps is the auction matcher's termination tolerance (auction
	// only; 0 selects 1e-6).
	Eps float64
	// OneSided enables the bipartite one-sided initialization
	// (locally-dominant only; the "approx" name implies it).
	OneSided bool
	// Sorted enables the sorted-adjacency FINDMATE acceleration
	// (locally-dominant only).
	Sorted bool
	// Chunk overrides the dynamic-schedule chunk size
	// (locally-dominant only; 0 = default).
	Chunk int
}

// matcherNames lists the recognized spec names in display order.
var matcherNames = []string{
	"exact", "greedy", "approx", "locally-dominant", "suitor", "path-growing", "auction",
}

// MatcherNames returns the recognized MatcherSpec names.
func MatcherNames() []string {
	return append([]string(nil), matcherNames...)
}

// ParseMatcherSpec parses the text form of a MatcherSpec.
func ParseMatcherSpec(text string) (MatcherSpec, error) {
	var s MatcherSpec
	if err := s.UnmarshalText([]byte(text)); err != nil {
		return MatcherSpec{}, err
	}
	return s, nil
}

// MustMatcher is ParseMatcherSpec + Matcher for statically known
// specs; it panics on error and exists for tests and examples.
func MustMatcher(text string) Matcher {
	s, err := ParseMatcherSpec(text)
	if err != nil {
		panic(err)
	}
	m, err := s.Matcher()
	if err != nil {
		panic(err)
	}
	return m
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *MatcherSpec) UnmarshalText(text []byte) error {
	raw := strings.TrimSpace(string(text))
	*s = MatcherSpec{}
	if raw == "" {
		return nil
	}
	name := raw
	params := ""
	if i := strings.IndexByte(raw, '('); i >= 0 {
		if !strings.HasSuffix(raw, ")") {
			return fmt.Errorf("matching: spec %q: unbalanced parameter list", raw)
		}
		name, params = raw[:i], raw[i+1:len(raw)-1]
	}
	s.Name = strings.ToLower(strings.TrimSpace(name))
	valid := false
	for _, n := range matcherNames {
		if s.Name == n {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("matching: unknown matcher %q (want one of %s)", s.Name, strings.Join(matcherNames, ", "))
	}
	if s.Name == "approx" {
		s.OneSided = true
	}
	if params == "" {
		return nil
	}
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return fmt.Errorf("matching: spec %q: parameter %q is not key=value", raw, kv)
		}
		k, v = strings.ToLower(strings.TrimSpace(k)), strings.TrimSpace(v)
		var err error
		switch k {
		case "eps":
			s.Eps, err = strconv.ParseFloat(v, 64)
			if err == nil && s.Eps <= 0 {
				err = fmt.Errorf("eps must be positive")
			}
		case "onesided":
			s.OneSided, err = strconv.ParseBool(v)
		case "sorted":
			s.Sorted, err = strconv.ParseBool(v)
		case "chunk":
			s.Chunk, err = strconv.Atoi(v)
			if err == nil && s.Chunk < 0 {
				err = fmt.Errorf("chunk must be non-negative")
			}
		default:
			return fmt.Errorf("matching: spec %q: unknown parameter %q", raw, k)
		}
		if err != nil {
			return fmt.Errorf("matching: spec %q: parameter %s: %v", raw, k, err)
		}
	}
	if err := s.validateParams(); err != nil {
		return fmt.Errorf("matching: spec %q: %w", raw, err)
	}
	return nil
}

// validateParams rejects parameters that do not apply to the named
// algorithm, so a typo like exact(eps=1) fails loudly instead of
// silently configuring nothing.
func (s *MatcherSpec) validateParams() error {
	switch s.Name {
	case "auction":
		if s.OneSided || s.Sorted || s.Chunk != 0 {
			return fmt.Errorf("auction accepts only eps")
		}
	case "locally-dominant", "approx":
		if s.Eps != 0 {
			return fmt.Errorf("%s does not accept eps", s.Name)
		}
	default:
		if s.Eps != 0 || s.OneSided && s.Name != "approx" || s.Sorted || s.Chunk != 0 {
			return fmt.Errorf("%s accepts no parameters", s.Name)
		}
	}
	return nil
}

// MarshalText implements encoding.TextMarshaler; the output is the
// canonical text form and round-trips through UnmarshalText.
func (s MatcherSpec) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// String returns the canonical text form.
func (s MatcherSpec) String() string {
	name := s.Name
	if name == "" {
		name = "exact"
	}
	var params []string
	switch name {
	case "auction":
		if s.Eps != 0 {
			params = append(params, "eps="+strconv.FormatFloat(s.Eps, 'g', -1, 64))
		}
	case "locally-dominant":
		if s.OneSided {
			params = append(params, "onesided=true")
		}
		fallthrough
	case "approx":
		if s.Sorted {
			params = append(params, "sorted=true")
		}
		if s.Chunk != 0 {
			params = append(params, "chunk="+strconv.Itoa(s.Chunk))
		}
	}
	if len(params) == 0 {
		return name
	}
	return name + "(" + strings.Join(params, ",") + ")"
}

// Matcher constructs the configured Matcher.
func (s MatcherSpec) Matcher() (Matcher, error) {
	if err := s.validateParams(); err != nil {
		return nil, fmt.Errorf("matching: spec %q: %w", s.String(), err)
	}
	switch s.Name {
	case "", "exact":
		return Exact, nil
	case "greedy":
		return Greedy, nil
	case "approx":
		if !s.Sorted && s.Chunk == 0 {
			return Approx, nil
		}
		return NewLocallyDominantMatcher(LocallyDominantOptions{
			OneSidedInit: true, SortedAdjacency: s.Sorted, Chunk: s.Chunk,
		}), nil
	case "locally-dominant":
		return NewLocallyDominantMatcher(LocallyDominantOptions{
			OneSidedInit: s.OneSided, SortedAdjacency: s.Sorted, Chunk: s.Chunk,
		}), nil
	case "suitor":
		return Suitor, nil
	case "path-growing":
		return PathGrowing, nil
	case "auction":
		eps := s.Eps
		if eps == 0 {
			eps = 1e-6
		}
		return NewAuctionMatcher(eps), nil
	default:
		return nil, fmt.Errorf("matching: unknown matcher %q", s.Name)
	}
}

package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netalignmc/internal/bipartite"
)

// --- Suitor ---

func TestSuitorSimple(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 2}, {A: 1, B: 0, W: 3},
	})
	r := Suitor(g, 2)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if r.Weight != 5 || r.Card != 2 {
		t.Fatalf("Suitor weight=%g card=%d, want 5,2", r.Weight, r.Card)
	}
}

func TestSuitorDethroning(t *testing.T) {
	// a0 proposes b0 (8); a1 proposes b0 (10), dethroning a0, which
	// re-proposes to b1 (7).
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 8}, {A: 0, B: 1, W: 7}, {A: 1, B: 0, W: 10},
	})
	r := Suitor(g, 1)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if r.MateA[0] != 1 || r.MateA[1] != 0 || r.Weight != 17 {
		t.Fatalf("Suitor mates %v weight %g", r.MateA, r.Weight)
	}
}

func TestSuitorMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, rng.Intn(15)+2, rng.Intn(15)+2, 0.35)
		gr := Greedy(g, 1)
		for _, threads := range []int{1, 4} {
			s := Suitor(g, threads)
			if err := s.Validate(g); err != nil {
				t.Fatal(err)
			}
			if math.Abs(s.Weight-gr.Weight) > 1e-9 {
				t.Fatalf("trial %d threads %d: suitor %g != greedy %g", trial, threads, s.Weight, gr.Weight)
			}
		}
	}
}

func TestQuickSuitorGuarantees(t *testing.T) {
	f := func(seed int64, naRaw, nbRaw, thrRaw uint8) bool {
		na := int(naRaw)%9 + 1
		nb := int(nbRaw)%9 + 1
		threads := int(thrRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, na, nb, 0.45)
		r := Suitor(g, threads)
		if r.Validate(g) != nil || !r.IsMaximal(g) {
			return false
		}
		return r.Weight >= Brute(g)/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// --- Auction ---

func TestAuctionNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, rng.Intn(7)+1, rng.Intn(7)+1, 0.5)
		eps := 1e-6
		r := Auction(g, 1, eps)
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
		opt := Brute(g)
		slack := float64(g.NA)*eps + 1e-9
		if r.Weight < opt-slack {
			t.Fatalf("trial %d: auction %g below opt %g - n·eps", trial, r.Weight, opt)
		}
	}
}

func TestAuctionDropsNegativeEdges(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 4}, {A: 1, B: 1, W: -2},
	})
	r := Auction(g, 1, 1e-6)
	if r.Card != 1 || r.MateA[1] != -1 {
		t.Fatalf("auction matched a negative edge: %+v", r)
	}
}

func TestAuctionEmptyAndDefaultEps(t *testing.T) {
	g := mustGraph(t, 3, 3, nil)
	r := Auction(g, 1, 0)
	if r.Card != 0 {
		t.Fatal("empty graph matched")
	}
	m := NewAuctionMatcher(1e-4)
	g2 := mustGraph(t, 1, 1, []bipartite.WeightedEdge{{A: 0, B: 0, W: 2}})
	if got := m(g2, 1); got.Card != 1 {
		t.Fatal("auction matcher missed the only edge")
	}
}

// --- PathGrowing ---

func TestPathGrowingHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, rng.Intn(8)+1, rng.Intn(8)+1, 0.4)
		r := PathGrowing(g, 1)
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
		opt := Brute(g)
		if r.Weight < opt/2-1e-9 {
			t.Fatalf("trial %d: path growing %g below half of %g", trial, r.Weight, opt)
		}
	}
}

func TestPathGrowingPath(t *testing.T) {
	// A path a0-b0-a1-b1 with weights 1, 10, 1: M1={1,1}=2, M2={10};
	// the heavier is M2 with the middle edge.
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 1, B: 0, W: 10}, {A: 1, B: 1, W: 1},
	})
	r := PathGrowing(g, 1)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if r.Weight < 10 {
		t.Fatalf("path growing picked weight %g, want ≥ 10", r.Weight)
	}
}

// --- Hopcroft–Karp and Karp–Sipser ---

// exactCardinality computes the maximum cardinality via the exact
// weighted matcher with unit weights.
func exactCardinality(g *bipartite.Graph) int {
	unit := make([]float64, g.NumEdges())
	for i := range unit {
		unit[i] = 1
	}
	ug, err := g.WithWeights(unit)
	if err != nil {
		panic(err)
	}
	return Exact(ug, 1).Card
}

func TestHopcroftKarpSimple(t *testing.T) {
	// A 4-cycle a0-b0-a1-b1 has a perfect matching of size 2.
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1},
	})
	r := HopcroftKarp(g, nil)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if r.Card != 2 {
		t.Fatalf("HK card = %d, want 2", r.Card)
	}
}

func TestHopcroftKarpMaximumCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, rng.Intn(12)+1, rng.Intn(12)+1, 0.3)
		r := HopcroftKarp(g, nil)
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
		if want := exactCardinality(g); r.Card != want {
			t.Fatalf("trial %d: HK card %d != max %d", trial, r.Card, want)
		}
	}
}

func TestHopcroftKarpWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	g := randomGraph(rng, 30, 30, 0.15)
	ks := KarpSipser(g, rand.New(rand.NewSource(1)))
	warm := HopcroftKarp(g, ks)
	cold := HopcroftKarp(g, nil)
	if warm.Card != cold.Card {
		t.Fatalf("warm start changed cardinality: %d vs %d", warm.Card, cold.Card)
	}
	if err := warm.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestKarpSipserValidMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, rng.Intn(15)+1, rng.Intn(15)+1, 0.3)
		r := KarpSipser(g, rand.New(rand.NewSource(int64(trial))))
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
		if !r.IsMaximal(g) {
			t.Fatalf("trial %d: Karp–Sipser matching not maximal", trial)
		}
		if want := exactCardinality(g); r.Card > want {
			t.Fatalf("trial %d: KS card %d exceeds maximum %d", trial, r.Card, want)
		}
	}
}

func TestKarpSipserDegreeOneChain(t *testing.T) {
	// A path a0-b0-a1-b1-a2: degree-1 endpoints force the matching
	// {(a0,b0),(a1,b1)} (or symmetric), cardinality 2 = maximum.
	g := mustGraph(t, 3, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 1, B: 0, W: 1}, {A: 1, B: 1, W: 1}, {A: 2, B: 1, W: 1},
	})
	r := KarpSipser(g, rand.New(rand.NewSource(3)))
	if r.Card != 2 {
		t.Fatalf("KS card = %d, want 2", r.Card)
	}
}

// --- cross-matcher consistency ---

func TestAllMatchersAgreeOnDistinctWeights(t *testing.T) {
	// With distinct weights, greedy, locally-dominant and suitor all
	// compute the same matching weight; exact and auction dominate it.
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, rng.Intn(10)+2, rng.Intn(10)+2, 0.4)
		gr := Greedy(g, 1).Weight
		ld := LocallyDominant(g, 3, LocallyDominantOptions{}).Weight
		su := Suitor(g, 3).Weight
		ex := Exact(g, 1).Weight
		au := Auction(g, 1, 1e-9).Weight
		if math.Abs(gr-ld) > 1e-9 || math.Abs(gr-su) > 1e-9 {
			t.Fatalf("trial %d: greedy %g, LD %g, suitor %g disagree", trial, gr, ld, su)
		}
		if ex < gr-1e-9 || au < gr/1.0-ex*1e-9-1e-6 && au < gr-1e-6 {
			t.Fatalf("trial %d: exact %g or auction %g below greedy %g", trial, ex, au, gr)
		}
		if au > ex+1e-6 {
			t.Fatalf("trial %d: auction %g exceeds exact %g", trial, au, ex)
		}
	}
}

func BenchmarkSuitor(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 500, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Suitor(g, 0)
	}
}

func BenchmarkAuction(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 500, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Auction(g, 1, 1e-4)
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 500, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp(g, nil)
	}
}

package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netalignmc/internal/bipartite"
)

func mustGraph(t testing.TB, na, nb int, edges []bipartite.WeightedEdge) *bipartite.Graph {
	t.Helper()
	g, err := bipartite.New(na, nb, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(rng *rand.Rand, na, nb int, density float64) *bipartite.Graph {
	var edges []bipartite.WeightedEdge
	for a := 0; a < na; a++ {
		for b := 0; b < nb; b++ {
			if rng.Float64() < density {
				edges = append(edges, bipartite.WeightedEdge{A: a, B: b, W: rng.Float64()*10 + 0.01})
			}
		}
	}
	g, err := bipartite.New(na, nb, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestExactSimple(t *testing.T) {
	// a0-b0 (1), a0-b1 (2), a1-b0 (3): optimum matches a0-b1 and a1-b0.
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 2}, {A: 1, B: 0, W: 3},
	})
	r := Exact(g, 1)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if r.Weight != 5 || r.Card != 2 {
		t.Fatalf("Exact weight=%g card=%d, want 5,2", r.Weight, r.Card)
	}
	if r.MateA[0] != 1 || r.MateA[1] != 0 {
		t.Fatalf("Exact mates %v", r.MateA)
	}
}

func TestExactPrefersUnmatchedOverNegative(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 5}, {A: 1, B: 1, W: -3},
	})
	r := Exact(g, 1)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	if r.Weight != 5 || r.Card != 1 {
		t.Fatalf("weight=%g card=%d; negative edge must be dropped", r.Weight, r.Card)
	}
	if r.MateA[1] != -1 {
		t.Fatal("vertex with only a negative edge should stay unmatched")
	}
}

func TestExactZeroWeightUnmatched(t *testing.T) {
	g := mustGraph(t, 1, 1, []bipartite.WeightedEdge{{A: 0, B: 0, W: 0}})
	r := Exact(g, 1)
	if r.Card != 0 || r.Weight != 0 {
		t.Fatalf("zero-weight edge matched: %+v", r)
	}
}

func TestExactEmpty(t *testing.T) {
	for _, g := range []*bipartite.Graph{
		mustGraph(t, 0, 0, nil),
		mustGraph(t, 3, 4, nil),
	} {
		r := Exact(g, 1)
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
		if r.Card != 0 {
			t.Fatal("empty graph produced matches")
		}
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		na := rng.Intn(6) + 1
		nb := rng.Intn(6) + 1
		g := randomGraph(rng, na, nb, 0.5)
		r := Exact(g, 1)
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
		want := Brute(g)
		if math.Abs(r.Weight-want) > 1e-9 {
			t.Fatalf("trial %d: Exact=%g Brute=%g (na=%d nb=%d m=%d)", trial, r.Weight, want, na, nb, g.NumEdges())
		}
	}
}

func TestGreedyHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, rng.Intn(7)+1, rng.Intn(7)+1, 0.4)
		gr := Greedy(g, 1)
		if err := gr.Validate(g); err != nil {
			t.Fatal(err)
		}
		if !gr.IsMaximal(g) {
			t.Fatal("greedy matching not maximal")
		}
		opt := Brute(g)
		if gr.Weight < opt/2-1e-9 {
			t.Fatalf("greedy %g below half of optimum %g", gr.Weight, opt)
		}
	}
}

func TestLocallyDominantBasic(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 2}, {A: 1, B: 0, W: 3},
	})
	for _, oneSided := range []bool{false, true} {
		r := LocallyDominant(g, 2, LocallyDominantOptions{OneSidedInit: oneSided})
		if err := r.Validate(g); err != nil {
			t.Fatal(err)
		}
		// Locally dominant takes a1-b0 (heaviest), then a0-b1.
		if r.Weight != 5 || r.Card != 2 {
			t.Fatalf("oneSided=%v: weight=%g card=%d", oneSided, r.Weight, r.Card)
		}
	}
}

func TestLocallyDominantEqualsGreedyWeightOnDistinctWeights(t *testing.T) {
	// With all-distinct weights, the locally-dominant matching equals
	// the greedy matching (classic result).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, rng.Intn(10)+2, rng.Intn(10)+2, 0.4)
		gr := Greedy(g, 1)
		for _, oneSided := range []bool{false, true} {
			ld := LocallyDominant(g, 4, LocallyDominantOptions{OneSidedInit: oneSided})
			if err := ld.Validate(g); err != nil {
				t.Fatal(err)
			}
			if math.Abs(ld.Weight-gr.Weight) > 1e-9 {
				t.Fatalf("trial %d oneSided=%v: LD=%g greedy=%g", trial, oneSided, ld.Weight, gr.Weight)
			}
		}
	}
}

// Property: the locally-dominant matching is a valid, maximal matching
// with weight at least half the optimum — for both init variants,
// sorted and scanned adjacency, and several thread counts.
func TestQuickLocallyDominantGuarantees(t *testing.T) {
	f := func(seed int64, naRaw, nbRaw, thrRaw uint8, oneSided, sorted bool) bool {
		na := int(naRaw)%9 + 1
		nb := int(nbRaw)%9 + 1
		threads := int(thrRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, na, nb, 0.45)
		r := LocallyDominant(g, threads, LocallyDominantOptions{
			OneSidedInit: oneSided, SortedAdjacency: sorted, Chunk: 2,
		})
		if r.Validate(g) != nil || !r.IsMaximal(g) {
			return false
		}
		opt := Brute(g)
		return r.Weight >= opt/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedAdjacencyMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, rng.Intn(15)+2, rng.Intn(15)+2, 0.4)
		plain := LocallyDominant(g, 3, LocallyDominantOptions{})
		sorted := LocallyDominant(g, 3, LocallyDominantOptions{SortedAdjacency: true})
		if err := sorted.Validate(g); err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain.Weight-sorted.Weight) > 1e-9 {
			t.Fatalf("trial %d: sorted %g != scan %g", trial, sorted.Weight, plain.Weight)
		}
	}
}

func TestLocallyDominantManyThreadsLargeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, 300, 280, 0.03)
	serial := LocallyDominant(g, 1, LocallyDominantOptions{})
	if err := serial.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 4, 8} {
		for _, oneSided := range []bool{false, true} {
			r := LocallyDominant(g, threads, LocallyDominantOptions{OneSidedInit: oneSided, Chunk: 16})
			if err := r.Validate(g); err != nil {
				t.Fatalf("threads=%d oneSided=%v: %v", threads, oneSided, err)
			}
			if !r.IsMaximal(g) {
				t.Fatalf("threads=%d oneSided=%v: not maximal", threads, oneSided)
			}
			// Distinct random weights: result must equal the greedy
			// weight regardless of threads.
			if math.Abs(r.Weight-serial.Weight) > 1e-9 {
				t.Fatalf("threads=%d oneSided=%v: weight %g != serial %g", threads, oneSided, r.Weight, serial.Weight)
			}
		}
	}
}

func TestApproxMatcherIsHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := randomGraph(rng, 40, 40, 0.15)
	r := Approx(g, 4)
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	ex := Exact(g, 1)
	if r.Weight < ex.Weight/2-1e-9 {
		t.Fatalf("approx %g below half of exact %g", r.Weight, ex.Weight)
	}
	if r.Weight > ex.Weight+1e-9 {
		t.Fatalf("approx %g exceeds exact %g", r.Weight, ex.Weight)
	}
}

func TestExactSubset(t *testing.T) {
	g := mustGraph(t, 3, 3, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1}, {A: 2, B: 2, W: 1},
	})
	// Subproblem over edges {(0,0),(0,1),(1,0)} with custom weights:
	// picking (0,1)+(1,0) beats (0,0).
	e00, _ := g.Find(0, 0)
	e01, _ := g.Find(0, 1)
	e10, _ := g.Find(1, 0)
	sel, val := ExactSubset(g, []int{e00, e01, e10}, []float64{3, 2, 2})
	if math.Abs(val-4) > 1e-9 {
		t.Fatalf("subset value %g, want 4", val)
	}
	seen := map[int]bool{}
	for _, s := range sel {
		seen[s] = true
	}
	if !seen[1] || !seen[2] || seen[0] {
		t.Fatalf("selected positions %v, want {1,2}", sel)
	}
}

func TestExactSubsetEmptyAndNonPositive(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{{A: 0, B: 0, W: 1}})
	if sel, val := ExactSubset(g, nil, nil); sel != nil || val != 0 {
		t.Fatal("empty subset nonzero")
	}
	e, _ := g.Find(0, 0)
	if sel, val := ExactSubset(g, []int{e}, []float64{-2}); len(sel) != 0 || val != 0 {
		t.Fatal("non-positive weights must select nothing")
	}
}

func TestExactSubsetMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, rng.Intn(6)+1, rng.Intn(6)+1, 0.6)
		// Random sub-selection of edges with fresh weights.
		var edges []int
		var weights []float64
		for e := 0; e < g.NumEdges(); e++ {
			if rng.Float64() < 0.7 {
				edges = append(edges, e)
				weights = append(weights, rng.Float64()*4-0.5)
			}
		}
		sel, val := ExactSubset(g, edges, weights)
		// Verify selection is a matching and value matches.
		usedA := map[int]bool{}
		usedB := map[int]bool{}
		sum := 0.0
		for _, i := range sel {
			e := edges[i]
			a, b := g.EdgeA[e], g.EdgeB[e]
			if usedA[a] || usedB[b] {
				t.Fatal("subset selection is not a matching")
			}
			usedA[a], usedB[b] = true, true
			sum += weights[i]
		}
		if math.Abs(sum-val) > 1e-9 {
			t.Fatalf("reported %g, actual %g", val, sum)
		}
		// Compare against brute force on the subproblem.
		var we []bipartite.WeightedEdge
		for i, e := range edges {
			if weights[i] > 0 {
				we = append(we, bipartite.WeightedEdge{A: g.EdgeA[e], B: g.EdgeB[e], W: weights[i]})
			}
		}
		sub, err := bipartite.New(g.NA, g.NB, we)
		if err != nil {
			t.Fatal(err)
		}
		if want := Brute(sub); math.Abs(val-want) > 1e-9 {
			t.Fatalf("trial %d: subset=%g brute=%g", trial, val, want)
		}
	}
}

func TestResultIndicator(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 1, B: 1, W: 2},
	})
	r := Exact(g, 1)
	x := r.Indicator(g)
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if int(sum) != r.Card {
		t.Fatalf("indicator sum %g != card %d", sum, r.Card)
	}
}

func TestValidateCatchesBadResults(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{{A: 0, B: 0, W: 1}})
	r := Exact(g, 1)
	bad := &Result{MateA: []int{0, -1}, MateB: []int{1, -1}, Weight: 1, Card: 1}
	if err := bad.Validate(g); err == nil {
		t.Fatal("non-mutual mates accepted")
	}
	bad2 := &Result{MateA: []int{1, -1}, MateB: []int{-1, 0}, Weight: 1, Card: 1}
	if err := bad2.Validate(g); err == nil {
		t.Fatal("non-edge pair accepted")
	}
	bad3 := &Result{MateA: r.MateA, MateB: r.MateB, Weight: r.Weight + 1, Card: r.Card}
	if err := bad3.Validate(g); err == nil {
		t.Fatal("wrong weight accepted")
	}
}

func TestNewResultComputesWeight(t *testing.T) {
	g := mustGraph(t, 2, 2, []bipartite.WeightedEdge{{A: 0, B: 1, W: 3}, {A: 1, B: 0, W: 4}})
	r := NewResult(g, []int{1, 0}, []int{1, 0})
	if r.Weight != 7 || r.Card != 2 {
		t.Fatalf("NewResult weight=%g card=%d", r.Weight, r.Card)
	}
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExactMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 500, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(g, 1)
	}
}

func BenchmarkLocallyDominant(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 500, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocallyDominant(g, 0, LocallyDominantOptions{OneSidedInit: true})
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 500, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(g, 1)
	}
}

package matching

import (
	"fmt"

	"netalignmc/internal/graph"
)

// MaxWeightGeneralExact computes a maximum-weight matching on a small
// general weighted graph by dynamic programming over vertex subsets
// (O(2ⁿ·n) time and O(2ⁿ) space). It is the exact weighted reference
// for the general-graph half-approximate matchers; n is limited to 24
// vertices. For bipartite inputs prefer Exact, which has no size
// limit.
func MaxWeightGeneralExact(g *WeightedGraph) (mate []int, weight float64, err error) {
	n := g.NumVertices()
	if n > 24 {
		return nil, 0, fmt.Errorf("matching: exact general matching limited to 24 vertices, got %d", n)
	}
	mate = make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	if n == 0 {
		return mate, 0, nil
	}
	size := 1 << n
	best := make([]float64, size)
	choice := make([]int32, size) // encodes (u<<5)|v of the matched pair, -1 = leave lowest vertex single
	for s := 1; s < size; s++ {
		// Lowest unprocessed vertex of the subset.
		u := 0
		for (s>>u)&1 == 0 {
			u++
		}
		// Option 1: u stays unmatched.
		rest := s &^ (1 << u)
		best[s] = best[rest]
		choice[s] = -1
		// Option 2: match u to a neighbor in the subset.
		lo := g.Ptr[u]
		for i, v := range g.Neighbors(u) {
			if (s>>v)&1 == 0 || g.W[lo+i] <= 0 {
				continue
			}
			cand := best[rest&^(1<<v)] + g.W[lo+i]
			if cand > best[s] {
				best[s] = cand
				choice[s] = int32(u<<5 | v)
			}
		}
	}
	// Reconstruct.
	s := size - 1
	for s != 0 {
		c := choice[s]
		u := 0
		for (s>>u)&1 == 0 {
			u++
		}
		if c < 0 {
			s &^= 1 << u
			continue
		}
		cu, cv := int(c)>>5, int(c)&31
		mate[cu] = cv
		mate[cv] = cu
		weight += g.weightBetween(cu, cv)
		s &^= (1 << cu) | (1 << cv)
	}
	return mate, weight, nil
}

// MaxCardinalityGeneral computes a maximum-cardinality matching in a
// general (non-bipartite) graph with Edmonds' blossom algorithm. The
// paper contrasts its half-approximate matcher with the exact
// general-graph matching algorithms of Gabow and Mehlhorn–Schäfer
// ([20], [21]); this provides the cardinality member of that exact
// family as a reference implementation for the general-matcher tests
// and for users who need exact cardinalities on non-bipartite inputs.
//
// The implementation is the classic O(V³) contraction-by-base version:
// repeatedly search for an augmenting path from each free vertex with
// a BFS that contracts odd cycles (blossoms) to their base via a
// union-find-like base[] array.
func MaxCardinalityGeneral(g *graph.Graph) (mate []int, card int) {
	n := g.NumVertices()
	mate = make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	p := make([]int, n)    // BFS parent (the vertex we came from)
	base := make([]int, n) // blossom base of each vertex
	used := make([]bool, n)
	blossom := make([]bool, n)
	queue := make([]int, 0, n)

	lca := func(a, b int) int {
		usedPath := make(map[int]bool)
		for {
			a = base[a]
			usedPath[a] = true
			if mate[a] == -1 {
				break
			}
			a = p[mate[a]]
		}
		for {
			b = base[b]
			if usedPath[b] {
				return b
			}
			b = p[mate[b]]
		}
	}

	markPath := func(v, b, child int) {
		for base[v] != b {
			blossom[base[v]] = true
			blossom[base[mate[v]]] = true
			p[v] = child
			child = mate[v]
			v = p[mate[v]]
		}
	}

	findPath := func(root int) int {
		for i := range used {
			used[i] = false
			p[i] = -1
			base[i] = i
		}
		used[root] = true
		queue = append(queue[:0], root)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, to := range g.Neighbors(v) {
				if base[v] == base[to] || mate[v] == to {
					continue
				}
				if to == root || (mate[to] != -1 && p[mate[to]] != -1) {
					// Odd cycle: contract the blossom.
					curBase := lca(v, to)
					for i := range blossom {
						blossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := 0; i < len(base); i++ {
						if blossom[base[i]] {
							base[i] = curBase
							if !used[i] {
								used[i] = true
								queue = append(queue, i)
							}
						}
					}
				} else if p[to] == -1 {
					p[to] = v
					if mate[to] == -1 {
						return to // augmenting path found
					}
					used[mate[to]] = true
					queue = append(queue, mate[to])
				}
			}
		}
		return -1
	}

	for v := 0; v < n; v++ {
		if mate[v] != -1 {
			continue
		}
		end := findPath(v)
		if end == -1 {
			continue
		}
		// Augment along parent pointers.
		for end != -1 {
			pv := p[end]
			ppv := mate[pv]
			mate[end] = pv
			mate[pv] = end
			end = ppv
		}
		card++
	}
	return mate, card
}

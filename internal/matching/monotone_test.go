package matching

import (
	"math"
	"math/rand"
	"testing"
)

// TestTryMatchMonotoneGreedyEquivalence guards against the
// CAS-then-rollback regression in tryMatch: a transiently-set mate
// word makes concurrent FINDMATE scans skip an available vertex, and
// the matcher then commits a non-dominant edge, breaking the greedy
// equivalence that holds for distinct weights. The failure was
// schedule-dependent (roughly 1 in 50 runs on a loaded worker pool),
// so this hammers many small instances across thread counts; the
// general and bipartite variants share the claiming scheme and are
// both exercised.
func TestTryMatchMonotoneGreedyEquivalence(t *testing.T) {
	trials := 3000
	if testing.Short() {
		trials = 500
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := trial%12 + 2
		threads := trial%4 + 1
		g := randomWeighted(rng, n, 0.4)
		_, w := LocallyDominantGeneral(g, threads)
		ref := greedyGeneral(g)
		if math.Abs(w-ref) > 1e-9 {
			t.Fatalf("general trial %d (n=%d threads=%d): weight %g != greedy %g", trial, n, threads, w, ref)
		}
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 7919))
		na, nb := rng.Intn(10)+2, rng.Intn(10)+2
		threads := trial%4 + 1
		bg := randomGraph(rng, na, nb, 0.4)
		ld := LocallyDominant(bg, threads, LocallyDominantOptions{OneSidedInit: trial%2 == 0})
		ref := Greedy(bg, 1)
		if math.Abs(ld.Weight-ref.Weight) > 1e-9 {
			t.Fatalf("bipartite trial %d (na=%d nb=%d threads=%d): weight %g != greedy %g", trial, na, nb, threads, ld.Weight, ref.Weight)
		}
	}
}

package matching_test

import (
	"fmt"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/graph"
	"netalignmc/internal/matching"
)

func exampleGraph() *bipartite.Graph {
	g, err := bipartite.New(2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 2}, {A: 1, B: 0, W: 3},
	})
	if err != nil {
		panic(err)
	}
	return g
}

func ExampleExact() {
	r := matching.Exact(exampleGraph(), 1)
	fmt.Printf("weight=%.0f card=%d mates=%v\n", r.Weight, r.Card, r.MateA)
	// Output:
	// weight=5 card=2 mates=[1 0]
}

func ExampleLocallyDominant() {
	r := matching.LocallyDominant(exampleGraph(), 2, matching.LocallyDominantOptions{OneSidedInit: true})
	fmt.Printf("weight=%.0f card=%d\n", r.Weight, r.Card)
	// Output:
	// weight=5 card=2
}

func ExampleSuitor() {
	r := matching.Suitor(exampleGraph(), 1)
	fmt.Printf("weight=%.0f card=%d\n", r.Weight, r.Card)
	// Output:
	// weight=5 card=2
}

func ExampleAuction() {
	r := matching.Auction(exampleGraph(), 1, 1e-9)
	fmt.Printf("weight=%.0f card=%d\n", r.Weight, r.Card)
	// Output:
	// weight=5 card=2
}

func ExampleHopcroftKarp() {
	r := matching.HopcroftKarp(exampleGraph(), nil)
	fmt.Printf("card=%d\n", r.Card)
	// Output:
	// card=2
}

func ExampleMaxCardinalityGeneral() {
	// A triangle: only one edge can be matched.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	_, card := matching.MaxCardinalityGeneral(g)
	fmt.Println(card)
	// Output:
	// 1
}

func ExampleExactSubset() {
	g := exampleGraph()
	// Restrict to edges 0 and 2 with custom weights.
	selected, value := matching.ExactSubset(g, []int{0, 2}, []float64{10, 1})
	fmt.Printf("selected=%v value=%.0f\n", selected, value)
	// Output:
	// selected=[0] value=10
}

// Package cache implements the content-addressed result cache behind
// netalignd's request deduplication (and `netalign -cache-dir`). The
// solvers are deterministic given a canonical problem and an output-
// affecting option set — a property the solver test matrix pins
// bit-identically across thread counts, pools and partitions — so a
// finished result is a pure function of its cache key and can be
// replayed for every later identical request.
//
// A key is the SHA-256 of the canonicalized problem bytes (the exact
// bytes the server spools as problem.txt) plus the canonical option
// fingerprint from core.Options.CacheFingerprint. Thread count,
// partition mode, pooling and kernel fusion are excluded from the
// fingerprint because they cannot change the output bits.
//
// The cache has two tiers:
//
//   - a memory tier: an LRU bounded by total serialized-result bytes
//     (not entry count, so one huge alignment cannot silently pin the
//     budget), and
//   - an optional disk tier: one file per key, written atomically
//     (temp file + fsync + rename + parent-directory fsync) and
//     validated against a stored SHA-256 of the payload on every
//     load, so a torn or corrupted file is detected, deleted and
//     reported as a miss rather than served.
//
// The disk tier survives restarts; the memory tier refills from it on
// demand.
package cache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"netalignmc/internal/faults"
	"netalignmc/internal/problemio"
)

// Fault points of the disk tier's atomic entry write (see
// internal/faults): the payload write supports injected
// EIO/ENOSPC/short-writes, the rename injected errors.
func init() {
	faults.RegisterWritePoint("cache:write")
	faults.RegisterPoint("cache:rename")
}

// Key is a content address: the SHA-256 of a canonical problem plus
// an option fingerprint.
type Key [sha256.Size]byte

// String returns the key in hex (the disk tier's file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String — the format
// keys travel in over the cluster's peer-fill protocol
// (GET /v1/cache/{key}) and in disk-tier file names.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != hex.EncodedLen(len(k)) {
		return k, fmt.Errorf("cache: key %q: want %d hex digits", s, hex.EncodedLen(len(k)))
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return k, fmt.Errorf("cache: key %q: %w", s, err)
	}
	return k, nil
}

// KeyFor derives the cache key for a canonicalized problem and a
// canonical option fingerprint (core.Options.CacheFingerprint). Both
// parts are length-prefixed before hashing so no (problem, options)
// pair can collide with a different split of the same concatenation.
func KeyFor(problem []byte, fingerprint string) Key {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(problem)))
	h.Write(n[:])
	h.Write(problem)
	binary.LittleEndian.PutUint64(n[:], uint64(len(fingerprint)))
	h.Write(n[:])
	h.Write([]byte(fingerprint))
	var k Key
	h.Sum(k[:0])
	return k
}

// ErrCorrupt reports a disk entry whose payload failed hash (or
// header) validation; the entry is removed when detected.
var ErrCorrupt = errors.New("cache: corrupt disk entry")

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Get calls answered from either tier.
	Hits int64 `json:"hits"`
	// DiskHits counts the subset of Hits answered from the disk tier
	// (memory misses that the disk tier recovered).
	DiskHits int64 `json:"diskHits"`
	// Misses counts Get calls answered by neither tier.
	Misses int64 `json:"misses"`
	// Evictions counts memory-tier entries dropped by the LRU byte
	// bound (disk copies, when present, survive eviction).
	Evictions int64 `json:"evictions"`
	// Corrupt counts disk entries rejected by hash validation.
	Corrupt int64 `json:"corrupt"`
	// Bytes and Entries describe the memory tier right now.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
}

type entry struct {
	key  Key
	data []byte
}

// Cache is the two-tier result cache. All methods are safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	dir      string
	// diskOff, when true, bypasses the disk tier on both Get and Put
	// (memory-only operation). The pressure monitor flips it under
	// disk pressure so a nearly-full spool volume stops accumulating
	// cache entries; existing disk entries are kept and become
	// readable again when pressure clears.
	diskOff bool

	hits, diskHits, misses, evictions, corrupt int64
}

// New builds a cache whose memory tier holds at most maxBytes of
// serialized results. dir, when non-empty, enables the disk tier
// under that directory (created if needed). maxBytes must be
// positive.
func New(maxBytes int64, dir string) (*Cache, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive byte bound %d", maxBytes)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: disk tier: %w", err)
		}
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		dir:      dir,
	}, nil
}

// Get returns the cached result bytes for key. A memory miss falls
// through to the disk tier (when enabled); a disk hit is promoted
// back into the memory LRU. The returned slice is shared — callers
// must not modify it.
func (c *Cache) Get(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).data, true
	}
	if c.dir == "" || c.diskOff {
		c.misses++
		return nil, false
	}
	data, err := LoadDisk(c.dir, key)
	switch {
	case err == nil:
		c.hits++
		c.diskHits++
		c.insertLocked(key, data)
		return data, true
	case errors.Is(err, ErrCorrupt):
		c.corrupt++
	}
	c.misses++
	return nil, false
}

// Peek is Get without the hit/miss accounting: both tiers are
// consulted (and a disk hit is still promoted into the memory LRU),
// but the counters stay untouched. It backs the cluster's serve-by-key
// endpoint and the post-peer-fill recheck — a neighbor probing this
// node's cache, or a node re-checking after an unlocked network probe,
// must not skew the node's own hit-rate metrics. Corrupt disk entries
// are still counted and removed.
func (c *Cache) Peek(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).data, true
	}
	if c.dir == "" || c.diskOff {
		return nil, false
	}
	data, err := LoadDisk(c.dir, key)
	switch {
	case err == nil:
		c.insertLocked(key, data)
		return data, true
	case errors.Is(err, ErrCorrupt):
		c.corrupt++
	}
	return nil, false
}

// Put stores a result. The write goes through to the disk tier first
// (when enabled) so the entry survives eviction and restarts; disk
// write failures degrade to a memory-only entry rather than erroring
// the solve that produced the result. A payload larger than the
// whole memory bound is kept on disk only.
func (c *Cache) Put(key Key, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir != "" && !c.diskOff {
		_ = StoreDisk(c.dir, key, data)
	}
	if int64(len(data)) > c.maxBytes {
		return
	}
	c.insertLocked(key, data)
}

// insertLocked adds (or refreshes) a memory entry and evicts from the
// LRU tail until the byte bound holds. Callers hold c.mu.
func (c *Cache) insertLocked(key Key, data []byte) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, data: data})
		c.bytes += int64(len(data))
	}
	for c.bytes > c.maxBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*entry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.data))
		c.evictions++
	}
}

// SetDiskEnabled turns the disk tier on or off at runtime (a no-op
// for a cache built without one). Disabling does not delete existing
// entries — they are simply not consulted or extended until the tier
// is re-enabled, which is the degraded ("memory-only") mode the
// pressure monitor enters when the spool volume runs low.
func (c *Cache) SetDiskEnabled(on bool) {
	c.mu.Lock()
	c.diskOff = !on
	c.mu.Unlock()
}

// DiskEnabled reports whether the disk tier is present and active.
func (c *Cache) DiskEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir != "" && !c.diskOff
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, DiskHits: c.diskHits, Misses: c.misses,
		Evictions: c.evictions, Corrupt: c.corrupt,
		Bytes: c.bytes, Entries: len(c.items),
	}
}

// diskHeader is the first line of a disk entry: the key it claims to
// answer, the SHA-256 of the payload that follows, and its length.
type diskHeader struct {
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

// diskPath returns the disk tier file for a key.
func diskPath(dir string, key Key) string {
	return filepath.Join(dir, key.String()+".res")
}

// LoadDisk reads and validates one disk-tier entry: fs.ErrNotExist
// when absent, ErrCorrupt (and the file is removed) when the header
// or the payload hash does not check out. It is exported so the
// netalign CLI can share a daemon's warm entries without running a
// full Cache.
func LoadDisk(dir string, key Key) ([]byte, error) {
	path := diskPath(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	corrupt := func(reason string) error {
		_ = os.Remove(path)
		return fmt.Errorf("%w: %s: %s", ErrCorrupt, key, reason)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, corrupt("missing header")
	}
	var h diskHeader
	if err := json.Unmarshal(raw[:nl], &h); err != nil {
		return nil, corrupt("bad header")
	}
	data := raw[nl+1:]
	if h.Key != key.String() || h.Bytes != len(data) {
		return nil, corrupt("header mismatch")
	}
	if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != h.SHA256 {
		return nil, corrupt("payload hash mismatch")
	}
	return data, nil
}

// StoreDisk writes one disk-tier entry atomically: temp file, fsync,
// rename, parent-directory fsync — the same discipline as the job
// spool, so a crash never leaves a half-written entry under the
// final name.
func StoreDisk(dir string, key Key, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: disk tier: %w", err)
	}
	sum := sha256.Sum256(data)
	header, err := json.Marshal(diskHeader{
		Key: key.String(), SHA256: hex.EncodeToString(sum[:]), Bytes: len(data),
	})
	if err != nil {
		return fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	path := diskPath(dir, key)
	tmp, err := os.CreateTemp(dir, key.String()+".tmp*")
	if err != nil {
		return fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := faults.WriteOp("cache:write", tmp, append(append(header, '\n'), data...)); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	if err := faults.Inject("cache:rename"); err != nil {
		return fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	if err := problemio.SyncDir(dir); err != nil {
		return fmt.Errorf("cache: disk entry %s: %w", key, err)
	}
	return nil
}

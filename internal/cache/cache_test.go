package cache

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func key(s string) Key { return KeyFor([]byte(s), "fp") }

func TestKeyForSensitivity(t *testing.T) {
	base := KeyFor([]byte("problem"), "bp;iters=10")
	if KeyFor([]byte("problem"), "bp;iters=11") == base {
		t.Error("fingerprint change did not change the key")
	}
	if KeyFor([]byte("problem!"), "bp;iters=10") == base {
		t.Error("problem change did not change the key")
	}
	// Length prefixing: moving a byte across the part boundary must
	// not produce the same key.
	if KeyFor([]byte("problemb"), "p;iters=10") == KeyFor([]byte("problem"), "bp;iters=10") {
		t.Error("boundary shift collided")
	}
	if KeyFor([]byte("problem"), "bp;iters=10") != base {
		t.Error("identical inputs produced different keys")
	}
}

func TestMemoryHitMissAndLRUEviction(t *testing.T) {
	c, err := New(100, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("a"), bytes.Repeat([]byte{'a'}, 40))
	c.Put(key("b"), bytes.Repeat([]byte{'b'}, 40))
	if got, ok := c.Get(key("a")); !ok || len(got) != 40 || got[0] != 'a' {
		t.Fatalf("get a = %q, %v", got, ok)
	}
	// "a" is now most recently used; inserting 40 more bytes must
	// evict "b", the LRU entry.
	c.Put(key("c"), bytes.Repeat([]byte{'c'}, 40))
	if _, ok := c.Get(key("b")); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := c.Get(key("c")); !ok {
		t.Error("new entry c missing")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries, 80 bytes", st)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 3 hits / 2 misses", st)
	}

	// An oversized payload never enters the memory tier.
	c.Put(key("huge"), bytes.Repeat([]byte{'h'}, 200))
	if st := c.Stats(); st.Bytes > 100 {
		t.Errorf("oversized put blew the byte bound: %+v", st)
	}
}

func TestDiskTierRoundTripAndPromotion(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"objective":42}`)
	c1.Put(key("job"), payload)

	// A fresh cache over the same directory — as after a daemon
	// restart — serves the entry from disk and promotes it.
	c2, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key("job"))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("disk get = %q, %v", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats after disk hit = %+v", st)
	}
	// The promoted copy answers the next Get from memory.
	if _, ok := c2.Get(key("job")); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Errorf("second get not served from memory: %+v", st)
	}
}

func TestDiskCorruptEntryDetectedAndRemoved(t *testing.T) {
	dir := t.TempDir()
	k := key("job")
	if err := StoreDisk(dir, k, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.String()+".res")

	corrupt := func(t *testing.T, mutate func([]byte) []byte) {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadDisk(dir, k); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("LoadDisk on corrupt entry: %v, want ErrCorrupt", err)
		}
		if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
			t.Error("corrupt entry not removed")
		}
	}

	t.Run("flipped payload byte", func(t *testing.T) {
		corrupt(t, func(raw []byte) []byte {
			raw[len(raw)-1] ^= 0xff
			return raw
		})
	})
	if err := StoreDisk(dir, k, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	t.Run("truncated payload", func(t *testing.T) {
		corrupt(t, func(raw []byte) []byte { return raw[:len(raw)-3] })
	})
	if err := StoreDisk(dir, k, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	t.Run("mangled header", func(t *testing.T) {
		corrupt(t, func(raw []byte) []byte { return append([]byte("not json"), raw...) })
	})

	// Through the Cache: a corrupt entry is a counted miss, not a hit.
	if err := StoreDisk(dir, k, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	_ = os.WriteFile(path, raw, 0o644)
	c, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt disk entry served as a hit")
	}
	if st := c.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Errorf("stats after corrupt get = %+v", st)
	}
}

func TestLoadDiskAbsent(t *testing.T) {
	if _, err := LoadDisk(t.TempDir(), key("missing")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("absent entry: %v, want fs.ErrNotExist", err)
	}
}

func TestPutRefreshSameKey(t *testing.T) {
	c, err := New(100, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key("a"), bytes.Repeat([]byte{'1'}, 30))
	c.Put(key("a"), bytes.Repeat([]byte{'2'}, 50))
	got, ok := c.Get(key("a"))
	if !ok || len(got) != 50 || got[0] != '2' {
		t.Fatalf("refreshed entry = %q, %v", got, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 50 {
		t.Errorf("stats after refresh = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(1<<12, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("k%d", (w+i)%16))
				c.Put(k, bytes.Repeat([]byte{byte(w)}, 64))
				c.Get(k)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

package bench

import "fmt"

// GateOptions parameterizes Gate. The zero value is not usable; call
// DefaultGateOptions for the CI defaults.
type GateOptions struct {
	// Label selects the runs in the candidate document.
	Label string
	// BaseLabel selects the runs in the baseline document.
	BaseLabel string
	// MaxNsRatio is the ceiling on candidate/baseline ns-per-iter at
	// one thread (1.10 = "within 10%").
	MaxNsRatio float64
	// MinSpeedup is the target multi-thread speedup over the
	// candidate's own 1-thread run. The enforced floor is
	// hardware-aware: min(MinSpeedup, min(threads, host CPUs)/2),
	// clamped below at 1.0 — so a document recorded on a machine with
	// fewer cores than the gated thread count is held to what that
	// machine could plausibly deliver rather than an unreachable
	// target, but never to less than parity (a sub-1.0 floor would
	// pass runs where adding threads made the solver slower). On
	// hosts with fewer than 2 usable CPUs the speedup check is
	// skipped with a notice instead of passing vacuously.
	MinSpeedup float64
	// SpeedupThreads is the thread count the speedup gate inspects.
	SpeedupThreads int
	// SpeedupConfigs names the configurations the speedup gate
	// applies to (the 1-thread ratio gate applies to every candidate
	// run that has a baseline counterpart).
	SpeedupConfigs []string
}

// DefaultGateOptions returns the CI gate parameters: 1-thread ns/iter
// within 10% of the baseline document, and an 8-thread fig2-bp speedup
// of at least 2x (scaled down on hosts with fewer than 4 CPUs).
func DefaultGateOptions(label, baseLabel string) GateOptions {
	return GateOptions{
		Label:          label,
		BaseLabel:      baseLabel,
		MaxNsRatio:     1.10,
		MinSpeedup:     2.0,
		SpeedupThreads: 8,
		SpeedupConfigs: []string{"fig2-bp"},
	}
}

// requiredSpeedup is the hardware-aware speedup floor for a document
// recorded on a host with the given CPU count. The floor is clamped
// at 1.0: min(threads, cpus)/2 degenerates below parity on 1–2 CPU
// runners (0.5 on one CPU), which would accept a candidate whose
// multi-thread run is slower than its own 1-thread run.
func requiredSpeedup(minSpeedup float64, threads, cpus int) float64 {
	avail := threads
	if cpus < avail {
		avail = cpus
	}
	floor := minSpeedup
	if f := float64(avail) / 2; f < floor {
		floor = f
	}
	if floor < 1 {
		floor = 1
	}
	return floor
}

// Gate checks the candidate document against the baseline document and
// returns a human-readable report line per check. It fails (non-nil
// error) when any 1-thread run regresses past MaxNsRatio of its
// baseline counterpart, or when a gated configuration's speedup at
// SpeedupThreads falls below the hardware-aware floor. Both documents
// are committed artifacts, so the gate is deterministic: it judges the
// recorded measurements, not a fresh (noisy) run on the CI machine.
func Gate(doc, base *Doc, o GateOptions) ([]string, error) {
	var report []string
	failures := 0
	checks := 0
	for _, r := range doc.Runs {
		if r.Label != o.Label || r.Threads != 1 {
			continue
		}
		b, ok := base.Find(o.BaseLabel, r.Config, r.Method, 1)
		if !ok || b.NsPerIter <= 0 {
			continue
		}
		checks++
		ratio := r.NsPerIter / b.NsPerIter
		status := "ok"
		if ratio > o.MaxNsRatio {
			status = "REGRESSION"
			failures++
		}
		report = append(report, fmt.Sprintf(
			"gate ns %-16s t=1: %.0f vs %s %.0f ns/iter (ratio %.3f, limit %.2f) %s",
			r.Config, r.NsPerIter, o.BaseLabel, b.NsPerIter, ratio, o.MaxNsRatio, status))
	}
	skipped := 0
	for _, cfg := range o.SpeedupConfigs {
		if avail := min(o.SpeedupThreads, doc.Host.CPUs); avail < 2 {
			// A host that can't run 2 threads in parallel can't exhibit
			// a meaningful speedup; a clamped 1.0 floor would only test
			// "not slower", which measurement noise decides. Skip
			// loudly instead of passing vacuously.
			skipped++
			report = append(report, fmt.Sprintf(
				"gate speedup %-9s t=%d: SKIPPED (%d-cpu host cannot exhibit parallel speedup)",
				cfg, o.SpeedupThreads, doc.Host.CPUs))
			continue
		}
		one, okOne := findAnyMethod(doc, o.Label, cfg, 1)
		many, okMany := findAnyMethod(doc, o.Label, cfg, o.SpeedupThreads)
		if !okOne || !okMany || one.NsPerIter <= 0 || many.NsPerIter <= 0 {
			failures++
			report = append(report, fmt.Sprintf(
				"gate speedup %-9s: missing %q runs at t=1 and t=%d MISSING",
				cfg, o.Label, o.SpeedupThreads))
			continue
		}
		checks++
		speedup := one.NsPerIter / many.NsPerIter
		need := requiredSpeedup(o.MinSpeedup, o.SpeedupThreads, doc.Host.CPUs)
		status := "ok"
		if speedup < need {
			status = "REGRESSION"
			failures++
		}
		report = append(report, fmt.Sprintf(
			"gate speedup %-9s t=%d: %.2fx (need %.2fx on %d-cpu host) %s",
			cfg, o.SpeedupThreads, speedup, need, doc.Host.CPUs, status))
	}
	if checks == 0 && skipped == 0 {
		return report, fmt.Errorf("bench: gate matched no runs labeled %q against %q", o.Label, o.BaseLabel)
	}
	if failures > 0 {
		return report, fmt.Errorf("bench: %d gate check(s) failed", failures)
	}
	return report, nil
}

// findAnyMethod is Find without pinning the method: each named config
// has exactly one method, so the config name is already unambiguous.
func findAnyMethod(d *Doc, label, config string, threads int) (Run, bool) {
	for _, r := range d.Runs {
		if r.Label == label && r.Config == config && r.Threads == threads {
			return r, true
		}
	}
	return Run{}, false
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// FigsSchema identifies the -figs document format.
const FigsSchema = "netalignmc-figs/v1"

// FigsOptions parameterizes one Figs call.
type FigsOptions struct {
	// Threads are the measured thread counts (default 1,2,4,8).
	Threads []int
	// Iters and Reps are per run (defaults 12 and 1: the fig problems
	// are large, so one rep per point keeps the sweep tractable).
	Iters int
	Reps  int
	Seed  int64
	Label string
	// Scale shrinks every preset's vertex count (0 or 1 = full size).
	Scale float64
	// Reorder applies a locality reordering mode to every run.
	Reorder string
	// Progress, when non-nil, receives one line per measured point.
	Progress func(line string)
}

// FigsDoc is the benchalign -figs document: every measured point of
// the Figure 4-7 speedup/per-step sweep, barrier and pipelined, in one
// place. It reuses the Run schema so existing tooling can read the
// per-step breakdowns.
type FigsDoc struct {
	Schema string  `json:"schema"`
	Host   Host    `json:"host"`
	Scale  float64 `json:"scale,omitempty"`
	Runs   []Run   `json:"runs"`
}

// Figs measures the Figure 4-7 configurations over the requested
// thread counts, barrier and pipelined, and returns the combined
// document. The pipelined curve starts at 2 threads (the pipeline
// needs a worker to hide the matching behind) and reuses the barrier
// 1-thread point as its reference.
func Figs(o FigsOptions) (*FigsDoc, error) {
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8}
	}
	if o.Iters <= 0 {
		o.Iters = 12
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Label == "" {
		o.Label = "figs"
	}
	doc := &FigsDoc{Schema: FigsSchema, Host: NewDoc().Host, Scale: o.Scale}
	var pipeThreads []int
	for _, t := range o.Threads {
		if t >= 2 {
			pipeThreads = append(pipeThreads, t)
		}
	}
	for _, cfg := range FigConfigs() {
		for _, pipelined := range []bool{false, true} {
			threads := o.Threads
			if pipelined {
				threads = pipeThreads
			}
			if len(threads) == 0 {
				continue
			}
			runs, err := MeasureConfig(cfg, MeasureOptions{
				Threads: threads, Iters: o.Iters, Reps: o.Reps,
				Seed: o.Seed, Label: o.Label, Fused: cfg.Method == "bp",
				Pipeline: pipelined, Reorder: o.Reorder, ScaleN: o.Scale,
			})
			if err != nil {
				return nil, err
			}
			doc.Runs = append(doc.Runs, runs...)
			if o.Progress != nil {
				for _, r := range runs {
					o.Progress(FormatRun(r))
				}
			}
		}
	}
	return doc, nil
}

// WriteFile writes the document atomically (temp file + rename).
func (d *FigsDoc) WriteFile(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// FigConfigs returns the Figure 4-7 benchmark configurations (the
// fig4-..fig7- entries of the built-in config list) in paper order.
func FigConfigs() []Config {
	var out []Config
	for _, c := range configs {
		if strings.HasPrefix(c.Name, "fig4-") || strings.HasPrefix(c.Name, "fig5-") ||
			strings.HasPrefix(c.Name, "fig6-") || strings.HasPrefix(c.Name, "fig7-") {
			out = append(out, c)
		}
	}
	return out
}

// FormatRun renders one run as the human line benchalign prints.
func FormatRun(r Run) string {
	mode := "barrier"
	if r.Pipeline {
		mode = "pipeline"
	}
	line := fmt.Sprintf("%-12s %-6s %-8s t=%-3d %12.0f ns/iter  obj=%.4f",
		r.Config, r.Method, mode, r.Threads, r.NsPerIter, r.Objective)
	if r.HiddenMatchNs > 0 {
		line += fmt.Sprintf("  hidden=%dns", r.HiddenMatchNs)
	}
	return line
}

// Markdown renders the document as the speedup/per-step report: one
// section per configuration with the barrier and pipelined curves side
// by side (speedup against the 1-thread barrier point, the ratio
// between the modes, and the hidden match time), then the per-step ns
// breakdown of the widest run of each mode.
func (d *FigsDoc) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure 4-7 scaling report\n\n")
	fmt.Fprintf(&b, "Host: %s/%s, %d CPUs, %s.", d.Host.GOOS, d.Host.GOARCH, d.Host.CPUs, d.Host.Go)
	if d.Scale > 0 && d.Scale < 1 {
		fmt.Fprintf(&b, " Problems scaled to %.0f%% of the paper sizes.", 100*d.Scale)
	}
	fmt.Fprintf(&b, "\nSpeedup is against the 1-thread barrier run; `pipe/barrier` < 1 means the pipeline won at that width. All objectives per configuration must agree bit for bit.\n")

	for _, cfg := range figConfigOrder(d.Runs) {
		barrier, pipe := map[int]Run{}, map[int]Run{}
		var threads []int
		seen := map[int]bool{}
		for _, r := range d.Runs {
			if r.Config != cfg {
				continue
			}
			if r.Pipeline {
				pipe[r.Threads] = r
			} else {
				barrier[r.Threads] = r
			}
			if !seen[r.Threads] {
				seen[r.Threads] = true
				threads = append(threads, r.Threads)
			}
		}
		sort.Ints(threads)
		base, haveBase := barrier[1]
		fmt.Fprintf(&b, "\n## %s\n\n", cfg)
		fmt.Fprintf(&b, "| threads | barrier ns/iter | speedup | pipeline ns/iter | speedup | pipe/barrier | hidden match |\n")
		fmt.Fprintf(&b, "|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, t := range threads {
			br, hasB := barrier[t]
			pr, hasP := pipe[t]
			row := []string{fmt.Sprintf("%d", t)}
			speedup := func(r Run) string {
				if !haveBase || base.NsPerIter <= 0 || r.NsPerIter <= 0 {
					return "–"
				}
				return fmt.Sprintf("%.2fx", base.NsPerIter/r.NsPerIter)
			}
			if hasB {
				row = append(row, fmt.Sprintf("%.0f", br.NsPerIter), speedup(br))
			} else {
				row = append(row, "–", "–")
			}
			if hasP {
				ratio := "–"
				if hasB && br.NsPerIter > 0 {
					ratio = fmt.Sprintf("%.2f", pr.NsPerIter/br.NsPerIter)
				}
				row = append(row, fmt.Sprintf("%.0f", pr.NsPerIter), speedup(pr), ratio,
					fmt.Sprintf("%.2fms", float64(pr.HiddenMatchNs)/1e6))
			} else {
				row = append(row, "–", "–", "–", "–")
			}
			fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
		}
		if r, ok := widest(barrier, threads); ok {
			writeStepTable(&b, "barrier", r)
		}
		if r, ok := widest(pipe, threads); ok {
			writeStepTable(&b, "pipeline", r)
		}
	}
	return b.String()
}

// figConfigOrder lists the distinct configs of the runs, first-seen
// order (which Figs emits in paper order).
func figConfigOrder(runs []Run) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range runs {
		if !seen[r.Config] {
			seen[r.Config] = true
			out = append(out, r.Config)
		}
	}
	return out
}

// widest returns the run at the largest measured thread count.
func widest(byThreads map[int]Run, threads []int) (Run, bool) {
	for i := len(threads) - 1; i >= 0; i-- {
		if r, ok := byThreads[threads[i]]; ok {
			return r, true
		}
	}
	return Run{}, false
}

// writeStepTable renders one mode's per-step breakdown at its widest
// thread count, largest step first, so the step limiting scaling (and
// the overlap steps the pipeline adds) is visible in the report.
func writeStepTable(b *strings.Builder, mode string, r Run) {
	if len(r.StepNs) == 0 {
		return
	}
	type step struct {
		name string
		ns   int64
	}
	steps := make([]step, 0, len(r.StepNs))
	for name, ns := range r.StepNs {
		steps = append(steps, step{name, ns})
	}
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].ns != steps[j].ns {
			return steps[i].ns > steps[j].ns
		}
		return steps[i].name < steps[j].name
	})
	fmt.Fprintf(b, "\nPer-step ns, %s mode at t=%d (whole solve):\n\n", mode, r.Threads)
	fmt.Fprintf(b, "| step | ns |\n|---|---:|\n")
	for _, s := range steps {
		fmt.Fprintf(b, "| %s | %d |\n", s.name, s.ns)
	}
}

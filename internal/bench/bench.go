// Package bench is the measurement core of cmd/benchalign: it runs the
// alignment solvers on the paper's synthetic configurations and
// records per-iteration time, allocation, and per-step breakdowns as
// the machine-readable BENCH_*.json documents committed at the repo
// root. Keeping it as a package (rather than inline in the command)
// lets the test suite pin the schema and the measurement invariants.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
	"netalignmc/internal/stats"
)

// Schema identifies the document format; bump on breaking changes.
const Schema = "netalignmc-bench/v1"

// Config is one named benchmark configuration: a problem generator
// plus solver parameters. The names follow the paper's figures.
type Config struct {
	Name string
	// Method is "bp" or "mr".
	Method string
	// DBar is the synthetic expected candidate degree (Figure 2 axis).
	DBar float64
	// N overrides the synthetic vertex count (0 = generator default).
	N int
	// Batch is BP's rounding batch size (0 = 1).
	Batch int
}

// configs are the built-in configurations. fig2-bp is the acceptance
// configuration: the paper's Figure 2 synthetic problem (power-law
// graphs, expected candidate degree 8) solved with BP and approximate
// rounding.
var configs = []Config{
	{Name: "fig2-bp", Method: "bp", DBar: 8},
	{Name: "fig2-bp-batch20", Method: "bp", DBar: 8, Batch: 20},
	{Name: "fig2-mr", Method: "mr", DBar: 8},
	{Name: "fig2-sparse-bp", Method: "bp", DBar: 2},
	{Name: "fig2-sparse-mr", Method: "mr", DBar: 2},
}

// figMethods maps each gen.FigPreset to the solver the paper measures
// on it; fig6 additionally uses batched rounding.
var figMethods = map[string]struct {
	method string
	batch  int
}{
	"fig4": {method: "bp"},
	"fig5": {method: "mr"},
	"fig6": {method: "bp", batch: 20},
	"fig7": {method: "bp"},
}

func init() {
	// The Figure 4-7 scaling configurations share their problem shapes
	// with the gensynth presets so `gensynth -preset figN` reproduces
	// exactly what `benchalign -figs` measures.
	for _, name := range gen.FigPresetNames() {
		so, err := gen.FigPreset(name, 0)
		if err != nil {
			panic(err)
		}
		fm := figMethods[name]
		configs = append(configs, Config{
			Name: name + "-" + fm.method, Method: fm.method,
			DBar: so.ExpectedDegree, N: so.N, Batch: fm.batch,
		})
	}
}

// ConfigNames lists the built-in configuration names.
func ConfigNames() []string {
	names := make([]string, len(configs))
	for i, c := range configs {
		names[i] = c.Name
	}
	return names
}

func configByName(name string) (Config, error) {
	for _, c := range configs {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("bench: unknown config %q (want one of %v)", name, ConfigNames())
}

// Run is one measured benchmark entry.
type Run struct {
	Label      string `json:"label"`
	Config     string `json:"config"`
	Method     string `json:"method"`
	Matcher    string `json:"matcher"`
	Fused      bool   `json:"fused"`
	Threads    int    `json:"threads"`
	Iterations int    `json:"iterations"`
	Reps       int    `json:"reps"`
	Seed       int64  `json:"seed"`
	// NsPerIter is the fastest rep's wall time divided by iterations.
	NsPerIter float64 `json:"ns_per_iter"`
	// AllocsPerIter and BytesPerIter are runtime.MemStats deltas over
	// the fastest rep, divided by iterations (solve-level setup is
	// included, so steady-state zero-alloc iterations show up as a
	// small constant, not exactly zero).
	AllocsPerIter float64 `json:"allocs_per_iter"`
	BytesPerIter  float64 `json:"bytes_per_iter"`
	TotalNs       int64   `json:"total_ns"`
	// Objective cross-checks correctness: entries for the same config,
	// seed and iteration count must agree regardless of threads or
	// kernel fusion.
	Objective float64 `json:"objective"`
	// StepNs is the per-step StepTimer breakdown of the fastest rep.
	StepNs   map[string]int64 `json:"step_ns,omitempty"`
	Recorded string           `json:"recorded,omitempty"`
	// Pipeline records whether the pipelined rounding engine was
	// requested; Reorder the locality reordering mode. Both are
	// bit-identical to the default path, so entries differing only in
	// these fields must report the same Objective.
	Pipeline bool   `json:"pipeline,omitempty"`
	Reorder  string `json:"reorder,omitempty"`
	// OverlapNs, StallNs and HiddenMatchNs attribute the pipelined
	// rounding of the fastest rep: OverlapNs is match/objective work
	// run concurrently with the sweep, StallNs the time the sweep
	// waited for a free pipeline slot, and HiddenMatchNs =
	// max(0, OverlapNs-StallNs) the net barrier cost hidden.
	OverlapNs     int64 `json:"overlap_ns,omitempty"`
	StallNs       int64 `json:"stall_ns,omitempty"`
	HiddenMatchNs int64 `json:"hidden_match_ns,omitempty"`
}

// Host describes the measuring machine.
type Host struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Go     string `json:"go"`
}

// ScalingEntry is one strong-scaling ratio derived from the runs.
type ScalingEntry struct {
	Label   string  `json:"label"`
	Config  string  `json:"config"`
	Method  string  `json:"method"`
	Threads int     `json:"threads"`
	Speedup float64 `json:"speedup"` // ns(t=1) / ns(t)
	// Efficiency is Speedup/Threads: 1.0 is perfect strong scaling.
	Efficiency float64 `json:"efficiency"`
}

// Improvement compares a label against the "baseline" label for the
// same config, method and thread count.
type Improvement struct {
	Label       string  `json:"label"`
	Config      string  `json:"config"`
	Method      string  `json:"method"`
	Threads     int     `json:"threads"`
	NsRatio     float64 `json:"ns_ratio"`     // label ns / baseline ns
	AllocsRatio float64 `json:"allocs_ratio"` // label allocs / baseline allocs
}

// Derived holds quantities computed from the raw runs on every write.
type Derived struct {
	StrongScaling []ScalingEntry `json:"strong_scaling,omitempty"`
	Improvements  []Improvement  `json:"improvements,omitempty"`
}

// Doc is the BENCH_*.json document.
type Doc struct {
	Schema  string   `json:"schema"`
	Host    Host     `json:"host"`
	Runs    []Run    `json:"runs"`
	Derived *Derived `json:"derived,omitempty"`
}

// NewDoc returns an empty document for this host.
func NewDoc() *Doc {
	return &Doc{
		Schema: Schema,
		Host: Host{
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			CPUs:   runtime.NumCPU(),
			Go:     runtime.Version(),
		},
	}
}

// LoadDoc reads a document from disk.
func LoadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, d.Schema, Schema)
	}
	return &d, nil
}

// LoadOrNewDoc reads a document, or returns a fresh one if the file
// does not exist yet.
func LoadOrNewDoc(path string) (*Doc, error) {
	d, err := LoadDoc(path)
	if os.IsNotExist(err) || (err != nil && os.IsNotExist(unwrapAll(err))) {
		return NewDoc(), nil
	}
	if err != nil {
		return nil, err
	}
	return d, nil
}

func unwrapAll(err error) error {
	for {
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}

// WriteFile writes the document atomically (temp file + rename).
func (d *Doc) WriteFile(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// Find returns the first run with the given label, config, method and
// thread count.
func (d *Doc) Find(label, config, method string, threads int) (Run, bool) {
	for _, r := range d.Runs {
		if r.Label == label && r.Config == config && r.Method == method && r.Threads == threads {
			return r, true
		}
	}
	return Run{}, false
}

// Derive recomputes the derived section (strong scaling per label and
// improvements versus the "baseline" label) from the raw runs.
func (d *Doc) Derive() {
	der := &Derived{}
	type key struct {
		label, config, method string
	}
	base := map[key]Run{}
	for _, r := range d.Runs {
		if r.Threads == 1 {
			base[key{r.Label, r.Config, r.Method}] = r
		}
	}
	for _, r := range d.Runs {
		if b, ok := base[key{r.Label, r.Config, r.Method}]; ok && r.Threads > 1 && r.NsPerIter > 0 {
			sp := b.NsPerIter / r.NsPerIter
			der.StrongScaling = append(der.StrongScaling, ScalingEntry{
				Label: r.Label, Config: r.Config, Method: r.Method,
				Threads: r.Threads, Speedup: sp,
				Efficiency: sp / float64(r.Threads),
			})
		}
	}
	for _, r := range d.Runs {
		if r.Label == "baseline" {
			continue
		}
		b, ok := d.Find("baseline", r.Config, r.Method, r.Threads)
		if !ok || b.NsPerIter <= 0 {
			continue
		}
		imp := Improvement{
			Label: r.Label, Config: r.Config, Method: r.Method, Threads: r.Threads,
			NsRatio: r.NsPerIter / b.NsPerIter,
		}
		if b.AllocsPerIter > 0 {
			imp.AllocsRatio = r.AllocsPerIter / b.AllocsPerIter
		}
		der.Improvements = append(der.Improvements, imp)
	}
	sort.Slice(der.StrongScaling, func(i, j int) bool {
		a, b := der.StrongScaling[i], der.StrongScaling[j]
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Threads < b.Threads
	})
	sort.Slice(der.Improvements, func(i, j int) bool {
		a, b := der.Improvements[i], der.Improvements[j]
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Threads < b.Threads
	})
	if len(der.StrongScaling) == 0 && len(der.Improvements) == 0 {
		d.Derived = nil
		return
	}
	d.Derived = der
}

// MeasureOptions parameterizes one Measure call.
type MeasureOptions struct {
	Config  string
	Threads []int
	Iters   int
	Reps    int
	Seed    int64
	Label   string
	// Matcher is the rounding matcher spec text (empty = approx).
	Matcher string
	// Fused selects the fused othermax+damping kernels (BP only).
	Fused bool
	// Pipeline overlaps the rounding/objective step with the next
	// sweep (bit-identical; only effective at >= 2 threads).
	Pipeline bool
	// PipelineDepth is the number of in-flight batches (0 = default).
	PipelineDepth int
	// Reorder is the locality reordering mode: "", none, auto, degree
	// or rcm (bit-identical).
	Reorder string
	// ScaleN scales the configuration's vertex count (0 or 1 = full
	// size); used by Figs to shrink the Fig 4-7 problems.
	ScaleN float64
}

// Measure runs the named configuration at every requested thread count
// and returns one Run per thread count. The problem is built once per
// thread count is wrong — it is built once and shared; solver runs do
// not mutate it.
func Measure(o MeasureOptions) ([]Run, error) {
	cfg, err := configByName(o.Config)
	if err != nil {
		return nil, err
	}
	return MeasureConfig(cfg, o)
}

// MeasureConfig is Measure for an explicit configuration (o.Config is
// ignored); Figs uses it to run the Fig 4-7 shapes at a scale.
func MeasureConfig(cfg Config, o MeasureOptions) ([]Run, error) {
	if o.Iters <= 0 {
		o.Iters = 40
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	matcherText := o.Matcher
	if matcherText == "" {
		matcherText = "approx"
	}
	spec, err := matching.ParseMatcherSpec(matcherText)
	if err != nil {
		return nil, err
	}
	if _, err := spec.Matcher(); err != nil {
		return nil, err
	}
	var reorder core.ReorderOptions
	if err := reorder.Mode.UnmarshalText([]byte(o.Reorder)); err != nil {
		return nil, err
	}

	so := gen.DefaultSynthetic(cfg.DBar, o.Seed)
	if cfg.N > 0 {
		so.N = cfg.N
	}
	if o.ScaleN > 0 && o.ScaleN < 1 {
		if so.N = int(float64(so.N) * o.ScaleN); so.N < 2 {
			so.N = 2
		}
	}
	p, err := gen.Synthetic(so)
	if err != nil {
		return nil, err
	}

	var runs []Run
	for _, threads := range o.Threads {
		r, err := measureOne(p, cfg, o, spec, reorder, threads)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// measureOne runs cfg on p at one thread count: one warmup solve, then
// Reps measured solves; the fastest rep's time, allocations and step
// breakdown are reported. The solves share one workspace (warmed by
// the warmup solve) through the unified Align API, so the measurement
// reflects the steady-state hot path.
func measureOne(p *core.Problem, cfg Config, o MeasureOptions, spec matching.MatcherSpec, reorder core.ReorderOptions, threads int) (Run, error) {
	ws := core.NewWorkspace()
	pipeline := core.PipelineOptions{Enabled: o.Pipeline, Depth: o.PipelineDepth}
	solve := func(timer *stats.StepTimer) (*core.AlignResult, error) {
		switch cfg.Method {
		case "bp":
			res, err := p.Align(context.Background(), core.Options{Method: core.MethodBP, BP: core.BPOptions{
				Iterations: o.Iters, Batch: cfg.Batch, Threads: threads,
				Matcher: spec, FuseKernels: o.Fused, Workspace: ws,
				SkipFinalExact: true, Timer: timer,
			}, Pipeline: pipeline, Reorder: reorder})
			return res, err
		case "mr":
			res, err := p.Align(context.Background(), core.Options{Method: core.MethodMR, MR: core.MROptions{
				Iterations: o.Iters, Threads: threads,
				Matcher: spec, Workspace: ws,
				SkipFinalExact: true, Timer: timer,
			}, Pipeline: pipeline, Reorder: reorder})
			return res, err
		default:
			return nil, fmt.Errorf("bench: config %s has unknown method %q", cfg.Name, cfg.Method)
		}
	}

	// Warmup: pre-touch all lazily built structures.
	if _, err := solve(nil); err != nil {
		return Run{}, err
	}

	run := Run{
		Label: o.Label, Config: cfg.Name, Method: cfg.Method, Matcher: spec.String(),
		Fused: o.Fused && cfg.Method == "bp", Threads: threads,
		Iterations: o.Iters, Reps: o.Reps, Seed: o.Seed,
		Recorded: time.Now().UTC().Format(time.RFC3339),
		Pipeline: o.Pipeline, Reorder: reorder.Mode.String(),
	}
	if reorder.Mode == core.ReorderNone {
		run.Reorder = "" // omitempty: keep default-path entries unchanged
	}
	var ms0, ms1 runtime.MemStats
	for rep := 0; rep < o.Reps; rep++ {
		timer := stats.NewStepTimer()
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := solve(timer)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return Run{}, err
		}
		iters := res.Iterations
		if iters <= 0 {
			iters = o.Iters
		}
		if rep == 0 || elapsed.Nanoseconds() < run.TotalNs {
			run.TotalNs = elapsed.Nanoseconds()
			run.NsPerIter = float64(elapsed.Nanoseconds()) / float64(iters)
			run.AllocsPerIter = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
			run.BytesPerIter = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters)
			run.Objective = res.Objective
			steps := map[string]int64{}
			for step, d := range timer.Snapshot() {
				steps[step] = d.Nanoseconds()
			}
			run.StepNs = steps
			run.OverlapNs, run.StallNs, run.HiddenMatchNs = 0, 0, 0
			if pr := res.Pipeline; pr != nil {
				run.OverlapNs = pr.OverlapNs
				run.StallNs = pr.StallNs
				run.HiddenMatchNs = pr.HiddenMatchNs
			}
		}
	}
	return run, nil
}

package bench

import (
	"strings"
	"testing"
)

func docWith(cpus int, runs ...Run) *Doc {
	d := NewDoc()
	d.Host.CPUs = cpus
	d.Runs = runs
	return d
}

func run(label, config, method string, threads int, ns float64) Run {
	return Run{Label: label, Config: config, Method: method, Threads: threads, NsPerIter: ns}
}

func TestGatePasses(t *testing.T) {
	base := docWith(8, run("pr3", "fig2-bp", "bp", 1, 1000))
	doc := docWith(8,
		run("pr4", "fig2-bp", "bp", 1, 1050),
		run("pr4", "fig2-bp", "bp", 8, 300),
	)
	report, err := Gate(doc, base, DefaultGateOptions("pr4", "pr3"))
	if err != nil {
		t.Fatalf("gate failed: %v\n%s", err, strings.Join(report, "\n"))
	}
	if len(report) != 2 {
		t.Fatalf("want 2 report lines, got %d: %v", len(report), report)
	}
}

func TestGateNsRegression(t *testing.T) {
	base := docWith(8, run("pr3", "fig2-bp", "bp", 1, 1000))
	doc := docWith(8,
		run("pr4", "fig2-bp", "bp", 1, 1200), // 20% slower: over the 10% limit
		run("pr4", "fig2-bp", "bp", 8, 300),
	)
	if _, err := Gate(doc, base, DefaultGateOptions("pr4", "pr3")); err == nil {
		t.Fatal("expected ns-ratio regression failure")
	}
}

func TestGateSpeedupRegression(t *testing.T) {
	base := docWith(8, run("pr3", "fig2-bp", "bp", 1, 1000))
	doc := docWith(8,
		run("pr4", "fig2-bp", "bp", 1, 1000),
		run("pr4", "fig2-bp", "bp", 8, 900), // 1.11x < 2x
	)
	if _, err := Gate(doc, base, DefaultGateOptions("pr4", "pr3")); err == nil {
		t.Fatal("expected speedup regression failure")
	}
}

func TestGateHardwareAwareFloor(t *testing.T) {
	// On a 4-CPU host the 8-thread floor scales down to
	// min(2.0, min(8,4)/2) = 2.0; on a 2-CPU host it drops to the
	// 1.0 clamp — parity is still required, so a multi-thread run
	// slower than its own 1-thread run fails.
	base := docWith(2, run("pr3", "fig2-bp", "bp", 1, 1000))
	doc := docWith(2,
		run("pr4", "fig2-bp", "bp", 1, 1000),
		run("pr4", "fig2-bp", "bp", 8, 900), // 1.11x >= 1.0 floor
	)
	if _, err := Gate(doc, base, DefaultGateOptions("pr4", "pr3")); err != nil {
		t.Fatalf("2-cpu host should pass the clamped floor: %v", err)
	}
	doc.Runs[1].NsPerIter = 1500 // 0.67x < 1.0 floor
	if _, err := Gate(doc, base, DefaultGateOptions("pr4", "pr3")); err == nil {
		t.Fatal("expected failure below the clamped floor")
	}
}

func TestGateSpeedupSkippedOnOneCPU(t *testing.T) {
	// A 1-CPU host cannot exhibit a parallel speedup; the check is
	// skipped with a notice instead of degenerating into a sub-parity
	// floor, and the skip alone (with the ns-ratio check present) does
	// not fail the gate.
	base := docWith(1, run("pr3", "fig2-bp", "bp", 1, 1000))
	doc := docWith(1,
		run("pr4", "fig2-bp", "bp", 1, 1000),
		run("pr4", "fig2-bp", "bp", 8, 2500), // would fail any floor — ignored
	)
	report, err := Gate(doc, base, DefaultGateOptions("pr4", "pr3"))
	if err != nil {
		t.Fatalf("1-cpu host should skip the speedup check: %v\n%s", err, strings.Join(report, "\n"))
	}
	found := false
	for _, line := range report {
		if strings.Contains(line, "SKIPPED") {
			found = true
		}
	}
	if !found {
		t.Fatalf("report has no SKIPPED notice: %v", report)
	}
	// With only the (skipped) speedup check matching, the gate still
	// reports rather than erroring with "matched no runs".
	onlySpeedup := GateOptions{
		Label: "pr4", BaseLabel: "none", MaxNsRatio: 1.1,
		MinSpeedup: 2.0, SpeedupThreads: 8, SpeedupConfigs: []string{"fig2-bp"},
	}
	if _, err := Gate(doc, base, onlySpeedup); err != nil {
		t.Fatalf("skip-only gate should pass with notice: %v", err)
	}
}

func TestGateMissingRuns(t *testing.T) {
	base := docWith(8, run("pr3", "fig2-bp", "bp", 1, 1000))
	doc := docWith(8, run("pr4", "fig2-bp", "bp", 1, 1000)) // no t=8 run
	if _, err := Gate(doc, base, DefaultGateOptions("pr4", "pr3")); err == nil {
		t.Fatal("expected failure on missing speedup runs")
	}
	empty := docWith(8)
	if _, err := Gate(empty, base, GateOptions{Label: "pr4", BaseLabel: "pr3", MaxNsRatio: 1.1}); err == nil {
		t.Fatal("expected failure when no runs match at all")
	}
}

func TestRequiredSpeedup(t *testing.T) {
	cases := []struct {
		min          float64
		threads, cpu int
		want         float64
	}{
		{2.0, 8, 8, 2.0},
		{2.0, 8, 4, 2.0},
		{2.0, 8, 2, 1.0},
		// Clamp boundary: min(8,1)/2 = 0.5 would accept multi-thread
		// runs slower than 1-thread; the floor never drops below 1.0.
		{2.0, 8, 1, 1.0},
		{2.0, 2, 1, 1.0},
		{2.0, 2, 16, 1.0},
		{0.8, 8, 8, 1.0}, // even an explicit sub-parity target is clamped
	}
	for _, c := range cases {
		if got := requiredSpeedup(c.min, c.threads, c.cpu); got != c.want {
			t.Errorf("requiredSpeedup(%g,%d,%d) = %g, want %g", c.min, c.threads, c.cpu, got, c.want)
		}
	}
}

func TestDeriveEfficiency(t *testing.T) {
	d := docWith(8,
		run("pr4", "fig2-bp", "bp", 1, 1000),
		run("pr4", "fig2-bp", "bp", 4, 500),
	)
	d.Derive()
	if d.Derived == nil || len(d.Derived.StrongScaling) != 1 {
		t.Fatalf("derived scaling missing: %+v", d.Derived)
	}
	e := d.Derived.StrongScaling[0]
	if e.Speedup != 2.0 || e.Efficiency != 0.5 {
		t.Fatalf("scaling entry = %+v, want speedup 2 efficiency 0.5", e)
	}
}

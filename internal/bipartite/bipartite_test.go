package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t testing.TB, na, nb int, edges []WeightedEdge) *Graph {
	t.Helper()
	g, err := New(na, nb, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func randomBipartite(rng *rand.Rand, na, nb int, density float64) []WeightedEdge {
	var edges []WeightedEdge
	for a := 0; a < na; a++ {
		for b := 0; b < nb; b++ {
			if rng.Float64() < density {
				edges = append(edges, WeightedEdge{a, b, rng.Float64()})
			}
		}
	}
	return edges
}

func TestNewBasics(t *testing.T) {
	g := mustNew(t, 3, 2, []WeightedEdge{
		{0, 0, 1.0}, {0, 1, 2.0}, {2, 0, 3.0}, {0, 0, 0.5}, // dup keeps max
	})
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if e, ok := g.Find(0, 0); !ok || g.W[e] != 1.0 {
		t.Fatalf("dup merge kept wrong weight")
	}
	if g.DegreeA(0) != 2 || g.DegreeA(1) != 0 || g.DegreeA(2) != 1 {
		t.Fatal("DegreeA wrong")
	}
	if g.DegreeB(0) != 2 || g.DegreeB(1) != 1 {
		t.Fatal("DegreeB wrong")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(-1, 0) || g.HasEdge(0, 9) {
		t.Fatal("HasEdge wrong")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(-1, 2, nil); err == nil {
		t.Fatal("negative side accepted")
	}
	if _, err := New(2, 2, []WeightedEdge{{2, 0, 1}}); err == nil {
		t.Fatal("out-of-range A accepted")
	}
	if _, err := New(2, 2, []WeightedEdge{{0, 2, 1}}); err == nil {
		t.Fatal("out-of-range B accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustNew(t, 0, 0, nil)
	if g.NumEdges() != 0 || g.TotalWeight() != 0 {
		t.Fatal("empty graph nonzero")
	}
	g2 := mustNew(t, 4, 4, nil)
	if g2.DegreeA(2) != 0 || g2.DegreeB(3) != 0 {
		t.Fatal("edgeless graph has degrees")
	}
}

func TestRowRangeContiguity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := mustNew(t, 10, 8, randomBipartite(rng, 10, 8, 0.4))
	for a := 0; a < g.NA; a++ {
		lo, hi := g.RowRange(a)
		for e := lo; e < hi; e++ {
			if g.EdgeA[e] != a {
				t.Fatalf("row range of %d holds edge of %d", a, g.EdgeA[e])
			}
			if e > lo && g.EdgeB[e-1] >= g.EdgeB[e] {
				t.Fatalf("row %d not sorted by B", a)
			}
		}
	}
}

func TestColViewCoversAllEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := mustNew(t, 12, 9, randomBipartite(rng, 12, 9, 0.3))
	seen := make([]bool, g.NumEdges())
	for b := 0; b < g.NB; b++ {
		for _, e := range g.ColEdgesOf(b) {
			if seen[e] {
				t.Fatalf("edge %d appears twice in column view", e)
			}
			seen[e] = true
			if g.EdgeB[e] != b {
				t.Fatalf("column %d lists edge with B endpoint %d", b, g.EdgeB[e])
			}
		}
	}
	for e, s := range seen {
		if !s {
			t.Fatalf("edge %d missing from column view", e)
		}
	}
}

func TestTotalWeight(t *testing.T) {
	g := mustNew(t, 2, 2, []WeightedEdge{{0, 0, 1.5}, {1, 1, 2.5}})
	if g.TotalWeight() != 4 {
		t.Fatalf("TotalWeight = %g", g.TotalWeight())
	}
}

func TestWithWeights(t *testing.T) {
	g := mustNew(t, 2, 2, []WeightedEdge{{0, 0, 1}, {1, 1, 2}})
	h, err := g.WithWeights([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if h.W[0] != 10 || g.W[0] != 1 {
		t.Fatal("WithWeights aliased or lost weights")
	}
	if h.NumEdges() != g.NumEdges() || h.RowPtr[1] != g.RowPtr[1] {
		t.Fatal("WithWeights changed structure")
	}
	if _, err := g.WithWeights([]float64{1}); err == nil {
		t.Fatal("short weight vector accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fresh := func() *Graph {
		return mustNew(t, 5, 5, randomBipartite(rng, 5, 5, 0.6))
	}

	g := fresh()
	g.EdgeA = g.EdgeA[:len(g.EdgeA)-1]
	if g.Validate() == nil {
		t.Error("short EdgeA accepted")
	}

	g = fresh()
	g.RowPtr[g.NA] = 0
	if g.Validate() == nil {
		t.Error("bad row pointer endpoint accepted")
	}

	g = fresh()
	g.EdgeA[0] = -1
	if g.Validate() == nil {
		t.Error("out-of-range endpoint accepted")
	}

	g = fresh()
	if g.NumEdges() >= 2 {
		g.EdgeA[0], g.EdgeA[1] = g.EdgeA[1], g.EdgeA[0]
		g.EdgeB[0], g.EdgeB[1] = g.EdgeB[1], g.EdgeB[0]
		if g.Validate() == nil {
			t.Error("unsorted edges accepted")
		}
	}

	g = fresh()
	if g.NumEdges() >= 2 {
		g.ColEdges[0] = g.ColEdges[1]
		if g.Validate() == nil {
			t.Error("duplicated column-view entry accepted")
		}
	}

	g = fresh()
	// Shift a row pointer so a row claims a neighbor's edge.
	if g.NA >= 2 && g.RowPtr[1] < g.NumEdges() {
		g.RowPtr[1]++
		if g.Validate() == nil {
			t.Error("misaligned row pointer accepted")
		}
	}
}

// Property: Find agrees with a linear scan for random graphs.
func TestQuickFind(t *testing.T) {
	f := func(seed int64, naRaw, nbRaw uint8) bool {
		na := int(naRaw)%12 + 1
		nb := int(nbRaw)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		g, err := New(na, nb, randomBipartite(rng, na, nb, 0.35))
		if err != nil || g.Validate() != nil {
			return false
		}
		for a := 0; a < na; a++ {
			for b := 0; b < nb; b++ {
				want := -1
				for e := 0; e < g.NumEdges(); e++ {
					if g.EdgeA[e] == a && g.EdgeB[e] == b {
						want = e
						break
					}
				}
				got, ok := g.Find(a, b)
				if (want >= 0) != ok {
					return false
				}
				if ok && got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: degree sums on both sides equal the edge count.
func TestQuickDegreeSums(t *testing.T) {
	f := func(seed int64, naRaw, nbRaw uint8) bool {
		na := int(naRaw)%20 + 1
		nb := int(nbRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		g, err := New(na, nb, randomBipartite(rng, na, nb, 0.25))
		if err != nil {
			return false
		}
		sa, sb := 0, 0
		for a := 0; a < na; a++ {
			sa += g.DegreeA(a)
		}
		for b := 0; b < nb; b++ {
			sb += g.DegreeB(b)
		}
		return sa == g.NumEdges() && sb == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package bipartite implements the weighted bipartite candidate graph
// L = (V_A ∪ V_B, E_L, w) of the network alignment problem.
//
// Every vector the alignment iterations manipulate (w, x, y, z, d, w̄)
// is indexed by the edges of L in one fixed canonical order: row-major,
// i.e. sorted by (a, b) where a ∈ V_A and b ∈ V_B. The row view (edges
// grouped by their V_A endpoint) is therefore implicit in the edge
// arrays; the column view (grouped by V_B endpoint) is a precomputed
// permutation, mirroring how the paper's implementation uses one CSR
// edge order plus permutations instead of materializing both layouts.
package bipartite

import (
	"fmt"
	"sort"
)

// Graph is an immutable weighted bipartite graph between vertex sets
// of sizes NA and NB. Edge e connects EdgeA[e] ∈ [0,NA) with
// EdgeB[e] ∈ [0,NB) and has weight W[e]. Edges are sorted by
// (EdgeA, EdgeB), so the edges incident to a ∈ V_A are the contiguous
// range RowPtr[a]..RowPtr[a+1]. ColEdges lists edge indices grouped by
// V_B endpoint: the edges incident to b ∈ V_B are
// ColEdges[ColPtr[b]:ColPtr[b+1]], sorted by their V_A endpoint.
type Graph struct {
	NA, NB int
	EdgeA  []int
	EdgeB  []int
	W      []float64

	RowPtr   []int // length NA+1
	ColPtr   []int // length NB+1
	ColEdges []int // length NumEdges
}

// WeightedEdge is an input edge for the builder.
type WeightedEdge struct {
	A, B int
	W    float64
}

// New builds the bipartite graph from an edge list. Duplicate (a,b)
// pairs keep the maximum weight (candidate-link lists from text
// matching may repeat pairs; keeping the best score matches how the
// alignment inputs are prepared).
func New(na, nb int, edges []WeightedEdge) (*Graph, error) {
	if na < 0 || nb < 0 {
		return nil, fmt.Errorf("bipartite: negative side size %d, %d", na, nb)
	}
	for _, e := range edges {
		if e.A < 0 || e.A >= na || e.B < 0 || e.B >= nb {
			return nil, fmt.Errorf("bipartite: edge (%d,%d) out of range for sides %d,%d", e.A, e.B, na, nb)
		}
	}
	sorted := append([]WeightedEdge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	merged := sorted[:0]
	for _, e := range sorted {
		if n := len(merged); n > 0 && merged[n-1].A == e.A && merged[n-1].B == e.B {
			if e.W > merged[n-1].W {
				merged[n-1].W = e.W
			}
			continue
		}
		merged = append(merged, e)
	}

	g := &Graph{
		NA:     na,
		NB:     nb,
		EdgeA:  make([]int, len(merged)),
		EdgeB:  make([]int, len(merged)),
		W:      make([]float64, len(merged)),
		RowPtr: make([]int, na+1),
		ColPtr: make([]int, nb+1),
	}
	for e, we := range merged {
		g.EdgeA[e] = we.A
		g.EdgeB[e] = we.B
		g.W[e] = we.W
		g.RowPtr[we.A+1]++
		g.ColPtr[we.B+1]++
	}
	for a := 0; a < na; a++ {
		g.RowPtr[a+1] += g.RowPtr[a]
	}
	for b := 0; b < nb; b++ {
		g.ColPtr[b+1] += g.ColPtr[b]
	}
	g.ColEdges = make([]int, len(merged))
	next := append([]int(nil), g.ColPtr[:nb]...)
	for e := range merged {
		b := g.EdgeB[e]
		g.ColEdges[next[b]] = e
		next[b]++
	}
	return g, nil
}

// NumEdges returns |E_L|.
func (g *Graph) NumEdges() int { return len(g.W) }

// DegreeA returns the number of edges incident to a ∈ V_A.
func (g *Graph) DegreeA(a int) int { return g.RowPtr[a+1] - g.RowPtr[a] }

// DegreeB returns the number of edges incident to b ∈ V_B.
func (g *Graph) DegreeB(b int) int { return g.ColPtr[b+1] - g.ColPtr[b] }

// RowRange returns the half-open edge-index range of edges incident to
// a ∈ V_A.
func (g *Graph) RowRange(a int) (lo, hi int) { return g.RowPtr[a], g.RowPtr[a+1] }

// ColEdgesOf returns the edge indices incident to b ∈ V_B, sorted by
// their V_A endpoint. The slice aliases internal storage.
func (g *Graph) ColEdgesOf(b int) []int { return g.ColEdges[g.ColPtr[b]:g.ColPtr[b+1]] }

// Find returns the edge index of (a, b) and whether it exists, by
// binary search within a's edge range.
func (g *Graph) Find(a, b int) (int, bool) {
	lo, hi := g.RowRange(a)
	i := lo + sort.Search(hi-lo, func(i int) bool { return g.EdgeB[lo+i] >= b })
	if i < hi && g.EdgeB[i] == b {
		return i, true
	}
	return -1, false
}

// HasEdge reports whether (a, b) ∈ E_L.
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || b < 0 || a >= g.NA || b >= g.NB {
		return false
	}
	_, ok := g.Find(a, b)
	return ok
}

// Validate checks structural invariants: edge sorting, pointer
// consistency and column-view agreement with the edge arrays.
func (g *Graph) Validate() error {
	m := g.NumEdges()
	if len(g.EdgeA) != m || len(g.EdgeB) != m || len(g.ColEdges) != m {
		return fmt.Errorf("bipartite: inconsistent array lengths")
	}
	if g.RowPtr[0] != 0 || g.RowPtr[g.NA] != m || g.ColPtr[0] != 0 || g.ColPtr[g.NB] != m {
		return fmt.Errorf("bipartite: pointer endpoints wrong")
	}
	for e := 0; e < m; e++ {
		if g.EdgeA[e] < 0 || g.EdgeA[e] >= g.NA || g.EdgeB[e] < 0 || g.EdgeB[e] >= g.NB {
			return fmt.Errorf("bipartite: edge %d out of range", e)
		}
		if e > 0 {
			if g.EdgeA[e-1] > g.EdgeA[e] ||
				(g.EdgeA[e-1] == g.EdgeA[e] && g.EdgeB[e-1] >= g.EdgeB[e]) {
				return fmt.Errorf("bipartite: edges not sorted at %d", e)
			}
		}
	}
	for a := 0; a < g.NA; a++ {
		lo, hi := g.RowRange(a)
		for e := lo; e < hi; e++ {
			if g.EdgeA[e] != a {
				return fmt.Errorf("bipartite: row view of %d contains edge of %d", a, g.EdgeA[e])
			}
		}
	}
	seen := make([]bool, m)
	for b := 0; b < g.NB; b++ {
		prev := -1
		for _, e := range g.ColEdgesOf(b) {
			if e < 0 || e >= m || seen[e] {
				return fmt.Errorf("bipartite: column view repeats or exceeds edges")
			}
			seen[e] = true
			if g.EdgeB[e] != b {
				return fmt.Errorf("bipartite: column view of %d contains edge of %d", b, g.EdgeB[e])
			}
			if g.EdgeA[e] <= prev {
				return fmt.Errorf("bipartite: column view of %d not sorted by V_A endpoint", b)
			}
			prev = g.EdgeA[e]
		}
	}
	return nil
}

// TotalWeight returns Σ w_e.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, w := range g.W {
		s += w
	}
	return s
}

// WithWeights returns a graph sharing this graph's structure with a
// different weight vector (in the canonical edge order). Used to pose
// matching subproblems over L with iteration-dependent weights without
// copying the structure.
func (g *Graph) WithWeights(w []float64) (*Graph, error) {
	if len(w) != g.NumEdges() {
		return nil, fmt.Errorf("bipartite: weight vector length %d != %d edges", len(w), g.NumEdges())
	}
	h := *g
	h.W = w
	return &h, nil
}

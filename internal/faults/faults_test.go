package faults

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func countNaN(v []float64) int {
	n := 0
	for _, x := range v {
		if math.IsNaN(x) {
			n++
		}
	}
	return n
}

func TestFaultPlanDeterministic(t *testing.T) {
	strike := func() []float64 {
		p := NewPlan(7).WithNaN(NaNInjection{Step: "boundF", Iter: 2, Count: 3})
		v := make([]float64, 100)
		p.CorruptVector("boundF", 2, v)
		return v
	}
	a, b := strike(), strike()
	if countNaN(a) == 0 {
		t.Fatal("no entries corrupted")
	}
	for i := range a {
		if math.IsNaN(a[i]) != math.IsNaN(b[i]) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestFaultPlanStepAndIterFiltering(t *testing.T) {
	p := NewPlan(1).WithNaN(NaNInjection{Step: "damping", Iter: 3})
	v := make([]float64, 10)
	p.CorruptVector("boundF", 3, v)
	p.CorruptVector("damping", 2, v)
	if countNaN(v) != 0 || p.Strikes() != 0 {
		t.Fatal("injection fired on wrong step or iteration")
	}
	p.CorruptVector("damping", 3, v)
	if countNaN(v) == 0 || p.Strikes() != 1 {
		t.Fatal("injection did not fire on its target")
	}
}

func TestFaultPlanOnceVsPersistent(t *testing.T) {
	once := NewPlan(1).WithNaN(NaNInjection{Step: "s", Once: true})
	for i := 0; i < 5; i++ {
		once.CorruptVector("s", i, make([]float64, 4))
	}
	if once.Strikes() != 1 {
		t.Fatalf("Once plan struck %d times", once.Strikes())
	}
	persistent := NewPlan(1).WithNaN(NaNInjection{Step: "s"})
	for i := 0; i < 5; i++ {
		persistent.CorruptVector("s", i, make([]float64, 4))
	}
	if persistent.Strikes() != 5 {
		t.Fatalf("persistent plan struck %d times", persistent.Strikes())
	}
}

func TestFaultPlanNilAndEmptySafe(t *testing.T) {
	var p *Plan
	p.CorruptVector("s", 1, []float64{1}) // nil receiver: no-op
	q := NewPlan(1).WithNaN(NaNInjection{Step: "s"})
	q.CorruptVector("s", 1, nil) // empty vector: no-op
	if q.Strikes() != 0 {
		t.Fatal("struck an empty vector")
	}
}

func TestFaultPanicOnIndexExactlyOnce(t *testing.T) {
	var panics atomic.Int64
	body := PanicOnIndex(5, "boom", nil)
	run := func(lo, hi int) {
		defer func() {
			if recover() != nil {
				panics.Add(1)
			}
		}()
		body(lo, hi)
	}
	// The target range runs many times; only the first covering call
	// may panic.
	for i := 0; i < 10; i++ {
		run(0, 10)
	}
	run(20, 30) // never covers the target
	if panics.Load() != 1 {
		t.Fatalf("panicked %d times, want exactly 1", panics.Load())
	}
}

func TestFaultDelayOnIndex(t *testing.T) {
	var ran atomic.Int64
	body := DelayOnIndex(0, 30*time.Millisecond, func(lo, hi int) { ran.Add(1) })
	start := time.Now()
	body(0, 1)
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("target chunk was not delayed")
	}
	start = time.Now()
	body(5, 6)
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("non-target chunk was delayed")
	}
	if ran.Load() != 2 {
		t.Fatal("wrapped body skipped")
	}
}

package faults

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// I/O fault injection. Durable write paths (the job spool, the solver
// checkpoint, the result-cache disk tier) expose *named fault points*:
// each instrumented operation consults the process-wide active Plan
// (nil in production — one atomic load per file operation) and, when a
// fault is armed at its point, fails the way a sick disk would —
// a generic I/O error, ENOSPC, or a short write that delivers only a
// prefix of the payload before erroring.
//
// Points self-register at package init so chaos tests can enumerate
// every instrumented operation (Points / WritePoints) and walk the
// full failure surface without maintaining a hand-written list.

// IOKind selects how an armed I/O fault fails.
type IOKind int

const (
	// IOErr fails the operation with a generic injected I/O error
	// (the moral equivalent of EIO) before any bytes are written.
	IOErr IOKind = iota
	// IONoSpace fails the operation with an injected out-of-space
	// error (the moral equivalent of ENOSPC) before any bytes are
	// written.
	IONoSpace
	// IOShortWrite writes only the first half of the payload, then
	// fails with io.ErrShortWrite — a torn write. Only write points
	// (WriteOp) can deliver it; at plain Inject points it degrades to
	// IOErr.
	IOShortWrite
)

// String names the kind for test output.
func (k IOKind) String() string {
	switch k {
	case IOErr:
		return "eio"
	case IONoSpace:
		return "enospc"
	case IOShortWrite:
		return "short-write"
	}
	return fmt.Sprintf("IOKind(%d)", int(k))
}

// Sentinel errors delivered by armed I/O faults. They deliberately do
// not wrap syscall errnos so the package stays portable; code under
// test should treat any error from a durable write as a transient
// I/O failure, which is exactly how the job lifecycle classifies them.
var (
	// ErrIO is the injected generic I/O failure.
	ErrIO = errors.New("faults: injected I/O error")
	// ErrNoSpace is the injected no-space-left-on-device failure.
	ErrNoSpace = errors.New("faults: injected ENOSPC")
)

// ioFault is one armed fault: its kind and how many strikes remain
// (times <= 0 means it re-strikes forever — a persistently failing
// device rather than a transient glitch).
type ioFault struct {
	kind  IOKind
	times int
}

// WithIO arms an I/O fault at the named point and returns the plan
// for chaining. times is how many operations it strikes before
// disarming; times <= 0 strikes every time (persistent fault). Arming
// a point twice replaces the earlier fault.
func (p *Plan) WithIO(point string, kind IOKind, times int) *Plan {
	p.mu.Lock()
	if p.io == nil {
		p.io = make(map[string]*ioFault)
	}
	p.io[point] = &ioFault{kind: kind, times: times}
	p.mu.Unlock()
	return p
}

// fireIO consults (and decrements) the armed fault at point.
func (p *Plan) fireIO(point string) (IOKind, bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.io[point]
	if !ok {
		return 0, false
	}
	if f.times > 0 {
		f.times--
		if f.times == 0 {
			delete(p.io, point)
		}
	}
	p.strikes.Add(1)
	return f.kind, true
}

// active is the process-wide plan consulted by Inject and WriteOp.
// Production never installs one, so the hooks cost a single atomic
// load per instrumented file operation.
var active atomic.Pointer[Plan]

// SetActive installs p as the process-wide fault plan and returns a
// restore function that reinstates the previous plan. Tests must call
// the restore (typically via t.Cleanup) so plans cannot leak across
// tests; passing nil clears injection.
func SetActive(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Inject consults the active plan at a named (non-write) fault point:
// it returns the armed fault's error, or nil when nothing is armed.
// IOShortWrite armed at an Inject-only point degrades to ErrIO.
func Inject(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	kind, ok := p.fireIO(point)
	if !ok {
		return nil
	}
	if kind == IONoSpace {
		return fmt.Errorf("%s: %w", point, ErrNoSpace)
	}
	return fmt.Errorf("%s: %w", point, ErrIO)
}

// WriteOp performs w.Write(data) subject to any fault armed at the
// named write point: IOErr/IONoSpace fail before writing a byte, and
// IOShortWrite delivers only the first half of data before failing
// with io.ErrShortWrite — modelling a torn write that the durable
// paths' temp-file-plus-rename discipline must contain.
func WriteOp(point string, w io.Writer, data []byte) (int, error) {
	p := active.Load()
	if p == nil {
		return w.Write(data)
	}
	kind, ok := p.fireIO(point)
	if !ok {
		return w.Write(data)
	}
	switch kind {
	case IONoSpace:
		return 0, fmt.Errorf("%s: %w", point, ErrNoSpace)
	case IOShortWrite:
		n, err := w.Write(data[:len(data)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%s: %w", point, io.ErrShortWrite)
	default:
		return 0, fmt.Errorf("%s: %w", point, ErrIO)
	}
}

// Point registry. Instrumented packages register their points at init
// so chaos tests can walk every failure site; registration is
// idempotent and carries no runtime cost beyond the map entry.
var (
	pointsMu    sync.Mutex
	injectSites = make(map[string]struct{})
	writeSites  = make(map[string]struct{})
)

// RegisterPoint records a named Inject fault point.
func RegisterPoint(name string) {
	pointsMu.Lock()
	injectSites[name] = struct{}{}
	pointsMu.Unlock()
}

// RegisterWritePoint records a named WriteOp fault point (these
// additionally support IOShortWrite).
func RegisterWritePoint(name string) {
	pointsMu.Lock()
	writeSites[name] = struct{}{}
	pointsMu.Unlock()
}

// Points returns every registered Inject point, sorted.
func Points() []string { return sortedKeys(injectSites) }

// WritePoints returns every registered WriteOp point, sorted.
func WritePoints() []string { return sortedKeys(writeSites) }

func sortedKeys(m map[string]struct{}) []string {
	pointsMu.Lock()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	pointsMu.Unlock()
	sort.Strings(out)
	return out
}

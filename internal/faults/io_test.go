package faults

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestInjectUnarmedAndNilPlan(t *testing.T) {
	restore := SetActive(nil)
	defer restore()
	if err := Inject("nothing:armed"); err != nil {
		t.Fatalf("Inject with no active plan: %v", err)
	}
	var buf bytes.Buffer
	n, err := WriteOp("nothing:armed", &buf, []byte("hello"))
	if err != nil || n != 5 || buf.String() != "hello" {
		t.Fatalf("WriteOp with no active plan: n=%d err=%v buf=%q", n, err, buf.String())
	}
}

func TestInjectKinds(t *testing.T) {
	plan := NewPlan(1).
		WithIO("p:eio", IOErr, 1).
		WithIO("p:enospc", IONoSpace, 1).
		WithIO("p:short", IOShortWrite, 1)
	restore := SetActive(plan)
	defer restore()

	if err := Inject("p:eio"); !errors.Is(err, ErrIO) {
		t.Fatalf("eio point: %v", err)
	}
	if err := Inject("p:enospc"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("enospc point: %v", err)
	}
	// Short-write at an Inject-only point degrades to the generic
	// error rather than silently passing.
	if err := Inject("p:short"); !errors.Is(err, ErrIO) {
		t.Fatalf("short at inject point: %v", err)
	}
	// All three were one-shot: a second strike passes clean.
	for _, p := range []string{"p:eio", "p:enospc", "p:short"} {
		if err := Inject(p); err != nil {
			t.Fatalf("disarmed point %s: %v", p, err)
		}
	}
	if got := plan.Strikes(); got != 3 {
		t.Fatalf("strikes = %d, want 3", got)
	}
}

func TestWriteOpShortWrite(t *testing.T) {
	plan := NewPlan(1).WithIO("w", IOShortWrite, 1)
	restore := SetActive(plan)
	defer restore()

	payload := []byte("0123456789")
	var buf bytes.Buffer
	n, err := WriteOp("w", &buf, payload)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write error: %v", err)
	}
	if n != len(payload)/2 || buf.Len() != len(payload)/2 {
		t.Fatalf("short write delivered %d bytes (buffer %d), want %d", n, buf.Len(), len(payload)/2)
	}
	// Disarmed: the retry delivers everything.
	buf.Reset()
	if n, err := WriteOp("w", &buf, payload); err != nil || n != len(payload) {
		t.Fatalf("retry after short write: n=%d err=%v", n, err)
	}
}

func TestWriteOpPersistentFault(t *testing.T) {
	plan := NewPlan(1).WithIO("w", IONoSpace, 0) // times <= 0: forever
	restore := SetActive(plan)
	defer restore()
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if _, err := WriteOp("w", &buf, []byte("x")); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("strike %d: %v", i, err)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("persistent ENOSPC leaked %d bytes", buf.Len())
	}
}

func TestPointRegistry(t *testing.T) {
	RegisterPoint("test:inject:a")
	RegisterPoint("test:inject:a") // idempotent
	RegisterWritePoint("test:write:b")
	found := func(list []string, want string) bool {
		for _, p := range list {
			if p == want {
				return true
			}
		}
		return false
	}
	if !found(Points(), "test:inject:a") {
		t.Fatalf("Points() missing registered point: %v", Points())
	}
	if !found(WritePoints(), "test:write:b") {
		t.Fatalf("WritePoints() missing registered point: %v", WritePoints())
	}
}

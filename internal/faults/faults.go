// Package faults provides deterministic, seeded fault injection for
// the robustness tests of the alignment solvers and the parallel
// runtime. Nothing here is built behind a build tag: a fault Plan is
// plain data wired into the solvers through the core.FaultInjector
// option (nil in production runs, so the hooks cost one nil check per
// step) and into parallel-loop tests through the body wrappers below.
// All randomness comes from the plan's seed, so a failing robustness
// test replays exactly.
package faults

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCrash is the sentinel returned by Plan.Crash at an armed crash
// point. Code under test treats it as the process dying at that
// instant: the operation aborts with whatever has already reached the
// disk, and the test then exercises recovery over that state.
var ErrCrash = errors.New("faults: simulated crash")

// NaNInjection corrupts a solver vector at a named step.
type NaNInjection struct {
	// Step is the solver step name the injection targets (one of the
	// core.BPStep*/MRStep* constants).
	Step string
	// Iter, when positive, restricts the injection to that iteration;
	// zero strikes at every call for the step.
	Iter int
	// Count is how many entries to corrupt per strike (default 1).
	Count int
	// Once disarms the injection after its first strike, modelling a
	// transient soft error; a persistent (Once=false, Iter=k) fault
	// re-strikes when the solver rolls back and retries iteration k,
	// which is the "recurring numeric failure" path.
	Once bool
}

// Plan is a deterministic fault plan. The zero value injects nothing;
// use NewPlan to seed one and the With* methods to arm faults. A Plan
// is safe for concurrent use (solver steps run on many goroutines).
type Plan struct {
	mu      sync.Mutex
	rng     *rand.Rand
	nan     []NaNInjection
	crashes map[string]bool
	// io holds the armed I/O faults by point name (see io.go).
	io      map[string]*ioFault
	strikes atomic.Int64
}

// NewPlan returns an empty fault plan with the given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed))}
}

// WithNaN arms a NaN injection and returns the plan for chaining.
func (p *Plan) WithNaN(inj NaNInjection) *Plan {
	if inj.Count <= 0 {
		inj.Count = 1
	}
	p.mu.Lock()
	p.nan = append(p.nan, inj)
	p.mu.Unlock()
	return p
}

// CorruptVector implements the solver fault hook (core.FaultInjector):
// it overwrites seeded-random entries of vec with NaN when an armed
// injection matches the step and iteration. Solvers call it after
// each named step with that step's output vector.
func (p *Plan) CorruptVector(step string, iter int, vec []float64) {
	if p == nil || len(vec) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.nan[:0]
	for _, inj := range p.nan {
		if inj.Step != step || (inj.Iter > 0 && inj.Iter != iter) {
			kept = append(kept, inj)
			continue
		}
		for c := 0; c < inj.Count; c++ {
			vec[p.rng.Intn(len(vec))] = math.NaN()
		}
		p.strikes.Add(1)
		if !inj.Once {
			kept = append(kept, inj)
		}
	}
	p.nan = kept
}

// Strikes reports how many times the plan has delivered a fault.
func (p *Plan) Strikes() int { return int(p.strikes.Load()) }

// WithCrash arms a one-shot simulated crash at the named point and
// returns the plan for chaining. Point names are chosen by the code
// under test — the spool's atomic writes, for example, expose
// "before-rename:<file>" and "after-rename:<file>" so durability
// tests can kill a write on either side of its rename.
func (p *Plan) WithCrash(point string) *Plan {
	p.mu.Lock()
	if p.crashes == nil {
		p.crashes = make(map[string]bool)
	}
	p.crashes[point] = true
	p.mu.Unlock()
	return p
}

// Crash implements a crash hook: it returns ErrCrash the first time
// an armed point is reached (disarming it, so recovery code running
// afterwards is not re-struck) and nil otherwise. A nil plan never
// crashes, so production paths can call hooks unconditionally.
func (p *Plan) Crash(point string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.crashes[point] {
		return nil
	}
	delete(p.crashes, point)
	p.strikes.Add(1)
	return ErrCrash
}

// PanicOnIndex wraps a parallel-loop body so it panics with value msg
// the first time its range covers index target (exactly once across
// all workers). It drives the panic-propagation tests of
// internal/parallel deterministically: the chosen index pins which
// chunk blows up regardless of scheduling.
func PanicOnIndex(target int, msg string, body func(lo, hi int)) func(lo, hi int) {
	var fired atomic.Bool
	return func(lo, hi int) {
		if lo <= target && target < hi && fired.CompareAndSwap(false, true) {
			panic(msg)
		}
		if body != nil {
			body(lo, hi)
		}
	}
}

// DelayOnIndex wraps a parallel-loop body so the worker covering index
// target sleeps for d first — a simulated slow worker. The other
// workers are untouched, so tests can assert that cancellation and the
// loop-end barrier behave with one straggler.
func DelayOnIndex(target int, d time.Duration, body func(lo, hi int)) func(lo, hi int) {
	return func(lo, hi int) {
		if lo <= target && target < hi {
			time.Sleep(d)
		}
		if body != nil {
			body(lo, hi)
		}
	}
}

// PanicTask returns a task function (for parallel.Tasks/TasksCtx) that
// panics with value msg.
func PanicTask(msg string) func(threads int) {
	return func(int) { panic(msg) }
}

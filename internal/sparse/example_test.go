package sparse_test

import (
	"fmt"

	"netalignmc/internal/sparse"
)

// ExampleCSR_TransposePerm demonstrates the paper's transpose trick:
// a structurally symmetric matrix is transposed by permuting its value
// array, never touching the pattern.
func ExampleCSR_TransposePerm() {
	m, err := sparse.NewFromTriplets(2, 2, []sparse.Triplet{
		{Row: 0, Col: 1, Val: 5},
		{Row: 1, Col: 0, Val: 7},
	})
	if err != nil {
		panic(err)
	}
	perm, err := m.TransposePerm()
	if err != nil {
		panic(err)
	}
	transposed := make([]float64, m.NNZ())
	sparse.GatherPerm(transposed, m.Val, perm, 0, m.NNZ())
	fmt.Println(m.Val, "->", transposed)
	// Output:
	// [5 7] -> [7 5]
}

func ExampleBound() {
	fmt.Println(sparse.Bound(-3, 0, 2), sparse.Bound(1, 0, 2), sparse.Bound(9, 0, 2))
	// Output:
	// 0 1 2
}

package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func randomCSR(t *testing.T, rng *rand.Rand, n int) *CSR {
	t.Helper()
	var tr []Triplet
	for r := 0; r < n; r++ {
		d := 1 + rng.Intn(6)
		for j := 0; j < d; j++ {
			c := rng.Intn(n)
			v := rng.Float64()
			tr = append(tr, Triplet{Row: r, Col: c, Val: v}, Triplet{Row: c, Col: r, Val: v})
		}
	}
	m, err := NewFromTriplets(n, n, tr)
	if err != nil {
		t.Fatalf("NewFromTriplets: %v", err)
	}
	return m
}

func checkPermutation(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("permutation length %d, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, r := range order {
		if r < 0 || r >= n || seen[r] {
			t.Fatalf("invalid permutation entry %d", r)
		}
		seen[r] = true
	}
}

func TestDegreeOrder(t *testing.T) {
	m := randomCSR(t, rand.New(rand.NewSource(1)), 50)
	order := DegreeOrder(m.Ptr)
	checkPermutation(t, order, m.NumRows)
	prev := math.MaxInt
	for _, r := range order {
		l := m.Ptr[r+1] - m.Ptr[r]
		if l > prev {
			t.Fatalf("row lengths not non-increasing: %d after %d", l, prev)
		}
		prev = l
	}
}

func TestRCMOrder(t *testing.T) {
	m := randomCSR(t, rand.New(rand.NewSource(2)), 50)
	order := RCMOrder(m)
	checkPermutation(t, order, m.NumRows)
	// Deterministic: same input, same order.
	again := RCMOrder(m)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("RCMOrder not deterministic at %d", i)
		}
	}
}

func TestPermuteRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(t, rng, 40)
	order := DegreeOrder(m.Ptr)
	pm, nzPerm, err := PermuteRows(m, order)
	if err != nil {
		t.Fatalf("PermuteRows: %v", err)
	}
	if err := pm.Validate(); err != nil {
		t.Fatalf("permuted matrix invalid: %v", err)
	}
	if pm.NNZ() != m.NNZ() {
		t.Fatalf("nnz changed: %d -> %d", m.NNZ(), pm.NNZ())
	}
	// Every row of the view equals the original row, entries in order.
	for newR, oldR := range order {
		nlo, nhi := pm.RowRange(newR)
		olo, ohi := m.RowRange(oldR)
		if nhi-nlo != ohi-olo {
			t.Fatalf("row %d length mismatch", newR)
		}
		for i := 0; i < nhi-nlo; i++ {
			if pm.Col[nlo+i] != m.Col[olo+i] || pm.Val[nlo+i] != m.Val[olo+i] {
				t.Fatalf("row %d entry %d mismatch", newR, i)
			}
			if nzPerm[nlo+i] != olo+i {
				t.Fatalf("nzPerm[%d] = %d, want %d", nlo+i, nzPerm[nlo+i], olo+i)
			}
		}
	}
	// nzPerm is itself a permutation of the nonzero indices.
	seen := make([]bool, m.NNZ())
	for _, k := range nzPerm {
		if k < 0 || k >= m.NNZ() || seen[k] {
			t.Fatalf("nzPerm not a permutation at %d", k)
		}
		seen[k] = true
	}

	if _, _, err := PermuteRows(m, order[:len(order)-1]); err == nil {
		t.Fatal("short permutation accepted")
	}
	bad := append([]int(nil), order...)
	bad[0] = bad[1]
	if _, _, err := PermuteRows(m, bad); err == nil {
		t.Fatal("duplicate permutation accepted")
	}
}

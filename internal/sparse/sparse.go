// Package sparse implements the compressed-sparse-row matrix substrate
// used by the network-alignment iterations.
//
// The SC 2012 implementation keeps every matrix over the nonzero
// pattern of the overlap matrix S (S itself, the Lagrange multipliers
// U, the BP message matrix S^(k), the bound matrix F, and the row
// matching indicators S_L) on one fixed CSR pattern: "All non-zero
// patterns and structures remain fixed throughout iterations." Because
// S and U are structurally symmetric with the same structure, the
// paper realizes transposes by permuting the value array with a
// precomputed permutation instead of building a structural transpose;
// TransposePerm reproduces that trick. Sometimes the permutation array
// is used to pull elements from the transposed position directly with
// no intermediate write — GatherPerm supports that usage.
//
// All mutating kernels have serial semantics and are parallelized by
// the callers through internal/parallel range loops over the nonzero
// index space; the kernels in this package therefore expose [lo,hi)
// half-open nonzero ranges where profitable.
package sparse

import (
	"fmt"
	"sort"
)

// Triplet is one (row, col, value) entry used to assemble a CSR matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a sparse matrix in compressed sparse row format. Column
// indices within each row are strictly increasing. The pattern (Ptr,
// Col) is immutable after construction; Val may be mutated freely,
// which is how the alignment iterations reuse one pattern for many
// matrices.
type CSR struct {
	NumRows, NumCols int
	Ptr              []int     // length NumRows+1
	Col              []int     // length nnz
	Val              []float64 // length nnz
}

// NewFromTriplets assembles a CSR matrix, summing duplicate entries.
func NewFromTriplets(rows, cols int, entries []Triplet) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %dx%d", rows, cols)
	}
	for _, t := range entries {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	sorted := append([]Triplet(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	// Merge duplicates.
	merged := sorted[:0]
	for _, t := range sorted {
		if n := len(merged); n > 0 && merged[n-1].Row == t.Row && merged[n-1].Col == t.Col {
			merged[n-1].Val += t.Val
			continue
		}
		merged = append(merged, t)
	}
	m := &CSR{
		NumRows: rows,
		NumCols: cols,
		Ptr:     make([]int, rows+1),
		Col:     make([]int, len(merged)),
		Val:     make([]float64, len(merged)),
	}
	for _, t := range merged {
		m.Ptr[t.Row+1]++
	}
	for r := 0; r < rows; r++ {
		m.Ptr[r+1] += m.Ptr[r]
	}
	for k, t := range merged {
		m.Col[k] = t.Col
		m.Val[k] = t.Val
	}
	return m, nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Col) }

// RowRange returns the half-open nonzero index range [lo,hi) of row r.
func (m *CSR) RowRange(r int) (lo, hi int) { return m.Ptr[r], m.Ptr[r+1] }

// RowOf returns the row index owning nonzero k, by binary search on
// the row pointers. O(log rows); use only off the hot path.
func (m *CSR) RowOf(k int) int {
	return sort.Search(m.NumRows, func(r int) bool { return m.Ptr[r+1] > k })
}

// Find returns the nonzero index of entry (r, c) and whether it exists.
func (m *CSR) Find(r, c int) (int, bool) {
	lo, hi := m.RowRange(r)
	cols := m.Col[lo:hi]
	i := sort.SearchInts(cols, c)
	if i < len(cols) && cols[i] == c {
		return lo + i, true
	}
	return -1, false
}

// At returns the value of entry (r, c), zero if not stored.
func (m *CSR) At(r, c int) float64 {
	if k, ok := m.Find(r, c); ok {
		return m.Val[k]
	}
	return 0
}

// CloneValues returns a matrix sharing this matrix's pattern (Ptr and
// Col are aliased, by design) with an independent copy of the values.
func (m *CSR) CloneValues() *CSR {
	return &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		Ptr:     m.Ptr,
		Col:     m.Col,
		Val:     append([]float64(nil), m.Val...),
	}
}

// ZeroLike returns a matrix sharing this matrix's pattern with an
// all-zero value array.
func (m *CSR) ZeroLike() *CSR {
	return &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		Ptr:     m.Ptr,
		Col:     m.Col,
		Val:     make([]float64, len(m.Val)),
	}
}

// Validate checks CSR invariants: pointer monotonicity, in-range and
// strictly increasing column indices per row.
func (m *CSR) Validate() error {
	if len(m.Ptr) != m.NumRows+1 {
		return fmt.Errorf("sparse: ptr length %d != rows+1 = %d", len(m.Ptr), m.NumRows+1)
	}
	if m.Ptr[0] != 0 || m.Ptr[m.NumRows] != len(m.Col) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("sparse: inconsistent array lengths")
	}
	for r := 0; r < m.NumRows; r++ {
		if m.Ptr[r] > m.Ptr[r+1] {
			return fmt.Errorf("sparse: row pointer decreases at row %d", r)
		}
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			if m.Col[k] < 0 || m.Col[k] >= m.NumCols {
				return fmt.Errorf("sparse: column %d out of range in row %d", m.Col[k], r)
			}
			if k > m.Ptr[r] && m.Col[k-1] >= m.Col[k] {
				return fmt.Errorf("sparse: columns not strictly increasing in row %d", r)
			}
		}
	}
	return nil
}

// StructurallySymmetric reports whether the matrix is square and for
// every stored (i,j) the entry (j,i) is also stored.
func (m *CSR) StructurallySymmetric() bool {
	if m.NumRows != m.NumCols {
		return false
	}
	for r := 0; r < m.NumRows; r++ {
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			if _, ok := m.Find(m.Col[k], r); !ok {
				return false
			}
		}
	}
	return true
}

// TransposePerm computes, for a structurally symmetric matrix, the
// permutation perm with perm[k] = index of entry (j,i) when k is the
// index of entry (i,j). Permuting the value array by perm realizes the
// transpose without touching the pattern — the paper's trick: "we just
// permute the values array according to the permutation", computed
// once because the structure never changes.
func (m *CSR) TransposePerm() ([]int, error) {
	if !m.StructurallySymmetric() {
		return nil, fmt.Errorf("sparse: transpose permutation requires a structurally symmetric matrix")
	}
	perm := make([]int, m.NNZ())
	for r := 0; r < m.NumRows; r++ {
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			kt, _ := m.Find(m.Col[k], r)
			perm[k] = kt
		}
	}
	return perm, nil
}

// GatherPerm writes dst[k] = src[perm[k]] for k in [lo,hi). With perm
// from TransposePerm this reads transposed values "from appropriate
// memory locations without any intermediate write".
func GatherPerm(dst, src []float64, perm []int, lo, hi int) {
	for k := lo; k < hi; k++ {
		dst[k] = src[perm[k]]
	}
}

// RowSumsRange accumulates the row sums of rows [rlo,rhi) into dst.
// dst must have length NumRows; entries outside the range are
// untouched, so disjoint ranges may run concurrently.
func (m *CSR) RowSumsRange(dst []float64, rlo, rhi int) {
	for r := rlo; r < rhi; r++ {
		s := 0.0
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			s += m.Val[k]
		}
		dst[r] = s
	}
}

// ScaleRowsRange multiplies each row r in [rlo,rhi) by scale[r]
// (A = diag(scale)·A restricted to the row range).
func (m *CSR) ScaleRowsRange(scale []float64, rlo, rhi int) {
	for r := rlo; r < rhi; r++ {
		s := scale[r]
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			m.Val[k] *= s
		}
	}
}

// Clamp bounds every value in [lo,hi) of vals into [min,max]; it is
// the vectorized bound_{l,u} from the paper's Table I.
func Clamp(vals []float64, min, max float64, lo, hi int) {
	for k := lo; k < hi; k++ {
		v := vals[k]
		if v < min {
			vals[k] = min
		} else if v > max {
			vals[k] = max
		}
	}
}

// Bound returns bound_{l,u}(x) from the paper's Table I.
func Bound(x, l, u float64) float64 {
	if x <= l {
		return l
	}
	if x >= u {
		return u
	}
	return x
}

// MulVecRange computes dst[r] = Σ_k val[k]·x[col[k]] for rows in
// [rlo,rhi) (sparse matrix–vector product restricted to a row range).
func (m *CSR) MulVecRange(dst, x []float64, rlo, rhi int) {
	for r := rlo; r < rhi; r++ {
		s := 0.0
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		dst[r] = s
	}
}

// QuadFormRange computes Σ over nonzeros of rows [rlo,rhi) of
// x[row]·val·y[col]; summing over all rows yields xᵀ·A·y. The caller
// combines per-range partial sums.
func (m *CSR) QuadFormRange(x, y []float64, rlo, rhi int) float64 {
	s := 0.0
	for r := rlo; r < rhi; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		rowSum := 0.0
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			rowSum += m.Val[k] * y[m.Col[k]]
		}
		s += xr * rowSum
	}
	return s
}

// UpperMask returns, for a square matrix, a boolean per nonzero that
// is true when the entry lies strictly above the diagonal. Combined
// with the transpose permutation this implements the triu/tril masked
// updates of Klau's multiplier step without forming new matrices.
func (m *CSR) UpperMask() []bool {
	mask := make([]bool, m.NNZ())
	for r := 0; r < m.NumRows; r++ {
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			mask[k] = m.Col[k] > r
		}
	}
	return mask
}

// RowIndex returns, for each nonzero k, its row index. The alignment
// kernels iterate over the nonzero space [0,nnz) with dynamic
// scheduling; this array gives O(1) row lookup inside those loops.
func (m *CSR) RowIndex() []int {
	rows := make([]int, m.NNZ())
	for r := 0; r < m.NumRows; r++ {
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			rows[k] = r
		}
	}
	return rows
}

// Dense returns the dense form of the matrix; for tests and debugging
// on small instances only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.NumRows)
	for r := range d {
		d[r] = make([]float64, m.NumCols)
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			d[r][m.Col[k]] = m.Val[k]
		}
	}
	return d
}

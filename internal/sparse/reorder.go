package sparse

import (
	"fmt"
	"sort"
)

// Row reordering support for cache-locality scheduling.
//
// The alignment sweeps walk S row by row; on power-law problems the
// row-length distribution is heavily skewed (stats.Skew measures it),
// so consecutive rows in construction order can differ in length by
// orders of magnitude and long rows land arbitrarily inside a
// partition. Storing the rows in a deliberate order — longest first
// (DegreeOrder) or bandwidth-minimizing (RCMOrder) — keeps each
// worker's span of the value arrays contiguous and similar-length.
//
// A reordered matrix produced by PermuteRows is a *storage* view: row
// r of the result is row order[r] of the input, column indices stay in
// the original (canonical) numbering, and within-row order is
// preserved. Per-row arithmetic (row sums, clamps, gathers) is
// therefore bitwise identical to running on the original matrix,
// because no floating-point sum changes its association order — only
// the memory layout of rows changes.

// DegreeOrder returns a permutation of the rows of a matrix with the
// given Ptr array, longest rows first. Ties keep the original row
// order (stable), so the ordering is deterministic.
func DegreeOrder(ptr []int) []int {
	n := len(ptr) - 1
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la := ptr[order[a]+1] - ptr[order[a]]
		lb := ptr[order[b]+1] - ptr[order[b]]
		return la > lb
	})
	return order
}

// RCMOrder returns a reverse Cuthill–McKee ordering of m's pattern,
// treating column indices < NumRows as neighbors (S is structurally
// symmetric in this codebase, so this is the usual undirected RCM).
// Each connected component is seeded from its minimum-degree vertex;
// neighbors are visited in increasing-degree order. The result is a
// deterministic permutation: order[i] = original row stored at slot i.
func RCMOrder(m *CSR) []int {
	n := m.NumRows
	deg := make([]int, n)
	for r := 0; r < n; r++ {
		deg[r] = m.Ptr[r+1] - m.Ptr[r]
	}
	// Vertices sorted by degree then id: component seeds.
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	sort.SliceStable(seeds, func(a, b int) bool {
		if deg[seeds[a]] != deg[seeds[b]] {
			return deg[seeds[a]] < deg[seeds[b]]
		}
		return seeds[a] < seeds[b]
	})
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	nbr := make([]int, 0, 64)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbr = nbr[:0]
			lo, hi := m.RowRange(v)
			for k := lo; k < hi; k++ {
				c := m.Col[k]
				if c < n && !visited[c] {
					visited[c] = true
					nbr = append(nbr, c)
				}
			}
			sort.SliceStable(nbr, func(a, b int) bool {
				if deg[nbr[a]] != deg[nbr[b]] {
					return deg[nbr[a]] < deg[nbr[b]]
				}
				return nbr[a] < nbr[b]
			})
			queue = append(queue, nbr...)
		}
	}
	// Reverse (the "R" in RCM): flips the profile to the lower side.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// PermuteRows builds the row-permuted storage view of m: row r of the
// result is m's row order[r], with column indices and within-row order
// unchanged. It also returns nzPerm, the nonzero storage map with
// nzPerm[k'] = k meaning slot k' of the result holds m's nonzero k —
// exactly the gather needed to move value arrays between the two
// layouts. order must be a permutation of [0, m.NumRows).
func PermuteRows(m *CSR, order []int) (*CSR, []int, error) {
	n := m.NumRows
	if len(order) != n {
		return nil, nil, fmt.Errorf("sparse: permutation length %d != %d rows", len(order), n)
	}
	seen := make([]bool, n)
	for _, r := range order {
		if r < 0 || r >= n || seen[r] {
			return nil, nil, fmt.Errorf("sparse: invalid row permutation entry %d", r)
		}
		seen[r] = true
	}
	out := &CSR{
		NumRows: n,
		NumCols: m.NumCols,
		Ptr:     make([]int, n+1),
		Col:     make([]int, m.NNZ()),
		Val:     make([]float64, m.NNZ()),
	}
	nzPerm := make([]int, m.NNZ())
	pos := 0
	for newR, oldR := range order {
		lo, hi := m.RowRange(oldR)
		out.Ptr[newR] = pos
		for k := lo; k < hi; k++ {
			out.Col[pos] = m.Col[k]
			out.Val[pos] = m.Val[k]
			nzPerm[pos] = k
			pos++
		}
	}
	out.Ptr[n] = pos
	return out, nzPerm, nil
}

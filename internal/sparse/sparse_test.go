package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCSR(t testing.TB, rows, cols int, entries []Triplet) *CSR {
	t.Helper()
	m, err := NewFromTriplets(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func randomSymmetric(rng *rand.Rand, n int, density float64) []Triplet {
	var ts []Triplet
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				ts = append(ts, Triplet{i, j, v})
				if i != j {
					ts = append(ts, Triplet{j, i, 2 * v})
				}
			}
		}
	}
	return ts
}

func TestNewFromTripletsBasics(t *testing.T) {
	m := mustCSR(t, 3, 4, []Triplet{
		{0, 1, 2}, {0, 3, 5}, {1, 0, -1}, {2, 2, 7}, {0, 1, 3}, // duplicate (0,1)
	})
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (duplicates merged)", m.NNZ())
	}
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %g, want 5 (2+3 merged)", got)
	}
	if got := m.At(1, 0); got != -1 {
		t.Fatalf("At(1,0) = %g", got)
	}
	if got := m.At(2, 0); got != 0 {
		t.Fatalf("At(2,0) = %g, want 0", got)
	}
}

func TestNewFromTripletsErrors(t *testing.T) {
	if _, err := NewFromTriplets(-1, 2, nil); err == nil {
		t.Fatal("negative rows accepted")
	}
	if _, err := NewFromTriplets(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := NewFromTriplets(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Fatal("out-of-range col accepted")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := mustCSR(t, 0, 0, nil)
	if m.NNZ() != 0 {
		t.Fatal("empty matrix has nonzeros")
	}
	m2 := mustCSR(t, 3, 3, nil)
	sums := make([]float64, 3)
	m2.RowSumsRange(sums, 0, 3)
	for _, s := range sums {
		if s != 0 {
			t.Fatal("empty rows have nonzero sums")
		}
	}
}

func TestFindAndRowOf(t *testing.T) {
	m := mustCSR(t, 4, 4, []Triplet{{0, 0, 1}, {0, 2, 2}, {2, 1, 3}, {3, 3, 4}})
	if k, ok := m.Find(0, 2); !ok || m.Val[k] != 2 {
		t.Fatalf("Find(0,2) = %d,%v", k, ok)
	}
	if _, ok := m.Find(1, 1); ok {
		t.Fatal("Find found a missing entry")
	}
	for r := 0; r < 4; r++ {
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			if m.RowOf(k) != r {
				t.Fatalf("RowOf(%d) = %d, want %d", k, m.RowOf(k), r)
			}
		}
	}
}

func TestCloneAndZeroLikeSharePattern(t *testing.T) {
	m := mustCSR(t, 2, 2, []Triplet{{0, 1, 5}, {1, 0, 6}})
	c := m.CloneValues()
	z := m.ZeroLike()
	c.Val[0] = 99
	z.Val[1] = -1
	if m.Val[0] == 99 || m.Val[1] == -1 {
		t.Fatal("clone values alias the original")
	}
	if &m.Col[0] != &c.Col[0] || &m.Ptr[0] != &z.Ptr[0] {
		t.Fatal("pattern should be shared")
	}
}

func TestTransposePerm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := mustCSR(t, 8, 8, randomSymmetric(rng, 8, 0.4))
	perm, err := m.TransposePerm()
	if err != nil {
		t.Fatal(err)
	}
	vt := make([]float64, m.NNZ())
	GatherPerm(vt, m.Val, perm, 0, m.NNZ())
	// vt laid out on m's pattern must equal the true transpose.
	for r := 0; r < m.NumRows; r++ {
		for k := m.Ptr[r]; k < m.Ptr[r+1]; k++ {
			want := m.At(m.Col[k], r)
			if vt[k] != want {
				t.Fatalf("transposed value at (%d,%d) = %g, want %g", r, m.Col[k], vt[k], want)
			}
		}
	}
	// The permutation must be an involution for a symmetric pattern.
	for k, p := range perm {
		if perm[p] != k {
			t.Fatalf("perm not involutive at %d", k)
		}
	}
}

func TestTransposePermRejectsAsymmetric(t *testing.T) {
	m := mustCSR(t, 2, 2, []Triplet{{0, 1, 1}})
	if _, err := m.TransposePerm(); err == nil {
		t.Fatal("asymmetric pattern accepted")
	}
	rect := mustCSR(t, 2, 3, []Triplet{{0, 1, 1}})
	if _, err := rect.TransposePerm(); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
	if rect.StructurallySymmetric() {
		t.Fatal("rectangular matrix reported symmetric")
	}
}

func TestRowSumsAndScale(t *testing.T) {
	m := mustCSR(t, 3, 3, []Triplet{{0, 0, 1}, {0, 2, 2}, {1, 1, -4}, {2, 0, 10}})
	sums := make([]float64, 3)
	m.RowSumsRange(sums, 0, 3)
	want := []float64{3, -4, 10}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("row sum %d = %g, want %g", i, sums[i], want[i])
		}
	}
	m.ScaleRowsRange([]float64{2, 0, -1}, 0, 3)
	if m.At(0, 2) != 4 || m.At(1, 1) != 0 || m.At(2, 0) != -10 {
		t.Fatalf("scale wrong: %v", m.Val)
	}
}

func TestScaleRowsPartialRange(t *testing.T) {
	m := mustCSR(t, 3, 3, []Triplet{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}})
	m.ScaleRowsRange([]float64{5, 5, 5}, 1, 2)
	if m.At(0, 0) != 1 || m.At(1, 1) != 5 || m.At(2, 2) != 1 {
		t.Fatal("partial range scaled wrong rows")
	}
}

func TestClampAndBound(t *testing.T) {
	vals := []float64{-3, -0.2, 0, 0.7, 9}
	Clamp(vals, -0.5, 0.5, 0, len(vals))
	want := []float64{-0.5, -0.2, 0, 0.5, 0.5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("clamp[%d] = %g, want %g", i, vals[i], want[i])
		}
	}
	if Bound(-1, 0, 2) != 0 || Bound(3, 0, 2) != 2 || Bound(1, 0, 2) != 1 {
		t.Fatal("Bound wrong")
	}
}

func TestMulVec(t *testing.T) {
	m := mustCSR(t, 2, 3, []Triplet{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	x := []float64{1, 2, 3}
	dst := make([]float64, 2)
	m.MulVecRange(dst, x, 0, 2)
	if dst[0] != 7 || dst[1] != 6 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestQuadForm(t *testing.T) {
	m := mustCSR(t, 3, 3, []Triplet{{0, 1, 2}, {1, 0, 2}, {1, 2, 5}, {2, 1, 5}})
	x := []float64{1, 1, 0}
	got := m.QuadFormRange(x, x, 0, 3)
	if got != 4 { // 2*x0*x1 twice
		t.Fatalf("QuadForm = %g, want 4", got)
	}
	y := []float64{0, 1, 1}
	got = m.QuadFormRange(x, y, 0, 3)
	// x'Ay = x0*A01*y1 + x1*A10*y0 + x1*A12*y2 = 2+0+5
	if got != 7 {
		t.Fatalf("QuadForm(x,y) = %g, want 7", got)
	}
}

func TestUpperMaskAndRowIndex(t *testing.T) {
	m := mustCSR(t, 3, 3, []Triplet{{0, 1, 1}, {1, 0, 1}, {1, 1, 1}, {2, 0, 1}})
	mask := m.UpperMask()
	rows := m.RowIndex()
	for k := range mask {
		r, c := rows[k], m.Col[k]
		if mask[k] != (c > r) {
			t.Fatalf("mask[%d] wrong for (%d,%d)", k, r, c)
		}
	}
}

func TestDense(t *testing.T) {
	m := mustCSR(t, 2, 2, []Triplet{{0, 1, 3}, {1, 0, -2}})
	d := m.Dense()
	if d[0][0] != 0 || d[0][1] != 3 || d[1][0] != -2 || d[1][1] != 0 {
		t.Fatalf("Dense = %v", d)
	}
}

// Property: assembling random triplets and reading back through At
// agrees with a dense accumulation.
func TestQuickTripletRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%10 + 1
		cnt := int(mRaw) % 60
		rng := rand.New(rand.NewSource(seed))
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		ts := make([]Triplet, cnt)
		for i := range ts {
			r, c := rng.Intn(n), rng.Intn(n)
			v := float64(rng.Intn(9) - 4)
			ts[i] = Triplet{r, c, v}
			dense[r][c] += v
		}
		m, err := NewFromTriplets(n, n, ts)
		if err != nil || m.Validate() != nil {
			return false
		}
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if math.Abs(m.At(r, c)-dense[r][c]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: double transpose via the permutation is the identity, and
// single transpose matches the dense transpose.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 2
		rng := rand.New(rand.NewSource(seed))
		m, err := NewFromTriplets(n, n, randomSymmetric(rng, n, 0.3))
		if err != nil {
			return false
		}
		perm, err := m.TransposePerm()
		if err != nil {
			return false
		}
		once := make([]float64, m.NNZ())
		twice := make([]float64, m.NNZ())
		GatherPerm(once, m.Val, perm, 0, m.NNZ())
		GatherPerm(twice, once, perm, 0, m.NNZ())
		for k := range twice {
			if twice[k] != m.Val[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransposeGather(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewFromTriplets(400, 400, randomSymmetric(rng, 400, 0.05))
	if err != nil {
		b.Fatal(err)
	}
	perm, err := m.TransposePerm()
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, m.NNZ())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherPerm(dst, m.Val, perm, 0, m.NNZ())
	}
}

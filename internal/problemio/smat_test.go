package problemio

import (
	"bytes"
	"strings"
	"testing"

	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
)

func TestGraphSMATRoundTrip(t *testing.T) {
	o := gen.DefaultSynthetic(2, 31)
	o.N = 30
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraphSMAT(&buf, p.A); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraphSMAT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != p.A.NumVertices() || g.NumEdges() != p.A.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d", g.NumVertices(), g.NumEdges(), p.A.NumVertices(), p.A.NumEdges())
	}
	for _, e := range p.A.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("lost edge %+v", e)
		}
	}
}

func TestLSMATRoundTrip(t *testing.T) {
	o := gen.DefaultSynthetic(3, 37)
	o.N = 25
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLSMAT(&buf, p.L); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLSMAT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumEdges() != p.L.NumEdges() || l.NA != p.L.NA || l.NB != p.L.NB {
		t.Fatal("L round trip size mismatch")
	}
	for e := 0; e < l.NumEdges(); e++ {
		if l.EdgeA[e] != p.L.EdgeA[e] || l.EdgeB[e] != p.L.EdgeB[e] || l.W[e] != p.L.W[e] {
			t.Fatalf("edge %d differs", e)
		}
	}
}

func TestReadSMATProblem(t *testing.T) {
	aDoc := "2 2 2\n0 1 1\n1 0 1\n"
	bDoc := "2 2 2\n0 1 1\n1 0 1\n"
	lDoc := "2 2 4\n0 0 1\n0 1 1\n1 0 1\n1 1 1\n"
	p, err := ReadSMATProblem(strings.NewReader(aDoc), strings.NewReader(bDoc), strings.NewReader(lDoc), 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NNZS() != 4 {
		t.Fatalf("nnz(S) = %d, want 4", p.NNZS())
	}
	if p.Alpha != 1 || p.Beta != 2 {
		t.Fatal("weights wrong")
	}
}

func TestSMATComments(t *testing.T) {
	doc := "# comment\n% matlab-style comment\n2 2 1\n\n0 1 0.5\n"
	l, err := ReadLSMAT(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumEdges() != 1 || l.W[0] != 0.5 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestSMATErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"short header":  "2 2\n",
		"bad header":    "x 2 1\n0 0 1\n",
		"neg header":    "-1 2 0\n",
		"missing entry": "2 2 2\n0 0 1\n",
		"bad entry":     "2 2 1\n0 x 1\n",
		"short entry":   "2 2 1\n0 0\n",
		"range entry":   "2 2 1\n0 5 1\n",
		"trailing":      "2 2 1\n0 0 1\n1 1 1\n",
	}
	for name, doc := range cases {
		if _, err := ReadLSMAT(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ReadGraphSMAT(strings.NewReader("2 3 0\n")); err == nil {
		t.Error("non-square graph smat accepted")
	}
}

func TestReadSMATProblemPropagatesErrors(t *testing.T) {
	good := "2 2 0\n"
	bad := "x\n"
	if _, err := ReadSMATProblem(strings.NewReader(bad), strings.NewReader(good), strings.NewReader(good), 1, 1, 1); err == nil {
		t.Fatal("bad A accepted")
	}
	if _, err := ReadSMATProblem(strings.NewReader(good), strings.NewReader(bad), strings.NewReader(good), 1, 1, 1); err == nil {
		t.Fatal("bad B accepted")
	}
	if _, err := ReadSMATProblem(strings.NewReader(good), strings.NewReader(good), strings.NewReader(bad), 1, 1, 1); err == nil {
		t.Fatal("bad L accepted")
	}
}

func TestMatchingRoundTrip(t *testing.T) {
	o := gen.DefaultSynthetic(3, 41)
	o.N = 30
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	r := matching.Exact(p.L, 1)
	var buf bytes.Buffer
	if err := WriteMatching(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatching(&buf, p.L)
	if err != nil {
		t.Fatal(err)
	}
	if got.Card != r.Card || got.Weight != r.Weight {
		t.Fatalf("round trip: card %d/%d weight %g/%g", got.Card, r.Card, got.Weight, r.Weight)
	}
	for a := range r.MateA {
		if got.MateA[a] != r.MateA[a] {
			t.Fatalf("mate of %d differs", a)
		}
	}
}

func TestReadMatchingErrors(t *testing.T) {
	o := gen.DefaultSynthetic(0, 1)
	o.N = 3
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"short line":  "0\n",
		"bad int":     "0 x\n",
		"range":       "0 99\n",
		"reuse":       "0 0\n1 0\n",
		"not an edge": "0 1\n", // identity-only L lacks (0,1)
	}
	for name, doc := range cases {
		if _, err := ReadMatching(strings.NewReader(doc), p.L); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Valid: empty matching.
	if r, err := ReadMatching(strings.NewReader("# empty\n"), p.L); err != nil || r.Card != 0 {
		t.Fatalf("empty matching rejected: %v", err)
	}
}

func FuzzReadLSMAT(f *testing.F) {
	f.Add("2 2 1\n0 1 0.5\n")
	f.Add("0 0 0\n")
	f.Add("# c\n3 4 2\n0 0 1\n2 3 -1\n")
	f.Add("2 2 9999999\n")
	f.Fuzz(func(t *testing.T, doc string) {
		l, err := ReadLSMAT(strings.NewReader(doc))
		if err == nil && l != nil {
			if vErr := l.Validate(); vErr != nil {
				t.Fatalf("accepted document produced invalid graph: %v", vErr)
			}
		}
	})
}

func FuzzReadProblem(f *testing.F) {
	f.Add(validDoc)
	f.Add("netalign 1\ngraph A 1 0\ngraph B 1 0\ngraph L 1 1 0\n")
	f.Add("netalign 1\nalpha -3\n")
	f.Fuzz(func(t *testing.T, doc string) {
		p, err := Read(strings.NewReader(doc), 1)
		if err == nil && p != nil {
			if vErr := p.L.Validate(); vErr != nil {
				t.Fatalf("accepted document produced invalid L: %v", vErr)
			}
			if vErr := p.A.Validate(); vErr != nil {
				t.Fatalf("accepted document produced invalid A: %v", vErr)
			}
		}
	})
}

package problemio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"netalignmc/internal/core"
	"netalignmc/internal/faults"
)

// Fault points of the atomic checkpoint write (see internal/faults):
// the payload write supports injected EIO/ENOSPC/short-writes, the
// rename supports injected errors. Registered here so chaos tests can
// enumerate them.
func init() {
	faults.RegisterWritePoint("checkpoint:write")
	faults.RegisterPoint("checkpoint:rename")
}

// Checkpoint serialization: a line-oriented text format whose floats
// are written in Go's hexadecimal floating-point notation ('x'), which
// round-trips every finite float64 bit for bit — the property the
// resume-is-bit-identical guarantee of the solvers rests on.
//
// Format (whitespace separated, '#' starts a comment line):
//
//	netalign-checkpoint 1
//	method bp|mr
//	iter <int>
//	problem <na> <nb> <el> <nnz> <alpha> <beta>
//	guard <tighten> <failures>
//	bp <gammak>                              (bp only)
//	mr <gamma> <bestupper> <haveupper 0|1> <sinceimproved>   (mr only)
//	tracker <hasbest 0|1> <bestiter> <evaluations> <bestobjective>
//	vec <name> <len>                         followed by the values,
//	                                         eight per line
//	mates <len>                              followed by ints, sixteen
//	                                         per line (-1 = unmatched)
//	end
//
// Unknown vec names are an error (a checkpoint is versioned state, not
// a lenient config file). Non-finite values are rejected on read: the
// solvers only ever checkpoint guarded state, so a NaN in a checkpoint
// means the file is corrupt.

const checkpointVersion = "1"

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// WriteCheckpoint serializes a checkpoint.
func WriteCheckpoint(w io.Writer, c *core.Checkpoint) error {
	if c == nil {
		return fmt.Errorf("problemio: nil checkpoint")
	}
	if c.Method != "bp" && c.Method != "mr" {
		return fmt.Errorf("problemio: checkpoint method %q is not bp or mr", c.Method)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "netalign-checkpoint %s\n", checkpointVersion)
	fmt.Fprintf(bw, "method %s\n", c.Method)
	fmt.Fprintf(bw, "iter %d\n", c.Iter)
	fmt.Fprintf(bw, "problem %d %d %d %d %s %s\n", c.NA, c.NB, c.EL, c.NNZ, fmtFloat(c.Alpha), fmtFloat(c.Beta))
	fmt.Fprintf(bw, "guard %s %d\n", fmtFloat(c.Tighten), c.Failures)
	if c.Method == "bp" {
		fmt.Fprintf(bw, "bp %s\n", fmtFloat(c.GammaK))
	} else {
		have := 0
		if c.HaveUpper {
			have = 1
		}
		fmt.Fprintf(bw, "mr %s %s %d %d\n", fmtFloat(c.Gamma), fmtFloat(c.BestUpper), have, c.SinceImproved)
	}
	has := 0
	if c.HasBest {
		has = 1
	}
	fmt.Fprintf(bw, "tracker %d %d %d %s\n", has, c.BestIter, c.Evaluations, fmtFloat(c.BestObjective))
	writeVec := func(name string, v []float64) {
		fmt.Fprintf(bw, "vec %s %d\n", name, len(v))
		for i, x := range v {
			if i%8 == 7 || i == len(v)-1 {
				fmt.Fprintf(bw, "%s\n", fmtFloat(x))
			} else {
				fmt.Fprintf(bw, "%s ", fmtFloat(x))
			}
		}
	}
	if c.Method == "bp" {
		writeVec("y", c.Y)
		writeVec("z", c.Z)
		writeVec("sk", c.SK)
	} else {
		writeVec("u", c.U)
	}
	if c.HasBest {
		writeVec("bestheur", c.BestHeuristic)
		fmt.Fprintf(bw, "mates %d\n", len(c.BestMateA))
		for i, m := range c.BestMateA {
			if i%16 == 15 || i == len(c.BestMateA)-1 {
				fmt.Fprintf(bw, "%d\n", m)
			} else {
				fmt.Fprintf(bw, "%d ", m)
			}
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*core.Checkpoint, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNum := 0
	// tokens yields whitespace-separated fields across lines, so
	// vectors can be parsed value by value regardless of wrapping.
	var queue []string
	nextLine := func() ([]string, bool) {
		for sc.Scan() {
			lineNum++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return strings.Fields(s), true
		}
		return nil, false
	}
	nextTok := func() (string, error) {
		for len(queue) == 0 {
			f, ok := nextLine()
			if !ok {
				return "", fmt.Errorf("problemio: checkpoint: line %d: unexpected end of input (%v)", lineNum, sc.Err())
			}
			queue = f
		}
		t := queue[0]
		queue = queue[1:]
		return t, nil
	}
	parseInt := func(what string) (int, error) {
		t, err := nextTok()
		if err != nil {
			return 0, err
		}
		v, err := strconv.Atoi(t)
		if err != nil {
			return 0, fmt.Errorf("problemio: checkpoint: line %d: bad %s %q", lineNum, what, t)
		}
		return v, nil
	}
	parseFloat := func(what string) (float64, error) {
		t, err := nextTok()
		if err != nil {
			return 0, err
		}
		v, err := strconv.ParseFloat(t, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("problemio: checkpoint: line %d: bad %s %q", lineNum, what, t)
		}
		return v, nil
	}
	expect := func(word string) error {
		t, err := nextTok()
		if err != nil {
			return err
		}
		if t != word {
			return fmt.Errorf("problemio: checkpoint: line %d: expected %q, got %q", lineNum, word, t)
		}
		return nil
	}
	parseVec := func(name string, want int) ([]float64, error) {
		if err := expect("vec"); err != nil {
			return nil, err
		}
		if err := expect(name); err != nil {
			return nil, err
		}
		n, err := parseInt("vector length")
		if err != nil {
			return nil, err
		}
		if n < 0 || (want >= 0 && n != want) {
			return nil, fmt.Errorf("problemio: checkpoint: line %d: vec %s length %d, want %d", lineNum, name, n, want)
		}
		// Cap preallocation: a hostile length must not force a huge
		// allocation before any value has been parsed.
		prealloc := n
		if prealloc > 1<<20 {
			prealloc = 1 << 20
		}
		v := make([]float64, 0, prealloc)
		for i := 0; i < n; i++ {
			x, err := parseFloat(name + " value")
			if err != nil {
				return nil, err
			}
			v = append(v, x)
		}
		return v, nil
	}

	if err := expect("netalign-checkpoint"); err != nil {
		return nil, err
	}
	if err := expect(checkpointVersion); err != nil {
		return nil, err
	}
	c := &core.Checkpoint{}
	if err := expect("method"); err != nil {
		return nil, err
	}
	m, err := nextTok()
	if err != nil {
		return nil, err
	}
	if m != "bp" && m != "mr" {
		return nil, fmt.Errorf("problemio: checkpoint: line %d: unknown method %q", lineNum, m)
	}
	c.Method = m
	if err := expect("iter"); err != nil {
		return nil, err
	}
	if c.Iter, err = parseInt("iter"); err != nil {
		return nil, err
	}
	if c.Iter < 0 {
		return nil, fmt.Errorf("problemio: checkpoint: negative iteration %d", c.Iter)
	}
	if err := expect("problem"); err != nil {
		return nil, err
	}
	if c.NA, err = parseInt("na"); err != nil {
		return nil, err
	}
	if c.NB, err = parseInt("nb"); err != nil {
		return nil, err
	}
	if c.EL, err = parseInt("el"); err != nil {
		return nil, err
	}
	if c.NNZ, err = parseInt("nnz"); err != nil {
		return nil, err
	}
	if c.NA < 0 || c.NB < 0 || c.EL < 0 || c.NNZ < 0 {
		return nil, fmt.Errorf("problemio: checkpoint: negative problem sizes %d %d %d %d", c.NA, c.NB, c.EL, c.NNZ)
	}
	if c.Alpha, err = parseFloat("alpha"); err != nil {
		return nil, err
	}
	if c.Beta, err = parseFloat("beta"); err != nil {
		return nil, err
	}
	if err := expect("guard"); err != nil {
		return nil, err
	}
	if c.Tighten, err = parseFloat("tighten"); err != nil {
		return nil, err
	}
	if c.Failures, err = parseInt("failures"); err != nil {
		return nil, err
	}
	if c.Method == "bp" {
		if err := expect("bp"); err != nil {
			return nil, err
		}
		if c.GammaK, err = parseFloat("gammak"); err != nil {
			return nil, err
		}
	} else {
		if err := expect("mr"); err != nil {
			return nil, err
		}
		if c.Gamma, err = parseFloat("gamma"); err != nil {
			return nil, err
		}
		if c.BestUpper, err = parseFloat("bestupper"); err != nil {
			return nil, err
		}
		have, err := parseInt("haveupper")
		if err != nil {
			return nil, err
		}
		c.HaveUpper = have != 0
		if c.SinceImproved, err = parseInt("sinceimproved"); err != nil {
			return nil, err
		}
	}
	if err := expect("tracker"); err != nil {
		return nil, err
	}
	has, err := parseInt("hasbest")
	if err != nil {
		return nil, err
	}
	c.HasBest = has != 0
	if c.BestIter, err = parseInt("bestiter"); err != nil {
		return nil, err
	}
	if c.Evaluations, err = parseInt("evaluations"); err != nil {
		return nil, err
	}
	if c.BestObjective, err = parseFloat("bestobjective"); err != nil {
		return nil, err
	}
	if c.Method == "bp" {
		if c.Y, err = parseVec("y", c.EL); err != nil {
			return nil, err
		}
		if c.Z, err = parseVec("z", c.EL); err != nil {
			return nil, err
		}
		if c.SK, err = parseVec("sk", c.NNZ); err != nil {
			return nil, err
		}
	} else {
		if c.U, err = parseVec("u", c.NNZ); err != nil {
			return nil, err
		}
	}
	if c.HasBest {
		if c.BestHeuristic, err = parseVec("bestheur", c.EL); err != nil {
			return nil, err
		}
		if err := expect("mates"); err != nil {
			return nil, err
		}
		n, err := parseInt("mates length")
		if err != nil {
			return nil, err
		}
		if n != c.NA {
			return nil, fmt.Errorf("problemio: checkpoint: mates length %d, want na=%d", n, c.NA)
		}
		prealloc := n
		if prealloc > 1<<20 {
			prealloc = 1 << 20
		}
		c.BestMateA = make([]int, 0, prealloc)
		for i := 0; i < n; i++ {
			m, err := parseInt("mate")
			if err != nil {
				return nil, err
			}
			if m < -1 || m >= c.NB {
				return nil, fmt.Errorf("problemio: checkpoint: mate %d out of range [-1,%d)", m, c.NB)
			}
			c.BestMateA = append(c.BestMateA, m)
		}
	}
	if err := expect("end"); err != nil {
		return nil, err
	}
	return c, nil
}

// SyncDir fsyncs a directory, making a preceding rename inside it
// durable. Atomic write paths (checkpoint, spool, cache) must call it
// after os.Rename: the rename itself only reaches the disk when the
// parent directory's metadata does, so a crash in between can roll
// the directory back to the old entry — or leave neither — even
// though the file's own contents were synced.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteCheckpointFile writes a checkpoint atomically: to a temporary
// file in the destination directory, synced, then renamed into place
// (with a parent-directory fsync), so an interrupted run never leaves
// a truncated checkpoint behind and a completed rename survives a
// crash. The checkpoint is serialized to memory first and written
// through the "checkpoint:write" fault point, so chaos tests can tear
// the write; a failure at any step leaves the previously renamed
// checkpoint untouched and valid.
func WriteCheckpointFile(path string, c *core.Checkpoint) error {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		return err
	}
	dir, base := ".", path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		dir, base = path[:i], path[i+1:]
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("problemio: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := faults.WriteOp("checkpoint:write", tmp, buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("problemio: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("problemio: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("problemio: checkpoint close: %w", err)
	}
	if err := faults.Inject("checkpoint:rename"); err != nil {
		return fmt.Errorf("problemio: checkpoint rename: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("problemio: checkpoint rename: %w", err)
	}
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("problemio: checkpoint dir sync: %w", err)
	}
	return nil
}

// ReadCheckpointFile reads a checkpoint from a file.
func ReadCheckpointFile(path string) (*core.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("problemio: checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

package problemio

import (
	"bytes"
	"strings"
	"testing"

	"netalignmc/internal/gen"
)

func TestGraphMTXRoundTrip(t *testing.T) {
	o := gen.DefaultSynthetic(2, 51)
	o.N = 30
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraphMTX(&buf, p.A); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraphMTX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != p.A.NumVertices() || g.NumEdges() != p.A.NumEdges() {
		t.Fatalf("round trip %d/%d vs %d/%d", g.NumVertices(), g.NumEdges(), p.A.NumVertices(), p.A.NumEdges())
	}
	for _, e := range p.A.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("lost edge %+v", e)
		}
	}
}

func TestLMTXRoundTrip(t *testing.T) {
	o := gen.DefaultSynthetic(3, 53)
	o.N = 20
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLMTX(&buf, p.L); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLMTX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumEdges() != p.L.NumEdges() {
		t.Fatalf("edges %d vs %d", l.NumEdges(), p.L.NumEdges())
	}
	for e := 0; e < l.NumEdges(); e++ {
		if l.EdgeA[e] != p.L.EdgeA[e] || l.EdgeB[e] != p.L.EdgeB[e] || l.W[e] != p.L.W[e] {
			t.Fatalf("edge %d differs", e)
		}
	}
}

func TestReadMTXVariants(t *testing.T) {
	// General real.
	doc := "%%MatrixMarket matrix coordinate real general\n% comment\n2 3 2\n1 1 0.5\n2 3 1.5\n"
	l, err := ReadLMTX(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if l.NA != 2 || l.NB != 3 || l.NumEdges() != 2 || !l.HasEdge(1, 2) {
		t.Fatal("general real parsed wrong")
	}
	// Pattern symmetric graph.
	gdoc := "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n"
	g, err := ReadGraphMTX(strings.NewReader(gdoc))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("pattern symmetric parsed wrong")
	}
	// Integer field.
	idoc := "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"
	l2, err := ReadLMTX(strings.NewReader(idoc))
	if err != nil {
		t.Fatal(err)
	}
	if l2.W[0] != 7 {
		t.Fatal("integer values parsed wrong")
	}
}

func TestReadMTXErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad banner":   "%%MatrixMarket tensor coordinate real general\n1 1 0\n",
		"bad field":    "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n",
		"no size":      "%%MatrixMarket matrix coordinate real general\n",
		"bad size":     "%%MatrixMarket matrix coordinate real general\nx 1 0\n",
		"missing":      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
		"bad entry":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1\n",
		"out of range": "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"zero index":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"pattern+val":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 1\n",
	}
	for name, doc := range cases {
		if _, err := ReadLMTX(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ReadGraphMTX(strings.NewReader("%%MatrixMarket matrix coordinate real general\n2 3 0\n")); err == nil {
		t.Error("non-square graph accepted")
	}
}

func FuzzReadLMTX(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n2 1\n")
	f.Fuzz(func(t *testing.T, doc string) {
		l, err := ReadLMTX(strings.NewReader(doc))
		if err == nil && l != nil {
			if vErr := l.Validate(); vErr != nil {
				t.Fatalf("accepted document produced invalid graph: %v", vErr)
			}
		}
	})
}

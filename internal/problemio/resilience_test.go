package problemio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"netalignmc/internal/core"
)

// Malformed-input suites: every reader must turn broken input into an
// error — never a panic, never a silently wrong problem.

func TestFaultMalformedSMAT(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"garbage", "hello world\nthis is not a matrix\n"},
		{"short header", "3 3\n"},
		{"non-numeric header", "a b c\n"},
		{"negative dims", "-1 3 0\n"},
		{"negative nnz", "3 3 -2\n"},
		{"truncated entries", "3 3 2\n0 0 1\n"},
		{"short entry", "3 3 1\n0 1\n"},
		{"non-numeric entry", "3 3 1\n0 x 1\n"},
		{"row out of range", "3 3 1\n3 0 1\n"},
		{"negative index", "3 3 1\n-1 0 1\n"},
		{"nan weight", "3 3 1\n0 0 NaN\n"},
		{"inf weight", "3 3 1\n0 0 +Inf\n"},
		{"trailing content", "2 2 1\n0 0 1\n1 1 1\n"},
		{"absurd dims", "9999999999 1 1\n0 0 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadLSMAT(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadLSMAT accepted %q", tc.in)
			}
			if _, _, _, err := readSMAT(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("readSMAT accepted %q", tc.in)
			}
		})
	}
	// Square-only constraint for graphs.
	if _, err := ReadGraphSMAT(strings.NewReader("2 3 0\n")); err == nil {
		t.Fatal("rectangular graph smat accepted")
	}
}

func TestFaultMalformedMTX(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"no banner", "2 2 1\n1 1 1\n"},
		{"bad banner", "%%MatrixMarket tensor coordinate real general\n2 2 0\n"},
		{"bad field", "%%MatrixMarket matrix coordinate complex general\n2 2 0\n"},
		{"bad symmetry", "%%MatrixMarket matrix coordinate real hermitian\n2 2 0\n"},
		{"missing size", "%%MatrixMarket matrix coordinate real general\n"},
		{"bad size", "%%MatrixMarket matrix coordinate real general\n2 x 1\n"},
		{"negative size", "%%MatrixMarket matrix coordinate real general\n-2 2 0\n"},
		{"truncated entries", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n"},
		{"zero index", "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n"},
		{"out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n"},
		{"nan value", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n"},
		{"inf value", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 Inf\n"},
		{"pattern with value", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 1\n"},
		{"absurd dims", "%%MatrixMarket matrix coordinate real general\n9999999999 2 1\n1 1 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadLMTX(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadLMTX accepted %q", tc.in)
			}
		})
	}
	if _, err := ReadGraphMTX(strings.NewReader("%%MatrixMarket matrix coordinate pattern general\n2 3 0\n")); err == nil {
		t.Fatal("rectangular graph mtx accepted")
	}
}

func TestFaultMalformedNetalign(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"garbage", "what even is this\n"},
		{"missing header", "alpha 1\nbeta 1\n"},
		{"bad version", "netalign 2\n"},
		{"nan alpha", "netalign 1\nalpha NaN\n"},
		{"inf beta", "netalign 1\nbeta Inf\n"},
		{"missing graphs", "netalign 1\nalpha 1\nbeta 1\n"},
		{"truncated graph", "netalign 1\ngraph A 3 2\n0 1\n"},
		{"bad edge index", "netalign 1\ngraph A 3 1\n0 9\n"},
		{"negative edge", "netalign 1\ngraph A 3 1\n-1 0\n"},
		{"bad L weight", "netalign 1\ngraph A 1 0\ngraph B 1 0\ngraph L 1 1 1\n0 0 NaN\n"},
		{"L index out of range", "netalign 1\ngraph A 1 0\ngraph B 1 0\ngraph L 1 1 1\n0 5 1\n"},
		{"absurd graph size", "netalign 1\ngraph A 9999999999 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in), 1); err == nil {
				t.Fatalf("Read accepted %q", tc.in)
			}
		})
	}
}

// Fuzz targets: the seed corpus runs on every plain `go test`; under
// `go test -fuzz` the engine mutates it. The property is uniform:
// arbitrary bytes must produce (result, nil) or (nil, error), never a
// panic, and accepted candidate graphs must carry only finite weights.

func FuzzReadSMAT(f *testing.F) {
	f.Add("3 3 2\n0 1 1\n1 0 1\n")
	f.Add("2 2 1\n0 0 2.5\n")
	f.Add("")
	f.Add("1 1 1\n0 0 NaN\n")
	f.Add("# comment\n2 2 0\n")
	f.Add("9999999999 1 1\n0 0 1\n")
	f.Add("2 2 1\n0 0 1e308\n")
	f.Fuzz(func(t *testing.T, in string) {
		l, err := ReadLSMAT(strings.NewReader(in))
		if err == nil && l != nil {
			for _, w := range l.W {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					t.Fatalf("accepted non-finite weight %g", w)
				}
			}
		}
		_, _ = ReadGraphSMAT(strings.NewReader(in))
	})
}

func FuzzReadMTX(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 Infinity\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Fuzz(func(t *testing.T, in string) {
		l, err := ReadLMTX(strings.NewReader(in))
		if err == nil && l != nil {
			for _, w := range l.W {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					t.Fatalf("accepted non-finite weight %g", w)
				}
			}
		}
		_, _ = ReadGraphMTX(strings.NewReader(in))
	})
}

// Checkpoint round-trips: the serialized form must reproduce every
// float64 bit for bit (the hex format guarantees this) and reject
// corruption.

func bpCheckpoint() *core.Checkpoint {
	return &core.Checkpoint{
		Method: "bp", Iter: 17,
		Alpha: 0.1, Beta: 2.0 / 3.0,
		NA: 3, NB: 4, EL: 5, NNZ: 2,
		Y:      []float64{1.0 / 3.0, -2.718281828459045, 1e-300, math.MaxFloat64, 0},
		Z:      []float64{0.1, 0.2, 0.3, -0.4, math.SmallestNonzeroFloat64},
		SK:     []float64{-1e100, 3.141592653589793},
		GammaK: 0.39999999999999997, Tighten: 0.5, Failures: 2,
		HasBest: true, BestIter: 9, Evaluations: 17,
		BestObjective: 42.00000000000001,
		BestHeuristic: []float64{5, 4, 3, 2, 1},
		BestMateA:     []int{2, -1, 0},
	}
}

func mrCheckpoint() *core.Checkpoint {
	return &core.Checkpoint{
		Method: "mr", Iter: 3,
		Alpha: 1, Beta: 2,
		NA: 2, NB: 2, EL: 4, NNZ: 4,
		U:     []float64{0.25, -0.125, 1.0 / 7.0, 0},
		Gamma: 0.4, BestUpper: 17.3, HaveUpper: true, SinceImproved: 1,
		Tighten: 1, Failures: 0,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, c := range []*core.Checkpoint{bpCheckpoint(), mrCheckpoint()} {
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v\n%s", c.Method, err, buf.String())
		}
		compareCheckpoints(t, c, got)
	}
}

func compareCheckpoints(t *testing.T, want, got *core.Checkpoint) {
	t.Helper()
	if got.Method != want.Method || got.Iter != want.Iter {
		t.Fatalf("method/iter: %v/%d vs %v/%d", got.Method, got.Iter, want.Method, want.Iter)
	}
	sameF := func(name string, a, b float64) {
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s not bit-identical: %x vs %x", name, a, b)
		}
	}
	sameVec := func(name string, a, b []float64) {
		if len(a) != len(b) {
			t.Fatalf("%s length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d] not bit-identical: %x vs %x", name, i, a[i], b[i])
			}
		}
	}
	sameF("alpha", got.Alpha, want.Alpha)
	sameF("beta", got.Beta, want.Beta)
	sameF("gammak", got.GammaK, want.GammaK)
	sameF("gamma", got.Gamma, want.Gamma)
	sameF("bestupper", got.BestUpper, want.BestUpper)
	sameF("tighten", got.Tighten, want.Tighten)
	sameF("bestobjective", got.BestObjective, want.BestObjective)
	sameVec("y", got.Y, want.Y)
	sameVec("z", got.Z, want.Z)
	sameVec("sk", got.SK, want.SK)
	sameVec("u", got.U, want.U)
	sameVec("bestheur", got.BestHeuristic, want.BestHeuristic)
	if got.HaveUpper != want.HaveUpper || got.SinceImproved != want.SinceImproved ||
		got.Failures != want.Failures || got.HasBest != want.HasBest ||
		got.BestIter != want.BestIter || got.Evaluations != want.Evaluations {
		t.Fatalf("scalar state mismatch: %+v vs %+v", got, want)
	}
	if len(got.BestMateA) != len(want.BestMateA) {
		t.Fatalf("mates length %d vs %d", len(got.BestMateA), len(want.BestMateA))
	}
	for i := range want.BestMateA {
		if got.BestMateA[i] != want.BestMateA[i] {
			t.Fatalf("mate[%d] = %d, want %d", i, got.BestMateA[i], want.BestMateA[i])
		}
	}
}

func TestCheckpointFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	c := bpCheckpoint()
	if err := WriteCheckpointFile(path, c); err != nil {
		t.Fatal(err)
	}
	// Overwrite with new state; the rename must replace, not append.
	c.Iter = 18
	if err := WriteCheckpointFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 18 {
		t.Fatalf("iter = %d after rewrite", got.Iter)
	}
	// No stray temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestFaultMalformedCheckpoint(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, bpCheckpoint()); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad magic", "netalign-problem 1\n"},
		{"bad version", strings.Replace(valid, "netalign-checkpoint 1", "netalign-checkpoint 9", 1)},
		{"bad method", strings.Replace(valid, "method bp", "method lp", 1)},
		{"negative iter", strings.Replace(valid, "iter 17", "iter -1", 1)},
		{"nan scalar", strings.Replace(valid, "bp 0x1", "bp NaN0x1", 1)},
		{"truncated", valid[:len(valid)/2]},
		{"no end", strings.TrimSuffix(valid, "end\n")},
		{"mate out of range", strings.Replace(valid, "2 -1 0\n", "2 -1 99\n", 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCheckpoint(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("corrupt checkpoint accepted (%s)", tc.name)
			}
		})
	}
	// Writer-side validation.
	if err := WriteCheckpoint(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil checkpoint written")
	}
	if err := WriteCheckpoint(&bytes.Buffer{}, &core.Checkpoint{Method: "lp"}); err == nil {
		t.Fatal("unknown method written")
	}
}

func FuzzReadCheckpoint(f *testing.F) {
	var bp, mr bytes.Buffer
	_ = WriteCheckpoint(&bp, bpCheckpoint())
	_ = WriteCheckpoint(&mr, mrCheckpoint())
	f.Add(bp.String())
	f.Add(mr.String())
	f.Add("netalign-checkpoint 1\nmethod bp\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadCheckpoint(strings.NewReader(in))
		if err == nil && c != nil {
			// Anything accepted must satisfy its own structural checks.
			if c.Method != "bp" && c.Method != "mr" {
				t.Fatalf("accepted method %q", c.Method)
			}
			if len(c.Y) != c.EL && c.Method == "bp" {
				t.Fatalf("accepted bp vec length %d != el %d", len(c.Y), c.EL)
			}
		}
	})
}

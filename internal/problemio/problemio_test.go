package problemio

import (
	"bytes"
	"strings"
	"testing"

	"netalignmc/internal/gen"
)

func TestRoundTrip(t *testing.T) {
	o := gen.DefaultSynthetic(3, 42)
	o.N = 40
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Alpha != p.Alpha || q.Beta != p.Beta {
		t.Fatalf("objective weights differ: %g/%g vs %g/%g", q.Alpha, q.Beta, p.Alpha, p.Beta)
	}
	if q.A.NumEdges() != p.A.NumEdges() || q.B.NumEdges() != p.B.NumEdges() {
		t.Fatal("graph edges differ after round trip")
	}
	if q.L.NumEdges() != p.L.NumEdges() {
		t.Fatal("L edges differ after round trip")
	}
	for e := 0; e < p.L.NumEdges(); e++ {
		if q.L.EdgeA[e] != p.L.EdgeA[e] || q.L.EdgeB[e] != p.L.EdgeB[e] || q.L.W[e] != p.L.W[e] {
			t.Fatalf("L edge %d differs", e)
		}
	}
	if q.NNZS() != p.NNZS() {
		t.Fatalf("nnz(S) differs: %d vs %d", q.NNZS(), p.NNZS())
	}
}

const validDoc = `# a comment
netalign 1
alpha 1.5
beta 2

graph A 2 1
0 1
graph B 2 1
0 1
graph L 2 2 3
0 0 1.0
0 1 0.5
1 1 2.0
`

func TestReadValidDocument(t *testing.T) {
	p, err := Read(strings.NewReader(validDoc), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha != 1.5 || p.Beta != 2 {
		t.Fatalf("alpha/beta = %g/%g", p.Alpha, p.Beta)
	}
	if p.L.NumEdges() != 3 || !p.L.HasEdge(1, 1) {
		t.Fatal("L parsed wrong")
	}
	if !p.A.HasEdge(0, 1) || !p.B.HasEdge(0, 1) {
		t.Fatal("graphs parsed wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":  "alpha 1\n",
		"bad version":     "netalign 2\n",
		"bad alpha":       "netalign 1\nalpha x\n",
		"short alpha":     "netalign 1\nalpha\n",
		"unknown":         "netalign 1\nfoo bar\n",
		"unknown graph":   "netalign 1\ngraph Q 1 0\n",
		"missing L":       "netalign 1\ngraph A 1 0\ngraph B 1 0\n",
		"bad graph size":  "netalign 1\ngraph A x 0\n",
		"truncated edges": "netalign 1\ngraph A 3 2\n0 1\n",
		"edge range":      "netalign 1\ngraph A 2 1\n0 5\n",
		"bad L header":    "netalign 1\ngraph L 2 2\n",
		"bad L edge":      "netalign 1\ngraph L 2 2 1\n0 0 x\n",
		"L out of range":  "netalign 1\ngraph A 2 0\ngraph B 2 0\ngraph L 2 2 1\n0 9 1\n",
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc), 1); err == nil {
			t.Errorf("%s: accepted invalid document", name)
		}
	}
}

func TestReadDefaultsAlphaBeta(t *testing.T) {
	doc := "netalign 1\ngraph A 2 0\ngraph B 2 0\ngraph L 2 2 1\n0 0 1\n"
	p, err := Read(strings.NewReader(doc), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha != 1 || p.Beta != 1 {
		t.Fatalf("defaults %g/%g, want 1/1", p.Alpha, p.Beta)
	}
}

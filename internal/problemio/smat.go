package problemio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/core"
	"netalignmc/internal/graph"
	"netalignmc/internal/matching"
)

// The SMAT format is the sparse-matrix text format the original
// netalign release distributes its data in: a header line
// "rows cols nnz" followed by one "row col value" triple per line,
// 0-indexed. An undirected graph is an SMAT of its symmetric adjacency
// matrix; the candidate graph L is a rows=|V_A|, cols=|V_B| SMAT of
// weights.

// WriteGraphSMAT writes a graph's adjacency matrix in SMAT form (both
// symmetric entries, unit values).
func WriteGraphSMAT(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	fmt.Fprintf(bw, "%d %d %d\n", n, n, 2*g.NumEdges())
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			fmt.Fprintf(bw, "%d %d 1\n", u, v)
		}
	}
	return bw.Flush()
}

// ReadGraphSMAT reads a graph from SMAT form. The matrix must be
// square; entries are symmetrized and self loops dropped (values are
// ignored beyond being parseable).
func ReadGraphSMAT(r io.Reader) (*graph.Graph, error) {
	rows, cols, entries, err := readSMAT(r)
	if err != nil {
		return nil, err
	}
	if rows != cols {
		return nil, fmt.Errorf("problemio: graph smat must be square, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows)
	for _, t := range entries {
		if t.row != t.col {
			b.AddEdge(t.row, t.col)
		}
	}
	return b.Build(), nil
}

// WriteLSMAT writes the candidate graph L in SMAT form.
func WriteLSMAT(w io.Writer, l *bipartite.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d %d\n", l.NA, l.NB, l.NumEdges())
	for e := 0; e < l.NumEdges(); e++ {
		fmt.Fprintf(bw, "%d %d %g\n", l.EdgeA[e], l.EdgeB[e], l.W[e])
	}
	return bw.Flush()
}

// ReadLSMAT reads a candidate graph from SMAT form; duplicate entries
// keep the maximum weight.
func ReadLSMAT(r io.Reader) (*bipartite.Graph, error) {
	rows, cols, entries, err := readSMAT(r)
	if err != nil {
		return nil, err
	}
	edges := make([]bipartite.WeightedEdge, len(entries))
	for i, t := range entries {
		edges[i] = bipartite.WeightedEdge{A: t.row, B: t.col, W: t.val}
	}
	return bipartite.New(rows, cols, edges)
}

// ReadSMATProblem assembles a problem from three SMAT readers (A, B,
// L) plus objective weights, the layout of the original release's
// data files.
func ReadSMATProblem(aR, bR, lR io.Reader, alpha, beta float64, threads int) (*core.Problem, error) {
	a, err := ReadGraphSMAT(aR)
	if err != nil {
		return nil, fmt.Errorf("problemio: graph A: %w", err)
	}
	b, err := ReadGraphSMAT(bR)
	if err != nil {
		return nil, fmt.Errorf("problemio: graph B: %w", err)
	}
	l, err := ReadLSMAT(lR)
	if err != nil {
		return nil, fmt.Errorf("problemio: graph L: %w", err)
	}
	return core.NewProblem(a, b, l, alpha, beta, threads)
}

// WriteMatching writes an alignment as one "a b" pair per line
// (A-vertex, matched B-vertex), with a "# weight cardinality" comment
// header, so results can be consumed by downstream tooling.
func WriteMatching(w io.Writer, r *matching.Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# matching weight=%g cardinality=%d\n", r.Weight, r.Card)
	for a, b := range r.MateA {
		if b >= 0 {
			fmt.Fprintf(bw, "%d %d\n", a, b)
		}
	}
	return bw.Flush()
}

// ReadMatching reads pairs written by WriteMatching back into a
// Result for the given candidate graph.
func ReadMatching(rd io.Reader, l *bipartite.Graph) (*matching.Result, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	mateA := make([]int, l.NA)
	mateB := make([]int, l.NB)
	for i := range mateA {
		mateA[i] = -1
	}
	for i := range mateB {
		mateB[i] = -1
	}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		f := strings.Fields(s)
		if len(f) != 2 {
			return nil, fmt.Errorf("problemio: matching line %d: want 'a b'", line)
		}
		a, err1 := strconv.Atoi(f[0])
		b, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil || a < 0 || a >= l.NA || b < 0 || b >= l.NB {
			return nil, fmt.Errorf("problemio: matching line %d: bad pair", line)
		}
		if mateA[a] != -1 || mateB[b] != -1 {
			return nil, fmt.Errorf("problemio: matching line %d: vertex reused", line)
		}
		mateA[a] = b
		mateB[b] = a
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	res := matching.NewResult(l, mateA, mateB)
	if err := res.Validate(l); err != nil {
		return nil, fmt.Errorf("problemio: matching invalid for this L: %w", err)
	}
	return res, nil
}

// maxTextDim bounds the side sizes a text reader accepts. Vertex
// counts size O(n) allocations downstream (CSR row pointers, mate
// arrays), so a hostile few-byte header must not be able to demand
// gigabytes; 2^27 (~134M) vertices is far beyond what the text formats
// are practical for.
const maxTextDim = 1 << 27

type smatEntry struct {
	row, col int
	val      float64
}

func readSMAT(r io.Reader) (rows, cols int, entries []smatEntry, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	next := func() ([]string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") || strings.HasPrefix(s, "%") {
				continue
			}
			return strings.Fields(s), true
		}
		return nil, false
	}
	header, ok := next()
	if !ok {
		return 0, 0, nil, fmt.Errorf("problemio: smat: missing header (scan error: %v)", sc.Err())
	}
	if len(header) != 3 {
		return 0, 0, nil, fmt.Errorf("problemio: smat: header needs rows cols nnz, got %v", header)
	}
	rows, err1 := strconv.Atoi(header[0])
	cols, err2 := strconv.Atoi(header[1])
	nnz, err3 := strconv.Atoi(header[2])
	if err1 != nil || err2 != nil || err3 != nil || rows < 0 || cols < 0 || nnz < 0 {
		return 0, 0, nil, fmt.Errorf("problemio: smat: bad header %v", header)
	}
	if rows > maxTextDim || cols > maxTextDim {
		return 0, 0, nil, fmt.Errorf("problemio: smat: dimensions %dx%d exceed the text-format limit %d", rows, cols, maxTextDim)
	}
	// Cap the preallocation: a hostile header must not force a huge
	// allocation before any entry has actually been parsed.
	prealloc := nnz
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	entries = make([]smatEntry, 0, prealloc)
	for i := 0; i < nnz; i++ {
		f, ok := next()
		if !ok || len(f) != 3 {
			return 0, 0, nil, fmt.Errorf("problemio: smat: line %d: expected entry %d of %d", line, i, nnz)
		}
		rr, err1 := strconv.Atoi(f[0])
		cc, err2 := strconv.Atoi(f[1])
		vv, err3 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return 0, 0, nil, fmt.Errorf("problemio: smat: line %d: malformed entry", line)
		}
		if math.IsNaN(vv) || math.IsInf(vv, 0) {
			return 0, 0, nil, fmt.Errorf("problemio: smat: line %d: non-finite value %q", line, f[2])
		}
		if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
			return 0, 0, nil, fmt.Errorf("problemio: smat: line %d: entry (%d,%d) out of %dx%d", line, rr, cc, rows, cols)
		}
		entries = append(entries, smatEntry{rr, cc, vv})
	}
	if extra, ok := next(); ok {
		return 0, 0, nil, fmt.Errorf("problemio: smat: trailing content %v after %d entries", extra, nnz)
	}
	return rows, cols, entries, nil
}

// Package problemio reads and writes network alignment problems in a
// simple SMAT-like text format, so instances can be generated once,
// saved, and re-run by the CLI tools — mirroring how the paper's
// released code distributes its problem files.
//
// Format (whitespace separated, '#' starts a comment line):
//
//	netalign 1            header and version
//	alpha <float>
//	beta <float>
//	graph A <n> <m>       followed by m lines "u v"
//	graph B <n> <m>       followed by m lines "u v"
//	graph L <na> <nb> <m> followed by m lines "a b w"
//
// Sections may appear in any order; all three graphs are required.
package problemio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/core"
	"netalignmc/internal/graph"
)

// Write serializes a problem.
func Write(w io.Writer, p *core.Problem) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "netalign 1")
	fmt.Fprintf(bw, "alpha %g\n", p.Alpha)
	fmt.Fprintf(bw, "beta %g\n", p.Beta)
	writeGraph := func(name string, g *graph.Graph) {
		edges := g.Edges()
		fmt.Fprintf(bw, "graph %s %d %d\n", name, g.NumVertices(), len(edges))
		for _, e := range edges {
			fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
	}
	writeGraph("A", p.A)
	writeGraph("B", p.B)
	fmt.Fprintf(bw, "graph L %d %d %d\n", p.L.NA, p.L.NB, p.L.NumEdges())
	for e := 0; e < p.L.NumEdges(); e++ {
		fmt.Fprintf(bw, "%d %d %g\n", p.L.EdgeA[e], p.L.EdgeB[e], p.L.W[e])
	}
	return bw.Flush()
}

// Read parses a problem and rebuilds S (threads <= 0: GOMAXPROCS).
func Read(r io.Reader, threads int) (*core.Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var (
		alpha, beta = 1.0, 1.0
		gotHeader   bool
		a, b        *graph.Graph
		l           *bipartite.Graph
		lineNum     int
	)
	nextLine := func() ([]string, bool, error) {
		for sc.Scan() {
			lineNum++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return strings.Fields(line), true, nil
		}
		return nil, false, sc.Err()
	}
	for {
		fields, ok, err := nextLine()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch fields[0] {
		case "netalign":
			if len(fields) != 2 || fields[1] != "1" {
				return nil, fmt.Errorf("problemio: line %d: unsupported header %v", lineNum, fields)
			}
			gotHeader = true
		case "alpha", "beta":
			if len(fields) != 2 {
				return nil, fmt.Errorf("problemio: line %d: malformed %s", lineNum, fields[0])
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("problemio: line %d: bad %s %q", lineNum, fields[0], fields[1])
			}
			if fields[0] == "alpha" {
				alpha = v
			} else {
				beta = v
			}
		case "graph":
			if len(fields) < 2 {
				return nil, fmt.Errorf("problemio: line %d: malformed graph header", lineNum)
			}
			switch fields[1] {
			case "A", "B":
				if len(fields) != 4 {
					return nil, fmt.Errorf("problemio: line %d: graph %s header needs n and m", lineNum, fields[1])
				}
				n, err1 := strconv.Atoi(fields[2])
				m, err2 := strconv.Atoi(fields[3])
				if err1 != nil || err2 != nil || n < 0 || m < 0 || n > maxTextDim {
					return nil, fmt.Errorf("problemio: line %d: bad graph sizes", lineNum)
				}
				builder := graph.NewBuilder(n)
				for i := 0; i < m; i++ {
					ef, ok, err := nextLine()
					if err != nil || !ok || len(ef) != 2 {
						return nil, fmt.Errorf("problemio: line %d: expected edge %d of graph %s", lineNum, i, fields[1])
					}
					u, err1 := strconv.Atoi(ef[0])
					v, err2 := strconv.Atoi(ef[1])
					if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= n || v >= n {
						return nil, fmt.Errorf("problemio: line %d: bad edge", lineNum)
					}
					builder.AddEdge(u, v)
				}
				if fields[1] == "A" {
					a = builder.Build()
				} else {
					b = builder.Build()
				}
			case "L":
				if len(fields) != 5 {
					return nil, fmt.Errorf("problemio: line %d: graph L header needs na nb m", lineNum)
				}
				na, err1 := strconv.Atoi(fields[2])
				nb, err2 := strconv.Atoi(fields[3])
				m, err3 := strconv.Atoi(fields[4])
				if err1 != nil || err2 != nil || err3 != nil || na < 0 || nb < 0 || m < 0 || na > maxTextDim || nb > maxTextDim {
					return nil, fmt.Errorf("problemio: line %d: bad L sizes", lineNum)
				}
				prealloc := m
				if prealloc > 1<<20 {
					prealloc = 1 << 20 // do not trust huge headers before parsing
				}
				edges := make([]bipartite.WeightedEdge, 0, prealloc)
				for i := 0; i < m; i++ {
					ef, ok, err := nextLine()
					if err != nil || !ok || len(ef) != 3 {
						return nil, fmt.Errorf("problemio: line %d: expected L edge %d", lineNum, i)
					}
					va, err1 := strconv.Atoi(ef[0])
					vb, err2 := strconv.Atoi(ef[1])
					w, err3 := strconv.ParseFloat(ef[2], 64)
					if err1 != nil || err2 != nil || err3 != nil || math.IsNaN(w) || math.IsInf(w, 0) {
						return nil, fmt.Errorf("problemio: line %d: bad L edge", lineNum)
					}
					edges = append(edges, bipartite.WeightedEdge{A: va, B: vb, W: w})
				}
				var err error
				l, err = bipartite.New(na, nb, edges)
				if err != nil {
					return nil, fmt.Errorf("problemio: line %d: %v", lineNum, err)
				}
			default:
				return nil, fmt.Errorf("problemio: line %d: unknown graph %q", lineNum, fields[1])
			}
		default:
			return nil, fmt.Errorf("problemio: line %d: unknown directive %q", lineNum, fields[0])
		}
	}
	if !gotHeader {
		return nil, fmt.Errorf("problemio: missing 'netalign 1' header")
	}
	if a == nil || b == nil || l == nil {
		return nil, fmt.Errorf("problemio: missing graph sections (A:%v B:%v L:%v)", a != nil, b != nil, l != nil)
	}
	return core.NewProblem(a, b, l, alpha, beta, threads)
}

package problemio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/graph"
)

// Matrix Market coordinate format support (the other lingua franca of
// sparse data alongside SMAT): 1-indexed "row col value" entries after
// a "%%MatrixMarket matrix coordinate real general|symmetric" banner
// and a "rows cols nnz" size line. Graphs are symmetric patterns;
// candidate graphs are general real matrices.

// WriteGraphMTX writes a graph as a symmetric Matrix Market pattern
// (lower triangle stored once, as the format prescribes).
func WriteGraphMTX(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern symmetric")
	edges := g.Edges()
	fmt.Fprintf(bw, "%d %d %d\n", g.NumVertices(), g.NumVertices(), len(edges))
	for _, e := range edges {
		// Symmetric MM stores entries on or below the diagonal.
		fmt.Fprintf(bw, "%d %d\n", e.V+1, e.U+1)
	}
	return bw.Flush()
}

// ReadGraphMTX reads a graph from a symmetric (or general, which is
// symmetrized) Matrix Market file; values, if present, are ignored.
func ReadGraphMTX(r io.Reader) (*graph.Graph, error) {
	rows, cols, entries, pattern, err := readMTX(r)
	if err != nil {
		return nil, err
	}
	_ = pattern
	if rows != cols {
		return nil, fmt.Errorf("problemio: mtx graph must be square, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows)
	for _, t := range entries {
		if t.row != t.col {
			b.AddEdge(t.row, t.col)
		}
	}
	return b.Build(), nil
}

// WriteLMTX writes the candidate graph L as a general real Matrix
// Market matrix.
func WriteLMTX(w io.Writer, l *bipartite.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", l.NA, l.NB, l.NumEdges())
	for e := 0; e < l.NumEdges(); e++ {
		fmt.Fprintf(bw, "%d %d %g\n", l.EdgeA[e]+1, l.EdgeB[e]+1, l.W[e])
	}
	return bw.Flush()
}

// ReadLMTX reads a candidate graph from a general real Matrix Market
// matrix; pattern matrices get unit weights.
func ReadLMTX(r io.Reader) (*bipartite.Graph, error) {
	rows, cols, entries, _, err := readMTX(r)
	if err != nil {
		return nil, err
	}
	edges := make([]bipartite.WeightedEdge, len(entries))
	for i, t := range entries {
		edges[i] = bipartite.WeightedEdge{A: t.row, B: t.col, W: t.val}
	}
	return bipartite.New(rows, cols, edges)
}

// readMTX parses the coordinate format; symmetric inputs are expanded
// to both triangles. Returned indices are 0-based.
func readMTX(r io.Reader) (rows, cols int, entries []smatEntry, pattern bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return 0, 0, nil, false, fmt.Errorf("problemio: mtx: empty input (%v)", sc.Err())
	}
	banner := strings.Fields(strings.ToLower(strings.TrimSpace(sc.Text())))
	if len(banner) < 4 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" || banner[2] != "coordinate" {
		return 0, 0, nil, false, fmt.Errorf("problemio: mtx: unsupported banner %q", sc.Text())
	}
	field := banner[3] // real | integer | pattern
	pattern = field == "pattern"
	if field != "real" && field != "integer" && field != "pattern" {
		return 0, 0, nil, false, fmt.Errorf("problemio: mtx: unsupported field %q", field)
	}
	symmetric := false
	if len(banner) >= 5 {
		switch banner[4] {
		case "general":
		case "symmetric":
			symmetric = true
		default:
			return 0, 0, nil, false, fmt.Errorf("problemio: mtx: unsupported symmetry %q", banner[4])
		}
	}
	line := 1
	next := func() ([]string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "%") {
				continue
			}
			return strings.Fields(s), true
		}
		return nil, false
	}
	size, ok := next()
	if !ok || len(size) != 3 {
		return 0, 0, nil, false, fmt.Errorf("problemio: mtx: missing size line")
	}
	var nnz int
	var e1, e2, e3 error
	rows, e1 = strconv.Atoi(size[0])
	cols, e2 = strconv.Atoi(size[1])
	nnz, e3 = strconv.Atoi(size[2])
	if e1 != nil || e2 != nil || e3 != nil || rows < 0 || cols < 0 || nnz < 0 {
		return 0, 0, nil, false, fmt.Errorf("problemio: mtx: bad size line %v", size)
	}
	if rows > maxTextDim || cols > maxTextDim {
		return 0, 0, nil, false, fmt.Errorf("problemio: mtx: dimensions %dx%d exceed the text-format limit %d", rows, cols, maxTextDim)
	}
	prealloc := nnz
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	entries = make([]smatEntry, 0, prealloc)
	for i := 0; i < nnz; i++ {
		f, ok := next()
		if !ok {
			return 0, 0, nil, false, fmt.Errorf("problemio: mtx: line %d: expected entry %d of %d", line, i, nnz)
		}
		wantFields := 3
		if pattern {
			wantFields = 2
		}
		if len(f) != wantFields {
			return 0, 0, nil, false, fmt.Errorf("problemio: mtx: line %d: want %d fields", line, wantFields)
		}
		rr, e1 := strconv.Atoi(f[0])
		cc, e2 := strconv.Atoi(f[1])
		val := 1.0
		var e3 error
		if !pattern {
			val, e3 = strconv.ParseFloat(f[2], 64)
		}
		if e1 != nil || e2 != nil || e3 != nil {
			return 0, 0, nil, false, fmt.Errorf("problemio: mtx: line %d: malformed entry", line)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return 0, 0, nil, false, fmt.Errorf("problemio: mtx: line %d: non-finite value %q", line, f[2])
		}
		rr--
		cc--
		if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
			return 0, 0, nil, false, fmt.Errorf("problemio: mtx: line %d: entry (%d,%d) out of %dx%d", line, rr+1, cc+1, rows, cols)
		}
		entries = append(entries, smatEntry{rr, cc, val})
		if symmetric && rr != cc {
			entries = append(entries, smatEntry{cc, rr, val})
		}
	}
	return rows, cols, entries, pattern, nil
}

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimpleLP(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x ≤ 2 → x=2, y=2, value 10.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Cols: []int{0, 1}, Vals: []float64{1, 1}, B: 4},
			{Cols: []int{0}, Vals: []float64{1}, B: 2},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Value-10) > 1e-9 || math.Abs(s.X[0]-2) > 1e-9 || math.Abs(s.X[1]-2) > 1e-9 {
		t.Fatalf("solution %v value %g", s.X, s.Value)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Cols: []int{1}, Vals: []float64{1}, B: 5}, // x unconstrained above
		},
	}
	s := solve(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestZeroObjective(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{0},
		Constraints: []Constraint{
			{Cols: []int{0}, Vals: []float64{1}, B: 3},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal || s.Value != 0 {
		t.Fatalf("status %v value %g", s.Status, s.Value)
	}
}

func TestNegativeCoefficientsInConstraints(t *testing.T) {
	// max x s.t. x - y ≤ 1, y ≤ 2 → x = 3.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Cols: []int{0, 1}, Vals: []float64{1, -1}, B: 1},
			{Cols: []int{1}, Vals: []float64{1}, B: 2},
		},
	}
	s := solve(t, p)
	if s.Status != Optimal || math.Abs(s.Value-3) > 1e-9 {
		t.Fatalf("value %g status %v", s.Value, s.Status)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 2, Objective: []float64{1}}, 0); err == nil {
		t.Fatal("short objective accepted")
	}
	if _, err := Solve(&Problem{NumVars: 1, Objective: []float64{1},
		Constraints: []Constraint{{Cols: []int{0}, Vals: []float64{1}, B: -1}}}, 0); err == nil {
		t.Fatal("negative rhs accepted")
	}
	if _, err := Solve(&Problem{NumVars: 1, Objective: []float64{1},
		Constraints: []Constraint{{Cols: []int{5}, Vals: []float64{1}, B: 1}}}, 0); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := Solve(&Problem{NumVars: 1, Objective: []float64{1},
		Constraints: []Constraint{{Cols: []int{0, 0}, Vals: []float64{1}, B: 1}}}, 0); err == nil {
		t.Fatal("cols/vals mismatch accepted")
	}
}

func TestDuplicateColumnEntriesSum(t *testing.T) {
	// A constraint listing the same column twice sums: 2x ≤ 4 → x ≤ 2.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Cols: []int{0, 0}, Vals: []float64{1, 1}, B: 4},
		},
	}
	s := solve(t, p)
	if math.Abs(s.Value-2) > 1e-9 {
		t.Fatalf("value %g, want 2", s.Value)
	}
}

// bruteBoxLP evaluates a tiny LP by grid search over the feasible box
// (coarse lower bound on the optimum for validation).
func bruteBoxLP(p *Problem, grid int) float64 {
	// Find per-variable upper bounds from singleton constraints; use 5
	// as a default cap for the random instances generated below.
	ub := make([]float64, p.NumVars)
	for i := range ub {
		ub[i] = 5
	}
	best := math.Inf(-1)
	var rec func(i int, x []float64)
	rec = func(i int, x []float64) {
		if i == p.NumVars {
			for _, c := range p.Constraints {
				lhs := 0.0
				for k, j := range c.Cols {
					lhs += c.Vals[k] * x[j]
				}
				if lhs > c.B+1e-9 {
					return
				}
			}
			v := 0.0
			for j, cj := range p.Objective {
				v += cj * x[j]
			}
			if v > best {
				best = v
			}
			return
		}
		for g := 0; g <= grid; g++ {
			x[i] = ub[i] * float64(g) / float64(grid)
			rec(i+1, x)
		}
	}
	rec(0, make([]float64, p.NumVars))
	return best
}

// Property: the simplex optimum dominates any feasible point found by
// grid search, and the returned X is feasible.
func TestQuickSimplexDominatesGrid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 1
		m := rng.Intn(4) + 1
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 1
		}
		// Box constraints keep it bounded, plus random extra rows.
		for j := 0; j < n; j++ {
			p.Constraints = append(p.Constraints, Constraint{Cols: []int{j}, Vals: []float64{1}, B: 5})
		}
		for i := 0; i < m; i++ {
			cols := []int{rng.Intn(n)}
			vals := []float64{rng.Float64()*2 + 0.1}
			p.Constraints = append(p.Constraints, Constraint{Cols: cols, Vals: vals, B: rng.Float64()*8 + 0.5})
		}
		s, err := Solve(p, 0)
		if err != nil || s.Status != Optimal {
			return false
		}
		// Feasibility of the returned point.
		for _, c := range p.Constraints {
			lhs := 0.0
			for k, j := range c.Cols {
				lhs += c.Vals[k] * s.X[j]
			}
			if lhs > c.B+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return s.Value >= bruteBoxLP(p, 6)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Unbounded.String() != "unbounded" || IterationLimit.String() != "iteration-limit" {
		t.Fatal("status names wrong")
	}
}

// Package lp provides a dense tableau simplex solver for linear
// programs in the inequality standard form
//
//	maximize    cᵀx
//	subject to  Ax ≤ b,  x ≥ 0,  b ≥ 0,
//
// which is exactly the shape of the network-alignment LP relaxation
// (Section III of the paper: relax the integrality constraint of the
// MILP; "solving the resulting linear program will compute a
// real-valued score for each edge"). Because b ≥ 0 the slack basis is
// feasible, so no phase-1 is needed. Bland's rule guards against
// cycling; the solver is meant for the small instances the LP
// baseline is evaluated on, not for production-scale LPs.
package lp

import (
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Unbounded means the objective is unbounded above.
	Unbounded
	// IterationLimit means the solver stopped before convergence.
	IterationLimit
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	default:
		return "iteration-limit"
	}
}

// Constraint is one row aᵀx ≤ b given sparsely.
type Constraint struct {
	Cols []int
	Vals []float64
	B    float64
}

// Problem is an LP in inequality standard form.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars
	Constraints []Constraint
}

// Solution holds the primal solution and objective value.
type Solution struct {
	X      []float64
	Value  float64
	Status Status
	// Iterations is the number of simplex pivots performed.
	Iterations int
}

const eps = 1e-9

// Solve runs the primal simplex method. maxIters <= 0 selects a
// default proportional to the problem size.
func Solve(p *Problem, maxIters int) (*Solution, error) {
	n := p.NumVars
	m := len(p.Constraints)
	if len(p.Objective) != n {
		return nil, fmt.Errorf("lp: objective length %d != %d vars", len(p.Objective), n)
	}
	for i, c := range p.Constraints {
		if len(c.Cols) != len(c.Vals) {
			return nil, fmt.Errorf("lp: constraint %d has %d cols, %d vals", i, len(c.Cols), len(c.Vals))
		}
		if c.B < 0 {
			return nil, fmt.Errorf("lp: constraint %d has negative rhs %g (standard form requires b ≥ 0)", i, c.B)
		}
		for _, j := range c.Cols {
			if j < 0 || j >= n {
				return nil, fmt.Errorf("lp: constraint %d references variable %d of %d", i, j, n)
			}
		}
	}
	if maxIters <= 0 {
		maxIters = 50 * (n + m + 10)
	}

	// Tableau: m rows × (n + m + 1) columns (structural vars, slacks,
	// rhs), plus the objective row.
	width := n + m + 1
	tab := make([][]float64, m+1)
	for i := range tab {
		tab[i] = make([]float64, width)
	}
	for i, c := range p.Constraints {
		for k, j := range c.Cols {
			tab[i][j] += c.Vals[k]
		}
		tab[i][n+i] = 1
		tab[i][width-1] = c.B
	}
	// Objective row holds -c so that optimality is "no negative
	// reduced costs".
	for j := 0; j < n; j++ {
		tab[m][j] = -p.Objective[j]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	sol := &Solution{X: make([]float64, n)}
	for iter := 0; ; iter++ {
		if iter >= maxIters {
			sol.Status = IterationLimit
			break
		}
		// Entering variable: most negative reduced cost (Dantzig),
		// falling back to Bland's rule when progress stalls to prevent
		// cycling on degenerate vertices.
		pivotCol := -1
		useBland := iter > maxIters/2
		best := -eps
		for j := 0; j < n+m; j++ {
			rc := tab[m][j]
			if rc < -eps {
				if useBland {
					pivotCol = j
					break
				}
				if rc < best {
					best = rc
					pivotCol = j
				}
			}
		}
		if pivotCol == -1 {
			sol.Status = Optimal
			break
		}
		// Ratio test.
		pivotRow := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][pivotCol]
			if a > eps {
				ratio := tab[i][width-1] / a
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && pivotRow >= 0 && basis[i] < basis[pivotRow]) {
					bestRatio = ratio
					pivotRow = i
				}
			}
		}
		if pivotRow == -1 {
			sol.Status = Unbounded
			break
		}
		pivot(tab, pivotRow, pivotCol)
		basis[pivotRow] = pivotCol
		sol.Iterations++
	}

	for i, b := range basis {
		if b < n {
			sol.X[b] = tab[i][width-1]
		}
	}
	val := 0.0
	for j := 0; j < n; j++ {
		val += p.Objective[j] * sol.X[j]
	}
	sol.Value = val
	return sol, nil
}

// pivot performs a Gauss–Jordan pivot on tab[r][c].
func pivot(tab [][]float64, r, c int) {
	width := len(tab[r])
	inv := 1 / tab[r][c]
	for j := 0; j < width; j++ {
		tab[r][j] *= inv
	}
	tab[r][c] = 1
	for i := range tab {
		if i == r {
			continue
		}
		factor := tab[i][c]
		if factor == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= factor * tab[r][j]
		}
		tab[i][c] = 0
	}
}

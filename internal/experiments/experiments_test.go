package experiments

import (
	"strings"
	"testing"
	"time"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
)

// quickConfig keeps experiment tests fast: tiny stand-ins, few
// iterations, two thread counts.
func quickConfig() Config {
	return Config{Scale: 0.01, Seed: 7, Iterations: 5, Threads: []int{1, 2}}
}

func TestTable2(t *testing.T) {
	res, err := Table2(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 || len(res.Paper) != 4 {
		t.Fatalf("rows %d/%d", len(res.Stats), len(res.Paper))
	}
	names := map[string]bool{}
	for _, s := range res.Stats {
		names[s.Name] = true
		if s.VA < 2 || s.EL == 0 {
			t.Fatalf("degenerate stand-in %+v", s)
		}
	}
	for _, want := range []string{"dmela-scere", "homo-musm", "lcsh-wiki", "lcsh-rameau"} {
		if !names[want] {
			t.Fatalf("missing problem %s", want)
		}
	}
	if !strings.Contains(res.Report, "lcsh-rameau") {
		t.Fatal("report missing rows")
	}
	// Paper columns must carry the published sizes verbatim.
	if res.Paper[2].EL != 4971629 {
		t.Fatalf("paper lcsh-wiki |E_L| = %d", res.Paper[2].EL)
	}
}

func TestFig2(t *testing.T) {
	res, err := Fig2(quickConfig(), []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2*len(Fig2Methods) {
		t.Fatalf("points = %d", len(res.Points))
	}
	seen := map[string]int{}
	for _, pt := range res.Points {
		seen[pt.Method]++
		if pt.ObjFraction < 0 || pt.CorrectMatch < 0 || pt.CorrectMatch > 1 {
			t.Fatalf("out-of-range point %+v", pt)
		}
	}
	for _, m := range Fig2Methods {
		if seen[m] != 2 {
			t.Fatalf("method %s measured %d times", m, seen[m])
		}
	}
	if !strings.Contains(res.Report, "Panel 2") {
		t.Fatal("report missing panel")
	}
}

func TestFig2QualityOrdering(t *testing.T) {
	// The headline claim at easy noise levels: every method should be
	// close to the identity objective, and BP-approx must track
	// BP-exact closely (paper: "indistinguishable").
	c := quickConfig()
	c.Iterations = 12
	res, err := Fig2(c, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]Fig2Point{}
	for _, pt := range res.Points {
		byMethod[pt.Method] = pt
	}
	be, ba := byMethod["BP-exact"], byMethod["BP-approx"]
	if diff := be.ObjFraction - ba.ObjFraction; diff > 0.15 || diff < -0.15 {
		t.Fatalf("BP exact %.3f vs approx %.3f differ too much", be.ObjFraction, ba.ObjFraction)
	}
	if be.ObjFraction < 0.8 {
		t.Fatalf("BP-exact only reached %.3f of identity objective at dbar=2", be.ObjFraction)
	}
}

func TestFig3(t *testing.T) {
	res, err := Fig3(quickConfig(), "dmela-scere")
	if err != nil {
		t.Fatal(err)
	}
	// 4 alpha/beta × 2 gamma × 2 rounding × 2 methods = 32 points.
	if len(res.Points) != 32 {
		t.Fatalf("points = %d, want 32", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Weight < 0 || pt.Overlap < 0 {
			t.Fatalf("negative point %+v", pt)
		}
	}
	if _, err := Fig3(quickConfig(), "no-such-problem"); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestScaling(t *testing.T) {
	c := quickConfig()
	c.Iterations = 3
	res, err := Scaling(c, "dmela-scere", []string{"MR", "BP-batch1"}, []string{"dynamic"})
	if err != nil {
		t.Fatal(err)
	}
	// 2 methods × 1 schedule × 2 thread counts.
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Elapsed <= 0 {
			t.Fatalf("non-positive time %+v", pt)
		}
		if pt.Threads == 1 && (pt.Speedup < 0.5 || pt.Speedup > 2.0) {
			t.Fatalf("1-thread speedup %.2f not ≈ 1", pt.Speedup)
		}
	}
	if !strings.Contains(res.Report, "speedup") {
		t.Fatal("report missing speedups")
	}
}

func TestScalingAllMethodsListed(t *testing.T) {
	ms := scalingMethods()
	want := []string{"MR", "BP-batch1", "BP-batch10", "BP-batch20"}
	if len(ms) != len(want) {
		t.Fatalf("methods = %d", len(ms))
	}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Fatalf("method %d = %s, want %s", i, m.Name, want[i])
		}
	}
}

func TestStepScalingMR(t *testing.T) {
	c := quickConfig()
	c.Iterations = 3
	res, err := StepScaling(c, "dmela-scere", "MR")
	if err != nil {
		t.Fatal(err)
	}
	steps := map[string]bool{}
	for _, pt := range res.Points {
		steps[pt.Step] = true
		if pt.Fraction < 0 || pt.Fraction > 1 {
			t.Fatalf("fraction %g", pt.Fraction)
		}
	}
	for _, s := range []string{"rowmatch", "daxpy", "match", "objective", "updateU"} {
		if !steps[s] {
			t.Fatalf("missing MR step %s", s)
		}
	}
}

func TestStepDominanceClaims(t *testing.T) {
	// The paper's Figures 6-7 identify the dominant steps: for MR, row
	// match + matching carry most of the runtime; for BP, matching
	// dominates with othermax second among the compute steps. Assert
	// those orderings at small scale.
	c := Config{Scale: 0.01, Seed: 7, Iterations: 6, Threads: []int{1}}
	mr, err := StepScaling(c, "lcsh-wiki", "MR")
	if err != nil {
		t.Fatal(err)
	}
	frac := map[string]float64{}
	for _, pt := range mr.Points {
		frac[pt.Step] = pt.Fraction
	}
	if frac["rowmatch"]+frac["match"] < 0.5 {
		t.Fatalf("MR rowmatch+match only %.0f%% of runtime", 100*(frac["rowmatch"]+frac["match"]))
	}
	bp, err := StepScaling(c, "lcsh-wiki", "BP-batch20")
	if err != nil {
		t.Fatal(err)
	}
	frac = map[string]float64{}
	for _, pt := range bp.Points {
		frac[pt.Step] = pt.Fraction
	}
	if frac["match"] < 0.4 {
		t.Fatalf("BP matching only %.0f%% of runtime", 100*frac["match"])
	}
	for _, other := range []string{"boundF", "computeD", "updateS", "damping"} {
		if frac[other] > frac["othermax"]+0.05 {
			t.Fatalf("step %s (%.0f%%) above othermax (%.0f%%)", other, 100*frac[other], 100*frac["othermax"])
		}
	}
}

func TestSoakLargeStandIn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	// A larger end-to-end run: lcsh-wiki at scale 0.05, both methods
	// with approximate rounding, quality sanity against the
	// round-weights baseline.
	p, err := gen.LcshWiki(0.05, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineRoundWeights, Rounding: matching.Approx})
	bp := p.BPAlign(core.BPOptions{Iterations: 40, Batch: 20, Rounding: matching.Approx})
	if err := bp.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if bp.Objective < base.Objective {
		t.Fatalf("BP %g below round-weights baseline %g at scale 0.05", bp.Objective, base.Objective)
	}
	mr := p.KlauAlign(core.MROptions{Iterations: 15, Rounding: matching.Approx})
	if err := mr.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
}

func TestStepScalingBP(t *testing.T) {
	c := quickConfig()
	c.Iterations = 4
	res, err := StepScaling(c, "dmela-scere", "BP-batch20")
	if err != nil {
		t.Fatal(err)
	}
	steps := map[string]bool{}
	var total time.Duration
	for _, pt := range res.Points {
		steps[pt.Step] = true
		total += pt.Elapsed
	}
	for _, s := range []string{"boundF", "computeD", "othermax", "updateS", "damping", "match"} {
		if !steps[s] {
			t.Fatalf("missing BP step %s", s)
		}
	}
	if total <= 0 {
		t.Fatal("no time recorded")
	}
	if _, err := StepScaling(c, "dmela-scere", "nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestConfigThreadList(t *testing.T) {
	c := Config{Threads: []int{3, 5}}
	got := c.threadList()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("threadList = %v", got)
	}
	d := Config{}
	auto := d.threadList()
	if len(auto) == 0 || auto[0] != 1 {
		t.Fatalf("auto threadList = %v", auto)
	}
}

func TestParseSched(t *testing.T) {
	if parseSched("static").String() != "static" ||
		parseSched("guided").String() != "guided" ||
		parseSched("dynamic").String() != "dynamic" ||
		parseSched("").String() != "dynamic" {
		t.Fatal("parseSched wrong")
	}
}

func TestMatcherComparison(t *testing.T) {
	res, err := MatcherComparison(quickConfig(), "dmela-scere")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("points = %d, want 7", len(res.Points))
	}
	var exact float64
	for _, pt := range res.Points {
		if pt.Matcher == "exact" {
			exact = pt.Weight
		}
	}
	for _, pt := range res.Points {
		if pt.Weight > exact+1e-6 {
			t.Fatalf("%s weight %g exceeds exact %g", pt.Matcher, pt.Weight, exact)
		}
		switch pt.Matcher {
		case "greedy", "locally-dominant", "locally-dominant-1side", "suitor", "path-growing":
			if pt.Weight < exact/2-1e-9 {
				t.Fatalf("%s weight %g below half of exact %g", pt.Matcher, pt.Weight, exact)
			}
		case "auction":
			if pt.WeightRatio < 0.999 {
				t.Fatalf("auction ratio %g, want ≈ 1", pt.WeightRatio)
			}
		}
	}
	if _, err := MatcherComparison(quickConfig(), "bogus"); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestHeadline(t *testing.T) {
	c := quickConfig()
	c.Iterations = 4
	res, err := Headline(c, "dmela-scere")
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowTime <= 0 || res.FastTime <= 0 {
		t.Fatalf("times %v %v", res.SlowTime, res.FastTime)
	}
	// The fast configuration must not collapse quality: BP iterates
	// are matcher-independent, so the ratio should be near 1.
	if res.QualityRatio < 0.85 || res.QualityRatio > 1.15 {
		t.Fatalf("quality ratio %.3f", res.QualityRatio)
	}
	// The approximate matcher is asymptotically cheaper; even on one
	// CPU the fast configuration must win.
	if res.Speedup < 1 {
		t.Fatalf("speedup %.2f < 1", res.Speedup)
	}
	if _, err := Headline(c, "zzz"); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestFig2Baselines(t *testing.T) {
	c := quickConfig()
	c.Iterations = 4
	c.IncludeBaselines = true
	res, err := Fig2(c, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig2Methods)+len(Fig2Baselines) {
		t.Fatalf("points = %d", len(res.Points))
	}
	seen := map[string]bool{}
	for _, pt := range res.Points {
		seen[pt.Method] = true
	}
	if !seen["round-w"] || !seen["isorank"] {
		t.Fatal("baseline curves missing")
	}
	if !strings.Contains(res.Report, "isorank") {
		t.Fatal("report missing baseline column")
	}
}

func TestFig2Repeats(t *testing.T) {
	c := quickConfig()
	c.Repeats = 2
	c.Iterations = 4
	res, err := Fig2(c, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig2Methods) {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.ObjStd < 0 {
			t.Fatalf("negative std %+v", pt)
		}
	}
}

func TestCSVOutputs(t *testing.T) {
	c := quickConfig()
	c.Iterations = 3
	t2, err := Table2(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(t2.CSV(), "problem,") {
		t.Fatal("table2 csv header wrong")
	}
	f2, err := Fig2(c, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2.CSV(), "BP-approx") {
		t.Fatal("fig2 csv missing rows")
	}
	mc, err := MatcherComparison(c, "dmela-scere")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mc.CSV(), "suitor") {
		t.Fatal("matcher csv missing rows")
	}
	sc, err := Scaling(c, "dmela-scere", []string{"MR"}, []string{"dynamic"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sc.CSV(), "dynamic") {
		t.Fatal("scaling csv missing rows")
	}
	ss, err := StepScaling(c, "dmela-scere", "MR")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ss.CSV(), "rowmatch") {
		t.Fatal("step csv missing rows")
	}
	f3, err := Fig3(c, "dmela-scere")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3.CSV(), "MR-exact") {
		t.Fatal("fig3 csv missing rows")
	}
}

func TestConvergence(t *testing.T) {
	c := quickConfig()
	c.Iterations = 10
	res, err := Convergence(c, "dmela-scere")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MRTrace) != 10 {
		t.Fatalf("MR trace %d evaluations, want 10", len(res.MRTrace))
	}
	if len(res.BPTrace) != 20 { // y and z each iteration
		t.Fatalf("BP trace %d evaluations, want 20", len(res.BPTrace))
	}
	if res.MRBestAt <= 0 || res.MRBestAt > 1 || res.BPBestAt <= 0 || res.BPBestAt > 1 {
		t.Fatalf("best-at fractions %g %g", res.MRBestAt, res.BPBestAt)
	}
	if res.Report == "" {
		t.Fatal("empty report")
	}
}

func TestTraceStats(t *testing.T) {
	d, at := traceStats([]float64{1, 3, 2, 5, 4})
	if d != 2 {
		t.Fatalf("decreases = %d, want 2", d)
	}
	if at != 4.0/5.0 {
		t.Fatalf("bestAt = %g", at)
	}
	if d, at := traceStats(nil); d != 0 || at != 0 {
		t.Fatal("empty trace stats wrong")
	}
}

func TestLPComparison(t *testing.T) {
	c := quickConfig()
	c.Iterations = 15
	res, err := LPComparison(c, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		// LP bound dominates every integral solution.
		for name, v := range map[string]float64{
			"LP rounded": pt.LPRounded, "BP": pt.BP, "MR": pt.MR,
			"round-w": pt.RoundW, "isorank": pt.IsoRank, "identity": pt.IdentityObj,
		} {
			if v > pt.LPBound+1e-6 {
				t.Fatalf("dbar=%g: %s objective %g exceeds LP bound %g", pt.Degree, name, v, pt.LPBound)
			}
		}
		// §III: the iterative methods outperform (here: at least
		// match) LP rounding on easy planted instances.
		if pt.BP < pt.LPRounded-1e-6 {
			t.Fatalf("dbar=%g: BP %g below LP rounding %g", pt.Degree, pt.BP, pt.LPRounded)
		}
	}
}

func TestFullReport(t *testing.T) {
	c := quickConfig()
	c.Iterations = 3
	var buf strings.Builder
	if err := FullReport(c, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table II", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Matcher library", "Headline",
		"Objective traces", "LP relaxation",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing section %q", want)
		}
	}
}

func TestBuildNamedUnknown(t *testing.T) {
	if _, err := buildNamed("x", quickConfig()); err == nil {
		t.Fatal("unknown name accepted")
	}
}

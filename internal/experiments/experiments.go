// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections VI–VIII) on the synthetic problems and
// real-data stand-ins from internal/gen. Each driver returns
// structured results plus a formatted text report; the cmd/experiments
// binary and the root benchmark suite are thin wrappers around these
// drivers. See DESIGN.md §3 for the experiment index.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
	"netalignmc/internal/stats"
)

// Config holds the knobs shared by all experiment drivers.
type Config struct {
	// Scale in (0,1] shrinks the Table II stand-in problems; 1 is the
	// published size. Laptop-quick runs use 0.01–0.05.
	Scale float64
	// Seed drives every generator.
	Seed int64
	// Iterations per alignment run (the paper uses 400 for scaling,
	// 1000 for quality; quick runs use fewer).
	Iterations int
	// Threads is the list of worker counts for scaling studies; if
	// empty, powers of two up to GOMAXPROCS are used.
	Threads []int
	// Repeats averages quality experiments over this many seeds
	// (default 1; the paper's Figure 2 plots single noisy runs, so
	// multi-seed averaging is a reproduction improvement).
	Repeats int
	// IncludeBaselines adds the round-weights and IsoRank baseline
	// curves to the quality experiments (beyond the paper's figures).
	IncludeBaselines bool
	// BuildThreads bounds parallelism of problem construction.
	BuildThreads int
}

// DefaultConfig returns a laptop-quick configuration.
func DefaultConfig() Config {
	return Config{Scale: 0.02, Seed: 42, Iterations: 20}
}

func (c Config) threadList() []int {
	if len(c.Threads) > 0 {
		return c.Threads
	}
	maxT := runtime.GOMAXPROCS(0)
	var ts []int
	for t := 1; t <= maxT; t *= 2 {
		ts = append(ts, t)
	}
	if ts[len(ts)-1] != maxT {
		ts = append(ts, maxT)
	}
	return ts
}

// ---------------------------------------------------------------------------
// Table II: problem statistics.
// ---------------------------------------------------------------------------

// Table2Result lists the stand-in problem statistics next to the
// paper's published values.
type Table2Result struct {
	Stats  []core.Stats
	Paper  []core.Stats
	Report string
}

// paperTable2 holds the published Table II rows.
func paperTable2() []core.Stats {
	return []core.Stats{
		{Name: "dmela-scere", VA: 9459, VB: 5696, EL: 34582, NnzS: 6860},
		{Name: "homo-musm", VA: 3247, VB: 9695, EL: 15810, NnzS: 12180},
		{Name: "lcsh-wiki", VA: 297266, VB: 205948, EL: 4971629, NnzS: 1785310},
		{Name: "lcsh-rameau", VA: 154974, VB: 342684, EL: 20883500, NnzS: 4929272},
	}
}

// Table2 generates all four stand-ins at the configured scale and
// reports their Table II statistics.
func Table2(c Config) (*Table2Result, error) {
	builders := []struct {
		name  string
		build func(float64, int64, int) (*core.Problem, error)
	}{
		{"dmela-scere", gen.DmelaScere},
		{"homo-musm", gen.HomoMusm},
		{"lcsh-wiki", gen.LcshWiki},
		{"lcsh-rameau", gen.LcshRameau},
	}
	res := &Table2Result{Paper: paperTable2()}
	tbl := stats.NewTable("problem", "|V_A|", "|V_B|", "|E_L|", "nnz(S)", "S imbalance", "paper |V_A|", "paper |V_B|", "paper |E_L|", "paper nnz(S)")
	for i, b := range builders {
		p, err := b.build(c.Scale, c.Seed, c.BuildThreads)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", b.name, err)
		}
		st := core.ProblemStats(b.name, p)
		res.Stats = append(res.Stats, st)
		pp := res.Paper[i]
		tbl.AddRow(st.Name,
			fmt.Sprint(st.VA), fmt.Sprint(st.VB), fmt.Sprint(st.EL), fmt.Sprint(st.NnzS),
			fmt.Sprintf("%.1fx", st.Imbalance),
			fmt.Sprint(pp.VA), fmt.Sprint(pp.VB), fmt.Sprint(pp.EL), fmt.Sprint(pp.NnzS))
	}
	res.Report = fmt.Sprintf("Table II stand-ins at scale %g (paper columns = published sizes)\n%s", c.Scale, tbl)
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 2: synthetic quality, exact vs approximate rounding.
// ---------------------------------------------------------------------------

// Fig2Point is one measurement of one method at one expected degree,
// averaged over Config.Repeats seeds.
type Fig2Point struct {
	Method        string
	Degree        float64
	ObjFraction   float64 // objective / identity objective (mean)
	CorrectMatch  float64 // fraction of planted matches recovered (mean)
	ObjStd        float64 // stddev across seeds
	FinalMatching int     // cardinality of the last run, for diagnostics
}

// Fig2Result holds the four curves of Figure 2.
type Fig2Result struct {
	Points []Fig2Point
	Report string
}

// Fig2Methods enumerates the four curves of the paper's Figure 2: MR
// and BP, each with exact and approximate rounding.
var Fig2Methods = []string{"MR-exact", "MR-approx", "BP-exact", "BP-approx"}

// Fig2Baselines are the extra curves added beyond the paper: the
// round-input-weights heuristic and IsoRank-style propagation.
var Fig2Baselines = []string{"round-w", "isorank"}

// Fig2 sweeps the expected degree d̄ of random candidate edges and
// measures, for each method, the fraction of the identity objective
// achieved and the fraction of correct (planted) matches — the two
// panels of Figure 2, plus the baseline curves when
// c.IncludeBaselines is set. N defaults to the paper's 400-vertex
// graphs at Scale 1 and shrinks with Scale.
func Fig2(c Config, degrees []float64) (*Fig2Result, error) {
	if len(degrees) == 0 {
		degrees = []float64{2, 6, 10, 14, 18, 20}
	}
	n := int(400 * c.Scale * 50) // Scale 0.02 -> 400, the paper's size
	if n < 20 {
		n = 20
	}
	if n > 400 {
		n = 400
	}
	repeats := c.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	allMethods := Fig2Methods
	if c.IncludeBaselines {
		allMethods = append(append([]string(nil), Fig2Methods...), Fig2Baselines...)
	}
	res := &Fig2Result{}
	for _, deg := range degrees {
		objFracs := map[string][]float64{}
		corrFracs := map[string][]float64{}
		lastCard := map[string]int{}
		for rep := 0; rep < repeats; rep++ {
			o := gen.DefaultSynthetic(deg, c.Seed+int64(rep))
			o.N = n
			o.Threads = c.BuildThreads
			p, err := gen.Synthetic(o)
			if err != nil {
				return nil, err
			}
			idObj := p.Objective(p.IdentityIndicator(), c.BuildThreads)
			if idObj <= 0 {
				idObj = 1
			}
			for _, method := range allMethods {
				var r *core.AlignResult
				switch method {
				case "MR-exact":
					r = p.KlauAlign(core.MROptions{Iterations: c.Iterations})
				case "MR-approx":
					r = p.KlauAlign(core.MROptions{Iterations: c.Iterations, Rounding: matching.Approx})
				case "BP-exact":
					r = p.BPAlign(core.BPOptions{Iterations: c.Iterations})
				case "BP-approx":
					r = p.BPAlign(core.BPOptions{Iterations: c.Iterations, Rounding: matching.Approx})
				case "round-w":
					r = p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineRoundWeights})
				case "isorank":
					r = p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineIsoRank, Iterations: c.Iterations})
				}
				objFracs[method] = append(objFracs[method], r.Objective/idObj)
				corrFracs[method] = append(corrFracs[method], core.CorrectMatchFraction(r.Matching))
				lastCard[method] = r.Matching.Card
			}
		}
		for _, m := range allMethods {
			objS := stats.Summarize(objFracs[m])
			corrS := stats.Summarize(corrFracs[m])
			res.Points = append(res.Points, Fig2Point{
				Method:        m,
				Degree:        deg,
				ObjFraction:   objS.Mean,
				ObjStd:        objS.Std,
				CorrectMatch:  corrS.Mean,
				FinalMatching: lastCard[m],
			})
		}
	}
	// Format the two panels as series tables.
	objSeries := map[string]*stats.Series{}
	corrSeries := map[string]*stats.Series{}
	var objList, corrList []*stats.Series
	for _, m := range allMethods {
		objSeries[m] = &stats.Series{Name: m}
		corrSeries[m] = &stats.Series{Name: m}
		objList = append(objList, objSeries[m])
		corrList = append(corrList, corrSeries[m])
	}
	for _, pt := range res.Points {
		objSeries[pt.Method].Add(pt.Degree, pt.ObjFraction)
		corrSeries[pt.Method].Add(pt.Degree, pt.CorrectMatch)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 (n=%d, alpha=1, beta=2, %d iterations, %d seed(s))\n", n, c.Iterations, repeats)
	b.WriteString("\nPanel 1: fraction of identity objective vs expected degree\n")
	b.WriteString(stats.FormatSeriesTable("dbar", objList...))
	b.WriteString("\nPanel 2: fraction of correct matches vs expected degree\n")
	b.WriteString(stats.FormatSeriesTable("dbar", corrList...))
	res.Report = b.String()
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 3: weight/overlap frontier over a parameter sweep.
// ---------------------------------------------------------------------------

// Fig3Point is one (matching weight, overlap) solution.
type Fig3Point struct {
	Method  string
	Alpha   float64
	Beta    float64
	Gamma   float64
	Weight  float64
	Overlap float64
}

// Fig3Result holds the scatter points for one problem.
type Fig3Result struct {
	Problem string
	Points  []Fig3Point
	Report  string
}

// Fig3 reproduces the Figure 3 sweep on one named stand-in problem
// ("dmela-scere" for the top panel, "lcsh-wiki" for the bottom): for a
// grid of objective weights and damping/step parameters, record the
// matching weight and overlap of each method's solution, with exact
// and approximate rounding.
func Fig3(c Config, problem string) (*Fig3Result, error) {
	p, err := buildNamed(problem, c)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Problem: problem}
	alphaBetas := []struct{ a, b float64 }{{1, 1}, {1, 2}, {2, 1}, {0, 1}}
	gammas := []float64{0.9, 0.99}
	for _, ab := range alphaBetas {
		// Rebuild objective weights without rebuilding S.
		p.Alpha, p.Beta = ab.a, ab.b
		for _, g := range gammas {
			for _, approx := range []bool{false, true} {
				var rounding matching.Matcher
				name := "exact"
				if approx {
					rounding = matching.Approx
					name = "approx"
				}
				mr := p.KlauAlign(core.MROptions{Iterations: c.Iterations, Gamma: 0.5, Rounding: rounding})
				res.Points = append(res.Points, Fig3Point{
					Method: "MR-" + name, Alpha: ab.a, Beta: ab.b, Gamma: g,
					Weight: mr.MatchWeight, Overlap: mr.Overlap,
				})
				bp := p.BPAlign(core.BPOptions{Iterations: c.Iterations, Gamma: g, Rounding: rounding})
				res.Points = append(res.Points, Fig3Point{
					Method: "BP-" + name, Alpha: ab.a, Beta: ab.b, Gamma: g,
					Weight: bp.MatchWeight, Overlap: bp.Overlap,
				})
			}
		}
	}
	tbl := stats.NewTable("method", "alpha", "beta", "gamma", "weight", "overlap")
	for _, pt := range res.Points {
		tbl.AddRow(pt.Method, fmt.Sprint(pt.Alpha), fmt.Sprint(pt.Beta), fmt.Sprint(pt.Gamma),
			fmt.Sprintf("%.2f", pt.Weight), fmt.Sprintf("%.1f", pt.Overlap))
	}
	res.Report = fmt.Sprintf("Figure 3 sweep on %s (scale %g, %d iterations)\n%s", problem, c.Scale, c.Iterations, tbl)
	return res, nil
}

// buildNamed constructs a named stand-in problem.
func buildNamed(name string, c Config) (*core.Problem, error) {
	switch name {
	case "dmela-scere":
		return gen.DmelaScere(c.Scale, c.Seed, c.BuildThreads)
	case "homo-musm":
		return gen.HomoMusm(c.Scale, c.Seed, c.BuildThreads)
	case "lcsh-wiki":
		return gen.LcshWiki(c.Scale, c.Seed, c.BuildThreads)
	case "lcsh-rameau":
		return gen.LcshRameau(c.Scale, c.Seed, c.BuildThreads)
	default:
		return nil, fmt.Errorf("experiments: unknown problem %q", name)
	}
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: strong scaling.
// ---------------------------------------------------------------------------

// ScalingMethod identifies a method/batch configuration in the
// scaling studies.
type ScalingMethod struct {
	Name  string
	Run   func(p *core.Problem, threads, iterations int, sched string) time.Duration
	Batch int
}

// scalingMethods returns the paper's Figure 4 configurations: Klau's
// MR and BP with batch sizes 1, 10, 20, all with approximate rounding
// (the point of the paper) and without the final exact matching step
// ("we do not include the time required for the final exact bipartite
// matching step in these experiments").
func scalingMethods() []ScalingMethod {
	run := func(batch int) func(*core.Problem, int, int, string) time.Duration {
		return func(p *core.Problem, threads, iterations int, sched string) time.Duration {
			start := time.Now()
			p.BPAlign(core.BPOptions{
				Iterations: iterations, Threads: threads, Batch: batch,
				Gamma: 0.99, Rounding: matching.Approx, SkipFinalExact: true,
				Sched: parseSched(sched),
			})
			return time.Since(start)
		}
	}
	return []ScalingMethod{
		{Name: "MR", Run: func(p *core.Problem, threads, iterations int, sched string) time.Duration {
			start := time.Now()
			p.KlauAlign(core.MROptions{
				Iterations: iterations, Threads: threads, MStep: 10,
				Rounding: matching.Approx, SkipFinalExact: true,
				Sched: parseSched(sched),
			})
			return time.Since(start)
		}},
		{Name: "BP-batch1", Run: run(1), Batch: 1},
		{Name: "BP-batch10", Run: run(10), Batch: 10},
		{Name: "BP-batch20", Run: run(20), Batch: 20},
	}
}

// ParseSchedule maps a policy name ("dynamic", "static", "guided") to
// a parallel.Schedule; unknown names select the default Dynamic.
func ParseSchedule(s string) parallel.Schedule { return parseSched(s) }

func parseSched(s string) parallel.Schedule {
	switch s {
	case "static":
		return parallel.Static
	case "guided":
		return parallel.Guided
	default:
		return parallel.Dynamic
	}
}

// ScalingPoint is one timing measurement. Efficiency is
// Speedup/Threads (1.0 = perfect strong scaling).
type ScalingPoint struct {
	Method     string
	Threads    int
	Schedule   string
	Elapsed    time.Duration
	Speedup    float64
	Efficiency float64
}

// ScalingResult holds a strong-scaling study.
type ScalingResult struct {
	Problem string
	Points  []ScalingPoint
	Report  string
}

// Scaling runs the strong-scaling study of Figures 4 (lcsh-wiki) and 5
// (lcsh-rameau): wall time of a fixed number of iterations as the
// thread count varies, for each method and scheduling policy, with
// speedups relative to the fastest single-thread run of that method
// (the paper normalizes the same way). methods filters by name; nil
// means all. schedules defaults to {"dynamic", "static"} — our stand-in
// for the paper's interleaved/bound memory-layout axis.
func Scaling(c Config, problem string, methods []string, schedules []string) (*ScalingResult, error) {
	p, err := buildNamed(problem, c)
	if err != nil {
		return nil, err
	}
	if len(schedules) == 0 {
		schedules = []string{"dynamic", "static"}
	}
	wanted := func(name string) bool {
		if len(methods) == 0 {
			return true
		}
		for _, m := range methods {
			if m == name {
				return true
			}
		}
		return false
	}
	res := &ScalingResult{Problem: problem}
	for _, m := range scalingMethods() {
		if !wanted(m.Name) {
			continue
		}
		// Speedups are normalized to the fastest run at the smallest
		// measured thread count — the paper's "fastest run we computed
		// with one thread" when 1 is in the list.
		minThreads := c.threadList()[0]
		for _, t := range c.threadList() {
			if t < minThreads {
				minThreads = t
			}
		}
		best1 := time.Duration(0)
		for _, sched := range schedules {
			for _, t := range c.threadList() {
				el := m.Run(p, t, c.Iterations, sched)
				res.Points = append(res.Points, ScalingPoint{
					Method: m.Name, Threads: t, Schedule: sched, Elapsed: el,
				})
				if t == minThreads && (best1 == 0 || el < best1) {
					best1 = el
				}
			}
		}
		if best1 > 0 {
			for i := range res.Points {
				if res.Points[i].Method == m.Name {
					res.Points[i].Speedup = float64(best1) / float64(res.Points[i].Elapsed)
					res.Points[i].Efficiency = res.Points[i].Speedup / float64(res.Points[i].Threads)
				}
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Strong scaling on %s (scale %g, %d iterations, speedup vs best 1-thread run)\n", problem, c.Scale, c.Iterations)
	tbl := stats.NewTable("method", "schedule", "threads", "time", "speedup", "efficiency")
	for _, pt := range res.Points {
		tbl.AddRow(pt.Method, pt.Schedule, fmt.Sprint(pt.Threads),
			pt.Elapsed.Round(time.Millisecond).String(), fmt.Sprintf("%.2f", pt.Speedup),
			fmt.Sprintf("%.2f", pt.Efficiency))
	}
	b.WriteString(tbl.String())
	res.Report = b.String()
	return res, nil
}

// ---------------------------------------------------------------------------
// Figures 6 and 7: per-step strong scaling.
// ---------------------------------------------------------------------------

// StepScalingPoint is the accumulated time of one step at one thread
// count.
type StepScalingPoint struct {
	Step     string
	Threads  int
	Elapsed  time.Duration
	Fraction float64
}

// StepScalingResult holds a per-step scaling study.
type StepScalingResult struct {
	Problem string
	Method  string
	Points  []StepScalingPoint
	Report  string
}

// StepScaling reproduces Figures 6 (method "MR") and 7 (method
// "BP-batch20"): per-pseudocode-step wall time versus thread count on
// the lcsh-wiki stand-in, with each step's share of the total at the
// largest thread count.
func StepScaling(c Config, problem, method string) (*StepScalingResult, error) {
	p, err := buildNamed(problem, c)
	if err != nil {
		return nil, err
	}
	res := &StepScalingResult{Problem: problem, Method: method}
	var lastTimer *stats.StepTimer
	for _, t := range c.threadList() {
		timer := stats.NewStepTimer()
		switch method {
		case "MR":
			p.KlauAlign(core.MROptions{
				Iterations: c.Iterations, Threads: t, MStep: 10,
				Rounding: matching.Approx, SkipFinalExact: true, Timer: timer,
			})
		case "BP-batch20":
			p.BPAlign(core.BPOptions{
				Iterations: c.Iterations, Threads: t, Batch: 20, Gamma: 0.99,
				Rounding: matching.Approx, SkipFinalExact: true, Timer: timer,
			})
		default:
			return nil, fmt.Errorf("experiments: unknown step-scaling method %q", method)
		}
		fr := timer.Fractions()
		for _, step := range timer.Steps() {
			res.Points = append(res.Points, StepScalingPoint{
				Step: step, Threads: t, Elapsed: timer.Total(step), Fraction: fr[step],
			})
		}
		lastTimer = timer
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Per-step scaling of %s on %s (scale %g, %d iterations)\n", method, problem, c.Scale, c.Iterations)
	tbl := stats.NewTable("step", "threads", "time", "fraction")
	for _, pt := range res.Points {
		tbl.AddRow(pt.Step, fmt.Sprint(pt.Threads), pt.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", 100*pt.Fraction))
	}
	b.WriteString(tbl.String())
	if lastTimer != nil {
		fmt.Fprintf(&b, "\nStep shares at %d threads:\n%s", c.threadList()[len(c.threadList())-1], lastTimer)
	}
	res.Report = b.String()
	return res, nil
}

package experiments

import (
	"fmt"
	"time"

	"netalignmc/internal/matching"
	"netalignmc/internal/stats"
)

// MatcherPoint is one matcher's quality/time measurement on one
// problem's candidate graph.
type MatcherPoint struct {
	Matcher     string
	Weight      float64
	Cardinality int
	Elapsed     time.Duration
	// WeightRatio is weight / exact weight.
	WeightRatio float64
}

// MatcherComparisonResult compares every matcher in the library on one
// problem's L.
type MatcherComparisonResult struct {
	Problem string
	Points  []MatcherPoint
	Report  string
}

// MatcherComparison extends the paper's Section VII study across the
// whole matcher library: exact (reference), sorted greedy,
// locally-dominant with two-sided and one-sided initialization,
// Suitor, auction, and path-growing — measuring matching weight
// (relative to exact) and wall time on a stand-in problem's candidate
// graph. The half-approximate matchers must land in [½, 1]; auction
// within n·ε of 1.
func MatcherComparison(c Config, problem string) (*MatcherComparisonResult, error) {
	p, err := buildNamed(problem, c)
	if err != nil {
		return nil, err
	}
	type entry struct {
		name string
		m    matching.Matcher
	}
	entries := []entry{
		{"exact", matching.Exact},
		{"greedy", matching.Greedy},
		{"locally-dominant", matching.NewLocallyDominantMatcher(matching.LocallyDominantOptions{})},
		{"locally-dominant-1side", matching.NewLocallyDominantMatcher(matching.LocallyDominantOptions{OneSidedInit: true})},
		{"suitor", matching.Suitor},
		{"auction", matching.NewAuctionMatcher(1e-6)},
		{"path-growing", matching.PathGrowing},
	}
	res := &MatcherComparisonResult{Problem: problem}
	exactWeight := 0.0
	for _, e := range entries {
		start := time.Now()
		r := e.m(p.L, 0)
		el := time.Since(start)
		if err := r.Validate(p.L); err != nil {
			return nil, fmt.Errorf("experiments: matcher %s produced an invalid matching: %w", e.name, err)
		}
		if e.name == "exact" {
			exactWeight = r.Weight
		}
		pt := MatcherPoint{Matcher: e.name, Weight: r.Weight, Cardinality: r.Card, Elapsed: el}
		if exactWeight > 0 {
			pt.WeightRatio = r.Weight / exactWeight
		}
		res.Points = append(res.Points, pt)
	}
	tbl := stats.NewTable("matcher", "weight", "ratio", "card", "time")
	for _, pt := range res.Points {
		tbl.AddRow(pt.Matcher, fmt.Sprintf("%.2f", pt.Weight), fmt.Sprintf("%.4f", pt.WeightRatio),
			fmt.Sprint(pt.Cardinality), pt.Elapsed.Round(time.Microsecond).String())
	}
	res.Report = fmt.Sprintf("Matcher comparison on %s (scale %g)\n%s", problem, c.Scale, tbl)
	return res, nil
}

package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/stats"
)

// HeadlineResult captures the paper's end-to-end claim ("we
// demonstrate almost a 20-fold speedup using 40 threads... and now
// solve real-world problems in 36 seconds instead of 10 minutes"):
// the wall time and objective of the slow configuration (BP, exact
// rounding, 1 thread) versus the fast one (BP batch=20, approximate
// rounding, all threads).
type HeadlineResult struct {
	Problem       string
	SlowTime      time.Duration
	FastTime      time.Duration
	Speedup       float64
	SlowObjective float64
	FastObjective float64
	QualityRatio  float64 // fast / slow objective — the "negligible difference" claim
	Threads       int
	Report        string
}

// Headline runs the end-to-end comparison on a stand-in problem.
func Headline(c Config, problem string) (*HeadlineResult, error) {
	p, err := buildNamed(problem, c)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{Problem: problem, Threads: runtime.GOMAXPROCS(0)}

	start := time.Now()
	slow := p.BPAlign(core.BPOptions{
		Iterations: c.Iterations, Threads: 1, Batch: 1,
		Gamma: 0.99, Rounding: matching.Exact,
	})
	res.SlowTime = time.Since(start)
	res.SlowObjective = slow.Objective

	start = time.Now()
	fast := p.BPAlign(core.BPOptions{
		Iterations: c.Iterations, Threads: res.Threads, Batch: 20,
		Gamma: 0.99, Rounding: matching.Approx,
	})
	res.FastTime = time.Since(start)
	res.FastObjective = fast.Objective

	if res.FastTime > 0 {
		res.Speedup = float64(res.SlowTime) / float64(res.FastTime)
	}
	if res.SlowObjective != 0 {
		res.QualityRatio = res.FastObjective / res.SlowObjective
	}

	tbl := stats.NewTable("configuration", "time", "objective")
	tbl.AddRow("BP exact rounding, 1 thread", res.SlowTime.Round(time.Millisecond).String(), fmt.Sprintf("%.2f", res.SlowObjective))
	tbl.AddRow(fmt.Sprintf("BP(batch=20) approx, %d threads", res.Threads), res.FastTime.Round(time.Millisecond).String(), fmt.Sprintf("%.2f", res.FastObjective))
	res.Report = fmt.Sprintf(
		"Headline comparison on %s (scale %g, %d iterations)\n%s\nspeedup %.1fx, quality ratio %.4f (paper: ~17x end-to-end, quality 'negligible' change)\n",
		problem, c.Scale, c.Iterations, tbl, res.Speedup, res.QualityRatio)
	if math.IsNaN(res.QualityRatio) {
		res.QualityRatio = 0
	}
	return res, nil
}

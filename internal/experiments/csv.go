package experiments

import (
	"fmt"
	"time"

	"netalignmc/internal/stats"
)

// CSV renders the Table II data as comma-separated values.
func (r *Table2Result) CSV() string {
	tbl := stats.NewTable("problem", "va", "vb", "el", "nnzs", "paper_va", "paper_vb", "paper_el", "paper_nnzs")
	for i, st := range r.Stats {
		pp := r.Paper[i]
		tbl.AddRow(st.Name, fmt.Sprint(st.VA), fmt.Sprint(st.VB), fmt.Sprint(st.EL), fmt.Sprint(st.NnzS),
			fmt.Sprint(pp.VA), fmt.Sprint(pp.VB), fmt.Sprint(pp.EL), fmt.Sprint(pp.NnzS))
	}
	return tbl.CSV()
}

// CSV renders the Figure 2 points.
func (r *Fig2Result) CSV() string {
	tbl := stats.NewTable("method", "dbar", "obj_fraction", "obj_std", "correct_fraction", "cardinality")
	for _, pt := range r.Points {
		tbl.AddRow(pt.Method, fmt.Sprint(pt.Degree), fmt.Sprintf("%.6f", pt.ObjFraction),
			fmt.Sprintf("%.6f", pt.ObjStd), fmt.Sprintf("%.6f", pt.CorrectMatch), fmt.Sprint(pt.FinalMatching))
	}
	return tbl.CSV()
}

// CSV renders the Figure 3 sweep points.
func (r *Fig3Result) CSV() string {
	tbl := stats.NewTable("problem", "method", "alpha", "beta", "gamma", "weight", "overlap")
	for _, pt := range r.Points {
		tbl.AddRow(r.Problem, pt.Method, fmt.Sprint(pt.Alpha), fmt.Sprint(pt.Beta),
			fmt.Sprint(pt.Gamma), fmt.Sprintf("%.6f", pt.Weight), fmt.Sprintf("%.1f", pt.Overlap))
	}
	return tbl.CSV()
}

// CSV renders the scaling measurements (Figures 4/5).
func (r *ScalingResult) CSV() string {
	tbl := stats.NewTable("problem", "method", "schedule", "threads", "seconds", "speedup")
	for _, pt := range r.Points {
		tbl.AddRow(r.Problem, pt.Method, pt.Schedule, fmt.Sprint(pt.Threads),
			fmt.Sprintf("%.6f", pt.Elapsed.Seconds()), fmt.Sprintf("%.4f", pt.Speedup))
	}
	return tbl.CSV()
}

// CSV renders the per-step measurements (Figures 6/7).
func (r *StepScalingResult) CSV() string {
	tbl := stats.NewTable("problem", "method", "step", "threads", "seconds", "fraction")
	for _, pt := range r.Points {
		tbl.AddRow(r.Problem, r.Method, pt.Step, fmt.Sprint(pt.Threads),
			fmt.Sprintf("%.6f", pt.Elapsed.Seconds()), fmt.Sprintf("%.4f", pt.Fraction))
	}
	return tbl.CSV()
}

// CSV renders the matcher comparison.
func (r *MatcherComparisonResult) CSV() string {
	tbl := stats.NewTable("problem", "matcher", "weight", "ratio", "cardinality", "seconds")
	for _, pt := range r.Points {
		tbl.AddRow(r.Problem, pt.Matcher, fmt.Sprintf("%.6f", pt.Weight),
			fmt.Sprintf("%.6f", pt.WeightRatio), fmt.Sprint(pt.Cardinality),
			fmt.Sprintf("%.6f", float64(pt.Elapsed)/float64(time.Second)))
	}
	return tbl.CSV()
}

package experiments

import (
	"fmt"
	"strings"

	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/stats"
)

// ConvergenceResult records the per-evaluation rounded objectives of
// both methods on one problem, plus non-monotonicity statistics. It
// substantiates Section III-C: "There is no monotonicity in the
// solution quality, which can vary greatly between iterations. Thus,
// no simple stopping criteria is possible."
type ConvergenceResult struct {
	Problem string
	MRTrace []float64
	BPTrace []float64
	// Decreases counts evaluations whose objective dropped below the
	// immediately preceding one.
	MRDecreases int
	BPDecreases int
	// BestAtFraction is the position of the best evaluation as a
	// fraction of the trace (a value well below 1 shows that the final
	// iterate is often not the best — the reason round_heuristic
	// tracks the best seen).
	MRBestAt float64
	BPBestAt float64
	Report   string
}

// Convergence traces the objective of every rounding evaluation for
// MR and BP on a stand-in problem.
func Convergence(c Config, problem string) (*ConvergenceResult, error) {
	p, err := buildNamed(problem, c)
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{Problem: problem}
	mr := p.KlauAlign(core.MROptions{Iterations: c.Iterations, Trace: true, Rounding: matching.Approx})
	bp := p.BPAlign(core.BPOptions{Iterations: c.Iterations, Trace: true, Rounding: matching.Approx})
	res.MRTrace = mr.ObjectiveTrace
	res.BPTrace = bp.ObjectiveTrace
	res.MRDecreases, res.MRBestAt = traceStats(res.MRTrace)
	res.BPDecreases, res.BPBestAt = traceStats(res.BPTrace)

	var b strings.Builder
	fmt.Fprintf(&b, "Objective traces on %s (scale %g, %d iterations)\n", problem, c.Scale, c.Iterations)
	fmt.Fprintf(&b, "MR: %d evaluations, %d decreases, best at %.0f%% of the run\n",
		len(res.MRTrace), res.MRDecreases, 100*res.MRBestAt)
	fmt.Fprintf(&b, "BP: %d evaluations, %d decreases, best at %.0f%% of the run\n",
		len(res.BPTrace), res.BPDecreases, 100*res.BPBestAt)
	sMR := stats.Summarize(res.MRTrace)
	sBP := stats.Summarize(res.BPTrace)
	fmt.Fprintf(&b, "MR objective range [%.2f, %.2f] mean %.2f\n", sMR.Min, sMR.Max, sMR.Mean)
	fmt.Fprintf(&b, "BP objective range [%.2f, %.2f] mean %.2f\n", sBP.Min, sBP.Max, sBP.Mean)
	res.Report = b.String()
	return res, nil
}

func traceStats(trace []float64) (decreases int, bestAt float64) {
	if len(trace) == 0 {
		return 0, 0
	}
	best := 0
	for i := 1; i < len(trace); i++ {
		if trace[i] < trace[i-1]-1e-12 {
			decreases++
		}
		if trace[i] > trace[best] {
			best = i
		}
	}
	return decreases, float64(best+1) / float64(len(trace))
}

package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// FullReport runs every experiment driver at the given configuration
// and writes one self-contained markdown report: the machine-generated
// counterpart of EXPERIMENTS.md. Scaling studies honor c.Threads;
// quality studies honor c.Repeats.
func FullReport(c Config, w io.Writer) error {
	fmt.Fprintf(w, "# netalignmc experiment report\n\n")
	fmt.Fprintf(w, "Configuration: scale %g, seed %d, %d iterations, GOMAXPROCS %d.\n\n",
		c.Scale, c.Seed, c.Iterations, runtime.GOMAXPROCS(0))
	start := time.Now()

	section := func(title, body string) {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", title, body)
	}

	t2, err := Table2(c)
	if err != nil {
		return fmt.Errorf("table2: %w", err)
	}
	section("Table II — problem statistics", t2.Report)

	f2, err := Fig2(c, nil)
	if err != nil {
		return fmt.Errorf("fig2: %w", err)
	}
	section("Figure 2 — synthetic quality, exact vs approximate rounding", f2.Report)

	for _, problem := range []string{"dmela-scere", "lcsh-wiki"} {
		f3, err := Fig3(c, problem)
		if err != nil {
			return fmt.Errorf("fig3 %s: %w", problem, err)
		}
		section(fmt.Sprintf("Figure 3 — weight/overlap frontier (%s)", problem), f3.Report)
	}

	f4, err := Scaling(c, "lcsh-wiki", nil, nil)
	if err != nil {
		return fmt.Errorf("fig4: %w", err)
	}
	section("Figure 4 — strong scaling, lcsh-wiki", f4.Report)

	f5, err := Scaling(c, "lcsh-rameau", []string{"MR", "BP-batch20"}, nil)
	if err != nil {
		return fmt.Errorf("fig5: %w", err)
	}
	section("Figure 5 — strong scaling, lcsh-rameau", f5.Report)

	f6, err := StepScaling(c, "lcsh-wiki", "MR")
	if err != nil {
		return fmt.Errorf("fig6: %w", err)
	}
	section("Figure 6 — per-step scaling, MR", f6.Report)

	f7, err := StepScaling(c, "lcsh-wiki", "BP-batch20")
	if err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	section("Figure 7 — per-step scaling, BP(batch=20)", f7.Report)

	mc, err := MatcherComparison(c, "lcsh-wiki")
	if err != nil {
		return fmt.Errorf("matchers: %w", err)
	}
	section("Matcher library comparison (extends §VII)", mc.Report)

	hl, err := Headline(c, "lcsh-wiki")
	if err != nil {
		return fmt.Errorf("headline: %w", err)
	}
	section("Headline — end-to-end fast vs slow configuration", hl.Report)

	cv, err := Convergence(c, "lcsh-wiki")
	if err != nil {
		return fmt.Errorf("convergence: %w", err)
	}
	section("Objective traces (§III-C non-monotonicity)", cv.Report)

	lpc, err := LPComparison(c, nil)
	if err != nil {
		return fmt.Errorf("lp: %w", err)
	}
	section("LP relaxation baseline (§III)", lpc.Report)

	fmt.Fprintf(w, "---\nGenerated in %v.\n", time.Since(start).Round(time.Millisecond))
	return nil
}

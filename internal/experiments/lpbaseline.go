package experiments

import (
	"fmt"
	"strings"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/stats"
)

// LPComparisonPoint compares all solution approaches on one small
// synthetic instance.
type LPComparisonPoint struct {
	Degree      float64
	LPBound     float64
	LPRounded   float64
	BP          float64
	MR          float64
	RoundW      float64
	IsoRank     float64
	IdentityObj float64
}

// LPComparisonResult holds the Section III baseline study.
type LPComparisonResult struct {
	Points []LPComparisonPoint
	Report string
}

// LPComparison substantiates Section III's claim that "both of the
// algorithms below outperform this procedure" (rounding the LP
// relaxation): on small synthetic instances it computes the LP bound,
// the LP-rounding objective, both iterative methods and the simpler
// baselines. Invariants asserted by the tests: every method ≤ LP
// bound; BP and MR ≥ LP rounding on easy planted instances.
func LPComparison(c Config, degrees []float64) (*LPComparisonResult, error) {
	if len(degrees) == 0 {
		degrees = []float64{1, 2, 3}
	}
	// Dense simplex: keep the instances tiny.
	n := 24
	res := &LPComparisonResult{}
	for _, deg := range degrees {
		o := gen.DefaultSynthetic(deg, c.Seed)
		o.N = n
		o.MaxDeg = 6
		p, err := gen.Synthetic(o)
		if err != nil {
			return nil, err
		}
		lpRes, err := p.LPRelaxation(0, 1)
		if err != nil {
			return nil, fmt.Errorf("experiments: LP at degree %g: %w", deg, err)
		}
		bp := p.BPAlign(core.BPOptions{Iterations: c.Iterations})
		mr := p.KlauAlign(core.MROptions{Iterations: c.Iterations})
		rw := p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineRoundWeights})
		ir := p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineIsoRank})
		res.Points = append(res.Points, LPComparisonPoint{
			Degree:      deg,
			LPBound:     lpRes.Bound,
			LPRounded:   lpRes.Rounded.Objective,
			BP:          bp.Objective,
			MR:          mr.Objective,
			RoundW:      rw.Objective,
			IsoRank:     ir.Objective,
			IdentityObj: p.Objective(p.IdentityIndicator(), 1),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "LP relaxation baseline study (n=%d, %d iterations)\n", n, c.Iterations)
	tbl := stats.NewTable("dbar", "LP bound", "LP rounded", "BP", "MR", "round-w", "isorank", "identity")
	for _, pt := range res.Points {
		tbl.AddRow(fmt.Sprint(pt.Degree),
			fmt.Sprintf("%.2f", pt.LPBound), fmt.Sprintf("%.2f", pt.LPRounded),
			fmt.Sprintf("%.2f", pt.BP), fmt.Sprintf("%.2f", pt.MR),
			fmt.Sprintf("%.2f", pt.RoundW), fmt.Sprintf("%.2f", pt.IsoRank),
			fmt.Sprintf("%.2f", pt.IdentityObj))
	}
	b.WriteString(tbl.String())
	res.Report = b.String()
	return res, nil
}

package parallel

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// checkOffsets validates the structural invariants of a partition.
func checkOffsets(t *testing.T, offsets []int, n, parts int) {
	t.Helper()
	if len(offsets) != parts+1 {
		t.Fatalf("len(offsets) = %d, want %d", len(offsets), parts+1)
	}
	if offsets[0] != 0 || offsets[parts] != n {
		t.Fatalf("offsets endpoints = [%d, %d], want [0, %d]", offsets[0], offsets[parts], n)
	}
	for k := 0; k < parts; k++ {
		if offsets[k] > offsets[k+1] {
			t.Fatalf("offsets not monotone at %d: %v", k, offsets)
		}
	}
}

// partCost sums costs[lo:hi] treating negatives as zero.
func partCost(costs []int32, lo, hi int) int64 {
	var s int64
	for i := lo; i < hi; i++ {
		if costs[i] > 0 {
			s += int64(costs[i])
		}
	}
	return s
}

// adversarialCosts returns the skew shapes the balanced partitioner
// must survive: one giant row, all-zero rows, fewer rows than parts,
// and power-law-ish random skew.
func adversarialCosts(rng *rand.Rand) map[string][]int32 {
	giant := make([]int32, 1000)
	for i := range giant {
		giant[i] = 1
	}
	giant[500] = 1 << 20
	skewed := make([]int32, 2048)
	for i := range skewed {
		skewed[i] = int32(rng.Intn(3))
		if rng.Intn(64) == 0 {
			skewed[i] = int32(1 + rng.Intn(10000))
		}
	}
	return map[string][]int32{
		"giant-row":  giant,
		"all-zero":   make([]int32, 257),
		"n-lt-parts": {5, 1, 9},
		"empty":      {},
		"single":     {42},
		"skewed":     skewed,
		"negatives":  {3, -7, 2, -1, 5, 0, 8},
	}
}

func TestBalancedOffsetsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, costs := range adversarialCosts(rng) {
		for _, parts := range []int{1, 2, 3, 8, 17} {
			offsets := BalancedOffsets(costs, parts, nil)
			checkOffsets(t, offsets, len(costs), parts)
			total := partCost(costs, 0, len(costs))
			var maxCost int64
			for _, c := range costs {
				if int64(c) > maxCost {
					maxCost = int64(c)
				}
			}
			// Balance guarantee: no part exceeds an even share by more
			// than one maximal element.
			bound := total/int64(parts) + maxCost + 1
			for k := 0; k < parts; k++ {
				if pc := partCost(costs, offsets[k], offsets[k+1]); pc > bound {
					t.Errorf("%s parts=%d: part %d cost %d exceeds bound %d (offsets %v)",
						name, parts, k, pc, bound, offsets)
				}
			}
		}
	}
}

func TestBalancedOffsetsFromPtrMatchesCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, costs := range adversarialCosts(rng) {
		// FromPtr requires a valid CSR pointer, i.e. nonnegative costs.
		if name == "negatives" {
			continue
		}
		ptr := make([]int, len(costs)+1)
		ptr[0] = 3 // nonzero base: FromPtr must handle ptr[0] != 0
		for i, c := range costs {
			ptr[i+1] = ptr[i] + int(c)
		}
		for _, parts := range []int{1, 2, 3, 8, 17} {
			want := BalancedOffsets(costs, parts, nil)
			got := BalancedOffsetsFromPtr(ptr, parts, nil)
			checkOffsets(t, got, len(costs), parts)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s parts=%d: FromPtr %v != BalancedOffsets %v", name, parts, got, want)
				}
			}
		}
	}
}

func TestBalancedOffsetsReusesBuffer(t *testing.T) {
	buf := make([]int, 16)
	out := BalancedOffsets([]int32{1, 2, 3, 4}, 4, buf)
	if &out[0] != &buf[0] {
		t.Fatal("BalancedOffsets did not reuse the provided buffer")
	}
}

func TestForBalancedCoversIndexSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for name, costs := range adversarialCosts(rng) {
		for _, p := range []int{1, 2, 4, 9} {
			cov := newCoverage(len(costs))
			ForBalanced(costs, p, cov.mark)
			cov.checkExact(t, name)
		}
	}
}

func TestForOffsetsWorkerIsPartIndex(t *testing.T) {
	offsets := []int{0, 0, 5, 5, 12, 20} // includes empty parts
	var mu sync.Mutex
	seen := map[int][2]int{}
	ForOffsetsWorker(offsets, func(w, lo, hi int) {
		mu.Lock()
		seen[w] = [2]int{lo, hi}
		mu.Unlock()
	})
	// Part k must run with worker id k; empty parts must be skipped.
	want := map[int][2]int{1: {0, 5}, 3: {5, 12}, 4: {12, 20}}
	if len(seen) != len(want) {
		t.Fatalf("seen = %v, want %v", seen, want)
	}
	for k, r := range want {
		if seen[k] != r {
			t.Fatalf("part %d ran as %v, want %v", k, seen[k], r)
		}
	}
}

// TestForGuidedAdversarial is the ForGuided property test: every index
// is visited exactly once under adversarial (n, p, minChunk) shapes,
// including n < p, minChunk > n, and heavy skew in the per-index cost
// (simulated by a variable-latency body).
func TestForGuidedAdversarial(t *testing.T) {
	cases := []struct{ n, p, minChunk int }{
		{0, 4, 1}, {1, 8, 1}, {3, 8, 1}, {7, 3, 100},
		{100, 7, 1}, {1000, 4, 13}, {17, 17, 2}, {64, 2, 0},
	}
	for _, c := range cases {
		cov := newCoverage(c.n)
		var spin atomic.Int64
		ForGuided(c.n, c.p, c.minChunk, func(lo, hi int) {
			// Skewed cost: early chunks burn more time, exercising the
			// shrinking-grab redistribution.
			for i := 0; i < (c.n-lo)*10; i++ {
				spin.Add(1)
			}
			cov.mark(lo, hi)
		})
		cov.checkExact(t, "ForGuided")
	}
}

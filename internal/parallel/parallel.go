// Package parallel provides OpenMP-style loop parallelism for the
// netalignmc kernels.
//
// The SC 2012 paper parallelizes every step of the alignment iterations
// with OpenMP "parallel for" loops, using a dynamic schedule with a
// chunk size of 1000 for the loops indexed by the (highly imbalanced)
// nonzeros of the overlap matrix S, and a static schedule elsewhere.
// This package reproduces those scheduling policies on top of
// goroutines:
//
//   - ForStatic partitions [0,n) into one contiguous block per worker,
//     mirroring OpenMP's schedule(static).
//   - ForDynamic hands out fixed-size chunks from an atomic counter,
//     mirroring OpenMP's schedule(dynamic, chunk).
//   - ForGuided hands out geometrically shrinking chunks, mirroring
//     schedule(guided); it is used only by the ablation benchmarks.
//   - ForBalanced / ForOffsets split the index space by cumulative
//     cost (nnz) instead of index count, the balanced partitioning
//     the solvers use for the power-law-skewed S sweeps.
//
// All loop bodies receive index *ranges* ([lo,hi)) rather than single
// indices so the per-index dispatch overhead is paid once per chunk,
// which matters for the very short bodies in the sparse kernels.
//
// Execution happens on persistent worker pools (Pool), mirroring an
// OpenMP runtime's thread team: the solvers create one pool per run,
// and the free functions below dispatch on a process-wide shared pool
// that is started lazily on first use. Dispatching on a parked pool is
// allocation-free (descriptor writes plus channel wakes), which is
// what keeps the solver hot loops at zero allocations per iteration.
// When a pool is unavailable — the shared pool is busy with another
// region, the request wants more workers than the pool has, or a body
// nests another parallel region — the constructs fall back to the
// original spawn-per-call path, which stays correct (goroutine
// creation is tens of nanoseconds) and is counted in Stats for
// observability.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// panicBox captures the first panic raised by any worker so the
// parallel construct can re-raise it on the caller's goroutine instead
// of crashing the process from a worker. (A panicking goroutine with
// no recover kills the whole program; library loops must not do that.)
type panicBox struct {
	once sync.Once
	val  interface{}
}

func (b *panicBox) capture() {
	if r := recover(); r != nil {
		b.once.Do(func() { b.val = r })
	}
}

func (b *panicBox) rethrow() {
	if b.val != nil {
		panic(fmt.Sprintf("parallel: worker panic: %v", b.val))
	}
}

// DefaultChunk is the dynamic-schedule chunk size used for all loops
// indexed by the nonzeros of S. The paper reports that, after
// experimentation, a chunk size of 1000 produced the best performance
// for those imbalanced loops; we adopt it as the default.
const DefaultChunk = 1000

// Threads returns the number of workers a parallel loop will use when
// the caller passes p <= 0: the current GOMAXPROCS setting.
func Threads(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// ForStatic runs body over [0, n) partitioned into p contiguous
// blocks, one per worker (OpenMP schedule(static)). If p <= 0 the
// GOMAXPROCS value is used. body must be safe for concurrent
// invocation on disjoint ranges. ForStatic returns after every worker
// has finished (the loop-end barrier).
func ForStatic(n, p int, body func(lo, hi int)) {
	p = Threads(p)
	if n <= 0 {
		return
	}
	if p == 1 || n == 1 {
		body(0, n)
		return
	}
	if p > n {
		p = n
	}
	if sp := acquireShared(p); sp != nil {
		defer releaseShared()
		sp.ForStatic(n, p, body)
		return
	}
	forStaticSpawn(n, p, body)
}

func forStaticSpawn(n, p int, body func(lo, hi int)) {
	spawnRegionsCount.Add(1)
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		lo := t * n / p
		hi := (t + 1) * n / p
		go func(lo, hi int) {
			defer wg.Done()
			defer pb.capture()
			if lo < hi {
				body(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
	pb.rethrow()
}

// ForDynamic runs body over [0, n) in chunks of size chunk handed out
// from a shared atomic counter (OpenMP schedule(dynamic, chunk)). It
// is the right policy for loops with imbalanced per-index cost, such
// as anything indexed by the rows or nonzeros of S. If chunk <= 0,
// DefaultChunk is used. If p <= 0 the GOMAXPROCS value is used.
func ForDynamic(n, p, chunk int, body func(lo, hi int)) {
	p = Threads(p)
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if p == 1 || n <= chunk {
		body(0, n)
		return
	}
	if mw := (n + chunk - 1) / chunk; p > mw {
		p = mw
	}
	if sp := acquireShared(p); sp != nil {
		defer releaseShared()
		sp.ForDynamic(n, p, chunk, body)
		return
	}
	forDynamicSpawn(n, p, chunk, body)
}

func forDynamicSpawn(n, p, chunk int, body func(lo, hi int)) {
	spawnRegionsCount.Add(1)
	// step is assigned exactly once so the goroutines capture it by
	// value; capturing the reassigned parameter directly would move it
	// to the heap and cost an allocation even on the serial fast path.
	step := chunk
	var pb panicBox
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		go func() {
			defer wg.Done()
			defer pb.capture()
			for {
				lo := int(next.Add(int64(step))) - step
				if lo >= n {
					return
				}
				hi := lo + step
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
}

// ForDynamicWorker is ForDynamic with the worker index exposed to the
// body, so callers can maintain per-worker preallocated scratch (the
// paper preallocates "the maximum memory required for p threads to run
// matching problems on the rows of S" outside the iteration; the
// worker index selects the scratch instance race-free). It returns the
// number of workers actually used; bodies receive worker ids in
// [0, workers), and the count equals PlannedWorkers(n, p, chunk) so
// scratch can be sized before the call.
func ForDynamicWorker(n, p, chunk int, body func(worker, lo, hi int)) (workers int) {
	p = Threads(p)
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if p == 1 || n <= chunk {
		body(0, 0, n)
		return 1
	}
	if mw := (n + chunk - 1) / chunk; p > mw {
		p = mw
	}
	if sp := acquireShared(p); sp != nil {
		defer releaseShared()
		return sp.ForDynamicWorker(n, p, chunk, body)
	}
	return forDynamicWorkerSpawn(n, p, chunk, body)
}

func forDynamicWorkerSpawn(n, p, chunk int, body func(worker, lo, hi int)) (workers int) {
	spawnRegionsCount.Add(1)
	step := chunk // single assignment: captured by value, keeps chunk off the heap
	var pb panicBox
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		go func(worker int) {
			defer wg.Done()
			defer pb.capture()
			for {
				lo := int(next.Add(int64(step))) - step
				if lo >= n {
					return
				}
				hi := lo + step
				if hi > n {
					hi = n
				}
				body(worker, lo, hi)
			}
		}(t)
	}
	wg.Wait()
	pb.rethrow()
	return p
}

// ForGuided runs body over [0, n) with geometrically shrinking chunks
// (OpenMP schedule(guided)): each grab takes remaining/p indices, never
// fewer than minChunk. Used by the scheduling-policy ablation.
func ForGuided(n, p, minChunk int, body func(lo, hi int)) {
	p = Threads(p)
	if n <= 0 {
		return
	}
	if minChunk <= 0 {
		minChunk = 1
	}
	if p == 1 {
		body(0, n)
		return
	}
	if sp := acquireShared(p); sp != nil {
		defer releaseShared()
		sp.ForGuided(n, p, minChunk, body)
		return
	}
	forGuidedSpawn(n, p, minChunk, body)
}

func forGuidedSpawn(n, p, minChunk int, body func(lo, hi int)) {
	spawnRegionsCount.Add(1)
	var mu sync.Mutex
	next := 0
	grab := func() (int, int) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return n, n
		}
		remaining := n - next
		size := remaining / p
		if size < minChunk {
			size = minChunk
		}
		if size > remaining {
			size = remaining
		}
		lo := next
		next += size
		return lo, next
	}
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		go func() {
			defer wg.Done()
			defer pb.capture()
			for {
				lo, hi := grab()
				if lo >= hi {
					return
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
}

// Schedule selects a loop scheduling policy. It is the Go analogue of
// the omp_sched_t runtime schedule choice and is threaded through the
// alignment options so the ablation benchmarks can flip policies
// without touching kernel code.
type Schedule int

const (
	// Dynamic hands out fixed-size chunks from an atomic counter. It
	// is the zero value because it is the paper's default policy for
	// the imbalanced S-indexed loops.
	Dynamic Schedule = iota
	// Static partitions the index space into one block per worker.
	Static
	// Guided hands out geometrically shrinking chunks.
	Guided
)

// String returns the OpenMP-style name of the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "unknown"
	}
}

// For runs body over [0, n) under the given schedule with p workers
// and the given chunk size (dynamic/guided only).
func (s Schedule) For(n, p, chunk int, body func(lo, hi int)) {
	switch s {
	case Static:
		ForStatic(n, p, body)
	case Guided:
		ForGuided(n, p, chunk, body)
	default:
		ForDynamic(n, p, chunk, body)
	}
}

// Tasks runs the given task functions concurrently on at most p
// workers and waits for all of them (the analogue of an OpenMP task
// group, used for batched rounding where each task is one matching
// problem). Tasks themselves may run nested parallel loops; the worker
// count available to each task is reported to it so nested loops can
// divide threads the way the paper describes (batch of r roundings
// with T threads gives each task max(1, T/r) threads). Tasks always
// spawns (it is coarse-grained and its tasks nest parallel regions, so
// parking it on a pool would only serialize the nested dispatch).
func Tasks(p int, tasks []func(threads int)) {
	p = Threads(p)
	n := len(tasks)
	if n == 0 {
		return
	}
	if n == 1 {
		tasks[0](p)
		return
	}
	conc := p
	if conc > n {
		conc = n
	}
	per := p / conc
	if per < 1 {
		per = 1
	}
	sem := make(chan struct{}, conc)
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(n)
	for _, task := range tasks {
		task := task
		go func() {
			defer wg.Done()
			defer pb.capture()
			sem <- struct{}{}
			defer func() { <-sem }()
			task(per)
		}()
	}
	wg.Wait()
	pb.rethrow()
}

// The context-aware loop variants below mirror the plain constructs
// but poll ctx between work grabs so a deadline or cancellation stops
// the loop early. Granularity: ForDynamicCtx and ForGuidedCtx check
// before every chunk grab, ForStaticCtx splits each worker's block
// into sub-chunks and checks between them, and TasksCtx checks before
// starting each task. A context that can never be cancelled (nil, or
// Done() == nil such as context.Background()) delegates to the plain
// construct with zero per-chunk overhead — this is what the
// non-context solver entry points pass, so the hot paths are
// unchanged. On cancellation the variants return ctx.Err(); already
// started chunk bodies run to completion (bodies are never
// interrupted mid-range), so the caller sees a loop that has covered
// an unspecified subset of [0, n) and must discard or ignore the
// partial result.

// cancellable reports whether ctx can ever be cancelled.
func cancellable(ctx context.Context) bool {
	return ctx != nil && ctx.Done() != nil
}

// ForStaticCtx is ForStatic with cooperative cancellation. Each
// worker's contiguous block is processed in sub-chunks of size chunk
// (<= 0 selects a granularity of 8 sub-chunks per worker) with a
// context poll between sub-chunks.
func ForStaticCtx(ctx context.Context, n, p, chunk int, body func(lo, hi int)) error {
	if !cancellable(ctx) {
		ForStatic(n, p, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p = Threads(p)
	if n <= 0 {
		return nil
	}
	if p > n {
		p = n
	}
	if sp := acquireShared(p); sp != nil {
		defer releaseShared()
		return sp.ForStaticCtx(ctx, n, p, chunk, body)
	}
	return forStaticCtxSpawn(ctx, n, p, chunk, body)
}

func forStaticCtxSpawn(ctx context.Context, n, p, chunk int, body func(lo, hi int)) error {
	spawnRegionsCount.Add(1)
	done := ctx.Done()
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		lo := t * n / p
		hi := (t + 1) * n / p
		go func(lo, hi int) {
			defer wg.Done()
			defer pb.capture()
			step := chunk
			if step <= 0 {
				step = (hi - lo + 7) / 8
			}
			if step < 1 {
				step = 1
			}
			for lo < hi {
				select {
				case <-done:
					return
				default:
				}
				end := lo + step
				if end > hi {
					end = hi
				}
				body(lo, end)
				lo = end
			}
		}(lo, hi)
	}
	wg.Wait()
	pb.rethrow()
	return ctx.Err()
}

// ForDynamicCtx is ForDynamic with cooperative cancellation: workers
// poll the context before grabbing each chunk.
func ForDynamicCtx(ctx context.Context, n, p, chunk int, body func(lo, hi int)) error {
	if !cancellable(ctx) {
		ForDynamic(n, p, chunk, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p = Threads(p)
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if mw := (n + chunk - 1) / chunk; p > mw {
		p = mw
	}
	if sp := acquireShared(p); sp != nil {
		defer releaseShared()
		return sp.ForDynamicCtx(ctx, n, p, chunk, body)
	}
	return forDynamicCtxSpawn(ctx, n, p, chunk, body)
}

func forDynamicCtxSpawn(ctx context.Context, n, p, chunk int, body func(lo, hi int)) error {
	spawnRegionsCount.Add(1)
	step := chunk // single assignment: captured by value, keeps chunk off the heap
	done := ctx.Done()
	var pb panicBox
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		go func() {
			defer wg.Done()
			defer pb.capture()
			for {
				select {
				case <-done:
					return
				default:
				}
				lo := int(next.Add(int64(step))) - step
				if lo >= n {
					return
				}
				hi := lo + step
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
	return ctx.Err()
}

// ForGuidedCtx is ForGuided with cooperative cancellation: workers
// poll the context before grabbing each (shrinking) chunk.
func ForGuidedCtx(ctx context.Context, n, p, minChunk int, body func(lo, hi int)) error {
	if !cancellable(ctx) {
		ForGuided(n, p, minChunk, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p = Threads(p)
	if n <= 0 {
		return nil
	}
	if minChunk <= 0 {
		minChunk = 1
	}
	if p == 1 {
		body(0, n)
		return ctx.Err()
	}
	if sp := acquireShared(p); sp != nil {
		defer releaseShared()
		return sp.ForGuidedCtx(ctx, n, p, minChunk, body)
	}
	return forGuidedCtxSpawn(ctx, n, p, minChunk, body)
}

func forGuidedCtxSpawn(ctx context.Context, n, p, minChunk int, body func(lo, hi int)) error {
	done := ctx.Done()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	forGuidedSpawn(n, p, minChunk, func(lo, hi int) {
		if cancelled() {
			return
		}
		body(lo, hi)
	})
	return ctx.Err()
}

// ForCtx runs body over [0, n) under the given schedule with
// cooperative cancellation; see the ctx loop variants above.
func (s Schedule) ForCtx(ctx context.Context, n, p, chunk int, body func(lo, hi int)) error {
	switch s {
	case Static:
		return ForStaticCtx(ctx, n, p, chunk, body)
	case Guided:
		return ForGuidedCtx(ctx, n, p, chunk, body)
	default:
		return ForDynamicCtx(ctx, n, p, chunk, body)
	}
}

// TasksCtx is Tasks with cooperative cancellation: tasks not yet
// started when the context is cancelled are skipped (running tasks
// finish). It returns ctx.Err() when the context ended the run early.
func TasksCtx(ctx context.Context, p int, tasks []func(threads int)) error {
	if !cancellable(ctx) {
		Tasks(p, tasks)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	done := ctx.Done()
	wrapped := make([]func(int), len(tasks))
	for i, task := range tasks {
		task := task
		wrapped[i] = func(threads int) {
			select {
			case <-done:
				return
			default:
			}
			task(threads)
		}
	}
	Tasks(p, wrapped)
	return ctx.Err()
}

// ReduceFloat64 computes a parallel reduction of fn over [0, n): each
// worker folds its chunk into a private partial using the caller's
// chunk reducer, and the partials are combined with combine (in worker
// order, so the result is deterministic for a given worker count). It
// is used for objective evaluations (dot products, overlap counts)
// that the paper folds into its parallel loops.
func ReduceFloat64(n, p int, chunkFold func(lo, hi int) float64, combine func(a, b float64) float64, init float64) float64 {
	p = Threads(p)
	if n <= 0 {
		return init
	}
	if p == 1 {
		return combine(init, chunkFold(0, n))
	}
	if p > n {
		p = n
	}
	if sp := acquireShared(p); sp != nil {
		defer releaseShared()
		return sp.Reduce(n, p, chunkFold, combine, init)
	}
	return reduceSpawn(n, p, chunkFold, combine, init)
}

func reduceSpawn(n, p int, chunkFold func(lo, hi int) float64, combine func(a, b float64) float64, init float64) float64 {
	spawnRegionsCount.Add(1)
	partials := make([]float64, p)
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for t := 0; t < p; t++ {
		lo := t * n / p
		hi := (t + 1) * n / p
		go func(t, lo, hi int) {
			defer wg.Done()
			defer pb.capture()
			if lo < hi {
				partials[t] = chunkFold(lo, hi)
			}
		}(t, lo, hi)
	}
	wg.Wait()
	pb.rethrow()
	acc := init
	for _, v := range partials {
		acc = combine(acc, v)
	}
	return acc
}

// SumFloat64 is ReduceFloat64 specialized to addition with a zero
// initial value.
func SumFloat64(n, p int, chunkFold func(lo, hi int) float64) float64 {
	return ReduceFloat64(n, p, chunkFold, func(a, b float64) float64 { return a + b }, 0)
}

package parallel

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// covTracker tracks which indices a loop body visited and how often.
type covTracker struct {
	mu   sync.Mutex
	hits []int
}

func newCoverage(n int) *covTracker { return &covTracker{hits: make([]int, n)} }

func (c *covTracker) mark(lo, hi int) {
	c.mu.Lock()
	for i := lo; i < hi; i++ {
		c.hits[i]++
	}
	c.mu.Unlock()
}

func (c *covTracker) checkExact(t *testing.T, label string) {
	t.Helper()
	for i, h := range c.hits {
		if h != 1 {
			t.Fatalf("%s: index %d visited %d times", label, i, h)
		}
	}
}

func TestPoolConstructsCoverIndexSpace(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	for _, n := range []int{0, 1, 5, 100, 1003} {
		cov := newCoverage(n)
		pl.ForStatic(n, 4, cov.mark)
		cov.checkExact(t, "ForStatic")

		cov = newCoverage(n)
		pl.ForDynamic(n, 4, 7, cov.mark)
		cov.checkExact(t, "ForDynamic")

		cov = newCoverage(n)
		pl.ForGuided(n, 4, 3, cov.mark)
		cov.checkExact(t, "ForGuided")

		cov = newCoverage(n)
		workers := pl.ForDynamicWorker(n, 4, 7, func(w, lo, hi int) {
			if w < 0 || w >= 4 {
				t.Errorf("worker id %d out of range", w)
			}
			cov.mark(lo, hi)
		})
		cov.checkExact(t, "ForDynamicWorker")
		if want := PlannedWorkers(n, 4, 7); workers != want {
			t.Fatalf("ForDynamicWorker(n=%d) workers = %d, want %d", n, workers, want)
		}
	}
}

func TestPoolReuseAcrossRegions(t *testing.T) {
	pl := NewPool(3)
	defer pl.Close()
	var total atomic.Int64
	for r := 0; r < 200; r++ {
		pl.ForStatic(50, 3, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	}
	if got := total.Load(); got != 200*50 {
		t.Fatalf("total = %d, want %d", got, 200*50)
	}
}

func TestPoolReduceMatchesSpawn(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	n := 10007
	fold := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i) * 1e-3
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }
	got := pl.Reduce(n, 4, fold, add, 0)
	want := reduceSpawn(n, 4, fold, add, 0)
	if got != want {
		t.Fatalf("pool reduce = %v, spawn reduce = %v (must be bit-identical)", got, want)
	}
}

func TestPoolPanicPropagatesAndPoolSurvives(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected panic from pool region")
			}
			if !strings.Contains(r.(string), "boom") {
				t.Fatalf("panic %q does not mention cause", r)
			}
		}()
		pl.ForStatic(100, 4, func(lo, hi int) {
			if lo == 0 {
				panic("boom")
			}
		})
	}()
	// The pool must still be usable after a worker panic.
	cov := newCoverage(64)
	pl.ForDynamic(64, 4, 4, cov.mark)
	cov.checkExact(t, "post-panic ForDynamic")
}

func TestPoolCtxCancellation(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	err := pl.ForDynamicCtx(ctx, 100000, 4, 10, func(lo, hi int) {
		if seen.Add(int64(hi-lo)) > 500 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen.Load() >= 100000 {
		t.Fatal("cancellation did not stop the loop early")
	}
}

func TestPoolNestedDispatchFallsBack(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	outer := newCoverage(8)
	inner := newCoverage(8 * 32)
	pl.ForStatic(8, 4, func(lo, hi int) {
		outer.mark(lo, hi)
		for i := lo; i < hi; i++ {
			base := i * 32
			// Nested dispatch on the occupied pool must not deadlock.
			pl.ForStatic(32, 4, func(l, h int) {
				inner.mark(base+l, base+h)
			})
		}
	})
	outer.checkExact(t, "outer")
	inner.checkExact(t, "inner")
}

func TestPoolAfterCloseFallsBack(t *testing.T) {
	pl := NewPool(2)
	pl.Close()
	pl.Close() // idempotent
	cov := newCoverage(100)
	pl.ForStatic(100, 2, cov.mark)
	cov.checkExact(t, "post-close ForStatic")
}

func TestPoolDispatchDoesNotAllocate(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	var sink atomic.Int64
	body := func(lo, hi int) { sink.Add(int64(hi - lo)) }
	pl.ForStatic(4096, 4, body) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		pl.ForStatic(4096, 4, body)
	})
	if allocs > 0 {
		t.Fatalf("pool ForStatic dispatch allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		pl.ForDynamic(4096, 4, 256, body)
	})
	if allocs > 0 {
		t.Fatalf("pool ForDynamic dispatch allocates %.1f/op, want 0", allocs)
	}
	offsets := []int{0, 1000, 2000, 3000, 4096}
	allocs = testing.AllocsPerRun(100, func() {
		pl.ForOffsets(offsets, body)
	})
	if allocs > 0 {
		t.Fatalf("pool ForOffsets dispatch allocates %.1f/op, want 0", allocs)
	}
}

func TestSchedStatsCounters(t *testing.T) {
	before := Stats()
	pl := NewPool(4)
	if d := Stats().PoolWorkers - before.PoolWorkers; d != 4 {
		t.Fatalf("PoolWorkers delta = %d, want 4", d)
	}
	pl.ForStatic(1000, 4, func(lo, hi int) {})
	if d := Stats().PoolRegions - before.PoolRegions; d < 1 {
		t.Fatalf("PoolRegions did not advance (delta %d)", d)
	}
	pl.Close()
	if got, want := Stats().PoolWorkers, before.PoolWorkers; got != want {
		t.Fatalf("PoolWorkers after Close = %d, want %d", got, want)
	}
}

// TestForDynamicWorkerMatchesPlannedWorkers is the regression test for
// the scratch-sizing contract: worker ids handed to the body are
// always in [0, PlannedWorkers(n, p, chunk)) and the returned count
// equals it, so scratch sized by PlannedWorkers is never indexed out
// of range (previously callers sized scratch by Threads(p), which
// wastes memory and hides the contract).
func TestForDynamicWorkerMatchesPlannedWorkers(t *testing.T) {
	cases := []struct{ n, p, chunk int }{
		{0, 4, 10}, {1, 4, 10}, {5, 8, 10}, {10, 4, 3},
		{100, 4, 1000}, {1000, 3, 7}, {17, 16, 1}, {3, 1, 1},
	}
	for _, c := range cases {
		var maxID atomic.Int64
		maxID.Store(-1)
		got := ForDynamicWorker(c.n, c.p, c.chunk, func(w, lo, hi int) {
			for {
				cur := maxID.Load()
				if int64(w) <= cur || maxID.CompareAndSwap(cur, int64(w)) {
					break
				}
			}
		})
		want := PlannedWorkers(c.n, c.p, c.chunk)
		if got != want {
			t.Errorf("ForDynamicWorker(%v) = %d workers, PlannedWorkers = %d", c, got, want)
		}
		if id := maxID.Load(); id >= int64(want) {
			t.Errorf("ForDynamicWorker(%v) used worker id %d >= planned %d", c, id, want)
		}
	}
}

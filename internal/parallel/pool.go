package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent set of parked worker goroutines that parallel
// regions dispatch onto without per-region goroutine creation. The
// solvers create one pool per run (one worker per solver thread) and
// close it when the run ends; the package-level free functions share a
// process-wide lazily started pool (see acquireShared).
//
// Dispatch protocol: the dispatching goroutine takes pl.mu, fills the
// region descriptor fields, and sends one token to each participating
// worker's wake channel. The channel send publishes the descriptor
// writes (channel communication establishes happens-before), so the
// descriptor needs no locking of its own. Each worker runs its share of
// the region and decrements remain; the worker that drops it to zero
// signals doneCh, releasing the dispatcher. Worker panics are captured
// and re-raised on the dispatcher's goroutine, mirroring panicBox.
//
// A region body must not dispatch onto the pool it is running on; the
// entry points use TryLock and fall back to the per-call spawning path
// when the pool is occupied, so nested or concurrent dispatch degrades
// to the pre-pool behaviour instead of deadlocking.
//
// The steady-state dispatch path performs no allocations: descriptor
// fields are plain assignments and the wake/done channels are
// preallocated, which is what keeps the solver hot loops at zero
// allocations per iteration with the pool enabled.
type Pool struct {
	mu     sync.Mutex
	size   int
	wake   []chan struct{}
	doneCh chan struct{}
	closed bool

	// Region descriptor: valid from dispatch until doneCh fires.
	// Written under mu before the wake sends, read by woken workers.
	mode    int
	n       int
	chunk   int
	active  int
	body    func(lo, hi int)
	bodyW   func(worker, lo, hi int)
	fold    func(lo, hi int) float64
	tasks   []func(threads int)
	offsets []int
	done    <-chan struct{}

	partials []float64

	next     atomic.Int64
	gmu      sync.Mutex // guided-schedule grab lock
	gnext    int
	remain   atomic.Int32
	hasPanic atomic.Bool
	panicVal interface{}
}

// Region kinds. The mode field selects the worker-side loop.
const (
	regionStatic = iota
	regionDynamic
	regionDynamicWorker
	regionGuided
	regionOffsets
	regionOffsetsWorker
	regionReduce
	regionTasks
)

// NewPool creates a pool of p parked workers (p <= 0 selects
// GOMAXPROCS). The workers live until Close; an unused pool costs only
// the parked goroutine stacks.
func NewPool(p int) *Pool {
	p = Threads(p)
	pl := &Pool{
		size:     p,
		wake:     make([]chan struct{}, p),
		doneCh:   make(chan struct{}, 1),
		partials: make([]float64, p),
	}
	for t := range pl.wake {
		// Buffered so the end-of-region wake send never blocks on a
		// worker that has decremented remain but not yet looped back to
		// its receive.
		pl.wake[t] = make(chan struct{}, 1)
	}
	for t := 0; t < p; t++ {
		go pl.workerLoop(t)
	}
	poolWorkersGauge.Add(int64(p))
	return pl
}

// Workers returns the number of workers the pool was created with.
func (pl *Pool) Workers() int { return pl.size }

// Close terminates the pool's workers. It blocks until any in-flight
// region has finished; regions dispatched after Close fall back to the
// spawning path. Close is idempotent.
func (pl *Pool) Close() {
	pl.mu.Lock()
	if !pl.closed {
		pl.closed = true
		for _, ch := range pl.wake {
			close(ch)
		}
		poolWorkersGauge.Add(-int64(pl.size))
	}
	pl.mu.Unlock()
}

func (pl *Pool) workerLoop(t int) {
	for range pl.wake[t] {
		busyWorkersGauge.Add(1)
		pl.runWorker(t)
		busyWorkersGauge.Add(-1)
		if pl.remain.Add(-1) == 0 {
			pl.doneCh <- struct{}{}
		}
	}
}

// capturePanic records the first worker panic; the dispatcher
// re-raises it after the region barrier. panicVal is published by the
// CAS (atomics are sequentially consistent) and read only after the
// doneCh handshake, so the unguarded field write is race-free.
func (pl *Pool) capturePanic() {
	if r := recover(); r != nil {
		if pl.hasPanic.CompareAndSwap(false, true) {
			pl.panicVal = r
		}
	}
}

func (pl *Pool) runWorker(t int) {
	defer pl.capturePanic()
	switch pl.mode {
	case regionStatic:
		lo := t * pl.n / pl.active
		hi := (t + 1) * pl.n / pl.active
		if lo >= hi {
			return
		}
		if pl.done == nil {
			pl.body(lo, hi)
			return
		}
		step := pl.chunk
		if step <= 0 {
			step = (hi - lo + 7) / 8
		}
		if step < 1 {
			step = 1
		}
		for lo < hi {
			select {
			case <-pl.done:
				return
			default:
			}
			end := lo + step
			if end > hi {
				end = hi
			}
			pl.body(lo, end)
			lo = end
		}
	case regionDynamic, regionDynamicWorker:
		step := pl.chunk
		for {
			if pl.done != nil {
				select {
				case <-pl.done:
					return
				default:
				}
			}
			lo := int(pl.next.Add(int64(step))) - step
			if lo >= pl.n {
				return
			}
			hi := lo + step
			if hi > pl.n {
				hi = pl.n
			}
			if pl.mode == regionDynamicWorker {
				pl.bodyW(t, lo, hi)
			} else {
				pl.body(lo, hi)
			}
		}
	case regionGuided:
		for {
			if pl.done != nil {
				select {
				case <-pl.done:
					return
				default:
				}
			}
			lo, hi := pl.grabGuided()
			if lo >= hi {
				return
			}
			pl.body(lo, hi)
		}
	case regionOffsets, regionOffsetsWorker:
		lo := pl.offsets[t]
		hi := pl.offsets[t+1]
		if lo >= hi {
			return
		}
		if pl.mode == regionOffsetsWorker {
			pl.bodyW(t, lo, hi)
			return
		}
		if pl.done == nil {
			pl.body(lo, hi)
			return
		}
		step := pl.chunk
		if step <= 0 {
			step = (hi - lo + 7) / 8
		}
		if step < 1 {
			step = 1
		}
		for lo < hi {
			select {
			case <-pl.done:
				return
			default:
			}
			end := lo + step
			if end > hi {
				end = hi
			}
			pl.body(lo, end)
			lo = end
		}
	case regionReduce:
		lo := t * pl.n / pl.active
		hi := (t + 1) * pl.n / pl.active
		if lo < hi {
			pl.partials[t] = pl.fold(lo, hi)
		}
	case regionTasks:
		for {
			if pl.done != nil {
				select {
				case <-pl.done:
					return
				default:
				}
			}
			i := int(pl.next.Add(1)) - 1
			if i >= pl.n {
				return
			}
			pl.tasks[i](pl.chunk)
		}
	}
}

func (pl *Pool) grabGuided() (int, int) {
	pl.gmu.Lock()
	defer pl.gmu.Unlock()
	n := pl.n
	if pl.gnext >= n {
		return n, n
	}
	remaining := n - pl.gnext
	size := remaining / pl.active
	if size < pl.chunk {
		size = pl.chunk
	}
	if size > remaining {
		size = remaining
	}
	lo := pl.gnext
	pl.gnext += size
	return lo, pl.gnext
}

// tryAcquire takes the dispatch lock without blocking. It fails when
// the pool is occupied (nested or concurrent dispatch) or closed; the
// caller then uses the spawning fallback.
func (pl *Pool) tryAcquire() bool {
	if !pl.mu.TryLock() {
		return false
	}
	if pl.closed {
		pl.mu.Unlock()
		return false
	}
	return true
}

// dispatch wakes workers 0..active-1, waits for the region barrier,
// releases mu, and re-raises any worker panic. The caller holds mu and
// has filled the descriptor fields.
func (pl *Pool) dispatch(active int) {
	pl.hasPanic.Store(false)
	pl.panicVal = nil
	pl.next.Store(0)
	pl.gnext = 0
	pl.active = active
	pl.remain.Store(int32(active))
	for t := 0; t < active; t++ {
		pl.wake[t] <- struct{}{}
	}
	<-pl.doneCh
	poolRegionsCount.Add(1)
	had := pl.hasPanic.Load()
	var pv interface{}
	if had {
		pv = pl.panicVal
	}
	pl.body, pl.bodyW, pl.fold, pl.tasks, pl.offsets, pl.done = nil, nil, nil, nil, nil, nil
	pl.mu.Unlock()
	if had {
		panic(fmt.Sprintf("parallel: worker panic: %v", pv))
	}
}

// clamp resolves a requested worker count against the pool size.
func (pl *Pool) clamp(p int) int {
	p = Threads(p)
	if p > pl.size {
		p = pl.size
	}
	return p
}

// ForStatic is ForStatic dispatched on the pool. Partitioning is
// identical to the free function for the same worker count, so results
// are bit-identical either way.
func (pl *Pool) ForStatic(n, p int, body func(lo, hi int)) {
	p = pl.clamp(p)
	if n <= 0 {
		return
	}
	if p == 1 || n == 1 {
		body(0, n)
		return
	}
	if p > n {
		p = n
	}
	if !pl.tryAcquire() {
		forStaticSpawn(n, p, body)
		return
	}
	pl.mode = regionStatic
	pl.n = n
	pl.chunk = 0
	pl.body = body
	pl.done = nil
	pl.dispatch(p)
}

// ForStaticCtx is ForStaticCtx dispatched on the pool.
func (pl *Pool) ForStaticCtx(ctx context.Context, n, p, chunk int, body func(lo, hi int)) error {
	if !cancellable(ctx) {
		pl.ForStatic(n, p, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p = pl.clamp(p)
	if n <= 0 {
		return nil
	}
	if p > n {
		p = n
	}
	if !pl.tryAcquire() {
		return forStaticCtxSpawn(ctx, n, p, chunk, body)
	}
	pl.mode = regionStatic
	pl.n = n
	pl.chunk = chunk
	pl.body = body
	pl.done = ctx.Done()
	pl.dispatch(p)
	return ctx.Err()
}

// ForDynamic is ForDynamic dispatched on the pool.
func (pl *Pool) ForDynamic(n, p, chunk int, body func(lo, hi int)) {
	p = pl.clamp(p)
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if p == 1 || n <= chunk {
		body(0, n)
		return
	}
	if mw := (n + chunk - 1) / chunk; p > mw {
		p = mw
	}
	if !pl.tryAcquire() {
		forDynamicSpawn(n, p, chunk, body)
		return
	}
	pl.mode = regionDynamic
	pl.n = n
	pl.chunk = chunk
	pl.body = body
	pl.done = nil
	pl.dispatch(p)
}

// ForDynamicCtx is ForDynamicCtx dispatched on the pool.
func (pl *Pool) ForDynamicCtx(ctx context.Context, n, p, chunk int, body func(lo, hi int)) error {
	if !cancellable(ctx) {
		pl.ForDynamic(n, p, chunk, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p = pl.clamp(p)
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if mw := (n + chunk - 1) / chunk; p > mw {
		p = mw
	}
	if !pl.tryAcquire() {
		return forDynamicCtxSpawn(ctx, n, p, chunk, body)
	}
	pl.mode = regionDynamic
	pl.n = n
	pl.chunk = chunk
	pl.body = body
	pl.done = ctx.Done()
	pl.dispatch(p)
	return ctx.Err()
}

// ForDynamicWorker is ForDynamicWorker dispatched on the pool. Worker
// ids are in [0, workers) with workers == PlannedWorkers(n, p', chunk)
// where p' is p clamped to the pool size.
func (pl *Pool) ForDynamicWorker(n, p, chunk int, body func(worker, lo, hi int)) (workers int) {
	p = pl.clamp(p)
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if p == 1 || n <= chunk {
		body(0, 0, n)
		return 1
	}
	if mw := (n + chunk - 1) / chunk; p > mw {
		p = mw
	}
	if !pl.tryAcquire() {
		return forDynamicWorkerSpawn(n, p, chunk, body)
	}
	pl.mode = regionDynamicWorker
	pl.n = n
	pl.chunk = chunk
	pl.bodyW = body
	pl.done = nil
	pl.dispatch(p)
	return p
}

// ForGuided is ForGuided dispatched on the pool.
func (pl *Pool) ForGuided(n, p, minChunk int, body func(lo, hi int)) {
	p = pl.clamp(p)
	if n <= 0 {
		return
	}
	if minChunk <= 0 {
		minChunk = 1
	}
	if p == 1 {
		body(0, n)
		return
	}
	if !pl.tryAcquire() {
		forGuidedSpawn(n, p, minChunk, body)
		return
	}
	pl.mode = regionGuided
	pl.n = n
	pl.chunk = minChunk
	pl.body = body
	pl.done = nil
	pl.dispatch(p)
}

// ForGuidedCtx is ForGuidedCtx dispatched on the pool.
func (pl *Pool) ForGuidedCtx(ctx context.Context, n, p, minChunk int, body func(lo, hi int)) error {
	if !cancellable(ctx) {
		pl.ForGuided(n, p, minChunk, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p = pl.clamp(p)
	if n <= 0 {
		return nil
	}
	if minChunk <= 0 {
		minChunk = 1
	}
	if p == 1 {
		body(0, n)
		return ctx.Err()
	}
	if !pl.tryAcquire() {
		return forGuidedCtxSpawn(ctx, n, p, minChunk, body)
	}
	pl.mode = regionGuided
	pl.n = n
	pl.chunk = minChunk
	pl.body = body
	pl.done = ctx.Done()
	pl.dispatch(p)
	return ctx.Err()
}

// ForSched runs body under the given schedule on the pool; the pool
// analogue of Schedule.For.
func (pl *Pool) ForSched(s Schedule, n, p, chunk int, body func(lo, hi int)) {
	switch s {
	case Static:
		pl.ForStatic(n, p, body)
	case Guided:
		pl.ForGuided(n, p, chunk, body)
	default:
		pl.ForDynamic(n, p, chunk, body)
	}
}

// ForSchedCtx is ForSched with cooperative cancellation; the pool
// analogue of Schedule.ForCtx.
func (pl *Pool) ForSchedCtx(ctx context.Context, s Schedule, n, p, chunk int, body func(lo, hi int)) error {
	switch s {
	case Static:
		return pl.ForStaticCtx(ctx, n, p, chunk, body)
	case Guided:
		return pl.ForGuidedCtx(ctx, n, p, chunk, body)
	default:
		return pl.ForDynamicCtx(ctx, n, p, chunk, body)
	}
}

// ForOffsets runs body over the precomputed partition boundaries
// (offsets as produced by BalancedOffsets: part k is
// [offsets[k], offsets[k+1])), one part per pool worker. Partitions
// with more parts than pool workers fall back to spawning.
func (pl *Pool) ForOffsets(offsets []int, body func(lo, hi int)) {
	parts := len(offsets) - 1
	if parts <= 0 || offsets[parts] <= offsets[0] {
		return
	}
	if parts == 1 {
		body(offsets[0], offsets[1])
		return
	}
	if parts > pl.size || !pl.tryAcquire() {
		forOffsetsSpawn(offsets, body)
		return
	}
	pl.mode = regionOffsets
	pl.chunk = 0
	pl.offsets = offsets
	pl.body = body
	pl.done = nil
	pl.dispatch(parts)
}

// ForOffsetsCtx is ForOffsets with cooperative cancellation: each part
// is processed in sub-chunks of size chunk (<= 0 selects 8 sub-chunks
// per part) with a context poll between them.
func (pl *Pool) ForOffsetsCtx(ctx context.Context, offsets []int, chunk int, body func(lo, hi int)) error {
	if !cancellable(ctx) {
		pl.ForOffsets(offsets, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	parts := len(offsets) - 1
	if parts <= 0 || offsets[parts] <= offsets[0] {
		return nil
	}
	if parts > pl.size || !pl.tryAcquire() {
		return forOffsetsCtxSpawn(ctx, offsets, chunk, body)
	}
	pl.mode = regionOffsets
	pl.chunk = chunk
	pl.offsets = offsets
	pl.body = body
	pl.done = ctx.Done()
	pl.dispatch(parts)
	return ctx.Err()
}

// ForOffsetsWorker is ForOffsets with the part index exposed as the
// worker id, for per-worker scratch: part k always runs with worker
// id k, on the pool and on the spawning fallback alike, so scratch
// selection is deterministic.
func (pl *Pool) ForOffsetsWorker(offsets []int, body func(worker, lo, hi int)) {
	parts := len(offsets) - 1
	if parts <= 0 || offsets[parts] <= offsets[0] {
		return
	}
	if parts == 1 {
		body(0, offsets[0], offsets[1])
		return
	}
	if parts > pl.size || !pl.tryAcquire() {
		forOffsetsWorkerSpawn(offsets, body)
		return
	}
	pl.mode = regionOffsetsWorker
	pl.offsets = offsets
	pl.bodyW = body
	pl.done = nil
	pl.dispatch(parts)
}

// Reduce is ReduceFloat64 dispatched on the pool, using the pool's
// preallocated partials so the steady state allocates nothing. The
// partition and the combine order match the free function exactly, so
// the floating-point result is bit-identical for a given worker count.
func (pl *Pool) Reduce(n, p int, chunkFold func(lo, hi int) float64, combine func(a, b float64) float64, init float64) float64 {
	p = pl.clamp(p)
	if n <= 0 {
		return init
	}
	if p == 1 {
		return combine(init, chunkFold(0, n))
	}
	if p > n {
		p = n
	}
	if !pl.tryAcquire() {
		return reduceSpawn(n, p, chunkFold, combine, init)
	}
	for t := 0; t < p; t++ {
		pl.partials[t] = 0
	}
	pl.mode = regionReduce
	pl.n = n
	pl.fold = chunkFold
	pl.done = nil
	pl.dispatch(p)
	acc := init
	for _, v := range pl.partials[:p] {
		acc = combine(acc, v)
	}
	return acc
}

// Tasks is Tasks dispatched on the pool: the task functions run on the
// pool's workers with at most min(p, len(tasks)) in flight, each
// receiving the nested thread budget p/concurrency (at least 1), the
// same budget the free function hands out. Task start order is the
// slice order; completion order is not defined (identical to Tasks).
// The dispatch itself is allocation-free, which is what keeps the
// solvers' batched rounding step off the per-iteration allocation
// budget. Nested parallel regions inside a task cannot use this pool
// (it is occupied) and fall back to the shared pool or spawning.
func (pl *Pool) Tasks(p int, tasks []func(threads int)) {
	p = pl.clamp(p)
	n := len(tasks)
	if n == 0 {
		return
	}
	if n == 1 {
		tasks[0](p)
		return
	}
	conc := p
	if conc > n {
		conc = n
	}
	per := p / conc
	if per < 1 {
		per = 1
	}
	if !pl.tryAcquire() {
		Tasks(p, tasks)
		return
	}
	pl.mode = regionTasks
	pl.n = n
	pl.chunk = per
	pl.tasks = tasks
	pl.done = nil
	pl.dispatch(conc)
}

// TasksCtx is Tasks with cooperative cancellation: workers stop picking
// up new tasks once ctx is cancelled (tasks already running finish),
// matching the free TasksCtx semantics.
func (pl *Pool) TasksCtx(ctx context.Context, p int, tasks []func(threads int)) error {
	if !cancellable(ctx) {
		pl.Tasks(p, tasks)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p = pl.clamp(p)
	n := len(tasks)
	if n == 0 {
		return nil
	}
	if n == 1 {
		tasks[0](p)
		return ctx.Err()
	}
	conc := p
	if conc > n {
		conc = n
	}
	per := p / conc
	if per < 1 {
		per = 1
	}
	if !pl.tryAcquire() {
		return TasksCtx(ctx, p, tasks)
	}
	pl.mode = regionTasks
	pl.n = n
	pl.chunk = per
	pl.tasks = tasks
	pl.done = ctx.Done()
	pl.dispatch(conc)
	return ctx.Err()
}

// Scheduler-health counters (exported via Stats for the daemon's
// /metrics and expvar endpoints).
var (
	poolRegionsCount  atomic.Int64
	spawnRegionsCount atomic.Int64
	sharedBusyCount   atomic.Int64
	busyWorkersGauge  atomic.Int64
	poolWorkersGauge  atomic.Int64
)

// SchedStats is a snapshot of the package's scheduler-health counters.
type SchedStats struct {
	// PoolWorkers is the number of parked pool workers currently alive
	// (shared pool plus any open solver-run pools).
	PoolWorkers int64 `json:"pool_workers"`
	// WorkersBusy is the number of pool workers executing a region
	// right now.
	WorkersBusy int64 `json:"workers_busy"`
	// PoolRegions counts parallel regions dispatched on a pool.
	PoolRegions int64 `json:"pool_regions"`
	// SpawnRegions counts regions that fell back to per-call goroutine
	// spawning (pool busy, oversized request, or pool closed).
	SpawnRegions int64 `json:"spawn_regions"`
	// SharedBusyFallbacks counts free-function calls that found the
	// shared pool occupied and spawned instead.
	SharedBusyFallbacks int64 `json:"shared_busy_fallbacks"`
}

// Stats returns a snapshot of the scheduler-health counters.
func Stats() SchedStats {
	return SchedStats{
		PoolWorkers:         poolWorkersGauge.Load(),
		WorkersBusy:         busyWorkersGauge.Load(),
		PoolRegions:         poolRegionsCount.Load(),
		SpawnRegions:        spawnRegionsCount.Load(),
		SharedBusyFallbacks: sharedBusyCount.Load(),
	}
}

// sharedMinWorkers floors the shared pool size so free-function calls
// with p above GOMAXPROCS (oversubscription experiments, scaling
// benches on small hosts) still dispatch on the pool. Parked workers
// cost only their stacks; correctness never depends on the floor
// because oversized requests fall back to spawning.
const sharedMinWorkers = 8

var (
	sharedOnce sync.Once
	sharedPool *Pool
	sharedBusy atomic.Bool
)

// acquireShared returns the process-wide shared pool reserved for one
// region dispatch, or nil when the caller should spawn instead: the
// pool is busy with another region (concurrent free-function calls, or
// a nested call from inside a pool-run body) or p exceeds its size.
// The caller must releaseShared after the region when non-nil.
func acquireShared(p int) *Pool {
	sharedOnce.Do(func() {
		size := runtime.GOMAXPROCS(0)
		if size < sharedMinWorkers {
			size = sharedMinWorkers
		}
		sharedPool = NewPool(size)
	})
	if p > sharedPool.size {
		return nil
	}
	if !sharedBusy.CompareAndSwap(false, true) {
		sharedBusyCount.Add(1)
		return nil
	}
	return sharedPool
}

func releaseShared() { sharedBusy.Store(false) }

package parallel

import (
	"context"
	"sort"
	"sync"
)

// Cost-model ("balanced") partitioning. The paper's imbalanced loops
// are indexed by rows of S whose nonzero counts follow a power law;
// equal index ranges leave one worker with the heavy rows. Splitting
// the index space by *cumulative cost* (nnz) instead gives every
// worker a near-equal share of the actual work while keeping ranges
// contiguous — so a balanced partition is just a different set of
// [lo, hi) boundaries and any loop body that is correct under static
// partitioning is correct (and bit-identical) under balancing.

// BalancedOffsets partitions [0, len(costs)) into parts contiguous
// ranges of near-equal cumulative cost via a single prefix-sum walk.
// The boundary of part k is the smallest index whose running cost
// reaches k/parts of the total, so every part's cost is at most
// total/parts plus one maximal element. Negative costs are treated as
// zero. A zero total falls back to an equal index split. The result
// has parts+1 entries (part k is [offsets[k], offsets[k+1])); parts
// may be empty. offsets is reused when it has capacity.
func BalancedOffsets(costs []int32, parts int, offsets []int) []int {
	n := len(costs)
	if parts < 1 {
		parts = 1
	}
	offsets = growOffsets(offsets, parts+1)
	offsets[0] = 0
	var total int64
	for _, c := range costs {
		if c > 0 {
			total += int64(c)
		}
	}
	if total == 0 {
		for k := 1; k <= parts; k++ {
			offsets[k] = k * n / parts
		}
		return offsets
	}
	var cum int64
	k := 1
	for i := 0; i < n && k < parts; i++ {
		if c := costs[i]; c > 0 {
			cum += int64(c)
		}
		for k < parts && cum*int64(parts) >= int64(k)*total {
			offsets[k] = i + 1
			k++
		}
	}
	for ; k <= parts; k++ {
		offsets[k] = n
	}
	return offsets
}

// BalancedOffsetsFromPtr is BalancedOffsets with the costs given
// implicitly by a CSR-style pointer array: cost[i] = ptr[i+1]-ptr[i]
// (ptr must be nondecreasing). The cumulative costs are ptr itself, so
// each boundary is found by binary search instead of a full walk. The
// result is identical to BalancedOffsets on the materialized costs.
func BalancedOffsetsFromPtr(ptr []int, parts int, offsets []int) []int {
	n := len(ptr) - 1
	if n < 0 {
		n = 0
	}
	if parts < 1 {
		parts = 1
	}
	offsets = growOffsets(offsets, parts+1)
	offsets[0] = 0
	if n == 0 {
		for k := 1; k <= parts; k++ {
			offsets[k] = 0
		}
		return offsets
	}
	base := ptr[0]
	total := int64(ptr[n] - base)
	if total <= 0 {
		for k := 1; k <= parts; k++ {
			offsets[k] = k * n / parts
		}
		return offsets
	}
	prev := 0
	for k := 1; k < parts; k++ {
		kt := int64(k) * total
		j := prev + sort.Search(n-prev, func(d int) bool {
			return int64(ptr[prev+d]-base)*int64(parts) >= kt
		})
		offsets[k] = j
		prev = j
	}
	offsets[parts] = n
	return offsets
}

// growOffsets returns s resized to length n, reusing capacity.
func growOffsets(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// PlannedWorkers reports the worker count ForDynamicWorker will use
// for (n, p, chunk): body worker ids are always in
// [0, PlannedWorkers(n, p, chunk)). Callers sizing per-worker scratch
// should use this (or the returned count) rather than Threads(p),
// which overestimates when n is small relative to chunk.
func PlannedWorkers(n, p, chunk int) int {
	p = Threads(p)
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if p == 1 || n <= chunk {
		return 1
	}
	if mw := (n + chunk - 1) / chunk; p > mw {
		p = mw
	}
	return p
}

// ForBalanced runs body over [0, len(costs)) partitioned into p
// contiguous ranges of near-equal cumulative cost (see
// BalancedOffsets). It computes the partition on every call; hot loops
// should precompute the offsets once per problem and use ForOffsets.
func ForBalanced(costs []int32, p int, body func(lo, hi int)) {
	n := len(costs)
	p = Threads(p)
	if n <= 0 {
		return
	}
	if p == 1 || n == 1 {
		body(0, n)
		return
	}
	if p > n {
		p = n
	}
	ForOffsets(BalancedOffsets(costs, p, nil), body)
}

// ForOffsets runs body over a precomputed partition (offsets as
// produced by BalancedOffsets), one part per worker. Empty parts are
// skipped. Like the other free functions it dispatches on the shared
// pool when available.
func ForOffsets(offsets []int, body func(lo, hi int)) {
	parts := len(offsets) - 1
	if parts <= 0 || offsets[parts] <= offsets[0] {
		return
	}
	if parts == 1 {
		body(offsets[0], offsets[1])
		return
	}
	if sp := acquireShared(parts); sp != nil {
		defer releaseShared()
		sp.ForOffsets(offsets, body)
		return
	}
	forOffsetsSpawn(offsets, body)
}

// ForOffsetsCtx is ForOffsets with cooperative cancellation: each part
// is processed in sub-chunks of size chunk (<= 0 selects 8 sub-chunks
// per part) with a context poll between them.
func ForOffsetsCtx(ctx context.Context, offsets []int, chunk int, body func(lo, hi int)) error {
	if !cancellable(ctx) {
		ForOffsets(offsets, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	parts := len(offsets) - 1
	if parts <= 0 || offsets[parts] <= offsets[0] {
		return nil
	}
	if sp := acquireShared(parts); sp != nil {
		defer releaseShared()
		return sp.ForOffsetsCtx(ctx, offsets, chunk, body)
	}
	return forOffsetsCtxSpawn(ctx, offsets, chunk, body)
}

// ForOffsetsWorker is ForOffsets with the part index exposed as the
// worker id for per-worker scratch; part k always runs as worker k.
func ForOffsetsWorker(offsets []int, body func(worker, lo, hi int)) {
	parts := len(offsets) - 1
	if parts <= 0 || offsets[parts] <= offsets[0] {
		return
	}
	if parts == 1 {
		body(0, offsets[0], offsets[1])
		return
	}
	if sp := acquireShared(parts); sp != nil {
		defer releaseShared()
		sp.ForOffsetsWorker(offsets, body)
		return
	}
	forOffsetsWorkerSpawn(offsets, body)
}

func forOffsetsSpawn(offsets []int, body func(lo, hi int)) {
	spawnRegionsCount.Add(1)
	parts := len(offsets) - 1
	var pb panicBox
	var wg sync.WaitGroup
	for k := 0; k < parts; k++ {
		lo, hi := offsets[k], offsets[k+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pb.capture()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	pb.rethrow()
}

func forOffsetsCtxSpawn(ctx context.Context, offsets []int, chunk int, body func(lo, hi int)) error {
	spawnRegionsCount.Add(1)
	parts := len(offsets) - 1
	done := ctx.Done()
	var pb panicBox
	var wg sync.WaitGroup
	for k := 0; k < parts; k++ {
		lo, hi := offsets[k], offsets[k+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pb.capture()
			step := chunk
			if step <= 0 {
				step = (hi - lo + 7) / 8
			}
			if step < 1 {
				step = 1
			}
			for lo < hi {
				select {
				case <-done:
					return
				default:
				}
				end := lo + step
				if end > hi {
					end = hi
				}
				body(lo, end)
				lo = end
			}
		}(lo, hi)
	}
	wg.Wait()
	pb.rethrow()
	return ctx.Err()
}

func forOffsetsWorkerSpawn(offsets []int, body func(worker, lo, hi int)) {
	spawnRegionsCount.Add(1)
	parts := len(offsets) - 1
	var pb panicBox
	var wg sync.WaitGroup
	for k := 0; k < parts; k++ {
		lo, hi := offsets[k], offsets[k+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			defer pb.capture()
			body(k, lo, hi)
		}(k, lo, hi)
	}
	wg.Wait()
	pb.rethrow()
}

package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// coverage checks that a loop construct visits every index in [0,n)
// exactly once.
func coverage(t *testing.T, name string, n int, run func(body func(lo, hi int))) {
	t.Helper()
	counts := make([]int32, n)
	run(func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("%s: bad range [%d,%d) for n=%d", name, lo, hi, n)
			return
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("%s: index %d visited %d times (n=%d)", name, i, c, n)
		}
	}
}

func TestForStaticCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1001, 4096} {
		for _, p := range []int{0, 1, 2, 3, 8, 64} {
			coverage(t, "ForStatic", n, func(body func(lo, hi int)) {
				ForStatic(n, p, body)
			})
		}
	}
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 999, 1000, 1001, 5000} {
		for _, p := range []int{0, 1, 2, 7, 32} {
			for _, chunk := range []int{0, 1, 3, 1000, 10000} {
				coverage(t, "ForDynamic", n, func(body func(lo, hi int)) {
					ForDynamic(n, p, chunk, body)
				})
			}
		}
	}
}

func TestForDynamicWorkerCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 37, 2048} {
		for _, p := range []int{1, 2, 8} {
			counts := make([]int32, n)
			workers := ForDynamicWorker(n, p, 16, func(worker, lo, hi int) {
				if worker < 0 || worker >= p {
					t.Errorf("worker id %d out of [0,%d)", worker, p)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			if n > 0 && (workers < 1 || workers > p) {
				t.Fatalf("workers = %d for p=%d", workers, p)
			}
			if n == 0 && workers != 0 {
				t.Fatalf("empty loop launched %d workers", workers)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d p=%d: index %d visited %d times", n, p, i, c)
				}
			}
		}
	}
}

func TestForDynamicWorkerScratchIsolation(t *testing.T) {
	// Per-worker scratch must never be shared between two concurrently
	// running bodies: verify by marking scratch in-use.
	const n, p = 10000, 4
	inUse := make([]int32, p)
	ForDynamicWorker(n, p, 8, func(worker, lo, hi int) {
		if !atomic.CompareAndSwapInt32(&inUse[worker], 0, 1) {
			t.Error("two bodies share a worker id concurrently")
			return
		}
		for i := lo; i < hi; i++ {
			_ = i
		}
		atomic.StoreInt32(&inUse[worker], 0)
	})
}

func TestForGuidedCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1024, 3333} {
		for _, p := range []int{0, 1, 2, 5, 16} {
			for _, minChunk := range []int{0, 1, 64} {
				coverage(t, "ForGuided", n, func(body func(lo, hi int)) {
					ForGuided(n, p, minChunk, body)
				})
			}
		}
	}
}

func TestScheduleDispatch(t *testing.T) {
	for _, s := range []Schedule{Static, Dynamic, Guided} {
		coverage(t, "Schedule."+s.String(), 257, func(body func(lo, hi int)) {
			s.For(257, 4, 16, body)
		})
	}
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatalf("unexpected schedule names: %v %v %v", Static, Dynamic, Guided)
	}
	if Schedule(42).String() != "unknown" {
		t.Fatalf("expected unknown schedule name")
	}
}

func TestThreads(t *testing.T) {
	if got := Threads(7); got != 7 {
		t.Fatalf("Threads(7) = %d", got)
	}
	if got := Threads(0); got < 1 {
		t.Fatalf("Threads(0) = %d, want >= 1", got)
	}
	if got := Threads(-3); got < 1 {
		t.Fatalf("Threads(-3) = %d, want >= 1", got)
	}
}

func TestTasksRunsAll(t *testing.T) {
	for _, nTasks := range []int{0, 1, 2, 5, 20} {
		for _, p := range []int{1, 2, 8} {
			var ran atomic.Int32
			tasks := make([]func(int), nTasks)
			for i := range tasks {
				tasks[i] = func(threads int) {
					if threads < 1 {
						t.Errorf("task given %d threads", threads)
					}
					ran.Add(1)
				}
			}
			Tasks(p, tasks)
			if int(ran.Load()) != nTasks {
				t.Fatalf("Tasks(p=%d) ran %d of %d tasks", p, ran.Load(), nTasks)
			}
		}
	}
}

func TestTasksThreadBudget(t *testing.T) {
	// With 8 workers and 4 tasks each task should see 2 threads.
	var seen atomic.Int32
	tasks := make([]func(int), 4)
	for i := range tasks {
		tasks[i] = func(threads int) { seen.Add(int32(threads)) }
	}
	Tasks(8, tasks)
	if got := seen.Load(); got != 8 {
		t.Fatalf("total thread budget %d, want 8", got)
	}
}

func TestSumFloat64MatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 10, 1000, 12345} {
		vals := make([]float64, n)
		want := 0.0
		for i := range vals {
			vals[i] = rng.NormFloat64()
			want += vals[i]
		}
		got := SumFloat64(n, 4, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		})
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("n=%d: SumFloat64 = %g, want %g", n, got, want)
		}
	}
}

func TestReduceFloat64Max(t *testing.T) {
	vals := []float64{3, -1, 9, 2, 8, 9.5, -20}
	got := ReduceFloat64(len(vals), 3,
		func(lo, hi int) float64 {
			m := vals[lo]
			for i := lo + 1; i < hi; i++ {
				if vals[i] > m {
					m = vals[i]
				}
			}
			return m
		},
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
		vals[0])
	if got != 9.5 {
		t.Fatalf("max reduce = %g, want 9.5", got)
	}
}

func TestReduceEmpty(t *testing.T) {
	got := ReduceFloat64(0, 4, func(lo, hi int) float64 { return 1 },
		func(a, b float64) float64 { return a + b }, 42)
	if got != 42 {
		t.Fatalf("empty reduce = %g, want init 42", got)
	}
}

// Property: for any n and p, a dynamic-schedule parallel sum of 1s
// equals n (i.e., no index is dropped or duplicated).
func TestQuickDynamicSum(t *testing.T) {
	f := func(nRaw uint16, pRaw, chunkRaw uint8) bool {
		n := int(nRaw) % 5000
		p := int(pRaw)%8 + 1
		chunk := int(chunkRaw)%128 + 1
		var total atomic.Int64
		ForDynamic(n, p, chunk, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
		return total.Load() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: static blocks are contiguous, disjoint and ordered.
func TestQuickStaticPartition(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw) % 4000
		p := int(pRaw)%16 + 1
		var total atomic.Int64
		ForStatic(n, p, func(lo, hi int) {
			if lo >= hi || lo < 0 || hi > n {
				total.Add(1 << 40) // poison
				return
			}
			total.Add(int64(hi - lo))
		})
		return total.Load() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagation(t *testing.T) {
	constructs := map[string]func(){
		"ForStatic": func() {
			ForStatic(100, 4, func(lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		},
		"ForDynamic": func() {
			ForDynamic(100, 4, 5, func(lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		},
		"ForDynamicWorker": func() {
			ForDynamicWorker(100, 4, 5, func(w, lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		},
		"ForGuided": func() {
			ForGuided(100, 4, 2, func(lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		},
		"Tasks": func() {
			Tasks(2, []func(int){func(int) { panic("boom") }, func(int) {}})
		},
		"Reduce": func() {
			ReduceFloat64(100, 4, func(lo, hi int) float64 { panic("boom") },
				func(a, b float64) float64 { return a + b }, 0)
		},
	}
	for name, fn := range constructs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: worker panic not propagated to caller", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkForDynamicOverhead(b *testing.B) {
	x := make([]float64, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForDynamic(len(x), 0, DefaultChunk, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				x[j] = x[j]*0.5 + 1
			}
		})
	}
}

func BenchmarkForStaticOverhead(b *testing.B) {
	x := make([]float64, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForStatic(len(x), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				x[j] = x[j]*0.5 + 1
			}
		})
	}
}

package parallel

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Resilience tests for the runtime: a worker panic must surface on the
// caller's goroutine exactly once (no deadlock, no lost panic, no
// double rethrow), and the ctx-aware loops must honor cancellation
// promptly without leaking workers. All run under -race in CI.

// catchPanic runs f and returns the recovered panic value (nil if f
// returned normally).
func catchPanic(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

func TestFaultForStaticPanicPropagates(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		var calls atomic.Int64
		v := catchPanic(func() {
			ForStatic(1000, p, func(lo, hi int) {
				calls.Add(1)
				if lo <= 500 && 500 < hi {
					panic("worker 500 failed")
				}
			})
		})
		s, ok := v.(string)
		if !ok || !strings.Contains(s, "worker 500 failed") {
			t.Fatalf("p=%d: panic %v not propagated", p, v)
		}
		if calls.Load() == 0 {
			t.Fatalf("p=%d: body never ran", p)
		}
	}
}

func TestFaultForDynamicPanicPropagates(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		v := catchPanic(func() {
			ForDynamic(1000, p, 7, func(lo, hi int) {
				if lo <= 123 && 123 < hi {
					panic("chunk holding 123 failed")
				}
			})
		})
		if v == nil {
			t.Fatalf("p=%d: panic swallowed", p)
		}
	}
}

func TestFaultForDynamicWorkerPanicPropagates(t *testing.T) {
	v := catchPanic(func() {
		ForDynamicWorker(100, 4, 3, func(worker, lo, hi int) {
			if lo == 0 {
				panic("first chunk failed")
			}
		})
	})
	if v == nil {
		t.Fatal("panic swallowed")
	}
}

func TestFaultForGuidedPanicPropagates(t *testing.T) {
	v := catchPanic(func() {
		ForGuided(1000, 4, 1, func(lo, hi int) {
			if lo <= 900 && 900 < hi {
				panic("late chunk failed")
			}
		})
	})
	if v == nil {
		t.Fatal("panic swallowed")
	}
}

func TestFaultTasksPanicPropagates(t *testing.T) {
	ran := make([]atomic.Bool, 3)
	v := catchPanic(func() {
		Tasks(2, []func(threads int){
			func(threads int) { ran[0].Store(true) },
			func(threads int) { panic("task 1 failed") },
			func(threads int) { ran[2].Store(true) },
		})
	})
	if v == nil {
		t.Fatal("panic swallowed")
	}
	if !ran[0].Load() || !ran[2].Load() {
		t.Fatal("sibling tasks did not run to completion")
	}
}

func TestFaultReducePanicPropagates(t *testing.T) {
	v := catchPanic(func() {
		ReduceFloat64(1000, 4, func(lo, hi int) float64 {
			if lo == 0 {
				panic("fold failed")
			}
			return 0
		}, func(a, b float64) float64 { return a + b }, 0)
	})
	if v == nil {
		t.Fatal("panic swallowed")
	}
}

// Exactly-once: a panic that fires in one worker must not suppress the
// caller's ability to run the loop again (the runtime must fully drain
// its workers before rethrowing).
func TestFaultPanicThenReuse(t *testing.T) {
	var first atomic.Bool
	v := catchPanic(func() {
		ForDynamic(100, 4, 1, func(lo, hi int) {
			if first.CompareAndSwap(false, true) {
				panic("transient")
			}
		})
	})
	if v == nil {
		t.Fatal("panic swallowed")
	}
	// The runtime is stateless; an immediate rerun must succeed.
	var n atomic.Int64
	ForDynamic(100, 4, 1, func(lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 100 {
		t.Fatalf("rerun covered %d of 100", n.Load())
	}
}

func TestFaultCtxVariantsPanicPropagates(t *testing.T) {
	ctx := context.Background()
	cases := map[string]func(){
		"static": func() {
			_ = ForStaticCtx(ctx, 100, 4, 0, func(lo, hi int) { panic("boom") })
		},
		"dynamic": func() {
			_ = ForDynamicCtx(ctx, 100, 4, 1, func(lo, hi int) { panic("boom") })
		},
		"guided": func() {
			_ = ForGuidedCtx(ctx, 100, 4, 1, func(lo, hi int) { panic("boom") })
		},
		"tasks": func() {
			_ = TasksCtx(ctx, 2, []func(threads int){func(threads int) { panic("boom") }})
		},
	}
	for name, f := range cases {
		if catchPanic(f) == nil {
			t.Fatalf("%s: panic swallowed", name)
		}
	}
}

// Cancellation: a cancelled context must stop the loop promptly even
// when each chunk is slow, and the error must be the context's.
func TestFaultCancellationStopsLoops(t *testing.T) {
	run := func(name string, f func(ctx context.Context) error) {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- f(ctx) }()
		time.Sleep(10 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err != context.Canceled {
				t.Fatalf("%s: err = %v, want context.Canceled", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: loop did not stop after cancel", name)
		}
	}
	// Each body sleeps so the loop cannot finish 1e6 items before the
	// cancel; completing within the 5s budget proves the poll works.
	run("static", func(ctx context.Context) error {
		return ForStaticCtx(ctx, 1_000_000, 4, 10, func(lo, hi int) {
			time.Sleep(100 * time.Microsecond)
		})
	})
	run("dynamic", func(ctx context.Context) error {
		return ForDynamicCtx(ctx, 1_000_000, 4, 10, func(lo, hi int) {
			time.Sleep(100 * time.Microsecond)
		})
	})
	run("guided", func(ctx context.Context) error {
		return ForGuidedCtx(ctx, 1_000_000, 4, 1, func(lo, hi int) {
			time.Sleep(100 * time.Microsecond)
		})
	})
	run("schedule", func(ctx context.Context) error {
		return Dynamic.ForCtx(ctx, 1_000_000, 4, 10, func(lo, hi int) {
			time.Sleep(100 * time.Microsecond)
		})
	})
	tasks := make([]func(threads int), 1000)
	for i := range tasks {
		tasks[i] = func(threads int) { time.Sleep(time.Millisecond) }
	}
	run("tasks", func(ctx context.Context) error {
		return TasksCtx(ctx, 2, tasks)
	})
}

func TestFaultPreCancelledCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	body := func(lo, hi int) { n.Add(int64(hi - lo)) }
	if err := ForStaticCtx(ctx, 1000, 4, 0, body); err != context.Canceled {
		t.Fatalf("static: %v", err)
	}
	if err := ForDynamicCtx(ctx, 1000, 4, 10, body); err != context.Canceled {
		t.Fatalf("dynamic: %v", err)
	}
	if err := ForGuidedCtx(ctx, 1000, 4, 1, body); err != context.Canceled {
		t.Fatalf("guided: %v", err)
	}
	if err := TasksCtx(ctx, 2, []func(threads int){func(threads int) { n.Add(1) }}); err != context.Canceled {
		t.Fatalf("tasks: %v", err)
	}
	// A pre-cancelled context may let some chunks through (workers are
	// racing the poll) but must not complete the full range.
	if n.Load() >= 3000 {
		t.Fatalf("pre-cancelled loops completed all work (%d items)", n.Load())
	}
}

func TestCtxVariantsCompleteWithoutCancel(t *testing.T) {
	// The ctx paths must compute exactly what the plain paths compute.
	ctx := context.Background()
	check := func(name string, f func(body func(lo, hi int)) error) {
		var sum atomic.Int64
		if err := f(func(lo, hi int) {
			s := int64(0)
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			sum.Add(s)
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := int64(9999 * 10000 / 2)
		if sum.Load() != want {
			t.Fatalf("%s: sum = %d, want %d", name, sum.Load(), want)
		}
	}
	check("static", func(body func(lo, hi int)) error {
		return ForStaticCtx(ctx, 10000, 3, 0, body)
	})
	check("dynamic", func(body func(lo, hi int)) error {
		return ForDynamicCtx(ctx, 10000, 3, 17, body)
	})
	check("guided", func(body func(lo, hi int)) error {
		return ForGuidedCtx(ctx, 10000, 3, 4, body)
	})
	for _, s := range []Schedule{Static, Dynamic, Guided} {
		check("schedule-"+s.String(), func(body func(lo, hi int)) error {
			return s.ForCtx(ctx, 10000, 3, 17, body)
		})
	}
	// Nil-done contexts delegate to the uncancellable fast path.
	check("background-delegation", func(body func(lo, hi int)) error {
		return ForDynamicCtx(context.Background(), 10000, 3, 17, body)
	})
}

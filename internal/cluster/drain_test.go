package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/server"
)

// drainSpec is slow enough to still be mid-run when a drain lands but
// finite enough to finish within the test budget.
func drainSpec() server.Spec {
	return server.Spec{
		Method: "bp", Iterations: 400, Batch: 1, Approx: true, Threads: 1,
		ProgressEvery: 1, CheckpointEvery: 2,
		Generator: &server.GeneratorSpec{N: 120, DBar: 4, Seed: 5},
	}
}

// getStatusAt fetches a job's status through one node, tolerating 404
// (the job may not have arrived yet).
func getStatusAt(t *testing.T, base, id string) (*server.JobStatus, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	st := &server.JobStatus{}
	_ = json.NewDecoder(resp.Body).Decode(st)
	return st, resp.StatusCode
}

// metricsBody scrapes one node's /metrics.
func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data)
}

// TestDrainHandoffAcrossNodes drains node A over POST /v1/drain while
// it is mid-solve and verifies the tentpole contract: the interrupted
// job moves to node B under the same id, resumes from its shipped
// checkpoint, and completes with result bytes identical to an
// undisturbed baseline node; A's copy is a handed_off tombstone and
// both nodes' handoff counters record the move.
func TestDrainHandoffAcrossNodes(t *testing.T) {
	baseline := startNode(t, server.Config{})
	stBase := submitOK(t, baseline.url, drainSpec())
	waitDone(t, baseline.url, stBase.ID)
	want := getResultBytes(t, baseline.url, stBase.ID)

	b := startNode(t, server.Config{Workers: 2})
	pf := NewPeerFiller(PeerFillConfig{Peers: []string{b.url}})
	if pf == nil {
		t.Fatal("NewPeerFiller returned nil with one peer")
	}
	a := startNode(t, server.Config{Workers: 1, Handoff: pf})

	st := submitOK(t, a.url, drainSpec())
	ckpt := a.mgr.Store().CheckpointPath(st.ID)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint on A after 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}

	dresp, err := http.Post(a.url+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	dbody, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/drain: status %d body %s", dresp.StatusCode, dbody)
	}
	// Repeated drains are idempotent 202s.
	dresp2, err := http.Post(a.url+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST /v1/drain: status %d", dresp2.StatusCode)
	}

	// A finalizes the local copy handed_off once the export lands.
	deadline = time.Now().Add(60 * time.Second)
	for {
		local, code := getStatusAt(t, a.url, st.ID)
		if code == http.StatusOK && local.State == server.StateDone {
			t.Skip("job finished on A before the drain landed; nothing handed off")
		}
		if code == http.StatusOK && local.State == server.StateHandedOff {
			if got, wantNode := local.HandedOffTo, normalizeBase(b.url); got != wantNode {
				t.Errorf("handedOffTo = %q, want %q", got, wantNode)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job on A still %s (code %d), want handed_off", local.State, code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// B completes the same id with byte-identical results.
	waitDone(t, b.url, st.ID)
	got := getResultBytes(t, b.url, st.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("handed-off result differs from undisturbed baseline (%d vs %d bytes)",
			len(got), len(want))
	}
	remote, _ := getStatusAt(t, b.url, st.ID)
	if remote.Resumes == 0 {
		t.Error("B ran the checkpointed job without counting a resume")
	}

	if m := metricsBody(t, a.url); !strings.Contains(m, "netalignd_handoff_sent_total 1") {
		t.Errorf("A metrics missing handoff_sent_total 1:\n%s", m)
	}
	if m := metricsBody(t, b.url); !strings.Contains(m, "netalignd_handoff_received_total 1") {
		t.Errorf("B metrics missing handoff_received_total 1:\n%s", m)
	}
}

// TestRouterHedgedRead pins the hedged-read half of the tentpole: a
// stale owner mapping (the job moved in a drain handoff) makes the
// primary 404, the router hedges to the ring successor immediately,
// relays its 200, counts the hedge and the win, and repairs the owner
// map so the next read goes straight to the right node.
func TestRouterHedgedRead(t *testing.T) {
	a := startNode(t, server.Config{})
	b := startNode(t, server.Config{})
	peers := []string{a.url, b.url}
	router, err := NewRouter(RouterConfig{
		Peers: peers, ProbeEvery: time.Hour, KeyThreads: 1,
		HedgeAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	rt := httptest.NewServer(router)
	t.Cleanup(func() {
		rt.Close()
		router.Stop()
	})

	st := submitOK(t, b.url, smallSpec())
	waitDone(t, b.url, st.ID)
	want := getResultBytes(t, b.url, st.ID)

	// Simulate the post-handoff world: the router still believes A owns
	// the job.
	router.recordOwner(st.ID, normalizeBase(a.url))

	resp, err := http.Get(rt.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got server.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || got.ID != st.ID || got.State != server.StateDone {
		t.Fatalf("hedged status read: code %d id %q state %s", resp.StatusCode, got.ID, got.State)
	}
	if router.hedged.Value() < 1 {
		t.Errorf("hedged counter = %d, want >= 1", router.hedged.Value())
	}
	if router.hedgeWins.Value() < 1 {
		t.Errorf("hedge win counter = %d, want >= 1", router.hedgeWins.Value())
	}
	router.mu.Lock()
	owner := router.owner[st.ID]
	router.mu.Unlock()
	if owner != normalizeBase(b.url) {
		t.Errorf("owner map after hedge win = %q, want %q", owner, normalizeBase(b.url))
	}

	// The result document reads byte-identically through the repaired
	// (and hedge-capable) path.
	res, err := http.Get(rt.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !bytes.Equal(data, want) {
		t.Errorf("hedged result read: code %d, %d bytes, want 200 with %d bytes",
			res.StatusCode, len(data), len(want))
	}

	for _, wantLine := range []string{"netalignrouter_hedged_total", "netalignrouter_hedge_wins_total"} {
		if m := metricsBody(t, rt.URL); !strings.Contains(m, wantLine) {
			t.Errorf("router metrics missing %s", wantLine)
		}
	}
}

// TestRouterFollowsTombstone: with hedging disabled, a status read
// that lands on a drained node's handed_off tombstone — a 200 the
// hedge race could never beat — is followed one hop to the node that
// admitted the job, the owner map is repaired, and the relayed read
// preserves the client's query string and the backend's response
// headers, so relayed and proxied reads are indistinguishable.
func TestRouterFollowsTombstone(t *testing.T) {
	const id = "00112233aabbccdd"
	var liveQuery atomic.Value
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		liveQuery.Store(r.URL.RawQuery)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Backend", "live")
		_ = json.NewEncoder(w).Encode(&server.JobStatus{ID: id, State: server.StateDone})
	}))
	defer live.Close()
	tomb := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&server.JobStatus{
			ID: id, State: server.StateHandedOff, HandedOffTo: live.URL,
		})
	}))
	defer tomb.Close()

	router, err := NewRouter(RouterConfig{
		Peers: []string{tomb.URL, live.URL}, ProbeEvery: time.Hour, KeyThreads: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := httptest.NewServer(router)
	defer rt.Close()
	// The router still believes the drained node owns the job.
	router.recordOwner(id, normalizeBase(tomb.URL))

	resp, err := http.Get(rt.URL + "/v1/jobs/" + id + "?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	var got server.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || got.State != server.StateDone {
		t.Fatalf("tombstone-followed read: code %d state %s, want 200 done", resp.StatusCode, got.State)
	}
	if h := resp.Header.Get("X-Backend"); h != "live" {
		t.Errorf("X-Backend header = %q, want %q (response headers must relay verbatim)", h, "live")
	}
	if q, _ := liveQuery.Load().(string); q != "verbose=1" {
		t.Errorf("query reaching backend = %q, want %q", q, "verbose=1")
	}
	router.mu.Lock()
	owner := router.owner[id]
	router.mu.Unlock()
	if owner != normalizeBase(live.URL) {
		t.Errorf("owner map after tombstone follow = %q, want %q", owner, normalizeBase(live.URL))
	}
}

// TestPeerFillSkipsDownPeer: a peer the health monitor has marked down
// is skipped — no probe, no timeout paid — and the skip is counted,
// for both cache fills and handoffs.
func TestPeerFillSkipsDownPeer(t *testing.T) {
	a := startNode(t, server.Config{CacheBytes: 16 << 20})
	f := NewPeerFiller(PeerFillConfig{Peers: []string{a.url}})
	if f == nil {
		t.Fatal("NewPeerFiller returned nil")
	}
	f.monitor.MarkDown(normalizeBase(a.url))

	if _, ok := f.Fill(cache.Key{}); ok {
		t.Fatal("Fill returned data from a down peer")
	}
	st := f.Stats()
	if st.Probes != 0 || st.Skips != 1 || st.Misses != 1 {
		t.Errorf("stats after skipped fill = %+v, want 0 probes / 1 skip / 1 miss", st)
	}

	h := &server.HandoffJob{ID: "00112233aabbccdd"}
	if _, err := f.Handoff(context.Background(), h); err == nil {
		t.Fatal("Handoff succeeded with every peer down")
	}
	if st := f.Stats(); st.Skips != 2 {
		t.Errorf("skips after refused handoff = %d, want 2", st.Skips)
	}
}

// TestPeerFillBudgetBounds: one admission's total fill time is bounded
// by the Budget even when a routable peer is arbitrarily slow — and
// budget expiry does not mark the peer down (it says nothing about the
// peer's health).
func TestPeerFillBudgetBounds(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer slow.Close()

	f := NewPeerFiller(PeerFillConfig{
		Peers:   []string{slow.URL},
		Budget:  100 * time.Millisecond,
		Timeout: 10 * time.Second, // per-probe timeout alone would stall
	})
	if f == nil {
		t.Fatal("NewPeerFiller returned nil")
	}
	start := time.Now()
	if _, ok := f.Fill(cache.Key{}); ok {
		t.Fatal("Fill returned data from the slow peer")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Fill took %s, budget is 100ms", elapsed)
	}
	if st := f.Stats(); st.Probes != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 probe / 1 miss", st)
	}
	if !f.monitor.IsUp(normalizeBase(slow.URL)) {
		t.Error("budget expiry marked the peer down; only transport failures may")
	}
}

package cluster

import (
	"errors"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/server"
)

// PeerFillConfig parameterizes a PeerFiller.
type PeerFillConfig struct {
	// Self is this node's own base URL as it appears in Peers; it is
	// never probed.
	Self string
	// Peers is the full cluster member list (Self may be included —
	// the ring needs every member so probe order matches the router's
	// view of the topology).
	Peers []string
	// VNodes is the ring's virtual-node count (0 = default). It must
	// match the router's setting for probe order to mirror routing
	// order, though correctness does not depend on it.
	VNodes int
	// MaxProbes bounds how many peers one miss consults, in ring
	// successor order (0 = 3). Keeps a cold cache from turning every
	// miss into a full-cluster broadcast.
	MaxProbes int
	// Timeout bounds each probe end to end (0 = 5s): peer fill is an
	// optimization, and a slow peer must not stall admission longer
	// than a recompute would take to start.
	Timeout time.Duration
}

// PeerFiller implements server.PeerFiller over the cluster's
// GET /v1/cache/{key} protocol: on a local cache miss the manager
// hands it the key, and it probes the key's ring neighbors — the
// nodes that owned or will own this key across membership changes —
// returning the first hash-validated payload. This is how results
// migrate after ring rebalances instead of being recomputed: the new
// owner's first miss pulls the entry from the old owner's cache.
type PeerFiller struct {
	ring      *Ring
	self      string
	clients   map[string]*Client
	maxProbes int

	probes, fills, rejects, misses atomic.Int64
}

var _ server.PeerFiller = (*PeerFiller)(nil)

// NewPeerFiller builds the filler; returns nil when the config leaves
// no peers to probe (so callers can pass the result straight into
// server.Config.PeerFiller — a typed nil would defeat its nil check).
func NewPeerFiller(cfg PeerFillConfig) *PeerFiller {
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	probeHTTP := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: cfg.Timeout}).DialContext,
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	self := normalizeBase(cfg.Self)
	var members []string
	seen := make(map[string]bool)
	for _, p := range cfg.Peers {
		if p = normalizeBase(p); p != "" && !seen[p] {
			seen[p] = true
			members = append(members, p)
		}
	}
	if self != "" && !seen[self] {
		members = append(members, self)
	}
	f := &PeerFiller{
		ring:      NewRing(members, cfg.VNodes),
		self:      self,
		clients:   make(map[string]*Client, len(members)),
		maxProbes: cfg.MaxProbes,
	}
	for _, p := range members {
		if p == self {
			continue
		}
		c := NewClient(p)
		c.HTTP = probeHTTP
		f.clients[c.Base] = c
	}
	if len(f.clients) == 0 {
		return nil
	}
	return f
}

// Fill probes the key's ring neighbors for a cached result, skipping
// self, stopping at the first validated payload or after MaxProbes
// peers. Invalid payloads are rejected and the probe continues — one
// corrupt peer must not poison the fill.
func (f *PeerFiller) Fill(key cache.Key) ([]byte, bool) {
	probed := 0
	for _, node := range f.ring.Successors(key[:], 0) {
		c, ok := f.clients[node]
		if !ok {
			continue // self
		}
		if probed >= f.maxProbes {
			break
		}
		probed++
		f.probes.Add(1)
		data, err := c.CacheGet(key)
		switch {
		case err == nil:
			f.fills.Add(1)
			return data, true
		case errors.Is(err, ErrPeerPayload):
			f.rejects.Add(1)
		}
	}
	f.misses.Add(1)
	return nil, false
}

// Stats snapshots the probe counters for the node's /metrics.
func (f *PeerFiller) Stats() server.PeerFillStats {
	return server.PeerFillStats{
		Probes:  f.probes.Load(),
		Fills:   f.fills.Load(),
		Rejects: f.rejects.Load(),
		Misses:  f.misses.Load(),
	}
}

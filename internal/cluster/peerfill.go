package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/server"
)

// PeerFillConfig parameterizes a PeerFiller.
type PeerFillConfig struct {
	// Self is this node's own base URL as it appears in Peers; it is
	// never probed.
	Self string
	// Peers is the full cluster member list (Self may be included —
	// the ring needs every member so probe order matches the router's
	// view of the topology).
	Peers []string
	// VNodes is the ring's virtual-node count (0 = default). It must
	// match the router's setting for probe order to mirror routing
	// order, though correctness does not depend on it.
	VNodes int
	// MaxProbes bounds how many peers one miss consults, in ring
	// successor order (0 = 3). Keeps a cold cache from turning every
	// miss into a full-cluster broadcast.
	MaxProbes int
	// Timeout bounds each individual probe (0 = 5s).
	Timeout time.Duration
	// Budget bounds one whole Fill end to end (0 = 5s): peer fill is
	// an optimization, and a string of slow peers must not stall
	// admission longer than a recompute would take to start. Without
	// it, MaxProbes sequential timeouts compound (3 dead-but-routable
	// peers × 5s held admissions ~15s).
	Budget time.Duration
	// ProbeEvery is the health monitor's background probe interval
	// (0 = 2s). The monitor lets Fill skip peers already known dead
	// instead of waiting out their dial timeout; Start launches it.
	ProbeEvery time.Duration
}

// PeerFiller implements server.PeerFiller over the cluster's
// GET /v1/cache/{key} protocol: on a local cache miss the manager
// hands it the key, and it probes the key's ring neighbors — the
// nodes that owned or will own this key across membership changes —
// returning the first hash-validated payload. This is how results
// migrate after ring rebalances instead of being recomputed: the new
// owner's first miss pulls the entry from the old owner's cache.
//
// It also implements server.HandoffSender: at drain time the manager
// hands it each queued job, and it offers the job to the ring
// successors of the job's route key over POST /v1/handoff.
//
// A small health monitor (started by Start, optimistic-up like the
// router's) tracks peer readiness: Fill and Handoff skip peers
// currently marked down — counted in Stats().Skips — and transport
// failures mark a peer down passively, so one dead peer costs one
// timeout, not one per admission.
type PeerFiller struct {
	ring      *Ring
	self      string
	clients   map[string]*Client
	monitor   *Monitor
	maxProbes int
	budget    time.Duration

	probes, fills, rejects, misses, skips atomic.Int64
}

var (
	_ server.PeerFiller    = (*PeerFiller)(nil)
	_ server.HandoffSender = (*PeerFiller)(nil)
)

// NewPeerFiller builds the filler; returns nil when the config leaves
// no peers to probe (so callers can pass the result straight into
// server.Config.PeerFiller — a typed nil would defeat its nil check).
// Call Start to launch the background health probes (and Stop on the
// way down); without Start peers still demote passively on transport
// errors but only a successful background probe brings one back.
func NewPeerFiller(cfg PeerFillConfig) *PeerFiller {
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 5 * time.Second
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 2 * time.Second
	}
	probeHTTP := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: cfg.Timeout}).DialContext,
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	self := normalizeBase(cfg.Self)
	var members []string
	seen := make(map[string]bool)
	for _, p := range cfg.Peers {
		if p = normalizeBase(p); p != "" && !seen[p] {
			seen[p] = true
			members = append(members, p)
		}
	}
	if self != "" && !seen[self] {
		members = append(members, self)
	}
	f := &PeerFiller{
		ring:      NewRing(members, cfg.VNodes),
		self:      self,
		clients:   make(map[string]*Client, len(members)),
		maxProbes: cfg.MaxProbes,
		budget:    cfg.Budget,
	}
	var peerList []string
	for _, p := range members {
		if p == self {
			continue
		}
		c := NewClient(p)
		c.HTTP = probeHTTP
		f.clients[c.Base] = c
		peerList = append(peerList, c.Base)
	}
	if len(f.clients) == 0 {
		return nil
	}
	f.monitor = NewMonitor(peerList, cfg.ProbeEvery, func(node string) error {
		return f.clients[node].Ready()
	}, nil)
	return f
}

// Start launches the background peer health probes; Stop ends them.
// Both are safe on a nil filler (the no-peers case).
func (f *PeerFiller) Start() {
	if f != nil {
		f.monitor.Start()
	}
}

// Stop ends the background health probes and waits for them.
func (f *PeerFiller) Stop() {
	if f != nil {
		f.monitor.Stop()
	}
}

// markIfTransport demotes a peer on a transport-level failure (so the
// next admission skips it instead of re-paying the timeout) — but not
// when the error is our own budget expiring, which says nothing about
// the peer.
func (f *PeerFiller) markIfTransport(ctx context.Context, node string, err error) {
	var ue *url.Error
	if errors.As(err, &ue) && ctx.Err() == nil {
		f.monitor.MarkDown(node)
	}
}

// Fill probes the key's ring neighbors for a cached result, skipping
// self and peers marked down, stopping at the first validated payload,
// after MaxProbes peers, or when the total Budget is spent — whichever
// comes first. Invalid payloads are rejected and the probe continues —
// one corrupt peer must not poison the fill.
func (f *PeerFiller) Fill(key cache.Key) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), f.budget)
	defer cancel()
	probed := 0
	for _, node := range f.ring.Successors(key[:], 0) {
		c, ok := f.clients[node]
		if !ok {
			continue // self
		}
		if probed >= f.maxProbes || ctx.Err() != nil {
			break
		}
		if !f.monitor.IsUp(node) {
			f.skips.Add(1)
			continue
		}
		probed++
		f.probes.Add(1)
		data, err := c.CacheGetCtx(ctx, key)
		switch {
		case err == nil:
			f.fills.Add(1)
			return data, true
		case errors.Is(err, ErrPeerPayload):
			f.rejects.Add(1)
		default:
			f.markIfTransport(ctx, node, err)
		}
	}
	f.misses.Add(1)
	return nil, false
}

// Stats snapshots the probe counters for the node's /metrics.
func (f *PeerFiller) Stats() server.PeerFillStats {
	return server.PeerFillStats{
		Probes:  f.probes.Load(),
		Fills:   f.fills.Load(),
		Rejects: f.rejects.Load(),
		Misses:  f.misses.Load(),
		Skips:   f.skips.Load(),
	}
}

// Handoff implements server.HandoffSender: offer a drained job to the
// ring successors of its route key, in order, skipping self and peers
// marked down, returning the first node that admits it. Any per-node
// refusal (draining, quota, pressure, transport) falls through to the
// next successor; handoff bodies can be large, so sends use the
// default streaming client (dial-bounded, ctx-bounded overall) rather
// than the filler's short probe timeout.
func (f *PeerFiller) Handoff(ctx context.Context, h *server.HandoffJob) (string, error) {
	routeKey := h.RouteKey
	if len(routeKey) == 0 {
		routeKey = []byte(h.ID)
	}
	var lastErr error
	for _, node := range f.ring.Successors(routeKey, 0) {
		if node == f.self {
			continue
		}
		if _, known := f.clients[node]; !known {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		if !f.monitor.IsUp(node) {
			f.skips.Add(1)
			continue
		}
		st, err := NewClient(node).Handoff(ctx, h)
		if err != nil {
			lastErr = err
			f.markIfTransport(ctx, node, err)
			continue
		}
		if st != nil && st.State == server.StateHandedOff {
			// The peer answered its own tombstone for this id — it gave
			// the job away in an earlier drain and does not own it.
			// Current nodes refuse such redeliveries outright
			// (ErrAlreadyHandedOff); this guards against an older peer
			// that still 202s them. Tombstoning our live copy against
			// it would leave the job terminal everywhere.
			lastErr = fmt.Errorf("cluster: %s holds only a handed_off tombstone for job %s", node, h.ID)
			continue
		}
		return node, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no peer available for handoff of job %s", h.ID)
	}
	return "", lastErr
}

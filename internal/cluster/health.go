package cluster

import (
	"sort"
	"sync"
	"time"
)

// Monitor tracks which members of a static node list are ready for
// work. Every probe interval it hits each node's /readyz in parallel;
// a node that answers 200 is up, anything else — 503 (draining,
// pressure) or a transport error — is down. Whenever the up-set
// changes, onChange fires with the new set (sorted), which is how the
// router rebalances its ring. MarkDown demotes a node immediately
// when the router catches a transport error mid-request, so failover
// does not wait out a probe interval; the next successful probe
// brings the node back.
//
// Nodes start optimistically up: a router must be able to forward
// before its first probe round completes.
type Monitor struct {
	nodes    []string
	probe    func(node string) error
	every    time.Duration
	onChange func(up []string)

	mu sync.Mutex
	up map[string]bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMonitor builds a monitor over nodes. probe is typically
// (*Client).Ready bound per node; onChange may be nil.
func NewMonitor(nodes []string, every time.Duration, probe func(node string) error, onChange func(up []string)) *Monitor {
	if every <= 0 {
		every = time.Second
	}
	m := &Monitor{
		nodes:    append([]string(nil), nodes...),
		probe:    probe,
		every:    every,
		onChange: onChange,
		up:       make(map[string]bool, len(nodes)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, n := range nodes {
		m.up[n] = true
	}
	return m
}

// Start launches the probe loop; Stop ends it.
func (m *Monitor) Start() {
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(m.every)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.probeAll()
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Idempotent.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// probeAll checks every node in parallel and applies the results as
// one membership transition.
func (m *Monitor) probeAll() {
	results := make([]bool, len(m.nodes))
	var wg sync.WaitGroup
	for i, n := range m.nodes {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			results[i] = m.probe(n) == nil
		}(i, n)
	}
	wg.Wait()
	m.mu.Lock()
	changed := false
	for i, n := range m.nodes {
		if m.up[n] != results[i] {
			m.up[n] = results[i]
			changed = true
		}
	}
	var up []string
	if changed {
		up = m.upLocked()
	}
	m.mu.Unlock()
	if changed && m.onChange != nil {
		m.onChange(up)
	}
}

// MarkDown demotes one node immediately (a request to it just failed
// at the transport level); no-op when it is already down.
func (m *Monitor) MarkDown(node string) {
	m.mu.Lock()
	was, known := m.up[node]
	if !known || !was {
		m.mu.Unlock()
		return
	}
	m.up[node] = false
	up := m.upLocked()
	m.mu.Unlock()
	if m.onChange != nil {
		m.onChange(up)
	}
}

// upLocked snapshots the sorted up-set; callers hold m.mu.
func (m *Monitor) upLocked() []string {
	out := make([]string, 0, len(m.up))
	for n, ok := range m.up {
		if ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Up returns the sorted list of nodes currently considered ready.
func (m *Monitor) Up() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.upLocked()
}

// IsUp reports one node's current state.
func (m *Monitor) IsUp(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.up[node]
}

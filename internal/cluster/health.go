package cluster

import (
	"sort"
	"sync"
	"time"
)

// Monitor tracks which members of a static node list are ready for
// work. Every probe interval it hits each node's /readyz in parallel;
// a node that answers 200 is up, anything else — 503 (draining,
// pressure) or a transport error — is down. Whenever the up-set
// changes, onChange fires with the new set (sorted), which is how the
// router rebalances its ring. MarkDown demotes a node immediately
// when the router catches a transport error mid-request, so failover
// does not wait out a probe interval; the next successful probe
// brings the node back.
//
// Nodes start optimistically up: a router must be able to forward
// before its first probe round completes.
//
// Two orderings are load-bearing here:
//
//   - onChange delivery is serialized by a generation counter: every
//     membership transition is stamped under mu, and deliver refuses
//     to hand a set to onChange after a newer generation has already
//     been delivered. Without this, two concurrent transitions (say a
//     MarkDown racing a probe round) could invoke onChange out of
//     order and install a permanently stale ring in the receiver.
//   - MarkDown beats an in-flight probe: probeAll snapshots each
//     node's mark counter before probing and discards a successful
//     probe result whose node was marked down in the meantime — the
//     transport failure behind the MarkDown is fresher evidence than
//     the probe's earlier 200. The node stays down until the next
//     probe round re-confirms it.
type Monitor struct {
	nodes    []string
	probe    func(node string) error
	every    time.Duration
	onChange func(up []string)

	mu sync.Mutex
	up map[string]bool
	// marks counts MarkDown calls per node; probeAll compares it
	// against a pre-probe snapshot to detect a demotion that landed
	// while the probe was in flight.
	marks map[string]uint64
	// gen stamps membership transitions; delivered (under deliverMu)
	// is the newest generation handed to onChange.
	gen uint64

	deliverMu sync.Mutex
	delivered uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMonitor builds a monitor over nodes. probe is typically
// (*Client).Ready bound per node; onChange may be nil.
func NewMonitor(nodes []string, every time.Duration, probe func(node string) error, onChange func(up []string)) *Monitor {
	if every <= 0 {
		every = time.Second
	}
	m := &Monitor{
		nodes:    append([]string(nil), nodes...),
		probe:    probe,
		every:    every,
		onChange: onChange,
		up:       make(map[string]bool, len(nodes)),
		marks:    make(map[string]uint64, len(nodes)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, n := range nodes {
		m.up[n] = true
	}
	return m
}

// Start launches the probe loop; Stop ends it.
func (m *Monitor) Start() {
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(m.every)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.probeAll()
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Idempotent.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// probeAll checks every node in parallel and applies the results as
// one membership transition. A successful probe is discarded when a
// MarkDown for that node landed after the probe round began (its mark
// counter moved): the demotion is the fresher signal, and applying
// the stale success would resurrect a just-failed node for a full
// probe interval.
func (m *Monitor) probeAll() {
	m.mu.Lock()
	snap := make(map[string]uint64, len(m.nodes))
	for _, n := range m.nodes {
		snap[n] = m.marks[n]
	}
	m.mu.Unlock()
	results := make([]bool, len(m.nodes))
	var wg sync.WaitGroup
	for i, n := range m.nodes {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			results[i] = m.probe(n) == nil
		}(i, n)
	}
	wg.Wait()
	m.mu.Lock()
	changed := false
	for i, n := range m.nodes {
		res := results[i]
		if res && m.marks[n] != snap[n] {
			// Marked down while this probe was in flight; keep it down.
			continue
		}
		if m.up[n] != res {
			m.up[n] = res
			changed = true
		}
	}
	var up []string
	var gen uint64
	if changed {
		m.gen++
		gen = m.gen
		up = m.upLocked()
	}
	m.mu.Unlock()
	if changed {
		m.deliver(gen, up)
	}
}

// MarkDown demotes one node immediately (a request to it just failed
// at the transport level). Even when the node is already down, the
// call bumps its mark counter so an in-flight probe's stale success
// cannot resurrect it.
func (m *Monitor) MarkDown(node string) {
	m.mu.Lock()
	was, known := m.up[node]
	if !known {
		m.mu.Unlock()
		return
	}
	m.marks[node]++
	if !was {
		m.mu.Unlock()
		return
	}
	m.up[node] = false
	m.gen++
	gen := m.gen
	up := m.upLocked()
	m.mu.Unlock()
	m.deliver(gen, up)
}

// deliver hands one membership generation to onChange, dropping it if
// a newer generation has already been delivered. The generation is
// assigned under mu together with the transition itself, so "newer
// generation" and "newer up-set" coincide; deliverMu only serializes
// the callback without holding up state transitions.
func (m *Monitor) deliver(gen uint64, up []string) {
	if m.onChange == nil {
		return
	}
	m.deliverMu.Lock()
	defer m.deliverMu.Unlock()
	if gen <= m.delivered {
		return
	}
	m.delivered = gen
	m.onChange(up)
}

// upLocked snapshots the sorted up-set; callers hold m.mu.
func (m *Monitor) upLocked() []string {
	out := make([]string, 0, len(m.up))
	for n, ok := range m.up {
		if ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Up returns the sorted list of nodes currently considered ready.
func (m *Monitor) Up() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.upLocked()
}

// IsUp reports one node's current state.
func (m *Monitor) IsUp(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.up[node]
}

package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/server"
)

// ErrPeerPayload reports a GET /v1/cache/{key} response whose body
// did not match its SHA-256 header — a torn proxy, a corrupted disk
// entry the peer failed to detect, or a misbehaving peer. The payload
// is discarded; peer fill falls through to the next neighbor or to a
// local solve.
var ErrPeerPayload = errors.New("cluster: peer cache payload failed hash validation")

// defaultHTTPClient backs Clients built without an explicit one. No
// overall request timeout (result bodies stream, and a submit may
// build a large problem server-side), but connection establishment is
// bounded so a dead node fails over in seconds, not at the kernel's
// leisure.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Client drives one remote netalignd node over its HTTP API. It
// implements server.Backend, so everything written against a local
// Manager — the HTTP handlers, the router, the tests — works
// unchanged against a remote node; API error envelopes are mapped
// back to the same sentinel errors the Manager returns, preserving
// errors.Is behavior across the transport.
type Client struct {
	// Base is the node's base URL, e.g. "http://127.0.0.1:7070".
	Base string
	// HTTP overrides the transport (nil = a shared default with a 2s
	// dial timeout and no overall deadline).
	HTTP *http.Client
}

var _ server.Backend = (*Client)(nil)

// normalizeBase canonicalizes a node base URL (trailing slash
// trimmed) so ring members, client map keys and owner records all use
// one spelling.
func normalizeBase(base string) string { return strings.TrimRight(base, "/") }

// NewClient builds a client for one node's base URL (trailing slash
// trimmed).
func NewClient(base string) *Client {
	return &Client{Base: normalizeBase(base)}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// errorEnvelope mirrors the server's JSON error body.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// apiError drains a non-2xx response and maps its error code back to
// the server package's sentinel errors.
func (c *Client) apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env errorEnvelope
	_ = json.Unmarshal(body, &env)
	msg := env.Error.Message
	if msg == "" {
		msg = strings.TrimSpace(string(body))
	}
	var sentinel error
	switch env.Error.Code {
	case "not_found":
		sentinel = server.ErrNotFound
	case "bad_request":
		sentinel = server.ErrBadSpec
	case "queue_full":
		sentinel = server.ErrQueueFull
	case "tenant_quota":
		sentinel = server.ErrTenantQuota
	case "overloaded":
		sentinel = server.ErrOverloaded
	case "disk_pressure":
		sentinel = server.ErrDiskPressure
	case "draining":
		sentinel = server.ErrDraining
	case "not_quarantined":
		sentinel = server.ErrNotQuarantined
	case "not_ready":
		sentinel = server.ErrNotReady
	case "cache_miss":
		sentinel = fs.ErrNotExist
	case "handed_off":
		sentinel = server.ErrAlreadyHandedOff
	}
	if sentinel != nil {
		return fmt.Errorf("%w: %s (%s)", sentinel, msg, c.Base)
	}
	return fmt.Errorf("cluster: %s: http %d: %s", c.Base, resp.StatusCode, msg)
}

// getJSON issues a GET and decodes a 200 response into out.
func (c *Client) getJSON(path string, out any) error {
	resp, err := c.http().Get(c.Base + path)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts one job spec and returns its initial status snapshot.
func (c *Client) Submit(spec server.Spec) (*server.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode spec: %w", err)
	}
	resp, err := c.http().Post(c.Base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, c.apiError(resp)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("cluster: %s: decode submit response: %w", c.Base, err)
	}
	return &st, nil
}

// Status fetches one job's status snapshot.
func (c *Client) Status(id string) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.getJSON("/v1/jobs/"+url.PathEscape(id), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches job statuses, optionally filtered by state, tenant
// and class (composed server-side exactly as LocalBackend composes
// them).
func (c *Client) List(f server.ListFilter) ([]*server.JobStatus, error) {
	q := url.Values{}
	if f.State != "" {
		q.Set("state", string(f.State))
	}
	if f.Tenant != "" {
		q.Set("tenant", f.Tenant)
	}
	if f.Class != "" {
		q.Set("class", f.Class)
	}
	path := "/v1/jobs"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var list []*server.JobStatus
	if err := c.getJSON(path, &list); err != nil {
		return nil, err
	}
	return list, nil
}

// Cancel requests cooperative cancellation.
func (c *Client) Cancel(id string) (*server.JobStatus, error) {
	req, err := http.NewRequest(http.MethodDelete, c.Base+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Requeue puts a quarantined job back in its node's run queue.
func (c *Client) Requeue(id string) (*server.JobStatus, error) {
	resp, err := c.http().Post(c.Base+"/v1/jobs/"+url.PathEscape(id)+"/requeue", "application/json", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// OpenResult opens a finished job's result document for streaming.
// The caller must Close the reader. A 404 maps to both ErrNotFound
// and fs.ErrNotExist (the remote envelope cannot distinguish "job
// unknown" from "terminal without a result"; callers that care check
// Status first, as the HTTP handlers do).
func (c *Client) OpenResult(id string) (io.ReadCloser, int64, error) {
	resp, err := c.http().Get(c.Base + "/v1/jobs/" + url.PathEscape(id) + "/result")
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp.Body, resp.ContentLength, nil
	case http.StatusNotFound:
		err := c.apiError(resp)
		resp.Body.Close()
		return nil, 0, fmt.Errorf("%w: %w", fs.ErrNotExist, err)
	default:
		err := c.apiError(resp)
		resp.Body.Close()
		return nil, 0, err
	}
}

// Ready probes the node's /readyz: nil when it accepts work, the
// matching sentinel (ErrDraining, ErrOverloaded, ErrDiskPressure)
// when it refuses, a transport error when it is unreachable.
func (c *Client) Ready() error {
	resp, err := c.http().Get(c.Base + "/readyz")
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	var status struct {
		Status string `json:"status"`
	}
	_ = json.Unmarshal(body, &status)
	switch status.Status {
	case "draining":
		return fmt.Errorf("%w (%s)", server.ErrDraining, c.Base)
	case "memory_pressure":
		return fmt.Errorf("%w (%s)", server.ErrOverloaded, c.Base)
	case "disk_pressure":
		return fmt.Errorf("%w (%s)", server.ErrDiskPressure, c.Base)
	}
	return fmt.Errorf("cluster: %s: not ready: http %d", c.Base, resp.StatusCode)
}

// CacheGet probes the node's result cache for a content address and
// validates the payload against its SHA-256 header. fs.ErrNotExist
// means the peer has no entry; ErrPeerPayload means it served bytes
// that failed validation.
func (c *Client) CacheGet(key cache.Key) ([]byte, error) {
	return c.CacheGetCtx(context.Background(), key)
}

// CacheGetCtx is CacheGet bounded by a context — the peer filler's
// total-budget probes and the router's hedged cache reads cancel
// stragglers through it.
func (c *Client) CacheGetCtx(ctx context.Context, key cache.Key) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/cache/"+key.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: read cache payload: %w", c.Base, err)
	}
	sum := sha256.Sum256(data)
	if want := resp.Header.Get(server.CacheSHA256Header); want != hex.EncodeToString(sum[:]) {
		return nil, fmt.Errorf("%w (%s, key %s)", ErrPeerPayload, c.Base, key)
	}
	return data, nil
}

// Handoff offers one drained job to this node via POST /v1/handoff.
// A 202 means the node admitted the job (under its original id) and
// returns its initial status; refusals map back to the same sentinel
// errors the local AdmitHandoff would produce, so the sender can tell
// "try the next successor" (quota, pressure, draining) from
// "malformed" (ErrBadSpec).
func (c *Client) Handoff(ctx context.Context, h *server.HandoffJob) (*server.JobStatus, error) {
	body, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode handoff: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/handoff", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, c.apiError(resp)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("cluster: %s: decode handoff response: %w", c.Base, err)
	}
	return &st, nil
}

// Drain asks the node to begin a proactive drain (POST /v1/drain):
// stop accepting work and hand queued jobs to ring successors.
func (c *Client) Drain() error {
	resp, err := c.http().Post(c.Base+"/v1/drain", "application/json", nil)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return c.apiError(resp)
	}
	return nil
}

// Metrics fetches the node's manager snapshot via /debug/vars.
func (c *Client) Metrics() (*server.Metrics, error) {
	var vars struct {
		Netalignd *server.Metrics `json:"netalignd"`
	}
	if err := c.getJSON("/debug/vars", &vars); err != nil {
		return nil, err
	}
	if vars.Netalignd == nil {
		return nil, fmt.Errorf("cluster: %s: /debug/vars has no netalignd snapshot", c.Base)
	}
	return vars.Netalignd, nil
}

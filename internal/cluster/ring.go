// Package cluster turns single-node netalignd processes into a
// horizontally scalable service. Three pieces:
//
//   - Ring: a consistent-hash ring with virtual nodes that maps
//     content addresses (cache.Key, the SHA-256 of a canonical
//     problem plus its option fingerprint) onto nodes, so identical
//     submissions always land where their cached result — or
//     in-flight single-flight execution — already lives.
//   - Router: a thin HTTP proxy over the netalignd /v1 API that
//     hashes each submission onto its owning node, fails over to ring
//     successors when the owner refuses or is unreachable, and
//     forwards per-job routes (status, result, cancel, SSE events) to
//     wherever the job was admitted.
//   - PeerFiller: the node-side half of peer cache fill — on a local
//     cache miss a node probes its key's ring neighbors via
//     GET /v1/cache/{key} before solving, so results migrate after
//     ring changes instead of being recomputed.
//
// Membership is static (a -peers list) with per-node /readyz health
// probes; a node that stops answering is removed from the ring and
// its keys drain to their successors until it recovers.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// defaultVNodes is the virtual-node count per physical node. 64
// points per node keeps the expected ownership imbalance of a small
// cluster within a few percent while the ring stays tiny (a few KB).
const defaultVNodes = 64

// point is one virtual node: a position on the 64-bit ring and the
// physical node it stands for.
type point struct {
	pos  uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Placement is a
// pure function of the member set — FNV-1a over "node#vnode" for the
// points, FNV-1a over the key bytes for lookups — so every process
// that agrees on the member list agrees on every key's owner, across
// restarts and across machines, with no coordination.
//
// All methods are safe for concurrent use; membership changes rebuild
// the point slice under a write lock.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point
	member map[string]bool
}

// NewRing builds a ring over the given nodes. vnodes <= 0 selects the
// default virtual-node count.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{vnodes: vnodes, member: make(map[string]bool)}
	for _, n := range nodes {
		r.member[n] = true
	}
	r.rebuildLocked()
	return r
}

// mix64 is the MurmurHash3 finalizer. Raw FNV-1a of short, similar
// strings ("node#0", "node#1", ...) has poor high-bit avalanche, which
// leaves the virtual-node points clustered and the ring badly
// imbalanced (measured: one node of four owning 60% of the arc). The
// finalizer's full-width diffusion restores a uniform spread.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashPoint positions one virtual node on the ring.
func hashPoint(node string, vnode int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{'#'})
	_, _ = h.Write([]byte(strconv.Itoa(vnode)))
	return mix64(h.Sum64())
}

// hashKey positions a key on the ring.
func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(key)
	return mix64(h.Sum64())
}

// rebuildLocked regenerates the sorted point slice from the member
// set. Callers hold r.mu for writing.
func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	for n := range r.member {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{pos: hashPoint(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Tie-break identical positions by node name so the ring is a
		// pure function of the member set even under hash collisions.
		return r.points[i].node < r.points[j].node
	})
}

// SetNodes replaces the member set (the health monitor's rebalance
// path). Returns true when membership actually changed.
func (r *Ring) SetNodes(nodes []string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(nodes) == len(r.member) {
		same := true
		for _, n := range nodes {
			if !r.member[n] {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	r.member = make(map[string]bool, len(nodes))
	for _, n := range nodes {
		r.member[n] = true
	}
	r.rebuildLocked()
	return true
}

// Add inserts a node; no-op when already present. Returns true when
// membership changed.
func (r *Ring) Add(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[node] {
		return false
	}
	r.member[node] = true
	r.rebuildLocked()
	return true
}

// Remove deletes a node; no-op when absent. Returns true when
// membership changed.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[node] {
		return false
	}
	delete(r.member, node)
	r.rebuildLocked()
	return true
}

// Nodes returns the member set, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for n := range r.member {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Owner returns the node owning a key: the first virtual node at or
// clockwise after the key's position. ok is false on an empty ring.
func (r *Ring) Owner(key []byte) (node string, ok bool) {
	succ := r.Successors(key, 1)
	if len(succ) == 0 {
		return "", false
	}
	return succ[0], true
}

// Successors returns up to n distinct nodes in ring order starting at
// the key's owner — the failover (and peer-fill probe) order. n <= 0
// means every member.
func (r *Ring) Successors(key []byte, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.member) {
		n = len(r.member)
	}
	pos := hashKey(key)
	// First point at or after pos, wrapping at the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		if node := r.points[i].node; !seen[node] {
			seen[node] = true
			out = append(out, node)
			if len(out) == n {
				break
			}
		}
		i++
	}
	return out
}

// String renders a small diagnostic summary.
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("ring(%d nodes, %d vnodes each)", len(r.member), r.vnodes)
}

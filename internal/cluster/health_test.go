package cluster

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// A MarkDown that lands while a probe round is in flight must win over
// the probe's earlier success: the transport failure behind the mark
// is fresher evidence than the 200 collected before it. The probe
// function itself performs the MarkDown, which lands it deterministically
// in the window between probe collection and result application.
func TestMonitorMarkDownDuringProbe(t *testing.T) {
	var m *Monitor
	marked := false
	probe := func(node string) error {
		if node == "b" && !marked {
			// Simulates a router request failing against b while the
			// health probe (which succeeded a moment earlier) is still
			// in flight.
			marked = true
			m.MarkDown("b")
		}
		return nil
	}
	m = NewMonitor([]string{"a", "b"}, time.Hour, probe, nil)
	m.probeAll()
	if m.IsUp("b") {
		t.Fatal("node b resurrected: probe success applied over a later MarkDown")
	}
	if !m.IsUp("a") {
		t.Fatal("node a should be up")
	}
	// The next full probe round (no concurrent mark) brings b back.
	m.probeAll()
	if !m.IsUp("b") {
		t.Fatal("node b should recover on the next clean probe round")
	}
}

// Racing MarkDown against probeAll must leave the receiver's last
// delivered up-set equal to the monitor's final state: out-of-order
// onChange delivery would install a permanently stale ring. Run with
// -race.
func TestMonitorDeliverySerializedUnderRace(t *testing.T) {
	var mu sync.Mutex
	var last []string
	onChange := func(up []string) {
		mu.Lock()
		last = append([]string(nil), up...)
		mu.Unlock()
	}
	probeErr := errors.New("down")
	var failB sync.Map
	probe := func(node string) error {
		if node == "b" {
			if _, bad := failB.Load("fail"); bad {
				return probeErr
			}
		}
		return nil
	}
	m := NewMonitor([]string{"a", "b", "c"}, time.Hour, probe, onChange)

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.probeAll()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			m.MarkDown("b")
			if i%3 == 0 {
				failB.Store("fail", true)
			} else {
				failB.Delete("fail")
			}
			m.MarkDown("c")
		}
	}()
	wg.Wait()

	// Quiesce with one final deterministic round.
	failB.Delete("fail")
	m.probeAll()

	want := m.Up()
	mu.Lock()
	got := append([]string(nil), last...)
	mu.Unlock()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("last delivered up-set %v != monitor state %v (stale delivery)", got, want)
	}
}

package cluster

import (
	"fmt"
	"testing"
)

// keyBytes makes a distinct deterministic key per index.
func keyBytes(i int) []byte {
	return []byte(fmt.Sprintf("key-%d", i))
}

// TestRingDeterministic pins the core routing contract: every process
// that agrees on the member set agrees on every key's owner — across
// ring instances (restarts) and insertion orders.
func TestRingDeterministic(t *testing.T) {
	nodes := []string{"http://a:7070", "http://b:7070", "http://c:7070"}
	r1 := NewRing(nodes, 0)
	r2 := NewRing([]string{nodes[2], nodes[0], nodes[1]}, 0)
	for i := 0; i < 1000; i++ {
		key := keyBytes(i)
		o1, ok1 := r1.Owner(key)
		o2, ok2 := r2.Owner(key)
		if !ok1 || !ok2 {
			t.Fatalf("key %d: owner missing (ok1=%v ok2=%v)", i, ok1, ok2)
		}
		if o1 != o2 {
			t.Fatalf("key %d: owner diverges across instances: %s vs %s", i, o1, o2)
		}
	}
}

// TestRingSuccessorsDistinct verifies failover order: the successor
// list starts at the owner, never repeats a node, and covers the whole
// membership when asked for everything.
func TestRingSuccessorsDistinct(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := NewRing(nodes, 0)
	for i := 0; i < 200; i++ {
		key := keyBytes(i)
		succ := r.Successors(key, 0)
		if len(succ) != len(nodes) {
			t.Fatalf("key %d: %d successors, want %d", i, len(succ), len(nodes))
		}
		owner, _ := r.Owner(key)
		if succ[0] != owner {
			t.Fatalf("key %d: successors[0]=%s, owner=%s", i, succ[0], owner)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("key %d: duplicate successor %s", i, n)
			}
			seen[n] = true
		}
	}
	if got := r.Successors(keyBytes(0), 2); len(got) != 2 {
		t.Fatalf("Successors(n=2) returned %d nodes", len(got))
	}
}

// TestRingBoundedChurn is the point of consistent hashing: removing
// one of k nodes must move only that node's keys (~1/k of the space),
// and every moved key must land on a surviving node. Re-adding the
// node must restore the original placement exactly.
func TestRingBoundedChurn(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := NewRing(nodes, 0)
	const keys = 4000

	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Owner(keyBytes(i))
	}

	const victim = "n3"
	if !r.Remove(victim) {
		t.Fatal("Remove returned false for a member")
	}
	moved := 0
	for i := 0; i < keys; i++ {
		after, _ := r.Owner(keyBytes(i))
		if before[i] == victim {
			if after == victim {
				t.Fatalf("key %d still owned by removed node", i)
			}
			continue // expected to move
		}
		if after != before[i] {
			moved++
		}
	}
	// Keys not owned by the victim must not move at all: the victim's
	// points vanish, every other point is untouched.
	if moved != 0 {
		t.Errorf("%d keys owned by surviving nodes moved on a remove; consistent hashing should move none", moved)
	}

	if !r.Add(victim) {
		t.Fatal("Add returned false for a non-member")
	}
	for i := 0; i < keys; i++ {
		after, _ := r.Owner(keyBytes(i))
		if after != before[i] {
			t.Fatalf("key %d: owner %s after re-add, want original %s", i, after, before[i])
		}
	}
}

// TestRingBalance sanity-checks the virtual-node count: with the
// default vnodes, no node of a 4-node ring should own a wildly
// disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := NewRing(nodes, 0)
	const keys = 8000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(keyBytes(i))
		counts[o]++
	}
	want := keys / len(nodes)
	for n, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("node %s owns %d of %d keys (expected near %d): ring badly imbalanced", n, c, keys, want)
		}
	}
}

// TestRingSetNodes covers the monitor rebalance path: SetNodes reports
// change only when membership actually changed, and an empty up-set
// leaves the ring unroutable rather than panicking.
func TestRingSetNodes(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 8)
	if r.SetNodes([]string{"b", "a"}) {
		t.Error("SetNodes with identical membership reported a change")
	}
	if !r.SetNodes([]string{"a"}) {
		t.Error("SetNodes dropping a node reported no change")
	}
	if o, ok := r.Owner([]byte("x")); !ok || o != "a" {
		t.Errorf("single-node ring owner = %q, %v", o, ok)
	}
	if !r.SetNodes(nil) {
		t.Error("SetNodes to empty reported no change")
	}
	if _, ok := r.Owner([]byte("x")); ok {
		t.Error("empty ring returned an owner")
	}
	if got := r.Successors([]byte("x"), 0); got != nil {
		t.Errorf("empty ring returned successors %v", got)
	}
}

package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/server"
)

// testNode is one in-process netalignd: a real Manager behind a real
// HTTP server.
type testNode struct {
	url string
	mgr *server.Manager
	ts  *httptest.Server
}

// startNode boots a backend over a fresh spool. Callers that shut a
// node down mid-test call n.kill(); cleanup tolerates both orders.
func startNode(t *testing.T, cfg server.Config) *testNode {
	t.Helper()
	if cfg.Spool == "" {
		cfg.Spool = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	mgr, err := server.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewServer(mgr))
	n := &testNode{url: ts.URL, mgr: mgr, ts: ts}
	t.Cleanup(n.kill)
	return n
}

// kill stops the node: HTTP first, then a bounded drain. Idempotent.
func (n *testNode) kill() {
	n.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = n.mgr.Shutdown(ctx)
}

// smallSpec is a quick deterministic generator job, identical across
// nodes so its cache key is too.
func smallSpec() server.Spec {
	return server.Spec{
		Method: "bp", Iterations: 20, Approx: true, Threads: 1,
		ProgressEvery: 1,
		Generator:     &server.GeneratorSpec{N: 40, DBar: 3, Seed: 7},
	}
}

// postSpec submits a spec to base and returns the response and body.
func postSpec(t *testing.T, base string, spec server.Spec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

// submitOK submits and asserts a 202, returning the job status.
func submitOK(t *testing.T, base string, spec server.Spec) *server.JobStatus {
	t.Helper()
	resp, body := postSpec(t, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit to %s: status %d, body %s", base, resp.StatusCode, body)
	}
	st := &server.JobStatus{}
	if err := json.Unmarshal(body, st); err != nil {
		t.Fatalf("submit: %v in %s", err, body)
	}
	return st
}

// waitDone polls a job through base until it completes.
func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case st.State == server.StateDone:
			return
		case st.State.Terminal():
			t.Fatalf("job %s reached %s (error %q), want done", id, st.State, st.Error)
		case time.Now().After(deadline):
			t.Fatalf("job %s still %s, want done", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getResultBytes fetches a job's raw result document.
func getResultBytes(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d body %s", id, resp.StatusCode, data)
	}
	return data
}

// findOwner returns which of the nodes holds the job.
func findOwner(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, n := range nodes {
		if _, err := NewClient(n.url).Status(id); err == nil {
			return n
		}
	}
	t.Fatalf("job %s not found on any node", id)
	return nil
}

// startRouter builds and starts a router over the nodes with an
// effectively disabled probe ticker, so membership changes in tests
// come only from deterministic MarkDown transitions.
func startRouter(t *testing.T, nodes ...*testNode) (*Router, *httptest.Server) {
	t.Helper()
	peers := make([]string, len(nodes))
	for i, n := range nodes {
		peers[i] = n.url
	}
	router, err := NewRouter(RouterConfig{Peers: peers, ProbeEvery: time.Hour, KeyThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	ts := httptest.NewServer(router)
	t.Cleanup(func() {
		ts.Close()
		router.Stop()
	})
	return router, ts
}

// TestRouterRoutingAndCacheAffinity pins the tentpole contract end to
// end: identical submissions land on one owner; the second one is a
// cache hit there (no recompute anywhere); results read back
// byte-identically through the router; the other node never sees the
// key.
func TestRouterRoutingAndCacheAffinity(t *testing.T) {
	a := startNode(t, server.Config{CacheBytes: 16 << 20})
	b := startNode(t, server.Config{CacheBytes: 16 << 20})
	_, rt := startRouter(t, a, b)

	st1 := submitOK(t, rt.URL, smallSpec())
	waitDone(t, rt.URL, st1.ID)
	res1 := getResultBytes(t, rt.URL, st1.ID)

	st2 := submitOK(t, rt.URL, smallSpec())
	waitDone(t, rt.URL, st2.ID)
	res2 := getResultBytes(t, rt.URL, st2.ID)
	if !bytes.Equal(res1, res2) {
		t.Fatal("identical submissions returned different result documents")
	}

	owner := findOwner(t, []*testNode{a, b}, st1.ID)
	other := a
	if owner == a {
		other = b
	}
	om := owner.mgr.Snapshot()
	if om.Submitted != 2 {
		t.Errorf("owner submitted = %d, want 2 (both copies routed to one node)", om.Submitted)
	}
	if om.CacheHits < 1 {
		t.Errorf("owner cache hits = %d, want >= 1 (second submission must hit)", om.CacheHits)
	}
	if sm := other.mgr.Snapshot(); sm.Submitted != 0 {
		t.Errorf("non-owner submitted = %d, want 0", sm.Submitted)
	}

	// The job index merges across nodes through the router.
	resp, err := http.Get(rt.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []*server.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Errorf("router list returned %d jobs, want 2", len(list))
	}

	// SSE proxies through: a done job's stream replays its state.
	eresp, err := http.Get(rt.URL + "/v1/jobs/" + st1.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(eresp.Body)
	eresp.Body.Close()
	if !strings.Contains(string(events), "event: state") {
		t.Errorf("proxied SSE stream missing state event:\n%s", events)
	}

	// The cached document is addressable through the router too.
	spec := smallSpec()
	key, _, err := spec.CacheKey(1)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.Get(rt.URL + "/v1/cache/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("router cache get: status %d body %s", cresp.StatusCode, cached)
	}
	if !bytes.Equal(cached, res1) {
		t.Error("router cache payload differs from the job's result document")
	}
}

// TestRouterFailover kills a job's owner and verifies the ring heals:
// the same submission reroutes to the survivor, recomputes, and yields
// a byte-identical result document; the router's failover and
// rebalance counters record the event.
func TestRouterFailover(t *testing.T) {
	a := startNode(t, server.Config{CacheBytes: 16 << 20})
	b := startNode(t, server.Config{CacheBytes: 16 << 20})
	router, rt := startRouter(t, a, b)

	st1 := submitOK(t, rt.URL, smallSpec())
	waitDone(t, rt.URL, st1.ID)
	res1 := getResultBytes(t, rt.URL, st1.ID)

	owner := findOwner(t, []*testNode{a, b}, st1.ID)
	survivor := a
	if owner == a {
		survivor = b
	}
	owner.kill()

	// Resubmit: the dead owner fails at the transport level, the router
	// marks it down (one ring rebalance) and the successor takes the
	// job.
	st2 := submitOK(t, rt.URL, smallSpec())
	waitDone(t, rt.URL, st2.ID)
	res2 := getResultBytes(t, rt.URL, st2.ID)
	if !bytes.Equal(res1, res2) {
		t.Fatal("failover recompute produced a different result document")
	}
	if _, err := NewClient(survivor.url).Status(st2.ID); err != nil {
		t.Errorf("rerouted job not on the survivor: %v", err)
	}
	if router.failovers.Value() < 1 {
		t.Errorf("failover counter = %d, want >= 1", router.failovers.Value())
	}
	if router.rebalances.Value() < 1 {
		t.Errorf("rebalance counter = %d, want >= 1", router.rebalances.Value())
	}

	// /readyz stays up on one node; metrics reflect the down node.
	rresp, err := http.Get(rt.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Errorf("router readyz with one survivor: %d, want 200", rresp.StatusCode)
	}
	mresp, err := http.Get(rt.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"netalignrouter_failover_total 1",
		"netalignrouter_ring_rebalance_total 1",
		"netalignrouter_cluster_jobs_submitted_total",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("router metrics missing %q:\n%s", want, mbody)
		}
	}
}

// TestPeerCacheFill pins the peer-fill path: node B misses locally,
// pulls A's cached document over GET /v1/cache/{key}, serves it
// byte-identically without solving, and both sides' counters agree.
func TestPeerCacheFill(t *testing.T) {
	// A's memory tier gets a 1-byte budget: every entry is evicted to
	// the disk tier immediately, so B's fill below necessarily crosses
	// A's disk path, not just its memory LRU.
	aSpool := t.TempDir()
	a := startNode(t, server.Config{
		Spool: aSpool, CacheBytes: 1, CacheDir: aSpool + "/cache",
	})
	stA := submitOK(t, a.url, smallSpec())
	waitDone(t, a.url, stA.ID)
	resA := getResultBytes(t, a.url, stA.ID)
	hitsBefore := a.mgr.Snapshot().CacheHits

	filler := NewPeerFiller(PeerFillConfig{Peers: []string{a.url}})
	if filler == nil {
		t.Fatal("NewPeerFiller returned nil with one peer")
	}
	b := startNode(t, server.Config{CacheBytes: 16 << 20, PeerFiller: filler})

	stB := submitOK(t, b.url, smallSpec())
	// A peer-filled admit completes synchronously: the 202 body already
	// carries a done job, because no solve was ever queued.
	if stB.State != server.StateDone {
		t.Errorf("peer-filled submit returned state %s, want done at admission", stB.State)
	}
	waitDone(t, b.url, stB.ID)
	resB := getResultBytes(t, b.url, stB.ID)
	if !bytes.Equal(resA, resB) {
		t.Fatal("peer-filled result differs from the origin document")
	}

	bm := b.mgr.Snapshot()
	if bm.PeerFills != 1 {
		t.Errorf("B peer fills = %d, want 1", bm.PeerFills)
	}
	if bm.PeerFill.Probes != 1 || bm.PeerFill.Fills != 1 {
		t.Errorf("B filler stats = %+v, want 1 probe / 1 fill", bm.PeerFill)
	}
	if len(bm.StepSeconds) != 0 {
		t.Errorf("B recorded solver step time %v; the fill must pre-empt the solve", bm.StepSeconds)
	}
	// Neighbor probes bypass A's own hit accounting.
	if hitsAfter := a.mgr.Snapshot().CacheHits; hitsAfter != hitsBefore {
		t.Errorf("A cache hits moved %d -> %d on a peer probe; Peek must not count", hitsBefore, hitsAfter)
	}

	// B now holds the entry itself: a second identical submission is a
	// plain local cache hit, no new probe.
	st2 := submitOK(t, b.url, smallSpec())
	waitDone(t, b.url, st2.ID)
	if bm2 := b.mgr.Snapshot(); bm2.PeerFill.Probes != 1 {
		t.Errorf("B probed again (%d) after the entry was filled locally", bm2.PeerFill.Probes)
	}
}

// TestPeerFillRejectsCorruptPayload serves deliberately corrupt bytes
// from a fake peer and verifies hash validation keeps them out: the
// fill is rejected, the node solves locally, and the reject counter
// records the event.
func TestPeerFillRejectsCorruptPayload(t *testing.T) {
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		// A plausible-looking payload whose hash header belongs to
		// different bytes — a torn write or an actively wrong peer.
		sum := sha256.Sum256([]byte("the bytes this hash belongs to"))
		w.Header().Set(server.CacheSHA256Header, hex.EncodeToString(sum[:]))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"not":"the same bytes"}`))
	}))
	defer corrupt.Close()

	filler := NewPeerFiller(PeerFillConfig{Peers: []string{corrupt.URL}})
	if filler == nil {
		t.Fatal("NewPeerFiller returned nil")
	}
	b := startNode(t, server.Config{CacheBytes: 16 << 20, PeerFiller: filler})

	st := submitOK(t, b.url, smallSpec())
	waitDone(t, b.url, st.ID)

	bm := b.mgr.Snapshot()
	if bm.PeerFills != 0 {
		t.Errorf("peer fills = %d, want 0 (corrupt payload must not be admitted)", bm.PeerFills)
	}
	if bm.PeerFill.Rejects != 1 {
		t.Errorf("rejects = %d, want 1", bm.PeerFill.Rejects)
	}
	if bm.Completed != 1 {
		t.Errorf("completed = %d, want 1 (node must fall through to a local solve)", bm.Completed)
	}

	// And the client maps the condition to the sentinel.
	spec := smallSpec()
	key, _, err := spec.CacheKey(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(corrupt.URL).CacheGet(key); !errors.Is(err, ErrPeerPayload) {
		t.Errorf("CacheGet error = %v, want ErrPeerPayload", err)
	}
}

// TestClientBackendParity verifies the HTTP client honors the Backend
// error contract: the sentinels a local Manager returns survive the
// round trip through status codes and error envelopes.
func TestClientBackendParity(t *testing.T) {
	n := startNode(t, server.Config{CacheBytes: 16 << 20})
	var be server.Backend = NewClient(n.url)

	if err := be.Ready(); err != nil {
		t.Errorf("Ready on an idle node = %v, want nil", err)
	}
	if _, err := be.Status("nope"); !errors.Is(err, server.ErrNotFound) {
		t.Errorf("Status(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := be.Cancel("nope"); !errors.Is(err, server.ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
	if _, _, err := be.OpenResult("nope"); !errors.Is(err, server.ErrNotFound) {
		t.Errorf("OpenResult(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := be.Submit(server.Spec{Method: "bp"}); !errors.Is(err, server.ErrBadSpec) {
		t.Errorf("Submit(bad spec) = %v, want ErrBadSpec", err)
	}

	st, err := be.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, n.url, st.ID)
	if _, err := be.Requeue(st.ID); !errors.Is(err, server.ErrNotQuarantined) {
		t.Errorf("Requeue(done job) = %v, want ErrNotQuarantined", err)
	}
	rc, size, err := be.OpenResult(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if size > 0 && int64(len(data)) != size {
		t.Errorf("OpenResult size %d != body length %d", size, len(data))
	}
	if !json.Valid(data) {
		t.Error("OpenResult body is not valid JSON")
	}
	list, err := be.List(server.ListFilter{State: server.StateDone})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, js := range list {
		if js.ID == st.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("List(done) missing job %s", st.ID)
	}

	// CacheGet round-trips the document with a valid hash.
	spec := smallSpec()
	key, _, err := spec.CacheKey(1)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewClient(n.url).CacheGet(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached, data) {
		t.Error("CacheGet payload differs from OpenResult document")
	}
	if _, err := NewClient(n.url).CacheGet(cache.Key{}); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("CacheGet(absent key) = %v, want fs.ErrNotExist", err)
	}
}

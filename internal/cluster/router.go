package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/server"
)

// maxSubmitBytes mirrors the node's own body bound: the router must
// read the full submission to hash it, so it enforces the same cap the
// owner would.
const maxSubmitBytes = 64 << 20

// maxOwnerEntries bounds the router's id→node map. Jobs are
// short-lived relative to 64k entries; when the map fills, a quarter
// of it is evicted (arbitrary entries — a lost mapping only costs one
// fan-out Status lookup to rediscover the owner).
const maxOwnerEntries = 64 << 10

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Peers is the static backend list (base URLs).
	Peers []string
	// VNodes is the hash ring's virtual-node count (0 = default). Must
	// match the backends' -vnodes for peer-fill probe order to mirror
	// routing order.
	VNodes int
	// ProbeEvery is the health-probe interval (0 = 1s).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one /readyz probe (0 = 2s).
	ProbeTimeout time.Duration
	// KeyThreads bounds problem-construction parallelism while hashing
	// a submission (0 = GOMAXPROCS). It cannot affect the key.
	KeyThreads int
	// HedgeAfter enables request hedging for idempotent GETs (status,
	// result, cache): when the owner has not answered within this
	// delay, the router issues a second request to the ring successor
	// and relays whichever succeeds first. 0 disables hedging. Set it
	// near the fleet's p95 read latency — low enough to cut tail
	// latency, high enough that hedges stay rare.
	HedgeAfter time.Duration
}

// Router is the cluster front door: a thin HTTP proxy over the
// netalignd /v1 API that consistent-hashes each submission onto its
// owning backend — so identical submissions land where their cached
// result or in-flight execution already lives — and forwards per-job
// routes (status, result, cancel, events) to wherever the job was
// admitted. It holds no job state beyond a bounded id→node map that
// can always be rebuilt by fan-out lookup; restarting the router
// loses nothing.
//
// Failover: a submission whose owner is unreachable or answers 503
// (draining, disk pressure) moves to the ring successor. 4xx answers
// — including 429 backpressure — are relayed verbatim: the owner is
// alive and its refusal is meaningful to the client, and rerouting a
// 429 would defeat per-node backpressure.
type Router struct {
	ring       *Ring
	monitor    *Monitor
	clients    map[string]*Client
	proxies    map[string]*httputil.ReverseProxy
	nodes      []string // all configured nodes, normalized, sorted
	httpc      *http.Client
	threads    int
	hedgeAfter time.Duration
	mux        *http.ServeMux

	mu    sync.Mutex
	owner map[string]string // job id → node base URL

	forwarded  map[string]*expvar.Int // per-node accepted submissions
	failovers  expvar.Int             // submissions moved past an unavailable owner
	unroutable expvar.Int             // submissions no node would take
	rebalances expvar.Int             // ring membership transitions
	ownerMiss  expvar.Int             // per-job requests resolved by fan-out
	hedged     expvar.Int             // secondary requests issued for slow/failed reads
	hedgeWins  expvar.Int             // hedged reads won by the secondary
}

// NewRouter builds the router; Start launches its health probes.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.KeyThreads <= 0 {
		cfg.KeyThreads = runtime.GOMAXPROCS(0)
	}
	seen := make(map[string]bool)
	var nodes []string
	for _, p := range cfg.Peers {
		if p = normalizeBase(p); p != "" && !seen[p] {
			seen[p] = true
			nodes = append(nodes, p)
		}
	}
	if len(nodes) == 0 {
		return nil, errors.New("cluster: router needs at least one peer")
	}
	sort.Strings(nodes)

	r := &Router{
		ring:       NewRing(nodes, cfg.VNodes),
		clients:    make(map[string]*Client, len(nodes)),
		proxies:    make(map[string]*httputil.ReverseProxy, len(nodes)),
		nodes:      nodes,
		httpc:      defaultHTTPClient,
		threads:    cfg.KeyThreads,
		hedgeAfter: cfg.HedgeAfter,
		owner:      make(map[string]string),
		forwarded:  make(map[string]*expvar.Int, len(nodes)),
	}
	probeHTTP := &http.Client{Timeout: cfg.ProbeTimeout, Transport: defaultHTTPClient.Transport}
	for _, n := range nodes {
		c := NewClient(n)
		r.clients[n] = c
		u, err := url.Parse(n)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", n, err)
		}
		proxy := httputil.NewSingleHostReverseProxy(u)
		// FlushInterval -1 flushes every write immediately — required
		// for proxied SSE streams, harmless for everything else.
		proxy.FlushInterval = -1
		node := n
		proxy.ErrorHandler = func(w http.ResponseWriter, req *http.Request, err error) {
			r.monitor.MarkDown(node)
			writeRouterError(w, http.StatusBadGateway, "bad_gateway",
				"backend %s unreachable: %v", node, err)
		}
		r.proxies[n] = proxy
		r.forwarded[n] = new(expvar.Int)
	}
	probeClients := make(map[string]*Client, len(nodes))
	for _, n := range nodes {
		probeClients[n] = &Client{Base: n, HTTP: probeHTTP}
	}
	r.monitor = NewMonitor(nodes, cfg.ProbeEvery,
		func(node string) error { return probeClients[node].Ready() },
		func(up []string) {
			if r.ring.SetNodes(up) {
				r.rebalances.Add(1)
			}
		})

	r.mux = http.NewServeMux()
	for _, prefix := range []string{"/v1", ""} {
		r.mux.HandleFunc("POST "+prefix+"/jobs", r.handleSubmit)
		r.mux.HandleFunc("GET "+prefix+"/jobs", r.handleList)
		r.mux.HandleFunc("GET "+prefix+"/jobs/{id}", r.handleJob)
		r.mux.HandleFunc("GET "+prefix+"/jobs/{id}/result", r.handleJob)
		r.mux.HandleFunc("GET "+prefix+"/jobs/{id}/events", r.handleJob)
		r.mux.HandleFunc("POST "+prefix+"/jobs/{id}/requeue", r.handleJob)
		r.mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", r.handleJob)
		r.mux.HandleFunc("GET "+prefix+"/cache/{key}", r.handleCacheGet)
	}
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /readyz", r.handleReadyz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	return r, nil
}

// Start launches the health-probe loop; Stop ends it.
func (r *Router) Start() { r.monitor.Start() }

// Stop ends the health-probe loop.
func (r *Router) Stop() { r.monitor.Stop() }

// Ring exposes the routing ring (tests and diagnostics).
func (r *Router) Ring() *Ring { return r.ring }

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// writeRouterError emits the same JSON error envelope the nodes use,
// so clients see one error shape whether a response came from a
// backend or from the router itself.
func writeRouterError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	type detail struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	_ = enc.Encode(struct {
		Error detail `json:"error"`
	}{detail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// routeKey computes the submission's routing key: its content address
// when the spec is cacheable (the same cache.Key the owning node will
// compute, so the submission lands on its cached result), otherwise a
// hash of the raw body (stable, but with no affinity to preserve).
func (r *Router) routeKey(spec *server.Spec, body []byte) []byte {
	if key, _, err := spec.CacheKey(r.threads); err == nil {
		return key[:]
	}
	// Invalid or uncacheable spec: route it somewhere deterministic and
	// let the owner produce the authoritative rejection.
	h := fnv.New64a()
	_, _ = h.Write(body)
	sum := h.Sum64()
	return []byte{byte(sum >> 56), byte(sum >> 48), byte(sum >> 40), byte(sum >> 32),
		byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)}
}

// handleSubmit reads the submission once, hashes it onto the ring, and
// forwards the raw body to the owner — failing over to ring successors
// when a node is unreachable or answers 503. Any other answer (202,
// 400, 413, 429) is relayed verbatim.
func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, maxSubmitBytes)
	body, err := io.ReadAll(req.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeRouterError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"job body exceeds %d bytes", mbe.Limit)
			return
		}
		writeRouterError(w, http.StatusBadRequest, "bad_request", "read job body: %v", err)
		return
	}
	var spec server.Spec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeRouterError(w, http.StatusBadRequest, "bad_request", "decode job spec: %v", err)
		return
	}
	key := r.routeKey(&spec, body)

	candidates := r.ring.Successors(key, 0)
	if len(candidates) == 0 {
		r.unroutable.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable, "unroutable", "no backend is up")
		return
	}
	for i, node := range candidates {
		resp, err := r.httpc.Post(node+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			// Transport failure: demote immediately so concurrent
			// requests stop waiting out their own dial timeouts.
			r.monitor.MarkDown(node)
			r.failovers.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && i < len(candidates)-1 {
			// Draining or disk pressure: the successor can take it. The
			// last candidate's 503 is relayed — there is no one left.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			r.failovers.Add(1)
			continue
		}
		r.relaySubmit(w, resp, node)
		return
	}
	r.unroutable.Add(1)
	writeRouterError(w, http.StatusServiceUnavailable, "unroutable",
		"all %d candidate backends unavailable", len(candidates))
}

// relaySubmit copies a backend's submit response to the client
// verbatim, recording the job's owner on a 202.
func (r *Router) relaySubmit(w http.ResponseWriter, resp *http.Response, node string) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, "bad_gateway",
			"backend %s: read submit response: %v", node, err)
		return
	}
	if resp.StatusCode == http.StatusAccepted {
		var st server.JobStatus
		if json.Unmarshal(body, &st) == nil && st.ID != "" {
			r.recordOwner(st.ID, node)
		}
		r.forwarded[node].Add(1)
	}
	for _, h := range []string{"Content-Type", "Location", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// recordOwner remembers which node admitted a job, evicting a quarter
// of the map when it fills.
func (r *Router) recordOwner(id, node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.owner) >= maxOwnerEntries {
		drop := maxOwnerEntries / 4
		for k := range r.owner {
			delete(r.owner, k)
			if drop--; drop <= 0 {
				break
			}
		}
	}
	r.owner[id] = node
}

// resolveOwner finds the node holding a job: the owner map first, then
// a parallel fan-out Status lookup across every configured node (the
// map is bounded and the router may have restarted).
func (r *Router) resolveOwner(id string) (string, bool) {
	r.mu.Lock()
	node, ok := r.owner[id]
	r.mu.Unlock()
	if ok {
		return node, true
	}
	r.ownerMiss.Add(1)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		found string
	)
	for _, n := range r.nodes {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			if _, err := r.clients[n].Status(id); err == nil {
				mu.Lock()
				if found == "" {
					found = n
				}
				mu.Unlock()
			}
		}(n)
	}
	wg.Wait()
	if found == "" {
		return "", false
	}
	r.recordOwner(id, found)
	return found, true
}

// handleJob serves any per-job route. Mutations and the SSE stream
// (cancel, requeue, events) proxy raw to the job's owning node, so
// streams, headers and error envelopes pass through untouched.
// Idempotent GETs (status, result) relay through relayJobGet instead:
// hedged against the ring successor when HedgeAfter is set, and in
// either mode following a handed_off tombstone status one hop to the
// node that admitted the job in a drain — which both cuts read tail
// latency and heals stale owner mappings even when the drained node
// is back up and answering its tombstones with 200s.
func (r *Router) handleJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	node, ok := r.resolveOwner(id)
	if !ok {
		writeRouterError(w, http.StatusNotFound, "not_found", "job %s not found on any backend", id)
		return
	}
	if req.Method == http.MethodGet && !strings.HasSuffix(req.URL.Path, "/events") {
		r.relayJobGet(w, req, id, node)
		return
	}
	r.proxies[node].ServeHTTP(w, req)
}

// jobGet issues one per-job GET to a node, preserving the client's
// path, query string and request headers — a hedged or direct relay
// read must be indistinguishable from a proxied one to the backend.
func (r *Router) jobGet(ctx context.Context, req *http.Request, node string) (*http.Response, error) {
	target := node + req.URL.Path
	if req.URL.RawQuery != "" {
		target += "?" + req.URL.RawQuery
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	hreq.Header = req.Header.Clone()
	return r.httpc.Do(hreq)
}

// relayJobGet answers an idempotent per-job GET: hedged between the
// recorded owner and a ring peer when hedging is enabled, a direct
// owner read otherwise. Both paths finish through finishJobGet, which
// follows drain tombstones.
func (r *Router) relayJobGet(w http.ResponseWriter, req *http.Request, id, node string) {
	if r.hedgeAfter > 0 {
		if peer, ok := r.hedgePeer(id, node); ok {
			r.hedgedRelay(w, req, id, node, peer)
			return
		}
	}
	resp, err := r.jobGet(req.Context(), req, node)
	if err != nil {
		r.monitor.MarkDown(node)
		writeRouterError(w, http.StatusBadGateway, "bad_gateway",
			"backend %s unreachable: %v", node, err)
		return
	}
	r.finishJobGet(w, req, id, node, resp)
}

// finishJobGet relays a per-job GET response, first following a drain
// tombstone one hop: a 200 on the plain status route whose body says
// handed_off names the node that admitted the job during the drain,
// so the router records that node as the owner and re-reads there —
// the client sees the live job, not the tombstone. One hop only: if
// the follow-up fails (or points at another tombstone), whatever the
// hop returned is relayed as-is rather than chasing a chain.
func (r *Router) finishJobGet(w http.ResponseWriter, req *http.Request, id, node string, resp *http.Response) {
	target, body, inspected := r.tombstoneTarget(req, resp, id, node)
	if !inspected {
		r.relayResponse(w, resp)
		return
	}
	// Inspection consumed the response body into body.
	resp.Body.Close()
	if target != "" {
		r.recordOwner(id, target)
		if fresh, err := r.jobGet(req.Context(), req, target); err == nil {
			r.relayResponse(w, fresh)
			return
		}
		r.monitor.MarkDown(target)
		// Fall through: the tombstone itself is still a truthful answer.
	}
	r.relayBuffered(w, resp, body)
}

// tombstoneTarget decides whether a per-job GET response needs
// tombstone inspection and, if so, consumes its body: a 200 on the
// plain status route decoding to a handed_off JobStatus yields the
// receiving node — normalized, and only when it is a configured peer
// other than the one that answered (a foreign or self-referential
// pointer is relayed untouched, never followed). inspected reports
// that the body was read and must be relayed via relayBuffered.
func (r *Router) tombstoneTarget(req *http.Request, resp *http.Response, id, node string) (target string, body []byte, inspected bool) {
	if resp.StatusCode != http.StatusOK || !strings.HasSuffix(req.URL.Path, "/jobs/"+id) {
		return "", nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		// Partially consumed: must relay the buffered prefix, not the
		// stream.
		return "", body, true
	}
	var st server.JobStatus
	if json.Unmarshal(body, &st) != nil || st.State != server.StateHandedOff || st.HandedOffTo == "" {
		return "", body, true
	}
	t := normalizeBase(st.HandedOffTo)
	if t == node {
		return "", body, true
	}
	if _, known := r.clients[t]; !known {
		return "", body, true
	}
	return t, body, true
}

// hedgePeer picks the hedge target for a job read: the first up node
// other than the primary, in ring-successor order of the job id —
// the node a drain handoff of this job would have landed on when the
// job is uncacheable, and a deterministic healthy peer otherwise.
func (r *Router) hedgePeer(id, primary string) (string, bool) {
	for _, n := range r.ring.Successors([]byte(id), 0) {
		if n != primary && r.monitor.IsUp(n) {
			return n, true
		}
	}
	return "", false
}

// hedgeResult is one leg's outcome in a hedged read.
type hedgeResult struct {
	resp  *http.Response
	node  string
	err   error
	hedge bool
}

// hedgedRelay races a GET between the job's recorded owner and a ring
// peer. The primary fires immediately; the secondary fires after the
// hedge delay, or at once if the primary fails first (transport error
// or non-2xx — a 404 right after a drain handoff means "ask the
// successor now", not "wait out the timer"). First 2xx wins and is
// relayed; a secondary win updates the owner map so later reads go
// straight to the right node. When neither leg succeeds the primary's
// response is relayed verbatim (its refusal is the authoritative one),
// falling back to the secondary's, then to 502.
func (r *Router) hedgedRelay(w http.ResponseWriter, req *http.Request, id, primary, secondary string) {
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	results := make(chan hedgeResult, 2)
	fire := func(node string, hedge bool) {
		resp, err := r.jobGet(ctx, req, node)
		results <- hedgeResult{resp, node, err, hedge}
	}
	go fire(primary, false)
	timer := time.NewTimer(r.hedgeAfter)
	defer timer.Stop()
	timerC := timer.C
	launch := func() {
		timerC = nil
		r.hedged.Add(1)
		go fire(secondary, true)
	}
	var prim, sec hedgeResult
	outstanding := 1
	for outstanding > 0 {
		select {
		case <-timerC:
			launch()
			outstanding++
		case res := <-results:
			outstanding--
			if res.err == nil && res.resp.StatusCode >= 200 && res.resp.StatusCode < 300 {
				if res.hedge {
					r.hedgeWins.Add(1)
					r.recordOwner(id, res.node)
					closeHedge(prim)
				} else {
					closeHedge(sec)
				}
				drainHedge(results, outstanding)
				// A 2xx winner can still be a drain tombstone (the old
				// owner is back up and answers its handed_off status
				// with a 200); finishJobGet follows it to the live job.
				r.finishJobGet(w, req, id, res.node, res.resp)
				return
			}
			if res.err != nil {
				r.monitor.MarkDown(res.node)
			}
			if res.hedge {
				sec = res
			} else {
				prim = res
				if timerC != nil {
					launch()
					outstanding++
				}
			}
		}
	}
	switch {
	case prim.resp != nil:
		closeHedge(sec)
		r.relayResponse(w, prim.resp)
	case sec.resp != nil:
		r.relayResponse(w, sec.resp)
	default:
		writeRouterError(w, http.StatusBadGateway, "bad_gateway",
			"backends %s and %s unreachable: %v", primary, secondary, prim.err)
	}
}

// drainHedge disposes of the losing leg's eventual result so its
// connection is reusable; the winner's relay happens before the
// deferred cancel, so the loser is also aborted promptly.
func drainHedge(results <-chan hedgeResult, outstanding int) {
	if outstanding == 0 {
		return
	}
	go func() {
		for i := 0; i < outstanding; i++ {
			closeHedge(<-results)
		}
	}()
}

// closeHedge discards one leg's response body, if any.
func closeHedge(res hedgeResult) {
	if res.resp != nil {
		io.Copy(io.Discard, io.LimitReader(res.resp.Body, 1<<20))
		res.resp.Body.Close()
	}
}

// hopByHopHeaders are connection-scoped (RFC 9110 §7.6.1) and never
// forwarded.
var hopByHopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// copyResponseHeaders copies every end-to-end backend header, so a
// relayed read carries exactly what a proxied one would.
func copyResponseHeaders(dst, src http.Header) {
	for k, vv := range src {
		dst[k] = append([]string(nil), vv...)
	}
	for _, h := range hopByHopHeaders {
		dst.Del(h)
	}
}

// relayResponse streams a backend response to the client.
func (r *Router) relayResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyResponseHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// relayBuffered relays a response whose body was already consumed for
// tombstone inspection.
func (r *Router) relayBuffered(w http.ResponseWriter, resp *http.Response, body []byte) {
	copyResponseHeaders(w.Header(), resp.Header)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// handleList fans the listing out to every up node and merges the
// results newest-first — the same ordering each node uses. The
// state/tenant/class filters pass through verbatim; each node applies
// them locally so the router never pages full listings just to filter.
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	filter := server.ListFilter{
		State:  server.State(q.Get("state")),
		Tenant: q.Get("tenant"),
		Class:  q.Get("class"),
	}
	up := r.monitor.Up()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		merged []*server.JobStatus
	)
	for _, n := range up {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			list, err := r.clients[n].List(filter)
			if err != nil {
				return // a down node's jobs are simply absent
			}
			mu.Lock()
			merged = append(merged, list...)
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	sort.SliceStable(merged, func(i, j int) bool {
		return merged[i].Created.After(merged[j].Created)
	})
	if merged == nil {
		merged = []*server.JobStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(merged)
}

// handleCacheGet probes the key's ring successors for a cached result
// — the router-side face of peer fill, useful for warming and
// diagnostics. With hedging enabled the first two candidates race
// (the second starting after the hedge delay, or at once when the
// first misses); any remaining successors are probed sequentially.
func (r *Router) handleCacheGet(w http.ResponseWriter, req *http.Request) {
	key, err := cache.ParseKey(req.PathValue("key"))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	nodes := r.ring.Successors(key[:], 0)
	if r.hedgeAfter > 0 && len(nodes) >= 2 {
		if data, ok := r.hedgedCacheGet(req.Context(), key, nodes[0], nodes[1]); ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(data)
			return
		}
		nodes = nodes[2:]
	}
	for _, node := range nodes {
		data, err := r.clients[node].CacheGet(key)
		if err != nil {
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
		return
	}
	writeRouterError(w, http.StatusNotFound, "cache_miss", "no cached result for %s", key)
}

// hedgedCacheGet races one cache lookup between the key's first two
// ring candidates: the primary fires immediately, the secondary after
// the hedge delay or as soon as the primary misses. First validated
// payload wins.
func (r *Router) hedgedCacheGet(reqCtx context.Context, key cache.Key, primary, secondary string) ([]byte, bool) {
	ctx, cancel := context.WithCancel(reqCtx)
	defer cancel()
	type cacheRes struct {
		data  []byte
		err   error
		hedge bool
	}
	results := make(chan cacheRes, 2)
	fire := func(node string, hedge bool) {
		data, err := r.clients[node].CacheGetCtx(ctx, key)
		results <- cacheRes{data, err, hedge}
	}
	go fire(primary, false)
	timer := time.NewTimer(r.hedgeAfter)
	defer timer.Stop()
	timerC := timer.C
	launch := func() {
		timerC = nil
		r.hedged.Add(1)
		go fire(secondary, true)
	}
	outstanding := 1
	for outstanding > 0 {
		select {
		case <-timerC:
			launch()
			outstanding++
		case res := <-results:
			outstanding--
			if res.err == nil {
				if res.hedge {
					r.hedgeWins.Add(1)
				}
				return res.data, true
			}
			if !res.hedge && timerC != nil {
				launch()
				outstanding++
			}
		}
	}
	return nil, false
}

// handleHealthz is router liveness: 200 whenever the process answers.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("{\n  \"status\": \"ok\"\n}\n"))
}

// handleReadyz reports routability: 200 while at least one backend is
// up, 503 when the whole fleet is down.
func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	up := r.monitor.Up()
	status, code := http.StatusOK, "ok"
	if len(up) == 0 {
		status, code = http.StatusServiceUnavailable, "no_backends"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"status": code, "up": up})
}

// handleMetrics renders router counters plus a cluster rollup: one
// per-node block (up gauge, forwarded counter) and an aggregate
// summing each reachable node's manager snapshot — so one scrape
// answers both "is the ring balanced" and "what is the fleet doing".
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	fmt.Fprintf(w, "# HELP netalignrouter_backends Configured backends.\n# TYPE netalignrouter_backends gauge\nnetalignrouter_backends %d\n", len(r.nodes))
	fmt.Fprint(w, "# HELP netalignrouter_node_up 1 while the backend passes readiness probes.\n# TYPE netalignrouter_node_up gauge\n")
	for _, n := range r.nodes {
		up := 0
		if r.monitor.IsUp(n) {
			up = 1
		}
		fmt.Fprintf(w, "netalignrouter_node_up{node=%q} %d\n", n, up)
	}
	fmt.Fprint(w, "# HELP netalignrouter_forwarded_total Submissions accepted per backend.\n# TYPE netalignrouter_forwarded_total counter\n")
	for _, n := range r.nodes {
		fmt.Fprintf(w, "netalignrouter_forwarded_total{node=%q} %d\n", n, r.forwarded[n].Value())
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("netalignrouter_failover_total", "Submissions moved past an unavailable owner to a ring successor.", r.failovers.Value())
	counter("netalignrouter_unroutable_total", "Submissions refused because no backend would take them.", r.unroutable.Value())
	counter("netalignrouter_ring_rebalance_total", "Ring membership transitions (nodes joining or leaving the up-set).", r.rebalances.Value())
	counter("netalignrouter_owner_fanout_total", "Per-job requests resolved by fan-out owner lookup.", r.ownerMiss.Value())
	counter("netalignrouter_hedged_total", "Secondary requests issued for slow or failed idempotent reads.", r.hedged.Value())
	counter("netalignrouter_hedge_wins_total", "Hedged reads answered first by the secondary.", r.hedgeWins.Value())

	// Aggregate rollup: sum each reachable node's snapshot. Nodes that
	// fail the scrape are skipped and counted, so a partial rollup is
	// visible as such rather than silently low.
	type nodeMetrics struct {
		node string
		m    *server.Metrics
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []nodeMetrics
		scraped int64
	)
	for _, n := range r.nodes {
		if !r.monitor.IsUp(n) {
			continue
		}
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			m, err := r.clients[n].Metrics()
			if err != nil {
				return
			}
			mu.Lock()
			results = append(results, nodeMetrics{n, m})
			scraped++
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].node < results[j].node })

	fmt.Fprintf(w, "# HELP netalignrouter_nodes_scraped Backends whose metrics contributed to the cluster rollup.\n# TYPE netalignrouter_nodes_scraped gauge\nnetalignrouter_nodes_scraped %d\n", scraped)
	var agg struct {
		submitted, completed, failed, coalesced int64
		cacheHits, cacheMisses, peerFills       int64
		queueDepth, running                     int64
	}
	tenantAgg := make(map[string]*server.TenantMetrics)
	fmt.Fprint(w, "# HELP netalignrouter_node_jobs_submitted_total Jobs accepted per backend.\n# TYPE netalignrouter_node_jobs_submitted_total counter\n")
	for _, nm := range results {
		fmt.Fprintf(w, "netalignrouter_node_jobs_submitted_total{node=%q} %d\n", nm.node, nm.m.Submitted)
		agg.submitted += nm.m.Submitted
		agg.completed += nm.m.Completed
		agg.failed += nm.m.Failed
		agg.coalesced += nm.m.Coalesced
		agg.cacheHits += nm.m.CacheHits
		agg.cacheMisses += nm.m.CacheMisses
		agg.peerFills += nm.m.PeerFills
		agg.queueDepth += int64(nm.m.QueueDepth)
		agg.running += int64(nm.m.Running)
		for name, tm := range nm.m.Tenants {
			t := tenantAgg[name]
			if t == nil {
				t = &server.TenantMetrics{}
				tenantAgg[name] = t
			}
			t.Queued += tm.Queued
			t.Running += tm.Running
			t.Submitted += tm.Submitted
			t.Completed += tm.Completed
			t.Preempted += tm.Preempted
			t.Shed += tm.Shed
		}
	}
	counter("netalignrouter_cluster_jobs_submitted_total", "Jobs accepted across the cluster.", agg.submitted)
	counter("netalignrouter_cluster_jobs_completed_total", "Jobs finished done across the cluster.", agg.completed)
	counter("netalignrouter_cluster_jobs_failed_total", "Jobs finished failed across the cluster.", agg.failed)
	counter("netalignrouter_cluster_jobs_coalesced_total", "Submissions coalesced onto identical inflight jobs across the cluster.", agg.coalesced)
	counter("netalignrouter_cluster_cache_hits_total", "Result-cache hits across the cluster.", agg.cacheHits)
	counter("netalignrouter_cluster_cache_misses_total", "Result-cache misses across the cluster.", agg.cacheMisses)
	counter("netalignrouter_cluster_peer_fill_total", "Peer cache fills across the cluster.", agg.peerFills)
	fmt.Fprintf(w, "# HELP netalignrouter_cluster_queue_depth Queued jobs across the cluster.\n# TYPE netalignrouter_cluster_queue_depth gauge\nnetalignrouter_cluster_queue_depth %d\n", agg.queueDepth)
	fmt.Fprintf(w, "# HELP netalignrouter_cluster_jobs_running Running jobs across the cluster.\n# TYPE netalignrouter_cluster_jobs_running gauge\nnetalignrouter_cluster_jobs_running %d\n", agg.running)

	// Per-tenant cluster rollup: one labeled series per tenant summed
	// across every scraped node, so a fleet operator sees each tenant's
	// aggregate demand without scraping nodes individually.
	if len(tenantAgg) > 0 {
		tenants := make([]string, 0, len(tenantAgg))
		for name := range tenantAgg {
			tenants = append(tenants, name)
		}
		sort.Strings(tenants)
		tseries := func(name, help, typ string, f func(*server.TenantMetrics) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for _, t := range tenants {
				fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, t, f(tenantAgg[t]))
			}
		}
		tseries("netalignrouter_cluster_tenant_queue_depth", "Queued jobs per tenant across the cluster.", "gauge",
			func(t *server.TenantMetrics) int64 { return int64(t.Queued) })
		tseries("netalignrouter_cluster_tenant_jobs_running", "Running jobs per tenant across the cluster.", "gauge",
			func(t *server.TenantMetrics) int64 { return int64(t.Running) })
		tseries("netalignrouter_cluster_tenant_jobs_submitted_total", "Jobs accepted per tenant across the cluster.", "counter",
			func(t *server.TenantMetrics) int64 { return t.Submitted })
		tseries("netalignrouter_cluster_tenant_jobs_completed_total", "Jobs finished done per tenant across the cluster.", "counter",
			func(t *server.TenantMetrics) int64 { return t.Completed })
		tseries("netalignrouter_cluster_tenant_jobs_preempted_total", "Batch runs checkpoint-preempted per tenant across the cluster.", "counter",
			func(t *server.TenantMetrics) int64 { return t.Preempted })
		tseries("netalignrouter_cluster_tenant_jobs_shed_total", "Submissions refused per tenant across the cluster.", "counter",
			func(t *server.TenantMetrics) int64 { return t.Shed })
	}
}

// Package gen constructs network alignment problem instances: the
// paper's synthetic power-law problems (Section VI-A) and synthetic
// stand-ins for its bioinformatics and ontology datasets (Section
// VI-B/C), which are not redistributable. See DESIGN.md §4 for the
// substitution rationale: the stand-ins preserve the structural
// properties the algorithms are sensitive to — power-law topology, a
// planted common subgraph, fairly regular degree in L, and a highly
// irregular nonzero distribution in S.
package gen

import (
	"fmt"
	"math/rand"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/core"
	"netalignmc/internal/graph"
)

// SyntheticOptions parameterizes the paper's synthetic power-law
// construction: start from one power-law graph G, perturb it twice
// independently into A and B (adding edges with probability
// PerturbProb), and build L from the identity matching plus uniformly
// random candidate edges with expected degree ExpectedDegree
// (d̄ = p·|V_A|).
type SyntheticOptions struct {
	// N is the number of vertices of the base graph G (paper: 400).
	N int
	// Gamma is the power-law exponent of the degree distribution.
	Gamma float64
	// MinDeg, MaxDeg truncate the degree distribution.
	MinDeg, MaxDeg int
	// PerturbProb is the probability of adding each non-edge when
	// deriving A and B from G (paper: 0.02).
	PerturbProb float64
	// ExpectedDegree is d̄, the expected number of random candidate
	// edges per vertex in L (paper sweeps 2..20 in Figure 2).
	ExpectedDegree float64
	// IdentityWeight and NoiseWeight are the L edge weights for
	// planted identity edges and random edges.
	IdentityWeight, NoiseWeight float64
	// Alpha, Beta are the objective weights (paper: α=1, β=2).
	Alpha, Beta float64
	// Seed drives all randomness.
	Seed int64
	// Threads bounds parallelism of S construction (<=0: GOMAXPROCS).
	Threads int
}

// DefaultSynthetic returns the paper's Figure 2 configuration for a
// given expected degree and seed.
func DefaultSynthetic(expectedDegree float64, seed int64) SyntheticOptions {
	return SyntheticOptions{
		N:              400,
		Gamma:          2.1,
		MinDeg:         1,
		MaxDeg:         30,
		PerturbProb:    0.02,
		ExpectedDegree: expectedDegree,
		IdentityWeight: 1,
		NoiseWeight:    1,
		Alpha:          1,
		Beta:           2,
		Seed:           seed,
	}
}

// FigPresetNames lists the Figure 4-7 scaling presets in paper order.
func FigPresetNames() []string {
	return []string{"fig4", "fig5", "fig6", "fig7"}
}

// FigPreset returns the synthetic configuration for one of the paper's
// Figure 4-7 scaling measurements: the Figure 2 power-law recipe at
// the sizes where the matching barrier dominates, so pipelined
// rounding can be measured at scale. fig4 and fig5 are the medium and
// large dense-candidate problems (d̄=8), fig6 is the denser d̄=10
// variant, fig7 the largest sparse-candidate (d̄=2) one.
func FigPreset(name string, seed int64) (SyntheticOptions, error) {
	var (
		n    int
		dbar float64
	)
	switch name {
	case "fig4":
		n, dbar = 8192, 8
	case "fig5":
		n, dbar = 16384, 8
	case "fig6":
		n, dbar = 16384, 10
	case "fig7":
		n, dbar = 32768, 2
	default:
		return SyntheticOptions{}, fmt.Errorf("gen: unknown fig preset %q (want one of %v)", name, FigPresetNames())
	}
	so := DefaultSynthetic(dbar, seed)
	so.N = n
	return so, nil
}

// Synthetic builds a synthetic power-law alignment problem following
// Section VI-A: G ~ power law on N vertices; A and B are independent
// edge-added perturbations of G; L contains the identity matching
// (the known reference alignment) plus every other pair independently
// with probability d̄/N.
func Synthetic(o SyntheticOptions) (*core.Problem, error) {
	if o.N <= 1 {
		return nil, fmt.Errorf("gen: need at least 2 vertices, got %d", o.N)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	g := graph.PowerLaw(rng, o.N, o.Gamma, o.MinDeg, o.MaxDeg)
	a := graph.Perturb(rng, g, o.PerturbProb)
	b := graph.Perturb(rng, g, o.PerturbProb)

	edges := make([]bipartite.WeightedEdge, 0, o.N*int(o.ExpectedDegree+2))
	for v := 0; v < o.N; v++ {
		edges = append(edges, bipartite.WeightedEdge{A: v, B: v, W: o.IdentityWeight})
	}
	p := o.ExpectedDegree / float64(o.N)
	if p > 0 {
		// Sample all non-identity pairs with probability p using the
		// same geometric skipping as the graph generators.
		noise := graph.ErdosRenyi(rng, o.N, p)
		for _, e := range noise.Edges() {
			// Interpret the undirected pair as two directed candidate
			// links to diversify both directions.
			edges = append(edges, bipartite.WeightedEdge{A: e.U, B: e.V, W: o.NoiseWeight})
			edges = append(edges, bipartite.WeightedEdge{A: e.V, B: e.U, W: o.NoiseWeight})
		}
	}
	l, err := bipartite.New(o.N, o.N, edges)
	if err != nil {
		return nil, fmt.Errorf("gen: building L: %w", err)
	}
	return core.NewProblem(a, b, l, o.Alpha, o.Beta, o.Threads)
}

// RMATProblem builds an alignment problem whose base graph is R-MAT
// instead of power-law: the graph family the underlying matcher work
// (Halappanavar et al.) benchmarks on, with heavier skew and deeper
// hub structure than the Chung–Lu construction. The perturbation and
// L construction follow the paper's synthetic recipe.
func RMATProblem(scale, edgeFactor int, expectedDegree float64, seed int64, threads int) (*core.Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RMAT(rng, graph.DefaultRMAT(scale, edgeFactor))
	n := g.NumVertices()
	a := graph.Perturb(rng, g, 0.02)
	b := graph.Perturb(rng, g, 0.02)
	edges := make([]bipartite.WeightedEdge, 0, n*int(expectedDegree+2))
	for v := 0; v < n; v++ {
		edges = append(edges, bipartite.WeightedEdge{A: v, B: v, W: 1})
	}
	p := expectedDegree / float64(n)
	if p > 0 {
		noise := graph.ErdosRenyi(rng, n, p)
		for _, e := range noise.Edges() {
			edges = append(edges,
				bipartite.WeightedEdge{A: e.U, B: e.V, W: 1},
				bipartite.WeightedEdge{A: e.V, B: e.U, W: 1})
		}
	}
	l, err := bipartite.New(n, n, edges)
	if err != nil {
		return nil, fmt.Errorf("gen: building L: %w", err)
	}
	return core.NewProblem(a, b, l, 1, 2, threads)
}

// StandInOptions parameterizes a real-dataset stand-in: two power-law
// graphs of different sizes sharing a planted common subgraph, and an
// L whose candidate lists have fairly regular degree, as the paper
// observes for its bio and ontology inputs.
type StandInOptions struct {
	Name string
	// NA, NB are the vertex counts of A and B.
	NA, NB int
	// LDegree is the expected number of candidate links per A-vertex
	// (regular by construction).
	LDegree int
	// Gamma, MinDeg, MaxDeg shape both power-law graphs.
	Gamma          float64
	MinDeg, MaxDeg int
	// OverlapFraction is the fraction of the smaller side planted as a
	// true common subgraph (drives the nnz(S) density).
	OverlapFraction float64
	// Alpha, Beta are objective weights.
	Alpha, Beta float64
	Seed        int64
	Threads     int
}

// StandIn builds a bio/ontology-like problem. The planted construction:
//
//  1. Generate a power-law "core" graph on n0 = OverlapFraction·min(NA,NB)
//     vertices.
//  2. Embed it at random vertex positions of both A and B, then grow A
//     and B to full size with additional power-law edges.
//  3. L links each A-vertex to its true counterpart (when it has one)
//     with a high weight plus LDegree−1 random candidates with lower
//     weights, giving the "fairly regular" degree distribution in L
//     and an imbalanced S.
func StandIn(o StandInOptions) (*core.Problem, error) {
	if o.NA <= 1 || o.NB <= 1 {
		return nil, fmt.Errorf("gen: stand-in needs both sides > 1")
	}
	if o.LDegree < 1 {
		o.LDegree = 1
	}
	rng := rand.New(rand.NewSource(o.Seed))
	minN := o.NA
	if o.NB < minN {
		minN = o.NB
	}
	n0 := int(o.OverlapFraction * float64(minN))
	if n0 < 2 {
		n0 = 2
	}
	coreG := graph.PowerLaw(rng, n0, o.Gamma, o.MinDeg, o.MaxDeg)

	embedA := graph.RandomPermutation(rng, o.NA)[:n0]
	embedB := graph.RandomPermutation(rng, o.NB)[:n0]

	buildSide := func(n int, embed []int) *graph.Graph {
		b := graph.NewBuilder(n)
		for _, e := range coreG.Edges() {
			b.AddEdge(embed[e.U], embed[e.V])
		}
		extra := graph.PowerLaw(rng, n, o.Gamma, o.MinDeg, o.MaxDeg)
		for _, e := range extra.Edges() {
			b.AddEdge(e.U, e.V)
		}
		return b.Build()
	}
	a := buildSide(o.NA, embedA)
	b := buildSide(o.NB, embedB)

	truth := make(map[int]int, n0) // A-vertex -> true B counterpart
	for i := 0; i < n0; i++ {
		truth[embedA[i]] = embedB[i]
	}
	edges := make([]bipartite.WeightedEdge, 0, o.NA*o.LDegree)
	for va := 0; va < o.NA; va++ {
		if vb, ok := truth[va]; ok {
			edges = append(edges, bipartite.WeightedEdge{A: va, B: vb, W: 0.8 + 0.2*rng.Float64()})
		}
		for k := 0; k < o.LDegree-1; k++ {
			vb := rng.Intn(o.NB)
			edges = append(edges, bipartite.WeightedEdge{A: va, B: vb, W: 0.1 + 0.6*rng.Float64()})
		}
	}
	l, err := bipartite.New(o.NA, o.NB, edges)
	if err != nil {
		return nil, fmt.Errorf("gen: building L: %w", err)
	}
	return core.NewProblem(a, b, l, o.Alpha, o.Beta, o.Threads)
}

// The named stand-ins mirror the paper's Table II problems at a Scale
// in (0, 1]: Scale=1 approximates the published sizes; smaller scales
// keep the structural shape at laptop-size. All use α=1, β=2, the
// parameters of the paper's quality and scaling studies.

// DmelaScere builds the D. melanogaster / S. cerevisiae PPI stand-in
// (Table II: |V_A|=9459, |V_B|=5696, |E_L|=34582).
func DmelaScere(scale float64, seed int64, threads int) (*core.Problem, error) {
	return StandIn(scaled(StandInOptions{
		Name: "dmela-scere", NA: 9459, NB: 5696, LDegree: 4,
		Gamma: 2.2, MinDeg: 1, MaxDeg: 60, OverlapFraction: 0.5,
		Alpha: 1, Beta: 2, Seed: seed, Threads: threads,
	}, scale))
}

// HomoMusm builds the H. sapiens / M. musculus PPI stand-in
// (Table II: |V_A|=3247, |V_B|=9695, |E_L|=15810).
func HomoMusm(scale float64, seed int64, threads int) (*core.Problem, error) {
	return StandIn(scaled(StandInOptions{
		Name: "homo-musm", NA: 3247, NB: 9695, LDegree: 5,
		Gamma: 2.2, MinDeg: 1, MaxDeg: 60, OverlapFraction: 0.7,
		Alpha: 1, Beta: 2, Seed: seed, Threads: threads,
	}, scale))
}

// LcshWiki builds the Library of Congress / Wikipedia ontology
// stand-in (Table II: |V_A|=297266, |V_B|=205948, |E_L|=4971629).
func LcshWiki(scale float64, seed int64, threads int) (*core.Problem, error) {
	return StandIn(scaled(StandInOptions{
		Name: "lcsh-wiki", NA: 297266, NB: 205948, LDegree: 17,
		Gamma: 2.0, MinDeg: 1, MaxDeg: 200, OverlapFraction: 0.6,
		Alpha: 1, Beta: 2, Seed: seed, Threads: threads,
	}, scale))
}

// LcshRameau builds the Library of Congress / Rameau ontology stand-in
// (Table II: |V_A|=154974, |V_B|=342684, |E_L|=20883500).
func LcshRameau(scale float64, seed int64, threads int) (*core.Problem, error) {
	return StandIn(scaled(StandInOptions{
		Name: "lcsh-rameau", NA: 154974, NB: 342684, LDegree: 61,
		Gamma: 2.0, MinDeg: 1, MaxDeg: 200, OverlapFraction: 0.4,
		Alpha: 1, Beta: 2, Seed: seed, Threads: threads,
	}, scale))
}

func scaled(o StandInOptions, scale float64) StandInOptions {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	o.NA = max(2, int(float64(o.NA)*scale))
	o.NB = max(2, int(float64(o.NB)*scale))
	if o.NA < 50 || o.NB < 50 {
		// Very small scales cannot sustain the full candidate degree.
		if o.LDegree > 8 {
			o.LDegree = 8
		}
	}
	return o
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package gen

import (
	"math"
	"testing"

	"netalignmc/internal/core"
)

func TestSyntheticBasics(t *testing.T) {
	o := DefaultSynthetic(4, 123)
	o.N = 80
	p, err := Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	if p.A.NumVertices() != 80 || p.B.NumVertices() != 80 {
		t.Fatalf("sides %d,%d", p.A.NumVertices(), p.B.NumVertices())
	}
	if p.Alpha != 1 || p.Beta != 2 {
		t.Fatalf("objective weights %g,%g", p.Alpha, p.Beta)
	}
	// L contains the full identity matching.
	for v := 0; v < 80; v++ {
		if !p.L.HasEdge(v, v) {
			t.Fatalf("identity edge (%d,%d) missing from L", v, v)
		}
	}
	// Expected |E_L| ≈ N (identity) + 2 * N(N-1)/2 * d̄/N ≈ N + N·d̄.
	want := float64(80 + 80*4)
	got := float64(p.L.NumEdges())
	if got < want*0.6 || got > want*1.4 {
		t.Fatalf("|E_L| = %g, expected ≈ %g", got, want)
	}
	// The perturbed graphs keep the planted overlap: identity
	// indicator must overlap many edge pairs.
	if ov := p.Overlap(p.IdentityIndicator(), 1); ov < 10 {
		t.Fatalf("planted identity overlap only %g", ov)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	o := DefaultSynthetic(3, 9)
	o.N = 50
	p1, err := Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	if p1.L.NumEdges() != p2.L.NumEdges() || p1.NNZS() != p2.NNZS() {
		t.Fatalf("same seed differs: EL %d/%d nnzS %d/%d",
			p1.L.NumEdges(), p2.L.NumEdges(), p1.NNZS(), p2.NNZS())
	}
	o2 := o
	o2.Seed = 10
	p3, err := Synthetic(o2)
	if err != nil {
		t.Fatal(err)
	}
	if p3.L.NumEdges() == p1.L.NumEdges() && p3.NNZS() == p1.NNZS() &&
		p3.A.NumEdges() == p1.A.NumEdges() && p3.B.NumEdges() == p1.B.NumEdges() {
		t.Fatal("different seeds produced identical problems (statistically implausible)")
	}
}

func TestSyntheticZeroNoise(t *testing.T) {
	o := DefaultSynthetic(0, 5)
	o.N = 40
	p, err := Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	// With d̄=0, L is exactly the identity.
	if p.L.NumEdges() != 40 {
		t.Fatalf("|E_L| = %d, want 40", p.L.NumEdges())
	}
}

func TestSyntheticErrors(t *testing.T) {
	o := DefaultSynthetic(2, 1)
	o.N = 1
	if _, err := Synthetic(o); err == nil {
		t.Fatal("N=1 accepted")
	}
}

func TestStandInShape(t *testing.T) {
	p, err := StandIn(StandInOptions{
		Name: "test", NA: 120, NB: 90, LDegree: 5,
		Gamma: 2.1, MinDeg: 1, MaxDeg: 20, OverlapFraction: 0.5,
		Alpha: 1, Beta: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.A.NumVertices() != 120 || p.B.NumVertices() != 90 {
		t.Fatalf("sides %d,%d", p.A.NumVertices(), p.B.NumVertices())
	}
	// "The degree distribution in L is fairly regular": every A-vertex
	// has at least one and at most LDegree candidates.
	for a := 0; a < 120; a++ {
		d := p.L.DegreeA(a)
		if d < 1 || d > 5 {
			t.Fatalf("L degree of %d is %d, want in [1,5]", a, d)
		}
	}
	if p.NNZS() == 0 {
		t.Fatal("stand-in has no overlap structure at all")
	}
}

func TestStandInSImbalance(t *testing.T) {
	// "the non-zero distribution in S is highly irregular": max row
	// size should far exceed the mean.
	p, err := StandIn(StandInOptions{
		Name: "imb", NA: 300, NB: 300, LDegree: 4,
		Gamma: 2.0, MinDeg: 1, MaxDeg: 40, OverlapFraction: 0.6,
		Alpha: 1, Beta: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxRow, total := 0, 0
	for r := 0; r < p.S.NumRows; r++ {
		lo, hi := p.S.RowRange(r)
		if hi-lo > maxRow {
			maxRow = hi - lo
		}
		total += hi - lo
	}
	mean := float64(total) / float64(p.S.NumRows)
	if float64(maxRow) < 3*mean {
		t.Fatalf("S rows look balanced: max %d vs mean %.2f", maxRow, mean)
	}
}

func TestStandInErrors(t *testing.T) {
	if _, err := StandIn(StandInOptions{NA: 1, NB: 10}); err == nil {
		t.Fatal("degenerate sides accepted")
	}
}

func TestNamedStandInsSmallScale(t *testing.T) {
	builders := []struct {
		name  string
		build func(float64, int64, int) (*core.Problem, error)
	}{
		{"dmela-scere", DmelaScere},
		{"homo-musm", HomoMusm},
		{"lcsh-wiki", LcshWiki},
		{"lcsh-rameau", LcshRameau},
	}
	for _, b := range builders {
		p, err := b.build(0.02, 5, 2)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		st := core.ProblemStats(b.name, p)
		if st.VA < 2 || st.VB < 2 || st.EL == 0 {
			t.Fatalf("%s: degenerate stats %+v", b.name, st)
		}
	}
}

func TestScaledClamping(t *testing.T) {
	o := scaled(StandInOptions{NA: 1000, NB: 800, LDegree: 20}, 0.01)
	if o.NA != 10 || o.NB != 8 {
		t.Fatalf("scaled sizes %d,%d", o.NA, o.NB)
	}
	if o.LDegree > 8 {
		t.Fatalf("LDegree %d not clamped for tiny sides", o.LDegree)
	}
	o2 := scaled(StandInOptions{NA: 100, NB: 100}, -1)
	if o2.NA != 100 {
		t.Fatal("invalid scale should mean full size")
	}
}

func TestRMATProblem(t *testing.T) {
	p, err := RMATProblem(7, 6, 3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.A.NumVertices() != 128 || p.B.NumVertices() != 128 {
		t.Fatalf("sides %d/%d", p.A.NumVertices(), p.B.NumVertices())
	}
	if p.L.NumEdges() < 128 {
		t.Fatalf("|E_L| = %d", p.L.NumEdges())
	}
	if err := p.Verify(200, nil); err != nil {
		t.Fatal(err)
	}
	// The planted identity should carry overlap signal on a connected
	// skewed base graph.
	if ov := p.Overlap(p.IdentityIndicator(), 1); ov <= 0 {
		t.Fatalf("identity overlap %g", ov)
	}
	res := p.BPAlign(core.BPOptions{Iterations: 15})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticQualitySignal(t *testing.T) {
	// The planted alignment must dominate random matchings: its
	// objective should exceed the all-zero and be within reach of the
	// methods (sanity for the Figure 2 harness).
	o := DefaultSynthetic(6, 21)
	o.N = 60
	o.MaxDeg = 12
	p, err := Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	idObj := p.Objective(p.IdentityIndicator(), 1)
	if idObj <= 0 {
		t.Fatalf("identity objective %g", idObj)
	}
	if math.IsNaN(idObj) || math.IsInf(idObj, 0) {
		t.Fatal("identity objective not finite")
	}
}

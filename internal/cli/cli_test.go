package cli

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netalignmc/internal/core"
	"netalignmc/internal/faults"
	"netalignmc/internal/problemio"
)

func TestGenerateSynthetic(t *testing.T) {
	var buf bytes.Buffer
	p, err := Generate(GenerateOptions{Type: "synthetic", N: 40, DBar: 3, Seed: 5}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.A.NumVertices() != 40 {
		t.Fatalf("N = %d", p.A.NumVertices())
	}
	// The written document must parse back.
	q, err := problemio.Read(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.L.NumEdges() != p.L.NumEdges() {
		t.Fatal("write/read mismatch")
	}
}

func TestGenerateStandIns(t *testing.T) {
	for _, typ := range []string{"dmela-scere", "homo-musm", "lcsh-wiki", "lcsh-rameau"} {
		p, err := Generate(GenerateOptions{Type: typ, Scale: 0.01, Seed: 2}, nil)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if p.L.NumEdges() == 0 {
			t.Fatalf("%s: empty L", typ)
		}
	}
	if _, err := Generate(GenerateOptions{Type: "nope"}, nil); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestGenerateDefaultsAndOverrides(t *testing.T) {
	p, err := Generate(GenerateOptions{Type: "", N: 30, DBar: 2, Alpha: 2, Beta: 3, Perturb: 0.05, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha != 2 || p.Beta != 3 {
		t.Fatalf("objective weights %g/%g", p.Alpha, p.Beta)
	}
}

func TestAlignBothMethods(t *testing.T) {
	p, err := Generate(GenerateOptions{Type: "synthetic", N: 30, DBar: 2, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"bp", "mr", ""} {
		var buf bytes.Buffer
		res, err := Align(p, AlignOptions{Method: method, Iters: 8, Approx: true, Timing: true, Trace: true}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if err := res.Matching.Validate(p.L); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		out := buf.String()
		for _, want := range []string{"objective:", "match weight:", "overlap:", "step breakdown", "objective trace"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: output missing %q:\n%s", method, want, out)
			}
		}
	}
	if _, err := Align(p, AlignOptions{Method: "qp"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestVerify(t *testing.T) {
	p, err := Generate(GenerateOptions{Type: "synthetic", N: 25, DBar: 2, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Verify(p, nil, VerifyOptions{Samples: 100}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "problem verified") {
		t.Fatal("verify output missing")
	}

	// With a valid matching.
	res, err := Align(p, AlignOptions{Method: "bp", Iters: 5}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Verify(p, res.Matching, VerifyOptions{Samples: 50}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "matching verified") {
		t.Fatal("matching verify output missing")
	}

	// Corrupt the problem: verification must fail.
	p.S.Val[0] = 3
	if err := Verify(p, nil, VerifyOptions{}, &buf); err == nil {
		t.Fatal("corrupted problem verified")
	}
	p.S.Val[0] = 1

	// Invalid matching: mates not mutual.
	bad := *res.Matching
	bad.MateA = append([]int(nil), res.Matching.MateA...)
	for a, b := range bad.MateA {
		if b >= 0 {
			bad.MateA[a] = -1
			break
		}
	}
	if err := Verify(p, &bad, VerifyOptions{Samples: 10}, &buf); err == nil {
		t.Fatal("inconsistent matching verified")
	}
}

func TestDescribeProblem(t *testing.T) {
	p, err := Generate(GenerateOptions{Type: "synthetic", N: 20, DBar: 1, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	DescribeProblem(p, "x", &buf)
	if !strings.Contains(buf.String(), "|V_A|=20") {
		t.Fatalf("describe output: %s", buf.String())
	}
}

func TestAlignCheckpointAndResume(t *testing.T) {
	p, err := Generate(GenerateOptions{Type: "synthetic", N: 40, DBar: 3, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	var buf bytes.Buffer
	if _, err := Align(p, AlignOptions{
		Method: "bp", Iters: 8, Threads: 1,
		CheckpointPath: ckpt, CheckpointEvery: 4,
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stopped:      max-iterations") {
		t.Fatalf("missing stop reason:\n%s", buf.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// Resume continues past the checkpointed iteration.
	buf.Reset()
	res, err := Align(p, AlignOptions{
		Method: "bp", Iters: 12, Threads: 1, ResumePath: ckpt,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 12 {
		t.Fatalf("resumed run stopped at iteration %d", res.Iterations)
	}
	// A missing resume file is a clean error.
	if _, err := Align(p, AlignOptions{ResumePath: filepath.Join(dir, "nope")}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing resume file accepted")
	}
	// A checkpoint for the wrong method is a clean error.
	if _, err := Align(p, AlignOptions{Method: "mr", Iters: 4, ResumePath: ckpt}, &bytes.Buffer{}); err == nil {
		t.Fatal("bp checkpoint accepted by mr")
	}
}

func TestAlignTimeout(t *testing.T) {
	p, err := Generate(GenerateOptions{Type: "synthetic", N: 300, DBar: 4, Seed: 11}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	start := time.Now()
	res, err := Align(p, AlignOptions{Method: "bp", Iters: 1_000_000, Timeout: 100 * time.Millisecond}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) >= 2*time.Second {
		t.Fatal("timeout did not bound the run")
	}
	if res.Stopped != core.StopDeadline {
		t.Fatalf("stopped = %v", res.Stopped)
	}
	if !strings.Contains(buf.String(), "stopped:      deadline") {
		t.Fatalf("missing deadline stop reason:\n%s", buf.String())
	}
}

func TestFaultAlignNumericStop(t *testing.T) {
	p, err := Generate(GenerateOptions{Type: "synthetic", N: 40, DBar: 3, Seed: 13}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the solver into a persistent numerical failure through the
	// same path main() uses, and check the distinguishable error.
	plan := faults.NewPlan(3).WithNaN(faults.NaNInjection{Step: core.BPStepDamping, Iter: 2})
	res, runErr := p.BPAlignCtx(context.Background(), core.BPOptions{Iterations: 6, Faults: plan})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Stopped != core.StopNumerics {
		t.Fatalf("stopped = %v", res.Stopped)
	}
	// The CLI wraps that outcome in ErrNumerics; emulate the check
	// main() performs.
	wrapped := fmt.Errorf("cli: %w after %d failure(s)", ErrNumerics, res.NumericFailures)
	if !errors.Is(wrapped, ErrNumerics) {
		t.Fatal("ErrNumerics not matchable with errors.Is")
	}
}

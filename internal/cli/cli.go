// Package cli holds the testable core of the command-line tools:
// structured option types and run functions that the thin main
// packages wrap. Everything here writes human-readable output to a
// caller-supplied writer and returns errors instead of exiting, so the
// full CLI flow is exercised by unit tests.
package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
	"netalignmc/internal/problemio"
	"netalignmc/internal/stats"
)

// GenerateOptions selects and parameterizes a problem generator.
type GenerateOptions struct {
	Type    string // synthetic, dmela-scere, homo-musm, lcsh-wiki, lcsh-rameau
	N       int
	DBar    float64
	Perturb float64
	Alpha   float64
	Beta    float64
	Scale   float64
	Seed    int64
	Threads int
	// Preset selects one of the paper's Figure 4-7 synthetic scaling
	// presets (fig4..fig7); it overrides N and DBar, and Scale in
	// (0,1) shrinks the preset's vertex count proportionally.
	Preset string
}

// Generate builds the requested problem and writes it in the netalign
// format to out; it returns the problem for further use.
func Generate(o GenerateOptions, out io.Writer) (*core.Problem, error) {
	var (
		prob *core.Problem
		err  error
	)
	switch o.Type {
	case "synthetic", "":
		so := gen.DefaultSynthetic(o.DBar, o.Seed)
		if o.Preset != "" {
			so, err = gen.FigPreset(o.Preset, o.Seed)
			if err != nil {
				return nil, err
			}
			if o.Scale > 0 && o.Scale < 1 {
				if so.N = int(float64(so.N) * o.Scale); so.N < 2 {
					so.N = 2
				}
			}
		} else if o.N > 0 {
			so.N = o.N
		}
		if o.Perturb > 0 {
			so.PerturbProb = o.Perturb
		}
		if o.Alpha > 0 || o.Beta > 0 {
			so.Alpha, so.Beta = o.Alpha, o.Beta
		}
		so.Threads = o.Threads
		prob, err = gen.Synthetic(so)
	case "dmela-scere":
		prob, err = gen.DmelaScere(o.Scale, o.Seed, o.Threads)
	case "homo-musm":
		prob, err = gen.HomoMusm(o.Scale, o.Seed, o.Threads)
	case "lcsh-wiki":
		prob, err = gen.LcshWiki(o.Scale, o.Seed, o.Threads)
	case "lcsh-rameau":
		prob, err = gen.LcshRameau(o.Scale, o.Seed, o.Threads)
	default:
		return nil, fmt.Errorf("cli: unknown problem type %q", o.Type)
	}
	if err != nil {
		return nil, err
	}
	if out != nil {
		if err := problemio.Write(out, prob); err != nil {
			return nil, fmt.Errorf("cli: writing problem: %w", err)
		}
	}
	return prob, nil
}

// AlignOptions parameterizes one alignment run.
type AlignOptions struct {
	Method string // "bp" or "mr"
	Iters  int
	Batch  int
	Gamma  float64
	MStep  int
	// Approx selects approximate rounding; kept for compatibility with
	// the original flag set. Matcher supersedes it when non-empty.
	Approx bool
	// Matcher is a matcher spec string (see matching.ParseMatcherSpec):
	// "exact", "approx", "suitor", "locally-dominant(sorted=true)", ... It
	// is the one configuration surface for the rounding matcher; when
	// empty, Approx picks between "approx" and "exact".
	Matcher string
	// Fused enables the fused othermax+damping kernels (BP only; the
	// iterates are bit-identical to the unfused path).
	Fused bool
	// Pipeline enables pipelined batched rounding: the matching step
	// runs on dedicated workers while the sweeps proceed. Results are
	// bit-identical to the barrier path. PipelineDepth and
	// PipelineMatchWorkers tune the ring depth and the collector's
	// worker share (0 = defaults).
	Pipeline             bool
	PipelineDepth        int
	PipelineMatchWorkers int
	// Reorder selects the locality reordering of S's row storage:
	// "none" (default), "auto", "degree", or "rcm". Bit-identical
	// either way.
	Reorder string
	Threads int
	Timing  bool
	Trace   bool

	// Timeout bounds the run's wall time (0 = unbounded); on expiry the
	// best matching found so far is reported with stop reason
	// "deadline".
	Timeout time.Duration
	// CheckpointPath, when set, periodically writes a resumable
	// checkpoint (atomically: temp file + rename) every CheckpointEvery
	// iterations (default 10).
	CheckpointPath  string
	CheckpointEvery int
	// ResumePath, when set, resumes the run from a checkpoint written
	// by a previous invocation with the same problem and method.
	ResumePath string
	// CacheDir, when set, is a content-addressed result cache shared
	// across invocations (the same disk format netalignd's cache tier
	// uses). Before solving, Align hashes the canonical problem bytes
	// plus the output-affecting options and replays a stored result on
	// a hit; after a complete deterministic run (stopped on
	// max-iterations or convergence) it stores the result. Ignored
	// when Timeout or ResumePath is set — those runs' outcomes depend
	// on state outside the key.
	CacheDir string

	// JSON replaces the human-readable summary on out with the
	// machine-readable core.ResultJSON encoding.
	JSON bool
	// Progress streams per-iteration progress lines to ProgressOut
	// (out when nil), throttled to every ProgressEvery-th iteration
	// (0 = every iteration). The same core.ProgressReporter drives the
	// netalignd SSE stream, so the numbers agree between CLI and
	// service.
	Progress      bool
	ProgressEvery int
	ProgressOut   io.Writer
	// Ctx, when non-nil, is the base context for the run; cancelling
	// it stops the solve cooperatively with stop reason "cancelled".
	Ctx context.Context
}

// ErrNumerics is returned (wrapped) by Align when the run stopped
// because the numeric guard hit a recurring NaN/Inf or message
// explosion; the accompanying result still holds the best valid
// matching found before the failure.
var ErrNumerics = fmt.Errorf("numeric guard stopped the run")

// Align runs the requested method on a problem and writes the summary
// to out. It returns the alignment result.
func Align(p *core.Problem, o AlignOptions, out io.Writer) (*core.AlignResult, error) {
	specText := o.Matcher
	if specText == "" {
		if o.Approx {
			specText = "approx"
		} else {
			specText = "exact"
		}
	}
	spec, err := matching.ParseMatcherSpec(specText)
	if err != nil {
		return nil, fmt.Errorf("cli: %w", err)
	}
	roundingName := spec.String()
	var timer *stats.StepTimer
	if o.Timing {
		timer = stats.NewStepTimer()
	}

	methodText := o.Method
	if methodText == "" {
		methodText = "bp"
	}
	var method core.Method
	if err := method.UnmarshalText([]byte(methodText)); err != nil {
		return nil, fmt.Errorf("cli: unknown method %q", o.Method)
	}
	var reorder core.ReorderOptions
	if err := reorder.Mode.UnmarshalText([]byte(o.Reorder)); err != nil {
		return nil, fmt.Errorf("cli: %w", err)
	}
	pipeline := core.PipelineOptions{
		Enabled:      o.Pipeline,
		Depth:        o.PipelineDepth,
		MatchWorkers: o.PipelineMatchWorkers,
	}
	var resume *core.Checkpoint
	if o.ResumePath != "" {
		var err error
		resume, err = problemio.ReadCheckpointFile(o.ResumePath)
		if err != nil {
			return nil, fmt.Errorf("cli: resume: %w", err)
		}
	}
	var ckptEvery int
	var ckptFunc func(*core.Checkpoint) error
	if o.CheckpointPath != "" {
		ckptEvery = o.CheckpointEvery
		if ckptEvery <= 0 {
			ckptEvery = 10
		}
		path := o.CheckpointPath
		ckptFunc = func(c *core.Checkpoint) error {
			return problemio.WriteCheckpointFile(path, c)
		}
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}

	var bpObserver func(iter int, y, z []float64)
	var mrObserver func(iter int, wbar []float64, upper, obj float64)
	if o.Progress {
		pout := o.ProgressOut
		if pout == nil {
			pout = out
		}
		reporter := core.NewProgressReporter(p, o.ProgressEvery, func(ev core.ProgressEvent) {
			if ev.HasUpper {
				fmt.Fprintf(pout, "progress iter=%d objective=%.6f best=%.6f upper=%.6f\n",
					ev.Iter, ev.Objective, ev.Best, ev.Upper)
				return
			}
			fmt.Fprintf(pout, "progress iter=%d objective=%.6f best=%.6f\n",
				ev.Iter, ev.Objective, ev.Best)
		})
		bpObserver = reporter.BPObserver()
		mrObserver = reporter.MRObserver()
	}

	// Result cache: key the canonical problem bytes plus the
	// output-affecting option fingerprint. A hit replays the stored
	// result — guaranteed bit-identical to what the solve would
	// produce, because the solver output is a pure function of the key.
	var cacheKey cache.Key
	useCache := false
	if o.CacheDir != "" && o.ResumePath == "" && o.Timeout == 0 {
		fp, ok := core.Options{
			Method: method,
			BP:     core.BPOptions{Iterations: o.Iters, Gamma: o.Gamma, Batch: o.Batch, Matcher: spec},
			MR:     core.MROptions{Iterations: o.Iters, Gamma: o.Gamma, MStep: o.MStep, Matcher: spec},
		}.CacheFingerprint()
		if ok {
			var buf bytes.Buffer
			if err := problemio.Write(&buf, p); err == nil {
				cacheKey = cache.KeyFor(buf.Bytes(), fp)
				useCache = true
			}
		}
	}

	start := time.Now()
	var res *core.AlignResult
	var runErr error
	cached := false
	if useCache {
		if data, err := cache.LoadDisk(o.CacheDir, cacheKey); err == nil {
			var doc core.ResultJSON
			if json.Unmarshal(data, &doc) == nil {
				if r, err := doc.Restore(p); err == nil {
					res, cached = r, true
				}
			}
		}
	}
	if !cached {
		// Options carries both methods' option sets; Align reads only
		// the selected one.
		res, runErr = p.Align(ctx, core.Options{
			Method:   method,
			Pipeline: pipeline,
			Reorder:  reorder,
			BP: core.BPOptions{
				Iterations: o.Iters, Gamma: o.Gamma, Batch: o.Batch,
				Threads: o.Threads, Matcher: spec, FuseKernels: o.Fused,
				Timer: timer, Trace: o.Trace,
				Observer: bpObserver,
				Resume:   resume, CheckpointEvery: ckptEvery, CheckpointFunc: ckptFunc,
			},
			MR: core.MROptions{
				Iterations: o.Iters, Gamma: o.Gamma, MStep: o.MStep,
				Threads: o.Threads, Matcher: spec,
				Timer: timer, Trace: o.Trace,
				Observer: mrObserver,
				Resume:   resume, CheckpointEvery: ckptEvery, CheckpointFunc: ckptFunc,
			},
		})
	}
	elapsed := time.Since(start)
	if runErr != nil {
		return res, fmt.Errorf("cli: %s run: %w", method, runErr)
	}
	if useCache && !cached &&
		(res.Stopped == core.StopMaxIter || res.Stopped == core.StopConverged) {
		// Only deterministic completions enter the cache; cancelled and
		// numerics outcomes depend on when the run was interrupted.
		if data, err := json.Marshal(res.JSON()); err == nil {
			_ = cache.StoreDisk(o.CacheDir, cacheKey, data)
		}
	}

	if o.JSON {
		// Machine mode: out carries exactly one JSON document (the
		// same encoding netalignd stores as result.json) and nothing
		// else. The problem summary rides along so scripts can relate
		// solver behaviour to the instance's nonzero skew.
		doc := res.JSON()
		doc.Problem = p.ProblemSummaryJSON()
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return res, fmt.Errorf("cli: encoding result: %w", err)
		}
		if res.Stopped == core.StopNumerics {
			return res, fmt.Errorf("cli: %w after %d failure(s)", ErrNumerics, res.NumericFailures)
		}
		return res, nil
	}

	threads := o.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(out, "method: %s  rounding: %s  threads: %d  iterations: %d\n",
		method, roundingName, threads, res.Iterations)
	fmt.Fprintf(out, "objective:    %.4f\n", res.Objective)
	fmt.Fprintf(out, "match weight: %.4f\n", res.MatchWeight)
	fmt.Fprintf(out, "overlap:      %.1f\n", res.Overlap)
	fmt.Fprintf(out, "matched:      %d pairs (best found at iteration %d of %d evaluations)\n",
		res.Matching.Card, res.BestIter, res.Evaluations)
	fmt.Fprintf(out, "stopped:      %s\n", res.Stopped)
	if res.NumericFailures > 0 {
		fmt.Fprintf(out, "numeric guard tripped %d time(s)\n", res.NumericFailures)
	}
	if cached {
		fmt.Fprintf(out, "cached:       result replayed from %s\n", o.CacheDir)
	}
	fmt.Fprintf(out, "elapsed:      %v\n", elapsed.Round(time.Millisecond))
	if res.Pipeline != nil {
		fmt.Fprintf(out, "pipeline:     %d batches, overlap %v, stall %v, hidden %v\n",
			res.Pipeline.Batches,
			time.Duration(res.Pipeline.OverlapNs).Round(time.Microsecond),
			time.Duration(res.Pipeline.StallNs).Round(time.Microsecond),
			time.Duration(res.Pipeline.HiddenMatchNs).Round(time.Microsecond))
	}
	if timer != nil {
		fmt.Fprintf(out, "\nstep breakdown:\n%s", timer)
	}
	if o.Trace {
		fmt.Fprintf(out, "\nobjective trace:\n")
		for i, obj := range res.ObjectiveTrace {
			fmt.Fprintf(out, "  eval %4d: %.4f\n", i+1, obj)
		}
	}
	if res.Stopped == core.StopNumerics {
		return res, fmt.Errorf("cli: %w after %d failure(s); best matching before the failure is reported above", ErrNumerics, res.NumericFailures)
	}
	return res, nil
}

// VerifyOptions parameterizes the verify command.
type VerifyOptions struct {
	// Samples is the number of random S entries to cross-check against
	// the overlap definition (0 = exhaustive over stored entries, only
	// sensible for small problems).
	Samples int
	// Reference, when non-nil, is compared against for precision and
	// recall.
	Reference *matching.Result
}

// Verify checks a problem's internal consistency and, when a matching
// is supplied, validates and reports it. It writes a human-readable
// report and returns an error when anything fails to verify.
func Verify(p *core.Problem, m *matching.Result, o VerifyOptions, out io.Writer) error {
	if err := p.Verify(o.Samples, nil); err != nil {
		return fmt.Errorf("cli: problem verification failed: %w", err)
	}
	fmt.Fprintf(out, "problem verified: S agrees with the overlap definition\n")
	if m == nil {
		return nil
	}
	if err := m.Validate(p.L); err != nil {
		return fmt.Errorf("cli: matching invalid: %w", err)
	}
	rep := p.NewReport(m, o.Reference, 0)
	fmt.Fprintf(out, "matching verified:\n%s", rep)
	return nil
}

// DescribeProblem writes the Table II-style one-line summary plus the
// S row-nonzero skew (Section VI's imbalance observation, and the
// quantity that decides how much nnz-balanced partitioning helps).
func DescribeProblem(p *core.Problem, label string, out io.Writer) {
	st := core.ProblemStats(label, p)
	fmt.Fprintf(out, "problem: |V_A|=%d |V_B|=%d |E_L|=%d nnz(S)=%d alpha=%g beta=%g\n",
		st.VA, st.VB, st.EL, st.NnzS, p.Alpha, p.Beta)
	fmt.Fprintf(out, "S row nnz: max=%d mean=%.2f max/mean=%.2f gini=%.3f\n",
		st.MaxSRow, st.MeanSRow, st.Imbalance, st.SRowGini)
}

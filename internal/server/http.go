package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/core"
	"netalignmc/internal/parallel"
)

// maxBodyBytes bounds an uploaded job body (problems are uploaded
// inline as text).
const maxBodyBytes = 64 << 20

// maxHandoffBytes bounds a POST /v1/handoff body: a job spec plus
// base64-encoded canonical problem and checkpoint payloads, so the
// limit sits above maxBodyBytes with room for the encoding overhead.
const maxHandoffBytes = 256 << 20

// SSE stream tuning: how often an idle stream emits a ": keepalive"
// comment, and the per-write deadline each event write arms (a client
// that cannot absorb a write within it is dropped).
const (
	sseKeepaliveEvery = 15 * time.Second
	sseWriteTimeout   = 30 * time.Second
)

// Server is the HTTP surface over a job backend. The CRUD routes
// (submit, status, list, cancel, requeue, result) go through the
// transport-agnostic Backend interface; the event stream, metrics and
// health endpoints need the local Manager (SSE brokers and counter
// snapshots have no remote form — the cluster router proxies those
// routes raw instead).
type Server struct {
	be  Backend
	mgr *Manager
	mux *http.ServeMux
	// drainFn, when set via SetDrainFunc, is what POST /v1/drain
	// invokes (once) to begin a full drain — the daemon wires it to
	// the same shutdown path SIGTERM takes, so an HTTP drain also
	// hands queued jobs to ring successors and exits. Without it the
	// handler falls back to draining the manager in place (the process
	// keeps serving reads).
	drainFn   func()
	drainOnce sync.Once
}

// NewServer builds the HTTP API for a manager. The job routes live
// under /v1/; the unversioned paths are served directly by the same
// handlers (not redirects, so POST bodies and SSE streams work
// unchanged through either prefix).
func NewServer(mgr *Manager) *Server {
	s := &Server{be: LocalBackend{M: mgr}, mgr: mgr, mux: http.NewServeMux()}
	for _, prefix := range []string{"/v1", ""} {
		s.mux.HandleFunc("POST "+prefix+"/jobs", s.handleSubmit)
		s.mux.HandleFunc("GET "+prefix+"/jobs", s.handleList)
		s.mux.HandleFunc("GET "+prefix+"/jobs/{id}", s.handleStatus)
		s.mux.HandleFunc("GET "+prefix+"/jobs/{id}/result", s.handleResult)
		s.mux.HandleFunc("GET "+prefix+"/jobs/{id}/events", s.handleEvents)
		s.mux.HandleFunc("POST "+prefix+"/jobs/{id}/requeue", s.handleRequeue)
		s.mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", s.handleCancel)
		s.mux.HandleFunc("GET "+prefix+"/cache/{key}", s.handleCacheGet)
		s.mux.HandleFunc("POST "+prefix+"/drain", s.handleDrain)
		s.mux.HandleFunc("POST "+prefix+"/handoff", s.handleHandoff)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorDetail is the payload of the JSON error envelope: a stable
// machine-readable code plus a human-readable message.
type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the JSON error envelope: {"error": {"code", "message"}}.
// Every non-2xx response from the job API uses this shape.
type errorBody struct {
	Error errorDetail `json:"error"`
}

// Error codes used by the job API.
const (
	errBadRequest     = "bad_request"
	errNotFound       = "not_found"
	errNotReady       = "not_ready"
	errQueueFull      = "queue_full"
	errDraining       = "draining"
	errInternal       = "internal"
	errUnsupported    = "unsupported"
	errTooLarge       = "body_too_large"
	errOverloaded     = "overloaded"
	errDiskPressure   = "disk_pressure"
	errNotQuarantined = "not_quarantined"
	errCacheMiss      = "cache_miss"
	errTenantQuota    = "tenant_quota"
	errHandedOff      = "handed_off"
)

// CacheSHA256Header carries the hex SHA-256 of a GET /v1/cache/{key}
// payload; peer-fill clients recompute and reject on mismatch, so a
// corrupted (or actively wrong) peer response can never enter a
// node's cache.
const CacheSHA256Header = "X-Netalign-Sha256"

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, errTooLarge,
				"job body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, errBadRequest, "decode job spec: %v", err)
		return
	}
	st, err := s.be.Submit(spec)
	// Every 429's Retry-After is tenant-scoped: the hint is the
	// submitting tenant's own backlog over its own drain rate, so one
	// tenant's flood never inflates another tenant's backoff.
	retryAfter := func() string {
		return strconv.FormatInt(s.mgr.TenantRetryAfterSeconds(spec.tenantName()), 10)
	}
	switch {
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusBadRequest, errBadRequest, "%v", err)
	case errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", retryAfter())
		writeError(w, http.StatusTooManyRequests, errTenantQuota, "%v", err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfter())
		writeError(w, http.StatusTooManyRequests, errQueueFull, "%v", err)
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", retryAfter())
		writeError(w, http.StatusTooManyRequests, errOverloaded, "%v", err)
	case errors.Is(err, ErrDiskPressure):
		writeError(w, http.StatusServiceUnavailable, errDiskPressure, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, errDraining, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// ?state=&tenant=&class= filter the listing and compose (AND). The
	// operator's main uses are ?state=quarantined — the jobs needing a
	// requeue decision — and ?tenant=X, one tenant's traffic.
	q := r.URL.Query()
	f := ListFilter{
		State:  State(q.Get("state")),
		Tenant: q.Get("tenant"),
		Class:  q.Get("class"),
	}
	if f.State != "" && !validState(f.State) {
		writeError(w, http.StatusBadRequest, errBadRequest, "unknown state %q", f.State)
		return
	}
	switch f.Class {
	case "", ClassInteractive, ClassBatch:
	default:
		writeError(w, http.StatusBadRequest, errBadRequest, "unknown class %q", f.Class)
		return
	}
	if err := validTenant(f.Tenant); err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, "%v", err)
		return
	}
	list, err := s.be.List(f)
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, list)
}

// handleRequeue puts a quarantined job back in the run queue.
func (s *Server) handleRequeue(w http.ResponseWriter, r *http.Request) {
	st, err := s.be.Requeue(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, errNotFound, "job %s not found", r.PathValue("id"))
	case errors.Is(err, ErrNotQuarantined):
		writeError(w, http.StatusConflict, errNotQuarantined, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, errDraining, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.be.Status(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, errNotFound, "job %s not found", r.PathValue("id"))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.be.Status(id)
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, errNotFound, "job %s not found", id)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return
	}
	if !st.State.Terminal() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, errNotReady, "job %s is %s; result not ready", id, st.State)
		return
	}
	rc, size, err := s.be.OpenResult(id)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Terminal without a result: failed before producing one (or
		// cancelled while still queued).
		writeError(w, http.StatusNotFound, errNotFound, "job %s is %s with no result: %s", id, st.State, st.Error)
		return
	case errors.Is(err, ErrNotReady):
		// The job regressed from terminal between the two lookups
		// (requeue race); report like any other not-ready result.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, errNotReady, "job %s result not ready", id)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return
	}
	defer rc.Close()
	// Stream from the spool file instead of buffering: a result's
	// matching scales with the problem, and holding the whole document
	// per in-flight request multiplies peak memory by concurrency.
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, rc)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.be.Cancel(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, errNotFound, "job %s not found", r.PathValue("id"))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's lifecycle as server-sent events. Each
// event is one of:
//
//	event: state     — a JobStatus snapshot (sent on subscribe and on
//	                   every state change)
//	event: progress  — a core.ProgressEvent per observed iteration
//	event: lagged    — a JobStatus snapshot, sent when this consumer
//	                   was too slow and progress events were dropped
//
// The contract is at-least-once-snapshot: individual progress events
// may be lost to a slow consumer, but the gap is always announced via
// a "lagged" event carrying the job's current state, and a final state
// snapshot always ends a completed stream. The stream ends when the
// job reaches a terminal state or the client disconnects.
//
// A ": keepalive" SSE comment goes out every sseKeepaliveEvery of
// idleness so NATed/proxied connections stay open and a dead client is
// detected even while a long solve produces no events. Every write —
// event or keepalive — resets a per-write deadline through
// http.NewResponseController, which both bounds how long a wedged
// client can pin the handler and exempts the stream from the server's
// global WriteTimeout (which would otherwise kill any SSE stream
// outliving it). Any write error unsubscribes and ends the handler.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound, "job %s not found", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errUnsupported, "streaming unsupported")
		return
	}
	// Subscribe before snapshotting the state so no transition between
	// the snapshot and the subscription is missed.
	sub, cancel := j.eventsBroker().subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ctl := http.NewResponseController(w)
	writeEvent := func(ev Event) bool {
		_ = ctl.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	initial, err := json.Marshal(j.Status())
	if err == nil {
		if !writeEvent(Event{Type: "state", Data: initial}) {
			return
		}
	}
	keepalive := time.NewTicker(sseKeepaliveEvery)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			_ = ctl.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev, ok := <-sub.Events():
			if !ok {
				// Broker closed: the job is terminal. Send a final
				// state snapshot so late transitions are never lost.
				final, err := json.Marshal(j.Status())
				if err == nil {
					writeEvent(Event{Type: "state", Data: final})
				}
				return
			}
			if sub.TakeLagged() {
				// This consumer missed events while stalled; announce
				// the gap with a current snapshot before resuming the
				// buffered stream.
				snap, err := json.Marshal(j.Status())
				if err == nil && !writeEvent(Event{Type: "lagged", Data: snap}) {
					return
				}
			}
			if !writeEvent(ev) {
				return
			}
		}
	}
}

// handleHealthz is pure liveness: 200 whenever the process can answer
// HTTP at all, including while draining or under pressure. Routing
// decisions belong to /readyz — a load balancer that killed a
// draining process on a failed health check would cut off the very
// checkpoint flush that makes the drain safe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the routing signal: 503 while the node would refuse
// new work anyway — draining, shedding for memory, or refusing for
// disk pressure — so the cluster router (and any load balancer)
// steers submissions to nodes that will accept them.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.be.Ready(); err != nil {
		reason := "unready"
		switch {
		case errors.Is(err, ErrDraining):
			reason = "draining"
		case errors.Is(err, ErrOverloaded):
			reason = "memory_pressure"
		case errors.Is(err, ErrDiskPressure):
			reason = "disk_pressure"
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleCacheGet serves one result-cache entry by content address —
// the peer-fill protocol: a ring neighbor that misses locally probes
// this endpoint before solving, so results migrate after ring changes
// instead of being recomputed. The payload's SHA-256 rides along in
// CacheSHA256Header for end-to-end validation; lookups bypass the
// node's own hit/miss counters (a neighbor's probe is not this node's
// traffic).
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, "%v", err)
		return
	}
	data, ok := s.mgr.CachePeek(key)
	if !ok {
		writeError(w, http.StatusNotFound, errCacheMiss, "no cached result for %s", key)
		return
	}
	sum := sha256.Sum256(data)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheSHA256Header, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// SetDrainFunc installs the callback POST /v1/drain invokes to begin
// a full drain. The daemon wires it to the same path SIGTERM takes
// (cancel the serve context → Manager.Shutdown with the drain
// timeout → handoff → exit); tests wire test-local equivalents. Call
// before serving; nil leaves the handler's in-place fallback.
func (s *Server) SetDrainFunc(fn func()) { s.drainFn = fn }

// defaultDrainWait bounds the in-place drain the handler falls back
// to when no drain func is installed.
const defaultDrainWait = 30 * time.Second

// handleDrain begins a proactive drain: the manager stops accepting
// work immediately (readyz flips to draining before the response is
// written, so routers steer away at once) and the full drain —
// cancel running jobs at their next checkpoint boundary, hand queued
// jobs to ring successors — proceeds in the background. 202 always;
// repeated posts are idempotent.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.drainOnce.Do(func() {
		// Flip the readiness signal synchronously: the 202 must imply
		// "no new work will be accepted here".
		s.mgr.draining.Store(true)
		if s.drainFn != nil {
			go s.drainFn()
			return
		}
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), defaultDrainWait)
			defer cancel()
			_ = s.mgr.Shutdown(ctx)
		}()
	})
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
}

// handleHandoff admits a draining peer's exported job (see
// Manager.AdmitHandoff). The same admission gates as a fresh
// submission apply, with the same status codes, so a refused handoff
// makes the sender try the next ring successor.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxHandoffBytes)
	var h HandoffJob
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, errTooLarge,
				"handoff body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, errBadRequest, "decode handoff: %v", err)
		return
	}
	st, err := s.mgr.AdmitHandoff(&h)
	retryAfter := func() string {
		return strconv.FormatInt(s.mgr.TenantRetryAfterSeconds(h.Spec.tenantName()), 10)
	}
	switch {
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusBadRequest, errBadRequest, "%v", err)
	case errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", retryAfter())
		writeError(w, http.StatusTooManyRequests, errTenantQuota, "%v", err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfter())
		writeError(w, http.StatusTooManyRequests, errQueueFull, "%v", err)
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", retryAfter())
		writeError(w, http.StatusTooManyRequests, errOverloaded, "%v", err)
	case errors.Is(err, ErrDiskPressure):
		writeError(w, http.StatusServiceUnavailable, errDiskPressure, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, errDraining, "%v", err)
	case errors.Is(err, ErrAlreadyHandedOff):
		// This node gave the id away in an earlier drain and only holds
		// a tombstone; a 202 here would orphan the sender's live copy.
		writeError(w, http.StatusConflict, errHandedOff, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, errInternal, "%v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleMetrics renders the manager snapshot in the Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.mgr.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("netalignd_uptime_seconds", "Seconds since the server started.", m.UptimeSeconds)
	gauge("netalignd_queue_depth", "Jobs waiting in the FIFO queue.", float64(m.QueueDepth))
	gauge("netalignd_jobs_running", "Jobs currently solving.", float64(m.Running))
	counter("netalignd_jobs_submitted_total", "Jobs accepted.", m.Submitted)
	counter("netalignd_jobs_resumed_total", "Jobs requeued from the spool at startup.", m.Resumed)
	counter("netalignd_jobs_interrupted_total", "Runs interrupted by drain or crash.", m.Interrupted)
	counter("netalignd_jobs_rejected_total", "Submissions rejected by backpressure.", m.Rejected)
	counter("netalignd_jobs_completed_total", "Jobs finished done.", m.Completed)
	counter("netalignd_jobs_failed_total", "Jobs finished failed.", m.Failed)
	counter("netalignd_jobs_cancelled_total", "Jobs cancelled.", m.Cancelled)
	counter("netalignd_jobs_numerics_total", "Jobs stopped by the numeric guard.", m.Numerics)
	counter("netalignd_jobs_coalesced_total", "Submissions coalesced onto an identical inflight job.", m.Coalesced)
	counter("netalignd_jobs_retried_total", "Failed attempts re-enqueued with backoff.", m.Retried)
	counter("netalignd_jobs_quarantined_total", "Jobs quarantined after exhausting their retry budget or crash-looping.", m.Quarantined)
	counter("netalignd_jobs_requeued_total", "Quarantined jobs put back by the requeue endpoint.", m.Requeued)
	counter("netalignd_jobs_stalled_total", "Runs cancelled by the stall watchdog.", m.Stalled)
	counter("netalignd_jobs_shed_memory_total", "Submissions refused under memory pressure.", m.ShedMemory)
	counter("netalignd_jobs_refused_disk_total", "Submissions refused under disk pressure.", m.RefusedDisk)
	counter("netalignd_jobs_preempted_total", "Batch runs checkpoint-preempted for interactive jobs.", m.Preempted)
	counter("netalignd_jobs_shed_quota_total", "Submissions refused by per-tenant admission quotas.", m.ShedQuota)
	counter("netalignd_jobs_deadline_expired_total", "Jobs failed because their queue deadline passed before dispatch.", m.Expired)
	counter("netalignd_handoff_sent_total", "Queued jobs exported to a ring successor during drain.", m.HandoffSent)
	counter("netalignd_handoff_received_total", "Drained jobs admitted from a peer's handoff.", m.HandoffReceived)
	counter("netalignd_handoff_failed_total", "Drain exports no peer accepted (job stayed queued in the spool).", m.HandoffFailed)
	gauge("netalignd_jobs_quarantined", "Jobs currently quarantined.", float64(m.QuarantinedNow))
	gauge("netalignd_disk_free_bytes", "Free bytes on the spool volume at the last pressure sample.", float64(m.DiskFreeBytes))
	gauge("netalignd_rss_bytes", "Process resident set size at the last pressure sample.", float64(m.RSSBytes))
	gauge("netalignd_disk_pressure_level", "Disk pressure level: 0 ok, 1 degraded, 2 refusing.", float64(m.DiskPressure))
	memPressure := 0.0
	if m.MemPressure {
		memPressure = 1
	}
	gauge("netalignd_memory_pressure", "1 while submissions are shed for memory pressure.", memPressure)
	gauge("netalignd_retry_after_seconds", "Current Retry-After hint attached to shed submissions.", float64(m.RetryAfterSec))
	if len(m.Tenants) > 0 {
		names := tenantNames(m.Tenants)
		tgauge := func(name, help string, f func(TenantMetrics) float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, t := range names {
				fmt.Fprintf(w, "%s{tenant=%q} %g\n", name, t, f(m.Tenants[t]))
			}
		}
		tcounter := func(name, help string, f func(TenantMetrics) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, t := range names {
				fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, t, f(m.Tenants[t]))
			}
		}
		tgauge("netalignd_tenant_weight", "Configured fair-share weight.", func(t TenantMetrics) float64 { return float64(t.Weight) })
		tgauge("netalignd_tenant_queue_depth", "Jobs waiting in the tenant's queues.", func(t TenantMetrics) float64 { return float64(t.Queued) })
		tgauge("netalignd_tenant_queue_depth_interactive", "Interactive jobs waiting in the tenant's queue.", func(t TenantMetrics) float64 { return float64(t.QueuedInteractive) })
		tgauge("netalignd_tenant_jobs_running", "Tenant jobs currently solving.", func(t TenantMetrics) float64 { return float64(t.Running) })
		tcounter("netalignd_tenant_jobs_submitted_total", "Jobs accepted for the tenant.", func(t TenantMetrics) int64 { return t.Submitted })
		tcounter("netalignd_tenant_jobs_completed_total", "Tenant jobs finished done.", func(t TenantMetrics) int64 { return t.Completed })
		tcounter("netalignd_tenant_jobs_preempted_total", "Tenant batch runs checkpoint-preempted.", func(t TenantMetrics) int64 { return t.Preempted })
		tcounter("netalignd_tenant_jobs_shed_total", "Tenant submissions refused by quota or memory pressure.", func(t TenantMetrics) int64 { return t.Shed })
		tgauge("netalignd_tenant_queue_wait_seconds_total", "Cumulative queue wait charged to dispatched tenant jobs.", func(t TenantMetrics) float64 { return t.WaitSeconds })
	}
	if m.PeerFillEnabled {
		counter("netalignd_peer_fill_total", "Submissions admitted from a peer's cache instead of solving.", m.PeerFills)
		counter("netalignd_peer_fill_probes_total", "Cache probes sent to ring neighbors.", m.PeerFill.Probes)
		counter("netalignd_peer_fill_rejects_total", "Peer payloads rejected by hash validation.", m.PeerFill.Rejects)
		counter("netalignd_peer_fill_misses_total", "Peer probes that found no entry anywhere.", m.PeerFill.Misses)
		counter("netalignd_peer_fill_skipped_total", "Peer probes skipped because the peer was marked down.", m.PeerFill.Skips)
	}
	if m.CacheEnabled {
		counter("netalignd_cache_hits_total", "Result-cache hits (memory or disk).", m.CacheHits)
		counter("netalignd_cache_disk_hits_total", "Result-cache hits served from the disk tier.", m.CacheDiskHits)
		counter("netalignd_cache_misses_total", "Result-cache misses.", m.CacheMisses)
		counter("netalignd_cache_evictions_total", "Result-cache entries evicted by the byte bound.", m.CacheEvicted)
		counter("netalignd_cache_corrupt_total", "Corrupt disk-tier entries detected and removed.", m.CacheCorrupt)
		gauge("netalignd_cache_bytes", "Serialized result bytes held in memory.", float64(m.CacheBytes))
		gauge("netalignd_cache_entries", "Results held in the memory tier.", float64(m.CacheEntries))
	}
	const stepName = "netalignd_solve_step_seconds"
	fmt.Fprintf(w, "# HELP %s Cumulative solver time per pipeline stage.\n# TYPE %s counter\n", stepName, stepName)
	steps := make([]string, 0, len(m.StepSeconds))
	for step := range m.StepSeconds {
		steps = append(steps, step)
	}
	sort.Strings(steps)
	for _, step := range steps {
		fmt.Fprintf(w, "%s{step=%q} %g\n", stepName, step, m.StepSeconds[step])
	}
	// Parallel-region scheduler health: pool utilization and how often
	// regions fell off the zero-allocation pool path.
	sched := parallel.Stats()
	gauge("netalignd_sched_pool_workers", "Parked parallel-pool workers alive.", float64(sched.PoolWorkers))
	gauge("netalignd_sched_workers_busy", "Pool workers executing a region right now.", float64(sched.WorkersBusy))
	counter("netalignd_sched_pool_regions_total", "Parallel regions dispatched on a worker pool.", sched.PoolRegions)
	counter("netalignd_sched_spawn_regions_total", "Parallel regions that fell back to goroutine spawning.", sched.SpawnRegions)
	counter("netalignd_sched_shared_busy_fallbacks_total", "Free-function regions that found the shared pool occupied.", sched.SharedBusyFallbacks)
	// Pipelined-rounding overlap: how much matching wall time solves
	// hid behind their sweeps.
	pipe := core.ReadPipelineCounters()
	counter("netalignd_pipeline_runs_total", "Solves that ran with pipelined rounding engaged.", pipe.Runs)
	counter("netalignd_pipeline_batches_total", "Rounding batches submitted to pipeline collectors.", pipe.Batches)
	counter("netalignd_pipeline_overlap_ns_total", "Collector busy nanoseconds (rounding off the critical path).", pipe.OverlapNs)
	counter("netalignd_pipeline_stall_ns_total", "Main-loop nanoseconds blocked on pipeline rings and drains.", pipe.StallNs)
	counter("netalignd_pipeline_hidden_ns_total", "Rounding nanoseconds genuinely overlapped with sweeps (overlap minus stall).", pipe.HiddenNs)
}

// PublishExpvars registers the manager snapshot under the "netalignd"
// expvar. Call at most once per process (expvar panics on duplicate
// names), so this lives outside NewServer — tests build many servers.
func (s *Server) PublishExpvars() {
	expvar.Publish("netalignd", expvar.Func(func() any {
		return s.mgr.Snapshot()
	}))
	expvar.Publish("netalignd_sched", expvar.Func(func() any {
		return parallel.Stats()
	}))
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"testing"
	"time"
)

// jobFor builds a bare queued job for scheduler unit tests.
func jobFor(tenant, class string, n int) *Job {
	j := &Job{ID: tenant + "-" + class + "-" + strconv.Itoa(n),
		Spec: Spec{Tenant: tenant, Class: class}}
	j.events.Store(newBroker())
	return j
}

// TestStrideWeightedFairness pins the tentpole's fairness property at
// the unit level, with no timing in the loop: under a saturated queue,
// a 3:1 weight ratio yields a 3:1 dispatch ratio.
func TestStrideWeightedFairness(t *testing.T) {
	s := newSchedQueue(map[string]int64{"gold": 3, "bronze": 1})
	for i := 0; i < 40; i++ {
		s.push(jobFor("gold", ClassBatch, i), false)
		s.push(jobFor("bronze", ClassBatch, i), false)
	}
	counts := map[string]int{}
	now := time.Now()
	for i := 0; i < 40; i++ {
		j := s.pop(now)
		if j == nil {
			t.Fatalf("pop %d returned nil with %d jobs queued", i, s.size)
		}
		counts[j.Spec.tenantName()]++
	}
	// Stride scheduling is deterministic: over 40 dispatches the 3:1
	// split is exact up to ±1 from pass-alignment at the window edges.
	if g := counts["gold"]; g < 29 || g > 31 {
		t.Errorf("gold got %d of 40 dispatches, want ~30 (3:1 over bronze's %d)", g, counts["bronze"])
	}
	// An idle tenant banks no credit: drain everything, let vtime
	// advance, and a late-arriving tenant must not monopolize.
	for s.size > 0 {
		s.pop(now)
	}
	for i := 0; i < 8; i++ {
		s.push(jobFor("late", ClassBatch, i), false)
		s.push(jobFor("gold", ClassBatch, i), false)
	}
	firstFour := map[string]int{}
	for i := 0; i < 4; i++ {
		firstFour[s.pop(now).Spec.tenantName()]++
	}
	if firstFour["late"] == 4 {
		t.Errorf("late tenant took all first 4 dispatches; activation rule failed to clamp its pass to vtime")
	}
}

// TestSchedClassPriority: interactive drains before batch across
// tenants, and a front push (preemption park) dispatches next within
// its class.
func TestSchedClassPriority(t *testing.T) {
	s := newSchedQueue(nil)
	b0 := jobFor("a", ClassBatch, 0)
	b1 := jobFor("a", ClassBatch, 1)
	i0 := jobFor("b", ClassInteractive, 0)
	s.push(b0, false)
	s.push(b1, false)
	s.push(i0, false)
	now := time.Now()
	if j := s.pop(now); j != i0 {
		t.Fatalf("first pop = %s, want the interactive job", j.ID)
	}
	if j := s.pop(now); j != b0 {
		t.Fatalf("second pop = %s, want the older batch job", j.ID)
	}
	// b0 parks back at the head (preemption): it must dispatch before b1.
	s.push(b0, true)
	if j := s.pop(now); j != b0 {
		t.Fatalf("pop after front-park = %s, want the parked job first", j.ID)
	}
	if j := s.pop(now); j != b1 {
		t.Fatalf("final pop = %s, want b1", j.ID)
	}
	if s.size != 0 {
		t.Errorf("size = %d after draining, want 0", s.size)
	}
}

// TestSubmitTenantClassValidation: the v1 submit API rejects unknown
// classes, malformed tenants and negative deadlines with 400, and
// echoes effective tenant/class in every status snapshot.
func TestSubmitTenantClassValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown class", func(s *Spec) { s.Class = "realtime" }},
		{"tenant bad char", func(s *Spec) { s.Tenant = "team/a" }},
		{"tenant too long", func(s *Spec) { s.Tenant = string(bytes.Repeat([]byte("x"), 65)) }},
		{"negative deadline", func(s *Spec) { s.DeadlineMS = -5 }},
	}
	for _, tc := range bad {
		spec := smallSpec()
		tc.mut(&spec)
		resp, body := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", tc.name, resp.StatusCode, body)
		}
	}

	// Untagged submissions get the defaults; tagged ones echo back.
	plain := submitOK(t, ts, smallSpec())
	if st := getStatus(t, ts, plain); st.Tenant != DefaultTenant || st.Class != ClassBatch {
		t.Errorf("untagged job status tenant/class = %q/%q, want %q/%q",
			st.Tenant, st.Class, DefaultTenant, ClassBatch)
	}
	spec := smallSpec()
	spec.Tenant = "team-a"
	spec.Class = ClassInteractive
	spec.Generator.Seed = 8 // distinct problem; no coalescing ambiguity
	tagged := submitOK(t, ts, spec)
	if st := getStatus(t, ts, tagged); st.Tenant != "team-a" || st.Class != ClassInteractive {
		t.Errorf("tagged job status tenant/class = %q/%q, want team-a/interactive", st.Tenant, st.Class)
	}
}

// TestTenantQuotaScoped429: one tenant at its quota gets its own 429
// (code tenant_quota, Retry-After attached) while another tenant's
// submissions are still admitted — the quota is scoped, not global.
func TestTenantQuotaScoped429(t *testing.T) {
	mgr, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16, TenantQuota: 1})

	flood := func(tenant string, seed int64) Spec {
		s := longSpec()
		s.Tenant = tenant
		s.Generator.Seed = seed
		return s
	}
	running := submitOK(t, ts, flood("noisy", 21))
	waitState(t, ts, running, StateRunning, 30*time.Second)
	queued := submitOK(t, ts, flood("noisy", 22)) // depth 1 = quota
	resp, body := postJob(t, ts, flood("noisy", 23))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d body %s, want 429", resp.StatusCode, body)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "tenant_quota" {
		t.Errorf("over-quota error code = %q (err %v), want tenant_quota", env.Error.Code, err)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("tenant-quota 429 without Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 || n > 120 {
		t.Errorf("Retry-After = %q, want an integer in [1,120]", ra)
	}

	// The other tenant is unaffected by noisy's full queue.
	other := submitOK(t, ts, flood("quiet", 24))

	m := mgr.Snapshot()
	if m.ShedQuota < 1 {
		t.Errorf("ShedQuota counter = %d, want >= 1", m.ShedQuota)
	}
	if tm, ok := m.Tenants["noisy"]; !ok || tm.Shed < 1 {
		t.Errorf("tenants[noisy].Shed = %+v, want >= 1 shed on record", m.Tenants["noisy"])
	}
	if tm, ok := m.Tenants["quiet"]; !ok || tm.Submitted != 1 {
		t.Errorf("tenants[quiet] = %+v, want 1 submitted", m.Tenants["quiet"])
	}
	for _, id := range []string{running, queued, other} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if dresp, err := http.DefaultClient.Do(req); err == nil {
			dresp.Body.Close()
		}
	}
}

// TestInteractivePreemptsBatch: with every worker slot held by batch
// work, an interactive arrival is served ahead of the whole batch
// backlog — the running batch job checkpoints, parks, and the
// interactive job's queue wait stays bounded by one checkpoint
// interval instead of one batch runtime.
func TestInteractivePreemptsBatch(t *testing.T) {
	mgr, ts := newTestServer(t, Config{Workers: 1, Preempt: true})

	batch := func(seed int64) Spec {
		s := longSpec() // effectively infinite without cancel
		s.Generator.Seed = seed
		s.Tenant = "bulk"
		return s
	}
	blocker := submitOK(t, ts, batch(31))
	waitState(t, ts, blocker, StateRunning, 30*time.Second)
	queuedBatch := submitOK(t, ts, batch(32))

	urgent := smallSpec()
	urgent.Tenant = "ops"
	urgent.Class = ClassInteractive
	id := submitOK(t, ts, urgent)
	// The interactive job must complete while the infinite batch jobs
	// still exist — impossible without preemption on a 1-worker pool.
	waitState(t, ts, id, StateDone, 60*time.Second)

	if st := getStatus(t, ts, blocker); st.Preemptions < 1 {
		t.Errorf("blocker preemptions = %d, want >= 1 (state %s)", st.Preemptions, st.State)
	}
	m := mgr.Snapshot()
	if m.Preempted < 1 {
		t.Errorf("Preempted counter = %d, want >= 1", m.Preempted)
	}
	if tm := m.Tenants["bulk"]; tm.Preempted < 1 {
		t.Errorf("tenants[bulk].Preempted = %d, want >= 1", tm.Preempted)
	}
	for _, jid := range []string{blocker, queuedBatch} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jid, nil)
		if dresp, err := http.DefaultClient.Do(req); err == nil {
			dresp.Body.Close()
		}
	}
}

// TestPreemptResumeBitIdentical: a batch job preempted mid-run resumes
// from its checkpoint and produces result bytes identical to the same
// spec run on an undisturbed manager.
func TestPreemptResumeBitIdentical(t *testing.T) {
	spec := Spec{
		Method: "bp", Iterations: 400, Batch: 1, Approx: true, Threads: 1,
		ProgressEvery: 1, CheckpointEvery: 2,
		Generator: &GeneratorSpec{N: 120, DBar: 4, Seed: 5},
	}
	want := baselineResult(t, spec)

	mgr, ts := newTestServer(t, Config{Workers: 1, Preempt: true})
	id := submitOK(t, ts, spec)

	// Preempt only once a checkpoint exists, so the park has something
	// to resume from (a pre-checkpoint preemption restarts from scratch,
	// which is also bit-identical but exercises less).
	ckpt := mgr.Store().CheckpointPath(id)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint after 30s; job state %s", getStatus(t, ts, id).State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	urgent := smallSpec()
	urgent.Class = ClassInteractive
	submitOK(t, ts, urgent)

	st := waitState(t, ts, id, StateDone, 120*time.Second)
	if st.Preemptions == 0 {
		t.Skip("batch job finished before the preemption landed; nothing to compare")
	}
	got, err := mgr.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("preempted-and-resumed result differs from uninterrupted baseline (%d vs %d bytes)",
			len(got), len(want))
	}
}

// TestTenantClassSurviveRestart: tenant, class and preemption count are
// part of the persisted job record, so a restart recovers a queued job
// into the right tenant queue with its identity intact.
func TestTenantClassSurviveRestart(t *testing.T) {
	spool := t.TempDir()
	mgr1, err := NewManager(Config{Spool: spool, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := mgr1.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	tagged := longSpec()
	tagged.Tenant = "acme"
	tagged.Class = ClassInteractive
	tagged.Generator.Seed = 99
	j, err := mgr1.Submit(tagged)
	if err != nil {
		t.Fatal(err)
	}
	_ = blocker
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	mgr2, ts := newTestServer(t, Config{Spool: spool, Workers: 1})
	st := getStatus(t, ts, j.ID)
	if st.Tenant != "acme" || st.Class != ClassInteractive {
		t.Errorf("recovered job tenant/class = %q/%q, want acme/interactive", st.Tenant, st.Class)
	}
	if tm, ok := mgr2.Snapshot().Tenants["acme"]; !ok || tm.Submitted < 1 {
		t.Errorf("recovered tenant rollup = %+v, want acme accounted", tm)
	}
	for _, id := range []string{blocker.ID, j.ID} {
		if _, err := mgr2.Cancel(id); err != nil {
			t.Errorf("cancel %s: %v", id, err)
		}
	}
}

// TestQueueDeadlineExpires: a job whose deadlineMs passes while queued
// fails at dispatch instead of burning a worker slot.
func TestQueueDeadlineExpires(t *testing.T) {
	mgr, ts := newTestServer(t, Config{Workers: 1})
	blocker := submitOK(t, ts, longSpec())
	waitState(t, ts, blocker, StateRunning, 30*time.Second)

	dead := smallSpec()
	dead.DeadlineMS = 50
	id := submitOK(t, ts, dead)
	time.Sleep(120 * time.Millisecond) // let the deadline lapse while queued

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	st := waitState(t, ts, id, StateFailed, 30*time.Second)
	if st.Error == "" {
		t.Error("deadline-expired job has no error message")
	}
	if n := mgr.Snapshot().Expired; n != 1 {
		t.Errorf("Expired counter = %d, want 1", n)
	}
}

// TestCacheCoalescesAcrossTenants: tenant, class and deadline are
// excluded from the content address, so identical problems from
// different tenants share one execution and one cache entry — while
// each job still reports its own tenant identity.
func TestCacheCoalescesAcrossTenants(t *testing.T) {
	mgr, ts := newTestServer(t, Config{Workers: 1, CacheBytes: 1 << 20})
	core := Spec{
		Method: "bp", Iterations: 400, Batch: 1, Approx: true, Threads: 1,
		ProgressEvery: 1, CheckpointEvery: 2,
		Generator: &GeneratorSpec{N: 120, DBar: 4, Seed: 5},
	}
	a := core
	a.Tenant = "team-a"
	idA := submitOK(t, ts, a)
	waitState(t, ts, idA, StateRunning, 30*time.Second)

	b := core
	b.Tenant = "team-b"
	b.Class = ClassInteractive
	b.DeadlineMS = 60_000
	idB := submitOK(t, ts, b)

	waitState(t, ts, idA, StateDone, 120*time.Second)
	waitState(t, ts, idB, StateDone, 120*time.Second)
	if n := mgr.Snapshot().Coalesced; n != 1 {
		t.Errorf("Coalesced = %d, want 1 (tenant/class must not split the cache key)", n)
	}
	ra, err := mgr.Result(idA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := mgr.Result(idB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, rb) {
		t.Error("coalesced results differ across tenants")
	}
	if st := getStatus(t, ts, idB); st.Tenant != "team-b" || st.Class != ClassInteractive {
		t.Errorf("follower reports tenant/class %q/%q, want its own team-b/interactive", st.Tenant, st.Class)
	}

	// Third tenant, same problem, after completion: a pure cache hit.
	c := core
	c.Tenant = "team-c"
	idC := submitOK(t, ts, c)
	if st := getStatus(t, ts, idC); st.State != StateDone {
		t.Errorf("post-completion identical submission is %s, want an immediate cache-hit done", st.State)
	}
	if n := mgr.Snapshot().CacheHits; n < 1 {
		t.Errorf("CacheHits = %d, want >= 1", n)
	}
}

// TestListFiltersCompose: ?tenant= and ?class= filter GET /v1/jobs and
// compose with ?state=; invalid filter values are 400s.
func TestListFiltersCompose(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	submit := func(tenant, class string, seed int64) string {
		s := smallSpec()
		s.Tenant = tenant
		s.Class = class
		s.Generator.Seed = seed
		return submitOK(t, ts, s)
	}
	ids := []string{
		submit("team-a", ClassBatch, 41),
		submit("team-a", ClassInteractive, 42),
		submit("team-b", "", 43), // defaults to batch
	}
	for _, id := range ids {
		waitState(t, ts, id, StateDone, 60*time.Second)
	}
	count := func(query string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: status %d", query, resp.StatusCode)
		}
		var list []*JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		return len(list)
	}
	cases := []struct {
		query string
		want  int
	}{
		{"", 3},
		{"?tenant=team-a", 2},
		{"?tenant=team-a&class=interactive", 1},
		{"?class=batch", 2},
		{"?tenant=team-b&class=batch", 1},
		{"?tenant=nobody", 0},
		{"?state=done&tenant=team-a", 2},
		{"?state=failed&tenant=team-a", 0},
	}
	for _, tc := range cases {
		if got := count(tc.query); got != tc.want {
			t.Errorf("GET /v1/jobs%s returned %d jobs, want %d", tc.query, got, tc.want)
		}
	}
	for _, bad := range []string{"?class=bogus", "?tenant=bad/name", "?state=bogus"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

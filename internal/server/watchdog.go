package server

import (
	"context"
	"time"
)

// watchProgress is the stall watchdog for one running job: it samples
// counter every `every` and, when the value stops advancing for
// longer than `timeout`, calls onStall once and returns. It returns
// silently when ctx is cancelled first (the run ended or was
// cancelled for another reason).
//
// The counter is the job's per-iteration heartbeat, bumped by the
// solver's Observer on every iteration regardless of the job's
// progress-event throttle, so a healthy-but-quiet job (large
// ProgressEvery) is never mistaken for a stalled one. What the
// watchdog catches is the class of job Bayati et al. warn about — BP
// message passing that oscillates without converging — plus any wedged
// solver goroutine: iterations stop, the deadline lapses, and the
// job's context is cancelled so the worker slot frees in bounded time.
func watchProgress(ctx context.Context, every, timeout time.Duration, counter func() int64, onStall func()) {
	if timeout <= 0 {
		return
	}
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	last := counter()
	lastAdvance := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if v := counter(); v != last {
				last = v
				lastAdvance = time.Now()
				continue
			}
			if time.Since(lastAdvance) > timeout {
				onStall()
				return
			}
		}
	}
}

// stallTimeoutFor scales the configured stall timeout by problem
// size: one extra base unit per stallScaleNNZ stored entries of S, so
// a genuinely big problem whose single iteration takes longer than a
// small problem's whole run is not culled for being slow. Returns 0
// (watchdog disabled) when base is 0.
func stallTimeoutFor(base time.Duration, nnz int) time.Duration {
	if base <= 0 {
		return 0
	}
	const stallScaleNNZ = 1 << 20
	scale := 1 + nnz/stallScaleNNZ
	return base * time.Duration(scale)
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/problemio"
	"netalignmc/internal/stats"
)

// Errors the HTTP layer maps to status codes.
var (
	// ErrNotFound: no such job.
	ErrNotFound = errors.New("server: job not found")
	// ErrQueueFull: the scheduler's global depth limit is reached (429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrTenantQuota: the submitting tenant is at its per-tenant queued
	// admission quota (429 with a tenant-scoped Retry-After). Other
	// tenants are unaffected.
	ErrTenantQuota = errors.New("server: tenant admission quota exceeded")
	// ErrDraining: the server is shutting down and accepts no new
	// work (503).
	ErrDraining = errors.New("server: draining")
	// ErrBadSpec wraps job-spec validation and problem-parse failures
	// (400).
	ErrBadSpec = errors.New("server: bad job spec")
	// ErrOverloaded: the process is over its memory budget and is
	// shedding new submissions (429 with a drain-rate Retry-After).
	ErrOverloaded = errors.New("server: overloaded, shedding load")
	// ErrDiskPressure: the spool volume is below its free-space floor;
	// admitting a job would write durable state to a full disk (503).
	ErrDiskPressure = errors.New("server: spool disk under pressure")
	// ErrNotQuarantined: requeue asked for a job that is not in the
	// quarantined state (409).
	ErrNotQuarantined = errors.New("server: job is not quarantined")
	// ErrAlreadyHandedOff: a handoff offered a job id this node holds
	// only as a handed_off tombstone — it gave the job away in an
	// earlier drain and does not own it. Accepting would let the
	// current sender tombstone its live copy too, leaving the job
	// terminal everywhere and never run; the sender must try the next
	// ring successor instead (409).
	ErrAlreadyHandedOff = errors.New("server: job already handed off")
)

// Config parameterizes a Manager.
type Config struct {
	// Spool is the durable job directory.
	Spool string
	// Workers is the number of concurrent solves (default 2).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with ErrQueueFull
	// (default 16).
	QueueDepth int
	// CheckpointEvery is the default checkpoint interval in
	// iterations (default 10); Spec.CheckpointEvery overrides per job.
	CheckpointEvery int
	// Threads is the default per-solve thread count when a spec does
	// not set one (default GOMAXPROCS/Workers, at least 1).
	Threads int
	// CacheBytes bounds the in-memory result cache (serialized
	// result.json bytes). Zero or negative disables the cache and
	// request coalescing entirely, which is the library default; the
	// netalignd binary turns it on.
	CacheBytes int64
	// CacheDir, when non-empty and the cache is enabled, adds a disk
	// tier under that directory which survives restarts (entries are
	// hash-validated on load).
	CacheDir string
	// PeerFiller, when set (and the cache is enabled), is consulted on
	// a result-cache miss before a submission enqueues: it may fetch
	// the serialized result from a cluster peer's cache, in which case
	// the submission is admitted already-done without solving and the
	// payload enters the local cache. Implementations must hash-
	// validate fetched payloads; the Manager trusts what it returns.
	// Called outside the manager lock — it is expected to do network
	// I/O.
	PeerFiller PeerFiller
	// Handoff, when set, makes drain proactive: Shutdown exports every
	// job still queued after the workers stop — canonical problem
	// bytes, spec, retry budget, latest checkpoint — and offers each
	// to its ring successor (see internal/cluster's HTTP
	// implementation). A job the sender accepts is finalized
	// handed_off locally (a tombstone recovery never re-runs); one no
	// peer accepts stays queued in the spool and is recovered on the
	// next startup, exactly as without a sender. Works independently
	// of PeerFiller and the result cache.
	Handoff HandoffSender

	// RetryBudget is how many times a transiently failed attempt
	// (solver error, injected I/O fault, worker panic, stall) is
	// re-enqueued before the job is quarantined. The count persists in
	// the spool, so attempts survive restarts. Zero means the default
	// (3); negative disables retries entirely, restoring the old
	// fail-fast behavior (failures finalize as failed, never
	// quarantined).
	RetryBudget int
	// RetryBaseDelay / RetryMaxDelay bound the exponential backoff
	// between attempts (defaults 500ms / 30s). Jitter is deterministic
	// per (job, attempt) — see RetryDelay.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// StallTimeout, when positive, arms a per-run watchdog: a running
	// job whose iteration counter stops advancing for longer than this
	// (scaled up for large problems — see stallTimeoutFor) is cancelled
	// and the attempt counts against the retry budget. Zero disables.
	StallTimeout time.Duration
	// StallCheckEvery is the watchdog poll interval (default 1s).
	StallCheckEvery time.Duration
	// CrashLoopLimit quarantines a job found mid-running across this
	// many consecutive daemon restarts (a poison job that kills its
	// worker — or the whole process — before it can fail cleanly).
	// Zero means the default (3); negative disables the detector.
	CrashLoopLimit int

	// MinDiskBytes, when positive, is the spool volume's free-space
	// floor. Below 2× the floor the server degrades (cache disk tier
	// off, checkpoint cadence stretched); below the floor new
	// submissions are refused with ErrDiskPressure.
	MinDiskBytes int64
	// MaxRSSBytes, when positive, sheds new submissions with
	// ErrOverloaded (429 + Retry-After from the queue drain rate) while
	// the process RSS exceeds it.
	MaxRSSBytes int64
	// PressureEvery is the pressure sampling interval (default 2s).
	PressureEvery time.Duration
	// DiskFreeProbe / RSSProbe override the platform probes in tests.
	DiskFreeProbe func(path string) (int64, error)
	RSSProbe      func() (int64, error)

	// TenantWeights maps tenant names to fair-share weights for the
	// stride scheduler; unlisted tenants (including "default") weigh 1.
	// With two saturated tenants weighted 3:1 the workers dispatch
	// their jobs in a 3:1 ratio.
	TenantWeights map[string]int64
	// TenantQuota, when positive, caps one tenant's queued (not yet
	// running) jobs; submissions beyond it are refused with
	// ErrTenantQuota. Zero disables per-tenant quotas.
	TenantQuota int
	// Preempt enables checkpoint-preemption: when an interactive job
	// arrives and every worker slot is held by a batch job, the
	// youngest-started batch job is checkpointed and parked back at the
	// head of its tenant queue, to resume bit-identically later.
	Preempt bool
}

// PeerFiller fetches a missing result-cache entry from cluster peers
// (see internal/cluster for the HTTP implementation probing ring
// neighbors' GET /v1/cache/{key}). Fill returns the validated result
// bytes for the key, or ok=false when no peer had them; Stats
// snapshots the probe counters for the node's /metrics.
type PeerFiller interface {
	Fill(key cache.Key) (data []byte, ok bool)
	Stats() PeerFillStats
}

// PeerFillStats counts one node's peer-fill activity: cache probes
// sent to peers, entries successfully fetched and validated, payloads
// rejected by hash validation, probes that found nothing, and probes
// skipped because the peer was already marked down (a dead peer must
// not stall admission waiting out its timeout).
type PeerFillStats struct {
	Probes  int64 `json:"probes"`
	Fills   int64 `json:"fills"`
	Rejects int64 `json:"rejects"`
	Misses  int64 `json:"misses"`
	Skips   int64 `json:"skips"`
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 10
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0) / c.Workers
		if c.Threads < 1 {
			c.Threads = 1
		}
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 500 * time.Millisecond
	}
	if c.RetryMaxDelay < c.RetryBaseDelay {
		c.RetryMaxDelay = 30 * time.Second
		if c.RetryMaxDelay < c.RetryBaseDelay {
			c.RetryMaxDelay = c.RetryBaseDelay
		}
	}
	if c.StallCheckEvery <= 0 {
		c.StallCheckEvery = time.Second
	}
	if c.CrashLoopLimit == 0 {
		c.CrashLoopLimit = 3
	}
	if c.PressureEvery <= 0 {
		c.PressureEvery = 2 * time.Second
	}
	return c
}

// retryBudget resolves the configured budget: >=0 retries allowed,
// -1 retries disabled.
func (c Config) retryBudget() int {
	if c.RetryBudget < 0 {
		return -1
	}
	return c.RetryBudget
}

// Job is one managed alignment run. All lifecycle fields are guarded
// by mu; iter is atomic so the progress observer can update it from
// the solver goroutine without contending with status reads.
type Job struct {
	ID   string
	Spec Spec

	mu              sync.Mutex
	state           State
	errMsg          string
	created         time.Time
	started         time.Time
	finished        time.Time
	resumes         int
	cancelRequested bool
	cancel          context.CancelFunc
	// attempts counts failed attempts charged against the retry
	// budget; persisted so budgets survive restarts. crashRuns counts
	// consecutive daemon incarnations that found this job mid-running
	// (the crash-loop detector); incarnation records which daemon
	// incarnation last started the job. stalled marks a run cancelled
	// by the watchdog; retryTimer is the pending backoff timer while a
	// retry waits to re-enqueue.
	attempts   int
	crashRuns  int
	incarnation int64
	stalled    bool
	retryTimer *time.Timer
	// preempt marks a run cancelled to yield its worker slot to an
	// interactive job; preemptions counts how many times that happened
	// (persisted). enqueuedAt is the last scheduler-queue entry time,
	// owned by schedQueue under m.mu.
	preempt     bool
	preemptions int
	enqueuedAt  time.Time
	// handedTo is the base URL of the ring successor that accepted this
	// job during a proactive drain (set with state = StateHandedOff).
	handedTo string

	iter atomic.Int64
	// beat increments on every solver iteration (unthrottled, unlike
	// iter which follows ProgressEvery); the stall watchdog watches it.
	beat atomic.Int64
	// events holds the job's SSE broker. It is an atomic pointer
	// because Requeue replaces a quarantined job's closed broker with a
	// fresh one while readers may be subscribing concurrently.
	events atomic.Pointer[broker]

	// Result-cache linkage. cacheKey/hasKey are set once at submit (or
	// recovery) and never change. primary and followers implement
	// single-flight coalescing: a follower is a job whose identical
	// submission attached to an already-inflight primary instead of
	// running; the primary fans its progress and final result out to
	// its followers. Both fields are mutated only under m.mu plus the
	// owning job's mu, and read under the owning job's mu alone.
	cacheKey  cache.Key
	hasKey    bool
	primary   *Job
	followers []*Job
}

// metaLocked snapshots the durable record; callers hold j.mu.
func (j *Job) metaLocked() *Meta {
	return &Meta{
		ID: j.ID, Spec: j.Spec, State: j.state, Error: j.errMsg,
		Created: j.created, Started: j.started, Finished: j.finished,
		Resumes: j.resumes, Attempts: j.attempts, CrashRuns: j.crashRuns,
		Incarnation: j.incarnation, Preemptions: j.preemptions,
		HandedOffTo: j.handedTo,
	}
}

// eventsBroker returns the job's current SSE broker.
func (j *Job) eventsBroker() *broker { return j.events.Load() }

// publish forwards an event to the job's current broker.
func (j *Job) publish(event string, v any) { j.events.Load().publish(event, v) }

// closeEvents ends the job's current event stream.
func (j *Job) closeEvents() { j.events.Load().close() }

// JobStatus is the API view of a job.
type JobStatus struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Method string `json:"method"`
	// Tenant and Class echo the effective scheduling identity (the
	// defaults applied — "default"/"batch" for untagged submissions).
	Tenant   string    `json:"tenant"`
	Class    string    `json:"class"`
	Iter     int       `json:"iter"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Resumes  int       `json:"resumes,omitempty"`
	// Attempts is how many failed attempts have been charged against
	// the job's retry budget so far.
	Attempts int `json:"attempts,omitempty"`
	// Preemptions is how many times the job was checkpoint-preempted
	// to yield its worker slot to interactive traffic.
	Preemptions int `json:"preemptions,omitempty"`
	// HandedOffTo names the node that accepted this job during a
	// proactive drain (state handed_off only); the job continues there
	// under the same id.
	HandedOffTo string `json:"handedOffTo,omitempty"`
}

// Status returns a consistent snapshot of the job.
func (j *Job) Status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobStatus{
		ID: j.ID, State: j.state, Method: j.Spec.methodName(),
		Tenant: j.Spec.tenantName(), Class: j.Spec.className(),
		Iter: int(j.iter.Load()), Error: j.errMsg,
		Created: j.created, Started: j.started, Finished: j.finished,
		Resumes: j.resumes, Attempts: j.attempts, Preemptions: j.preemptions,
		HandedOffTo: j.handedTo,
	}
}

// Counters are the monotonically increasing job metrics.
type Counters struct {
	Submitted, Resumed, Rejected           atomic.Int64
	Completed, Failed, Cancelled, Numerics atomic.Int64
	Interrupted/* requeued by drain or crash */ atomic.Int64
	Coalesced/* submissions attached to an inflight identical job */ atomic.Int64
	Retried/* failed attempts re-enqueued with backoff */ atomic.Int64
	Quarantined/* jobs that exhausted their budget or crash-looped */ atomic.Int64
	Requeued/* quarantined jobs put back by the requeue endpoint */ atomic.Int64
	Stalled/* runs cancelled by the stall watchdog */ atomic.Int64
	ShedMemory/* submissions refused under memory pressure */ atomic.Int64
	RefusedDisk/* submissions refused under disk pressure */ atomic.Int64
	PeerFills/* submissions admitted from a peer's cache instead of solving */ atomic.Int64
	Preempted/* batch runs checkpoint-preempted for interactive jobs */ atomic.Int64
	ShedQuota/* submissions refused by a per-tenant admission quota */ atomic.Int64
	Expired/* jobs failed because their queue deadline passed before dispatch */ atomic.Int64
	HandoffSent/* queued jobs exported to a ring successor during drain */ atomic.Int64
	HandoffReceived/* drained jobs admitted from a peer's handoff */ atomic.Int64
	HandoffFailed/* drain exports no peer accepted (job stays queued in the spool) */ atomic.Int64
}

// Manager owns the job lifecycle: a tenant-aware scheduler (weighted
// fair queuing over two priority classes, with a global depth limit
// and per-tenant quotas) feeding a fixed pool of worker goroutines,
// durable state in a Store, and drain/recovery across restarts.
type Manager struct {
	cfg   Config
	store *Store
	timer *stats.StepTimer
	start time.Time
	// cache is the content-addressed result cache (nil when disabled).
	// Keys hash the canonicalized problem bytes plus the spec's
	// output-affecting option fingerprint, so a hit is guaranteed to be
	// the bit-identical result the solve would have produced.
	cache *cache.Cache
	// incarnation is this daemon start's spool incarnation number (see
	// Store.BumpIncarnation); pressure monitors resource headroom and
	// drives degraded mode (nil checks are avoided by always
	// constructing it — it just stays idle when unconfigured).
	incarnation int64
	pressure    *pressureMonitor

	draining atomic.Bool

	mu    sync.Mutex
	cond  *sync.Cond
	sched *schedQueue
	// idle counts workers parked in cond.Wait: the preemption trigger —
	// an interactive arrival preempts only when no worker is free.
	idle int
	jobs map[string]*Job
	// inflight is the single-flight table: at most one queued/running
	// job per cache key; identical submissions attach to it as
	// followers instead of solving again.
	inflight map[cache.Key]*Job
	closed   bool
	wg       sync.WaitGroup

	counters Counters
}

// NewManager opens the spool, recovers interrupted jobs (any job
// recorded queued or running is requeued; a checkpoint, if present,
// makes the rerun resume bit-identically), and starts the worker
// pool.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	store, err := NewStore(cfg.Spool)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		store:    store,
		timer:    stats.NewStepTimer(),
		start:    time.Now(),
		sched:    newSchedQueue(cfg.TenantWeights),
		jobs:     make(map[string]*Job),
		inflight: make(map[cache.Key]*Job),
	}
	if cfg.CacheBytes > 0 {
		c, err := cache.New(cfg.CacheBytes, cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("server: result cache: %w", err)
		}
		m.cache = c
	}
	m.cond = sync.NewCond(&m.mu)
	// Bump the incarnation counter before recovery scans the spool:
	// recovery compares each mid-running job's recorded incarnation
	// against the previous one to detect crash loops.
	if m.incarnation, err = store.BumpIncarnation(); err != nil {
		return nil, err
	}
	m.pressure = newPressureMonitor(cfg)
	if err := m.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if m.pressure.enabled() {
		go m.pressure.run(m)
	}
	return m, nil
}

// Store exposes the spool (read-only use by the HTTP layer and
// tests).
func (m *Manager) Store() *Store { return m.store }

// recover rescans the spool and requeues every non-terminal job.
func (m *Manager) recover() error {
	ids, err := m.store.ListJobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		meta, err := m.store.LoadMeta(id)
		if err != nil {
			// An unreadable record (e.g. crash before the first
			// job.json rename) is skipped, not fatal: the rest of the
			// spool must still come back.
			continue
		}
		j := &Job{
			ID: meta.ID, Spec: meta.Spec, state: meta.State,
			errMsg: meta.Error, created: meta.Created,
			started: meta.Started, finished: meta.Finished,
			resumes: meta.Resumes, attempts: meta.Attempts,
			crashRuns: meta.CrashRuns, incarnation: meta.Incarnation,
			preemptions: meta.Preemptions, handedTo: meta.HandedOffTo,
		}
		j.events.Store(newBroker())
		if meta.State.Terminal() {
			j.closeEvents()
			m.jobs[j.ID] = j
			continue
		}
		// Interrupted: requeue. A job caught mid-run resumes from its
		// last checkpoint (or from scratch when none was written yet);
		// either way the rerun is bit-identical to an uninterrupted
		// run.
		if meta.State == StateRunning {
			// Crash-loop detection: a job found mid-running whose
			// recorded incarnation is the one immediately before this
			// start has taken the daemon down (or been caught by its
			// crash) every restart in a row. After CrashLoopLimit
			// consecutive such restarts it is quarantined instead of
			// requeued — a poison job must not crash-loop the daemon
			// forever. A gap in incarnations (clean restarts in between)
			// resets the streak.
			if meta.Incarnation == m.incarnation-1 && meta.Incarnation > 0 {
				j.crashRuns = meta.CrashRuns + 1
			} else {
				j.crashRuns = 1
			}
			if lim := m.cfg.CrashLoopLimit; lim > 0 && j.crashRuns >= lim {
				j.state = StateQuarantined
				j.errMsg = fmt.Sprintf(
					"crash loop: found mid-running at %d consecutive daemon restarts (limit %d)",
					j.crashRuns, lim)
				j.finished = time.Now()
				if err := m.store.SaveMeta(j.metaLocked()); err != nil {
					return err
				}
				j.closeEvents()
				m.jobs[j.ID] = j
				m.counters.Quarantined.Add(1)
				continue
			}
			j.resumes++
			m.counters.Interrupted.Add(1)
		}
		j.state = StateQueued
		j.started, j.finished = time.Time{}, time.Time{}
		if err := m.store.SaveMeta(j.metaLocked()); err != nil {
			return err
		}
		// Re-key recovered jobs so their eventual results land in the
		// cache and later identical submissions coalesce onto them. The
		// canonical problem bytes are already in the spool. When several
		// recovered jobs share a key, the first claims the single-flight
		// slot and the rest just run (their finishes skip the foreign
		// inflight entry).
		if m.cache != nil {
			if fp, ok := j.Spec.cacheFingerprint(); ok {
				if pb, err := m.store.LoadProblemBytes(j.ID); err == nil {
					j.cacheKey = cache.KeyFor(pb, fp)
					j.hasKey = true
					if _, taken := m.inflight[j.cacheKey]; !taken {
						m.inflight[j.cacheKey] = j
					}
				}
			}
		}
		m.jobs[j.ID] = j
		// The tenant and class ride in the persisted Spec, so a restart
		// re-files the job under its original tenant queue and class —
		// and re-credits the tenant's admission counter, which is
		// per-process like every other lifetime counter.
		m.sched.push(j, false)
		m.sched.tenant(j.Spec.tenantName()).submitted++
		m.counters.Resumed.Add(1)
	}
	return nil
}

// Submit validates the spec, materializes and canonicalizes the
// problem into the spool, and enqueues the job. With the result cache
// enabled, a submission whose (problem, options) key hits the cache
// returns an already-completed job without solving, and one identical
// to a queued/running job coalesces onto it as a follower (one
// execution, two job ids, byte-identical results). Submit fails with
// ErrQueueFull when the queue is at its depth limit and ErrDraining
// during shutdown; cache hits and coalesced joins consume no queue
// slot and are admitted even at the depth limit.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	threads := spec.Threads
	if threads == 0 {
		threads = m.cfg.Threads
	}
	p, err := spec.BuildProblem(threads)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if m.draining.Load() {
		return nil, ErrDraining
	}
	// Pressure gates come before any spool write: a submission refused
	// for resource headroom must leave no trace on the (possibly full)
	// disk.
	if m.pressure.memShedding() {
		m.counters.ShedMemory.Add(1)
		m.noteTenantShed(spec.tenantName())
		return nil, ErrOverloaded
	}
	if m.pressure.diskRefusing() {
		m.counters.RefusedDisk.Add(1)
		return nil, ErrDiskPressure
	}
	// Serialize the problem once: the spool write and the cache key use
	// the same bytes, so they can never disagree.
	var buf bytes.Buffer
	if err := problemio.Write(&buf, p); err != nil {
		return nil, fmt.Errorf("server: canonicalize problem: %w", err)
	}
	pb := buf.Bytes()
	var key cache.Key
	cacheable := false
	if m.cache != nil && spec.TimeoutSec == 0 {
		// Timed jobs are excluded: a deadline makes the outcome
		// wall-clock-dependent, and coalescing one onto an unbounded
		// primary would void its deadline.
		if fp, ok := spec.cacheFingerprint(); ok {
			key = cache.KeyFor(pb, fp)
			cacheable = true
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if cacheable {
		if data, ok := m.cache.Get(key); ok {
			j, err := m.admitCachedLocked(spec, pb, data)
			m.mu.Unlock()
			return j, err
		}
		if prim, ok := m.inflight[key]; ok {
			j, err := m.attachFollowerLocked(spec, pb, key, prim)
			m.mu.Unlock()
			return j, err
		}
		if m.cfg.PeerFiller != nil {
			// Local miss: ask ring neighbors for the entry before
			// burning a worker slot on a recompute. The probe does
			// network I/O, so the manager lock is dropped around it and
			// both lookups re-run after: an identical submission (or
			// this key's own finish) may have landed meanwhile.
			m.mu.Unlock()
			data, filled := m.cfg.PeerFiller.Fill(key)
			m.mu.Lock()
			if m.closed {
				m.mu.Unlock()
				return nil, ErrDraining
			}
			if local, ok := m.cache.Peek(key); ok {
				j, err := m.admitCachedLocked(spec, pb, local)
				m.mu.Unlock()
				return j, err
			}
			if prim, ok := m.inflight[key]; ok {
				j, err := m.attachFollowerLocked(spec, pb, key, prim)
				m.mu.Unlock()
				return j, err
			}
			if filled {
				m.cache.Put(key, data)
				m.counters.PeerFills.Add(1)
				j, err := m.admitCachedLocked(spec, pb, data)
				m.mu.Unlock()
				return j, err
			}
		}
	}
	tenant := spec.tenantName()
	// The per-tenant quota is checked before the global depth limit so
	// a flooding tenant sees its own scoped 429 (ErrTenantQuota, with a
	// Retry-After computed from its own backlog) rather than consuming
	// the shared budget and pushing everyone else into ErrQueueFull.
	if q := m.cfg.TenantQuota; q > 0 && m.sched.depth(tenant) >= q {
		m.sched.tenant(tenant).shed++
		m.mu.Unlock()
		m.counters.ShedQuota.Add(1)
		m.counters.Rejected.Add(1)
		return nil, fmt.Errorf("%w: tenant %q has %d jobs queued (quota %d)",
			ErrTenantQuota, tenant, q, q)
	}
	if m.sched.size >= m.cfg.QueueDepth {
		m.mu.Unlock()
		m.counters.Rejected.Add(1)
		return nil, ErrQueueFull
	}
	id, err := newJobID()
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	j := &Job{
		ID: id, Spec: spec, state: StateQueued,
		created: time.Now(),
		cacheKey: key, hasKey: cacheable,
	}
	j.events.Store(newBroker())
	// Persist before enqueueing so a crash in between recovers the
	// job instead of losing it.
	if err := m.store.CreateJob(id); err == nil {
		err = m.store.SaveProblemBytes(id, pb)
	}
	if err == nil {
		err = m.store.SaveMeta(j.metaLocked())
	}
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if cacheable {
		m.inflight[key] = j
	}
	m.jobs[id] = j
	m.sched.push(j, false)
	m.sched.tenant(tenant).submitted++
	m.counters.Submitted.Add(1)
	preempt := m.maybePreemptLocked(j)
	m.cond.Signal()
	m.mu.Unlock()
	if preempt != nil {
		preempt()
	}
	return j, nil
}

// noteTenantShed attributes a pressure shed to the submitting tenant.
func (m *Manager) noteTenantShed(tenant string) {
	m.mu.Lock()
	m.sched.tenant(tenant).shed++
	m.mu.Unlock()
}

// maybePreemptLocked decides whether admitting j warrants preempting a
// running batch job: j is interactive, preemption is enabled, no
// worker is idle, and at least one batch job holds a slot. The victim
// is the youngest-started batch run — it has the least sunk work past
// its last checkpoint. The victim's context cancel is returned to be
// invoked after m.mu is released; the cancelled run observes the
// preempt mark and parks back at the head of its tenant queue (see
// run), to resume later from its checkpoint bit-identically. Called
// with m.mu held.
func (m *Manager) maybePreemptLocked(j *Job) context.CancelFunc {
	if !m.cfg.Preempt || j.Spec.className() != ClassInteractive || m.idle > 0 {
		return nil
	}
	var victim *Job
	var victimStart time.Time
	var cancel context.CancelFunc
	for _, cand := range m.jobs {
		if cand.Spec.className() != ClassBatch {
			continue
		}
		cand.mu.Lock()
		ok := cand.state == StateRunning && !cand.preempt &&
			!cand.cancelRequested && cand.cancel != nil
		started := cand.started
		cand.mu.Unlock()
		if ok && (victim == nil || started.After(victimStart)) {
			victim = cand
			victimStart = started
		}
	}
	if victim == nil {
		return nil
	}
	victim.mu.Lock()
	// Re-check under the victim's lock: it may have finished or been
	// cancelled between the scan and now.
	if victim.state != StateRunning || victim.preempt ||
		victim.cancelRequested || victim.cancel == nil {
		victim.mu.Unlock()
		return nil
	}
	victim.preempt = true
	cancel = victim.cancel
	victim.mu.Unlock()
	return cancel
}

// admitCachedLocked creates an already-completed job from a cached
// result: the spool record is fully persisted (problem, result, done
// meta), so the job is indistinguishable from one that ran — except
// its iteration counter stays at zero and no solver work happens.
// Called with m.mu held.
func (m *Manager) admitCachedLocked(spec Spec, problem, result []byte) (*Job, error) {
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	now := time.Now()
	j := &Job{
		ID: id, Spec: spec, state: StateDone,
		created: now, finished: now,
	}
	j.events.Store(newBroker())
	if err := m.store.CreateJob(id); err == nil {
		err = m.store.SaveProblemBytes(id, problem)
	}
	if err == nil {
		err = m.store.SaveResultBytes(id, result)
	}
	if err == nil {
		err = m.store.SaveMeta(j.metaLocked())
	}
	if err != nil {
		return nil, err
	}
	j.closeEvents()
	m.jobs[id] = j
	m.counters.Submitted.Add(1)
	m.counters.Completed.Add(1)
	ts := m.sched.tenant(spec.tenantName())
	ts.submitted++
	ts.completed++
	return j, nil
}

// attachFollowerLocked coalesces a submission onto the inflight
// primary solving the same key. The follower gets its own id and spool
// record but never enters the queue; it mirrors the primary's state
// and receives its progress events and final result bytes. Called with
// m.mu held.
func (m *Manager) attachFollowerLocked(spec Spec, problem []byte, key cache.Key, prim *Job) (*Job, error) {
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID: id, Spec: spec, created: time.Now(),
		cacheKey: key, hasKey: true,
	}
	j.events.Store(newBroker())
	prim.mu.Lock()
	j.state = StateQueued
	if prim.state == StateRunning {
		j.state = StateRunning
		j.started = prim.started
		j.iter.Store(prim.iter.Load())
	}
	j.primary = prim
	prim.followers = append(prim.followers, j)
	prim.mu.Unlock()
	if err := m.store.CreateJob(id); err == nil {
		err = m.store.SaveProblemBytes(id, problem)
	}
	if err == nil {
		err = m.store.SaveMeta(j.metaLocked())
	}
	if err != nil {
		prim.mu.Lock()
		for i, f := range prim.followers {
			if f == j {
				prim.followers = append(prim.followers[:i], prim.followers[i+1:]...)
				break
			}
		}
		prim.mu.Unlock()
		return nil, err
	}
	m.jobs[id] = j
	m.counters.Submitted.Add(1)
	m.counters.Coalesced.Add(1)
	m.sched.tenant(spec.tenantName()).submitted++
	return j, nil
}

// Get looks a job up.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job's status, newest first.
func (m *Manager) List() []*JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]*JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			if out[k].Created.After(out[i].Created) {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	return out
}

// Cancel requests cooperative cancellation. A queued job is finalized
// immediately; a running job's context is cancelled and the solver
// stops in bounded time, reporting its best partial matching. A
// coalesced follower detaches and finalizes cancelled while its
// primary keeps solving for the remaining subscribers; cancelling a
// primary with followers promotes them to run for themselves. Cancel
// is idempotent: terminal jobs report their state unchanged.
func (m *Manager) Cancel(id string) (*JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	j.mu.Lock()
	if prim := j.primary; prim != nil && !j.state.Terminal() {
		// Coalesced follower: detach, finalize cancelled. The primary's
		// solve is untouched — other jobs still depend on it.
		j.primary = nil
		j.cancelRequested = true
		j.state = StateCancelled
		j.finished = time.Now()
		meta := j.metaLocked()
		j.mu.Unlock()
		prim.mu.Lock()
		for i, f := range prim.followers {
			if f == j {
				prim.followers = append(prim.followers[:i], prim.followers[i+1:]...)
				break
			}
		}
		prim.mu.Unlock()
		m.mu.Unlock()
		m.counters.Cancelled.Add(1)
		_ = m.store.SaveMeta(meta)
		j.publish("state", j.Status())
		j.closeEvents()
		return j.Status(), nil
	}
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		m.mu.Unlock()
		return j.Status(), nil
	case j.state == StateQueued:
		j.cancelRequested = true
		inQueue := m.sched.remove(j)
		if t := j.retryTimer; t != nil {
			// Waiting out a retry backoff: stop the timer and finalize
			// here. (If the timer already fired, enqueueRetry sees
			// cancelRequested — or the terminal state — and backs off.)
			t.Stop()
			j.retryTimer = nil
			inQueue = true
		}
		if !inQueue {
			// A worker already popped it and is about to run; the
			// run loop will observe cancelRequested and finalize.
			j.mu.Unlock()
			m.mu.Unlock()
			return j.Status(), nil
		}
		var followers []*Job
		if j.hasKey {
			if m.inflight[j.cacheKey] == j {
				delete(m.inflight, j.cacheKey)
			}
			followers = j.followers
			j.followers = nil
		}
		j.state = StateCancelled
		j.finished = time.Now()
		meta := j.metaLocked()
		j.mu.Unlock()
		m.mu.Unlock()
		m.counters.Cancelled.Add(1)
		_ = m.store.SaveMeta(meta)
		j.publish("state", j.Status())
		j.closeEvents()
		m.promoteFollowers(followers)
		return j.Status(), nil
	default: // running
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return j.Status(), nil
	}
}

// Result returns the raw result.json bytes of a finished job.
func (m *Manager) Result(id string) ([]byte, error) {
	return m.store.LoadResult(id)
}

// OpenResult opens a finished job's result.json for streaming.
func (m *Manager) OpenResult(id string) (io.ReadCloser, int64, error) {
	return m.store.OpenResult(id)
}

// worker pops jobs until shutdown. Dispatch order is the scheduler's:
// interactive before batch, weighted-fair across tenants within a
// class.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		m.idle++
		for m.sched.size == 0 && !m.closed {
			m.cond.Wait()
		}
		m.idle--
		if m.closed {
			m.mu.Unlock()
			return
		}
		now := time.Now()
		j := m.sched.pop(now)
		m.mu.Unlock()
		if j == nil {
			continue
		}
		if expired, waited := j.queueDeadlineExpired(now); expired {
			// The job's queue-wait deadline passed before a worker was
			// free: fail it instead of burning a slot on a result the
			// caller has already given up on.
			m.counters.Expired.Add(1)
			m.finish(j, StateFailed, nil, fmt.Sprintf(
				"queue deadline exceeded: waited %s, deadlineMs %d",
				waited.Round(time.Millisecond), j.Spec.DeadlineMS))
			continue
		}
		m.run(j)
	}
}

// queueDeadlineExpired reports whether the job's DeadlineMS elapsed
// between admission and dispatch, and how long it actually waited.
func (j *Job) queueDeadlineExpired(now time.Time) (bool, time.Duration) {
	if j.Spec.DeadlineMS <= 0 {
		return false, 0
	}
	j.mu.Lock()
	created := j.created
	j.mu.Unlock()
	waited := now.Sub(created)
	return waited > time.Duration(j.Spec.DeadlineMS)*time.Millisecond, waited
}

// finish moves a job to a terminal state, persisting the result (when
// one exists) before the state becomes visible, then ends the event
// stream. For a single-flight primary the cache insert, the inflight
// unlink and the follower snapshot share one m.mu section (so no new
// follower can attach to a decided job, and a concurrent identical
// submission either coalesces or hits the cache — never re-runs);
// it then fans out: a shareable result (a deterministic run that
// stopped on max-iterations or convergence) completes every follower
// with the same bytes; any other outcome promotes the followers to
// run for themselves.
func (m *Manager) finish(j *Job, state State, result *core.ResultJSON, errMsg string) {
	// Persist the result before the terminal state becomes visible: a
	// client that polls the job to done and immediately fetches the
	// result must find result.json on disk.
	var data []byte
	if result != nil {
		var err error
		if data, err = json.Marshal(result); err == nil {
			err = m.store.SaveResultBytes(j.ID, data)
		}
		if err != nil && errMsg == "" {
			// The run succeeded but its result could not be persisted
			// (full disk, I/O error). That is transient: retry the
			// attempt — the rerun resumes from the last checkpoint and
			// re-persists. (retryOrQuarantine cannot recurse back here
			// with a result: quarantine/fail finishes carry result=nil.)
			if state == StateDone || state == StateNumerics {
				m.retryOrQuarantine(j, fmt.Sprintf("persist result: %v", err))
				return
			}
			state = StateFailed
			errMsg = err.Error()
			data = nil
		}
	}
	// Only fully deterministic completions are shareable: cancelled,
	// deadline and numerics outcomes depend on when the run was
	// interrupted, so neither the cache nor a follower may reuse them.
	shareable := state == StateDone && data != nil &&
		(result.Stopped == core.StopMaxIter || result.Stopped == core.StopConverged)
	var followers []*Job
	if j.hasKey {
		m.mu.Lock()
		// The cache insert and the inflight unlink share one critical
		// section with Submit's lookup, so a concurrent identical
		// submission always lands somewhere: before this point it
		// attaches as a follower, after it it hits the cache — there is
		// no window where it would silently re-run.
		if shareable && m.cache != nil {
			m.cache.Put(j.cacheKey, data)
		}
		if m.inflight[j.cacheKey] == j {
			delete(m.inflight, j.cacheKey)
		}
		j.mu.Lock()
		followers = j.followers
		j.followers = nil
		j.mu.Unlock()
		m.mu.Unlock()
	}
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	meta := j.metaLocked()
	j.mu.Unlock()
	_ = m.store.SaveMeta(meta)
	switch state {
	case StateDone:
		m.counters.Completed.Add(1)
		m.noteTenantCompleted(j.Spec.tenantName())
	case StateFailed:
		m.counters.Failed.Add(1)
	case StateCancelled:
		m.counters.Cancelled.Add(1)
	case StateNumerics:
		m.counters.Numerics.Add(1)
	case StateQuarantined:
		m.counters.Quarantined.Add(1)
	}
	j.publish("state", j.Status())
	j.closeEvents()
	if len(followers) > 0 {
		if shareable {
			iter := j.iter.Load()
			for _, f := range followers {
				m.completeFollower(f, data, iter)
			}
		} else {
			m.promoteFollowers(followers)
		}
	}
}

// completeFollower finalizes a coalesced follower with the primary's
// result bytes, copied verbatim so the two jobs' result documents are
// byte-identical.
func (m *Manager) completeFollower(f *Job, data []byte, iter int64) {
	err := m.store.SaveResultBytes(f.ID, data)
	f.iter.Store(iter)
	f.mu.Lock()
	f.primary = nil
	f.state = StateDone
	if err != nil {
		f.state = StateFailed
		f.errMsg = err.Error()
	}
	f.finished = time.Now()
	meta := f.metaLocked()
	f.mu.Unlock()
	_ = m.store.SaveMeta(meta)
	if meta.State == StateDone {
		m.counters.Completed.Add(1)
		m.noteTenantCompleted(f.Spec.tenantName())
	} else {
		m.counters.Failed.Add(1)
	}
	f.publish("state", f.Status())
	f.closeEvents()
}

// noteTenantCompleted credits a completion to the tenant's drain-rate
// bookkeeping (the input to its Retry-After hint).
func (m *Manager) noteTenantCompleted(tenant string) {
	m.mu.Lock()
	m.sched.noteCompleted(tenant)
	m.mu.Unlock()
}

// promoteFollowers re-admits the followers of a primary that ended
// without a shareable result. If another job holding the same key is
// already inflight (admitted between the old primary's unlink and
// now), everyone coalesces onto it; otherwise the first follower is
// promoted to primary — enqueued, re-registered in the single-flight
// table — and the rest follow it. During shutdown the followers are
// instead parked queued in the spool, to be recovered and rerun by the
// next startup.
func (m *Manager) promoteFollowers(followers []*Job) {
	if len(followers) == 0 {
		return
	}
	key := followers[0].cacheKey
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		for _, f := range followers {
			f.mu.Lock()
			f.primary = nil
			f.state = StateQueued
			f.started = time.Time{}
			f.resumes++
			meta := f.metaLocked()
			f.mu.Unlock()
			m.counters.Interrupted.Add(1)
			_ = m.store.SaveMeta(meta)
			f.publish("state", f.Status())
		}
		return
	}
	p, rest := followers[0], followers[1:]
	var promotedMeta *Meta
	if cur, ok := m.inflight[key]; ok {
		// cur cannot have snapshotted its followers yet: the snapshot
		// and the inflight removal happen atomically under m.mu, and cur
		// is still registered.
		p, rest = cur, followers
	} else {
		p.mu.Lock()
		p.primary = nil
		p.state = StateQueued
		p.started = time.Time{}
		p.iter.Store(0)
		promotedMeta = p.metaLocked()
		p.mu.Unlock()
		m.inflight[key] = p
		m.sched.push(p, false)
		m.cond.Signal()
	}
	for _, f := range rest {
		f.mu.Lock()
		f.primary = p
		f.mu.Unlock()
	}
	p.mu.Lock()
	p.followers = append(p.followers, rest...)
	p.mu.Unlock()
	m.mu.Unlock()
	if promotedMeta != nil {
		_ = m.store.SaveMeta(promotedMeta)
		p.publish("state", p.Status())
	}
}

// retryOrQuarantine charges one failed attempt against the job's
// retry budget. Within budget the job re-enqueues after a
// deterministic backoff (scheduleRetry); beyond it the job is
// quarantined — terminal, spool kept, requeueable via Requeue. With
// retries disabled (RetryBudget < 0) the attempt finalizes as failed,
// the pre-retry fail-fast behavior. No-op on already-terminal jobs,
// which makes it safe as a panic handler.
func (m *Manager) retryOrQuarantine(j *Job, reason string) {
	budget := m.cfg.retryBudget()
	if budget < 0 {
		m.finish(j, StateFailed, nil, reason)
		return
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.attempts++
	attempts := j.attempts
	over := attempts > budget
	cancelled := j.cancelRequested
	j.mu.Unlock()
	switch {
	case cancelled:
		// The user cancelled while the attempt was failing; honor the
		// cancel instead of retrying behind their back.
		m.finish(j, StateCancelled, nil, reason)
	case over:
		m.finish(j, StateQuarantined, nil, fmt.Sprintf(
			"retry budget exhausted after %d attempts: %s", attempts, reason))
	default:
		m.counters.Retried.Add(1)
		m.scheduleRetry(j, reason)
	}
}

// scheduleRetry parks the job queued and arms a backoff timer that
// re-enqueues it. The durable state says queued, so a crash during
// the wait recovers the job normally; the remaining delay is not
// persisted — a restart retries immediately, and the restart itself
// was the backoff. The next run resumes from the last checkpoint.
func (m *Manager) scheduleRetry(j *Job, reason string) {
	j.mu.Lock()
	attempt := j.attempts
	j.state = StateQueued
	j.cancel = nil
	j.cancelRequested = false
	j.stalled = false
	j.started, j.finished = time.Time{}, time.Time{}
	j.errMsg = reason // visible in status while the backoff runs
	delay := RetryDelay(j.ID, attempt, m.cfg.RetryBaseDelay, m.cfg.RetryMaxDelay)
	followers := append([]*Job(nil), j.followers...)
	if m.draining.Load() {
		// Shutting down: leave the job parked queued in the spool; the
		// next startup recovers and reruns it.
		j.retryTimer = nil
	} else {
		j.retryTimer = time.AfterFunc(delay, func() { m.enqueueRetry(j) })
	}
	meta := j.metaLocked()
	j.mu.Unlock()
	_ = m.store.SaveMeta(meta)
	j.publish("state", j.Status())
	// Followers mirror the primary back to queued while it waits.
	for _, f := range followers {
		f.mu.Lock()
		if f.state == StateRunning {
			f.state = StateQueued
			f.started = time.Time{}
		}
		fmeta := f.metaLocked()
		f.mu.Unlock()
		_ = m.store.SaveMeta(fmeta)
		f.publish("state", f.Status())
	}
}

// enqueueRetry is the backoff timer's callback: move the job from
// retry-wait into the run queue. Retries bypass the queue-depth limit
// — the job was admitted once and still holds its admission.
func (m *Manager) enqueueRetry(j *Job) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	j.mu.Lock()
	j.retryTimer = nil
	if j.state != StateQueued {
		j.mu.Unlock()
		m.mu.Unlock()
		return
	}
	if j.cancelRequested {
		j.mu.Unlock()
		m.mu.Unlock()
		// A cancel landed while the backoff was pending (after the
		// failing attempt checked); finalize instead of rerunning.
		m.finish(j, StateCancelled, nil, "")
		return
	}
	j.mu.Unlock()
	m.sched.push(j, false)
	m.cond.Signal()
	m.mu.Unlock()
}

// Requeue puts a quarantined job back in the run queue with a fresh
// retry budget and a fresh event stream (the quarantine closed the old
// one). The job keeps its id, spool record and checkpoint, so the
// rerun resumes where the last attempt left off and — the spec and
// canonical problem bytes being unchanged — completes bit-identically
// to an undisturbed run. Requeues bypass the queue-depth limit.
func (m *Manager) Requeue(id string) (*JobStatus, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	j.mu.Lock()
	if j.state != StateQuarantined {
		st := j.state
		j.mu.Unlock()
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (state %s)", ErrNotQuarantined, st)
	}
	j.state = StateQueued
	j.attempts = 0
	j.crashRuns = 0
	j.errMsg = ""
	j.stalled = false
	j.cancelRequested = false
	j.started, j.finished = time.Time{}, time.Time{}
	j.events.Store(newBroker())
	meta := j.metaLocked()
	// Re-enter the single-flight table when the slot is free so later
	// identical submissions coalesce onto the rerun.
	if j.hasKey {
		if _, taken := m.inflight[j.cacheKey]; !taken {
			m.inflight[j.cacheKey] = j
		}
	}
	j.mu.Unlock()
	m.sched.push(j, false)
	m.counters.Requeued.Add(1)
	m.cond.Signal()
	m.mu.Unlock()
	_ = m.store.SaveMeta(meta)
	j.publish("state", j.Status())
	return j.Status(), nil
}

// RetryAfterSeconds is the global drain-rate backoff hint (the
// /metrics gauge). 429 responses use TenantRetryAfterSeconds instead,
// so one tenant's backlog cannot inflate another tenant's backoff.
func (m *Manager) RetryAfterSeconds() int64 { return m.pressure.retryAfter() }

// TenantRetryAfterSeconds is the tenant-scoped Retry-After hint: the
// submitting tenant's own queued backlog divided by its own EWMA
// completion rate. A tenant with no backlog gets 1 second regardless
// of how congested other tenants are.
func (m *Manager) TenantRetryAfterSeconds(tenant string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched.retryAfter(tenant, time.Now())
}

// run executes one job on the calling worker goroutine.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if j.cancelRequested {
		j.mu.Unlock()
		m.finish(j, StateCancelled, nil, "")
		return
	}
	runCtx, cancel := context.WithCancel(context.Background())
	stop := cancel
	if j.Spec.TimeoutSec > 0 {
		runCtx, stop = context.WithTimeout(runCtx, time.Duration(j.Spec.TimeoutSec*float64(time.Second)))
	}
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	j.stalled = false
	j.preempt = false
	// Record which daemon incarnation runs this attempt: the crash-loop
	// detector at the next startup compares it against its own number.
	j.incarnation = m.incarnation
	meta := j.metaLocked()
	j.mu.Unlock()
	defer stop()
	defer cancel()
	// A panic anywhere in the attempt — a solver bug, a poisoned input
	// tripping a kernel — is a retryable failure, not a dead worker:
	// recover, charge the attempt, and let the worker loop continue.
	// retryOrQuarantine no-ops if the job already reached a terminal
	// state before the panic.
	defer func() {
		if r := recover(); r != nil {
			m.retryOrQuarantine(j, fmt.Sprintf("worker panic: %v", r))
		}
	}()
	_ = m.store.SaveMeta(meta)
	j.publish("state", j.Status())
	// Followers attached while the job was queued mirror the
	// transition to running; ones attaching from here on mirror it at
	// attach time.
	j.mu.Lock()
	started := j.started
	mirror := append([]*Job(nil), j.followers...)
	j.mu.Unlock()
	for _, f := range mirror {
		f.mu.Lock()
		if f.state == StateQueued {
			f.state = StateRunning
			f.started = started
		}
		fmeta := f.metaLocked()
		f.mu.Unlock()
		_ = m.store.SaveMeta(fmeta)
		f.publish("state", f.Status())
	}

	spec := j.Spec
	threads := spec.Threads
	if threads == 0 {
		threads = m.cfg.Threads
	}
	p, err := m.store.LoadProblem(j.ID, threads)
	if err != nil {
		// Could be transient I/O; charge the attempt and retry.
		m.retryOrQuarantine(j, err.Error())
		return
	}
	resume, err := m.store.LoadCheckpoint(j.ID)
	if err != nil {
		// A corrupt checkpoint is not fatal: rerun from scratch (the
		// full rerun is still identical to an uninterrupted run).
		resume = nil
	}

	reporter := core.NewProgressReporter(p, spec.ProgressEvery, func(ev core.ProgressEvent) {
		j.iter.Store(int64(ev.Iter))
		j.publish("progress", ev)
		// Fan progress out to coalesced followers: their SSE streams
		// see the shared execution's iterations as their own.
		j.mu.Lock()
		fs := append([]*Job(nil), j.followers...)
		j.mu.Unlock()
		for _, f := range fs {
			f.iter.Store(int64(ev.Iter))
			f.publish("progress", ev)
		}
	})
	ckptEvery := spec.CheckpointEvery
	if ckptEvery == 0 {
		ckptEvery = m.cfg.CheckpointEvery
	}
	ckptPath := m.store.CheckpointPath(j.ID)
	// Under disk pressure, checkpoint writes thin out to every
	// ckptStretch()-th due checkpoint. Sampled per call, so cadence
	// responds mid-run when pressure arrives or clears; each write is
	// atomic, so a skipped (or failed) write leaves the previous
	// checkpoint valid.
	ckptDue := 0
	ckptFunc := func(c *core.Checkpoint) error {
		if s := m.pressure.ckptStretch(); s > 1 {
			ckptDue++
			if ckptDue%s != 0 {
				return nil
			}
		}
		return problemio.WriteCheckpointFile(ckptPath, c)
	}
	mspec, err := matching.ParseMatcherSpec(spec.matcherText())
	if err != nil {
		// Unreachable for accepted jobs (Validate parses the same text
		// at submit time), but a spool edited by hand can get here.
		m.finish(j, StateFailed, nil, err.Error())
		return
	}
	method := core.MethodBP
	if spec.methodName() == "mr" {
		method = core.MethodMR
	}

	// The heartbeat wraps the raw observers, which the solvers call on
	// every iteration (the reporter throttles to ProgressEvery
	// internally) — so the watchdog sees an unthrottled beat even for
	// jobs with sparse progress reporting.
	bpObs := reporter.BPObserver()
	mrObs := reporter.MRObserver()
	beatBP := func(iter int, y, z []float64) {
		j.beat.Add(1)
		bpObs(iter, y, z)
	}
	beatMR := func(iter int, wbar []float64, upper, obj float64) {
		j.beat.Add(1)
		mrObs(iter, wbar, upper, obj)
	}
	if eff := stallTimeoutFor(m.cfg.StallTimeout, p.NNZS()); eff > 0 {
		go watchProgress(runCtx, m.cfg.StallCheckEvery, eff, j.beat.Load, func() {
			j.mu.Lock()
			j.stalled = true
			j.mu.Unlock()
			m.counters.Stalled.Add(1)
			cancel()
		})
	}

	// Pipeline and reorder are execution-layout choices with
	// bit-identical results, so they never enter the cache key. (MR's
	// pipeline disengages under the heartbeat observer; BP's overlaps.)
	var reorder core.ReorderOptions
	_ = reorder.Mode.UnmarshalText([]byte(spec.Reorder)) // validated at admission

	res, runErr := p.Align(runCtx, core.Options{
		Method:   method,
		Pipeline: core.PipelineOptions{Enabled: spec.Pipeline},
		Reorder:  reorder,
		BP: core.BPOptions{
			Iterations: spec.Iterations, Gamma: spec.Gamma, Batch: spec.Batch,
			Threads: threads, Matcher: mspec, FuseKernels: spec.Fused, Timer: m.timer,
			Observer: beatBP,
			Resume:   resume, CheckpointEvery: ckptEvery, CheckpointFunc: ckptFunc,
		},
		MR: core.MROptions{
			Iterations: spec.Iterations, Gamma: spec.Gamma, MStep: spec.MStep,
			Threads: threads, Matcher: mspec, Timer: m.timer,
			Observer: beatMR,
			Resume:   resume, CheckpointEvery: ckptEvery, CheckpointFunc: ckptFunc,
		},
	})

	j.mu.Lock()
	userCancelled := j.cancelRequested
	stalled := j.stalled
	preempted := j.preempt
	j.mu.Unlock()

	switch {
	case runErr != nil:
		// Solver and checkpoint-write errors are treated as transient:
		// the next attempt resumes from the last good checkpoint.
		m.retryOrQuarantine(j, runErr.Error())
	case res.Stopped == core.StopCancelled && stalled && !userCancelled && !m.draining.Load():
		// The watchdog cancelled a run whose iteration counter stopped
		// advancing; charge the attempt like any other failure.
		m.retryOrQuarantine(j, "stalled: iteration counter stopped advancing past the watchdog deadline")
	case res.Stopped == core.StopCancelled && !userCancelled && m.draining.Load():
		// Interrupted by shutdown, not by the user: requeue so the
		// next startup resumes from the latest checkpoint. Followers
		// detach and park queued too — each recovers as its own job
		// (and re-coalesces at that startup via the inflight re-key).
		var followers []*Job
		m.mu.Lock()
		if j.hasKey && m.inflight[j.cacheKey] == j {
			delete(m.inflight, j.cacheKey)
		}
		j.mu.Lock()
		followers = j.followers
		j.followers = nil
		j.state = StateQueued
		j.cancel = nil
		j.started = time.Time{}
		j.resumes++
		meta := j.metaLocked()
		j.mu.Unlock()
		m.mu.Unlock()
		m.counters.Interrupted.Add(1)
		_ = m.store.SaveMeta(meta)
		j.publish("state", j.Status())
		j.closeEvents()
		for _, f := range followers {
			f.mu.Lock()
			f.primary = nil
			f.state = StateQueued
			f.started = time.Time{}
			f.resumes++
			fmeta := f.metaLocked()
			f.mu.Unlock()
			m.counters.Interrupted.Add(1)
			_ = m.store.SaveMeta(fmeta)
			f.publish("state", f.Status())
		}
	case res.Stopped == core.StopCancelled && preempted && !userCancelled:
		// Checkpoint-preempted to free the slot for an interactive job:
		// park back at the HEAD of the tenant queue (the job already
		// accumulated service; it must not re-queue behind its tenant's
		// newer batch work). The event broker stays open — subscribers
		// see queued now and the same stream resumes with the next
		// attempt, which picks up from the latest checkpoint and is
		// bit-identical to an uninterrupted run.
		m.mu.Lock()
		j.mu.Lock()
		j.state = StateQueued
		j.cancel = nil
		j.preempt = false
		j.started = time.Time{}
		j.preemptions++
		meta := j.metaLocked()
		followers := append([]*Job(nil), j.followers...)
		j.mu.Unlock()
		m.sched.push(j, true)
		m.sched.tenant(j.Spec.tenantName()).preempted++
		m.counters.Preempted.Add(1)
		m.cond.Signal()
		m.mu.Unlock()
		_ = m.store.SaveMeta(meta)
		j.publish("state", j.Status())
		// Coalesced followers mirror the primary back to queued, exactly
		// as they do across a retry backoff.
		for _, f := range followers {
			f.mu.Lock()
			if f.state == StateRunning {
				f.state = StateQueued
				f.started = time.Time{}
			}
			fmeta := f.metaLocked()
			f.mu.Unlock()
			_ = m.store.SaveMeta(fmeta)
			f.publish("state", f.Status())
		}
	case res.Stopped == core.StopCancelled:
		m.finish(j, StateCancelled, res.JSON(), "")
	case res.Stopped == core.StopNumerics:
		// A numeric guard stop retries from the last checkpoint while
		// budget remains. Once the budget is spent the job finalizes as
		// numerics — with its best partial result persisted — rather
		// than quarantining, so the caller still gets the diagnostics.
		j.mu.Lock()
		attempts := j.attempts
		j.mu.Unlock()
		if b := m.cfg.retryBudget(); b >= 0 && attempts < b {
			m.retryOrQuarantine(j, "numeric guard stop; retrying from last checkpoint")
		} else {
			m.finish(j, StateNumerics, res.JSON(), "")
		}
	default:
		// StopMaxIter, StopConverged and StopDeadline all complete the
		// job; the result's stop reason tells them apart.
		m.finish(j, StateDone, res.JSON(), "")
	}
}

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool { return m.draining.Load() }

// Ready reports whether the manager is accepting new work: nil when a
// submission would be admitted (resource gates permitting), or the
// sentinel the admission path would reject with — ErrDraining during
// shutdown, ErrOverloaded under memory shedding, ErrDiskPressure when
// the spool volume is below its free-space floor. /readyz renders
// this; a router or load balancer uses it to stop routing to a node
// that will refuse the work anyway.
func (m *Manager) Ready() error {
	if m.draining.Load() {
		return ErrDraining
	}
	if m.pressure.memShedding() {
		return ErrOverloaded
	}
	if m.pressure.diskRefusing() {
		return ErrDiskPressure
	}
	return nil
}

// CachePeek returns the cached result bytes for a key without
// touching the hit/miss counters — the serve-by-key endpoint behind
// cluster peer fill (a neighbor's probe must not skew this node's own
// cache metrics). Always a miss when the cache is disabled.
func (m *Manager) CachePeek(key cache.Key) ([]byte, bool) {
	if m.cache == nil {
		return nil, false
	}
	return m.cache.Peek(key)
}

// Shutdown drains the pool: no new submissions are accepted, running
// jobs are cancelled (they stop at the next iteration boundary and
// stay resumable from their last checkpoint), and workers are awaited
// until ctx expires. With Config.Handoff set the drain is proactive:
// once the workers have stopped (so every interrupted run has parked
// queued with its latest checkpoint on disk), each queued job is
// exported to its ring successor and tombstoned handed_off. Jobs no
// peer accepts — and all queued jobs when no sender is configured —
// remain queued in the spool and run on the next startup.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.draining.Store(true)
	m.pressure.shutdown()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.cond.Broadcast()
	var running []*Job
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			running = append(running, j)
		}
		// Stop pending retry backoffs: the job stays parked queued in
		// the spool and reruns on the next startup. (A timer that
		// already fired sees m.closed and backs off.)
		if t := j.retryTimer; t != nil {
			t.Stop()
			j.retryTimer = nil
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for _, j := range running {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Proactive handoff runs strictly after the workers have stopped:
	// the drain-requeue path has parked every interrupted run queued
	// and its last checkpoint rename has completed, so the exported
	// spool state is exactly what a local resume would see.
	if m.cfg.Handoff != nil && err == nil {
		m.handoffQueued(ctx)
	}
	// Disconnect any remaining SSE subscribers (queued jobs, and
	// running jobs that outlived the deadline).
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.closeEvents()
	}
	return err
}

// Metrics is a point-in-time snapshot for /metrics and /debug/vars.
type Metrics struct {
	UptimeSeconds float64            `json:"uptimeSeconds"`
	QueueDepth    int                `json:"queueDepth"`
	Running       int                `json:"running"`
	Submitted     int64              `json:"submitted"`
	Resumed       int64              `json:"resumed"`
	Interrupted   int64              `json:"interrupted"`
	Rejected      int64              `json:"rejected"`
	Completed     int64              `json:"completed"`
	Failed        int64              `json:"failed"`
	Cancelled     int64              `json:"cancelled"`
	Numerics      int64              `json:"numerics"`
	Coalesced     int64              `json:"coalesced"`
	Retried       int64              `json:"retried"`
	Quarantined   int64              `json:"quarantined"`
	Requeued      int64              `json:"requeued"`
	Stalled       int64              `json:"stalled"`
	ShedMemory    int64              `json:"shedMemory"`
	RefusedDisk   int64              `json:"refusedDisk"`
	// Preempted counts batch runs checkpoint-preempted for interactive
	// jobs; ShedQuota counts submissions refused by per-tenant quotas;
	// Expired counts jobs failed because their queue deadline passed
	// before dispatch.
	Preempted int64 `json:"preempted"`
	ShedQuota int64 `json:"shedQuota"`
	Expired   int64 `json:"expired"`
	// Drain-handoff counters: queued jobs exported to a ring successor
	// at drain, jobs admitted from a peer's drain, and exports no peer
	// accepted (those stay queued in the spool).
	HandoffSent     int64 `json:"handoffSent"`
	HandoffReceived int64 `json:"handoffReceived"`
	HandoffFailed   int64 `json:"handoffFailed"`
	// Tenants is the per-tenant rollup: queue depths, running slots,
	// lifetime admission/completion/preemption/shed counters, weights
	// and cumulative queue-wait time.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
	// QuarantinedNow is the gauge of jobs currently quarantined (the
	// operator's "needs attention" number); Quarantined above is the
	// lifetime counter.
	QuarantinedNow int `json:"quarantinedNow"`
	// Pressure gauges: free spool bytes and process RSS from the last
	// sample (zero when the monitor is off), the disk level (0 ok,
	// 1 degraded, 2 refusing), whether memory shedding is active, and
	// the current Retry-After hint.
	DiskFreeBytes int64 `json:"diskFreeBytes,omitempty"`
	RSSBytes      int64 `json:"rssBytes,omitempty"`
	DiskPressure  int   `json:"diskPressure"`
	MemPressure   bool  `json:"memPressure"`
	RetryAfterSec int64 `json:"retryAfterSec"`
	// PeerFillEnabled marks a node running with a cluster peer filler;
	// PeerFills counts submissions admitted from a peer's cache, and
	// PeerFill carries the filler's own probe counters.
	PeerFillEnabled bool          `json:"peerFillEnabled,omitempty"`
	PeerFills       int64         `json:"peerFills,omitempty"`
	PeerFill        PeerFillStats `json:"peerFill"`
	CacheEnabled  bool               `json:"cacheEnabled"`
	CacheHits     int64              `json:"cacheHits"`
	CacheDiskHits int64              `json:"cacheDiskHits"`
	CacheMisses   int64              `json:"cacheMisses"`
	CacheEvicted  int64              `json:"cacheEvicted"`
	CacheCorrupt  int64              `json:"cacheCorrupt"`
	CacheBytes    int64              `json:"cacheBytes"`
	CacheEntries  int                `json:"cacheEntries"`
	StepSeconds   map[string]float64 `json:"stepSeconds"`
}

// Snapshot collects the current metrics.
func (m *Manager) Snapshot() Metrics {
	m.mu.Lock()
	depth := m.sched.size
	running, quarantined := 0, 0
	runningByTenant := make(map[string]int)
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateRunning:
			running++
			runningByTenant[j.Spec.tenantName()]++
		case StateQuarantined:
			quarantined++
		}
		j.mu.Unlock()
	}
	tenants := m.sched.snapshot()
	for name, n := range runningByTenant {
		tm := tenants[name]
		tm.Running = n
		tenants[name] = tm
	}
	m.mu.Unlock()
	steps := make(map[string]float64)
	for step, d := range m.timer.Snapshot() {
		steps[step] = d.Seconds()
	}
	out := Metrics{
		UptimeSeconds: time.Since(m.start).Seconds(),
		QueueDepth:    depth,
		Running:       running,
		Submitted:     m.counters.Submitted.Load(),
		Resumed:       m.counters.Resumed.Load(),
		Interrupted:   m.counters.Interrupted.Load(),
		Rejected:      m.counters.Rejected.Load(),
		Completed:     m.counters.Completed.Load(),
		Failed:        m.counters.Failed.Load(),
		Cancelled:     m.counters.Cancelled.Load(),
		Numerics:      m.counters.Numerics.Load(),
		Coalesced:     m.counters.Coalesced.Load(),
		Retried:       m.counters.Retried.Load(),
		Quarantined:   m.counters.Quarantined.Load(),
		Requeued:      m.counters.Requeued.Load(),
		Stalled:       m.counters.Stalled.Load(),
		ShedMemory:    m.counters.ShedMemory.Load(),
		RefusedDisk:   m.counters.RefusedDisk.Load(),
		Preempted:     m.counters.Preempted.Load(),
		ShedQuota:     m.counters.ShedQuota.Load(),
		Expired:       m.counters.Expired.Load(),
		HandoffSent:     m.counters.HandoffSent.Load(),
		HandoffReceived: m.counters.HandoffReceived.Load(),
		HandoffFailed:   m.counters.HandoffFailed.Load(),
		Tenants:       tenants,
		QuarantinedNow: quarantined,
		DiskFreeBytes: m.pressure.diskFreeBytes.Load(),
		RSSBytes:      m.pressure.rssBytes.Load(),
		DiskPressure:  int(m.pressure.diskLevel.Load()),
		MemPressure:   m.pressure.memShedding(),
		RetryAfterSec: m.pressure.retryAfter(),
		PeerFills:     m.counters.PeerFills.Load(),
		StepSeconds:   steps,
	}
	if m.cfg.PeerFiller != nil {
		out.PeerFillEnabled = true
		out.PeerFill = m.cfg.PeerFiller.Stats()
	}
	if m.cache != nil {
		st := m.cache.Stats()
		out.CacheEnabled = true
		out.CacheHits = st.Hits
		out.CacheDiskHits = st.DiskHits
		out.CacheMisses = st.Misses
		out.CacheEvicted = st.Evictions
		out.CacheCorrupt = st.Corrupt
		out.CacheBytes = st.Bytes
		out.CacheEntries = st.Entries
	}
	return out
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/problemio"
	"netalignmc/internal/stats"
)

// Errors the HTTP layer maps to status codes.
var (
	// ErrNotFound: no such job.
	ErrNotFound = errors.New("server: job not found")
	// ErrQueueFull: the FIFO queue is at its depth limit (429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining: the server is shutting down and accepts no new
	// work (503).
	ErrDraining = errors.New("server: draining")
	// ErrBadSpec wraps job-spec validation and problem-parse failures
	// (400).
	ErrBadSpec = errors.New("server: bad job spec")
)

// Config parameterizes a Manager.
type Config struct {
	// Spool is the durable job directory.
	Spool string
	// Workers is the number of concurrent solves (default 2).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with ErrQueueFull
	// (default 16).
	QueueDepth int
	// CheckpointEvery is the default checkpoint interval in
	// iterations (default 10); Spec.CheckpointEvery overrides per job.
	CheckpointEvery int
	// Threads is the default per-solve thread count when a spec does
	// not set one (default GOMAXPROCS/Workers, at least 1).
	Threads int
	// CacheBytes bounds the in-memory result cache (serialized
	// result.json bytes). Zero or negative disables the cache and
	// request coalescing entirely, which is the library default; the
	// netalignd binary turns it on.
	CacheBytes int64
	// CacheDir, when non-empty and the cache is enabled, adds a disk
	// tier under that directory which survives restarts (entries are
	// hash-validated on load).
	CacheDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 10
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0) / c.Workers
		if c.Threads < 1 {
			c.Threads = 1
		}
	}
	return c
}

// Job is one managed alignment run. All lifecycle fields are guarded
// by mu; iter is atomic so the progress observer can update it from
// the solver goroutine without contending with status reads.
type Job struct {
	ID   string
	Spec Spec

	mu              sync.Mutex
	state           State
	errMsg          string
	created         time.Time
	started         time.Time
	finished        time.Time
	resumes         int
	cancelRequested bool
	cancel          context.CancelFunc

	iter   atomic.Int64
	events *broker

	// Result-cache linkage. cacheKey/hasKey are set once at submit (or
	// recovery) and never change. primary and followers implement
	// single-flight coalescing: a follower is a job whose identical
	// submission attached to an already-inflight primary instead of
	// running; the primary fans its progress and final result out to
	// its followers. Both fields are mutated only under m.mu plus the
	// owning job's mu, and read under the owning job's mu alone.
	cacheKey  cache.Key
	hasKey    bool
	primary   *Job
	followers []*Job
}

// metaLocked snapshots the durable record; callers hold j.mu.
func (j *Job) metaLocked() *Meta {
	return &Meta{
		ID: j.ID, Spec: j.Spec, State: j.state, Error: j.errMsg,
		Created: j.created, Started: j.started, Finished: j.finished,
		Resumes: j.resumes,
	}
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Method   string    `json:"method"`
	Iter     int       `json:"iter"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Resumes  int       `json:"resumes,omitempty"`
}

// Status returns a consistent snapshot of the job.
func (j *Job) Status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobStatus{
		ID: j.ID, State: j.state, Method: j.Spec.methodName(),
		Iter: int(j.iter.Load()), Error: j.errMsg,
		Created: j.created, Started: j.started, Finished: j.finished,
		Resumes: j.resumes,
	}
}

// Counters are the monotonically increasing job metrics.
type Counters struct {
	Submitted, Resumed, Rejected           atomic.Int64
	Completed, Failed, Cancelled, Numerics atomic.Int64
	Interrupted/* requeued by drain or crash */ atomic.Int64
	Coalesced/* submissions attached to an inflight identical job */ atomic.Int64
}

// Manager owns the job lifecycle: a FIFO queue with a depth limit
// feeding a fixed pool of worker goroutines, durable state in a
// Store, and drain/recovery across restarts.
type Manager struct {
	cfg   Config
	store *Store
	timer *stats.StepTimer
	start time.Time
	// cache is the content-addressed result cache (nil when disabled).
	// Keys hash the canonicalized problem bytes plus the spec's
	// output-affecting option fingerprint, so a hit is guaranteed to be
	// the bit-identical result the solve would have produced.
	cache *cache.Cache

	draining atomic.Bool

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Job
	jobs   map[string]*Job
	// inflight is the single-flight table: at most one queued/running
	// job per cache key; identical submissions attach to it as
	// followers instead of solving again.
	inflight map[cache.Key]*Job
	closed   bool
	wg       sync.WaitGroup

	counters Counters
}

// NewManager opens the spool, recovers interrupted jobs (any job
// recorded queued or running is requeued; a checkpoint, if present,
// makes the rerun resume bit-identically), and starts the worker
// pool.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	store, err := NewStore(cfg.Spool)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		store:    store,
		timer:    stats.NewStepTimer(),
		start:    time.Now(),
		jobs:     make(map[string]*Job),
		inflight: make(map[cache.Key]*Job),
	}
	if cfg.CacheBytes > 0 {
		c, err := cache.New(cfg.CacheBytes, cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("server: result cache: %w", err)
		}
		m.cache = c
	}
	m.cond = sync.NewCond(&m.mu)
	if err := m.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Store exposes the spool (read-only use by the HTTP layer and
// tests).
func (m *Manager) Store() *Store { return m.store }

// recover rescans the spool and requeues every non-terminal job.
func (m *Manager) recover() error {
	ids, err := m.store.ListJobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		meta, err := m.store.LoadMeta(id)
		if err != nil {
			// An unreadable record (e.g. crash before the first
			// job.json rename) is skipped, not fatal: the rest of the
			// spool must still come back.
			continue
		}
		j := &Job{
			ID: meta.ID, Spec: meta.Spec, state: meta.State,
			errMsg: meta.Error, created: meta.Created,
			started: meta.Started, finished: meta.Finished,
			resumes: meta.Resumes, events: newBroker(),
		}
		if meta.State.Terminal() {
			j.events.close()
			m.jobs[j.ID] = j
			continue
		}
		// Interrupted: requeue. A job caught mid-run resumes from its
		// last checkpoint (or from scratch when none was written yet);
		// either way the rerun is bit-identical to an uninterrupted
		// run.
		if meta.State == StateRunning {
			j.resumes++
			m.counters.Interrupted.Add(1)
		}
		j.state = StateQueued
		j.started, j.finished = time.Time{}, time.Time{}
		if err := m.store.SaveMeta(j.metaLocked()); err != nil {
			return err
		}
		// Re-key recovered jobs so their eventual results land in the
		// cache and later identical submissions coalesce onto them. The
		// canonical problem bytes are already in the spool. When several
		// recovered jobs share a key, the first claims the single-flight
		// slot and the rest just run (their finishes skip the foreign
		// inflight entry).
		if m.cache != nil {
			if fp, ok := j.Spec.cacheFingerprint(); ok {
				if pb, err := m.store.LoadProblemBytes(j.ID); err == nil {
					j.cacheKey = cache.KeyFor(pb, fp)
					j.hasKey = true
					if _, taken := m.inflight[j.cacheKey]; !taken {
						m.inflight[j.cacheKey] = j
					}
				}
			}
		}
		m.jobs[j.ID] = j
		m.queue = append(m.queue, j)
		m.counters.Resumed.Add(1)
	}
	return nil
}

// Submit validates the spec, materializes and canonicalizes the
// problem into the spool, and enqueues the job. With the result cache
// enabled, a submission whose (problem, options) key hits the cache
// returns an already-completed job without solving, and one identical
// to a queued/running job coalesces onto it as a follower (one
// execution, two job ids, byte-identical results). Submit fails with
// ErrQueueFull when the queue is at its depth limit and ErrDraining
// during shutdown; cache hits and coalesced joins consume no queue
// slot and are admitted even at the depth limit.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	threads := spec.Threads
	if threads == 0 {
		threads = m.cfg.Threads
	}
	p, err := spec.BuildProblem(threads)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if m.draining.Load() {
		return nil, ErrDraining
	}
	// Serialize the problem once: the spool write and the cache key use
	// the same bytes, so they can never disagree.
	var buf bytes.Buffer
	if err := problemio.Write(&buf, p); err != nil {
		return nil, fmt.Errorf("server: canonicalize problem: %w", err)
	}
	pb := buf.Bytes()
	var key cache.Key
	cacheable := false
	if m.cache != nil && spec.TimeoutSec == 0 {
		// Timed jobs are excluded: a deadline makes the outcome
		// wall-clock-dependent, and coalescing one onto an unbounded
		// primary would void its deadline.
		if fp, ok := spec.cacheFingerprint(); ok {
			key = cache.KeyFor(pb, fp)
			cacheable = true
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if cacheable {
		if data, ok := m.cache.Get(key); ok {
			j, err := m.admitCachedLocked(spec, pb, data)
			m.mu.Unlock()
			return j, err
		}
		if prim, ok := m.inflight[key]; ok {
			j, err := m.attachFollowerLocked(spec, pb, key, prim)
			m.mu.Unlock()
			return j, err
		}
	}
	if len(m.queue) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		m.counters.Rejected.Add(1)
		return nil, ErrQueueFull
	}
	id, err := newJobID()
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	j := &Job{
		ID: id, Spec: spec, state: StateQueued,
		created: time.Now(), events: newBroker(),
		cacheKey: key, hasKey: cacheable,
	}
	// Persist before enqueueing so a crash in between recovers the
	// job instead of losing it.
	if err := m.store.CreateJob(id); err == nil {
		err = m.store.SaveProblemBytes(id, pb)
	}
	if err == nil {
		err = m.store.SaveMeta(j.metaLocked())
	}
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if cacheable {
		m.inflight[key] = j
	}
	m.jobs[id] = j
	m.queue = append(m.queue, j)
	m.counters.Submitted.Add(1)
	m.cond.Signal()
	m.mu.Unlock()
	return j, nil
}

// admitCachedLocked creates an already-completed job from a cached
// result: the spool record is fully persisted (problem, result, done
// meta), so the job is indistinguishable from one that ran — except
// its iteration counter stays at zero and no solver work happens.
// Called with m.mu held.
func (m *Manager) admitCachedLocked(spec Spec, problem, result []byte) (*Job, error) {
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	now := time.Now()
	j := &Job{
		ID: id, Spec: spec, state: StateDone,
		created: now, finished: now, events: newBroker(),
	}
	if err := m.store.CreateJob(id); err == nil {
		err = m.store.SaveProblemBytes(id, problem)
	}
	if err == nil {
		err = m.store.SaveResultBytes(id, result)
	}
	if err == nil {
		err = m.store.SaveMeta(j.metaLocked())
	}
	if err != nil {
		return nil, err
	}
	j.events.close()
	m.jobs[id] = j
	m.counters.Submitted.Add(1)
	m.counters.Completed.Add(1)
	return j, nil
}

// attachFollowerLocked coalesces a submission onto the inflight
// primary solving the same key. The follower gets its own id and spool
// record but never enters the queue; it mirrors the primary's state
// and receives its progress events and final result bytes. Called with
// m.mu held.
func (m *Manager) attachFollowerLocked(spec Spec, problem []byte, key cache.Key, prim *Job) (*Job, error) {
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID: id, Spec: spec, created: time.Now(), events: newBroker(),
		cacheKey: key, hasKey: true,
	}
	prim.mu.Lock()
	j.state = StateQueued
	if prim.state == StateRunning {
		j.state = StateRunning
		j.started = prim.started
		j.iter.Store(prim.iter.Load())
	}
	j.primary = prim
	prim.followers = append(prim.followers, j)
	prim.mu.Unlock()
	if err := m.store.CreateJob(id); err == nil {
		err = m.store.SaveProblemBytes(id, problem)
	}
	if err == nil {
		err = m.store.SaveMeta(j.metaLocked())
	}
	if err != nil {
		prim.mu.Lock()
		for i, f := range prim.followers {
			if f == j {
				prim.followers = append(prim.followers[:i], prim.followers[i+1:]...)
				break
			}
		}
		prim.mu.Unlock()
		return nil, err
	}
	m.jobs[id] = j
	m.counters.Submitted.Add(1)
	m.counters.Coalesced.Add(1)
	return j, nil
}

// Get looks a job up.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job's status, newest first.
func (m *Manager) List() []*JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]*JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			if out[k].Created.After(out[i].Created) {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	return out
}

// Cancel requests cooperative cancellation. A queued job is finalized
// immediately; a running job's context is cancelled and the solver
// stops in bounded time, reporting its best partial matching. A
// coalesced follower detaches and finalizes cancelled while its
// primary keeps solving for the remaining subscribers; cancelling a
// primary with followers promotes them to run for themselves. Cancel
// is idempotent: terminal jobs report their state unchanged.
func (m *Manager) Cancel(id string) (*JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	j.mu.Lock()
	if prim := j.primary; prim != nil && !j.state.Terminal() {
		// Coalesced follower: detach, finalize cancelled. The primary's
		// solve is untouched — other jobs still depend on it.
		j.primary = nil
		j.cancelRequested = true
		j.state = StateCancelled
		j.finished = time.Now()
		meta := j.metaLocked()
		j.mu.Unlock()
		prim.mu.Lock()
		for i, f := range prim.followers {
			if f == j {
				prim.followers = append(prim.followers[:i], prim.followers[i+1:]...)
				break
			}
		}
		prim.mu.Unlock()
		m.mu.Unlock()
		m.counters.Cancelled.Add(1)
		_ = m.store.SaveMeta(meta)
		j.events.publish("state", j.Status())
		j.events.close()
		return j.Status(), nil
	}
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		m.mu.Unlock()
		return j.Status(), nil
	case j.state == StateQueued:
		j.cancelRequested = true
		inQueue := false
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				inQueue = true
				break
			}
		}
		if !inQueue {
			// A worker already popped it and is about to run; the
			// run loop will observe cancelRequested and finalize.
			j.mu.Unlock()
			m.mu.Unlock()
			return j.Status(), nil
		}
		var followers []*Job
		if j.hasKey {
			if m.inflight[j.cacheKey] == j {
				delete(m.inflight, j.cacheKey)
			}
			followers = j.followers
			j.followers = nil
		}
		j.state = StateCancelled
		j.finished = time.Now()
		meta := j.metaLocked()
		j.mu.Unlock()
		m.mu.Unlock()
		m.counters.Cancelled.Add(1)
		_ = m.store.SaveMeta(meta)
		j.events.publish("state", j.Status())
		j.events.close()
		m.promoteFollowers(followers)
		return j.Status(), nil
	default: // running
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return j.Status(), nil
	}
}

// Result returns the raw result.json bytes of a finished job.
func (m *Manager) Result(id string) ([]byte, error) {
	return m.store.LoadResult(id)
}

// OpenResult opens a finished job's result.json for streaming.
func (m *Manager) OpenResult(id string) (io.ReadCloser, int64, error) {
	return m.store.OpenResult(id)
}

// worker pops jobs until shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		m.run(j)
	}
}

// finish moves a job to a terminal state, persisting the result (when
// one exists) before the state becomes visible, then ends the event
// stream. For a single-flight primary the cache insert, the inflight
// unlink and the follower snapshot share one m.mu section (so no new
// follower can attach to a decided job, and a concurrent identical
// submission either coalesces or hits the cache — never re-runs);
// it then fans out: a shareable result (a deterministic run that
// stopped on max-iterations or convergence) completes every follower
// with the same bytes; any other outcome promotes the followers to
// run for themselves.
func (m *Manager) finish(j *Job, state State, result *core.ResultJSON, errMsg string) {
	// Persist the result before the terminal state becomes visible: a
	// client that polls the job to done and immediately fetches the
	// result must find result.json on disk.
	var data []byte
	if result != nil {
		var err error
		if data, err = json.Marshal(result); err == nil {
			err = m.store.SaveResultBytes(j.ID, data)
		}
		if err != nil && errMsg == "" {
			// The run succeeded but its result could not be persisted;
			// surface that instead of silently reporting done.
			state = StateFailed
			errMsg = err.Error()
			data = nil
		}
	}
	// Only fully deterministic completions are shareable: cancelled,
	// deadline and numerics outcomes depend on when the run was
	// interrupted, so neither the cache nor a follower may reuse them.
	shareable := state == StateDone && data != nil &&
		(result.Stopped == core.StopMaxIter || result.Stopped == core.StopConverged)
	var followers []*Job
	if j.hasKey {
		m.mu.Lock()
		// The cache insert and the inflight unlink share one critical
		// section with Submit's lookup, so a concurrent identical
		// submission always lands somewhere: before this point it
		// attaches as a follower, after it it hits the cache — there is
		// no window where it would silently re-run.
		if shareable && m.cache != nil {
			m.cache.Put(j.cacheKey, data)
		}
		if m.inflight[j.cacheKey] == j {
			delete(m.inflight, j.cacheKey)
		}
		j.mu.Lock()
		followers = j.followers
		j.followers = nil
		j.mu.Unlock()
		m.mu.Unlock()
	}
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	meta := j.metaLocked()
	j.mu.Unlock()
	_ = m.store.SaveMeta(meta)
	switch state {
	case StateDone:
		m.counters.Completed.Add(1)
	case StateFailed:
		m.counters.Failed.Add(1)
	case StateCancelled:
		m.counters.Cancelled.Add(1)
	case StateNumerics:
		m.counters.Numerics.Add(1)
	}
	j.events.publish("state", j.Status())
	j.events.close()
	if len(followers) > 0 {
		if shareable {
			iter := j.iter.Load()
			for _, f := range followers {
				m.completeFollower(f, data, iter)
			}
		} else {
			m.promoteFollowers(followers)
		}
	}
}

// completeFollower finalizes a coalesced follower with the primary's
// result bytes, copied verbatim so the two jobs' result documents are
// byte-identical.
func (m *Manager) completeFollower(f *Job, data []byte, iter int64) {
	err := m.store.SaveResultBytes(f.ID, data)
	f.iter.Store(iter)
	f.mu.Lock()
	f.primary = nil
	f.state = StateDone
	if err != nil {
		f.state = StateFailed
		f.errMsg = err.Error()
	}
	f.finished = time.Now()
	meta := f.metaLocked()
	f.mu.Unlock()
	_ = m.store.SaveMeta(meta)
	if meta.State == StateDone {
		m.counters.Completed.Add(1)
	} else {
		m.counters.Failed.Add(1)
	}
	f.events.publish("state", f.Status())
	f.events.close()
}

// promoteFollowers re-admits the followers of a primary that ended
// without a shareable result. If another job holding the same key is
// already inflight (admitted between the old primary's unlink and
// now), everyone coalesces onto it; otherwise the first follower is
// promoted to primary — enqueued, re-registered in the single-flight
// table — and the rest follow it. During shutdown the followers are
// instead parked queued in the spool, to be recovered and rerun by the
// next startup.
func (m *Manager) promoteFollowers(followers []*Job) {
	if len(followers) == 0 {
		return
	}
	key := followers[0].cacheKey
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		for _, f := range followers {
			f.mu.Lock()
			f.primary = nil
			f.state = StateQueued
			f.started = time.Time{}
			f.resumes++
			meta := f.metaLocked()
			f.mu.Unlock()
			m.counters.Interrupted.Add(1)
			_ = m.store.SaveMeta(meta)
			f.events.publish("state", f.Status())
		}
		return
	}
	p, rest := followers[0], followers[1:]
	var promotedMeta *Meta
	if cur, ok := m.inflight[key]; ok {
		// cur cannot have snapshotted its followers yet: the snapshot
		// and the inflight removal happen atomically under m.mu, and cur
		// is still registered.
		p, rest = cur, followers
	} else {
		p.mu.Lock()
		p.primary = nil
		p.state = StateQueued
		p.started = time.Time{}
		p.iter.Store(0)
		promotedMeta = p.metaLocked()
		p.mu.Unlock()
		m.inflight[key] = p
		m.queue = append(m.queue, p)
		m.cond.Signal()
	}
	for _, f := range rest {
		f.mu.Lock()
		f.primary = p
		f.mu.Unlock()
	}
	p.mu.Lock()
	p.followers = append(p.followers, rest...)
	p.mu.Unlock()
	m.mu.Unlock()
	if promotedMeta != nil {
		_ = m.store.SaveMeta(promotedMeta)
		p.events.publish("state", p.Status())
	}
}

// run executes one job on the calling worker goroutine.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if j.cancelRequested {
		j.mu.Unlock()
		m.finish(j, StateCancelled, nil, "")
		return
	}
	runCtx, cancel := context.WithCancel(context.Background())
	stop := cancel
	if j.Spec.TimeoutSec > 0 {
		runCtx, stop = context.WithTimeout(runCtx, time.Duration(j.Spec.TimeoutSec*float64(time.Second)))
	}
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	meta := j.metaLocked()
	j.mu.Unlock()
	defer stop()
	defer cancel()
	_ = m.store.SaveMeta(meta)
	j.events.publish("state", j.Status())
	// Followers attached while the job was queued mirror the
	// transition to running; ones attaching from here on mirror it at
	// attach time.
	j.mu.Lock()
	started := j.started
	mirror := append([]*Job(nil), j.followers...)
	j.mu.Unlock()
	for _, f := range mirror {
		f.mu.Lock()
		if f.state == StateQueued {
			f.state = StateRunning
			f.started = started
		}
		fmeta := f.metaLocked()
		f.mu.Unlock()
		_ = m.store.SaveMeta(fmeta)
		f.events.publish("state", f.Status())
	}

	spec := j.Spec
	threads := spec.Threads
	if threads == 0 {
		threads = m.cfg.Threads
	}
	p, err := m.store.LoadProblem(j.ID, threads)
	if err != nil {
		m.finish(j, StateFailed, nil, err.Error())
		return
	}
	resume, err := m.store.LoadCheckpoint(j.ID)
	if err != nil {
		// A corrupt checkpoint is not fatal: rerun from scratch (the
		// full rerun is still identical to an uninterrupted run).
		resume = nil
	}

	reporter := core.NewProgressReporter(p, spec.ProgressEvery, func(ev core.ProgressEvent) {
		j.iter.Store(int64(ev.Iter))
		j.events.publish("progress", ev)
		// Fan progress out to coalesced followers: their SSE streams
		// see the shared execution's iterations as their own.
		j.mu.Lock()
		fs := append([]*Job(nil), j.followers...)
		j.mu.Unlock()
		for _, f := range fs {
			f.iter.Store(int64(ev.Iter))
			f.events.publish("progress", ev)
		}
	})
	ckptEvery := spec.CheckpointEvery
	if ckptEvery == 0 {
		ckptEvery = m.cfg.CheckpointEvery
	}
	ckptPath := m.store.CheckpointPath(j.ID)
	ckptFunc := func(c *core.Checkpoint) error {
		return problemio.WriteCheckpointFile(ckptPath, c)
	}
	mspec, err := matching.ParseMatcherSpec(spec.matcherText())
	if err != nil {
		// Unreachable for accepted jobs (Validate parses the same text
		// at submit time), but a spool edited by hand can get here.
		m.finish(j, StateFailed, nil, err.Error())
		return
	}
	method := core.MethodBP
	if spec.methodName() == "mr" {
		method = core.MethodMR
	}

	res, runErr := p.Align(runCtx, core.Options{
		Method: method,
		BP: core.BPOptions{
			Iterations: spec.Iterations, Gamma: spec.Gamma, Batch: spec.Batch,
			Threads: threads, Matcher: mspec, FuseKernels: spec.Fused, Timer: m.timer,
			Observer: reporter.BPObserver(),
			Resume:   resume, CheckpointEvery: ckptEvery, CheckpointFunc: ckptFunc,
		},
		MR: core.MROptions{
			Iterations: spec.Iterations, Gamma: spec.Gamma, MStep: spec.MStep,
			Threads: threads, Matcher: mspec, Timer: m.timer,
			Observer: reporter.MRObserver(),
			Resume:   resume, CheckpointEvery: ckptEvery, CheckpointFunc: ckptFunc,
		},
	})

	j.mu.Lock()
	userCancelled := j.cancelRequested
	j.mu.Unlock()

	switch {
	case runErr != nil:
		m.finish(j, StateFailed, nil, runErr.Error())
	case res.Stopped == core.StopCancelled && !userCancelled && m.draining.Load():
		// Interrupted by shutdown, not by the user: requeue so the
		// next startup resumes from the latest checkpoint. Followers
		// detach and park queued too — each recovers as its own job
		// (and re-coalesces at that startup via the inflight re-key).
		var followers []*Job
		m.mu.Lock()
		if j.hasKey && m.inflight[j.cacheKey] == j {
			delete(m.inflight, j.cacheKey)
		}
		j.mu.Lock()
		followers = j.followers
		j.followers = nil
		j.state = StateQueued
		j.cancel = nil
		j.started = time.Time{}
		j.resumes++
		meta := j.metaLocked()
		j.mu.Unlock()
		m.mu.Unlock()
		m.counters.Interrupted.Add(1)
		_ = m.store.SaveMeta(meta)
		j.events.publish("state", j.Status())
		j.events.close()
		for _, f := range followers {
			f.mu.Lock()
			f.primary = nil
			f.state = StateQueued
			f.started = time.Time{}
			f.resumes++
			fmeta := f.metaLocked()
			f.mu.Unlock()
			m.counters.Interrupted.Add(1)
			_ = m.store.SaveMeta(fmeta)
			f.events.publish("state", f.Status())
		}
	case res.Stopped == core.StopCancelled:
		m.finish(j, StateCancelled, res.JSON(), "")
	case res.Stopped == core.StopNumerics:
		m.finish(j, StateNumerics, res.JSON(), "")
	default:
		// StopMaxIter, StopConverged and StopDeadline all complete the
		// job; the result's stop reason tells them apart.
		m.finish(j, StateDone, res.JSON(), "")
	}
}

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool { return m.draining.Load() }

// Shutdown drains the pool: no new submissions are accepted, running
// jobs are cancelled (they stop at the next iteration boundary and
// stay resumable from their last checkpoint), and workers are awaited
// until ctx expires. Queued jobs remain queued in the spool and run
// on the next startup.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.draining.Store(true)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.cond.Broadcast()
	var running []*Job
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			running = append(running, j)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for _, j := range running {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Disconnect any remaining SSE subscribers (queued jobs, and
	// running jobs that outlived the deadline).
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.events.close()
	}
	return err
}

// Metrics is a point-in-time snapshot for /metrics and /debug/vars.
type Metrics struct {
	UptimeSeconds float64            `json:"uptimeSeconds"`
	QueueDepth    int                `json:"queueDepth"`
	Running       int                `json:"running"`
	Submitted     int64              `json:"submitted"`
	Resumed       int64              `json:"resumed"`
	Interrupted   int64              `json:"interrupted"`
	Rejected      int64              `json:"rejected"`
	Completed     int64              `json:"completed"`
	Failed        int64              `json:"failed"`
	Cancelled     int64              `json:"cancelled"`
	Numerics      int64              `json:"numerics"`
	Coalesced     int64              `json:"coalesced"`
	CacheEnabled  bool               `json:"cacheEnabled"`
	CacheHits     int64              `json:"cacheHits"`
	CacheDiskHits int64              `json:"cacheDiskHits"`
	CacheMisses   int64              `json:"cacheMisses"`
	CacheEvicted  int64              `json:"cacheEvicted"`
	CacheCorrupt  int64              `json:"cacheCorrupt"`
	CacheBytes    int64              `json:"cacheBytes"`
	CacheEntries  int                `json:"cacheEntries"`
	StepSeconds   map[string]float64 `json:"stepSeconds"`
}

// Snapshot collects the current metrics.
func (m *Manager) Snapshot() Metrics {
	m.mu.Lock()
	depth := len(m.queue)
	running := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			running++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	steps := make(map[string]float64)
	for step, d := range m.timer.Snapshot() {
		steps[step] = d.Seconds()
	}
	out := Metrics{
		UptimeSeconds: time.Since(m.start).Seconds(),
		QueueDepth:    depth,
		Running:       running,
		Submitted:     m.counters.Submitted.Load(),
		Resumed:       m.counters.Resumed.Load(),
		Interrupted:   m.counters.Interrupted.Load(),
		Rejected:      m.counters.Rejected.Load(),
		Completed:     m.counters.Completed.Load(),
		Failed:        m.counters.Failed.Load(),
		Cancelled:     m.counters.Cancelled.Load(),
		Numerics:      m.counters.Numerics.Load(),
		Coalesced:     m.counters.Coalesced.Load(),
		StepSeconds:   steps,
	}
	if m.cache != nil {
		st := m.cache.Stats()
		out.CacheEnabled = true
		out.CacheHits = st.Hits
		out.CacheDiskHits = st.DiskHits
		out.CacheMisses = st.Misses
		out.CacheEvicted = st.Evictions
		out.CacheCorrupt = st.Corrupt
		out.CacheBytes = st.Bytes
		out.CacheEntries = st.Entries
	}
	return out
}

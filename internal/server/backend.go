package server

import (
	"errors"
	"io"
)

// ErrNotReady reports a result fetch against a job that has not yet
// reached a terminal state (409). It is part of the Backend error
// vocabulary so the HTTP client implementation can round-trip the
// condition.
var ErrNotReady = errors.New("server: result not ready")

// Backend is the transport-agnostic submit/lookup surface over a job
// service. Two implementations exist: LocalBackend drives an
// in-process Manager (the single-node daemon path — no transport, no
// extra allocations beyond what the Manager itself does), and
// cluster.Client drives a remote netalignd over its HTTP API. The
// HTTP handlers in this package, the cluster router, and the tests
// all consume this interface, so anything that works against a local
// manager works unchanged against a remote node.
//
// Error contract (errors.Is across both implementations):
//
//	Submit  — ErrBadSpec, ErrQueueFull, ErrTenantQuota, ErrOverloaded,
//	          ErrDiskPressure, ErrDraining
//	Status  — ErrNotFound
//	List    — (filtering only; unknown filter values are the caller's
//	          problem)
//	Cancel  — ErrNotFound
//	Requeue — ErrNotFound, ErrNotQuarantined, ErrDraining
//	OpenResult — ErrNotFound (job unknown), ErrNotReady (not terminal),
//	          fs.ErrNotExist (terminal but no result document)
//	Ready   — nil when accepting work; ErrDraining, ErrOverloaded or
//	          ErrDiskPressure when a router should stop sending it.
type Backend interface {
	// Submit admits one job and returns its initial status snapshot
	// (which may already be terminal — cache hits admit done).
	Submit(spec Spec) (*JobStatus, error)
	// Status returns a job's current status snapshot.
	Status(id string) (*JobStatus, error)
	// List returns job statuses newest-first; zero filter fields match
	// everything.
	List(f ListFilter) ([]*JobStatus, error)
	// Cancel requests cooperative cancellation (idempotent).
	Cancel(id string) (*JobStatus, error)
	// Requeue puts a quarantined job back in the run queue.
	Requeue(id string) (*JobStatus, error)
	// OpenResult opens a finished job's result document for streaming.
	OpenResult(id string) (io.ReadCloser, int64, error)
	// Ready reports whether the backend is accepting new work.
	Ready() error
}

// LocalBackend adapts a Manager to the Backend interface. It is a
// value type so embedding it in the HTTP server costs nothing on the
// submit path.
type LocalBackend struct {
	M *Manager
}

var _ Backend = LocalBackend{}

// Submit admits the job on the local manager.
func (b LocalBackend) Submit(spec Spec) (*JobStatus, error) {
	j, err := b.M.Submit(spec)
	if err != nil {
		return nil, err
	}
	return j.Status(), nil
}

// Status snapshots a local job.
func (b LocalBackend) Status(id string) (*JobStatus, error) {
	j, ok := b.M.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	return j.Status(), nil
}

// ListFilter selects jobs in Backend.List; its fields compose (AND).
// Zero values match everything. Tenant and Class match the job's
// effective values, so ?tenant=default finds pre-tenant submissions.
type ListFilter struct {
	State  State
	Tenant string
	Class  string
}

// Match reports whether a status passes the filter.
func (f ListFilter) Match(js *JobStatus) bool {
	if f.State != "" && js.State != f.State {
		return false
	}
	if f.Tenant != "" && js.Tenant != f.Tenant {
		return false
	}
	if f.Class != "" && js.Class != f.Class {
		return false
	}
	return true
}

// List returns local jobs newest-first, optionally filtered.
func (b LocalBackend) List(f ListFilter) ([]*JobStatus, error) {
	list := b.M.List()
	if f == (ListFilter{}) {
		return list, nil
	}
	filtered := make([]*JobStatus, 0, len(list))
	for _, js := range list {
		if f.Match(js) {
			filtered = append(filtered, js)
		}
	}
	return filtered, nil
}

// Cancel cancels a local job.
func (b LocalBackend) Cancel(id string) (*JobStatus, error) {
	return b.M.Cancel(id)
}

// Requeue requeues a quarantined local job.
func (b LocalBackend) Requeue(id string) (*JobStatus, error) {
	return b.M.Requeue(id)
}

// OpenResult opens a local job's result, enforcing the Backend error
// contract: unknown job → ErrNotFound, non-terminal → ErrNotReady,
// terminal without a document → fs.ErrNotExist from the store.
func (b LocalBackend) OpenResult(id string) (io.ReadCloser, int64, error) {
	j, ok := b.M.Get(id)
	if !ok {
		return nil, 0, ErrNotFound
	}
	if st := j.Status(); !st.State.Terminal() {
		return nil, 0, ErrNotReady
	}
	return b.M.OpenResult(id)
}

// Ready reports the local manager's admission state.
func (b LocalBackend) Ready() error { return b.M.Ready() }

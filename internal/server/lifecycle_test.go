package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netalignmc/internal/core"
	"netalignmc/internal/faults"
	"netalignmc/internal/problemio"
)

// retryCfg is a manager config with near-instant backoff so retry
// tests run in milliseconds.
func retryCfg() Config {
	return Config{
		Workers: 1, RetryBudget: 2,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
	}
}

// baselineResult runs spec uninjected on a fresh manager and returns
// the raw result.json bytes — the reference for bit-identical checks.
func baselineResult(t *testing.T, spec Spec) []byte {
	t.Helper()
	mgr, ts := newTestServer(t, Config{Workers: 1})
	id := submitOK(t, ts, spec)
	waitState(t, ts, id, StateDone, 30*time.Second)
	data, err := mgr.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRetryDelayDeterministic(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	cases := []struct {
		id      string
		attempt int
	}{
		{"0123456789abcdef", 1},
		{"0123456789abcdef", 2},
		{"0123456789abcdef", 3},
		{"0123456789abcdef", 10},
		{"0123456789abcdef", 100},
		{"fedcba9876543210", 1},
		{"fedcba9876543210", 4},
		{"00000000deadbeef", 7},
	}
	for _, tc := range cases {
		got := RetryDelay(tc.id, tc.attempt, base, max)
		if again := RetryDelay(tc.id, tc.attempt, base, max); again != got {
			t.Errorf("RetryDelay(%s, %d) not deterministic: %s then %s", tc.id, tc.attempt, got, again)
		}
		// Unjittered exponential value the jitter scales.
		exp := base
		for i := 1; i < tc.attempt && exp < max; i++ {
			exp *= 2
		}
		if exp > max {
			exp = max
		}
		lo := time.Duration(0.75 * float64(exp))
		hi := time.Duration(1.25 * float64(exp))
		if got < lo || got > hi {
			t.Errorf("RetryDelay(%s, %d) = %s outside jitter band [%s, %s]", tc.id, tc.attempt, got, lo, hi)
		}
		if got > max {
			t.Errorf("RetryDelay(%s, %d) = %s exceeds max %s", tc.id, tc.attempt, got, max)
		}
	}
	// The jitter must actually decorrelate different jobs at the same
	// attempt (same delay for everyone would re-land failure bursts as
	// bursts).
	a := RetryDelay("0123456789abcdef", 2, base, max)
	b := RetryDelay("fedcba9876543210", 2, base, max)
	c := RetryDelay("00000000deadbeef", 2, base, max)
	if a == b && b == c {
		t.Errorf("jitter produced identical delays %s for three distinct ids", a)
	}
}

// TestRetryRecoversTransientFault: a one-shot injected I/O error on
// the result persist fails the first attempt; the retry resumes and
// completes with the attempt on record and a bit-identical result.
func TestRetryRecoversTransientFault(t *testing.T) {
	want := baselineResult(t, smallSpec())
	restore := faults.SetActive(faults.NewPlan(1).WithIO("spool:write:result.json", faults.IOErr, 1))
	defer restore()
	mgr, ts := newTestServer(t, retryCfg())
	id := submitOK(t, ts, smallSpec())
	st := waitState(t, ts, id, StateDone, 30*time.Second)
	if st.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", st.Attempts)
	}
	got, err := mgr.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("retried result differs from uninjected baseline")
	}
	if n := mgr.Snapshot().Retried; n != 1 {
		t.Errorf("retried counter = %d, want 1", n)
	}
}

// TestQuarantineAfterBudget: a persistent fault exhausts the retry
// budget and quarantines the job; the quarantine listing finds it;
// clearing the fault and requeueing completes it bit-identically.
func TestQuarantineAfterBudget(t *testing.T) {
	want := baselineResult(t, smallSpec())
	restore := faults.SetActive(faults.NewPlan(1).WithIO("spool:write:result.json", faults.IONoSpace, 0))
	cleared := false
	defer func() {
		if !cleared {
			restore()
		}
	}()
	mgr, ts := newTestServer(t, retryCfg())
	id := submitOK(t, ts, smallSpec())
	st := waitState(t, ts, id, StateQuarantined, 30*time.Second)
	if st.Attempts != 3 { // budget 2: attempts 1 and 2 retry, 3 quarantines
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}
	if !strings.Contains(st.Error, "retry budget exhausted") {
		t.Errorf("error %q does not name the exhausted budget", st.Error)
	}

	// The operator listing: ?state=quarantined finds it, a bogus state
	// is a 400.
	resp, err := http.Get(ts.URL + "/v1/jobs?state=quarantined")
	if err != nil {
		t.Fatal(err)
	}
	var list []*JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("quarantined listing = %+v, want exactly job %s", list, id)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?state=bogus: status %d, want 400", resp.StatusCode)
	}

	// Clear the fault and requeue: the job reruns from its spool record
	// and completes bit-identically to an undisturbed run.
	restore()
	cleared = true
	resp, err = http.Post(ts.URL+"/v1/jobs/"+id+"/requeue", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rq JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&rq); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("requeue: status %d", resp.StatusCode)
	}
	if rq.Attempts != 0 {
		t.Errorf("requeued attempts = %d, want 0 (fresh budget)", rq.Attempts)
	}
	waitState(t, ts, id, StateDone, 30*time.Second)
	got, err := mgr.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("requeued result differs from uninjected baseline")
	}

	// Requeueing a non-quarantined job is a 409.
	resp, err = http.Post(ts.URL+"/v1/jobs/"+id+"/requeue", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("requeue of done job: status %d, want 409", resp.StatusCode)
	}
	m := mgr.Snapshot()
	if m.Quarantined != 1 || m.Requeued != 1 {
		t.Errorf("counters quarantined=%d requeued=%d, want 1/1", m.Quarantined, m.Requeued)
	}
}

// TestCrashLoopQuarantine: a job found mid-running across
// CrashLoopLimit consecutive daemon restarts is quarantined by
// recovery instead of requeued; a stale (non-consecutive) incarnation
// resets the streak.
func TestCrashLoopQuarantine(t *testing.T) {
	spool := t.TempDir()
	store, err := NewStore(spool)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	p, err := spec.BuildProblem(1)
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := problemio.Write(&pb, p); err != nil {
		t.Fatal(err)
	}
	const id = "00000000000000aa"
	if err := store.CreateJob(id); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveProblemBytes(id, pb.Bytes()); err != nil {
		t.Fatal(err)
	}
	// The job looks crashed mid-run before the first "restart".
	if err := store.SaveMeta(&Meta{
		ID: id, Spec: spec, State: StateRunning, Created: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}

	const limit = 3
	newMgr := func() *Manager {
		mgr, err := NewManager(Config{Spool: spool, Workers: 1, CrashLoopLimit: limit, RetryBudget: -1})
		if err != nil {
			t.Fatal(err)
		}
		return mgr
	}
	shutdown := func(mgr *Manager) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}
	for restart := 1; restart <= limit; restart++ {
		mgr := newMgr()
		j, ok := mgr.Get(id)
		if !ok {
			t.Fatalf("restart %d: job lost", restart)
		}
		st := j.Status()
		shutdown(mgr)
		if restart < limit {
			if st.State == StateQuarantined {
				t.Fatalf("restart %d: quarantined before the limit (%d)", restart, limit)
			}
			// Re-stage the crash: mark it running under the incarnation
			// that just shut down, as if the daemon died mid-run again.
			meta, err := store.LoadMeta(id)
			if err != nil {
				t.Fatal(err)
			}
			if meta.CrashRuns != restart {
				t.Fatalf("restart %d: persisted crashRuns = %d, want %d", restart, meta.CrashRuns, restart)
			}
			meta.State = StateRunning
			meta.Incarnation = store.LoadIncarnation()
			if err := store.SaveMeta(meta); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if st.State != StateQuarantined {
			t.Fatalf("restart %d: state %s (error %q), want quarantined", restart, st.State, st.Error)
		}
		if !strings.Contains(st.Error, "crash loop") {
			t.Errorf("quarantine error %q does not name the crash loop", st.Error)
		}
	}

	// A stale incarnation (daemon restarts in between where this job
	// was not mid-running) resets the streak: high CrashRuns with an
	// old incarnation must not quarantine.
	const id2 = "00000000000000bb"
	if err := store.CreateJob(id2); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveProblemBytes(id2, pb.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveMeta(&Meta{
		ID: id2, Spec: spec, State: StateRunning, Created: time.Now(),
		CrashRuns: 7, Incarnation: 1, // stale: many restarts ago
	}); err != nil {
		t.Fatal(err)
	}
	mgr := newMgr()
	j, ok := mgr.Get(id2)
	if !ok {
		t.Fatal("stale-incarnation job lost")
	}
	if st := j.Status(); st.State == StateQuarantined {
		t.Errorf("stale incarnation quarantined (error %q); streak should have reset", st.Error)
	}
	shutdown(mgr)
}

func TestWatchProgressStall(t *testing.T) {
	var beat atomic.Int64
	var stalls atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		watchProgress(ctx, time.Millisecond, 20*time.Millisecond, beat.Load, func() {
			stalls.Add(1)
			cancel() // what the manager's onStall does: cancel the run
		})
		close(done)
	}()
	// Healthy phase: advancing beats hold the watchdog off well past
	// the timeout.
	for i := 0; i < 15; i++ {
		beat.Add(1)
		time.Sleep(5 * time.Millisecond)
	}
	if stalls.Load() != 0 {
		t.Fatal("watchdog fired while the counter was advancing")
	}
	// Stall: stop advancing and the watchdog must fire exactly once.
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired on a stalled counter")
	}
	if n := stalls.Load(); n != 1 {
		t.Fatalf("onStall called %d times, want 1", n)
	}
}

func TestWatchProgressCtxCancel(t *testing.T) {
	var beat atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		watchProgress(ctx, time.Millisecond, time.Hour, beat.Load, func() {
			t.Error("onStall fired after ctx cancel")
		})
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not exit on ctx cancel")
	}
}

func TestStallTimeoutFor(t *testing.T) {
	cases := []struct {
		base time.Duration
		nnz  int
		want time.Duration
	}{
		{0, 1 << 30, 0},                         // disabled stays disabled
		{time.Minute, 0, time.Minute},           // small problem: base
		{time.Minute, 1<<20 - 1, time.Minute},   // just under the scale step
		{time.Minute, 1 << 20, 2 * time.Minute}, // one step up
		{time.Minute, 2_500_000, 3 * time.Minute},
	}
	for _, tc := range cases {
		if got := stallTimeoutFor(tc.base, tc.nnz); got != tc.want {
			t.Errorf("stallTimeoutFor(%s, %d) = %s, want %s", tc.base, tc.nnz, got, tc.want)
		}
	}
}

// TestPressureDiskLevels drives the pressure monitor through
// ok → degraded → refusing → ok with an injected disk probe and checks
// the degraded-mode side effects at each level.
func TestPressureDiskLevels(t *testing.T) {
	var free atomic.Int64
	free.Store(10_000)
	spool := t.TempDir()
	mgr, err := NewManager(Config{
		Spool: spool, Workers: 1,
		MinDiskBytes:  1000,
		PressureEvery: time.Hour, // test drives sample() directly
		DiskFreeProbe: func(string) (int64, error) { return free.Load(), nil },
		CacheBytes:    1 << 20,
		CacheDir:      filepath.Join(spool, "cache"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}()

	mgr.pressure.sample(mgr)
	if mgr.pressure.ckptStretch() != 1 || !mgr.cache.DiskEnabled() {
		t.Fatal("healthy disk: expected stretch 1 and cache disk tier on")
	}

	// Degraded band [min, 2·min): cache disk tier off, checkpoints
	// stretched, but submissions still admitted.
	free.Store(1500)
	mgr.pressure.sample(mgr)
	if got := mgr.pressure.ckptStretch(); got != ckptStretchFactor {
		t.Errorf("degraded stretch = %d, want %d", got, ckptStretchFactor)
	}
	if mgr.cache.DiskEnabled() {
		t.Error("degraded: cache disk tier still on")
	}
	if _, err := mgr.Submit(smallSpec()); err != nil {
		t.Errorf("degraded level must still admit: %v", err)
	}

	// Below the floor: refuse.
	free.Store(500)
	mgr.pressure.sample(mgr)
	if _, err := mgr.Submit(smallSpec()); !errors.Is(err, ErrDiskPressure) {
		t.Errorf("refusing level Submit err = %v, want ErrDiskPressure", err)
	}
	m := mgr.Snapshot()
	if m.DiskPressure != int(diskRefuse) || m.RefusedDisk != 1 || m.DiskFreeBytes != 500 {
		t.Errorf("snapshot diskPressure=%d refused=%d free=%d, want 2/1/500",
			m.DiskPressure, m.RefusedDisk, m.DiskFreeBytes)
	}

	// Recovery: everything back to normal.
	free.Store(10_000)
	mgr.pressure.sample(mgr)
	if mgr.pressure.ckptStretch() != 1 || !mgr.cache.DiskEnabled() {
		t.Error("cleared pressure: expected stretch 1 and cache disk tier back on")
	}
	if _, err := mgr.Submit(smallSpec()); err != nil {
		t.Errorf("cleared pressure must admit: %v", err)
	}
}

// TestPressureMemoryShed: over the RSS budget, submissions get a 429
// with a Retry-After hint; under it they are admitted again.
func TestPressureMemoryShed(t *testing.T) {
	var rss atomic.Int64
	rss.Store(100)
	mgr, ts := newTestServer(t, Config{
		Workers: 1, MaxRSSBytes: 1000,
		PressureEvery: time.Hour,
		RSSProbe:      func() (int64, error) { return rss.Load(), nil },
	})
	mgr.pressure.sample(mgr)
	submitOK(t, ts, smallSpec())

	rss.Store(5000)
	mgr.pressure.sample(mgr)
	resp, body := postJob(t, ts, smallSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit: status %d body %s, want 429", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Errorf("shed body %s does not carry the overloaded code", body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 120 {
		t.Errorf("Retry-After %q, want an integer in [1, 120]", resp.Header.Get("Retry-After"))
	}
	if m := mgr.Snapshot(); !m.MemPressure || m.ShedMemory != 1 {
		t.Errorf("snapshot memPressure=%v shed=%d, want true/1", m.MemPressure, m.ShedMemory)
	}

	rss.Store(100)
	mgr.pressure.sample(mgr)
	submitOK(t, ts, smallSpec())
}

// TestCheckpointFaultLeavesPreviousValid: an injected ENOSPC (and a
// short write) during a checkpoint write must fail that write while
// the previously renamed checkpoint stays fully readable.
func TestCheckpointFaultLeavesPreviousValid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	first := &core.Checkpoint{
		Method: "bp", Iter: 3, Alpha: 1, Beta: 2,
		NA: 2, NB: 2, EL: 2, NNZ: 2,
		Y: []float64{1, 2}, Z: []float64{3, 4}, SK: []float64{5, 6},
		GammaK: 0.5,
	}
	if err := problemio.WriteCheckpointFile(path, first); err != nil {
		t.Fatal(err)
	}
	second := *first
	second.Iter = 4
	second.Y = []float64{9, 9}

	for _, tc := range []struct {
		name string
		kind faults.IOKind
	}{
		{"enospc", faults.IONoSpace},
		{"short-write", faults.IOShortWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			restore := faults.SetActive(faults.NewPlan(1).WithIO("checkpoint:write", tc.kind, 1))
			err := problemio.WriteCheckpointFile(path, &second)
			restore()
			if err == nil {
				t.Fatal("faulted checkpoint write reported success")
			}
			if tc.kind == faults.IONoSpace && !errors.Is(err, faults.ErrNoSpace) {
				t.Errorf("err = %v, want ErrNoSpace in the chain", err)
			}
			got, err := problemio.ReadCheckpointFile(path)
			if err != nil {
				t.Fatalf("previous checkpoint unreadable after faulted write: %v", err)
			}
			if got.Iter != first.Iter || got.Y[0] != first.Y[0] {
				t.Errorf("previous checkpoint content changed: iter %d y0 %v", got.Iter, got.Y[0])
			}
		})
	}
}

// TestRetryCancelDuringBackoff: cancelling a job while it waits out a
// retry backoff finalizes it cancelled instead of leaving it parked.
func TestRetryCancelDuringBackoff(t *testing.T) {
	restore := faults.SetActive(faults.NewPlan(1).WithIO("spool:write:result.json", faults.IOErr, 0))
	defer restore()
	_, ts := newTestServer(t, Config{
		Workers: 1, RetryBudget: 100,
		RetryBaseDelay: 30 * time.Second, RetryMaxDelay: time.Minute,
	})
	id := submitOK(t, ts, smallSpec())
	// Wait until the first failure parks the job in backoff (queued
	// with attempts > 0).
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State == StateQueued && st.Attempts > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never entered retry backoff (state %s attempts %d)", st.State, st.Attempts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, id, StateCancelled, 10*time.Second)
}

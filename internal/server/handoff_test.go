package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"netalignmc/internal/faults"
)

// stubSender delivers handoffs straight into a destination manager,
// standing in for the cluster transport.
type stubSender struct {
	dst  *Manager
	node string
	fail bool

	mu   sync.Mutex
	sent []*HandoffJob
}

func (s *stubSender) Handoff(ctx context.Context, h *HandoffJob) (string, error) {
	if s.fail {
		return "", errors.New("stub: no peer available")
	}
	if s.dst != nil {
		if _, err := s.dst.AdmitHandoff(h); err != nil {
			return "", err
		}
	}
	s.mu.Lock()
	s.sent = append(s.sent, h)
	s.mu.Unlock()
	return s.node, nil
}

// handoffSpec is slow enough to still be mid-run when the drain lands
// but finite enough to complete within the test budget.
func handoffSpec(seed int64) Spec {
	return Spec{
		Method: "bp", Iterations: 400, Batch: 1, Approx: true, Threads: 1,
		ProgressEvery: 1, CheckpointEvery: 2,
		Generator: &GeneratorSpec{N: 120, DBar: 4, Seed: seed},
	}
}

// waitCheckpoint blocks until a job's checkpoint file exists, so a
// subsequent drain hands off a mid-run snapshot rather than a
// never-started job.
func waitCheckpoint(t *testing.T, mgr *Manager, id string) {
	t.Helper()
	path := mgr.Store().CheckpointPath(id)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint for %s after 30s", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDrainHandoffBitIdentical is the proactive-drain contract end to
// end: a draining manager exports its interrupted running job (with
// checkpoint) and its queued job to the sender; the receiver admits
// both under their original ids, resumes, and produces result bytes
// identical to undisturbed baselines; the local copies are tombstoned
// handed_off and the counters on both sides agree.
func TestDrainHandoffBitIdentical(t *testing.T) {
	runSpec := handoffSpec(5)
	queuedSpec := handoffSpec(6)
	wantRun := baselineResult(t, runSpec)
	wantQueued := baselineResult(t, queuedSpec)

	recvMgr, recvTS := newTestServer(t, Config{Workers: 2})
	sender := &stubSender{dst: recvMgr, node: "http://peer.example"}

	src, err := NewManager(Config{Spool: t.TempDir(), Workers: 1, Handoff: sender})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = src.Shutdown(ctx)
	})
	jRun, err := src.Submit(runSpec)
	if err != nil {
		t.Fatal(err)
	}
	jQueued, err := src.Submit(queuedSpec) // parked behind the single worker
	if err != nil {
		t.Fatal(err)
	}
	waitCheckpoint(t, src, jRun.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := src.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := jRun.Status(); st.State == StateDone {
		t.Skip("running job finished before the drain landed; nothing to hand off")
	}

	for _, j := range []*Job{jRun, jQueued} {
		st := j.Status()
		if st.State != StateHandedOff {
			t.Fatalf("job %s state = %s, want handed_off", j.ID, st.State)
		}
		if st.HandedOffTo != sender.node {
			t.Errorf("job %s handedOffTo = %q, want %q", j.ID, st.HandedOffTo, sender.node)
		}
	}
	if n := src.Snapshot().HandoffSent; n != 2 {
		t.Errorf("HandoffSent = %d, want 2", n)
	}

	// The interrupted job traveled with its checkpoint; the receiver
	// admits it as a resume.
	sender.mu.Lock()
	var runHandoff *HandoffJob
	for _, h := range sender.sent {
		if h.ID == jRun.ID {
			runHandoff = h
		}
	}
	sender.mu.Unlock()
	if runHandoff == nil {
		t.Fatal("running job never reached the sender")
	}
	if len(runHandoff.Checkpoint) == 0 {
		t.Error("handed-off running job carries no checkpoint")
	}

	st := waitState(t, recvTS, jRun.ID, StateDone, 120*time.Second)
	if st.Resumes == 0 {
		t.Error("receiver ran the checkpointed job without counting a resume")
	}
	waitState(t, recvTS, jQueued.ID, StateDone, 120*time.Second)
	gotRun, err := recvMgr.Result(jRun.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRun, wantRun) {
		t.Errorf("handed-off resumed result differs from baseline (%d vs %d bytes)",
			len(gotRun), len(wantRun))
	}
	gotQueued, err := recvMgr.Result(jQueued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotQueued, wantQueued) {
		t.Errorf("handed-off queued result differs from baseline (%d vs %d bytes)",
			len(gotQueued), len(wantQueued))
	}
	if n := recvMgr.Snapshot().HandoffReceived; n != 2 {
		t.Errorf("receiver HandoffReceived = %d, want 2", n)
	}
}

// TestHandedOffTombstoneSurvivesRestart proves the no-double-run
// guarantee: a restart over the drained spool recovers handed-off jobs
// as terminal tombstones — nothing requeues, nothing runs, and requeue
// is refused like any other non-quarantined terminal job.
func TestHandedOffTombstoneSurvivesRestart(t *testing.T) {
	recvMgr, _ := newTestServer(t, Config{Workers: 1})
	sender := &stubSender{dst: recvMgr, node: "http://peer.example"}

	spool := t.TempDir()
	src, err := NewManager(Config{Spool: spool, Workers: 1, Handoff: sender})
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := src.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued := longSpec()
	queued.Generator.Seed = 99
	jQueued, err := src.Submit(queued)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := src.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := src.Snapshot().HandoffSent; n != 2 {
		t.Fatalf("HandoffSent = %d, want 2 (blocker parks queued and exports too)", n)
	}

	restarted, err := NewManager(Config{Spool: spool, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = restarted.Shutdown(ctx)
	})
	for _, id := range []string{blocker.ID, jQueued.ID} {
		j, ok := restarted.Get(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		st := j.Status()
		if st.State != StateHandedOff {
			t.Errorf("recovered job %s state = %s, want handed_off", id, st.State)
		}
		if st.HandedOffTo != sender.node {
			t.Errorf("recovered job %s handedOffTo = %q, want %q", id, st.HandedOffTo, sender.node)
		}
		if _, err := restarted.Requeue(id); !errors.Is(err, ErrNotQuarantined) {
			t.Errorf("Requeue(%s) = %v, want ErrNotQuarantined", id, err)
		}
	}
	m := restarted.Snapshot()
	if m.QueueDepth != 0 || m.Running != 0 {
		t.Errorf("restart re-runs handed-off jobs: depth %d running %d, want 0/0",
			m.QueueDepth, m.Running)
	}
}

// TestHandoffFailureKeepsJobQueued: when no peer accepts, the drain
// degrades to the plain behavior — jobs stay queued in the spool and
// the next startup runs them. Nothing is lost.
func TestHandoffFailureKeepsJobQueued(t *testing.T) {
	spool := t.TempDir()
	src, err := NewManager(Config{Spool: spool, Workers: 1, Handoff: &stubSender{fail: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Submit(longSpec()); err != nil { // occupies the worker
		t.Fatal(err)
	}
	small := smallSpec()
	jQueued, err := src.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := src.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := src.Snapshot().HandoffFailed; n != 2 {
		t.Errorf("HandoffFailed = %d, want 2", n)
	}
	if st := jQueued.Status(); st.State != StateQueued {
		t.Fatalf("refused handoff left job %s in %s, want queued", jQueued.ID, st.State)
	}

	restarted, err := NewManager(Config{Spool: spool, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = restarted.Shutdown(ctx)
	})
	j, ok := restarted.Get(jQueued.ID)
	if !ok {
		t.Fatalf("queued job %s lost across restart", jQueued.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := j.Status()
		if st.State == StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("recovered job reached %s (error %q), want done", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job still %s, want done", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmitHandoffGates pins the receiver's admission contract:
// malformed ids, invalid specs and empty problems are rejected as bad
// specs; a draining node refuses; redelivery of a known id is
// idempotent.
func TestAdmitHandoffGates(t *testing.T) {
	// Harvest canonical problem bytes from a real job so the admitted
	// copy is runnable.
	origin, originTS := newTestServer(t, Config{Workers: 1})
	spec := smallSpec()
	originID := submitOK(t, originTS, spec)
	waitState(t, originTS, originID, StateDone, 30*time.Second)
	problem, err := origin.Store().LoadProblemBytes(originID)
	if err != nil {
		t.Fatal(err)
	}

	mgr, ts := newTestServer(t, Config{Workers: 1})
	valid := &HandoffJob{ID: "00112233aabbccdd", Spec: spec, Problem: problem}

	if _, err := mgr.AdmitHandoff(&HandoffJob{ID: "not-a-job-id", Spec: spec, Problem: problem}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("malformed id: %v, want ErrBadSpec", err)
	}
	if _, err := mgr.AdmitHandoff(&HandoffJob{ID: valid.ID, Spec: Spec{Method: "bp"}, Problem: problem}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("invalid spec: %v, want ErrBadSpec", err)
	}
	if _, err := mgr.AdmitHandoff(&HandoffJob{ID: valid.ID, Spec: spec}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("empty problem: %v, want ErrBadSpec", err)
	}

	st, err := mgr.AdmitHandoff(valid)
	if err != nil {
		t.Fatalf("valid handoff refused: %v", err)
	}
	if st.ID != valid.ID {
		t.Errorf("admitted id %s, want %s", st.ID, valid.ID)
	}
	// Redelivery (the sender retried after a lost 202) returns the
	// job's current status without admitting a second copy.
	st2, err := mgr.AdmitHandoff(valid)
	if err != nil {
		t.Fatalf("redelivery refused: %v", err)
	}
	if st2.ID != valid.ID {
		t.Errorf("redelivery returned id %s, want %s", st2.ID, valid.ID)
	}
	m := mgr.Snapshot()
	if m.HandoffReceived != 1 || m.Submitted != 1 {
		t.Errorf("counters after redelivery: received %d submitted %d, want 1/1", m.HandoffReceived, m.Submitted)
	}
	waitState(t, ts, valid.ID, StateDone, 30*time.Second)

	// A draining node refuses new handoffs outright.
	drained, _ := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := drained.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := drained.AdmitHandoff(&HandoffJob{ID: "ffeeddccbbaa9988", Spec: spec, Problem: problem}); !errors.Is(err, ErrDraining) {
		t.Errorf("draining node: %v, want ErrDraining", err)
	}
}

// TestAdmitHandoffRefusesTombstone pins the rolling-drain ping-pong
// guard: a node that gave a job away in an earlier drain (and holds
// only a handed_off tombstone, recovered across a restart) must refuse
// a handoff of the same id. Accepting would make the current sender
// tombstone its live copy too, leaving the job terminal on both nodes
// and never run.
func TestAdmitHandoffRefusesTombstone(t *testing.T) {
	recvMgr, _ := newTestServer(t, Config{Workers: 1})
	sender := &stubSender{dst: recvMgr, node: "http://peer.example"}

	spool := t.TempDir()
	src, err := NewManager(Config{Spool: spool, Workers: 1, Handoff: sender})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Submit(longSpec()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := src.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	sender.mu.Lock()
	if len(sender.sent) != 1 {
		sender.mu.Unlock()
		t.Fatalf("sender saw %d handoffs, want 1", len(sender.sent))
	}
	h := sender.sent[0]
	sender.mu.Unlock()

	// Restart over the drained spool: the tombstone is recovered. The
	// receiver later drains in turn and offers the job straight back.
	restarted, err := NewManager(Config{Spool: spool, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = restarted.Shutdown(ctx)
	})
	if _, err := restarted.AdmitHandoff(h); !errors.Is(err, ErrAlreadyHandedOff) {
		t.Fatalf("AdmitHandoff onto tombstone: %v, want ErrAlreadyHandedOff", err)
	}
	// A node holding a live copy keeps answering redelivery
	// idempotently; only tombstones refuse.
	st, err := recvMgr.AdmitHandoff(h)
	if err != nil {
		t.Fatalf("redelivery to live copy refused: %v", err)
	}
	if st.State == StateHandedOff {
		t.Fatalf("live copy reported handed_off")
	}
}

// TestHandoffTombstoneWriteFailureStaysQueued: when the handed_off
// tombstone cannot be persisted, the job must not claim handed_off in
// memory while the spool still says queued (the next startup would
// recover and re-run a job the successor owns, with the in-process
// view disagreeing the whole time). The in-memory state rolls back to
// queued to match the spool, and the attempt counts as a handoff
// failure, not a send.
func TestHandoffTombstoneWriteFailureStaysQueued(t *testing.T) {
	spool := t.TempDir()
	src, err := NewManager(Config{Spool: spool, Workers: 1, Handoff: &stubSender{node: "http://peer.example"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Submit(longSpec()); err != nil { // occupies the worker
		t.Fatal(err)
	}
	jQueued, err := src.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Arm a persistent job.json write fault only now — the submissions
	// above already spooled their records; from here every tombstone
	// write fails, as a disk dying exactly at drain time would.
	restore := faults.SetActive(faults.NewPlan(1).WithIO("spool:write:job.json", faults.IOErr, 0))
	t.Cleanup(restore)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := src.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	m := src.Snapshot()
	if m.HandoffSent != 0 {
		t.Errorf("HandoffSent = %d, want 0 (no tombstone reached disk)", m.HandoffSent)
	}
	if m.HandoffFailed != 2 {
		t.Errorf("HandoffFailed = %d, want 2", m.HandoffFailed)
	}
	if st := jQueued.Status(); st.State != StateQueued {
		t.Fatalf("job %s in-memory state = %s, want queued (matching the spool)", jQueued.ID, st.State)
	}
	restore()
	meta, err := src.Store().LoadMeta(jQueued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != StateQueued {
		t.Fatalf("job %s spool state = %s, want queued", jQueued.ID, meta.State)
	}
}

package server

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"netalignmc/internal/faults"
)

// chaosCfg builds a manager config exercising every faultable
// subsystem: durable spool, checkpoints every other iteration, and a
// disk-backed result cache inside the spool.
func chaosCfg(spool string) Config {
	return Config{
		Spool: spool, Workers: 1,
		RetryBudget: 2, RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
		CheckpointEvery: 2,
		CacheBytes:      1 << 20,
		CacheDir:        filepath.Join(spool, "cache"),
	}
}

func shutdownMgr(t *testing.T, mgr *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// waitTerminal polls a job directly on the manager until it reaches a
// terminal state.
func waitTerminal(t *testing.T, mgr *Manager, id string, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, ok := mgr.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.Status()
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after %s (state %s, attempts %d)", id, timeout, st.State, st.Attempts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosFaultPointWalk injects a one-shot fault of every kind at
// every registered fault point in the process and asserts the
// self-healing invariant: no job is ever lost, duplicated, or wedged —
// each submission either fails cleanly at admission (and a resubmit
// succeeds) or reaches exactly one terminal state; jobs that reach
// done produce bytes identical to an uninjected run.
func TestChaosFaultPointWalk(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos walk is slow under -short")
	}
	spec := smallSpec()
	want := baselineResult(t, spec)

	type combo struct {
		point string
		kind  faults.IOKind
	}
	var combos []combo
	for _, p := range faults.Points() {
		for _, k := range []faults.IOKind{faults.IOErr, faults.IONoSpace} {
			combos = append(combos, combo{p, k})
		}
	}
	for _, p := range faults.WritePoints() {
		for _, k := range []faults.IOKind{faults.IOErr, faults.IONoSpace, faults.IOShortWrite} {
			combos = append(combos, combo{p, k})
		}
	}
	if len(combos) < 20 {
		t.Fatalf("only %d fault combos registered; the injector lost coverage", len(combos))
	}

	for _, c := range combos {
		t.Run(fmt.Sprintf("%s/%v", c.point, c.kind), func(t *testing.T) {
			restore := faults.SetActive(faults.NewPlan(42).WithIO(c.point, c.kind, 1))
			defer restore()
			mgr, err := NewManager(chaosCfg(t.TempDir()))
			if err != nil {
				// The fault tripped during startup (incarnation bump or
				// spool init). A clean startup error is acceptable: no
				// job existed to lose.
				return
			}
			defer shutdownMgr(t, mgr)

			j, err := mgr.Submit(spec)
			if err != nil {
				// Admission failed cleanly under the fault. The fault was
				// one-shot, so a resubmission must be admitted and run to
				// completion — nothing half-created may block it.
				j2, err2 := mgr.Submit(spec)
				if err2 != nil {
					t.Fatalf("resubmit after faulted admission: %v (first: %v)", err2, err)
				}
				st := waitTerminal(t, mgr, j2.ID, 30*time.Second)
				if st.State != StateDone {
					t.Fatalf("resubmitted job ended %s (error %q), want done", st.State, st.Error)
				}
				assertResult(t, mgr, j2.ID, want)
				return
			}

			st := waitTerminal(t, mgr, j.ID, 30*time.Second)
			switch st.State {
			case StateDone:
				assertResult(t, mgr, j.ID, want)
			case StateFailed, StateQuarantined:
				// Documented terminal failure: the retry count must be on
				// record and the error must say what happened.
				if st.Error == "" {
					t.Errorf("terminal %s with empty error", st.State)
				}
			default:
				t.Errorf("job ended %s (error %q); chaos invariant allows only done/failed/quarantined",
					st.State, st.Error)
			}

			// Wedge check: the manager must still be serving — a fresh
			// uninjected submission completes.
			j3, err := mgr.Submit(spec)
			if err != nil {
				t.Fatalf("post-fault submit: %v", err)
			}
			if st := waitTerminal(t, mgr, j3.ID, 30*time.Second); st.State != StateDone {
				t.Fatalf("post-fault job ended %s (error %q), want done", st.State, st.Error)
			}
		})
	}
}

func assertResult(t *testing.T, mgr *Manager, id string, want []byte) {
	t.Helper()
	got, err := mgr.Result(id)
	if err != nil {
		t.Fatalf("result of done job: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("result bytes differ from uninjected baseline (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosPersistentFaultQuarantineRequeue drives the full poison-job
// arc under a persistent fault: every retry burns until the budget
// quarantines the job; once the fault clears, requeue completes it
// bit-identically.
func TestChaosPersistentFaultQuarantineRequeue(t *testing.T) {
	spec := smallSpec()
	want := baselineResult(t, spec)

	restore := faults.SetActive(faults.NewPlan(42).WithIO("spool:write:result.json", faults.IOErr, 0))
	cleared := false
	defer func() {
		if !cleared {
			restore()
		}
	}()
	mgr, err := NewManager(chaosCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownMgr(t, mgr)

	j, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, mgr, j.ID, 30*time.Second)
	if st.State != StateQuarantined {
		t.Fatalf("persistent fault ended %s (error %q), want quarantined", st.State, st.Error)
	}
	if st.Attempts != 3 {
		t.Errorf("documented retry count = %d, want 3 (budget 2 + quarantining attempt)", st.Attempts)
	}

	restore()
	cleared = true
	if _, err := mgr.Requeue(j.ID); err != nil {
		t.Fatalf("requeue: %v", err)
	}
	if st := waitTerminal(t, mgr, j.ID, 30*time.Second); st.State != StateDone {
		t.Fatalf("requeued job ended %s (error %q), want done", st.State, st.Error)
	}
	assertResult(t, mgr, j.ID, want)
}

//go:build !linux

package server

import "errors"

// diskFreeBytes is unavailable off Linux; the monitor skips disk
// checks when the probe errors, so disk-pressure handling simply
// stays inert on other platforms (tests inject their own probe).
func diskFreeBytes(string) (int64, error) {
	return 0, errors.New("server: disk free probe unsupported on this platform")
}

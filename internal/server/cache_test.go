package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"netalignmc/internal/faults"
)

// cacheConfig returns a test config with the result cache enabled.
func cacheConfig(dir string) Config {
	return Config{Workers: 1, CacheBytes: 16 << 20, CacheDir: dir}
}

// waitJob polls a job through the manager until it reaches want.
func waitJob(t *testing.T, mgr *Manager, id string, want State, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, ok := mgr.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.Status()
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s, want %s", id, st.State, timeout, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func rawResult(t *testing.T, mgr *Manager, id string) []byte {
	t.Helper()
	data, err := mgr.Result(id)
	if err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	return data
}

func TestCacheHitSecondSubmit(t *testing.T) {
	mgr, _ := newTestServer(t, cacheConfig(""))
	j1, err := mgr.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr, j1.ID, StateDone, 30*time.Second)
	if m := mgr.Snapshot(); m.CacheHits != 0 || m.CacheMisses != 1 {
		t.Fatalf("after first solve: hits=%d misses=%d, want 0/1", m.CacheHits, m.CacheMisses)
	}

	// The identical second submission completes at submit time: no
	// queueing, no solver iterations, same bytes.
	j2, err := mgr.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if st.State != StateDone {
		t.Fatalf("cached submit state = %s, want done immediately", st.State)
	}
	if st.Iter != 0 {
		t.Fatalf("cached job ran %d iterations, want 0", st.Iter)
	}
	if m := mgr.Snapshot(); m.CacheHits != 1 {
		t.Fatalf("cacheHits = %d, want 1", m.CacheHits)
	}
	if r1, r2 := rawResult(t, mgr, j1.ID), rawResult(t, mgr, j2.ID); !bytes.Equal(r1, r2) {
		t.Fatalf("cached result differs from original:\n%s\nvs\n%s", r1, r2)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	mgr, _ := newTestServer(t, cacheConfig(""))
	j, err := mgr.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr, j.ID, StateDone, 30*time.Second)

	// submitAndWait returns whether the submission was a cache hit.
	submitAndWait := func(spec Spec) bool {
		t.Helper()
		before := mgr.Snapshot().CacheHits
		nj, err := mgr.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		hit := mgr.Snapshot().CacheHits == before+1
		if hit {
			if st := nj.Status(); st.State != StateDone || st.Iter != 0 {
				t.Fatalf("hit job state=%s iter=%d, want done/0", st.State, st.Iter)
			}
		} else {
			waitJob(t, mgr, nj.ID, StateDone, 30*time.Second)
		}
		return hit
	}

	// Execution-layer knobs leave the key unchanged.
	threads := smallSpec()
	threads.Threads = 4
	if !submitAndWait(threads) {
		t.Error("thread-count change missed the cache")
	}
	progress := smallSpec()
	progress.ProgressEvery = 5
	progress.CheckpointEvery = 3
	if !submitAndWait(progress) {
		t.Error("progress/checkpoint cadence change missed the cache")
	}

	// Output-affecting changes must miss.
	seed := smallSpec()
	seed.Generator.Seed = 8
	if submitAndWait(seed) {
		t.Error("generator seed change hit the cache")
	}
	alpha := smallSpec()
	alpha.Alpha, alpha.Beta = 1.5, 2
	if submitAndWait(alpha) {
		t.Error("alpha change hit the cache")
	}
	iters := smallSpec()
	iters.Iterations = 21
	if submitAndWait(iters) {
		t.Error("iteration-budget change hit the cache")
	}
	matcher := smallSpec()
	matcher.Approx = false
	matcher.Matcher = "suitor"
	if submitAndWait(matcher) {
		t.Error("matcher change hit the cache")
	}
}

func TestCoalescingSingleFlight(t *testing.T) {
	mgr, _ := newTestServer(t, cacheConfig(""))

	// Occupy the single worker so the coalescing target stays queued
	// while the concurrent submissions land.
	blocker, err := mgr.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr, blocker.ID, StateRunning, 30*time.Second)

	spec := smallSpec()
	spec.Iterations = 40
	spec.CheckpointEvery = 5
	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := mgr.Submit(spec)
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if m := mgr.Snapshot(); m.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", m.Coalesced, n-1)
	}

	if _, err := mgr.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	var results [][]byte
	withCheckpoint := 0
	for _, id := range ids {
		st := waitJob(t, mgr, id, StateDone, 60*time.Second)
		if st.Iter == 0 {
			t.Errorf("job %s reports 0 iterations; followers mirror the shared execution", id)
		}
		results = append(results, rawResult(t, mgr, id))
		if _, err := os.Stat(mgr.Store().CheckpointPath(id)); err == nil {
			withCheckpoint++
		}
	}
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Errorf("result %d differs from result 0", i)
		}
	}
	// Exactly one of the n jobs actually executed (solver checkpoints
	// land only in the primary's spool directory).
	if withCheckpoint != 1 {
		t.Errorf("%d job dirs hold checkpoints, want exactly 1 (single execution)", withCheckpoint)
	}
	// The completed counter increments just after the terminal state
	// becomes visible; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Snapshot().Completed != int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("completed = %d, want %d", mgr.Snapshot().Completed, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancelFollowerDetaches(t *testing.T) {
	mgr, _ := newTestServer(t, cacheConfig(""))
	blocker, err := mgr.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr, blocker.ID, StateRunning, 30*time.Second)

	spec := smallSpec()
	prim, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m := mgr.Snapshot(); m.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", m.Coalesced)
	}
	st, err := mgr.Cancel(follower.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled follower state = %s", st.State)
	}
	// The primary is unaffected: unblock the worker and it completes.
	if _, err := mgr.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr, prim.ID, StateDone, 60*time.Second)
}

func TestCancelQueuedPrimaryPromotesFollower(t *testing.T) {
	mgr, _ := newTestServer(t, cacheConfig(""))
	blocker, err := mgr.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr, blocker.ID, StateRunning, 30*time.Second)

	spec := smallSpec()
	prim, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Cancel(prim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled primary state = %s", st.State)
	}
	// The follower was promoted: once the worker frees up it runs and
	// completes on its own.
	if _, err := mgr.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	fst := waitJob(t, mgr, follower.ID, StateDone, 60*time.Second)
	if fst.Iter == 0 {
		t.Error("promoted follower reports 0 iterations; it should have solved")
	}
}

func TestCacheDiskTierSurvivesRestart(t *testing.T) {
	cacheDir := t.TempDir()
	spool1 := t.TempDir()
	cfg := cacheConfig(cacheDir)
	cfg.Spool = spool1
	mgr1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := mgr1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr1, j1.ID, StateDone, 30*time.Second)
	want := rawResult(t, mgr1, j1.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A fresh manager over a fresh spool but the same cache directory
	// serves the result from the disk tier without solving.
	cfg.Spool = t.TempDir()
	mgr2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr2.Shutdown(ctx)
	}()
	j2, err := mgr2.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Status(); st.State != StateDone || st.Iter != 0 {
		t.Fatalf("disk-cached submit state=%s iter=%d, want done/0", st.State, st.Iter)
	}
	m := mgr2.Snapshot()
	if m.CacheHits != 1 || m.CacheDiskHits != 1 {
		t.Fatalf("hits=%d diskHits=%d, want 1/1", m.CacheHits, m.CacheDiskHits)
	}
	if got := rawResult(t, mgr2, j2.ID); !bytes.Equal(got, want) {
		t.Fatal("disk-tier result differs from the original run")
	}
}

func TestCacheCorruptDiskEntryReSolves(t *testing.T) {
	cacheDir := t.TempDir()
	cfg := cacheConfig(cacheDir)
	cfg.Spool = t.TempDir()
	mgr1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := mgr1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr1, j1.ID, StateDone, 30*time.Second)
	want := rawResult(t, mgr1, j1.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in every disk-tier entry.
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.res"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no disk-tier entries (err %v)", err)
	}
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cfg.Spool = t.TempDir()
	mgr2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr2.Shutdown(ctx)
	}()
	j2, err := mgr2.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt entry is detected, removed, and the job solves for
	// real — producing the same bytes again.
	waitJob(t, mgr2, j2.ID, StateDone, 30*time.Second)
	m := mgr2.Snapshot()
	if m.CacheHits != 0 || m.CacheCorrupt != 1 {
		t.Fatalf("hits=%d corrupt=%d, want 0/1", m.CacheHits, m.CacheCorrupt)
	}
	if got := rawResult(t, mgr2, j2.ID); !bytes.Equal(got, want) {
		t.Fatal("re-solved result differs from the original run")
	}
}

func TestSubmitCrashAfterRenameRecovered(t *testing.T) {
	spool := t.TempDir()
	mgr1, err := NewManager(Config{Spool: spool, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Crash the submit just after job.json's rename: the directory
	// entry reached the disk (and the dir was about to be fsynced), so
	// the job is durable and must be recovered — not lost — by the
	// next startup.
	plan := faults.NewPlan(1).WithCrash("after-rename:job.json")
	mgr1.Store().SetCrashHook(plan.Crash)
	if _, err := mgr1.Submit(smallSpec()); !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("submit with armed crash: %v, want ErrCrash", err)
	}
	if plan.Strikes() != 1 {
		t.Fatalf("strikes = %d, want 1", plan.Strikes())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	mgr2, err := NewManager(Config{Spool: spool, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr2.Shutdown(ctx)
	}()
	jobs := mgr2.List()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	if m := mgr2.Snapshot(); m.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1", m.Resumed)
	}
	waitJob(t, mgr2, jobs[0].ID, StateDone, 30*time.Second)
}

func TestSubmitCrashBeforeRenameSkipped(t *testing.T) {
	spool := t.TempDir()
	mgr1, err := NewManager(Config{Spool: spool, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Crash before job.json's rename: the record never reached its
	// final name, so recovery must skip the orphan directory without
	// failing the whole spool.
	plan := faults.NewPlan(1).WithCrash("before-rename:job.json")
	mgr1.Store().SetCrashHook(plan.Crash)
	if _, err := mgr1.Submit(smallSpec()); !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("submit with armed crash: %v, want ErrCrash", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	mgr2, err := NewManager(Config{Spool: spool, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr2.Shutdown(ctx)
	}()
	if jobs := mgr2.List(); len(jobs) != 0 {
		t.Fatalf("recovered %d jobs from a half-written spool, want 0", len(jobs))
	}
	// The spool still works.
	j, err := mgr2.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, mgr2, j.ID, StateDone, 30*time.Second)
}

func TestBrokerLaggedSubscriber(t *testing.T) {
	b := newBroker()
	sub, cancel := b.subscribe()
	defer cancel()
	// Overflow the buffer without reading: the excess is dropped but
	// the subscriber is marked lagged.
	for i := 0; i < subscriberBuffer+16; i++ {
		b.publish("progress", i)
	}
	drained := 0
	for len(sub.Events()) > 0 {
		<-sub.Events()
		drained++
	}
	if drained != subscriberBuffer {
		t.Fatalf("drained %d events, want %d buffered", drained, subscriberBuffer)
	}
	if !sub.TakeLagged() {
		t.Fatal("subscriber not marked lagged after overflow")
	}
	if sub.TakeLagged() {
		t.Fatal("lagged mark not cleared by TakeLagged")
	}
	// A subscriber that keeps up is never marked.
	b.publish("progress", 1)
	<-sub.Events()
	if sub.TakeLagged() {
		t.Fatal("keeping-up subscriber marked lagged")
	}
}

func TestResultStreamedWithContentLength(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := submitOK(t, ts, smallSpec())
	waitState(t, ts, id, StateDone, 30*time.Second)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.ContentLength <= 0 {
		t.Fatalf("Content-Length = %d, want the result size", resp.ContentLength)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != resp.ContentLength {
		t.Fatalf("body %d bytes, Content-Length %d", buf.Len(), resp.ContentLength)
	}
}

package server

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// RetryDelay computes the backoff before a job's attempt'th retry:
// exponential in the attempt number (base, 2·base, 4·base, …) capped
// at max, then scaled by a deterministic jitter factor in [0.75, 1.25)
// derived from the job id and attempt. The jitter decorrelates the
// retry times of jobs that failed together (a burst of I/O errors
// from one sick disk must not re-land as a burst), while staying a
// pure function of (id, attempt, base, max) so failing schedules
// replay exactly in tests and across restarts.
func RetryDelay(id string, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	if max < base {
		max = base
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max || d < 0 { // d < 0: overflow
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	// Deterministic jitter: FNV-1a over (id, attempt) → [0.75, 1.25).
	h := fnv.New64a()
	h.Write([]byte(id))
	var a [4]byte
	binary.LittleEndian.PutUint32(a[:], uint32(attempt))
	h.Write(a[:])
	frac := float64(h.Sum64()%1024) / 1024 // [0, 1)
	out := time.Duration(float64(d) * (0.75 + 0.5*frac))
	if out > max {
		out = max
	}
	if out <= 0 {
		out = base
	}
	return out
}

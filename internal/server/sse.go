package server

import (
	"encoding/json"
	"sync"
)

// Event is one server-sent event: a type tag and a pre-marshaled JSON
// payload.
type Event struct {
	Type string
	Data []byte
}

// broker fans one job's event stream out to any number of SSE
// subscribers. Publishing never blocks the solver: a subscriber whose
// buffer is full simply misses events (progress is a stream of
// snapshots, so dropped events cost nothing but granularity). Closing
// the broker ends every subscription; subscribing to a closed broker
// yields an already-closed channel so handlers fall through cleanly.
type broker struct {
	mu     sync.Mutex
	subs   map[chan Event]struct{}
	closed bool
}

// subscriberBuffer bounds each subscriber's in-flight events; at the
// default one-event-per-iteration cadence this absorbs multi-second
// consumer stalls before granularity degrades.
const subscriberBuffer = 256

func newBroker() *broker {
	return &broker{subs: make(map[chan Event]struct{})}
}

// publish marshals v and fans the event out without blocking.
func (b *broker) publish(typ string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	ev := Event{Type: typ, Data: data}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop
		}
	}
}

// subscribe registers a new subscriber; the returned cancel must be
// called when the consumer is done.
func (b *broker) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, subscriberBuffer)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// close ends the stream for every subscriber.
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
}

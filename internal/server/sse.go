package server

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Event is one server-sent event: a type tag and a pre-marshaled JSON
// payload.
type Event struct {
	Type string
	Data []byte
}

// broker fans one job's event stream out to any number of SSE
// subscribers. Publishing never blocks the solver: a subscriber whose
// buffer is full misses the event but is marked lagged, and the SSE
// handler turns that mark into a synthetic "lagged" event carrying a
// fresh job snapshot on the subscriber's next read. The stream
// contract is therefore at-least-once-snapshot: individual progress
// events may be dropped under consumer stall, but every subscriber is
// told when a gap happened and receives the current state, so no
// consumer can silently act on a stale picture. Closing the broker
// ends every subscription; subscribing to a closed broker yields an
// already-closed channel so handlers fall through cleanly.
type broker struct {
	mu     sync.Mutex
	subs   map[*subscription]struct{}
	closed bool
}

// subscription is one consumer's view of a broker's stream.
type subscription struct {
	ch     chan Event
	lagged atomic.Bool
}

// Events returns the subscriber's event channel; it is closed when the
// broker closes or the subscription is cancelled.
func (s *subscription) Events() <-chan Event { return s.ch }

// TakeLagged reports whether events were dropped since the last call,
// clearing the mark. The consumer reacts by emitting a synthetic
// "lagged" event with a current snapshot before forwarding the next
// buffered event.
func (s *subscription) TakeLagged() bool { return s.lagged.Swap(false) }

// subscriberBuffer bounds each subscriber's in-flight events; at the
// default one-event-per-iteration cadence this absorbs multi-second
// consumer stalls before the lagged path engages.
const subscriberBuffer = 256

func newBroker() *broker {
	return &broker{subs: make(map[*subscription]struct{})}
}

// publish marshals v and fans the event out without blocking. A
// subscriber with a full buffer misses the event and is marked lagged.
func (b *broker) publish(typ string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	ev := Event{Type: typ, Data: data}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for sub := range b.subs {
		select {
		case sub.ch <- ev:
		default: // slow consumer: drop, but leave a mark
			sub.lagged.Store(true)
		}
	}
}

// subscribe registers a new subscriber; the returned cancel must be
// called when the consumer is done.
func (b *broker) subscribe() (*subscription, func()) {
	sub := &subscription{ch: make(chan Event, subscriberBuffer)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(sub.ch)
		return sub, func() {}
	}
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
	return sub, func() {
		b.mu.Lock()
		if _, ok := b.subs[sub]; ok {
			delete(b.subs, sub)
			close(sub.ch)
		}
		b.mu.Unlock()
	}
}

// close ends the stream for every subscriber.
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		delete(b.subs, sub)
		close(sub.ch)
	}
}

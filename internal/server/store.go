package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"netalignmc/internal/core"
	"netalignmc/internal/faults"
	"netalignmc/internal/problemio"
)

// Fault points of the spool's atomic writes, one pair per durable
// file: the payload write ("spool:write:<base>") supports injected
// EIO/ENOSPC/short-writes, the rename ("spool:rename:<base>")
// injected errors. The crash hook's "before-rename:<base>" /
// "after-rename:<base>" points (simulated process death) are separate
// and test-installed per Store. Registered here so chaos tests can
// enumerate every spool failure site.
func init() {
	for _, base := range []string{"job.json", "problem.txt", "result.json", "checkpoint.ckpt"} {
		faults.RegisterWritePoint("spool:write:" + base)
		faults.RegisterPoint("spool:rename:" + base)
	}
}

// Store is the durable spool directory. Every job owns one
// subdirectory named by its id:
//
//	<spool>/<id>/job.json        — Meta (spec + lifecycle state)
//	<spool>/<id>/problem.txt     — the problem, canonicalized through
//	                               problemio.Write at submit time so
//	                               every (re)run solves byte-identical
//	                               input
//	<spool>/<id>/checkpoint.ckpt — latest solver checkpoint (atomic)
//	<spool>/<id>/result.json     — final core.ResultJSON
//
// All writes are atomic (temp file + fsync + rename + parent-dir
// fsync), so a crash never leaves a truncated record behind and a
// completed rename is durable; recovery trusts whatever renamed last.
type Store struct {
	dir string
	// crash, when non-nil, simulates a process crash at named points
	// inside the atomic write paths (see internal/faults.Plan.Crash);
	// tests only. The hook returning an error aborts the remaining
	// steps exactly as a real crash would.
	crash func(point string) error
}

// SetCrashHook installs a simulated-crash hook (tests only; nil
// removes it).
func (s *Store) SetCrashHook(h func(point string) error) { s.crash = h }

// crashAt consults the crash hook.
func (s *Store) crashAt(point string) error {
	if s.crash == nil {
		return nil
	}
	return s.crash(point)
}

var jobIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// NewStore opens (creating if needed) a spool directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: empty spool directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: spool: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the spool root.
func (s *Store) Dir() string { return s.dir }

// JobDir returns a job's directory path.
func (s *Store) JobDir(id string) string { return filepath.Join(s.dir, id) }

// CheckpointPath returns a job's checkpoint file path.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.dir, id, "checkpoint.ckpt")
}

// CreateJob makes the job's directory.
func (s *Store) CreateJob(id string) error {
	if err := os.MkdirAll(s.JobDir(id), 0o755); err != nil {
		return fmt.Errorf("server: create job %s: %w", id, err)
	}
	return nil
}

// atomicWrite writes data via a temp file, fsync, rename, and a
// parent-directory fsync. The final fsync is what makes the rename
// itself durable: without it a crash can roll the directory entry
// back to the previous version (resurrecting a superseded job state)
// or drop it entirely (orphaning the job), even though the file's own
// contents were synced. The crash points bracket the rename so the
// durability tests can kill the write on either side of it.
func (s *Store) atomicWrite(path string, data []byte) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := faults.WriteOp("spool:write:"+base, tmp, data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := s.crashAt("before-rename:" + base); err != nil {
		return err
	}
	if err := faults.Inject("spool:rename:" + base); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if err := s.crashAt("after-rename:" + base); err != nil {
		return err
	}
	return problemio.SyncDir(dir)
}

// SaveMeta persists a job record.
func (s *Store) SaveMeta(m *Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("server: meta %s: %w", m.ID, err)
	}
	if err := s.atomicWrite(filepath.Join(s.JobDir(m.ID), "job.json"), data); err != nil {
		return fmt.Errorf("server: meta %s: %w", m.ID, err)
	}
	return nil
}

// LoadMeta reads a job record back.
func (s *Store) LoadMeta(id string) (*Meta, error) {
	data, err := os.ReadFile(filepath.Join(s.JobDir(id), "job.json"))
	if err != nil {
		return nil, fmt.Errorf("server: meta %s: %w", id, err)
	}
	m := &Meta{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("server: meta %s: %w", id, err)
	}
	if m.ID != id {
		return nil, fmt.Errorf("server: meta %s names job %q", id, m.ID)
	}
	if !validState(m.State) {
		return nil, fmt.Errorf("server: meta %s has unknown state %q", id, m.State)
	}
	return m, nil
}

// SaveProblem canonicalizes the problem to the job's problem.txt.
func (s *Store) SaveProblem(id string, p *core.Problem) error {
	var buf bytes.Buffer
	if err := problemio.Write(&buf, p); err != nil {
		return fmt.Errorf("server: problem %s: %w", id, err)
	}
	return s.SaveProblemBytes(id, buf.Bytes())
}

// SaveProblemBytes persists already-canonicalized problem bytes. The
// manager serializes each problem once — hashing the bytes for the
// result cache and spooling the same bytes here — so the cache key and
// the durable spool can never disagree.
func (s *Store) SaveProblemBytes(id string, data []byte) error {
	if err := s.atomicWrite(filepath.Join(s.JobDir(id), "problem.txt"), data); err != nil {
		return fmt.Errorf("server: problem %s: %w", id, err)
	}
	return nil
}

// LoadProblemBytes returns the raw canonical problem.txt bytes (the
// exact bytes the result cache keys hash).
func (s *Store) LoadProblemBytes(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.JobDir(id), "problem.txt"))
}

// LoadProblem reads the job's canonical problem. Every run — first or
// resumed — solves this file, so the solve input is byte-identical
// across restarts.
func (s *Store) LoadProblem(id string, threads int) (*core.Problem, error) {
	f, err := os.Open(filepath.Join(s.JobDir(id), "problem.txt"))
	if err != nil {
		return nil, fmt.Errorf("server: problem %s: %w", id, err)
	}
	defer f.Close()
	p, err := problemio.Read(f, threads)
	if err != nil {
		return nil, fmt.Errorf("server: problem %s: %w", id, err)
	}
	return p, nil
}

// SaveCheckpointBytes persists raw checkpoint bytes atomically — the
// receiving half of a drain handoff, which transports the sender's
// checkpoint.ckpt verbatim so the resumed run is bit-identical to one
// that never moved. (The solver's own checkpoints go through
// problemio.WriteCheckpointFile instead; both end in an atomic
// rename, so they never tear each other.)
func (s *Store) SaveCheckpointBytes(id string, data []byte) error {
	if err := s.atomicWrite(s.CheckpointPath(id), data); err != nil {
		return fmt.Errorf("server: checkpoint %s: %w", id, err)
	}
	return nil
}

// LoadCheckpointBytes returns the job's checkpoint.ckpt bytes verbatim
// (the sending half of a drain handoff); (nil, nil) when no checkpoint
// has been written yet.
func (s *Store) LoadCheckpointBytes(id string) ([]byte, error) {
	data, err := os.ReadFile(s.CheckpointPath(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: checkpoint %s: %w", id, err)
	}
	return data, nil
}

// LoadCheckpoint reads the job's latest checkpoint; (nil, nil) when no
// checkpoint has been written yet.
func (s *Store) LoadCheckpoint(id string) (*core.Checkpoint, error) {
	path := s.CheckpointPath(id)
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	return problemio.ReadCheckpointFile(path)
}

// SaveResult persists the job's final result.
func (s *Store) SaveResult(id string, r *core.ResultJSON) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("server: result %s: %w", id, err)
	}
	return s.SaveResultBytes(id, data)
}

// SaveResultBytes persists already-serialized result.json bytes (the
// path cache hits and coalesced followers take: the primary's bytes
// are copied verbatim, so every coalesced job's result is
// byte-identical).
func (s *Store) SaveResultBytes(id string, data []byte) error {
	if err := s.atomicWrite(filepath.Join(s.JobDir(id), "result.json"), data); err != nil {
		return fmt.Errorf("server: result %s: %w", id, err)
	}
	return nil
}

// LoadResult returns the raw result.json bytes, or fs.ErrNotExist.
func (s *Store) LoadResult(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.JobDir(id), "result.json"))
}

// OpenResult opens result.json for streaming and reports its size, so
// the HTTP layer can io.Copy it with a Content-Length instead of
// buffering the whole document. Returns fs.ErrNotExist when the job
// has no result yet.
func (s *Store) OpenResult(id string) (io.ReadCloser, int64, error) {
	f, err := os.Open(filepath.Join(s.JobDir(id), "result.json"))
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, info.Size(), nil
}

// incarnationFile is the spool-level record of how many times a
// daemon has started over this spool. Written atomically like every
// other spool record.
const incarnationFile = "incarnation.json"

type incarnationRecord struct {
	Incarnation int64 `json:"incarnation"`
}

// LoadIncarnation reads the spool's incarnation counter (0 for a
// fresh spool or an unreadable record — recovery treats an unknown
// history as no history).
func (s *Store) LoadIncarnation() int64 {
	data, err := os.ReadFile(filepath.Join(s.dir, incarnationFile))
	if err != nil {
		return 0
	}
	var rec incarnationRecord
	if err := json.Unmarshal(data, &rec); err != nil || rec.Incarnation < 0 {
		return 0
	}
	return rec.Incarnation
}

// BumpIncarnation increments and persists the spool's incarnation
// counter, returning the new value. Called once per daemon startup,
// before recovery scans the spool, so every job that enters running
// can record which incarnation ran it — the crash-loop detector
// compares that record against the previous incarnation to decide
// whether a mid-running job has been dying with the daemon
// consecutively.
func (s *Store) BumpIncarnation() (int64, error) {
	inc := s.LoadIncarnation() + 1
	data, err := json.MarshalIndent(incarnationRecord{Incarnation: inc}, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("server: incarnation: %w", err)
	}
	if err := s.atomicWrite(filepath.Join(s.dir, incarnationFile), data); err != nil {
		return 0, fmt.Errorf("server: incarnation: %w", err)
	}
	return inc, nil
}

// ListJobs returns the ids of every job directory, sorted, skipping
// entries that do not look like job ids (temp files, strays).
func (s *Store) ListJobs() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("server: spool scan: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && jobIDPattern.MatchString(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Package server implements netalignd, the alignment job service: an
// HTTP/JSON API over a bounded worker pool that runs BP/MR solves as
// managed jobs with durable state, periodic checkpoints, cooperative
// cancellation, live SSE progress, and crash recovery that resumes
// interrupted jobs bit-identically from their last checkpoint.
//
// The package is layered as:
//
//	Store   — the spool directory: one subdirectory per job holding
//	          job.json (spec + state), problem.txt (the canonicalized
//	          problem), checkpoint.ckpt and result.json.
//	Manager — the job lifecycle: a FIFO queue with a depth limit, a
//	          fixed pool of worker goroutines, the state machine
//	          queued → running → {done, failed, cancelled, numerics},
//	          drain-on-shutdown and resume-on-startup.
//	Server  — the HTTP surface: /v1/jobs CRUD, SSE events, /healthz,
//	          /metrics, expvar and pprof.
package server

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"netalignmc/internal/cache"
	"netalignmc/internal/cli"
	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/problemio"
)

// State is a job's lifecycle state. Jobs move strictly
// queued → running → one of the terminal states; a drained or crashed
// running job moves back to queued and is resumed from its checkpoint
// on the next startup.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateNumerics: the numeric guard stopped the run; the result
	// holds the best valid matching found before the failure.
	StateNumerics State = "numerics"
	// StateQuarantined: a poison job — it exhausted its retry budget
	// or was caught mid-running across too many consecutive daemon
	// restarts (a crash loop). Quarantined jobs never again consume a
	// worker slot, but their spool (spec, problem, last checkpoint)
	// is kept for inspection, and POST /v1/jobs/{id}/requeue moves
	// them back to queued with a fresh budget.
	StateQuarantined State = "quarantined"
	// StateHandedOff: a proactive drain exported this job — spec,
	// canonical problem bytes, retry budget and latest checkpoint — to
	// a ring successor, which admitted it under the same job id and
	// resumes it bit-identically. Terminal on this node: recovery must
	// never re-run a handed-off job (the successor owns it now), so the
	// spool record is kept only as a tombstone pointing at the
	// receiving node.
	StateHandedOff State = "handed_off"
)

// Terminal reports whether the state is final: no worker will touch
// the job again without operator action (for quarantined, an explicit
// requeue).
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateNumerics, StateQuarantined, StateHandedOff:
		return true
	}
	return false
}

func validState(s State) bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateNumerics, StateQuarantined, StateHandedOff:
		return true
	}
	return false
}

// GeneratorSpec asks the server to build the problem with internal/gen
// instead of uploading one; it mirrors the gensynth CLI flags. With a
// fixed Seed the construction is deterministic, so a recovered job
// sees the same problem (the manager additionally canonicalizes every
// problem to disk at submit time, making this true for uploads too).
type GeneratorSpec struct {
	// Type is the problem family: synthetic (default), dmela-scere,
	// homo-musm, lcsh-wiki or lcsh-rameau.
	Type string `json:"type,omitempty"`
	// N and DBar parameterize the synthetic family (vertices and
	// expected candidate degree).
	N    int     `json:"n,omitempty"`
	DBar float64 `json:"dbar,omitempty"`
	// Perturb is the synthetic edge-perturbation probability.
	Perturb float64 `json:"perturb,omitempty"`
	// Scale shrinks the dataset stand-ins (0 = full size).
	Scale float64 `json:"scale,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
}

// Spec is the body of POST /v1/jobs: solver parameters plus exactly
// one problem source — an inline problem in the netalign format, an
// uploaded A/B/L triple (SMAT or MTX), or a generator spec.
type Spec struct {
	// Method is "bp" (default) or "mr".
	Method string `json:"method,omitempty"`
	// Iterations is the iteration budget (default 100).
	Iterations int `json:"iterations,omitempty"`
	// Batch is BP's rounding batch size r (default 1).
	Batch int `json:"batch,omitempty"`
	// Gamma is BP's damping base / MR's initial step (0 = defaults).
	Gamma float64 `json:"gamma,omitempty"`
	// MStep is MR's stall window before halving the step.
	MStep int `json:"mstep,omitempty"`
	// Approx rounds with the parallel half-approximate matcher. Kept
	// for compatibility; Matcher supersedes it when non-empty.
	Approx bool `json:"approx,omitempty"`
	// Matcher selects the rounding matcher as a spec string (see
	// matching.ParseMatcherSpec): "exact", "approx", "suitor",
	// "locally-dominant(sorted=true)", ... Empty falls back to Approx.
	Matcher string `json:"matcher,omitempty"`
	// Fused enables BP's fused othermax+damping kernels (bit-identical
	// iterates, fewer passes over S).
	Fused bool `json:"fused,omitempty"`
	// Pipeline enables pipelined batched rounding: the matching step
	// runs on dedicated workers while the next sweep proceeds. Results
	// are bit-identical to the barrier path, so like Fused it never
	// enters the cache key — runs coalesce across the setting.
	Pipeline bool `json:"pipeline,omitempty"`
	// Reorder selects the locality reordering of S's row storage:
	// "none" (default), "auto", "degree" or "rcm". Bit-identical and
	// cache-key-excluded like Pipeline.
	Reorder string `json:"reorder,omitempty"`
	// Threads bounds one solve's parallelism (0 = server default).
	Threads int `json:"threads,omitempty"`
	// TimeoutSec bounds the solve's wall time (0 = unbounded); expiry
	// completes the job as done with stop reason "deadline".
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
	// ProgressEvery throttles progress events to every Nth iteration
	// (0 = every iteration).
	ProgressEvery int `json:"progressEvery,omitempty"`
	// CheckpointEvery overrides the server's checkpoint interval in
	// iterations (0 = server default).
	CheckpointEvery int `json:"checkpointEvery,omitempty"`

	// Tenant names the submitting tenant for fair-share scheduling,
	// quotas and metrics (default "default"). Allowed characters:
	// letters, digits, '.', '_', '-'; at most 64 bytes. Tenant never
	// enters the result-cache key — identical problems coalesce and
	// share cached results across tenants.
	Tenant string `json:"tenant,omitempty"`
	// Class is the scheduling class: "batch" (default) or
	// "interactive". Interactive jobs are dispatched before batch jobs
	// and may checkpoint-preempt a running batch job when all worker
	// slots are busy. Like Tenant, it is excluded from cache keys.
	Class string `json:"class,omitempty"`
	// DeadlineMS, when positive, bounds the job's queue wait (the
	// deadline_ms field of the v1 API): a job still waiting for a
	// worker DeadlineMS milliseconds after admission is finalized
	// failed instead of dispatched. It does not bound the solve itself
	// (that is TimeoutSec) and never affects the cache key; a cache or
	// coalescing hit admits instantly and trivially meets any deadline.
	DeadlineMS int64 `json:"deadlineMs,omitempty"`

	// Alpha and Beta are the objective weights for uploaded problems
	// (both zero selects the paper's α=1, β=2; inline netalign-format
	// problems carry their own).
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`

	// Problem is an inline problem in the netalign combined format
	// (the output of gensynth / netalignmc.WriteProblem).
	Problem string `json:"problem,omitempty"`
	// A, B, L upload the two graphs and the candidate graph; Format
	// selects their encoding: "smat" (default) or "mtx".
	A      string `json:"a,omitempty"`
	B      string `json:"b,omitempty"`
	L      string `json:"l,omitempty"`
	Format string `json:"format,omitempty"`
	// Generator builds the problem server-side.
	Generator *GeneratorSpec `json:"generator,omitempty"`
}

// Validate checks the spec's solver parameters and that exactly one
// problem source is present.
func (s *Spec) Validate() error {
	switch s.Method {
	case "", "bp", "mr":
	default:
		return fmt.Errorf("unknown method %q (want bp or mr)", s.Method)
	}
	if s.Iterations < 0 || s.Batch < 0 || s.MStep < 0 || s.Threads < 0 ||
		s.ProgressEvery < 0 || s.CheckpointEvery < 0 {
		return fmt.Errorf("negative solver parameter")
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("negative timeoutSec")
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("negative deadlineMs")
	}
	switch s.Class {
	case "", ClassInteractive, ClassBatch:
	default:
		return fmt.Errorf("unknown class %q (want %s or %s)", s.Class, ClassInteractive, ClassBatch)
	}
	if err := validTenant(s.Tenant); err != nil {
		return err
	}
	var reorder core.ReorderMode
	if err := reorder.UnmarshalText([]byte(s.Reorder)); err != nil {
		return fmt.Errorf("unknown reorder mode %q (want none, auto, degree or rcm)", s.Reorder)
	}
	if s.Alpha < 0 || s.Beta < 0 {
		return fmt.Errorf("negative objective weights alpha=%g beta=%g", s.Alpha, s.Beta)
	}
	switch s.Format {
	case "", "smat", "mtx":
	default:
		return fmt.Errorf("unknown format %q (want smat or mtx)", s.Format)
	}
	if _, err := matching.ParseMatcherSpec(s.matcherText()); err != nil {
		return err
	}
	sources := 0
	if s.Problem != "" {
		sources++
	}
	if s.A != "" || s.B != "" || s.L != "" {
		if s.A == "" || s.B == "" || s.L == "" {
			return fmt.Errorf("uploaded problems need all of a, b and l")
		}
		sources++
	}
	if s.Generator != nil {
		sources++
	}
	if sources != 1 {
		return fmt.Errorf("exactly one problem source required (problem, a/b/l, or generator); got %d", sources)
	}
	return nil
}

// methodName returns the effective solver method.
func (s *Spec) methodName() string {
	if s.Method == "" {
		return "bp"
	}
	return s.Method
}

// DefaultTenant is the tenant every untagged submission is accounted
// to; old specs without the field keep working unchanged.
const DefaultTenant = "default"

// tenantName returns the effective tenant without mutating the spec —
// the persisted spec keeps the client's original bytes, so pre-tenant
// job records round-trip byte-for-byte.
func (s *Spec) tenantName() string {
	if s.Tenant == "" {
		return DefaultTenant
	}
	return s.Tenant
}

// className returns the effective scheduling class (default batch).
func (s *Spec) className() string {
	if s.Class == "" {
		return ClassBatch
	}
	return s.Class
}

// validTenant enforces the tenant-name grammar: metrics-label and
// path safe, bounded length. Empty is allowed (means DefaultTenant).
func validTenant(t string) error {
	if len(t) > 64 {
		return fmt.Errorf("tenant name longer than 64 bytes")
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("tenant name %q: character %q not in [A-Za-z0-9._-]", t, c)
		}
	}
	return nil
}

// matcherText returns the effective matcher spec string, folding the
// legacy Approx flag in.
func (s *Spec) matcherText() string {
	if s.Matcher != "" {
		return s.Matcher
	}
	if s.Approx {
		return "approx"
	}
	return "exact"
}

// cacheFingerprint renders the spec's output-affecting solver options
// as the canonical fingerprint the result cache keys on (see
// core.Options.CacheFingerprint). Thread counts, progress and
// checkpoint cadence are absent on purpose: the solve is bit-identical
// across them. The second return is false when the spec cannot be
// cached (unparsable matcher — unreachable for validated specs).
func (s *Spec) cacheFingerprint() (string, bool) {
	mspec, err := matching.ParseMatcherSpec(s.matcherText())
	if err != nil {
		return "", false
	}
	opts := core.Options{
		Method: core.MethodBP,
		BP: core.BPOptions{
			Iterations: s.Iterations, Gamma: s.Gamma, Batch: s.Batch,
			Matcher: mspec,
		},
	}
	if s.methodName() == "mr" {
		opts = core.Options{
			Method: core.MethodMR,
			MR: core.MROptions{
				Iterations: s.Iterations, Gamma: s.Gamma, MStep: s.MStep,
				Matcher: mspec,
			},
		}
	}
	return opts.CacheFingerprint()
}

// CacheKey materializes the spec's problem and derives its content
// address: SHA-256 over the canonical problem bytes (exactly what the
// spool records as problem.txt) plus the output-affecting option
// fingerprint. The result cache keys on it, and the cluster router
// shards on it, so identical submissions — routed anywhere — always
// resolve to the same address. The canonical bytes are returned too.
// threads only bounds problem-construction parallelism; it cannot
// affect the bytes or the key.
func (s *Spec) CacheKey(threads int) (cache.Key, []byte, error) {
	if err := s.Validate(); err != nil {
		return cache.Key{}, nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	p, err := s.BuildProblem(threads)
	if err != nil {
		return cache.Key{}, nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	var buf bytes.Buffer
	if err := problemio.Write(&buf, p); err != nil {
		return cache.Key{}, nil, fmt.Errorf("server: canonicalize problem: %w", err)
	}
	fp, ok := s.cacheFingerprint()
	if !ok {
		return cache.Key{}, nil, fmt.Errorf("%w: unparsable matcher spec", ErrBadSpec)
	}
	return cache.KeyFor(buf.Bytes(), fp), buf.Bytes(), nil
}

// BuildProblem materializes the spec's problem source. threads bounds
// the parallelism of S construction.
func (s *Spec) BuildProblem(threads int) (*core.Problem, error) {
	alpha, beta := s.Alpha, s.Beta
	if alpha == 0 && beta == 0 {
		alpha, beta = 1, 2
	}
	switch {
	case s.Problem != "":
		return problemio.Read(strings.NewReader(s.Problem), threads)
	case s.Generator != nil:
		g := s.Generator
		return cli.Generate(cli.GenerateOptions{
			Type: g.Type, N: g.N, DBar: g.DBar, Perturb: g.Perturb,
			Alpha: alpha, Beta: beta, Scale: g.Scale, Seed: g.Seed,
			Threads: threads,
		}, nil)
	case s.Format == "mtx":
		a, err := problemio.ReadGraphMTX(strings.NewReader(s.A))
		if err != nil {
			return nil, fmt.Errorf("graph a: %w", err)
		}
		b, err := problemio.ReadGraphMTX(strings.NewReader(s.B))
		if err != nil {
			return nil, fmt.Errorf("graph b: %w", err)
		}
		l, err := problemio.ReadLMTX(strings.NewReader(s.L))
		if err != nil {
			return nil, fmt.Errorf("graph l: %w", err)
		}
		return core.NewProblem(a, b, l, alpha, beta, threads)
	default: // smat
		return problemio.ReadSMATProblem(
			strings.NewReader(s.A), strings.NewReader(s.B), strings.NewReader(s.L),
			alpha, beta, threads)
	}
}

// Meta is the durable job record persisted as job.json in the spool;
// together with problem.txt and checkpoint.ckpt it is everything a
// restarted server needs to resume the job.
type Meta struct {
	ID       string    `json:"id"`
	Spec     Spec      `json:"spec"`
	State    State     `json:"state"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// Resumes counts how many times the job was requeued after a drain
	// or crash.
	Resumes int `json:"resumes,omitempty"`
	// Attempts counts failed runs (I/O errors, panics, stalls,
	// numeric stops). Persisted so the retry budget survives daemon
	// restarts: a job cannot dodge quarantine by crashing the daemon.
	Attempts int `json:"attempts,omitempty"`
	// CrashRuns counts consecutive daemon restarts that found this
	// job mid-running — the crash-loop signal. Reaching the
	// configured limit quarantines the job instead of requeueing it.
	CrashRuns int `json:"crashRuns,omitempty"`
	// Incarnation is the daemon incarnation (see Store.BumpIncarnation)
	// during which the job last entered running; recovery uses it to
	// tell consecutive crash loops from unrelated restarts.
	Incarnation int64 `json:"incarnation,omitempty"`
	// Preemptions counts how many times the job was checkpoint-
	// preempted to yield its worker slot to interactive traffic.
	Preemptions int `json:"preemptions,omitempty"`
	// HandedOffTo records, for a handed_off tombstone, the base URL of
	// the ring successor that accepted the job during a proactive
	// drain; status queries for the id can be redirected there.
	HandedOffTo string `json:"handedOffTo,omitempty"`
}

// newJobID returns a random 16-hex-digit job id.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

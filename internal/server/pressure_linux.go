//go:build linux

package server

import "syscall"

// diskFreeBytes returns the bytes available to unprivileged writes on
// the filesystem holding path.
func diskFreeBytes(path string) (int64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return 0, err
	}
	return int64(st.Bavail) * st.Bsize, nil
}

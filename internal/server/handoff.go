package server

import (
	"context"
	"fmt"
	"sort"
	"time"

	"netalignmc/internal/cache"
)

// HandoffJob is the wire form of one drained job: everything a ring
// successor needs to admit it under the same id and resume it
// bit-identically — the spec (tenant, class, deadline, solver
// options), the canonical problem bytes exactly as the sender's spool
// recorded them, the retry/resume/preemption budgets, and the latest
// checkpoint verbatim. Problem and Checkpoint ride as base64 in JSON
// ([]byte encoding); RouteKey is sender-side routing state and never
// crosses the wire.
type HandoffJob struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// Created is the job's original admission time; the receiver keeps
	// it so listing order and queue-deadline accounting survive the
	// move.
	Created time.Time `json:"created"`
	// Attempts / Resumes / Preemptions carry the job's lifecycle
	// budgets: a job cannot reset its retry budget by being drained.
	Attempts    int `json:"attempts,omitempty"`
	Resumes     int `json:"resumes,omitempty"`
	Preemptions int `json:"preemptions,omitempty"`
	// Problem is the canonical problem.txt payload; Checkpoint is the
	// latest checkpoint.ckpt payload (absent when the job never ran).
	Problem    []byte `json:"problem"`
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// RouteKey is the ring key the sender places the job with: the
	// job's cache key when it has one (so the handoff lands where the
	// router already steers identical submissions), else the job id.
	RouteKey []byte `json:"-"`
}

// HandoffSender delivers one drained job to a cluster peer, returning
// the base URL of the node that accepted it. Implementations try the
// job's ring successors in order and treat any per-node refusal
// (draining, quota, pressure) as "try the next one"; an error means no
// peer accepted and the job stays queued in the local spool. Called
// during Shutdown, outside the manager lock — it is expected to do
// network I/O bounded by ctx.
type HandoffSender interface {
	Handoff(ctx context.Context, h *HandoffJob) (node string, err error)
}

// handoffQueued exports every still-queued job to its ring successor.
// Called from Shutdown after the workers have stopped: interrupted
// runs have parked queued and their last checkpoint rename has
// completed, so the spool holds exactly the state a local resume
// would see. Jobs are exported oldest-first (bounded drain windows
// hand off the work that has waited longest); each failure leaves
// that job queued for next-startup recovery and moves on.
func (m *Manager) handoffQueued(ctx context.Context) {
	m.mu.Lock()
	var queued []*Job
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateQueued {
			queued = append(queued, j)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	sort.Slice(queued, func(a, b int) bool {
		return queued[a].created.Before(queued[b].created)
	})
	for _, j := range queued {
		if ctx.Err() != nil {
			return
		}
		m.handoffOne(ctx, j)
	}
}

// handoffOne offers one queued job to the configured sender and, on
// acceptance, tombstones the local copy handed_off. The terminal
// state is persisted before the method returns, so a crash right
// after the send cannot make recovery re-run a job a successor now
// owns. A send failure (or a job that left queued concurrently — a
// late user cancel) leaves the spool untouched.
func (m *Manager) handoffOne(ctx context.Context, j *Job) {
	pb, err := m.store.LoadProblemBytes(j.ID)
	if err != nil {
		m.counters.HandoffFailed.Add(1)
		return
	}
	ck, err := m.store.LoadCheckpointBytes(j.ID)
	if err != nil {
		// Unreadable checkpoint: hand the job off without it — the
		// successor reruns from scratch, which is still bit-identical
		// to an undisturbed run (same canonical problem bytes).
		ck = nil
	}
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	h := &HandoffJob{
		ID: j.ID, Spec: j.Spec, Created: j.created,
		Attempts: j.attempts, Resumes: j.resumes, Preemptions: j.preemptions,
		Problem: pb, Checkpoint: ck,
	}
	if j.hasKey {
		h.RouteKey = append([]byte(nil), j.cacheKey[:]...)
	} else {
		h.RouteKey = []byte(j.ID)
	}
	j.mu.Unlock()
	node, err := m.cfg.Handoff.Handoff(ctx, h)
	if err != nil {
		// No peer accepted; the job stays queued in the spool and the
		// next startup recovers it — proactive drain degrades to the
		// plain drain behavior, never loses work.
		m.counters.HandoffFailed.Add(1)
		return
	}
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while the send was in flight: honor the local
		// terminal state; the successor's copy runs to completion there.
		j.mu.Unlock()
		return
	}
	j.state = StateHandedOff
	j.handedTo = node
	j.finished = time.Now()
	meta := j.metaLocked()
	j.mu.Unlock()
	if err := m.store.SaveMeta(meta); err != nil {
		// The tombstone never reached disk: the spool still says
		// queued, so the next startup will recover and re-run the job
		// this node just gave away. Roll the in-memory state back to
		// match the spool rather than publish a terminal state that is
		// not durable — the duplicate run this risks is bit-identical
		// (wasted compute, not divergent results), whereas a
		// memory/disk split would also break every in-process reader.
		j.mu.Lock()
		if j.state == StateHandedOff {
			j.state = StateQueued
			j.handedTo = ""
			j.finished = time.Time{}
		}
		j.mu.Unlock()
		m.counters.HandoffFailed.Add(1)
		return
	}
	m.counters.HandoffSent.Add(1)
	j.publish("state", j.Status())
	j.closeEvents()
}

// AdmitHandoff is the receiving half of a proactive drain: admit a
// peer's exported job under its original id, through the same
// admission gates a fresh submission faces — draining, memory and
// disk pressure, per-tenant quota, queue depth. The problem bytes are
// persisted verbatim and the checkpoint (when present) installed
// before the job becomes visible, so the resumed run is bit-identical
// to one that never moved. Redelivery is idempotent: an id this node
// already knows returns its current status without admitting twice —
// unless the local copy is a handed_off tombstone, which is refused
// with ErrAlreadyHandedOff (see there).
func (m *Manager) AdmitHandoff(h *HandoffJob) (*JobStatus, error) {
	if !jobIDPattern.MatchString(h.ID) {
		return nil, fmt.Errorf("%w: malformed handoff job id %q", ErrBadSpec, h.ID)
	}
	if err := h.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if len(h.Problem) == 0 {
		return nil, fmt.Errorf("%w: handoff carries no problem bytes", ErrBadSpec)
	}
	if m.draining.Load() {
		return nil, ErrDraining
	}
	if m.pressure.memShedding() {
		m.counters.ShedMemory.Add(1)
		m.noteTenantShed(h.Spec.tenantName())
		return nil, ErrOverloaded
	}
	if m.pressure.diskRefusing() {
		m.counters.RefusedDisk.Add(1)
		return nil, ErrDiskPressure
	}
	// The problem arrives already canonicalized (the sender ships its
	// spool bytes), so the cache key is a plain hash away — no problem
	// build needed.
	var key cache.Key
	cacheable := false
	if m.cache != nil && h.Spec.TimeoutSec == 0 {
		if fp, ok := h.Spec.cacheFingerprint(); ok {
			key = cache.KeyFor(h.Problem, fp)
			cacheable = true
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if existing, ok := m.jobs[h.ID]; ok {
		m.mu.Unlock()
		st := existing.Status()
		if st.State == StateHandedOff {
			// This node only holds a tombstone for the id: it exported
			// the job in an earlier drain and does not own it. In a
			// rolling restart the job's ring successor may offer it
			// right back here; answering 202 would let the sender
			// tombstone its live copy too — the job terminal on both
			// nodes, never run. Refuse so the sender tries the next
			// successor (or keeps the job queued for its own recovery).
			return nil, fmt.Errorf("%w: job %s was handed off to %s in an earlier drain",
				ErrAlreadyHandedOff, h.ID, st.HandedOffTo)
		}
		return st, nil
	}
	tenant := h.Spec.tenantName()
	if q := m.cfg.TenantQuota; q > 0 && m.sched.depth(tenant) >= q {
		m.sched.tenant(tenant).shed++
		m.mu.Unlock()
		m.counters.ShedQuota.Add(1)
		m.counters.Rejected.Add(1)
		return nil, fmt.Errorf("%w: tenant %q has %d jobs queued (quota %d)",
			ErrTenantQuota, tenant, q, q)
	}
	if m.sched.size >= m.cfg.QueueDepth {
		m.mu.Unlock()
		m.counters.Rejected.Add(1)
		return nil, ErrQueueFull
	}
	j := &Job{
		ID: h.ID, Spec: h.Spec, state: StateQueued,
		created: h.Created,
		attempts: h.Attempts, preemptions: h.Preemptions,
		resumes:  h.Resumes,
		cacheKey: key, hasKey: cacheable,
	}
	if j.created.IsZero() {
		j.created = time.Now()
	}
	if len(h.Checkpoint) > 0 {
		// The next run resumes from the shipped checkpoint: that is a
		// resume, exactly as if this node's own daemon had restarted.
		j.resumes++
	}
	j.events.Store(newBroker())
	// Persist problem + checkpoint before job.json (and job.json
	// before the queue), mirroring Submit: a crash mid-admission
	// leaves either no readable record (recovery skips it; the sender
	// never got its 202 and keeps the job queued) or a complete one.
	err := m.store.CreateJob(h.ID)
	if err == nil {
		err = m.store.SaveProblemBytes(h.ID, h.Problem)
	}
	if err == nil && len(h.Checkpoint) > 0 {
		err = m.store.SaveCheckpointBytes(h.ID, h.Checkpoint)
	}
	if err == nil {
		err = m.store.SaveMeta(j.metaLocked())
	}
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if cacheable {
		if _, taken := m.inflight[key]; !taken {
			m.inflight[key] = j
		}
	}
	m.jobs[h.ID] = j
	m.sched.push(j, false)
	m.sched.tenant(tenant).submitted++
	m.counters.Submitted.Add(1)
	m.counters.HandoffReceived.Add(1)
	m.cond.Signal()
	m.mu.Unlock()
	return j.Status(), nil
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/core"
	"netalignmc/internal/matching"
)

// newTestServer starts a manager + HTTP API over a fresh spool.
func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.Spool == "" {
		cfg.Spool = t.TempDir()
	}
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	return mgr, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func submitOK(t *testing.T, ts *httptest.Server, spec any) string {
	t.Helper()
	resp, body := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit: %v in %s", err, body)
	}
	if st.ID == "" {
		t.Fatalf("submit: empty job id in %s", body)
	}
	return st.ID
}

func getStatus(t *testing.T, ts *httptest.Server, id string) *JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d", id, resp.StatusCode)
	}
	st := &JobStatus{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want (fatal on a different
// terminal state or timeout).
func waitState(t *testing.T, ts *httptest.Server, id string, want State, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s, want %s", id, st.State, timeout, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getResult(t *testing.T, ts *httptest.Server, id string) *core.ResultJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("result %s: status %d body %s", id, resp.StatusCode, buf.String())
	}
	r := &core.ResultJSON{}
	if err := json.NewDecoder(resp.Body).Decode(r); err != nil {
		t.Fatal(err)
	}
	return r
}

// smallSpec is a quick deterministic generator job.
func smallSpec() Spec {
	return Spec{
		Method: "bp", Iterations: 20, Approx: true, Threads: 1,
		ProgressEvery: 1,
		Generator:     &GeneratorSpec{N: 40, DBar: 3, Seed: 7},
	}
}

// longSpec runs effectively forever until cancelled.
func longSpec() Spec {
	return Spec{
		Method: "bp", Iterations: 1_000_000, Approx: true, Threads: 1,
		ProgressEvery: 1, CheckpointEvery: 2,
		Generator: &GeneratorSpec{N: 200, DBar: 5, Seed: 11},
	}
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := submitOK(t, ts, smallSpec())
	st := waitState(t, ts, id, StateDone, 30*time.Second)
	if st.Method != "bp" {
		t.Errorf("method = %q, want bp", st.Method)
	}
	res := getResult(t, ts, id)
	if res.Stopped != core.StopMaxIter && !res.Converged {
		t.Errorf("unexpected stop: %+v", res)
	}
	if res.Matched <= 0 || len(res.MateA) != 40 {
		t.Errorf("matched=%d len(mateA)=%d, want a full-size matching", res.Matched, len(res.MateA))
	}
	if res.Objective <= 0 {
		t.Errorf("objective = %v, want > 0", res.Objective)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad method", `{"method":"lp","generator":{"n":10}}`, http.StatusBadRequest},
		{"no source", `{"method":"bp"}`, http.StatusBadRequest},
		{"two sources", `{"problem":"netalign 1\n", "generator":{"n":10}}`, http.StatusBadRequest},
		{"partial upload", `{"a":"x"}`, http.StatusBadRequest},
		{"unknown field", `{"metod":"bp"}`, http.StatusBadRequest},
		{"garbage problem", `{"problem":"not a problem"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	for _, path := range []string{"/v1/jobs/ffffffffffffffff", "/v1/jobs/ffffffffffffffff/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestQueueOverflowBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	running := submitOK(t, ts, longSpec())
	waitState(t, ts, running, StateRunning, 30*time.Second)
	queued := submitOK(t, ts, longSpec()) // fills the queue
	resp, body := postJob(t, ts, longSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Cancelling the queued job frees a slot; the next submit works.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d", dresp.StatusCode)
	}
	if st := getStatus(t, ts, queued); st.State != StateCancelled {
		t.Fatalf("cancelled-while-queued job is %s, want cancelled", st.State)
	}
	// A job cancelled before running has no result.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + queued + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusNotFound {
		t.Errorf("result of cancelled-while-queued job: status %d, want 404", rresp.StatusCode)
	}
	if id := submitOK(t, ts, smallSpec()); id == "" {
		t.Fatal("submit after freeing the queue failed")
	}
	// Drain the still-running long job so cleanup is fast.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running, nil)
	dresp, _ = http.DefaultClient.Do(req)
	if dresp != nil {
		dresp.Body.Close()
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Type string
	Data []byte
}

// readSSE parses events off an event-stream body until stop returns
// true or the stream ends.
func readSSE(t *testing.T, body *bufio.Reader, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && cur.Type != "":
			events = append(events, cur)
			done := stop(cur)
			cur = sseEvent{}
			if done {
				return events
			}
		}
	}
}

func TestCancelRunningStreamsEventsAndKeepsPartialResult(t *testing.T) {
	mgr, ts := newTestServer(t, Config{Workers: 1})
	id := submitOK(t, ts, longSpec())

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}

	// Watch the stream until a few progress events arrive, then cancel
	// and keep reading until the terminal state event.
	var progress int
	var sawCancelled bool
	reader := bufio.NewReader(resp.Body)
	events := readSSE(t, reader, func(ev sseEvent) bool {
		switch ev.Type {
		case "progress":
			progress++
			if progress == 3 {
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return true
				}
				dresp.Body.Close()
			}
		case "state":
			var st JobStatus
			if err := json.Unmarshal(ev.Data, &st); err != nil {
				t.Errorf("bad state event %s: %v", ev.Data, err)
				return true
			}
			if st.State == StateCancelled {
				sawCancelled = true
				return true
			}
			if st.State.Terminal() {
				t.Errorf("job ended %s, want cancelled", st.State)
				return true
			}
		}
		return false
	})
	if progress < 3 {
		t.Fatalf("saw %d progress events (stream: %d events), want >= 3", progress, len(events))
	}
	if !sawCancelled {
		t.Fatalf("never saw the cancelled state event (stream: %d events)", len(events))
	}
	var ev core.ProgressEvent
	for _, e := range events {
		if e.Type == "progress" {
			if err := json.Unmarshal(e.Data, &ev); err != nil {
				t.Fatalf("bad progress event %s: %v", e.Data, err)
			}
			break
		}
	}
	if ev.Method != "bp" || ev.Iter < 1 {
		t.Errorf("first progress event = %+v", ev)
	}

	// The cancelled job still reports its best partial matching, and
	// that matching is valid on the job's own problem.
	st := waitState(t, ts, id, StateCancelled, 10*time.Second)
	if st.Iter < 3 {
		t.Errorf("status iter = %d, want >= 3", st.Iter)
	}
	res := getResult(t, ts, id)
	if res.Stopped != core.StopCancelled {
		t.Errorf("stopped = %q, want cancelled", res.Stopped)
	}
	p, err := mgr.Store().LoadProblem(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MateA) != p.L.NA {
		t.Fatalf("len(mateA) = %d, want NA = %d", len(res.MateA), p.L.NA)
	}
	m := matchingFromMateA(p.L, res.MateA)
	if err := m.Validate(p.L); err != nil {
		t.Errorf("partial matching invalid: %v", err)
	}
	if res.Matched <= 0 {
		t.Errorf("matched = %d, want > 0", res.Matched)
	}
}

// matchingFromMateA rebuilds a matching.Result from the serialized
// MateA array so it can be validated against L.
func matchingFromMateA(g *bipartite.Graph, mateA []int) *matching.Result {
	m := &matching.Result{
		MateA: append([]int(nil), mateA...),
		MateB: make([]int, g.NB),
	}
	for i := range m.MateB {
		m.MateB[i] = -1
	}
	for a, b := range mateA {
		if b < 0 {
			continue
		}
		m.MateB[b] = a
		m.Card++
		if e, ok := g.Find(a, b); ok {
			m.Weight += g.W[e]
		}
	}
	return m
}

func TestRestartResumeBitIdentical(t *testing.T) {
	spool := t.TempDir()
	spec := Spec{
		Method: "bp", Iterations: 400, Batch: 1, Approx: true, Threads: 1,
		ProgressEvery: 1, CheckpointEvery: 2,
		Generator: &GeneratorSpec{N: 120, DBar: 4, Seed: 5},
	}

	mgr1, err := NewManager(Config{Spool: spool, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := mgr1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID

	// Wait until the job is mid-run with at least one checkpoint on
	// disk, then drain: the run stops at an iteration boundary and the
	// job goes back to queued.
	ckpt := mgr1.Store().CheckpointPath(id)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint after 30s; job state %s", j.Status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	meta, err := mgr1.Store().LoadMeta(id)
	if err != nil {
		t.Fatal(err)
	}
	if meta.State == StateDone {
		t.Skip("job finished before the drain; nothing to resume")
	}
	if meta.State != StateQueued {
		t.Fatalf("drained job persisted as %s, want queued", meta.State)
	}

	// Restart on the same spool: recovery requeues and the worker
	// resumes from the checkpoint.
	mgr2, ts := newTestServer(t, Config{Spool: spool, Workers: 1})
	st := getStatus(t, ts, id)
	if st.Resumes < 1 {
		t.Errorf("resumes = %d, want >= 1", st.Resumes)
	}
	waitState(t, ts, id, StateDone, 60*time.Second)
	resumed := getResult(t, ts, id)

	// Reference: the identical solve, uninterrupted, on the job's
	// canonicalized problem.
	p, err := mgr2.Store().LoadProblem(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.BPAlignCtx(context.Background(), core.BPOptions{
		Iterations: spec.Iterations, Batch: 1, Threads: 1,
		Rounding: matching.Approx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Objective != ref.Objective {
		t.Errorf("resumed objective %v != uninterrupted %v", resumed.Objective, ref.Objective)
	}
	if resumed.MatchWeight != ref.MatchWeight || resumed.Overlap != ref.Overlap {
		t.Errorf("resumed weight/overlap %v/%v != uninterrupted %v/%v",
			resumed.MatchWeight, resumed.Overlap, ref.MatchWeight, ref.Overlap)
	}
	if len(resumed.MateA) != len(ref.Matching.MateA) {
		t.Fatalf("mateA length %d != %d", len(resumed.MateA), len(ref.Matching.MateA))
	}
	for a, b := range resumed.MateA {
		if ref.Matching.MateA[a] != b {
			t.Fatalf("MateA[%d] = %d, uninterrupted %d", a, b, ref.Matching.MateA[a])
		}
	}
	if resumed.BestIter != ref.BestIter || resumed.Iterations != ref.Iterations {
		t.Errorf("resumed bestIter/iterations %d/%d != uninterrupted %d/%d",
			resumed.BestIter, resumed.Iterations, ref.BestIter, ref.Iterations)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	mgr, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	id := submitOK(t, ts, smallSpec())
	waitState(t, ts, id, StateDone, 30*time.Second)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(mresp.Body)
	metrics := buf.String()
	for _, want := range []string{
		"netalignd_queue_depth 0",
		"netalignd_jobs_submitted_total 1",
		"netalignd_jobs_completed_total 1",
		"netalignd_solve_step_seconds",
		"netalignd_sched_pool_workers",
		"netalignd_sched_pool_regions_total",
		"netalignd_sched_spawn_regions_total",
		"netalignd_sched_shared_busy_fallbacks_total",
		"netalignd_sched_workers_busy",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// /readyz agrees while the node accepts work.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", rresp.StatusCode)
	}

	// Draining flips readyz to 503 and submissions to 503; healthz
	// stays 200 — liveness must survive the drain or an orchestrator
	// would kill the process mid-checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200 (liveness only)", hresp.StatusCode)
	}
	rresp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status string `json:"status"`
	}
	_ = json.NewDecoder(rresp.Body).Decode(&ready)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", rresp.StatusCode)
	}
	if ready.Status != "draining" {
		t.Errorf("readyz reason while draining: %q, want \"draining\"", ready.Status)
	}
	sresp, body := postJob(t, ts, smallSpec())
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d body %s, want 503", sresp.StatusCode, body)
	}
}

func TestResultConflictWhileRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := submitOK(t, ts, longSpec())
	waitState(t, ts, id, StateRunning, 30*time.Second)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result while running: %d, want 409", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitState(t, ts, id, StateCancelled, 10*time.Second)

	// Cancel is idempotent on a terminal job.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(dresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK || st.State != StateCancelled {
		t.Errorf("second cancel: status %d state %s", dresp.StatusCode, st.State)
	}
}

func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitOK(t, ts, smallSpec()))
	}
	for _, id := range ids {
		waitState(t, ts, id, StateDone, 30*time.Second)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list))
	}
	seen := map[string]bool{}
	for _, st := range list {
		seen[st.ID] = true
		if st.State != StateDone {
			t.Errorf("job %s listed as %s", st.ID, st.State)
		}
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("job %s missing from list", id)
		}
	}
}

func TestSpecValidateUnit(t *testing.T) {
	good := smallSpec()
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Method: "nope", Generator: &GeneratorSpec{N: 10}},
		{Method: "bp"},
		{Method: "bp", Iterations: -1, Generator: &GeneratorSpec{N: 10}},
		{Method: "bp", TimeoutSec: -1, Generator: &GeneratorSpec{N: 10}},
		{Method: "bp", Format: "hdf5", Generator: &GeneratorSpec{N: 10}},
		{Method: "bp", A: "x", B: "y"},
		{Method: "bp", Problem: "p", Generator: &GeneratorSpec{N: 10}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestMRJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := smallSpec()
	spec.Method = "mr"
	id := submitOK(t, ts, spec)
	waitState(t, ts, id, StateDone, 30*time.Second)
	res := getResult(t, ts, id)
	if res.Objective <= 0 || res.Matched <= 0 {
		t.Errorf("mr result: %+v", res)
	}
	st := getStatus(t, ts, id)
	if st.Method != "mr" {
		t.Errorf("method = %q, want mr", st.Method)
	}
}

package server

import (
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Disk-pressure levels. The spool volume's free bytes are compared
// against Config.MinDiskBytes: below 2× the floor the daemon degrades
// (cache disk tier off, checkpoint cadence stretched); below the
// floor itself it refuses new submissions — admitting a job costs
// spool writes, and the last thing a nearly-full volume needs is more
// durable state. Running jobs are never killed by disk pressure:
// their checkpoint/result writes may still fail, and the retry
// lifecycle absorbs that.
const (
	diskOK      = int32(0)
	diskDegrade = int32(1)
	diskRefuse  = int32(2)
)

// ckptStretchFactor multiplies every job's checkpoint interval while
// the daemon is under disk pressure: fewer, sparser checkpoints trade
// a longer replay-on-crash for spool-volume headroom.
const ckptStretchFactor = 4

// pressureMonitor samples the spool volume's free bytes and the
// process RSS on a fixed cadence and distills them into three cheap
// atomics the admission and checkpoint paths read lock-free:
// diskLevel (degrade/refuse), memShed (shed new work with 429), and
// retryAfterSec (the Retry-After hint, computed from the queue drain
// rate so clients back off proportionally to the actual backlog).
type pressureMonitor struct {
	minDisk  int64
	maxRSS   int64
	every    time.Duration
	spool    string
	diskFree func(string) (int64, error)
	rss      func() (int64, error)

	diskLevel     atomic.Int32
	memShed       atomic.Bool
	diskFreeBytes atomic.Int64
	rssBytes      atomic.Int64
	retryAfterSec atomic.Int64
	stretch       atomic.Int32 // checkpoint-interval multiplier (>= 1)

	stop chan struct{}
	done chan struct{}

	// drain-rate bookkeeping, guarded by rateMu: normally only the
	// monitor goroutine samples, but tests drive sample() directly.
	rateMu        sync.Mutex
	lastCompleted int64
	lastSample    time.Time
	ratePerSec    float64
}

func newPressureMonitor(cfg Config) *pressureMonitor {
	m := &pressureMonitor{
		minDisk:  cfg.MinDiskBytes,
		maxRSS:   cfg.MaxRSSBytes,
		every:    cfg.PressureEvery,
		spool:    cfg.Spool,
		diskFree: cfg.DiskFreeProbe,
		rss:      cfg.RSSProbe,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if m.every <= 0 {
		m.every = 2 * time.Second
	}
	if m.diskFree == nil {
		m.diskFree = diskFreeBytes
	}
	if m.rss == nil {
		m.rss = processRSSBytes
	}
	m.stretch.Store(1)
	m.retryAfterSec.Store(1)
	m.lastSample = time.Now()
	return m
}

// enabled reports whether any threshold is configured; with neither,
// the monitor goroutine is never started.
func (p *pressureMonitor) enabled() bool { return p.minDisk > 0 || p.maxRSS > 0 }

// Lock-free views for the admission and checkpoint paths.
func (p *pressureMonitor) memShedding() bool  { return p.memShed.Load() }
func (p *pressureMonitor) diskRefusing() bool { return p.diskLevel.Load() == diskRefuse }
func (p *pressureMonitor) ckptStretch() int   { return int(p.stretch.Load()) }
func (p *pressureMonitor) retryAfter() int64  { return p.retryAfterSec.Load() }

// run is the monitor goroutine: sample, update the atomics, apply
// cache-tier transitions, until stopped. mgr supplies the knobs the
// monitor drives (cache tier) and the drain-rate inputs.
func (p *pressureMonitor) run(mgr *Manager) {
	defer close(p.done)
	tick := time.NewTicker(p.every)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.sample(mgr)
		}
	}
}

// sample takes one measurement round. Split out so tests can drive
// the monitor synchronously with fake probes instead of waiting on
// the ticker.
func (p *pressureMonitor) sample(mgr *Manager) {
	if p.minDisk > 0 {
		if free, err := p.diskFree(p.spool); err == nil {
			p.diskFreeBytes.Store(free)
			level := diskOK
			switch {
			case free < p.minDisk:
				level = diskRefuse
			case free < 2*p.minDisk:
				level = diskDegrade
			}
			if prev := p.diskLevel.Swap(level); prev != level {
				p.onDiskTransition(mgr, prev, level, free)
			}
		}
	}
	if p.maxRSS > 0 {
		if rss, err := p.rss(); err == nil {
			p.rssBytes.Store(rss)
			shed := rss > p.maxRSS
			if prev := p.memShed.Swap(shed); prev != shed {
				if shed {
					log.Printf("memory pressure: rss %d > %d bytes; shedding new submissions with 429", rss, p.maxRSS)
				} else {
					log.Printf("memory pressure cleared: rss %d bytes", rss)
				}
			}
		}
	}
	// Queue drain rate → Retry-After hint. An EWMA smooths the
	// completion rate across sampling noise; the hint is how long the
	// current backlog takes to drain at that rate, clamped to [1s, 2m]
	// so a cold queue still produces a sane header.
	p.rateMu.Lock()
	now := time.Now()
	dt := now.Sub(p.lastSample).Seconds()
	completed := mgr.counters.Completed.Load()
	if dt > 0 {
		inst := float64(completed-p.lastCompleted) / dt
		p.ratePerSec = 0.7*p.ratePerSec + 0.3*inst
	}
	p.lastCompleted = completed
	p.lastSample = now
	rate := p.ratePerSec
	p.rateMu.Unlock()
	mgr.mu.Lock()
	depth := mgr.sched.size
	mgr.mu.Unlock()
	hint := int64(10)
	if rate > 1e-6 {
		hint = int64(float64(depth)/rate) + 1
	}
	if hint < 1 {
		hint = 1
	}
	if hint > 120 {
		hint = 120
	}
	p.retryAfterSec.Store(hint)
}

// onDiskTransition applies the degraded-mode side effects of a
// disk-pressure level change.
func (p *pressureMonitor) onDiskTransition(mgr *Manager, prev, level int32, free int64) {
	switch {
	case level >= diskDegrade && prev < diskDegrade:
		p.stretch.Store(ckptStretchFactor)
		if mgr.cache != nil {
			mgr.cache.SetDiskEnabled(false)
		}
		log.Printf("disk pressure: %d bytes free on %s (floor %d); cache disk tier off, checkpoint cadence ×%d",
			free, p.spool, p.minDisk, ckptStretchFactor)
	case level < diskDegrade && prev >= diskDegrade:
		p.stretch.Store(1)
		if mgr.cache != nil {
			mgr.cache.SetDiskEnabled(true)
		}
		log.Printf("disk pressure cleared: %d bytes free on %s", free, p.spool)
	}
	if level == diskRefuse {
		log.Printf("disk pressure critical: %d bytes free on %s; refusing new submissions", free, p.spool)
	}
}

// shutdown stops the monitor goroutine (idempotent; safe when the
// goroutine was never started).
func (p *pressureMonitor) shutdown() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
}

// processRSSBytes reads the process resident set size. On Linux it
// comes from /proc/self/statm (second field, in pages); elsewhere —
// or if procfs is unavailable — it falls back to the Go runtime's
// OS-reserved byte count, which over-approximates RSS but preserves
// the "this process is too big" signal.
func processRSSBytes() (int64, error) {
	if data, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(data))
		if len(fields) >= 2 {
			if pages, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				return pages * int64(os.Getpagesize()), nil
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys), nil
}

package server

import (
	"sort"
	"time"
)

// Priority classes. Interactive jobs are dispatched before batch jobs
// whenever any are queued, across all tenants; within a class, tenants
// share the workers by weighted fair queuing. The guard against an
// interactive flood starving batch entirely is the per-tenant quota,
// not the scheduler.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

// classIndex maps an effective class name to its queue slot.
func classIndex(class string) int {
	if class == ClassInteractive {
		return 0
	}
	return 1
}

// strideScale is the stride numerator: a tenant's virtual-time pass
// advances by strideScale/weight per dispatch, so over any saturated
// interval tenants receive worker dispatches proportionally to their
// weights (classic stride scheduling). 1<<20 keeps integer resolution
// for weight ratios up to ~10^6.
const strideScale = 1 << 20

// tenantState is one tenant's scheduling state and lifetime counters.
// Everything here is guarded by the Manager's mu; the scheduler has no
// locking of its own.
type tenantState struct {
	name   string
	weight int64
	// pass is the tenant's virtual time: the stride-scheduling clock
	// that implements weighted fair sharing. Low pass = underserved.
	pass uint64
	// q holds the two class FIFOs: q[0] interactive, q[1] batch.
	q [2][]*Job

	// Lifetime counters for /metrics.
	submitted int64
	completed int64
	preempted int64
	shed      int64
	waitNanos int64

	// Lazily updated EWMA of the tenant's completion rate, feeding the
	// tenant-scoped Retry-After hint: one tenant's backlog must not
	// inflate another tenant's backoff.
	lastCompleted int64
	lastSample    time.Time
	ratePerSec    float64
}

// queued is the tenant's total queued jobs across both classes.
func (ts *tenantState) queued() int { return len(ts.q[0]) + len(ts.q[1]) }

// schedQueue replaces the Manager's old single slice-FIFO: per-tenant
// weighted fair queuing (stride/virtual-time over configured weights)
// with two priority classes. All methods require the Manager's mu.
type schedQueue struct {
	weights map[string]int64
	tenants map[string]*tenantState
	// vtime is the global virtual time: the pass of the most recently
	// dispatched tenant. A tenant waking from idle starts at
	// max(own pass, vtime) so idleness banks no credit.
	vtime uint64
	size  int
}

func newSchedQueue(weights map[string]int64) *schedQueue {
	s := &schedQueue{
		weights: weights,
		tenants: make(map[string]*tenantState),
	}
	// Pre-create configured tenants so their weight and zeroed counters
	// show up in /metrics before their first submission.
	for name := range weights {
		s.tenant(name)
	}
	return s
}

// tenant returns (creating on first use) a tenant's state. Unknown
// tenants get weight 1.
func (s *schedQueue) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		w := s.weights[name]
		if w <= 0 {
			w = 1
		}
		ts = &tenantState{name: name, weight: w, lastSample: time.Now()}
		s.tenants[name] = ts
	}
	return ts
}

// stride is the tenant's per-dispatch virtual-time charge.
func (ts *tenantState) stride() uint64 { return uint64(strideScale / ts.weight) }

// push enqueues a job in its tenant's class queue. front puts it at
// the head — used when a preempted job parks back, so it resumes
// before its tenant's newer work (it has already accumulated service).
func (s *schedQueue) push(j *Job, front bool) {
	ts := s.tenant(j.Spec.tenantName())
	if ts.queued() == 0 && ts.pass < s.vtime {
		ts.pass = s.vtime
	}
	ci := classIndex(j.Spec.className())
	if front {
		ts.q[ci] = append([]*Job{j}, ts.q[ci]...)
	} else {
		ts.q[ci] = append(ts.q[ci], j)
	}
	j.enqueuedAt = time.Now()
	s.size++
}

// pop dispatches the next job: the interactive class drains first;
// within a class, the tenant with the minimum pass wins (name-ordered
// tie-break for determinism — Go map iteration is randomized). The
// winning tenant's pass advances by its stride, and the job's queue
// wait is charged to the tenant's wait counter.
func (s *schedQueue) pop(now time.Time) *Job {
	for ci := 0; ci < 2; ci++ {
		var best *tenantState
		for _, ts := range s.tenants {
			if len(ts.q[ci]) == 0 {
				continue
			}
			if best == nil || ts.pass < best.pass ||
				(ts.pass == best.pass && ts.name < best.name) {
				best = ts
			}
		}
		if best == nil {
			continue
		}
		j := best.q[ci][0]
		best.q[ci] = best.q[ci][1:]
		s.vtime = best.pass
		best.pass += best.stride()
		best.waitNanos += now.Sub(j.enqueuedAt).Nanoseconds()
		s.size--
		return j
	}
	return nil
}

// remove takes a queued job out of its tenant queue (cancellation).
// Reports whether the job was found.
func (s *schedQueue) remove(j *Job) bool {
	ts, ok := s.tenants[j.Spec.tenantName()]
	if !ok {
		return false
	}
	ci := classIndex(j.Spec.className())
	for i, q := range ts.q[ci] {
		if q == j {
			ts.q[ci] = append(ts.q[ci][:i], ts.q[ci][i+1:]...)
			s.size--
			return true
		}
	}
	return false
}

// depth is one tenant's queued-job count (the quota input).
func (s *schedQueue) depth(tenant string) int {
	ts, ok := s.tenants[tenant]
	if !ok {
		return 0
	}
	return ts.queued()
}

// noteCompleted credits a finished job to its tenant's drain-rate
// bookkeeping.
func (s *schedQueue) noteCompleted(tenant string) {
	s.tenant(tenant).completed++
}

// retryAfter computes the tenant-scoped Retry-After hint: how long the
// tenant's own backlog takes to drain at the tenant's own EWMA
// completion rate, clamped to [1s, 120s]. The EWMA refreshes lazily —
// at most every retryAfterRefresh — from the completion counter, so
// the hint needs no background goroutine and an idle tenant costs
// nothing. A tenant with no backlog is told to come right back.
func (s *schedQueue) retryAfter(tenant string, now time.Time) int64 {
	ts, ok := s.tenants[tenant]
	if !ok {
		return 1
	}
	if dt := now.Sub(ts.lastSample).Seconds(); dt >= retryAfterRefresh.Seconds() {
		inst := float64(ts.completed-ts.lastCompleted) / dt
		ts.ratePerSec = 0.7*ts.ratePerSec + 0.3*inst
		ts.lastCompleted = ts.completed
		ts.lastSample = now
	}
	depth := ts.queued()
	if depth == 0 {
		return 1
	}
	hint := int64(10)
	if ts.ratePerSec > 1e-6 {
		hint = int64(float64(depth)/ts.ratePerSec) + 1
	}
	if hint < 1 {
		hint = 1
	}
	if hint > 120 {
		hint = 120
	}
	return hint
}

// retryAfterRefresh bounds how often one tenant's EWMA resamples.
const retryAfterRefresh = 500 * time.Millisecond

// TenantMetrics is one tenant's slice of the manager snapshot.
type TenantMetrics struct {
	// Weight is the tenant's fair-share weight (configured, default 1).
	Weight int64 `json:"weight"`
	// Queued / QueuedInteractive are current queue depths (batch depth
	// is their difference); Running counts the tenant's jobs holding
	// worker slots right now.
	Queued            int `json:"queued"`
	QueuedInteractive int `json:"queuedInteractive"`
	Running           int `json:"running"`
	// Lifetime counters: admissions, completions, checkpoint
	// preemptions, and tenant-scoped sheds (quota 429s plus pressure
	// sheds attributed to this tenant).
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Preempted int64 `json:"preempted"`
	Shed      int64 `json:"shed"`
	// WaitSeconds is cumulative queue wait across the tenant's
	// dispatched jobs — wait time / dispatches is the tenant's mean
	// scheduling latency.
	WaitSeconds float64 `json:"waitSeconds"`
}

// snapshot renders every known tenant's metrics, sorted map for
// deterministic iteration left to the caller (it's a map).
func (s *schedQueue) snapshot() map[string]TenantMetrics {
	out := make(map[string]TenantMetrics, len(s.tenants))
	for name, ts := range s.tenants {
		out[name] = TenantMetrics{
			Weight:            ts.weight,
			Queued:            ts.queued(),
			QueuedInteractive: len(ts.q[0]),
			Submitted:         ts.submitted,
			Completed:         ts.completed,
			Preempted:         ts.preempted,
			Shed:              ts.shed,
			WaitSeconds:       time.Duration(ts.waitNanos).Seconds(),
		}
	}
	return out
}

// tenantNames returns the known tenants sorted, for deterministic
// metrics rendering.
func tenantNames(m map[string]TenantMetrics) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestPowerLawDegreesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	degs := PowerLawDegrees(rng, 1000, 2.3, 1, 50)
	if len(degs) != 1000 {
		t.Fatalf("len = %d", len(degs))
	}
	for i, d := range degs {
		if d < 1 || d > 50 {
			t.Fatalf("degree[%d] = %d out of [1,50]", i, d)
		}
	}
}

func TestPowerLawDegreesSkewed(t *testing.T) {
	// A power law with gamma > 1 should put most mass at the minimum
	// degree and still produce occasional large degrees.
	rng := rand.New(rand.NewSource(11))
	degs := PowerLawDegrees(rng, 5000, 2.0, 1, 100)
	ones, big := 0, 0
	for _, d := range degs {
		if d == 1 {
			ones++
		}
		if d >= 10 {
			big++
		}
	}
	if ones < len(degs)/3 {
		t.Fatalf("only %d/%d degree-1 vertices; distribution not skewed", ones, len(degs))
	}
	if big == 0 {
		t.Fatal("no high-degree vertices; tail missing")
	}
}

func TestPowerLawDegreesClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// maxDeg >= n must be clamped to n-1, minDeg < 1 raised to 1.
	degs := PowerLawDegrees(rng, 10, 2.0, 0, 100)
	for _, d := range degs {
		if d < 1 || d > 9 {
			t.Fatalf("degree %d outside clamped range [1,9]", d)
		}
	}
}

func TestChungLuExpectedDegrees(t *testing.T) {
	// With a regular expected-degree sequence the realized mean degree
	// should be close to the target.
	rng := rand.New(rand.NewSource(5))
	n, target := 2000, 8
	degs := make([]int, n)
	for i := range degs {
		degs[i] = target
	}
	g := ChungLu(rng, degs)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mean := 2 * float64(g.NumEdges()) / float64(n)
	if math.Abs(mean-float64(target)) > 1.0 {
		t.Fatalf("mean degree %.2f, want ≈ %d", mean, target)
	}
}

func TestChungLuZeroDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := ChungLu(rng, []int{0, 0, 0})
	if g.NumEdges() != 0 || g.NumVertices() != 3 {
		t.Fatal("zero-degree sequence should give empty graph")
	}
}

func TestPowerLawGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := PowerLaw(rng, 400, 2.1, 1, 30)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 400 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("power-law graph is empty")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, p := 300, 0.05
	g := ErdosRenyi(rng, n, p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	expected := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if got < expected*0.8 || got > expected*1.2 {
		t.Fatalf("edges = %.0f, expected ≈ %.0f", got, expected)
	}
}

func TestErdosRenyiEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := ErdosRenyi(rng, 5, 0); g.NumEdges() != 0 {
		t.Fatal("p=0 produced edges")
	}
	if g := ErdosRenyi(rng, 1, 0.5); g.NumEdges() != 0 {
		t.Fatal("single vertex produced edges")
	}
	g := ErdosRenyi(rng, 6, 1)
	if g.NumEdges() != 15 {
		t.Fatalf("p=1 on K6: %d edges, want 15", g.NumEdges())
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 6
	idx := int64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if gu != u || gv != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

func TestPerturbOnlyAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := PowerLaw(rng, 200, 2.2, 1, 20)
	h := Perturb(rng, g, 0.02)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(e.U, e.V) {
			t.Fatalf("perturbation dropped edge %+v", e)
		}
	}
	if h.NumEdges() < g.NumEdges() {
		t.Fatal("perturbation lost edges")
	}
	// With p=0.02 on ~200 vertices we expect ≈ 0.02 * 199*100 ≈ 400
	// extra edges; at least some must appear.
	if h.NumEdges() == g.NumEdges() {
		t.Fatal("perturbation added nothing (statistically implausible)")
	}
}

func TestRMATBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := RMAT(rng, DefaultRMAT(10, 8))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	// Deduplication shrinks, but a healthy fraction must survive.
	if g.NumEdges() < 1024 {
		t.Fatalf("only %d edges realized", g.NumEdges())
	}
	// R-MAT with a=0.57 is strongly skewed: the max degree should be a
	// large multiple of the mean.
	mean := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*mean {
		t.Fatalf("max degree %d vs mean %.1f; R-MAT skew missing", g.MaxDegree(), mean)
	}
}

func TestRMATClampsDegenerateOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RMAT(rng, RMATOptions{Scale: 0, EdgeFactor: 0, A: 0.25, B: 0.25, C: 0.25})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2 (scale clamped to 1)", g.NumVertices())
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	h := g.DegreeHistogram()
	// Star: one vertex of degree 3, three of degree 1.
	if len(h) != 4 || h[3] != 1 || h[1] != 3 || h[0] != 0 {
		t.Fatalf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.NumVertices() {
		t.Fatalf("histogram sums to %d", total)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	g1 := PowerLaw(rand.New(rand.NewSource(77)), 300, 2.0, 1, 25)
	g2 := PowerLaw(rand.New(rand.NewSource(77)), 300, 2.0, 1, 25)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func TestRandomPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	perm := RandomPermutation(rng, 100)
	seen := make([]bool, 100)
	for _, p := range perm {
		if p < 0 || p >= 100 || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

package graph_test

import (
	"fmt"
	"math/rand"

	"netalignmc/internal/graph"
)

func ExampleBuilder() {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(1, 0) // duplicate, dropped
	g := b.Build()
	fmt.Println(g.NumVertices(), g.NumEdges(), g.Neighbors(1))
	// Output:
	// 3 2 [0 2]
}

func ExamplePowerLaw() {
	rng := rand.New(rand.NewSource(1))
	g := graph.PowerLaw(rng, 400, 2.1, 1, 30)
	fmt.Println(g.NumVertices() == 400, g.NumEdges() > 0)
	// Output:
	// true true
}

func ExampleGraph_DegreeHistogram() {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	fmt.Println(g.DegreeHistogram())
	// Output:
	// [0 3 0 1]
}

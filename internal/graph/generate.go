package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PowerLawDegrees samples n degrees from a discrete power-law
// distribution P(d) ∝ d^(-gamma) truncated to [minDeg, maxDeg], using
// inverse-transform sampling. The paper's synthetic problems start
// from "a 400 node random power-law graph" built by first sampling a
// power-law degree distribution; this reproduces that first step.
func PowerLawDegrees(rng *rand.Rand, n int, gamma float64, minDeg, maxDeg int) []int {
	if minDeg < 1 {
		minDeg = 1
	}
	if maxDeg < minDeg {
		maxDeg = minDeg
	}
	if maxDeg >= n {
		maxDeg = n - 1
	}
	// Cumulative mass over [minDeg, maxDeg].
	weights := make([]float64, maxDeg-minDeg+1)
	total := 0.0
	for d := minDeg; d <= maxDeg; d++ {
		w := math.Pow(float64(d), -gamma)
		weights[d-minDeg] = w
		total += w
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	degs := make([]int, n)
	for i := range degs {
		u := rng.Float64()
		j := sort.SearchFloat64s(cum, u)
		if j >= len(cum) {
			j = len(cum) - 1
		}
		degs[i] = minDeg + j
	}
	return degs
}

// ChungLu generates a random simple graph whose expected degree
// sequence matches degs, by sampling each edge {u,v} independently
// with probability min(1, d_u d_v / sum(d)). This is the standard
// "random graph with prescribed degree distribution" construction the
// paper relies on ("we... generated a random graph with that
// prescribed degree distribution"). For the small degree sums used
// here it enumerates vertex pairs grouped by degree bucket with a
// skipping trick so generation is O(E log n) in expectation rather
// than O(n^2).
func ChungLu(rng *rand.Rand, degs []int) *Graph {
	n := len(degs)
	b := NewBuilder(n)
	sum := 0.0
	for _, d := range degs {
		sum += float64(d)
	}
	if sum == 0 {
		return b.Build()
	}
	// Order vertices by decreasing degree so the geometric skipping is
	// effective (probabilities decrease along the row).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return degs[order[a]] > degs[order[b]] })
	sorted := make([]float64, n)
	for i, v := range order {
		sorted[i] = float64(degs[v])
	}
	// Miller–Hagberg style generation: for each row i, walk j with
	// geometric gaps drawn at the current probability bound q (valid
	// for all later j because degrees are sorted descending), then
	// accept the landed pair with probability q_j/q.
	for i := 0; i < n; i++ {
		if sorted[i] == 0 {
			break
		}
		j := i + 1
		for j < n {
			q := sorted[i] * sorted[j] / sum
			if q > 1 {
				q = 1
			}
			if q <= 0 {
				break
			}
			if q < 1 {
				r := rng.Float64()
				if r == 0 {
					r = math.SmallestNonzeroFloat64
				}
				j += int(math.Floor(math.Log(r) / math.Log(1-q)))
				if j >= n {
					break
				}
				qj := sorted[i] * sorted[j] / sum
				if qj > 1 {
					qj = 1
				}
				if rng.Float64() < qj/q {
					b.AddEdge(order[i], order[j])
				}
			} else {
				b.AddEdge(order[i], order[j])
			}
			j++
		}
	}
	return b.Build()
}

// PowerLaw generates an n-vertex power-law random graph: degrees are
// sampled from P(d) ∝ d^(-gamma) on [minDeg, maxDeg] and edges are
// realized with the Chung–Lu model. It retries degree sampling until
// the realized graph is non-empty.
func PowerLaw(rng *rand.Rand, n int, gamma float64, minDeg, maxDeg int) *Graph {
	for attempt := 0; ; attempt++ {
		degs := PowerLawDegrees(rng, n, gamma, minDeg, maxDeg)
		g := ChungLu(rng, degs)
		if g.NumEdges() > 0 || attempt > 10 {
			return g
		}
	}
}

// ErdosRenyi generates G(n, p): every vertex pair is an edge
// independently with probability p, using geometric skipping so the
// cost is O(E) in expectation.
func ErdosRenyi(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n)
	if p <= 0 || n < 2 {
		return b.Build()
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.Build()
	}
	logq := math.Log(1 - p)
	// Walk the strictly-upper-triangular pair index with geometric gaps.
	total := int64(n) * int64(n-1) / 2
	idx := int64(-1)
	for {
		r := rng.Float64()
		if r == 0 {
			r = math.SmallestNonzeroFloat64
		}
		idx += 1 + int64(math.Floor(math.Log(r)/logq))
		if idx >= total || idx < 0 {
			break
		}
		u, v := pairFromIndex(idx, n)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// pairFromIndex maps a linear index over the strictly upper triangle
// of an n×n matrix (row-major) to the pair (u, v), u < v.
func pairFromIndex(idx int64, n int) (int, int) {
	// Row u holds n-1-u entries; find u by solving the triangular sum.
	u := 0
	remaining := idx
	for {
		row := int64(n - 1 - u)
		if remaining < row {
			return u, u + 1 + int(remaining)
		}
		remaining -= row
		u++
	}
}

// Perturb returns a copy of g with extra edges added: each non-edge
// pair becomes an edge independently with probability p. This is the
// paper's perturbation step ("randomly add edges with probability 0.02
// to form the graphs A and B").
func Perturb(rng *rand.Rand, g *Graph, p float64) *Graph {
	n := g.NumVertices()
	b := NewBuilder(n)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	noise := ErdosRenyi(rng, n, p)
	for _, e := range noise.Edges() {
		if !g.HasEdge(e.U, e.V) {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// RMATOptions parameterizes the recursive-matrix (R-MAT / Kronecker)
// generator used by the matcher evaluations the paper builds on
// (Halappanavar et al. benchmark their locally-dominant matcher on
// R-MAT graphs). Scale gives 2^Scale vertices; EdgeFactor the average
// directed edges per vertex before deduplication; A, B, C are the
// upper-left, upper-right and lower-left quadrant probabilities (the
// lower-right is the remainder).
type RMATOptions struct {
	Scale      int
	EdgeFactor int
	A, B, C    float64
}

// DefaultRMAT returns the Graph500-style parameters (0.57, 0.19, 0.19).
func DefaultRMAT(scale, edgeFactor int) RMATOptions {
	return RMATOptions{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19}
}

// RMAT generates an undirected R-MAT graph: each edge picks its
// endpoints by descending Scale levels of a 2x2 probability quadrant.
// Self loops and duplicates are dropped by the builder, so the
// realized edge count is somewhat below Scale·EdgeFactor — the skewed,
// community-free degree structure is what matters.
func RMAT(rng *rand.Rand, o RMATOptions) *Graph {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.EdgeFactor < 1 {
		o.EdgeFactor = 1
	}
	n := 1 << o.Scale
	b := NewBuilder(n)
	m := n * o.EdgeFactor
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for level := 0; level < o.Scale; level++ {
			r := rng.Float64()
			switch {
			case r < o.A:
				// upper-left: no bits set
			case r < o.A+o.B:
				v |= 1 << level
			case r < o.A+o.B+o.C:
				u |= 1 << level
			default:
				u |= 1 << level
				v |= 1 << level
			}
		}
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Relabel returns a copy of g with vertex v renamed perm[v]. perm must
// be a permutation of 0..n-1.
func Relabel(g *Graph, perm []int) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d", p)
		}
		seen[p] = true
	}
	b := NewBuilder(n)
	for _, e := range g.Edges() {
		b.AddEdge(perm[e.U], perm[e.V])
	}
	return b.Build(), nil
}

// RandomPermutation returns a uniformly random permutation of 0..n-1.
func RandomPermutation(rng *rand.Rand, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

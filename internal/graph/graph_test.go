package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(2, 2) // self loop, dropped
	b.AddEdge(3, 1)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 3) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) || g.HasEdge(0, 3) {
		t.Fatal("unexpected edges present")
	}
	if g.Degree(1) != 2 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(2))
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := path(3)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) {
		t.Fatal("out-of-range HasEdge returned true")
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := FromEdges(5, []Edge{{3, 1}, {0, 4}, {1, 3}, {2, 0}})
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("len(edges) = %d, want 3", len(edges))
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %d not canonical: %+v", i, e)
		}
		if i > 0 && (edges[i-1].U > e.U || (edges[i-1].U == e.U && edges[i-1].V >= e.V)) {
			t.Fatalf("edges not sorted at %d", i)
		}
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph has nonzero stats")
	}
	if len(g.Edges()) != 0 {
		t.Fatal("empty graph has edges")
	}
}

func TestMaxDegree(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestSubgraph(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	sub, err := g.Subgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph has %d vertices %d edges", sub.NumVertices(), sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("subgraph edges wrong")
	}
	if _, err := g.Subgraph([]int{0, 0}); err == nil {
		t.Fatal("duplicate subgraph vertex accepted")
	}
	if _, err := g.Subgraph([]int{99}); err == nil {
		t.Fatal("out-of-range subgraph vertex accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(7, []Edge{{0, 1}, {1, 2}, {3, 4}})
	comp, count := g.ConnectedComponents()
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("count = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("component of 0,1,2 differ")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatal("component of 3,4 wrong")
	}
	if comp[5] == comp[6] {
		t.Fatal("isolated vertices share a component")
	}
}

func TestRelabel(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	perm := []int{3, 2, 1, 0}
	h, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasEdge(3, 2) || !h.HasEdge(2, 1) || h.NumEdges() != 2 {
		t.Fatal("relabel lost or moved edges")
	}
	if _, err := Relabel(g, []int{0, 1, 2}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := Relabel(g, []int{0, 0, 1, 2}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := path(4)
	// Corrupt: replace a neighbor to break symmetry.
	bad := &Graph{Ptr: append([]int(nil), g.Ptr...), Adj: append([]int(nil), g.Adj...)}
	bad.Adj[0] = 3 // 0 now claims neighbor 3 but 3 does not list 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric adjacency")
	}
}

// Property: Build always yields a structurally valid graph regardless
// of the random edge multiset thrown at it.
func TestQuickBuildValid(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint8) bool {
		n := int(nRaw)%40 + 2
		m := int(mRaw) % 120
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of degrees equals twice the number of edges.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(rng, n, 0.3)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: relabeling preserves edge count and degree multiset.
func TestQuickRelabelPreserves(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(rng, n, 0.25)
		perm := RandomPermutation(rng, n)
		h, err := Relabel(g, perm)
		if err != nil {
			return false
		}
		if h.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			if h.Degree(perm[v]) != g.Degree(v) {
				return false
			}
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(perm[e.U], perm[e.V]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package graph provides the undirected-graph substrate for the
// netalignmc reproduction: a compressed-sparse-row adjacency
// structure with sorted neighbor lists, builders that deduplicate and
// symmetrize edge lists, and the random-graph generators used by the
// paper's synthetic experiments (power-law graphs à la Barabási–Albert
// degree statistics, plus Erdős–Rényi edge perturbation).
//
// Graphs are simple (no self loops, no parallel edges) and undirected:
// every edge {u,v} appears in both adjacency lists. Vertex ids are
// dense ints in [0, N).
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two vertices.
type Edge struct {
	U, V int
}

// Graph is an immutable undirected graph in CSR form. Ptr has length
// NumVertices+1; the neighbors of vertex v are Adj[Ptr[v]:Ptr[v+1]],
// sorted ascending. Each undirected edge {u,v} is stored twice.
type Graph struct {
	Ptr []int
	Adj []int
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Ptr) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// Neighbors returns the sorted neighbor list of vertex v. The returned
// slice aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// HasEdge reports whether {u,v} is an edge, by binary search on the
// shorter adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.NumVertices() || v >= g.NumVertices() {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// Edges returns each undirected edge exactly once, with U < V,
// in lexicographic order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	return edges
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Validate checks the structural invariants of the CSR representation:
// monotone row pointers, sorted duplicate-free neighbor lists, no self
// loops, and symmetric adjacency. It is used by tests and by the
// problem loaders.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count")
	}
	if g.Ptr[0] != 0 || g.Ptr[n] != len(g.Adj) {
		return fmt.Errorf("graph: row pointer endpoints %d,%d do not match adjacency length %d", g.Ptr[0], g.Ptr[n], len(g.Adj))
	}
	for v := 0; v < n; v++ {
		if g.Ptr[v] > g.Ptr[v+1] {
			return fmt.Errorf("graph: row pointers decrease at vertex %d", v)
		}
		adj := g.Neighbors(v)
		for i, u := range adj {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			if i > 0 && adj[i-1] >= u {
				return fmt.Errorf("graph: adjacency of vertex %d not sorted/unique at position %d", v, i)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: edge (%d,%d) present but (%d,%d) missing", v, u, u, v)
			}
		}
	}
	return nil
}

// Builder accumulates undirected edges and produces a Graph. Duplicate
// edges and self loops are dropped at Build time.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v}. Self loops are ignored.
// AddEdge panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for %d vertices", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{u, v})
}

// Build constructs the CSR graph. The Builder may be reused afterward;
// it retains its accumulated edges.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	uniq := b.edges[:0:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}

	deg := make([]int, b.n)
	for _, e := range uniq {
		deg[e.U]++
		deg[e.V]++
	}
	ptr := make([]int, b.n+1)
	for v := 0; v < b.n; v++ {
		ptr[v+1] = ptr[v] + deg[v]
	}
	adj := make([]int, ptr[b.n])
	next := make([]int, b.n)
	copy(next, ptr[:b.n])
	for _, e := range uniq {
		adj[next[e.U]] = e.V
		next[e.U]++
		adj[next[e.V]] = e.U
		next[e.V]++
	}
	g := &Graph{Ptr: ptr, Adj: adj}
	// Each list receives its neighbors in sorted order already for the
	// U side, but the V side interleaves; sort every list to be safe.
	for v := 0; v < b.n; v++ {
		sort.Ints(adj[ptr[v]:ptr[v+1]])
	}
	return g
}

// FromEdges builds a graph with n vertices from an explicit edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// Subgraph returns the induced subgraph on the given vertices, which
// are renumbered 0..len(vertices)-1 in the order given. Duplicate
// vertex ids are rejected.
func (g *Graph) Subgraph(vertices []int) (*Graph, error) {
	remap := make(map[int]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.NumVertices() {
			return nil, fmt.Errorf("graph: subgraph vertex %d out of range", v)
		}
		if _, dup := remap[v]; dup {
			return nil, fmt.Errorf("graph: duplicate subgraph vertex %d", v)
		}
		remap[v] = i
	}
	b := NewBuilder(len(vertices))
	for _, v := range vertices {
		for _, u := range g.Neighbors(v) {
			if ru, ok := remap[u]; ok {
				b.AddEdge(remap[v], ru)
			}
		}
	}
	return b.Build(), nil
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// up to the maximum degree.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// ConnectedComponents returns a component id for every vertex and the
// number of components.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	n := g.NumVertices()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] == -1 {
					comp[w] = count
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	return comp, count
}

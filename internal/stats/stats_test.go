package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStepTimerBasics(t *testing.T) {
	st := NewStepTimer()
	st.Add("a", 10*time.Millisecond)
	st.Add("b", 30*time.Millisecond)
	st.Add("a", 10*time.Millisecond)
	if st.Total("a") != 20*time.Millisecond {
		t.Fatalf("Total(a) = %v", st.Total("a"))
	}
	if st.Count("a") != 2 || st.Count("b") != 1 {
		t.Fatalf("counts wrong: %d %d", st.Count("a"), st.Count("b"))
	}
	if st.GrandTotal() != 50*time.Millisecond {
		t.Fatalf("GrandTotal = %v", st.GrandTotal())
	}
	fr := st.Fractions()
	if fr["a"] != 0.4 || fr["b"] != 0.6 {
		t.Fatalf("fractions = %v", fr)
	}
	steps := st.Steps()
	if len(steps) != 2 || steps[0] != "a" || steps[1] != "b" {
		t.Fatalf("steps = %v", steps)
	}
}

func TestStepTimerTimeRunsFn(t *testing.T) {
	st := NewStepTimer()
	ran := false
	st.Time("x", func() { ran = true })
	if !ran {
		t.Fatal("fn not run")
	}
	if st.Count("x") != 1 {
		t.Fatal("step not recorded")
	}
}

func TestNilStepTimer(t *testing.T) {
	var st *StepTimer
	ran := false
	st.Time("x", func() { ran = true })
	if !ran {
		t.Fatal("nil timer must still run fn")
	}
	st.Add("x", time.Second)
	if st.Total("x") != 0 || st.Count("x") != 0 || st.GrandTotal() != 0 {
		t.Fatal("nil timer must report zeros")
	}
	if st.Steps() != nil || st.Snapshot() != nil {
		t.Fatal("nil timer must report empty collections")
	}
	if st.String() == "" {
		t.Fatal("nil timer String empty")
	}
}

func TestStepTimerConcurrent(t *testing.T) {
	st := NewStepTimer()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				st.Add("m", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if st.Count("m") != 1600 {
		t.Fatalf("Count = %d, want 1600", st.Count("m"))
	}
	if st.Total("m") != 1600*time.Microsecond {
		t.Fatalf("Total = %v", st.Total("m"))
	}
}

func TestFractionsEmpty(t *testing.T) {
	st := NewStepTimer()
	if len(st.Fractions()) != 0 {
		t.Fatal("empty timer has fractions")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("summary %+v", s)
	}
	// Population stddev of {1,2,3,4} is sqrt(1.25).
	if diff := s.Std*s.Std - 1.25; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("std = %g", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Std != 0 {
		t.Fatalf("singleton summary %+v", one)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta") // short row padded
	s := tbl.String()
	if !strings.Contains(s, "name") || !strings.Contains(s, "alpha") {
		t.Fatalf("table output missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "alpha,1\n") {
		t.Fatalf("csv row wrong:\n%s", csv)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "speedup"}
	s.Add(1, 1.0)
	s.Add(2, 1.9)
	if len(s.X) != 2 || s.Y[1] != 1.9 {
		t.Fatal("Add failed")
	}
	if !strings.Contains(s.String(), "speedup:") {
		t.Fatal("String missing name")
	}
}

func TestFormatSeriesTable(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := &Series{Name: "b"}
	b.Add(2, 200)
	b.Add(4, 400)
	out := FormatSeriesTable("threads", a, b)
	if !strings.Contains(out, "threads") || !strings.Contains(out, "400") {
		t.Fatalf("series table wrong:\n%s", out)
	}
	// x=1 row must have an empty b cell, x=4 an empty a cell.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

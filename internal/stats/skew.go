package stats

import "sort"

// Skew summarizes the imbalance of a nonnegative cost distribution —
// in this codebase, the row-nonzero counts of the overlap matrix S,
// whose skew is what motivates nnz-balanced loop partitioning over
// equal index splits (the paper: "the non-zero distribution in S is
// highly irregular and imbalanced").
type Skew struct {
	// N is the number of costs (rows).
	N int `json:"n"`
	// Max and Mean describe the heaviest and average cost.
	Max  int     `json:"max"`
	Mean float64 `json:"mean"`
	// MaxOverMean is the classic load-imbalance factor: the slowdown
	// of an equal split whose unlucky worker receives the heaviest
	// element's row neighborhood.
	MaxOverMean float64 `json:"max_over_mean"`
	// Gini is the Gini coefficient of the distribution: 0 when every
	// row carries the same load, approaching 1 as the load concentrates
	// in a vanishing fraction of rows.
	Gini float64 `json:"gini"`
}

// SkewOf computes the skew summary of explicit costs. Negative entries
// are treated as zero.
func SkewOf(costs []int) Skew {
	s := Skew{N: len(costs)}
	if s.N == 0 {
		return s
	}
	sorted := make([]int, len(costs))
	copy(sorted, costs)
	for i, c := range sorted {
		if c < 0 {
			sorted[i] = 0
		}
	}
	sort.Ints(sorted)
	total := 0.0
	weighted := 0.0 // Σ (i+1)·x_i over the ascending order
	for i, c := range sorted {
		total += float64(c)
		weighted += float64(i+1) * float64(c)
		if c > s.Max {
			s.Max = c
		}
	}
	s.Mean = total / float64(s.N)
	if s.Mean > 0 {
		s.MaxOverMean = float64(s.Max) / s.Mean
	}
	if total > 0 {
		n := float64(s.N)
		s.Gini = (2*weighted)/(n*total) - (n+1)/n
	}
	return s
}

// SkewOfPtr computes the skew of the row sizes of a CSR-style pointer
// array: cost i is ptr[i+1]-ptr[i].
func SkewOfPtr(ptr []int) Skew {
	if len(ptr) < 2 {
		return Skew{}
	}
	costs := make([]int, len(ptr)-1)
	for i := range costs {
		costs[i] = ptr[i+1] - ptr[i]
	}
	return SkewOf(costs)
}

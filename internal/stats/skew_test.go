package stats

import (
	"math"
	"testing"
)

func TestSkewUniform(t *testing.T) {
	s := SkewOf([]int{4, 4, 4, 4})
	if s.Gini != 0 {
		t.Fatalf("uniform distribution gini = %g, want 0", s.Gini)
	}
	if s.Max != 4 || s.Mean != 4 || s.MaxOverMean != 1 {
		t.Fatalf("uniform summary wrong: %+v", s)
	}
}

func TestSkewAllInOneRow(t *testing.T) {
	// n-1 zeros and one heavy row: Gini = (n-1)/n.
	s := SkewOf([]int{0, 0, 0, 12})
	want := 3.0 / 4.0
	if math.Abs(s.Gini-want) > 1e-12 {
		t.Fatalf("concentrated gini = %g, want %g", s.Gini, want)
	}
	if s.MaxOverMean != 4 {
		t.Fatalf("max/mean = %g, want 4", s.MaxOverMean)
	}
}

func TestSkewEdgeCases(t *testing.T) {
	if s := SkewOf(nil); s.N != 0 || s.Gini != 0 {
		t.Fatalf("empty skew: %+v", s)
	}
	if s := SkewOf([]int{0, 0}); s.Gini != 0 || s.MaxOverMean != 0 {
		t.Fatalf("all-zero skew: %+v", s)
	}
	// Negative entries clamp to zero rather than corrupting the sums.
	if s := SkewOf([]int{-5, 10}); s.Max != 10 || s.Mean != 5 {
		t.Fatalf("negative clamp: %+v", s)
	}
}

func TestSkewOfPtr(t *testing.T) {
	// Rows of size 1, 3, 0, 4 from a CSR pointer with base 2.
	ptr := []int{2, 3, 6, 6, 10}
	s := SkewOfPtr(ptr)
	if s.N != 4 || s.Max != 4 || s.Mean != 2 {
		t.Fatalf("ptr skew: %+v", s)
	}
	direct := SkewOf([]int{1, 3, 0, 4})
	if s != direct {
		t.Fatalf("ptr skew %+v != direct %+v", s, direct)
	}
	if s := SkewOfPtr(nil); s.N != 0 {
		t.Fatalf("nil ptr skew: %+v", s)
	}
}

func TestSkewGiniMonotone(t *testing.T) {
	// Moving mass from a light row to a heavy one must not decrease
	// Gini.
	lo := SkewOf([]int{5, 5, 5, 5}).Gini
	mid := SkewOf([]int{3, 5, 5, 7}).Gini
	hi := SkewOf([]int{1, 1, 1, 17}).Gini
	if !(lo <= mid && mid <= hi) {
		t.Fatalf("gini not monotone under concentration: %g, %g, %g", lo, mid, hi)
	}
}

// Package stats provides the per-step timing instrumentation and small
// reporting helpers used to regenerate the paper's scaling figures.
//
// Figures 6 and 7 of the paper break the strong scaling of Klau's
// method and BP(batch=20) down by pseudo-code step (row match, daxpy,
// matching, objective, update U for MR; bound F, compute d, othermax,
// update S, damping, matching for BP). StepTimer accumulates wall time
// per named step across iterations so the experiment harness can
// report exactly those series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// StepTimer accumulates elapsed wall time per named step. It is safe
// for concurrent use; batched rounding tasks record their matching
// time from multiple goroutines.
type StepTimer struct {
	mu    sync.Mutex
	total map[string]time.Duration
	count map[string]int
	order []string
}

// NewStepTimer returns an empty timer.
func NewStepTimer() *StepTimer {
	return &StepTimer{
		total: make(map[string]time.Duration),
		count: make(map[string]int),
	}
}

// Time runs fn and charges its wall time to step. A nil *StepTimer is
// valid and simply runs fn, so instrumentation can stay in place
// unconditionally.
func (t *StepTimer) Time(step string, fn func()) {
	if t == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	t.Add(step, time.Since(start))
}

// Add charges d to step directly.
func (t *StepTimer) Add(step string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.total[step]; !ok {
		t.order = append(t.order, step)
	}
	t.total[step] += d
	t.count[step]++
}

// Total returns the accumulated time of a step.
func (t *StepTimer) Total(step string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total[step]
}

// Count returns how many times a step was recorded.
func (t *StepTimer) Count(step string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count[step]
}

// Steps returns the step names in first-recorded order.
func (t *StepTimer) Steps() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// Snapshot returns a copy of the per-step totals.
func (t *StepTimer) Snapshot() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.total))
	for k, v := range t.total {
		out[k] = v
	}
	return out
}

// GrandTotal returns the sum over all steps.
func (t *StepTimer) GrandTotal() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum time.Duration
	for _, v := range t.total {
		sum += v
	}
	return sum
}

// Fractions returns each step's share of the grand total, which is how
// the paper reports the step breakdown ("the row match step took 40%
// of the runtime...").
func (t *StepTimer) Fractions() map[string]float64 {
	snap := t.Snapshot()
	var sum time.Duration
	for _, v := range snap {
		sum += v
	}
	out := make(map[string]float64, len(snap))
	if sum == 0 {
		return out
	}
	for k, v := range snap {
		out[k] = float64(v) / float64(sum)
	}
	return out
}

// String formats the timer as a small table, steps in recorded order.
func (t *StepTimer) String() string {
	if t == nil {
		return "(no timing)"
	}
	var b strings.Builder
	fr := t.Fractions()
	for _, s := range t.Steps() {
		fmt.Fprintf(&b, "%-12s %12v  %5.1f%%\n", s, t.Total(s).Round(time.Microsecond), 100*fr[s])
	}
	return b.String()
}

// Summary holds the moments of a sample, for multi-seed experiment
// aggregation.
type Summary struct {
	N                   int
	Min, Max, Mean, Std float64
}

// Summarize computes min/max/mean/stddev (population) of the sample.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	s.Std = math.Sqrt(varsum / float64(len(xs)))
	return s
}

// Table is a minimal fixed-column text table for experiment output.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; the
// experiment harness only emits numeric and identifier cells).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Series is a named sequence of (x, y) points, the unit of figure
// reproduction: one Series per curve in a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as "name: (x,y) (x,y) ...".
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, " (%g, %.4g)", s.X[i], s.Y[i])
	}
	return b.String()
}

// FormatSeriesTable renders several series sharing an x-axis as one
// table with a column per series, sorted by x.
func FormatSeriesTable(xLabel string, series ...*Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	tbl := NewTable(headers...)
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			cell := ""
			for i := range s.X {
				if s.X[i] == x {
					cell = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}

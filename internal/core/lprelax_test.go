package core_test

import (
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
)

func TestLPRelaxationTiny(t *testing.T) {
	// On the K2/K2 problem the LP optimum equals the integral optimum
	// (4): take either perfect matching with its overlap pair.
	p := tinyCoreProblem(t)
	res, err := p.LPRelaxation(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound < 4-1e-6 {
		t.Fatalf("LP bound %g below integral optimum 4", res.Bound)
	}
	if err := res.Rounded.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if res.Rounded.Objective > res.Bound+1e-6 {
		t.Fatalf("rounded objective %g above LP bound %g", res.Rounded.Objective, res.Bound)
	}
}

// tinyCoreProblem rebuilds the K2/K2 instance through gen-free code so
// the external test package can use it.
func tinyCoreProblem(t testing.TB) *core.Problem {
	t.Helper()
	o := gen.DefaultSynthetic(0, 1)
	o.N = 2
	o.PerturbProb = 1 // force the single edge in both graphs
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLPBoundDominatesHeuristics(t *testing.T) {
	// The relaxation value upper-bounds every integral alignment, in
	// particular BP's and MR's results — and the paper's claim is that
	// both methods outperform the LP rounding itself.
	o := gen.DefaultSynthetic(2, 9)
	o.N = 25
	o.MaxDeg = 6
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.LPRelaxation(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	bp := p.BPAlign(core.BPOptions{Iterations: 25})
	mr := p.KlauAlign(core.MROptions{Iterations: 25})
	if bp.Objective > res.Bound+1e-6 {
		t.Fatalf("BP %g exceeds LP bound %g", bp.Objective, res.Bound)
	}
	if mr.Objective > res.Bound+1e-6 {
		t.Fatalf("MR %g exceeds LP bound %g", mr.Objective, res.Bound)
	}
	// §III: "Both of the algorithms below outperform this procedure."
	// On easy planted problems they must at least match it.
	if bp.Objective < res.Rounded.Objective-1e-6 {
		t.Fatalf("BP %g below LP rounding %g", bp.Objective, res.Rounded.Objective)
	}
}

func TestLPRelaxationVarLimit(t *testing.T) {
	p := tinyCoreProblem(t)
	if _, err := p.LPRelaxation(1, 1); err == nil {
		t.Fatal("variable limit not enforced")
	}
}

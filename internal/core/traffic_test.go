package core

import (
	"strings"
	"testing"
)

func TestTrafficModel(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	m := NewTrafficModel(p, 20)
	if m.EL != 4 || m.NnzS != 4 || m.Batch != 20 {
		t.Fatalf("model %+v", m)
	}
	steps := m.Steps()
	if len(steps) != 6 {
		t.Fatalf("steps = %d", len(steps))
	}
	seen := map[string]bool{}
	var total int64
	for _, s := range steps {
		if s.Reads < 0 || s.Writes < 0 {
			t.Fatalf("negative traffic %+v", s)
		}
		seen[s.Step] = true
		total += s.Words()
	}
	for _, name := range []string{BPStepBoundF, BPStepComputeD, BPStepOthermax, BPStepUpdateS, BPStepDamping, BPStepMatch} {
		if !seen[name] {
			t.Fatalf("missing step %s", name)
		}
	}
	if total <= 0 {
		t.Fatal("no traffic modeled")
	}
	share := m.DampingShare()
	if share <= 0 || share >= 1 {
		t.Fatalf("damping share %g", share)
	}
	if !strings.Contains(m.String(), "damping share") {
		t.Fatal("String missing summary")
	}
}

func TestTrafficModelBatchClamp(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	m := NewTrafficModel(p, 0)
	if m.Batch != 1 {
		t.Fatalf("batch not clamped: %d", m.Batch)
	}
}

func TestTrafficDampingGrowsWithEL(t *testing.T) {
	// With nnz(S) fixed, growing |E_L| grows the damping share: the
	// damping step moves 3 full |E_L| vectors plus S^(k).
	small := TrafficModel{EL: 100, NnzS: 1000, Batch: 20}
	big := TrafficModel{EL: 100000, NnzS: 1000, Batch: 20}
	if big.DampingShare() <= small.DampingShare() {
		t.Fatalf("damping share did not grow: %g vs %g", small.DampingShare(), big.DampingShare())
	}
	empty := TrafficModel{}
	if empty.DampingShare() != 0 {
		t.Fatal("empty model share nonzero")
	}
}

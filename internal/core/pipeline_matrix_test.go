package core_test

// Matrix test for pipelined batched rounding: the pipeline is a pure
// execution rewire (the matching barrier moves off the critical path),
// so for a fixed thread count the solver output must be bitwise
// identical across {barrier, pipelined} x {ring depth} — objective,
// the alignment itself, the evaluation count, the objective trace, and
// the serialized checkpoint bytes. Cancellation mid-pipeline must lose
// no batch and double-count none.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/problemio"
)

// setCheckpoint installs a checkpoint collector on the selected
// method's options.
func setCheckpoint(o *core.Options, every int, fn func(*core.Checkpoint) error) {
	switch o.Method {
	case core.MethodMR:
		o.MR.CheckpointEvery = every
		o.MR.CheckpointFunc = fn
	default:
		o.BP.CheckpointEvery = every
		o.BP.CheckpointFunc = fn
	}
}

// runAligned runs Align, serializing every checkpoint through the
// problemio writer so the returned bytes cover the full on-disk form.
func runAligned(t *testing.T, p *core.Problem, o core.Options, every int) (*core.AlignResult, [][]byte) {
	t.Helper()
	var cks [][]byte
	if every > 0 {
		setCheckpoint(&o, every, func(c *core.Checkpoint) error {
			var buf bytes.Buffer
			if err := problemio.WriteCheckpoint(&buf, c); err != nil {
				return err
			}
			cks = append(cks, buf.Bytes())
			return nil
		})
	}
	res, err := p.Align(context.Background(), o)
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	return res, cks
}

// compareRuns asserts two runs of the same options are bitwise
// indistinguishable on every output surface.
func compareRuns(t *testing.T, name string, want, got *core.AlignResult, wantCks, gotCks [][]byte) {
	t.Helper()
	if math.Float64bits(want.Objective) != math.Float64bits(got.Objective) {
		t.Fatalf("%s: objective %v not bitwise equal to barrier's %v", name, got.Objective, want.Objective)
	}
	if want.Evaluations != got.Evaluations {
		t.Fatalf("%s: evaluations %d != barrier's %d", name, got.Evaluations, want.Evaluations)
	}
	if want.BestIter != got.BestIter {
		t.Fatalf("%s: best iter %d != barrier's %d", name, got.BestIter, want.BestIter)
	}
	if len(want.Matching.MateA) != len(got.Matching.MateA) {
		t.Fatalf("%s: mate length %d != %d", name, len(got.Matching.MateA), len(want.Matching.MateA))
	}
	for i := range want.Matching.MateA {
		if want.Matching.MateA[i] != got.Matching.MateA[i] {
			t.Fatalf("%s: mateA[%d] = %d, barrier has %d", name, i, got.Matching.MateA[i], want.Matching.MateA[i])
		}
	}
	if len(want.ObjectiveTrace) != len(got.ObjectiveTrace) {
		t.Fatalf("%s: trace length %d != barrier's %d", name, len(got.ObjectiveTrace), len(want.ObjectiveTrace))
	}
	for i := range want.ObjectiveTrace {
		if math.Float64bits(want.ObjectiveTrace[i]) != math.Float64bits(got.ObjectiveTrace[i]) {
			t.Fatalf("%s: trace[%d] = %v, barrier has %v", name, i, got.ObjectiveTrace[i], want.ObjectiveTrace[i])
		}
	}
	if len(wantCks) != len(gotCks) {
		t.Fatalf("%s: %d checkpoints, barrier wrote %d", name, len(gotCks), len(wantCks))
	}
	for i := range wantCks {
		if !bytes.Equal(wantCks[i], gotCks[i]) {
			t.Fatalf("%s: checkpoint %d bytes differ from barrier's", name, i)
		}
	}
}

func TestPipelineMatrixBP(t *testing.T) {
	p := smallSynthetic(t, 211)
	for _, fused := range []bool{false, true} {
		for _, batch := range []int{1, 4, 7} {
			for _, threads := range []int{1, 2, 4} {
				base := core.Options{BP: core.BPOptions{
					Iterations: 9, Threads: threads, Chunk: 16, Batch: batch,
					FuseKernels: fused, Trace: true,
					Matcher: matching.MatcherSpec{Name: "approx"},
				}}
				ref, refCks := runAligned(t, p, base, 4)
				if err := ref.Matching.Validate(p.L); err != nil {
					t.Fatalf("barrier fused=%v batch=%d threads=%d: %v", fused, batch, threads, err)
				}
				for _, depth := range []int{0, 3} {
					name := fmt.Sprintf("fused=%v/batch=%d/threads=%d/depth=%d", fused, batch, threads, depth)
					po := base
					po.Pipeline = core.PipelineOptions{Enabled: true, Depth: depth}
					got, gotCks := runAligned(t, p, po, 4)
					if threads > 1 {
						if got.Pipeline == nil {
							t.Fatalf("%s: pipeline did not engage", name)
						}
						if got.Pipeline.Batches == 0 {
							t.Fatalf("%s: pipeline engaged but submitted no batches", name)
						}
					}
					compareRuns(t, name, ref, got, refCks, gotCks)
				}
			}
		}
	}
}

func TestPipelineMatrixMR(t *testing.T) {
	p := smallSynthetic(t, 223)
	for _, threads := range []int{1, 2, 4} {
		base := core.Options{Method: core.MethodMR, MR: core.MROptions{
			Iterations: 9, Threads: threads, Chunk: 16,
			Matcher: matching.MatcherSpec{Name: "approx"},
		}}
		ref, refCks := runAligned(t, p, base, 4)
		if err := ref.Matching.Validate(p.L); err != nil {
			t.Fatalf("barrier threads=%d: %v", threads, err)
		}
		for _, depth := range []int{0, 3} {
			name := fmt.Sprintf("threads=%d/depth=%d", threads, depth)
			po := base
			po.Pipeline = core.PipelineOptions{Enabled: true, Depth: depth}
			got, gotCks := runAligned(t, p, po, 4)
			if threads > 1 {
				if got.Pipeline == nil {
					t.Fatalf("%s: pipeline did not engage", name)
				}
				if got.Pipeline.Batches == 0 {
					t.Fatalf("%s: pipeline engaged but submitted no batches", name)
				}
			}
			compareRuns(t, name, ref, got, refCks, gotCks)
		}
	}
}

// TestPipelineCancellationBP cancels mid-run from the iteration
// observer: the run must stop cleanly with every completed rounding
// offered exactly once (Evaluations == len(ObjectiveTrace)) and no
// in-flight batch lost or double-counted.
func TestPipelineCancellationBP(t *testing.T) {
	p := smallSynthetic(t, 227)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := core.Options{
		BP: core.BPOptions{
			Iterations: 500, Threads: 4, Batch: 4, Trace: true,
			Matcher: matching.MatcherSpec{Name: "approx"},
			Observer: func(iter int, y, z []float64) {
				if iter == 12 {
					cancel()
				}
			},
		},
		Pipeline: core.PipelineOptions{Enabled: true},
	}
	res, err := p.Align(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != core.StopCancelled {
		t.Fatalf("stopped = %v, want StopCancelled", res.Stopped)
	}
	if res.Pipeline == nil {
		t.Fatal("pipeline did not engage")
	}
	if res.Evaluations != len(res.ObjectiveTrace) {
		t.Fatalf("evaluations %d != trace length %d (a batch was lost or double-counted)",
			res.Evaluations, len(res.ObjectiveTrace))
	}
	if res.Evaluations == 0 {
		t.Fatal("cancel at iteration 12 should have left completed roundings")
	}
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineCancellationMR cancels from a checkpoint callback (which
// runs after a deterministic drain): the run stops cleanly with a
// complete tracker over the checkpointed prefix.
func TestPipelineCancellationMR(t *testing.T) {
	p := smallSynthetic(t, 229)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := core.Options{
		Method: core.MethodMR,
		MR: core.MROptions{
			Iterations: 500, Threads: 4,
			Matcher:         matching.MatcherSpec{Name: "approx"},
			CheckpointEvery: 8,
			CheckpointFunc: func(c *core.Checkpoint) error {
				cancel()
				return nil
			},
		},
		Pipeline: core.PipelineOptions{Enabled: true},
	}
	res, err := p.Align(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != core.StopCancelled {
		t.Fatalf("stopped = %v, want StopCancelled", res.Stopped)
	}
	if res.Pipeline == nil {
		t.Fatal("pipeline did not engage")
	}
	if res.Evaluations < 8 {
		t.Fatalf("evaluations %d < 8: the checkpoint drain lost offers", res.Evaluations)
	}
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
}

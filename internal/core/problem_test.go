package core

import (
	"math"
	"testing"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/graph"
	"netalignmc/internal/matching"
)

// tinyProblem: A = B = path 0-1, L complete 2x2 with unit weights.
func tinyProblem(t testing.TB, alpha, beta float64) *Problem {
	t.Helper()
	a := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	b := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	l, err := bipartite.New(2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1}, {A: 1, B: 1, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(a, b, l, alpha, beta, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSConstructionTiny(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	// L edges in canonical order: (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3.
	// Overlap pairs: {(0,0),(1,1)} and {(0,1),(1,0)}, each symmetric:
	// 4 stored entries.
	if p.NNZS() != 4 {
		t.Fatalf("nnz(S) = %d, want 4", p.NNZS())
	}
	if p.S.At(0, 3) != 1 || p.S.At(3, 0) != 1 || p.S.At(1, 2) != 1 || p.S.At(2, 1) != 1 {
		t.Fatalf("S entries wrong: %v", p.S.Dense())
	}
	if p.S.At(0, 1) != 0 || p.S.At(0, 2) != 0 || p.S.At(0, 0) != 0 {
		t.Fatal("S has spurious entries")
	}
}

func TestSConstructionRespectsMissingLEdges(t *testing.T) {
	// Same graphs but L lacks (1,1): no overlap pair can form.
	a := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	b := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	l, err := bipartite.New(2, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(a, b, l, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only {(0,1),(1,0)} overlaps.
	if p.NNZS() != 2 {
		t.Fatalf("nnz(S) = %d, want 2", p.NNZS())
	}
}

func TestSConstructionByDefinition(t *testing.T) {
	// Cross-check S against the definition on a random instance.
	a := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}, {U: 1, V: 3}})
	b := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 2}})
	var edges []bipartite.WeightedEdge
	for va := 0; va < 5; va++ {
		for vb := 0; vb < 4; vb++ {
			if (va+vb)%2 == 0 {
				edges = append(edges, bipartite.WeightedEdge{A: va, B: vb, W: 1})
			}
		}
	}
	l, err := bipartite.New(5, 4, edges)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(a, b, l, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for e1 := 0; e1 < l.NumEdges(); e1++ {
		for e2 := 0; e2 < l.NumEdges(); e2++ {
			i, iP := l.EdgeA[e1], l.EdgeB[e1]
			j, jP := l.EdgeA[e2], l.EdgeB[e2]
			want := 0.0
			if a.HasEdge(i, j) && b.HasEdge(iP, jP) {
				want = 1
			}
			if got := p.S.At(e1, e2); got != want {
				t.Fatalf("S[(%d,%d),(%d,%d)] = %g, want %g", i, iP, j, jP, got, want)
			}
		}
	}
}

func TestNewProblemErrors(t *testing.T) {
	a := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	b := graph.FromEdges(3, nil)
	l, err := bipartite.New(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(a, b, l, 1, 1, 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	l2, _ := bipartite.New(2, 3, nil)
	if _, err := NewProblem(a, b, l2, -1, 1, 1); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestObjectiveDecomposition(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	x := p.IdentityIndicator() // matches (0,0) and (1,1)
	if got := p.MatchWeight(x, 1); got != 2 {
		t.Fatalf("MatchWeight = %g, want 2", got)
	}
	if got := p.Overlap(x, 1); got != 1 {
		t.Fatalf("Overlap = %g, want 1 (the single A/B edge pair)", got)
	}
	if got := p.Objective(x, 1); got != 1*2+2*1 {
		t.Fatalf("Objective = %g, want 4", got)
	}
	// The anti-identity matching (0,1),(1,0) also overlaps.
	y := make([]float64, 4)
	y[1], y[2] = 1, 1
	if got := p.Objective(y, 1); got != 4 {
		t.Fatalf("anti-identity objective = %g, want 4", got)
	}
	// A single-edge matching has no overlap.
	zVec := make([]float64, 4)
	zVec[0] = 1
	if got := p.Objective(zVec, 1); got != 1 {
		t.Fatalf("single edge objective = %g, want 1", got)
	}
}

func TestObjectiveOfMatching(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	r := matching.Exact(p.L, 1)
	obj := p.ObjectiveOfMatching(r, 1)
	// Exact matching picks 2 unit edges; whether it overlaps depends on
	// which pair; objective is 2 (no overlap) or 4 (overlap).
	if obj != 2 && obj != 4 {
		t.Fatalf("objective = %g", obj)
	}
}

func TestCorrectMatchFraction(t *testing.T) {
	r := &matching.Result{MateA: []int{0, 2, 2, -1}}
	// a0->b0 correct; a1->b2 wrong; a2->b2 correct; a3 unmatched.
	if got := CorrectMatchFraction(r); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CorrectMatchFraction = %g, want 0.5", got)
	}
	if CorrectMatchFraction(&matching.Result{}) != 0 {
		t.Fatal("empty result fraction nonzero")
	}
}

func TestProblemStats(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	s := ProblemStats("tiny", p)
	if s.Name != "tiny" || s.VA != 2 || s.VB != 2 || s.EL != 4 || s.NnzS != 4 {
		t.Fatalf("stats = %+v", s)
	}
	// Every L vertex has degree 2; every S row has one nonzero.
	if s.MaxLDegree != 2 || s.MeanLDegree != 2 {
		t.Fatalf("L degree stats %+v", s)
	}
	if s.MaxSRow != 1 || s.MeanSRow != 1 || s.Imbalance != 1 {
		t.Fatalf("S row stats %+v", s)
	}
}

func TestIdentityIndicatorPartialL(t *testing.T) {
	a := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	b := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	l, err := bipartite.New(3, 3, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 2, B: 1, W: 1}, // (1,1) and (2,2) absent
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(a, b, l, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := p.IdentityIndicator()
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if sum != 1 {
		t.Fatalf("identity indicator selected %g edges, want 1", sum)
	}
}

func TestTrackerKeepsBest(t *testing.T) {
	tr := &Tracker{Trace: true}
	tr.Offer(1, 5, &matching.Result{}, []float64{1, 2})
	tr.Offer(2, 3, &matching.Result{}, []float64{9, 9})
	tr.Offer(3, 7, &matching.Result{}, []float64{4, 5})
	if tr.BestObjective != 7 || tr.BestIter != 3 {
		t.Fatalf("best = %g at %d", tr.BestObjective, tr.BestIter)
	}
	if tr.BestHeuristic[0] != 4 || tr.BestHeuristic[1] != 5 {
		t.Fatalf("best heuristic = %v", tr.BestHeuristic)
	}
	if tr.Evaluations != 3 || len(tr.Objective) != 3 {
		t.Fatalf("evaluations/trace wrong: %d %d", tr.Evaluations, len(tr.Objective))
	}
	if !tr.HasBest() {
		t.Fatal("HasBest false")
	}
}

func TestTrackerCopiesHeuristic(t *testing.T) {
	tr := &Tracker{}
	h := []float64{1, 2, 3}
	tr.Offer(1, 10, &matching.Result{}, h)
	h[0] = 99
	if tr.BestHeuristic[0] != 1 {
		t.Fatal("tracker aliased the winning heuristic")
	}
}

func TestRoundHeuristicTiny(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	tr := &Tracker{}
	// Heuristic weights favoring the identity pair.
	heur := []float64{10, 0.1, 0.1, 10}
	obj, res, err := p.RoundHeuristic(heur, matching.Exact, 1, 1, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if res.MateA[0] != 0 || res.MateA[1] != 1 {
		t.Fatalf("rounding ignored the heuristic: %v", res.MateA)
	}
	// Objective of identity: αw'x + β/2 x'Sx = 2 + 2 = 4.
	if obj != 4 {
		t.Fatalf("objective = %g, want 4", obj)
	}
	if tr.BestObjective != 4 {
		t.Fatal("tracker missed the offer")
	}
}

func TestFinalRoundEmptyTracker(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	tr := &Tracker{}
	res, obj, err := p.FinalRound(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if obj < 0 {
		t.Fatalf("objective %g", obj)
	}
}

package core

import (
	"context"

	"netalignmc/internal/parallel"
)

// Partition selects how the solvers split their parallel index spaces
// across workers.
type Partition int

const (
	// PartitionBalanced (the default) derives contiguous per-worker
	// ranges of near-equal cumulative nonzero count once per problem
	// (see parallel.BalancedOffsets) and reuses them every iteration.
	// The paper's S-indexed loops are the motivating case: "the
	// non-zero distribution in S is highly irregular and imbalanced",
	// so equal index ranges leave one worker with the heavy rows while
	// chunked dynamic scheduling pays an atomic fetch-and-add per
	// chunk. A cost-balanced static partition gets the even split
	// without the shared counter.
	PartitionBalanced Partition = iota
	// PartitionChunked restores the legacy chunked scheduling: the
	// options' Sched policy for the S-indexed loops and chunked dynamic
	// for the row kernels.
	PartitionChunked
)

// String returns the partition policy name.
func (p Partition) String() string {
	if p == PartitionChunked {
		return "chunked"
	}
	return "balanced"
}

// partitionSet holds the balanced per-worker range boundaries of one
// (problem, worker count) pair, cached in the workspace so a solve
// derives them once and every iteration reuses them.
type partitionSet struct {
	prob    *Problem
	workers int
	view    *reorderView // S row layout the sRows offsets were built from
	sRows   []int        // rows of S (= edges of L), cost = row nnz
	lRows   []int        // V_A vertices of L, cost = degree
	lCols   []int        // V_B vertices of L, cost = degree
}

// ensureParts returns the workspace's partition set for (p, workers,
// view), rebuilding the offsets only when the problem, worker count,
// or S row layout changed. A non-nil view partitions S's rows in
// their reordered storage order (the order the sweeps walk them in).
func (ws *Workspace) ensureParts(p *Problem, workers int, view *reorderView) *partitionSet {
	ps := &ws.parts
	if ps.prob != p || ps.workers != workers || ps.view != view {
		ps.prob = p
		ps.workers = workers
		ps.view = view
		sPtr := p.S.Ptr
		if view != nil {
			sPtr = view.s.Ptr
		}
		ps.sRows = parallel.BalancedOffsetsFromPtr(sPtr, workers, ps.sRows)
		ps.lRows = parallel.BalancedOffsetsFromPtr(p.L.RowPtr, workers, ps.lRows)
		ps.lCols = parallel.BalancedOffsetsFromPtr(p.L.ColPtr, workers, ps.lCols)
	}
	return ps
}

// exec routes the solvers' parallel regions: onto the run's persistent
// worker pool (unless NoPool), with either the balanced per-problem
// partitions or the legacy chunked schedules (Partition). Every loop it
// dispatches writes disjoint indices elementwise, so the partitioning
// choice cannot change the solver output: results are bit-identical
// across pool on/off and balanced/chunked for a fixed thread count.
// Reductions are not routed here — they keep the free functions' fixed
// equal-split partition so their float combine order is stable.
type exec struct {
	pool     *parallel.Pool
	sched    parallel.Schedule
	threads  int
	chunk    int
	serial   bool
	balanced bool
	parts    *partitionSet
}

// newExec prepares the run's dispatcher: resolves the partition policy,
// derives (or reuses) the balanced offsets, and starts the per-run
// worker pool. The caller must close the exec when the solve ends.
func newExec(p *Problem, ws *Workspace, threads, chunk int, sched parallel.Schedule, part Partition, noPool bool, view *reorderView) *exec {
	e := &exec{sched: sched, threads: threads, chunk: chunk}
	t := parallel.Threads(threads)
	if t == 1 {
		e.serial = true
		return e
	}
	e.balanced = part == PartitionBalanced
	if e.balanced {
		e.parts = ws.ensureParts(p, t, view)
	}
	if !noPool {
		e.pool = parallel.NewPool(t)
	}
	return e
}

// close parks and releases the run's pool workers.
func (e *exec) close() {
	if e.pool != nil {
		e.pool.Close()
	}
}

// forNNZ runs an elementwise sweep over the nonzero index space (or any
// uniform-cost index space). Uniform cost makes the balanced partition
// the equal static split; chunked keeps the options' Sched policy.
func (e *exec) forNNZ(ctx context.Context, n int, body func(lo, hi int)) {
	switch {
	case e.serial:
		e.sched.ForCtx(ctx, n, e.threads, e.chunk, body)
	case e.balanced && e.pool != nil:
		e.pool.ForStaticCtx(ctx, n, e.threads, e.chunk, body)
	case e.balanced:
		parallel.ForStaticCtx(ctx, n, e.threads, e.chunk, body)
	case e.pool != nil:
		e.pool.ForSchedCtx(ctx, e.sched, n, e.threads, e.chunk, body)
	default:
		e.sched.ForCtx(ctx, n, e.threads, e.chunk, body)
	}
}

// forSRows runs body over the rows of S (the per-index cost is the row
// nonzero count), using the cached nnz-balanced row partition.
func (e *exec) forSRows(ctx context.Context, n int, body func(lo, hi int)) {
	switch {
	case e.serial:
		e.sched.ForCtx(ctx, n, e.threads, e.chunk, body)
	case e.balanced && e.pool != nil:
		e.pool.ForOffsetsCtx(ctx, e.parts.sRows, e.chunk, body)
	case e.balanced:
		parallel.ForOffsetsCtx(ctx, e.parts.sRows, e.chunk, body)
	case e.pool != nil:
		e.pool.ForSchedCtx(ctx, e.sched, n, e.threads, e.chunk, body)
	default:
		e.sched.ForCtx(ctx, n, e.threads, e.chunk, body)
	}
}

// forSRowsWorker is forSRows with a worker id for per-worker scratch.
// Scratch must be sized by rowWorkers(n), the single source of truth
// for how many distinct ids the body can observe.
func (e *exec) forSRowsWorker(n int, body func(worker, lo, hi int)) {
	switch {
	case e.serial:
		body(0, 0, n)
	case e.balanced && e.pool != nil:
		e.pool.ForOffsetsWorker(e.parts.sRows, body)
	case e.balanced:
		parallel.ForOffsetsWorker(e.parts.sRows, body)
	case e.pool != nil:
		e.pool.ForDynamicWorker(n, e.threads, e.chunk, body)
	default:
		parallel.ForDynamicWorker(n, e.threads, e.chunk, body)
	}
}

// rowWorkers reports how many distinct worker ids forSRowsWorker(n, ·)
// can hand out: the number callers must size per-worker scratch by.
// (Sizing by Threads overestimates when n is small relative to the
// chunk — the old contract bug — and underestimates nothing.)
func (e *exec) rowWorkers(n int) int {
	if e.serial {
		return 1
	}
	if e.balanced {
		return e.parts.workers
	}
	return parallel.PlannedWorkers(n, e.threads, e.chunk)
}

// forEdges runs an elementwise sweep over the edges of L. The cost is
// uniform, so the equal static split is already balanced; the pool only
// removes the per-region goroutine spawns.
func (e *exec) forEdges(n int, body func(lo, hi int)) {
	if e.pool != nil {
		e.pool.ForStatic(n, e.threads, body)
		return
	}
	parallel.ForStatic(n, e.threads, body)
}

// forLRows runs body over the V_A vertices of L (cost = degree) with
// the cached degree-balanced partition.
func (e *exec) forLRows(n int, body func(lo, hi int)) {
	e.forDegrees(n, body, func() []int { return e.parts.lRows })
}

// forLCols runs body over the V_B vertices of L (cost = degree).
func (e *exec) forLCols(n int, body func(lo, hi int)) {
	e.forDegrees(n, body, func() []int { return e.parts.lCols })
}

func (e *exec) forDegrees(n int, body func(lo, hi int), offs func() []int) {
	switch {
	case e.serial:
		if n > 0 {
			body(0, n)
		}
	case e.balanced && e.pool != nil:
		e.pool.ForOffsets(offs(), body)
	case e.balanced:
		parallel.ForOffsets(offs(), body)
	case e.pool != nil:
		e.pool.ForDynamic(n, e.threads, e.chunk, body)
	default:
		parallel.ForDynamic(n, e.threads, e.chunk, body)
	}
}

// runTasks dispatches coarse-grained task parallelism (othermax task
// mode, batched rounding) on the run pool when available.
func (e *exec) runTasks(tasks []func(threads int)) {
	if e.pool != nil {
		e.pool.Tasks(e.threads, tasks)
		return
	}
	parallel.Tasks(e.threads, tasks)
}

// runTasksCtx is runTasks with cooperative cancellation.
func (e *exec) runTasksCtx(ctx context.Context, tasks []func(threads int)) error {
	if e.pool != nil {
		return e.pool.TasksCtx(ctx, e.threads, tasks)
	}
	return parallel.TasksCtx(ctx, e.threads, tasks)
}

package core_test

import (
	"math"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/matching"
)

func TestBaselineRoundWeights(t *testing.T) {
	p := smallSynthetic(t, 3)
	res := p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineRoundWeights})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if res.Objective <= 0 {
		t.Fatalf("baseline objective %g", res.Objective)
	}
	// BP must beat or match the round-weights baseline — that is the
	// point of running the iteration at all.
	bp := p.BPAlign(core.BPOptions{Iterations: 25})
	if bp.Objective < res.Objective-1e-9 {
		t.Fatalf("BP %g below round-weights baseline %g", bp.Objective, res.Objective)
	}
}

func TestBaselineIsoRank(t *testing.T) {
	p := smallSynthetic(t, 5)
	res := p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineIsoRank, Iterations: 15})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if res.Objective <= 0 {
		t.Fatalf("isorank objective %g", res.Objective)
	}
	// Propagation should help overlap versus rounding raw weights on a
	// planted problem (identity edges reinforce each other through S).
	plain := p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineRoundWeights})
	if res.Overlap < 0.5*plain.Overlap {
		t.Fatalf("isorank overlap %g collapsed versus plain %g", res.Overlap, plain.Overlap)
	}
}

func TestBaselineApproxRounding(t *testing.T) {
	p := smallSynthetic(t, 7)
	res := p.BaselineAlign(core.BaselineOptions{
		Kind: core.BaselineIsoRank, Rounding: matching.Approx,
	})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineKindString(t *testing.T) {
	if core.BaselineRoundWeights.String() != "round-weights" ||
		core.BaselineIsoRank.String() != "isorank" ||
		core.BaselineNSD.String() != "nsd" {
		t.Fatal("baseline names wrong")
	}
}

func TestBaselineNSD(t *testing.T) {
	p := smallSynthetic(t, 31)
	res := p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineNSD, Iterations: 15})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if res.Objective <= 0 {
		t.Fatalf("NSD objective %g", res.Objective)
	}
	// Degree normalization must not collapse the planted signal.
	plain := p.BaselineAlign(core.BaselineOptions{Kind: core.BaselineRoundWeights})
	if res.Overlap < 0.5*plain.Overlap {
		t.Fatalf("NSD overlap %g collapsed vs plain %g", res.Overlap, plain.Overlap)
	}
}

func TestDampingVariants(t *testing.T) {
	p := smallSynthetic(t, 9)
	for _, d := range []core.Damping{core.DampPower, core.DampConstant, core.DampNone} {
		res := p.BPAlign(core.BPOptions{Iterations: 15, Damp: d, Gamma: 0.9})
		if err := res.Matching.Validate(p.L); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Objective <= 0 {
			t.Fatalf("%v: objective %g", d, res.Objective)
		}
	}
	if core.DampPower.String() != "power" || core.DampConstant.String() != "constant" || core.DampNone.String() != "none" {
		t.Fatal("damping names wrong")
	}
}

func TestMRGapEarlyStop(t *testing.T) {
	// On an easy planted instance MR's bounds close quickly; with a
	// loose tolerance the run must stop before the iteration cap and
	// still return a valid, good matching.
	p := smallSynthetic(t, 11)
	res := p.KlauAlign(core.MROptions{Iterations: 200, GapTolerance: 0.05})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Skip("instance did not converge within tolerance; not an error for a heuristic")
	}
	if res.ConvergedIter <= 0 || res.Iterations != res.ConvergedIter {
		t.Fatalf("converged at %d but Iterations = %d", res.ConvergedIter, res.Iterations)
	}
	if res.Iterations >= 200 {
		t.Fatalf("claimed convergence only at the cap (%d)", res.Iterations)
	}
}

func TestMRGapStopRespectsBounds(t *testing.T) {
	p := smallSynthetic(t, 13)
	res := p.KlauAlign(core.MROptions{Iterations: 60, GapTolerance: 1e-6, Trace: true})
	if res.Converged {
		// If the gap provably closed, the objective must equal the
		// final upper bound within tolerance.
		minUpper := math.Inf(1)
		for _, u := range res.Upper {
			if u < minUpper {
				minUpper = u
			}
		}
		if res.Objective < minUpper-1e-3*(1+math.Abs(minUpper)) {
			t.Fatalf("converged but objective %g far below upper bound %g", res.Objective, minUpper)
		}
	}
}

func TestMRGreedyRowMatch(t *testing.T) {
	p := smallSynthetic(t, 21)
	exact := p.KlauAlign(core.MROptions{Iterations: 15})
	greedy := p.KlauAlign(core.MROptions{Iterations: 15, GreedyRowMatch: true})
	if err := greedy.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	// Greedy rows give a valid run; on easy planted problems the
	// objective should stay in the same ballpark as exact rows.
	if greedy.Objective < 0.7*exact.Objective {
		t.Fatalf("greedy rows collapsed: %g vs %g", greedy.Objective, exact.Objective)
	}
}

func TestReportAndSteering(t *testing.T) {
	p := smallSynthetic(t, 17)
	res := p.BPAlign(core.BPOptions{Iterations: 20})

	// Reference = the planted identity matching.
	refA := make([]int, p.A.NumVertices())
	refB := make([]int, p.B.NumVertices())
	for i := range refA {
		refA[i] = i
	}
	for i := range refB {
		refB[i] = i
	}
	ref := matching.NewResult(p.L, refA, refB)

	rep := p.NewReport(res.Matching, ref, 1)
	if rep.Card != res.Matching.Card {
		t.Fatalf("report card %d != %d", rep.Card, res.Matching.Card)
	}
	if math.Abs(rep.Overlap-res.Overlap) > 1e-9 {
		t.Fatalf("report overlap %g != %g", rep.Overlap, res.Overlap)
	}
	if len(rep.OverlappedPairs) != int(rep.Overlap) {
		t.Fatalf("%d overlapped pairs listed but overlap = %g", len(rep.OverlappedPairs), rep.Overlap)
	}
	if rep.Precision <= 0 || rep.Recall <= 0 {
		t.Fatalf("precision/recall = %g/%g on a recovered planted problem", rep.Precision, rep.Recall)
	}
	if rep.EdgeCorrectness <= 0 || rep.EdgeCorrectness > 1 {
		t.Fatalf("edge correctness %g out of (0,1]", rep.EdgeCorrectness)
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}

	// Steering: remove the first matched candidate edge and re-solve;
	// the removed pair must not reappear.
	var removed int = -1
	for a, b := range res.Matching.MateA {
		if b >= 0 {
			if e, ok := p.L.Find(a, b); ok {
				removed = e
				break
			}
		}
	}
	if removed < 0 {
		t.Fatal("no matched edge to remove")
	}
	ra, rb := p.L.EdgeA[removed], p.L.EdgeB[removed]
	p2, err := p.RemoveCandidates([]int{removed}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p2.L.NumEdges() != p.L.NumEdges()-1 {
		t.Fatalf("removal kept %d edges", p2.L.NumEdges())
	}
	res2 := p2.BPAlign(core.BPOptions{Iterations: 15})
	if res2.Matching.MateA[ra] == rb {
		t.Fatal("removed candidate reappeared in the new solution")
	}
	if _, err := p.RemoveCandidates([]int{-1}, 1); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
}

func TestBPWarmStart(t *testing.T) {
	p := smallSynthetic(t, 33)
	// Capture the final messages of a first solve via the observer.
	var lastY, lastZ []float64
	first := p.BPAlign(core.BPOptions{
		Iterations: 25,
		Observer: func(iter int, y, z []float64) {
			lastY = append(lastY[:0], y...)
			lastZ = append(lastZ[:0], z...)
		},
	})

	// Steering edit: drop one candidate, transfer the messages.
	e, ok := p.L.Find(1, 1)
	if !ok {
		t.Skip("no identity edge to remove")
	}
	p2, err := p.RemoveCandidates([]int{e}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wy, err := core.TransferEdgeVector(p, p2, lastY)
	if err != nil {
		t.Fatal(err)
	}
	wz, err := core.TransferEdgeVector(p, p2, lastZ)
	if err != nil {
		t.Fatal(err)
	}
	warm := p2.BPAlign(core.BPOptions{Iterations: 6, WarmY: wy, WarmZ: wz})
	cold := p2.BPAlign(core.BPOptions{Iterations: 6})
	if err := warm.Matching.Validate(p2.L); err != nil {
		t.Fatal(err)
	}
	// Warm start must reach at least the cold quality in the same
	// (short) budget on this easy instance.
	if warm.Objective < cold.Objective-1e-9 {
		t.Fatalf("warm %g below cold %g", warm.Objective, cold.Objective)
	}
	// Sanity: the first solve was good.
	if first.Objective <= 0 {
		t.Fatal("first solve degenerate")
	}

	// Length validation of the transfer helper.
	if _, err := core.TransferEdgeVector(p, p2, []float64{1}); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestPinCandidates(t *testing.T) {
	p := smallSynthetic(t, 19)
	// Pin the identity candidate of vertex 0.
	e, ok := p.L.Find(0, 0)
	if !ok {
		t.Skip("no identity edge for vertex 0")
	}
	p2, err := p.PinCandidates([]int{e}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 of A must now have exactly one candidate.
	if p2.L.DegreeA(0) != 1 {
		t.Fatalf("pinned vertex has %d candidates", p2.L.DegreeA(0))
	}
	res := p2.BPAlign(core.BPOptions{Iterations: 15})
	if res.Matching.MateA[0] != 0 && res.Matching.MateA[0] != -1 {
		t.Fatalf("pinned vertex matched to %d", res.Matching.MateA[0])
	}
	if _, err := p.PinCandidates([]int{99999999}, 1); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
}

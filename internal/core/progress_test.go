package core

import (
	"testing"
)

func TestProgressReporterBP(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	var events []ProgressEvent
	rep := NewProgressReporter(p, 1, func(ev ProgressEvent) { events = append(events, ev) })
	res := p.BPAlign(BPOptions{Iterations: 6, Threads: 1, Observer: rep.BPObserver()})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	for i, ev := range events {
		if ev.Method != "bp" || ev.Iter != i+1 || ev.HasUpper {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
		if ev.Best < ev.Objective {
			t.Fatalf("best %g below objective %g", ev.Best, ev.Objective)
		}
	}
	// The observer-side rounding must not perturb the solve.
	plain := p.BPAlign(BPOptions{Iterations: 6, Threads: 1})
	if plain.Objective != res.Objective {
		t.Fatalf("observer changed the objective: %v vs %v", res.Objective, plain.Objective)
	}
}

func TestProgressReporterMREvery(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	var events []ProgressEvent
	rep := NewProgressReporter(p, 2, func(ev ProgressEvent) { events = append(events, ev) })
	res := p.KlauAlign(MROptions{Iterations: 7, Threads: 1, Observer: rep.MRObserver()})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Iterations 2, 4, 6 report (every=2).
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for _, ev := range events {
		if ev.Method != "mr" || !ev.HasUpper || ev.Iter%2 != 0 {
			t.Fatalf("event malformed: %+v", ev)
		}
		if ev.Upper < ev.Objective-1e-9 {
			t.Fatalf("upper bound %g below objective %g", ev.Upper, ev.Objective)
		}
	}
}

package core_test

// Matrix test for the scheduling overhaul: the worker pool and the
// nnz-balanced partitions are pure dispatch rewires, so for a fixed
// thread count the solver output must be bitwise identical across
// {pool on, pool off} x {balanced, chunked} — objective AND the
// alignment itself. Across thread counts only float reduction order
// can differ, so objectives are compared there to 1e-9.

import (
	"fmt"
	"math"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/matching"
)

func TestPoolPartitionMatrixBP(t *testing.T) {
	p := smallSynthetic(t, 107)
	poolPartitionMatrix(t, p, func(threads int, part core.Partition, noPool bool) *core.AlignResult {
		return p.BPAlign(core.BPOptions{
			Iterations: 10, Threads: threads, Chunk: 16,
			Partition: part, NoPool: noPool,
			Matcher: matching.MatcherSpec{Name: "approx"},
		})
	})
}

func TestPoolPartitionMatrixMR(t *testing.T) {
	p := smallSynthetic(t, 109)
	poolPartitionMatrix(t, p, func(threads int, part core.Partition, noPool bool) *core.AlignResult {
		return p.KlauAlign(core.MROptions{
			Iterations: 10, Threads: threads, Chunk: 16,
			Partition: part, NoPool: noPool,
			Matcher: matching.MatcherSpec{Name: "approx"},
		})
	})
}

func poolPartitionMatrix(t *testing.T, p *core.Problem, solve func(threads int, part core.Partition, noPool bool) *core.AlignResult) {
	t.Helper()
	var crossThreadRef float64
	for _, threads := range []int{1, 2, 4, 8} {
		var refObj uint64
		var refMate []int
		var refName string
		for _, noPool := range []bool{false, true} {
			for _, part := range []core.Partition{core.PartitionBalanced, core.PartitionChunked} {
				name := fmt.Sprintf("threads=%d/noPool=%v/partition=%v", threads, noPool, part)
				r := solve(threads, part, noPool)
				if err := r.Matching.Validate(p.L); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if refMate == nil {
					refObj = math.Float64bits(r.Objective)
					refMate = r.Matching.MateA
					refName = name
					continue
				}
				if math.Float64bits(r.Objective) != refObj {
					t.Fatalf("%s: objective %v not bitwise equal to %s's %v (pool/partition must not change results)",
						name, r.Objective, refName, math.Float64frombits(refObj))
				}
				if len(r.Matching.MateA) != len(refMate) {
					t.Fatalf("%s: mate length %d != %d", name, len(r.Matching.MateA), len(refMate))
				}
				for i := range refMate {
					if r.Matching.MateA[i] != refMate[i] {
						t.Fatalf("%s: mateA[%d] = %d, %s has %d", name, i, r.Matching.MateA[i], refName, refMate[i])
					}
				}
			}
		}
		obj := math.Float64frombits(refObj)
		if threads == 1 {
			crossThreadRef = obj
		} else if math.Abs(obj-crossThreadRef) > 1e-9 {
			t.Fatalf("threads=%d: objective %g deviates from 1-thread %g", threads, obj, crossThreadRef)
		}
	}
}

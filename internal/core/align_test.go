package core_test

import (
	"math"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
	"netalignmc/internal/stats"
)

// smallSynthetic builds a modest planted problem that both methods can
// solve well: 60-node power-law base, d̄ = 3 noise candidates.
func smallSynthetic(t testing.TB, seed int64) *core.Problem {
	t.Helper()
	o := gen.DefaultSynthetic(3, seed)
	o.N = 60
	o.MaxDeg = 12
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKlauAlignRecoversPlantedAlignment(t *testing.T) {
	p := smallSynthetic(t, 7)
	res := p.KlauAlign(core.MROptions{Iterations: 40, Threads: 2})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	idObj := p.Objective(p.IdentityIndicator(), 1)
	if res.Objective < 0.85*idObj {
		t.Fatalf("MR objective %g < 85%% of identity objective %g", res.Objective, idObj)
	}
	if frac := core.CorrectMatchFraction(res.Matching); frac < 0.7 {
		t.Fatalf("MR recovered only %.0f%% of planted matches", frac*100)
	}
	if res.Iterations != 40 {
		t.Fatalf("Iterations = %d", res.Iterations)
	}
	if res.Evaluations != 40 {
		t.Fatalf("Evaluations = %d, want one per iteration", res.Evaluations)
	}
}

func TestBPAlignRecoversPlantedAlignment(t *testing.T) {
	p := smallSynthetic(t, 7)
	res := p.BPAlign(core.BPOptions{Iterations: 40, Threads: 2})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	idObj := p.Objective(p.IdentityIndicator(), 1)
	if res.Objective < 0.85*idObj {
		t.Fatalf("BP objective %g < 85%% of identity objective %g", res.Objective, idObj)
	}
	if frac := core.CorrectMatchFraction(res.Matching); frac < 0.7 {
		t.Fatalf("BP recovered only %.0f%% of planted matches", frac*100)
	}
	// BP rounds both y and z each iteration.
	if res.Evaluations != 80 {
		t.Fatalf("Evaluations = %d, want 80", res.Evaluations)
	}
}

func TestBPApproxMatchesExactQuality(t *testing.T) {
	// The paper's central claim (Fig 2): BP with approximate rounding
	// is nearly indistinguishable from BP with exact rounding, because
	// the iterates do not depend on the matcher.
	p := smallSynthetic(t, 11)
	exact := p.BPAlign(core.BPOptions{Iterations: 30, Rounding: matching.Exact})
	approx := p.BPAlign(core.BPOptions{Iterations: 30, Rounding: matching.Approx})
	if approx.Objective < 0.9*exact.Objective {
		t.Fatalf("BP approx objective %g far below exact %g", approx.Objective, exact.Objective)
	}
}

func TestBPIteratesIndependentOfMatcher(t *testing.T) {
	// Stronger: the traced objective sequence may differ, but the final
	// exact-rounded objective derives from iterates that are identical;
	// verify by tracing both and comparing the best heuristic's exact
	// rounding (they used the same iterate stream).
	p := smallSynthetic(t, 13)
	a := p.BPAlign(core.BPOptions{Iterations: 25, Rounding: matching.Exact, Trace: true})
	b := p.BPAlign(core.BPOptions{Iterations: 25, Rounding: matching.Approx, Trace: true})
	if len(a.ObjectiveTrace) != len(b.ObjectiveTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.ObjectiveTrace), len(b.ObjectiveTrace))
	}
	// Each approx evaluation is at most the exact one (same heuristic
	// vector, half-approx matcher) up to overlap effects; check the
	// final objectives are close.
	if math.Abs(a.Objective-b.Objective) > 0.25*math.Abs(a.Objective)+1e-9 {
		t.Fatalf("exact %g vs approx %g diverge beyond tolerance", a.Objective, b.Objective)
	}
}

func TestBPBatchEquivalence(t *testing.T) {
	// Batched rounding changes scheduling, not results: the tracked
	// best objective must be identical for batch sizes 1, 10, 20 with
	// a deterministic matcher.
	p := smallSynthetic(t, 17)
	base := p.BPAlign(core.BPOptions{Iterations: 20, Batch: 1})
	for _, batch := range []int{2, 10, 20} {
		r := p.BPAlign(core.BPOptions{Iterations: 20, Batch: batch})
		if math.Abs(r.Objective-base.Objective) > 1e-9 {
			t.Fatalf("batch=%d objective %g != batch=1 objective %g", batch, r.Objective, base.Objective)
		}
		if r.Evaluations != base.Evaluations {
			t.Fatalf("batch=%d evaluations %d != %d", batch, r.Evaluations, base.Evaluations)
		}
	}
}

func TestBPTaskParallelOthermaxEquivalent(t *testing.T) {
	p := smallSynthetic(t, 19)
	a := p.BPAlign(core.BPOptions{Iterations: 15, TaskParallelOthermax: false})
	b := p.BPAlign(core.BPOptions{Iterations: 15, TaskParallelOthermax: true, Threads: 4})
	if math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("task-parallel othermax changed result: %g vs %g", a.Objective, b.Objective)
	}
}

func TestKlauApproxDegradesOrMatches(t *testing.T) {
	// Fig 2's other half: MR is sensitive to approximate rounding; at
	// minimum the approx variant must stay a valid matching and not
	// beat exact by more than numerical noise on average. We assert
	// validity and that exact MR is at least as good on this instance.
	p := smallSynthetic(t, 23)
	exact := p.KlauAlign(core.MROptions{Iterations: 30})
	approx := p.KlauAlign(core.MROptions{Iterations: 30, Rounding: matching.Approx})
	if err := approx.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if approx.Objective > exact.Objective*1.05+1e-9 {
		t.Fatalf("approx MR %g implausibly beats exact MR %g", approx.Objective, exact.Objective)
	}
}

func TestMRUpperBoundsAboveLower(t *testing.T) {
	p := smallSynthetic(t, 29)
	res := p.KlauAlign(core.MROptions{Iterations: 20, Trace: true})
	if len(res.Upper) != 20 || len(res.Lower) != 20 {
		t.Fatalf("trace lengths %d/%d", len(res.Upper), len(res.Lower))
	}
	for i := range res.Upper {
		if res.Upper[i] < res.Lower[i]-1e-6 {
			t.Fatalf("iteration %d: upper bound %g below lower bound %g", i, res.Upper[i], res.Lower[i])
		}
	}
}

func TestMRUpperBoundAboveOptimum(t *testing.T) {
	// The Lagrangian upper bound must dominate every feasible
	// objective, in particular the identity alignment's.
	p := smallSynthetic(t, 31)
	res := p.KlauAlign(core.MROptions{Iterations: 15, Trace: true})
	idObj := p.Objective(p.IdentityIndicator(), 1)
	minUpper := math.Inf(1)
	for _, u := range res.Upper {
		if u < minUpper {
			minUpper = u
		}
	}
	if minUpper < idObj-1e-6 {
		t.Fatalf("MR upper bound %g below feasible objective %g", minUpper, idObj)
	}
}

func TestStepTimersRecordAllSteps(t *testing.T) {
	p := smallSynthetic(t, 37)
	mrTimer := stats.NewStepTimer()
	p.KlauAlign(core.MROptions{Iterations: 5, Timer: mrTimer})
	for _, step := range []string{core.MRStepRowMatch, core.MRStepDaxpy, core.MRStepMatch, core.MRStepObjective, core.MRStepUpdateU} {
		if mrTimer.Count(step) != 5 {
			t.Fatalf("MR step %q recorded %d times, want 5", step, mrTimer.Count(step))
		}
	}
	bpTimer := stats.NewStepTimer()
	p.BPAlign(core.BPOptions{Iterations: 5, Batch: 4, Timer: bpTimer})
	for _, step := range []string{core.BPStepBoundF, core.BPStepComputeD, core.BPStepOthermax, core.BPStepUpdateS, core.BPStepDamping} {
		if bpTimer.Count(step) != 5 {
			t.Fatalf("BP step %q recorded %d times, want 5", step, bpTimer.Count(step))
		}
	}
	if bpTimer.Count(core.BPStepMatch) == 0 {
		t.Fatal("BP matching step never recorded")
	}
}

func TestBPDampingConvergesIterates(t *testing.T) {
	// With γ close to 0 the damping freezes the iterates immediately;
	// the run must still produce a valid matching.
	p := smallSynthetic(t, 41)
	res := p.BPAlign(core.BPOptions{Iterations: 10, Gamma: 0.01})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
}

func TestAlignResultFieldsConsistent(t *testing.T) {
	p := smallSynthetic(t, 43)
	res := p.BPAlign(core.BPOptions{Iterations: 10})
	wantObj := p.Alpha*res.MatchWeight + p.Beta*res.Overlap
	if math.Abs(res.Objective-wantObj) > 1e-9 {
		t.Fatalf("objective %g != α·weight + β·overlap = %g", res.Objective, wantObj)
	}
	if res.Overlap < 0 || res.MatchWeight < 0 {
		t.Fatal("negative components")
	}
}

func TestThreadCountInvariance(t *testing.T) {
	// With the deterministic exact matcher, results must not depend on
	// the thread count for either method.
	p := smallSynthetic(t, 47)
	mr1 := p.KlauAlign(core.MROptions{Iterations: 12, Threads: 1})
	mr4 := p.KlauAlign(core.MROptions{Iterations: 12, Threads: 4, Chunk: 8})
	if math.Abs(mr1.Objective-mr4.Objective) > 1e-9 {
		t.Fatalf("MR thread variance: %g vs %g", mr1.Objective, mr4.Objective)
	}
	bp1 := p.BPAlign(core.BPOptions{Iterations: 12, Threads: 1})
	bp4 := p.BPAlign(core.BPOptions{Iterations: 12, Threads: 4, Chunk: 8, Batch: 4})
	if math.Abs(bp1.Objective-bp4.Objective) > 1e-9 {
		t.Fatalf("BP thread variance: %g vs %g", bp1.Objective, bp4.Objective)
	}
}

func TestSkipFinalExact(t *testing.T) {
	p := smallSynthetic(t, 53)
	r := p.BPAlign(core.BPOptions{Iterations: 8, SkipFinalExact: true})
	if err := r.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKlauIteration(b *testing.B) {
	o := gen.DefaultSynthetic(5, 3)
	o.N = 200
	p, err := gen.Synthetic(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.KlauAlign(core.MROptions{Iterations: 1, SkipFinalExact: true})
	}
}

func BenchmarkBPIteration(b *testing.B) {
	o := gen.DefaultSynthetic(5, 3)
	o.N = 200
	p, err := gen.Synthetic(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BPAlign(core.BPOptions{Iterations: 1, SkipFinalExact: true})
	}
}

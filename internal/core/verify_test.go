package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestVerifyHealthyProblem(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	if err := p.Verify(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(50, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruptedS(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	// Inject a wrong value.
	p.S.Val[0] = 2
	if err := p.Verify(0, nil); err == nil {
		t.Fatal("corrupted S value accepted")
	}
	p.S.Val[0] = 1

	// Inject a wrong permutation.
	old := p.SPerm[0]
	p.SPerm[0] = p.SPerm[1]
	if err := p.Verify(0, nil); err == nil {
		t.Fatal("corrupted permutation accepted")
	}
	p.SPerm[0] = old

	// Inject a structural lie: move a column index so S disagrees
	// with the overlap definition.
	oldCol := p.S.Col[0]
	for c := 0; c < p.S.NumCols; c++ {
		if c != oldCol && c != p.SRow[0] {
			// keep sortedness plausible for a 4-column matrix by
			// rebuilding Col[0] only when it stays sorted
			p.S.Col[0] = c
			break
		}
	}
	if err := p.Verify(0, nil); err == nil {
		t.Fatal("corrupted S structure accepted")
	}
	p.S.Col[0] = oldCol

	if err := p.Verify(0, nil); err != nil {
		t.Fatalf("restoration failed: %v", err)
	}
}

func TestVerifyCatchesNonFiniteWeights(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	old := p.L.W[0]
	p.L.W[0] = math.NaN()
	if err := p.Verify(0, nil); err == nil {
		t.Fatal("NaN weight accepted")
	}
	p.L.W[0] = math.Inf(1)
	if err := p.Verify(0, nil); err == nil {
		t.Fatal("Inf weight accepted")
	}
	p.L.W[0] = old
}

func TestVerifyEmptyProblem(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	p2, err := p.RemoveCandidates([]int{0, 1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Verify(0, nil); err != nil {
		t.Fatalf("empty L should verify: %v", err)
	}
}

package core_test

import (
	"context"
	"sync"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
)

// TestConcurrentSolvesMatchSerial mirrors the netalignd worker pool:
// several independent solver runs execute concurrently (including
// several runs over the same shared Problem) and every result must be
// identical to the serial run. Under -race this also proves Problem is
// safe to share read-only across solves.
func TestConcurrentSolvesMatchSerial(t *testing.T) {
	type job struct {
		p      *core.Problem
		method string
	}
	var jobs []job
	for seed := int64(1); seed <= 3; seed++ {
		o := gen.DefaultSynthetic(3, seed)
		o.N = 50
		p, err := gen.Synthetic(o)
		if err != nil {
			t.Fatal(err)
		}
		// Two jobs share each problem: one per method.
		jobs = append(jobs, job{p, "bp"}, job{p, "mr"})
	}

	run := func(j job) *core.AlignResult {
		if j.method == "bp" {
			res, err := j.p.BPAlignCtx(context.Background(), core.BPOptions{
				Iterations: 12, Threads: 1, Rounding: matching.Approx,
			})
			if err != nil {
				t.Error(err)
			}
			return res
		}
		res, err := j.p.MRAlignCtx(context.Background(), core.MROptions{
			Iterations: 12, Threads: 1, Rounding: matching.Approx,
		})
		if err != nil {
			t.Error(err)
		}
		return res
	}

	serial := make([]*core.AlignResult, len(jobs))
	for i, j := range jobs {
		serial[i] = run(j)
	}

	// Each job runs three times concurrently, all in flight at once.
	const replicas = 3
	results := make([][]*core.AlignResult, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		results[i] = make([]*core.AlignResult, replicas)
		for r := 0; r < replicas; r++ {
			wg.Add(1)
			go func(i, r int, j job) {
				defer wg.Done()
				results[i][r] = run(j)
			}(i, r, j)
		}
	}
	wg.Wait()

	for i := range jobs {
		for r := 0; r < replicas; r++ {
			got := results[i][r]
			if got == nil {
				t.Fatalf("job %d replica %d returned nil", i, r)
			}
			if got.Objective != serial[i].Objective {
				t.Errorf("job %d replica %d: objective %v, serial %v",
					i, r, got.Objective, serial[i].Objective)
			}
			if len(got.Matching.MateA) != len(serial[i].Matching.MateA) {
				t.Fatalf("job %d replica %d: mate length mismatch", i, r)
			}
			for a, b := range got.Matching.MateA {
				if serial[i].Matching.MateA[a] != b {
					t.Errorf("job %d replica %d: MateA[%d] = %d, serial %d",
						i, r, a, b, serial[i].Matching.MateA[a])
					break
				}
			}
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netalignmc/internal/bipartite"
)

// bruteOthermaxRow computes othermaxrow by definition for validation.
func bruteOthermaxRow(g []float64, l *bipartite.Graph) []float64 {
	out := make([]float64, l.NumEdges())
	for a := 0; a < l.NA; a++ {
		lo, hi := l.RowRange(a)
		for e := lo; e < hi; e++ {
			best := math.Inf(-1)
			for e2 := lo; e2 < hi; e2++ {
				if e2 == e {
					continue
				}
				if g[e2] > best {
					best = g[e2]
				}
			}
			if best < 0 {
				best = 0
			}
			out[e] = best
		}
	}
	return out
}

func bruteOthermaxCol(g []float64, l *bipartite.Graph) []float64 {
	out := make([]float64, l.NumEdges())
	for b := 0; b < l.NB; b++ {
		edges := l.ColEdgesOf(b)
		for _, e := range edges {
			best := math.Inf(-1)
			for _, e2 := range edges {
				if e2 == e {
					continue
				}
				if g[e2] > best {
					best = g[e2]
				}
			}
			if best < 0 {
				best = 0
			}
			out[e] = best
		}
	}
	return out
}

func randomL(rng *rand.Rand, na, nb int, density float64) *bipartite.Graph {
	var edges []bipartite.WeightedEdge
	for a := 0; a < na; a++ {
		for b := 0; b < nb; b++ {
			if rng.Float64() < density {
				edges = append(edges, bipartite.WeightedEdge{A: a, B: b, W: rng.Float64()})
			}
		}
	}
	l, err := bipartite.New(na, nb, edges)
	if err != nil {
		panic(err)
	}
	return l
}

func TestOthermaxRowSmall(t *testing.T) {
	// Row of vertex 0 has weights 3, 1, 2: argmax gets second (2),
	// others get max (3).
	l, err := bipartite.New(1, 3, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 0, B: 2, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := []float64{3, 1, 2}
	dst := make([]float64, 3)
	othermaxRowsInto(dst, g, l, 1, 1)
	want := []float64{2, 3, 3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("othermaxrow = %v, want %v", dst, want)
		}
	}
}

func TestOthermaxSingleEdgeRowClampsToZero(t *testing.T) {
	l, err := bipartite.New(1, 1, []bipartite.WeightedEdge{{A: 0, B: 0, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dst := []float64{99}
	othermaxRowsInto(dst, []float64{-5}, l, 1, 1)
	if dst[0] != 0 {
		t.Fatalf("single-edge row gave %g, want 0 (bound of empty max)", dst[0])
	}
}

func TestOthermaxNegativeClamp(t *testing.T) {
	l, err := bipartite.New(1, 2, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2)
	othermaxRowsInto(dst, []float64{-3, -7}, l, 1, 1)
	// Other max of edge 0 is -7 -> clamp 0; of edge 1 is -3 -> clamp 0.
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("negative othermax not clamped: %v", dst)
	}
}

func TestOthermaxTies(t *testing.T) {
	l, err := bipartite.New(1, 3, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 0, B: 2, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 3)
	othermaxRowsInto(dst, []float64{5, 5, 1}, l, 1, 1)
	// Every edge's "other max" is 5 (the tie survives exclusion).
	if dst[0] != 5 || dst[1] != 5 || dst[2] != 5 {
		t.Fatalf("tied othermax wrong: %v", dst)
	}
}

func TestQuickOthermaxMatchesBrute(t *testing.T) {
	f := func(seed int64, naRaw, nbRaw, thrRaw uint8) bool {
		na := int(naRaw)%10 + 1
		nb := int(nbRaw)%10 + 1
		threads := int(thrRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		l := randomL(rng, na, nb, 0.5)
		g := make([]float64, l.NumEdges())
		for i := range g {
			g[i] = rng.NormFloat64() * 3
		}
		gotR := make([]float64, len(g))
		gotC := make([]float64, len(g))
		othermaxRowsInto(gotR, g, l, threads, 2)
		othermaxColsInto(gotC, g, l, threads, 2)
		wantR := bruteOthermaxRow(g, l)
		wantC := bruteOthermaxCol(g, l)
		for i := range g {
			if math.Abs(gotR[i]-wantR[i]) > 1e-12 || math.Abs(gotC[i]-wantC[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBPSanityCheckHelper(t *testing.T) {
	if !bpSanityCheck([]float64{1, -2, 0}) {
		t.Fatal("finite values flagged")
	}
	if bpSanityCheck([]float64{math.NaN()}) || bpSanityCheck([]float64{math.Inf(1)}) {
		t.Fatal("non-finite values accepted")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !almostEqual(1, 1+1e-12) || almostEqual(1, 1.1) {
		t.Fatal("almostEqual wrong")
	}
}

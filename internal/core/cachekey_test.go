package core

import (
	"testing"

	"netalignmc/internal/matching"
)

func TestCacheFingerprintResolvesDefaults(t *testing.T) {
	zero, ok := Options{}.CacheFingerprint()
	if !ok {
		t.Fatal("zero options not cacheable")
	}
	explicit, ok := Options{BP: BPOptions{Iterations: 100, Gamma: 0.99, Batch: 1}}.CacheFingerprint()
	if !ok {
		t.Fatal("explicit defaults not cacheable")
	}
	if zero != explicit {
		t.Errorf("unset defaults fingerprint %q != explicit defaults %q", zero, explicit)
	}
}

func TestCacheFingerprintSensitivity(t *testing.T) {
	base := Options{BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2}}
	fp := func(o Options) string {
		t.Helper()
		s, ok := o.CacheFingerprint()
		if !ok {
			t.Fatalf("options unexpectedly not cacheable: %+v", o)
		}
		return s
	}
	ref := fp(base)

	// Output-affecting changes must change the fingerprint.
	changed := map[string]Options{
		"method":    {Method: MethodMR, MR: MROptions{Iterations: 50, Gamma: 0.9}},
		"iters":     {BP: BPOptions{Iterations: 51, Gamma: 0.9, Batch: 2}},
		"gamma":     {BP: BPOptions{Iterations: 50, Gamma: 0.8, Batch: 2}},
		"batch":     {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 4}},
		"damp":      {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, Damp: DampConstant}},
		"matcher":   {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, Matcher: matching.MatcherSpec{Name: "approx"}}},
		"skipfinal": {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, SkipFinalExact: true}},
		"guard":     {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, GuardLimit: 1e50}},
	}
	for name, o := range changed {
		if got := fp(o); got == ref {
			t.Errorf("changing %s did not change the fingerprint %q", name, got)
		}
	}

	// Dispatch-layer and instrumentation changes must not.
	same := map[string]Options{
		"threads":   {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, Threads: 8}},
		"chunk":     {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, Chunk: 64}},
		"partition": {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, Partition: PartitionChunked}},
		"nopool":    {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, NoPool: true}},
		"fused":     {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, FuseKernels: true}},
		"trace":     {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2, Trace: true}},
		"observer": {BP: BPOptions{Iterations: 50, Gamma: 0.9, Batch: 2,
			Observer: func(int, []float64, []float64) {}}},
	}
	for name, o := range same {
		if got := fp(o); got != ref {
			t.Errorf("changing %s changed the fingerprint: %q != %q", name, got, ref)
		}
	}
}

func TestCacheFingerprintNotCacheable(t *testing.T) {
	cases := map[string]Options{
		"rounding func": {BP: BPOptions{Rounding: matching.Approx}},
		"warm start":    {BP: BPOptions{WarmY: []float64{1}, WarmZ: []float64{1}}},
		"resume":        {BP: BPOptions{Resume: &Checkpoint{}}},
		"mr rounding":   {Method: MethodMR, MR: MROptions{Rounding: matching.Approx}},
		"mr resume":     {Method: MethodMR, MR: MROptions{Resume: &Checkpoint{}}},
	}
	for name, o := range cases {
		if fp, ok := o.CacheFingerprint(); ok {
			t.Errorf("%s: unexpectedly cacheable as %q", name, fp)
		}
	}
}

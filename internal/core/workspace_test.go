package core_test

// Tests for the PR's two hot-path claims:
//
//  1. Zero allocation: with a warm Workspace, Threads=1 and a reusable
//     matcher spec, the per-iteration allocation count of a solve is
//     exactly zero. Measured by the delta method — allocations of a
//     2N-iteration solve minus an N-iteration solve — so per-solve
//     constants (tracker, option copies, hoisted closures) cancel and
//     only per-iteration costs remain.
//  2. Bit identity: the fused othermax+damping kernels produce bitwise
//     identical message iterates and results to the unfused path,
//     across the batch/threads/damping/schedule option axes.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
)

// allocsPerIter measures the per-iteration allocation count of solve
// by the delta method.
func allocsPerIter(t *testing.T, solve func(iters int)) float64 {
	t.Helper()
	const n = 8
	base := testing.AllocsPerRun(3, func() { solve(n) })
	double := testing.AllocsPerRun(3, func() { solve(2 * n) })
	return (double - base) / n
}

func TestBPSteadyStateZeroAlloc(t *testing.T) {
	p := smallSynthetic(t, 101)
	ws := core.NewWorkspace()
	for _, fused := range []bool{false, true} {
		solve := func(iters int) {
			res, err := p.Align(context.Background(), core.Options{Method: core.MethodBP, BP: core.BPOptions{
				Iterations: iters, Threads: 1, Batch: 1,
				Matcher:     matching.MatcherSpec{Name: "approx"},
				Workspace:   ws,
				FuseKernels: fused,
				SkipFinalExact: true,
			}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Matching == nil {
				t.Fatal("no matching")
			}
		}
		solve(4) // warm the workspace and matcher scratch
		if got := allocsPerIter(t, solve); got != 0 {
			t.Errorf("fused=%v: BP iteration allocates %.2f objects/iter, want 0", fused, got)
		}
	}
}

func TestMRSteadyStateZeroAlloc(t *testing.T) {
	p := smallSynthetic(t, 102)
	ws := core.NewWorkspace()
	solve := func(iters int) {
		res, err := p.Align(context.Background(), core.Options{Method: core.MethodMR, MR: core.MROptions{
			Iterations: iters, Threads: 1,
			Matcher:        matching.MatcherSpec{Name: "approx"},
			Workspace:      ws,
			SkipFinalExact: true,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matching == nil {
			t.Fatal("no matching")
		}
	}
	solve(4)
	if got := allocsPerIter(t, solve); got != 0 {
		t.Errorf("MR iteration allocates %.2f objects/iter, want 0", got)
	}
}

// TestPooledSteadyStateLowAlloc pins the pool's point: multi-thread
// iterations stop paying per-region goroutine spawns, so a warm
// pooled solve stays under one allocation per iteration even at
// Threads=4 (the remaining fraction is the occasional shared-pool
// fallback inside reductions). Measured by the same delta method as
// the Threads=1 zero-alloc tests.
func TestPooledSteadyStateLowAlloc(t *testing.T) {
	p := smallSynthetic(t, 105)
	ws := core.NewWorkspace()
	solves := map[string]func(iters int){
		"bp-batch20": func(iters int) {
			_, err := p.Align(context.Background(), core.Options{Method: core.MethodBP, BP: core.BPOptions{
				Iterations: iters, Threads: 4, Batch: 20,
				Matcher:        matching.MatcherSpec{Name: "approx"},
				Workspace:      ws,
				SkipFinalExact: true,
			}})
			if err != nil {
				t.Fatal(err)
			}
		},
		"mr": func(iters int) {
			_, err := p.Align(context.Background(), core.Options{Method: core.MethodMR, MR: core.MROptions{
				Iterations: iters, Threads: 4,
				Matcher:        matching.MatcherSpec{Name: "approx"},
				Workspace:      ws,
				SkipFinalExact: true,
			}})
			if err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, solve := range solves {
		solve(4) // warm the workspace and matcher scratch
		if got := allocsPerIter(t, solve); got >= 1 {
			t.Errorf("%s: pooled 4-thread iteration allocates %.2f objects/iter, want < 1", name, got)
		}
	}
}

// TestFusedKernelsBitIdentical pins the fusion contract: identical
// float operations in identical order, so the damped message iterates
// (and everything downstream) are bitwise equal, not merely close.
func TestFusedKernelsBitIdentical(t *testing.T) {
	p := smallSynthetic(t, 103)
	for _, threads := range []int{1, 3} {
		for _, batch := range []int{1, 4} {
			for _, damp := range []core.Damping{core.DampPower, core.DampConstant, core.DampNone} {
				for _, sched := range []parallel.Schedule{parallel.Dynamic, parallel.Static} {
					name := fmt.Sprintf("threads=%d/batch=%d/damp=%v/%v", threads, batch, damp, sched)
					run := func(fused bool) ([]uint64, *core.AlignResult) {
						var bits []uint64
						res := p.BPAlign(core.BPOptions{
							Iterations: 12, Batch: batch, Threads: threads,
							Damp: damp, Sched: sched, Chunk: 16,
							Matcher:     matching.MatcherSpec{Name: "approx"},
							FuseKernels: fused,
							Observer: func(iter int, y, z []float64) {
								for _, v := range y {
									bits = append(bits, math.Float64bits(v))
								}
								for _, v := range z {
									bits = append(bits, math.Float64bits(v))
								}
							},
						})
						return bits, res
					}
					plainBits, plainRes := run(false)
					fusedBits, fusedRes := run(true)
					if len(plainBits) != len(fusedBits) {
						t.Fatalf("%s: observed %d vs %d message words", name, len(plainBits), len(fusedBits))
					}
					for i := range plainBits {
						if plainBits[i] != fusedBits[i] {
							t.Fatalf("%s: message word %d differs: %x vs %x", name, i, plainBits[i], fusedBits[i])
						}
					}
					if math.Float64bits(plainRes.Objective) != math.Float64bits(fusedRes.Objective) {
						t.Fatalf("%s: objective %v vs %v", name, plainRes.Objective, fusedRes.Objective)
					}
					if plainRes.BestIter != fusedRes.BestIter {
						t.Fatalf("%s: bestIter %d vs %d", name, plainRes.BestIter, fusedRes.BestIter)
					}
				}
			}
		}
	}
}

// TestWorkspaceReuseAcrossMethodsAndSolves checks that one workspace
// can serve BP, then MR, then BP again (with a different matcher spec)
// and still produce the same results as fresh-workspace solves.
func TestWorkspaceReuseAcrossMethodsAndSolves(t *testing.T) {
	p := smallSynthetic(t, 104)
	ws := core.NewWorkspace()
	ctx := context.Background()
	type step struct {
		o core.Options
	}
	steps := []step{
		{core.Options{Method: core.MethodBP, BP: core.BPOptions{Iterations: 6, Matcher: matching.MatcherSpec{Name: "approx"}}}},
		{core.Options{Method: core.MethodMR, MR: core.MROptions{Iterations: 6}}},
		{core.Options{Method: core.MethodBP, BP: core.BPOptions{Iterations: 6, FuseKernels: true, Matcher: matching.MatcherSpec{Name: "suitor"}}}},
	}
	for i, st := range steps {
		shared := st.o
		if shared.Method == core.MethodBP {
			shared.BP.Workspace = ws
		} else {
			shared.MR.Workspace = ws
		}
		got, err := p.Align(ctx, shared)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want, err := p.Align(ctx, st.o)
		if err != nil {
			t.Fatalf("step %d (fresh): %v", i, err)
		}
		if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
			t.Errorf("step %d: shared-workspace objective %v != fresh %v", i, got.Objective, want.Objective)
		}
		if err := got.Matching.Validate(p.L); err != nil {
			t.Errorf("step %d: %v", i, err)
		}
	}
}

// TestAlignUnknownMethod pins the error contract of the unified entry
// point.
func TestAlignUnknownMethod(t *testing.T) {
	p := smallSynthetic(t, 105)
	res, err := p.Align(context.Background(), core.Options{Method: core.Method(99)})
	if err == nil {
		t.Fatal("want error for unknown method")
	}
	if res == nil || res.Err == nil {
		t.Fatal("unknown method must still return an empty result carrying the error")
	}
}

// TestMethodTextRoundTrip pins Method's text encoding, which travels
// through CLI flags and job JSON.
func TestMethodTextRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		text string
		want core.Method
	}{
		{"bp", core.MethodBP}, {"BP", core.MethodBP},
		{"mr", core.MethodMR}, {"MR", core.MethodMR}, {"klau", core.MethodMR},
	} {
		var m core.Method
		if err := m.UnmarshalText([]byte(tc.text)); err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		if m != tc.want {
			t.Errorf("%q parsed as %v, want %v", tc.text, m, tc.want)
		}
	}
	var bad core.Method
	if err := bad.UnmarshalText([]byte("nope")); err == nil {
		t.Error("want error for unknown method text")
	}
}

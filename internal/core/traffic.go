package core

import (
	"fmt"
	"strings"
)

// TrafficModel is an analytical per-iteration memory-traffic model of
// the BP iteration: for each step, the number of float64 words read
// and written as a function of |E_L| and nnz(S). The paper attributes
// BP's scaling ceiling to memory bandwidth in the damping step
// ("With a batch size of 20, we need to store and access the last 20
// iterates, which stresses the memory bandwidth"); this model makes
// that argument quantitative for any problem size without running it.
type TrafficModel struct {
	EL   int
	NnzS int
	// Batch is the rounding batch size r (each buffered iterate copy
	// is |E_L| words written and later read).
	Batch int
}

// StepTraffic is the modeled traffic of one step in 8-byte words.
type StepTraffic struct {
	Step          string
	Reads, Writes int64
}

// Words returns total words moved.
func (s StepTraffic) Words() int64 { return s.Reads + s.Writes }

// NewTrafficModel builds the model for a problem and batch size.
func NewTrafficModel(p *Problem, batch int) TrafficModel {
	if batch < 1 {
		batch = 1
	}
	return TrafficModel{EL: p.L.NumEdges(), NnzS: p.S.NNZ(), Batch: batch}
}

// Steps returns the modeled traffic per BP step, in listing order.
func (m TrafficModel) Steps() []StepTraffic {
	el := int64(m.EL)
	nnz := int64(m.NnzS)
	return []StepTraffic{
		// F = bound(β·S + Skᵀ): read S values and permuted Sk, write F.
		{BPStepBoundF, 2 * nnz, nnz},
		// d = αw + F·e: read w and all of F, write d.
		{BPStepComputeD, el + nnz, el},
		// othermax row+col: read y and z once each, write two scratch
		// vectors, then read d + both scratch and write y, z.
		{BPStepOthermax, 2*el + (el + 2*el), 2*el + 2*el},
		// Sk = diag(y+z−d)·S − F: read y,z,d rows via row index plus S
		// and F values, write Sk.
		{BPStepUpdateS, 3*nnz + 2*nnz, nnz},
		// damping: read y,z,Sk and their prevs, write all three.
		{BPStepDamping, 2 * (2*el + nnz), 2*el + nnz},
		// rounding buffer copies: 2 vectors per iteration written, and
		// each batched vector read once when its matching runs.
		{BPStepMatch, 2 * el, 2 * el},
	}
}

// DampingShare returns the damping step's fraction of total modeled
// traffic — the quantity that grows with problem size and explains the
// paper's Figure 7 bottleneck.
func (m TrafficModel) DampingShare() float64 {
	var total, damp int64
	for _, s := range m.Steps() {
		total += s.Words()
		if s.Step == BPStepDamping {
			damp = s.Words()
		}
	}
	if total == 0 {
		return 0
	}
	return float64(damp) / float64(total)
}

// String renders the model as a table of words moved per iteration.
func (m TrafficModel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "modeled BP traffic per iteration (|E_L|=%d, nnz(S)=%d, batch=%d)\n", m.EL, m.NnzS, m.Batch)
	for _, s := range m.Steps() {
		fmt.Fprintf(&b, "%-10s reads %12d  writes %12d words\n", s.Step, s.Reads, s.Writes)
	}
	fmt.Fprintf(&b, "damping share of traffic: %.1f%%\n", 100*m.DampingShare())
	return b.String()
}
